// Command sstar-chaos is a fault-injecting TCP proxy for the solver service:
// it relays client connections to an upstream sstar-serve while injecting
// latency, bandwidth caps, fragmented writes, mid-frame resets, and byte
// corruption — deterministically, from a seed — so resilience can be
// rehearsed against a live deployment instead of discovered in one.
//
// Usage:
//
//	sstar-serve -tcp 127.0.0.1:7071 &
//	sstar-chaos -listen 127.0.0.1:7070 -upstream 127.0.0.1:7071 \
//	    -seed 1 -latency 2ms -reset 0.01 -corrupt 0.005 -partial 0.3
//	sstar-load -addr 127.0.0.1:7070 ...   # clients aim at the proxy
//
// Every new client connection dials the upstream afresh, so the upstream can
// be killed and restarted mid-run: existing relays break (as they would in a
// real network partition) and new connections reach the restarted server.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sstar/internal/chaos"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7070", "address to accept clients on")
		upstream = flag.String("upstream", "", "address of the real server (required)")
		seed     = flag.Int64("seed", 1, "fault PRNG seed (same seed, same I/O sequence => same faults)")
		latency  = flag.Duration("latency", 0, "max injected latency per I/O op (uniform in [0,latency])")
		bps      = flag.Int64("bandwidth", 0, "bandwidth cap in bytes/sec per direction (0 = uncapped)")
		reset    = flag.Float64("reset", 0, "probability per I/O op of a mid-frame connection reset")
		corrupt  = flag.Float64("corrupt", 0, "probability per I/O op of flipping one bit")
		partial  = flag.Float64("partial", 0, "probability a write is fragmented into several smaller writes")
		dialTO   = flag.Duration("dial-timeout", 3*time.Second, "upstream dial timeout")
	)
	flag.Parse()
	if *upstream == "" {
		fmt.Fprintln(os.Stderr, "sstar-chaos: need -upstream")
		flag.Usage()
		os.Exit(2)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("sstar-chaos: %v", err)
	}
	cfg := chaos.Config{
		Seed:         *seed,
		Latency:      *latency,
		BandwidthBps: *bps,
		PartialWrite: *partial,
		Reset:        *reset,
		Corrupt:      *corrupt,
	}
	p := chaos.NewProxy(l, func() (net.Conn, error) {
		return net.DialTimeout("tcp", *upstream, *dialTO)
	}, cfg)
	log.Printf("sstar-chaos: %s -> %s (seed=%d latency<=%v bw=%dB/s reset=%.3f corrupt=%.3f partial=%.3f)",
		l.Addr(), *upstream, *seed, *latency, *bps, *reset, *corrupt, *partial)

	errc := make(chan error, 1)
	go func() { errc <- p.Serve() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil {
			log.Fatalf("sstar-chaos: %v", err)
		}
	case got := <-sig:
		log.Printf("sstar-chaos: %v, shutting down", got)
	}
	p.Close()
}
