// Command sstar-gen writes benchmark-suite matrices (or custom generator
// instances) to Matrix Market files, so the synthetic suite can be consumed
// by other tools or checked into experiment archives.
//
//	sstar-gen -out /tmp/mats                 # whole suite at scale 1.0
//	sstar-gen -matrix goodwin -scale 0.5 -out .
//	sstar-gen -grid2d 40x30 -dof 4 -out .
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sstar"
	"sstar/internal/bench"
)

func main() {
	var (
		out    = flag.String("out", ".", "output directory")
		matrix = flag.String("matrix", "", "single suite matrix to generate (default: all)")
		scale  = flag.Float64("scale", 1.0, "generator size multiplier")
		grid2d = flag.String("grid2d", "", "custom 2D grid 'NXxNY' instead of a suite matrix")
		grid3d = flag.String("grid3d", "", "custom 3D grid 'NXxNYxNZ'")
		dof    = flag.Int("dof", 1, "unknowns per grid node for custom grids")
		nine   = flag.Bool("nine", false, "9-point stencil for custom 2D grids")
		seed   = flag.Int64("seed", 1, "random seed for custom grids")
	)
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatalf("%v", err)
	}
	write := func(name string, a *sstar.Matrix) {
		path := filepath.Join(*out, name+".mtx")
		f, err := os.Create(path)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if err := sstar.WriteMatrixMarket(f, a); err != nil {
			fatalf("write %s: %v", path, err)
		}
		fmt.Printf("%s: %d x %d, %d nonzeros\n", path, a.N, a.M, a.Nnz())
	}
	switch {
	case *grid2d != "":
		var nx, ny int
		if _, err := fmt.Sscanf(strings.ToLower(*grid2d), "%dx%d", &nx, &ny); err != nil {
			fatalf("bad -grid2d %q", *grid2d)
		}
		write(fmt.Sprintf("grid2d_%dx%d_dof%d", nx, ny, *dof),
			sstar.GenGrid2D(nx, ny, *nine, sstar.GenOptions{DOF: *dof, Convection: 0.4, Seed: *seed}))
	case *grid3d != "":
		var nx, ny, nz int
		if _, err := fmt.Sscanf(strings.ToLower(*grid3d), "%dx%dx%d", &nx, &ny, &nz); err != nil {
			fatalf("bad -grid3d %q", *grid3d)
		}
		write(fmt.Sprintf("grid3d_%dx%dx%d_dof%d", nx, ny, nz, *dof),
			sstar.GenGrid3D(nx, ny, nz, sstar.GenOptions{DOF: *dof, Convection: 0.4, Seed: *seed}))
	case *matrix != "":
		spec := bench.ByName(*matrix)
		if spec == nil {
			fatalf("unknown matrix %q (see sstar-info -list)", *matrix)
		}
		write(spec.Name, spec.Gen(*scale))
	default:
		for _, spec := range append(bench.Suite(), bench.Extras()...) {
			write(spec.Name, spec.Gen(*scale))
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sstar-gen: "+format+"\n", args...)
	os.Exit(1)
}
