// Command sstar-info prints structural and symbolic statistics for a matrix:
// its Table 1 row (order, nnz, symmetry, dynamic/static/Cholesky fills, ops
// ratio) plus the supernode partition summary.
//
//	sstar-info -list
//	sstar-info -gen sherman5
//	sstar-info -file m.mtx -bsize 25 -r 4
package main

import (
	"flag"
	"fmt"
	"os"

	"sstar/internal/bench"
	"sstar/internal/core"
	"sstar/internal/ordering"
	"sstar/internal/sparse"
	"sstar/internal/supernode"
	"sstar/internal/symbolic"
)

func main() {
	var (
		file    = flag.String("file", "", "Matrix Market file")
		gen     = flag.String("gen", "", "benchmark matrix name")
		scale   = flag.Float64("scale", 1.0, "generator size multiplier")
		bsize   = flag.Int("bsize", 0, "supernode panel width; 0 = structure-adaptive")
		amalg   = flag.Int("r", 0, "amalgamation factor; 0 under -bsize 0 = cost model chooses")
		list    = flag.Bool("list", false, "list the benchmark suite and exit")
		workers = flag.Int("workers", 1, "analyze-phase worker goroutines (symbolic subtrees, candidate sweep, block builds)")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %-10s %8s %9s  %s\n", "name", "family", "order", "nnz", "notes")
		for _, s := range append(bench.Suite(), bench.Extras()...) {
			note := ""
			if s.Scaled {
				note = "scaled-down vs paper"
			}
			fmt.Printf("%-12s %-10s %8d %9d  %s\n", s.Name, s.Kind, s.Paper.Order, s.Paper.Nnz, note)
		}
		return
	}

	var a *sparse.CSR
	switch {
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		a, err = sparse.ReadMatrixMarket(f)
		if err != nil {
			fatalf("%v", err)
		}
	case *gen != "":
		spec := bench.ByName(*gen)
		if spec == nil {
			fatalf("unknown matrix %q", *gen)
		}
		a = spec.Gen(*scale)
	default:
		fatalf("need -file, -gen or -list")
	}

	stats := sparse.ComputeStats(a)
	fmt.Printf("order:            %d\n", stats.Order)
	fmt.Printf("nonzeros:         %d (%.1f per row)\n", stats.Nnz, stats.AvgPerRow)
	fmt.Printf("pattern symmetry: %.3f (1 = symmetric pattern)\n", stats.Symmetry)
	fmt.Printf("zero-free diag:   %v\n", stats.DiagFree)

	sym := core.Analyze(a, core.AnalyzeOptions{
		Workers:   *workers,
		Supernode: supernode.Options{MaxBlock: *bsize, Amalgamate: *amalg},
	})
	work := sym.PermutedMatrix(a)
	fmt.Printf("\nafter MC21 transversal + minimum degree on A'A:\n")
	fmt.Printf("static fill (George-Ng):   %d entries\n", sym.Static.NnzTotal())
	fmt.Printf("static element ops:        %d\n", sym.Static.ElementOps())
	chol := symbolic.CholeskyFill(sparse.ATAPattern(work))
	fmt.Printf("Cholesky(A'A) fill bound:  %d entries\n", 2*chol-int64(a.N))
	if gp, err := core.GPFactorize(work, 1.0); err == nil {
		fmt.Printf("dynamic fill (GP LU):      %d entries\n", gp.NnzTotal())
		fmt.Printf("dynamic flops:             %d\n", gp.Flops)
		fmt.Printf("static/dynamic fill:       %.2f\n", float64(sym.Static.NnzTotal())/float64(gp.NnzTotal()))
		fmt.Printf("static/dynamic ops:        %.2f\n", float64(sym.Static.ElementOps())/float64(gp.Flops))
	} else {
		fmt.Printf("dynamic baseline failed:   %v\n", err)
	}
	p := sym.Partition
	if c := p.Choice; c.Adaptive {
		fmt.Printf("\n2D L/U partition (adaptive: max width %d, r=%d, model cost %.3g):\n", c.MaxBlock, c.Amalgamate, c.ModelCost)
	} else {
		fmt.Printf("\n2D L/U partition (BSIZE=%d, r=%d):\n", *bsize, *amalg)
	}
	fmt.Printf("supernode panels:          %d (avg width %.2f)\n", p.NB, float64(p.N)/float64(p.NB))
	var lblocks, ublocks int
	for k := 0; k < p.NB; k++ {
		lblocks += len(p.LBlocks[k])
		ublocks += len(p.UBlocks[k])
	}
	fmt.Printf("nonzero L blocks:          %d\n", lblocks)
	fmt.Printf("nonzero U blocks:          %d\n", ublocks)
	forest := p.EliminationForest()
	fmt.Printf("elimination forest height: %d of %d blocks (tree parallelism proxy)\n",
		ordering.TreeHeight(forest), p.NB)
	fmt.Printf("flop-weighted panel width: %.1f\n", p.FlopWeightedWidth())

	pt, tm := sym.Phases, p.Times
	fmt.Printf("\nanalyze-phase breakdown (workers=%d):\n", *workers)
	fmt.Printf("ordering:                  %9.2f ms\n", float64(pt.OrderingNs)/1e6)
	fmt.Printf("symbolic fill:             %9.2f ms\n", float64(pt.SymbolicNs)/1e6)
	fmt.Printf("partition:                 %9.2f ms\n", float64(pt.PartitionNs)/1e6)
	fmt.Printf("  supernode detect:        %9.2f ms\n", float64(tm.DetectNs)/1e6)
	fmt.Printf("  blocking choice:         %9.2f ms\n", float64(tm.ChooseNs)/1e6)
	fmt.Printf("  structure build:         %9.2f ms\n", float64(tm.BuildNs)/1e6)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sstar-info: "+format+"\n", args...)
	os.Exit(1)
}
