package main

import (
	"encoding/json"
	"log"
	"os"
	"time"

	"sstar/internal/bench"
)

// runTenantBench runs the multi-tenant zipfian bench — per-tenant solve
// tails with coalescing off/on and under a weight-1 factorize storm — and
// merges the result into the report at outPath as a "multi_tenant" section
// (other sections are preserved).
func runTenantBench(tenants, clients int, duration time.Duration, nx, width int, window time.Duration, workers int, zipfS float64, seed int64, outPath string) {
	rep, err := bench.RunTenants(bench.TenantOptions{
		Tenants:  tenants,
		Clients:  clients,
		Duration: duration,
		NX:       nx,
		Width:    width,
		Window:   window,
		Workers:  workers,
		ZipfS:    zipfS,
		Seed:     seed,
	})
	if err != nil {
		log.Fatalf("sstar-load: tenant bench: %v", err)
	}

	doc := map[string]any{}
	if data, err := os.ReadFile(outPath); err == nil {
		json.Unmarshal(data, &doc)
	}
	doc["multi_tenant"] = rep
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("sstar-load: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		log.Fatalf("sstar-load: %v", err)
	}

	for _, sc := range rep.Scenarios {
		log.Printf("sstar-load: tenants %-16s %6d solves = %6.0f/s, p50 %.2fms p99 %.2fms, %d batches (mean width %.1f), %d storm factorizes, %d errors",
			sc.Name, sc.SolveRequests, sc.SolveRPS, sc.P50ms, sc.P99ms, sc.SolveBatches, sc.MeanBatchWidth, sc.StormFactorizes, sc.Errors)
	}
	log.Printf("sstar-load: tenants: coalescing gain x%.2f, storm p99 inflation x%.2f -> multi_tenant section merged into %s",
		rep.CoalescingGainX, rep.StormP99InflationX, outPath)
}
