package main

import (
	"context"
	"encoding/json"
	"log"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"sstar"
	"sstar/client"
	"sstar/internal/server"
)

// runColdBench measures the cold-start path of the analysis service: a
// zipfian stream of near-miss structure variants that defeats the exact-key
// cache, so requests are served by a cache hit, an incremental patch of the
// nearest cached analysis, or a full cold analyze. It reports
// time-to-first-factor percentiles split by how each request was served,
// plus an offline comparison of sequential, parallel and incremental
// analysis of the same structure, and merges everything into the report at
// outPath as a "cold_analysis" section.
func runColdBench(clients int, duration time.Duration, nx, cacheSz, workers, factorW int, seed int64, outPath string) {
	order := nx * nx
	base := sstar.GenCircuit(order, 3, sstar.GenOptions{Seed: seed})
	churn := max(1, base.Nnz()/200) // ±~1% of the entries per variant

	// A family of near-miss structures around the base. Structure-preserving
	// churn (GenPerturbLocal) models a simulation service editing devices;
	// each variant is a distinct structure key.
	const nvariants = 256
	variants := make([]*sstar.Matrix, nvariants)
	for i := range variants {
		variants[i] = sstar.GenPerturbLocal(base, churn, churn/2, seed+int64(i)+1)
	}
	log.Printf("sstar-load: cold bench: order=%d nnz=%d variants=%d churn=±%d cache=%d",
		order, base.Nnz(), nvariants, churn, cacheSz)

	// Part 1: the service view. Zipfian variant popularity: the hot head
	// stays cached, the long tail arrives cold or as a near-miss patch.
	s := server.New(server.Config{Workers: workers, FactorWorkers: factorW, CacheEntries: cacheSz})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("sstar-load: %v", err)
	}
	go s.Serve(l)
	defer s.Close()

	type coldSample struct {
		latency time.Duration
		class   string // "cache_hit", "patched", "cold"
	}
	var (
		mu      sync.Mutex
		samples []coldSample
		nerr    int
	)
	deadline := time.Now().Add(duration)
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + 7*int64(ci)))
			zipf := rand.NewZipf(rng, 1.3, 1, nvariants-1)
			c, err := client.Dial("tcp", l.Addr().String())
			if err != nil {
				mu.Lock()
				nerr++
				mu.Unlock()
				return
			}
			defer c.Close()
			for time.Now().Before(deadline) {
				m := variants[zipf.Uint64()]
				t0 := time.Now()
				h, st, err := c.Factorize(context.Background(), m, sstar.DefaultOptions())
				lat := time.Since(t0)
				if err != nil {
					mu.Lock()
					nerr++
					mu.Unlock()
					continue
				}
				class := "cold"
				switch {
				case st.CacheHit:
					class = "cache_hit"
				case st.Patched:
					class = "patched"
				}
				mu.Lock()
				samples = append(samples, coldSample{latency: lat, class: class})
				mu.Unlock()
				h.Free(context.Background())
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)
	sst := s.Stats()

	byClass := map[string][]time.Duration{}
	var all []time.Duration
	for _, sm := range samples {
		all = append(all, sm.latency)
		byClass[sm.class] = append(byClass[sm.class], sm.latency)
	}
	ttff := map[string]latencySummary{"all": summarize(all)}
	for _, class := range []string{"cache_hit", "patched", "cold"} {
		ttff[class] = summarize(byClass[class])
	}

	// Part 2: the library view. Sequential vs parallel full analysis of the
	// base structure, and incremental Patch vs full re-analysis over the
	// first variants. On a single-core machine the parallel figure equals
	// the sequential one by construction — the speedup needs cores.
	seqOpts := sstar.Options{HostWorkers: 1}
	cores := runtime.NumCPU()
	anSeq, seqT := timedAnalyze(base, seqOpts)
	_, parT := timedAnalyze(base, sstar.Options{HostWorkers: cores})
	ph := anSeq.Phases()

	const incN = 8
	var fullTs, patchTs []time.Duration
	changed := 0
	for i := 0; i < incN && i < len(variants); i++ {
		_, ft := timedAnalyze(variants[i], seqOpts)
		fullTs = append(fullTs, ft)
		t0 := time.Now()
		_, info, err := anSeq.Patch(variants[i])
		pt := time.Since(t0)
		if err != nil {
			log.Fatalf("sstar-load: patch: %v", err)
		}
		if !info.Patched {
			log.Printf("sstar-load: cold bench: variant %d fell back to full analyze (%s)", i, info.Fallback)
		}
		patchTs = append(patchTs, pt)
		changed += info.ChangedEntries
	}
	fullMed, patchMed := median(fullTs), median(patchTs)

	section := map[string]any{
		"config": map[string]any{
			"clients":   clients,
			"duration":  duration.String(),
			"nx":        nx,
			"order":     order,
			"nnz":       base.Nnz(),
			"variants":  nvariants,
			"churn":     churn,
			"cache":     cacheSz,
			"cores":     cores,
			"zipf_s":    1.3,
			"generator": "circuit deg-3, local (length-2 path) perturbations",
		},
		"service": map[string]any{
			"requests": len(samples),
			"errors":   nerr,
			"rps":      float64(len(samples)) / elapsed.Seconds(),
			"ttff_ms":  ttff,
			"patches":  sst.Patches,
			"fallback": sst.PatchFallbacks,
			"hits":     sst.CacheHits,
			"misses":   sst.CacheMisses,
		},
		"analyze": map[string]any{
			"static_fill":      anSeq.StaticFill(),
			"sequential_ms":    ms(seqT),
			"parallel_ms":      ms(parT),
			"parallel_workers": cores,
			"parallel_speedup": ratio(seqT, parT),
			"phases_ms": map[string]any{
				"ordering": ms(ph.Ordering),
				"symbolic": ms(ph.Symbolic),
				"detect":   ms(ph.Detect),
				"choose":   ms(ph.Choose),
				"build":    ms(ph.Build),
			},
			"incremental": map[string]any{
				"variants":        len(patchTs),
				"changed_entries": changed / max(1, len(patchTs)),
				"full_ms_median":  ms(fullMed),
				"patch_ms_median": ms(patchMed),
				"speedup":         ratio(fullMed, patchMed),
			},
		},
		"note": "parallel_speedup is bounded by the container's cores (1.0 on a one-core box by construction); the incremental speedup is core-independent",
	}
	doc := map[string]any{}
	if data, err := os.ReadFile(outPath); err == nil {
		json.Unmarshal(data, &doc)
	}
	doc["cold_analysis"] = section
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("sstar-load: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		log.Fatalf("sstar-load: %v", err)
	}
	log.Printf("sstar-load: cold bench: %d requests (%d hit, %d patched, %d cold) in %.2fs; analyze seq %.1fms par %.1fms (x%.2f @%d cores); incremental %.1fms vs %.1fms full (x%.1f)",
		len(samples), len(byClass["cache_hit"]), len(byClass["patched"]), len(byClass["cold"]), elapsed.Seconds(),
		ms(seqT), ms(parT), ratio(seqT, parT), cores, ms(patchMed), ms(fullMed), ratio(fullMed, patchMed))
}

func timedAnalyze(a *sstar.Matrix, o sstar.Options) (*sstar.Analysis, time.Duration) {
	t0 := time.Now()
	an, err := sstar.Analyze(a, o)
	if err != nil {
		log.Fatalf("sstar-load: analyze: %v", err)
	}
	return an, time.Since(t0)
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

func ratio(num, den time.Duration) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	for i := 1; i < len(s); i++ { // insertion sort; the slices are tiny
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
