// Command sstar-load drives concurrent mixed traffic (factorize /
// values-only refactorize / solve) against a sparse-solve server and writes
// a JSON benchmark report with throughput, latency percentiles and the
// server's analysis-cache hit rate.
//
// Usage:
//
//	sstar-load                                   # self-contained: in-process server
//	sstar-load -addr 127.0.0.1:7071              # against a running sstar-serve
//	sstar-load -addr 127.0.0.1:7071,127.0.0.1:7072  # multi-endpoint: clients spread round-robin
//	sstar-load -clients 16 -duration 10s -nx 30  # heavier run
//	sstar-load -patterns 4 -mix 1,3,6            # 4 structures; 10% fact / 30% refac / 60% solve
//	sstar-load -addr ... -retries 4 -timeout 2s  # through sstar-chaos: retry + per-request deadline
//	sstar-load -cluster 1,3                      # in-process cluster scaling bench (1 then 3 shards)
//	sstar-load -churn                            # availability bench: kill/rejoin rounds, failover + repair latency
//	sstar-load -tenants 3 -clients 8             # multi-tenant zipfian bench: coalescing + per-tenant QoS tails
//
// The report lands in -out (default BENCH_service.json). -cluster runs a
// solve-heavy workload against an in-process router+shard fleet per listed
// shard count and merges a "cluster" section into the report, leaving the
// other sections untouched; -tenants and -cold merge their own sections the
// same way.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sstar"
	"sstar/client"
	"sstar/internal/cluster"
	"sstar/internal/server"
)

type opSample struct {
	op      string
	latency time.Duration
	hit     bool
}

type latencySummary struct {
	Count int     `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P90ms float64 `json:"p90_ms"`
	P99ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

type report struct {
	Config struct {
		Addr     string `json:"addr"`
		Clients  int    `json:"clients"`
		Duration string `json:"duration"`
		Patterns int    `json:"patterns"`
		NX       int    `json:"nx"`
		Mix      string `json:"mix"`
		Check    bool   `json:"check"`
	} `json:"config"`
	ElapsedS      float64                   `json:"elapsed_s"`
	Requests      int                       `json:"requests"`
	Errors        int                       `json:"errors"`
	ThroughputRPS float64                   `json:"throughput_rps"`
	Latency       latencySummary            `json:"latency"`
	Ops           map[string]latencySummary `json:"ops"`
	Cache         struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		HitRate float64 `json:"hit_rate"`
	} `json:"cache"`
	Server server.ServerStats `json:"server"`
}

func main() {
	var (
		addr     = flag.String("addr", "", "server address(es), comma-separated for multi-endpoint; empty starts an in-process server")
		network  = flag.String("network", "tcp", "server network (tcp or unix)")
		clients  = flag.Int("clients", 8, "concurrent client connections")
		duration = flag.Duration("duration", 5*time.Second, "load duration")
		patterns = flag.Int("patterns", 2, "distinct matrix structures in the traffic")
		nx       = flag.Int("nx", 20, "base grid dimension (matrix order ~ nx*nx)")
		mix      = flag.String("mix", "1,3,6", "factorize,refactorize,solve weights")
		check    = flag.Bool("check", false, "verify every solve's residual (slower)")
		seed     = flag.Int64("seed", 1, "traffic randomness seed")
		workers  = flag.Int("workers", 4, "in-process server workers (when -addr is empty)")
		factorW  = flag.Int("factor-workers", 0, "in-process server factor-phase goroutines per request; 0 = NumCPU/workers")
		cacheSz  = flag.Int("cache", 64, "in-process server analysis cache entries")
		retries  = flag.Int("retries", 0, "client retry attempts per request (0 disables; sheds and idempotent transport failures only)")
		timeout  = flag.Duration("timeout", 0, "per-request deadline (0 = none; set this when the path can stall, e.g. behind sstar-chaos)")
		clusterN = flag.String("cluster", "", "comma-separated shard counts for the in-process cluster scaling bench (e.g. 1,3); merges a cluster section into -out and exits")
		churn    = flag.Bool("churn", false, "run the availability churn bench: kill the owner of a live structure mid-workload, measure failover-to-first-successful-solve and repair-to-R-copies; rejoin it, measure rejoin-to-converged; merges an availability section into -out and exits")
		rounds   = flag.Int("rounds", 3, "kill/rejoin rounds in -churn mode")
		cold     = flag.Bool("cold", false, "run the cold-analysis bench: zipfian near-miss structure churn against an in-process server plus a sequential/parallel/incremental analyze comparison; merges a cold_analysis section into -out and exits")
		tenants  = flag.Int("tenants", 0, "run the multi-tenant bench with this many zipf-skewed solve tenants against an in-process server (coalescing off/on, then a weight-1 factorize storm); merges a multi_tenant section into -out and exits")
		zipfS    = flag.Float64("zipf", 1.3, "zipf skew across tenants in -tenants mode (> 1; hotter head as it grows)")
		coalesce = flag.Int("coalesce-width", 32, "max coalesced solve batch width in -tenants mode")
		window   = flag.Duration("coalesce-window", 0, "batch window a dequeued solve waits for ride-alongs in -tenants mode (0 = opportunistic only; a small window forms real batches even when arrivals serialize, e.g. on one core)")
		out      = flag.String("out", "BENCH_service.json", "report output path")
	)
	flag.Parse()

	if *clusterN != "" {
		runClusterBench(*clusterN, *clients, *duration, *patterns, *nx, *out)
		return
	}
	if *churn {
		runChurnBench(*rounds, *patterns, *nx, *out)
		return
	}
	if *cold {
		runColdBench(*clients, *duration, *nx, *cacheSz, *workers, *factorW, *seed, *out)
		return
	}
	if *tenants > 0 {
		runTenantBench(*tenants, *clients, *duration, *nx, *coalesce, *window, *workers, *zipfS, *seed, *out)
		return
	}

	weights := parseMix(*mix)

	// Multi-endpoint mode: clients spread round-robin across the listed
	// addresses (a shard fleet without a router, or several routers).
	targets := strings.Split(*addr, ",")
	target := targets[0]
	net_ := *network
	if target == "" {
		s := server.New(server.Config{Workers: *workers, FactorWorkers: *factorW, CacheEntries: *cacheSz})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("sstar-load: %v", err)
		}
		go s.Serve(l)
		defer s.Close()
		target = l.Addr().String()
		targets = []string{target}
		net_ = "tcp"
		st := s.Stats()
		log.Printf("sstar-load: in-process server on %s (workers=%d factor-workers=%d cache=%d)", target, st.Workers, st.FactorWorkers, *cacheSz)
	}

	// One base matrix per pattern: distinct structures (varying nx and
	// stencil) of comparable size.
	bases := make([]*sstar.Matrix, *patterns)
	for p := range bases {
		bases[p] = sstar.GenGrid2D(*nx+p, *nx, p%2 == 1, sstar.GenOptions{Seed: int64(p + 1), Convection: 0.2})
	}

	var (
		mu      sync.Mutex
		samples []opSample
		nerr    int
	)
	record := func(s opSample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}
	fail := func(err error) {
		mu.Lock()
		nerr++
		mu.Unlock()
		log.Printf("sstar-load: %v", err)
	}

	deadline := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < *clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			var copts []client.Option
			if *retries > 0 {
				p := client.DefaultRetryPolicy()
				p.MaxRetries = *retries
				copts = append(copts, client.WithRetry(p))
			}
			rng := rand.New(rand.NewSource(*seed + int64(ci)))
			// Per-request deadline: without one, a stalled connection (a
			// corrupted length prefix behind a fault proxy never delivers
			// the bytes the reader waits for) blocks the goroutine forever.
			reqCtx := func() (context.Context, context.CancelFunc) {
				if *timeout <= 0 {
					return context.Background(), func() {}
				}
				return context.WithTimeout(context.Background(), *timeout)
			}
			base := bases[ci%len(bases)]
			cur := base.Clone()
			perturb := func() {
				for i := range cur.Val {
					cur.Val[i] = base.Val[i] * (1 + 0.3*rng.Float64())
				}
			}

			// A load generator must outlive the faults it measures: every
			// failed operation is counted and the worker rebuilds — redial
			// on a dead client, refactorize on a lost handle. A dropped
			// handle may survive server-side; the server's TTL/budget
			// eviction reclaims it.
			myTarget := targets[ci%len(targets)]
			var c *client.Client
			var h *client.Handle
			defer func() {
				if c == nil {
					return
				}
				if h != nil {
					ctx, cancel := reqCtx()
					h.Free(ctx)
					cancel()
				}
				c.Close()
			}()
			for time.Now().Before(deadline) {
				if c == nil {
					cc, err := client.Dial(net_, myTarget, copts...)
					if err != nil {
						fail(err)
						time.Sleep(20 * time.Millisecond)
						continue
					}
					c = cc
				}
				if h == nil {
					t0 := time.Now()
					ctx, cancel := reqCtx()
					hh, st, err := c.Factorize(ctx, cur, sstar.DefaultOptions())
					cancel()
					if err != nil {
						fail(err)
						time.Sleep(20 * time.Millisecond)
						continue
					}
					h = hh
					record(opSample{op: "factorize", latency: time.Since(t0), hit: st.CacheHit})
				}
				switch pick(rng, weights) {
				case 0:
					ctx, cancel := reqCtx()
					err := h.Free(ctx)
					cancel()
					h = nil
					if err != nil {
						fail(err)
						continue
					}
					perturb() // next iteration factorizes the perturbed values
				case 1:
					perturb()
					t0 := time.Now()
					ctx, cancel := reqCtx()
					_, err := h.Refactorize(ctx, cur.Val)
					cancel()
					if err != nil {
						fail(err)
						h = nil
						continue
					}
					record(opSample{op: "refactorize", latency: time.Since(t0)})
				default:
					b := make([]float64, cur.N)
					for i := range b {
						b[i] = 2*rng.Float64() - 1
					}
					t0 := time.Now()
					ctx, cancel := reqCtx()
					x, _, err := h.Solve(ctx, b)
					cancel()
					if err != nil {
						fail(err)
						h = nil
						continue
					}
					record(opSample{op: "solve", latency: time.Since(t0)})
					if *check {
						if r := sstar.Residual(cur, x, b); r > 1e-8 {
							fail(fmt.Errorf("client %d: residual %g", ci, r))
						}
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	c, err := client.Dial(net_, target)
	if err != nil {
		log.Fatalf("sstar-load: stats dial: %v", err)
	}
	st, err := c.Stats(context.Background())
	c.Close()
	if err != nil {
		log.Fatalf("sstar-load: stats: %v", err)
	}

	rep := buildReport(samples, nerr, elapsed, st)
	rep.Config.Addr = target
	rep.Config.Clients = *clients
	rep.Config.Duration = duration.String()
	rep.Config.Patterns = *patterns
	rep.Config.NX = *nx
	rep.Config.Mix = *mix
	rep.Config.Check = *check

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("sstar-load: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("sstar-load: %v", err)
	}
	log.Printf("sstar-load: %d requests in %.2fs = %.0f req/s, p50 %.2fms p99 %.2fms, cache hit rate %.0f%%, core split %d workers x %d factor-workers, %d errors -> %s",
		rep.Requests, rep.ElapsedS, rep.ThroughputRPS, rep.Latency.P50ms, rep.Latency.P99ms, 100*rep.Cache.HitRate, st.Workers, st.FactorWorkers, rep.Errors, *out)
}

// clusterRun is one shard-count measurement of the scaling bench.
type clusterRun struct {
	Shards       int     `json:"shards"`
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	ElapsedS     float64 `json:"elapsed_s"`
	RPS          float64 `json:"rps"`
	Failovers    int64   `json:"failovers"`
	Scatters     int64   `json:"scatters"`
	Replications int64   `json:"replications"`
}

// runClusterBench measures aggregate solve throughput through an in-process
// router as the shard count grows, and merges the result into the report at
// outPath as a "cluster" section (other sections are preserved).
func runClusterBench(counts string, clients int, duration time.Duration, patterns, nx int, outPath string) {
	var runs []clusterRun
	for _, part := range strings.Split(counts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			log.Fatalf("sstar-load: bad -cluster count %q", part)
		}
		runs = append(runs, benchFleet(n, clients, duration, patterns, nx))
	}

	section := map[string]any{
		"config": map[string]any{
			"clients":  clients,
			"duration": duration.String(),
			"patterns": patterns,
			"nx":       nx,
		},
		"runs": runs,
		"note": "in-process fleet: all shards share this machine's cores, so the scaling shown is placement/replication overhead, not added hardware; on one-core containers the curve is flat by construction",
	}
	// Merge, don't overwrite: the cluster section rides alongside whatever
	// single-node report is already in the file.
	doc := map[string]any{}
	if data, err := os.ReadFile(outPath); err == nil {
		json.Unmarshal(data, &doc)
	}
	doc["cluster"] = section
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("sstar-load: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		log.Fatalf("sstar-load: %v", err)
	}
	for _, r := range runs {
		log.Printf("sstar-load: cluster %d shard(s): %d requests in %.2fs = %.0f req/s (%d errors, %d failovers, %d scatters)",
			r.Shards, r.Requests, r.ElapsedS, r.RPS, r.Errors, r.Failovers, r.Scatters)
	}
	log.Printf("sstar-load: cluster section merged into %s", outPath)
}

// benchFleet runs a solve-heavy workload against an in-process fleet of n
// shards behind a router and reports aggregate throughput.
func benchFleet(n, clients int, duration time.Duration, patterns, nx int) clusterRun {
	// Listeners first so every shard knows the full advertised peer set.
	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("sstar-load: %v", err)
		}
		listeners[i] = l
		peers[i] = l.Addr().String()
	}
	shards := make([]*cluster.Shard, n)
	servers := make([]*server.Server, n)
	for i := range listeners {
		var hooks server.ClusterHooks
		if n > 1 {
			sh, err := cluster.NewShard(cluster.ShardConfig{Self: peers[i], Peers: peers})
			if err != nil {
				log.Fatalf("sstar-load: %v", err)
			}
			shards[i] = sh
			hooks = sh
		}
		s := server.New(server.Config{Workers: 4, Cluster: hooks})
		if shards[i] != nil {
			shards[i].Bind(s)
		}
		servers[i] = s
		go s.Serve(listeners[i])
	}
	r, err := cluster.NewRouter(cluster.RouterConfig{Shards: peers})
	if err != nil {
		log.Fatalf("sstar-load: %v", err)
	}
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("sstar-load: %v", err)
	}
	go r.Serve(rl)
	defer func() {
		r.Close()
		for i := range servers {
			servers[i].Close()
			if shards[i] != nil {
				shards[i].Close()
			}
		}
	}()

	bases := make([]*sstar.Matrix, patterns)
	for p := range bases {
		bases[p] = sstar.GenGrid2D(nx+p, nx, p%2 == 1, sstar.GenOptions{Seed: int64(p + 1), Convection: 0.2})
	}

	var requests, errs int64
	var mu sync.Mutex
	deadline := time.Now().Add(duration)
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(ci + 1)))
			c, err := client.Dial("tcp", rl.Addr().String(), client.WithRetry(client.DefaultRetryPolicy()))
			if err != nil {
				mu.Lock()
				errs++
				mu.Unlock()
				return
			}
			defer c.Close()
			a := bases[ci%len(bases)]
			h, _, err := c.Factorize(context.Background(), a, sstar.DefaultOptions())
			if err != nil {
				mu.Lock()
				errs++
				mu.Unlock()
				return
			}
			defer h.Free(context.Background())
			var nreq, nerr int64
			b := make([]float64, a.N)
			wide := make([]float64, a.N*8)
			for time.Now().Before(deadline) {
				var err error
				if rng.Intn(8) == 0 {
					for i := range wide {
						wide[i] = 2*rng.Float64() - 1
					}
					_, _, err = h.SolveMany(context.Background(), wide, 8)
				} else {
					for i := range b {
						b[i] = 2*rng.Float64() - 1
					}
					_, _, err = h.Solve(context.Background(), b)
				}
				nreq++
				if err != nil {
					nerr++
				}
			}
			mu.Lock()
			requests += nreq
			errs += nerr
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rst := r.Stats()
	var replications int64
	for i := range servers {
		replications += servers[i].Stats().Replications
	}
	run := clusterRun{
		Shards:       n,
		Requests:     requests,
		Errors:       errs,
		ElapsedS:     elapsed.Seconds(),
		Failovers:    rst.Failovers,
		Scatters:     rst.Scatters,
		Replications: replications,
	}
	if elapsed > 0 {
		run.RPS = float64(requests) / elapsed.Seconds()
	}
	return run
}

func parseMix(s string) [3]int {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		log.Fatalf("sstar-load: -mix wants 3 comma-separated weights, got %q", s)
	}
	var w [3]int
	total := 0
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			log.Fatalf("sstar-load: bad -mix weight %q", p)
		}
		w[i] = v
		total += v
	}
	if total == 0 {
		log.Fatalf("sstar-load: -mix weights sum to zero")
	}
	return w
}

// pick returns 0 (factorize), 1 (refactorize) or 2 (solve) by weight.
func pick(rng *rand.Rand, w [3]int) int {
	r := rng.Intn(w[0] + w[1] + w[2])
	if r < w[0] {
		return 0
	}
	if r < w[0]+w[1] {
		return 1
	}
	return 2
}

func summarize(ls []time.Duration) latencySummary {
	if len(ls) == 0 {
		return latencySummary{}
	}
	s := append([]time.Duration(nil), ls...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(s)-1))
		return float64(s[idx]) / 1e6
	}
	return latencySummary{
		Count: len(s),
		P50ms: pct(0.50),
		P90ms: pct(0.90),
		P99ms: pct(0.99),
		MaxMs: float64(s[len(s)-1]) / 1e6,
	}
}

func buildReport(samples []opSample, nerr int, elapsed time.Duration, st server.ServerStats) *report {
	rep := &report{Ops: make(map[string]latencySummary)}
	all := make([]time.Duration, 0, len(samples))
	byOp := make(map[string][]time.Duration)
	for _, s := range samples {
		all = append(all, s.latency)
		byOp[s.op] = append(byOp[s.op], s.latency)
	}
	rep.ElapsedS = elapsed.Seconds()
	rep.Requests = len(samples)
	rep.Errors = nerr
	if elapsed > 0 {
		rep.ThroughputRPS = float64(len(samples)) / elapsed.Seconds()
	}
	rep.Latency = summarize(all)
	for op, ls := range byOp {
		rep.Ops[op] = summarize(ls)
	}
	rep.Cache.Hits = st.CacheHits
	rep.Cache.Misses = st.CacheMisses
	rep.Cache.HitRate = st.HitRate()
	rep.Server = st
	return rep
}

// churnRound is one kill/rejoin availability measurement.
type churnRound struct {
	// FailoverMs: victim owner killed -> first successful solve of a
	// structure it owned (client retry falls back to the router, which fails
	// over to the replica). This is the user-visible outage.
	FailoverMs float64 `json:"failover_ms"`
	// RepairMs: kill -> survivors' manifests match ring placement again
	// (replica promoted to owner, every key back at min(R, live) copies).
	RepairMs float64 `json:"repair_ms"`
	// RejoinConvergedMs: fresh member booted with -cluster-join on the dead
	// member's address -> full fleet agrees on membership and placement is
	// repaired (keys moved onto the rejoined member, strays dropped).
	RejoinConvergedMs float64 `json:"rejoin_converged_ms"`
}

// churnBenchNode is one mutable fleet member of the availability bench.
type churnBenchNode struct {
	addr string
	srv  *server.Server
	sh   *cluster.Shard
}

// runChurnBench boots a 3-shard self-healing fleet behind a router, spreads
// structures over it, then repeatedly kills the owner of a live structure
// mid-workload and rejoins a fresh member on its address, recording the
// availability timeline of each round into an "availability" section.
func runChurnBench(rounds, patterns, nx int, outPath string) {
	const (
		shards    = 3
		heartbeat = 50 * time.Millisecond
		repair    = 200 * time.Millisecond
	)
	boot := func(addr string, peers []string, join string) *churnBenchNode {
		l, err := net.Listen("tcp", addr)
		if err != nil {
			log.Fatalf("sstar-load: %v", err)
		}
		sh, err := cluster.NewShard(cluster.ShardConfig{
			Self:              l.Addr().String(),
			Peers:             peers,
			Join:              join,
			HeartbeatInterval: heartbeat,
			RepairInterval:    repair,
		})
		if err != nil {
			log.Fatalf("sstar-load: %v", err)
		}
		s := server.New(server.Config{Workers: 2, Cluster: sh})
		sh.Bind(s)
		go s.Serve(l)
		return &churnBenchNode{addr: l.Addr().String(), srv: s, sh: sh}
	}

	listeners := make([]net.Listener, shards)
	peers := make([]string, shards)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("sstar-load: %v", err)
		}
		listeners[i] = l
		peers[i] = l.Addr().String()
	}
	nodes := make(map[string]*churnBenchNode, shards)
	for i := range listeners {
		sh, err := cluster.NewShard(cluster.ShardConfig{
			Self:              peers[i],
			Peers:             peers,
			HeartbeatInterval: heartbeat,
			RepairInterval:    repair,
		})
		if err != nil {
			log.Fatalf("sstar-load: %v", err)
		}
		s := server.New(server.Config{Workers: 2, Cluster: sh})
		sh.Bind(s)
		go s.Serve(listeners[i])
		nodes[peers[i]] = &churnBenchNode{addr: peers[i], srv: s, sh: sh}
	}
	r, err := cluster.NewRouter(cluster.RouterConfig{Shards: peers})
	if err != nil {
		log.Fatalf("sstar-load: %v", err)
	}
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("sstar-load: %v", err)
	}
	go r.Serve(rl)
	defer func() {
		r.Close()
		for _, n := range nodes {
			n.srv.Close()
			n.sh.Close()
		}
	}()

	liveShards := func() []*cluster.Shard {
		out := make([]*cluster.Shard, 0, len(nodes))
		for _, n := range nodes {
			out = append(out, n.sh)
		}
		return out
	}
	anyLive := func() *churnBenchNode {
		for _, n := range nodes {
			return n
		}
		log.Fatal("sstar-load: no live members")
		return nil
	}
	waitUntil := func(what string, cond func() bool) time.Duration {
		start := time.Now()
		deadline := start.Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return time.Since(start)
			}
			time.Sleep(5 * time.Millisecond)
		}
		log.Fatalf("sstar-load: timed out waiting for %s", what)
		return 0
	}
	converged := func(want int) bool {
		shs := liveShards()
		for _, sh := range shs {
			if len(sh.Members()) != want {
				return false
			}
		}
		return len(cluster.PlacementViolations(shs)) == 0
	}

	c, err := client.Dial("tcp", rl.Addr().String(), client.WithRetry(client.DefaultRetryPolicy()))
	if err != nil {
		log.Fatalf("sstar-load: %v", err)
	}
	defer c.Close()
	if patterns < 2 {
		patterns = 2
	}
	handles := make([]*client.Handle, patterns)
	rhs := make([][]float64, patterns)
	for p := range handles {
		a := sstar.GenGrid2D(nx+p, nx, p%2 == 1, sstar.GenOptions{Seed: int64(p + 1), Convection: 0.2})
		h, _, err := c.Factorize(context.Background(), a, sstar.DefaultOptions())
		if err != nil {
			log.Fatalf("sstar-load: factorize %d: %v", p, err)
		}
		handles[p] = h
		rhs[p] = make([]float64, a.N)
		for i := range rhs[p] {
			rhs[p][i] = 1 + float64(i%7)
		}
	}
	waitUntil("initial replication", func() bool { return converged(shards) })

	solveRetrying := func(p int) time.Duration {
		start := time.Now()
		deadline := start.Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if _, _, err := handles[p].Solve(context.Background(), rhs[p]); err == nil {
				return time.Since(start)
			}
			time.Sleep(2 * time.Millisecond)
		}
		log.Fatalf("sstar-load: solve %d never recovered", p)
		return 0
	}

	var results []churnRound
	for round := 0; round < rounds; round++ {
		// A light background workload so the kill lands mid-traffic.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					solveRetrying(1 % patterns)
				}
			}
		}()

		victim := anyLive().sh.Owner(handles[0].Key())
		n := nodes[victim]
		if n == nil {
			log.Fatalf("sstar-load: owner %s of the hot structure is not live", victim)
		}
		delete(nodes, victim)
		n.srv.Close()
		n.sh.Close()
		failover := solveRetrying(0)
		repairD := waitUntil("post-kill repair", func() bool { return converged(shards - 1) })

		rejoinStart := time.Now()
		nodes[victim] = boot(victim, nil, anyLive().addr)
		waitUntil("rejoin convergence", func() bool { return converged(shards) })
		rejoinD := time.Since(rejoinStart)

		close(stop)
		wg.Wait()
		// repairD was measured from when the wait began (after the failover
		// solve), so the kill-relative figure adds the failover window.
		rr := churnRound{
			FailoverMs:        float64(failover.Microseconds()) / 1e3,
			RepairMs:          float64((failover + repairD).Microseconds()) / 1e3,
			RejoinConvergedMs: float64(rejoinD.Microseconds()) / 1e3,
		}
		results = append(results, rr)
		log.Printf("sstar-load: churn round %d: failover %.1fms, repair %.1fms, rejoin-converged %.1fms",
			round, rr.FailoverMs, rr.RepairMs, rr.RejoinConvergedMs)
	}

	section := map[string]any{
		"config": map[string]any{
			"shards":    shards,
			"rounds":    rounds,
			"patterns":  patterns,
			"nx":        nx,
			"heartbeat": heartbeat.String(),
			"repair":    repair.String(),
		},
		"rounds_data": results,
		"note":        "in-process fleet; failover_ms is kill -> first successful solve of a structure the victim owned, repair_ms is kill -> survivors' manifests match placement (replica promoted, R restored), rejoin_converged_ms is join -> full-fleet agreement with empty manifest diff",
	}
	doc := map[string]any{}
	if data, err := os.ReadFile(outPath); err == nil {
		json.Unmarshal(data, &doc)
	}
	doc["availability"] = section
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("sstar-load: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		log.Fatalf("sstar-load: %v", err)
	}
	log.Printf("sstar-load: availability section merged into %s", outPath)
}
