// Command sstar-load drives concurrent mixed traffic (factorize /
// values-only refactorize / solve) against a sparse-solve server and writes
// a JSON benchmark report with throughput, latency percentiles and the
// server's analysis-cache hit rate.
//
// Usage:
//
//	sstar-load                                   # self-contained: in-process server
//	sstar-load -addr 127.0.0.1:7071              # against a running sstar-serve
//	sstar-load -clients 16 -duration 10s -nx 30  # heavier run
//	sstar-load -patterns 4 -mix 1,3,6            # 4 structures; 10% fact / 30% refac / 60% solve
//	sstar-load -addr ... -retries 4 -timeout 2s  # through sstar-chaos: retry + per-request deadline
//
// The report lands in -out (default BENCH_service.json).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sstar"
	"sstar/client"
	"sstar/internal/server"
)

type opSample struct {
	op      string
	latency time.Duration
	hit     bool
}

type latencySummary struct {
	Count int     `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P90ms float64 `json:"p90_ms"`
	P99ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

type report struct {
	Config struct {
		Addr     string `json:"addr"`
		Clients  int    `json:"clients"`
		Duration string `json:"duration"`
		Patterns int    `json:"patterns"`
		NX       int    `json:"nx"`
		Mix      string `json:"mix"`
		Check    bool   `json:"check"`
	} `json:"config"`
	ElapsedS      float64                   `json:"elapsed_s"`
	Requests      int                       `json:"requests"`
	Errors        int                       `json:"errors"`
	ThroughputRPS float64                   `json:"throughput_rps"`
	Latency       latencySummary            `json:"latency"`
	Ops           map[string]latencySummary `json:"ops"`
	Cache         struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		HitRate float64 `json:"hit_rate"`
	} `json:"cache"`
	Server server.ServerStats `json:"server"`
}

func main() {
	var (
		addr     = flag.String("addr", "", "server address; empty starts an in-process server")
		network  = flag.String("network", "tcp", "server network (tcp or unix)")
		clients  = flag.Int("clients", 8, "concurrent client connections")
		duration = flag.Duration("duration", 5*time.Second, "load duration")
		patterns = flag.Int("patterns", 2, "distinct matrix structures in the traffic")
		nx       = flag.Int("nx", 20, "base grid dimension (matrix order ~ nx*nx)")
		mix      = flag.String("mix", "1,3,6", "factorize,refactorize,solve weights")
		check    = flag.Bool("check", false, "verify every solve's residual (slower)")
		seed     = flag.Int64("seed", 1, "traffic randomness seed")
		workers  = flag.Int("workers", 4, "in-process server workers (when -addr is empty)")
		factorW  = flag.Int("factor-workers", 0, "in-process server factor-phase goroutines per request; 0 = NumCPU/workers")
		cacheSz  = flag.Int("cache", 64, "in-process server analysis cache entries")
		retries  = flag.Int("retries", 0, "client retry attempts per request (0 disables; sheds and idempotent transport failures only)")
		timeout  = flag.Duration("timeout", 0, "per-request deadline (0 = none; set this when the path can stall, e.g. behind sstar-chaos)")
		out      = flag.String("out", "BENCH_service.json", "report output path")
	)
	flag.Parse()

	weights := parseMix(*mix)

	target := *addr
	net_ := *network
	if target == "" {
		s := server.New(server.Config{Workers: *workers, FactorWorkers: *factorW, CacheEntries: *cacheSz})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("sstar-load: %v", err)
		}
		go s.Serve(l)
		defer s.Close()
		target = l.Addr().String()
		net_ = "tcp"
		st := s.Stats()
		log.Printf("sstar-load: in-process server on %s (workers=%d factor-workers=%d cache=%d)", target, st.Workers, st.FactorWorkers, *cacheSz)
	}

	// One base matrix per pattern: distinct structures (varying nx and
	// stencil) of comparable size.
	bases := make([]*sstar.Matrix, *patterns)
	for p := range bases {
		bases[p] = sstar.GenGrid2D(*nx+p, *nx, p%2 == 1, sstar.GenOptions{Seed: int64(p + 1), Convection: 0.2})
	}

	var (
		mu      sync.Mutex
		samples []opSample
		nerr    int
	)
	record := func(s opSample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}
	fail := func(err error) {
		mu.Lock()
		nerr++
		mu.Unlock()
		log.Printf("sstar-load: %v", err)
	}

	deadline := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < *clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			var copts []client.Option
			if *retries > 0 {
				p := client.DefaultRetryPolicy()
				p.MaxRetries = *retries
				copts = append(copts, client.WithRetry(p))
			}
			rng := rand.New(rand.NewSource(*seed + int64(ci)))
			// Per-request deadline: without one, a stalled connection (a
			// corrupted length prefix behind a fault proxy never delivers
			// the bytes the reader waits for) blocks the goroutine forever.
			reqCtx := func() (context.Context, context.CancelFunc) {
				if *timeout <= 0 {
					return context.Background(), func() {}
				}
				return context.WithTimeout(context.Background(), *timeout)
			}
			base := bases[ci%len(bases)]
			cur := base.Clone()
			perturb := func() {
				for i := range cur.Val {
					cur.Val[i] = base.Val[i] * (1 + 0.3*rng.Float64())
				}
			}

			// A load generator must outlive the faults it measures: every
			// failed operation is counted and the worker rebuilds — redial
			// on a dead client, refactorize on a lost handle. A dropped
			// handle may survive server-side; the server's TTL/budget
			// eviction reclaims it.
			var c *client.Client
			var h *client.Handle
			defer func() {
				if c == nil {
					return
				}
				if h != nil {
					ctx, cancel := reqCtx()
					h.FreeCtx(ctx)
					cancel()
				}
				c.Close()
			}()
			for time.Now().Before(deadline) {
				if c == nil {
					cc, err := client.Dial(net_, target, copts...)
					if err != nil {
						fail(err)
						time.Sleep(20 * time.Millisecond)
						continue
					}
					c = cc
				}
				if h == nil {
					t0 := time.Now()
					ctx, cancel := reqCtx()
					hh, st, err := c.FactorizeCtx(ctx, cur, sstar.DefaultOptions())
					cancel()
					if err != nil {
						fail(err)
						time.Sleep(20 * time.Millisecond)
						continue
					}
					h = hh
					record(opSample{op: "factorize", latency: time.Since(t0), hit: st.CacheHit})
				}
				switch pick(rng, weights) {
				case 0:
					ctx, cancel := reqCtx()
					err := h.FreeCtx(ctx)
					cancel()
					h = nil
					if err != nil {
						fail(err)
						continue
					}
					perturb() // next iteration factorizes the perturbed values
				case 1:
					perturb()
					t0 := time.Now()
					ctx, cancel := reqCtx()
					_, err := h.RefactorizeCtx(ctx, cur.Val)
					cancel()
					if err != nil {
						fail(err)
						h = nil
						continue
					}
					record(opSample{op: "refactorize", latency: time.Since(t0)})
				default:
					b := make([]float64, cur.N)
					for i := range b {
						b[i] = 2*rng.Float64() - 1
					}
					t0 := time.Now()
					ctx, cancel := reqCtx()
					x, _, err := h.SolveCtx(ctx, b)
					cancel()
					if err != nil {
						fail(err)
						h = nil
						continue
					}
					record(opSample{op: "solve", latency: time.Since(t0)})
					if *check {
						if r := sstar.Residual(cur, x, b); r > 1e-8 {
							fail(fmt.Errorf("client %d: residual %g", ci, r))
						}
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	c, err := client.Dial(net_, target)
	if err != nil {
		log.Fatalf("sstar-load: stats dial: %v", err)
	}
	st, err := c.Stats()
	c.Close()
	if err != nil {
		log.Fatalf("sstar-load: stats: %v", err)
	}

	rep := buildReport(samples, nerr, elapsed, st)
	rep.Config.Addr = target
	rep.Config.Clients = *clients
	rep.Config.Duration = duration.String()
	rep.Config.Patterns = *patterns
	rep.Config.NX = *nx
	rep.Config.Mix = *mix
	rep.Config.Check = *check

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("sstar-load: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("sstar-load: %v", err)
	}
	log.Printf("sstar-load: %d requests in %.2fs = %.0f req/s, p50 %.2fms p99 %.2fms, cache hit rate %.0f%%, core split %d workers x %d factor-workers, %d errors -> %s",
		rep.Requests, rep.ElapsedS, rep.ThroughputRPS, rep.Latency.P50ms, rep.Latency.P99ms, 100*rep.Cache.HitRate, st.Workers, st.FactorWorkers, rep.Errors, *out)
}

func parseMix(s string) [3]int {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		log.Fatalf("sstar-load: -mix wants 3 comma-separated weights, got %q", s)
	}
	var w [3]int
	total := 0
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			log.Fatalf("sstar-load: bad -mix weight %q", p)
		}
		w[i] = v
		total += v
	}
	if total == 0 {
		log.Fatalf("sstar-load: -mix weights sum to zero")
	}
	return w
}

// pick returns 0 (factorize), 1 (refactorize) or 2 (solve) by weight.
func pick(rng *rand.Rand, w [3]int) int {
	r := rng.Intn(w[0] + w[1] + w[2])
	if r < w[0] {
		return 0
	}
	if r < w[0]+w[1] {
		return 1
	}
	return 2
}

func summarize(ls []time.Duration) latencySummary {
	if len(ls) == 0 {
		return latencySummary{}
	}
	s := append([]time.Duration(nil), ls...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(s)-1))
		return float64(s[idx]) / 1e6
	}
	return latencySummary{
		Count: len(s),
		P50ms: pct(0.50),
		P90ms: pct(0.90),
		P99ms: pct(0.99),
		MaxMs: float64(s[len(s)-1]) / 1e6,
	}
}

func buildReport(samples []opSample, nerr int, elapsed time.Duration, st server.ServerStats) *report {
	rep := &report{Ops: make(map[string]latencySummary)}
	all := make([]time.Duration, 0, len(samples))
	byOp := make(map[string][]time.Duration)
	for _, s := range samples {
		all = append(all, s.latency)
		byOp[s.op] = append(byOp[s.op], s.latency)
	}
	rep.ElapsedS = elapsed.Seconds()
	rep.Requests = len(samples)
	rep.Errors = nerr
	if elapsed > 0 {
		rep.ThroughputRPS = float64(len(samples)) / elapsed.Seconds()
	}
	rep.Latency = summarize(all)
	for op, ls := range byOp {
		rep.Ops[op] = summarize(ls)
	}
	rep.Cache.Hits = st.CacheHits
	rep.Cache.Misses = st.CacheMisses
	rep.Cache.HitRate = st.HitRate()
	rep.Server = st
	return rep
}
