// Command sstar-solve factorizes a sparse system and solves it against a
// random (or all-ones) right-hand side, reporting fill, timing and the
// backward-error residual.
//
// The matrix comes from a Matrix Market file or from one of the built-in
// benchmark generators:
//
//	sstar-solve -file m.mtx
//	sstar-solve -gen goodwin -scale 0.5 -mapping 2d -p 16 -machine t3e
//	sstar-solve -gen goodwin -workers 8 -trace out.json
//
// -trace FILE records the run through the library's Observer hook and
// writes a Chrome trace_event JSON timeline (open in chrome://tracing or
// https://ui.perfetto.dev): the analyze/factor/solve phases, and with
// -workers > 1 one lane per executor worker showing every Factor(k) and
// Update(k,j) task of the numeric DAG. With a virtual-machine mapping it
// additionally records per-processor utilization, summarized on stdout.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"sstar"
	"sstar/internal/bench"
)

func main() {
	var (
		file    = flag.String("file", "", "Matrix Market file to solve")
		gen     = flag.String("gen", "", "benchmark matrix name (see sstar-info -list)")
		scale   = flag.Float64("scale", 1.0, "generator size multiplier")
		mapping = flag.String("mapping", "seq", "seq | 1d-ca | 1d-rapid | 2d | 2d-sync")
		procs   = flag.Int("p", 4, "processor count for parallel mappings")
		mach    = flag.String("machine", "t3e", "virtual machine model: t3d | t3e")
		bsize   = flag.Int("bsize", 0, "supernode panel width; 0 = structure-adaptive")
		amalg   = flag.Int("r", 0, "amalgamation factor; 0 under -bsize 0 = cost model chooses")
		workers = flag.Int("workers", 0, "host goroutines for the numeric factor phase (seq mapping; 0 = sequential)")
		ones    = flag.Bool("ones", false, "use b = A*1 instead of a random rhs (exact solution all ones)")
		trace   = flag.String("trace", "", "write a Chrome trace JSON timeline of the run to this file")
		btf     = flag.Bool("btf", false, "factor through the block upper triangular decomposition (sequential only)")
	)
	flag.Parse()

	var a *sstar.Matrix
	switch {
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if isHB(*file) {
			a, err = sstar.ReadHarwellBoeing(f)
		} else {
			a, err = sstar.ReadMatrixMarket(f)
		}
		if err != nil {
			fatalf("%v", err)
		}
	case *gen != "":
		spec := bench.ByName(*gen)
		if spec == nil {
			fatalf("unknown generator %q (try sstar-info -list)", *gen)
		}
		a = spec.Gen(*scale)
	default:
		fatalf("need -file or -gen")
	}
	fmt.Printf("matrix: %d x %d, %d nonzeros\n", a.N, a.M, a.Nnz())

	b := make([]float64, a.N)
	var xTrue []float64
	if *ones {
		xTrue = make([]float64, a.N)
		for i := range xTrue {
			xTrue[i] = 1
		}
		a.MulVec(xTrue, b)
	} else {
		rng := rand.New(rand.NewSource(42))
		for i := range b {
			b[i] = 2*rng.Float64() - 1
		}
	}

	opts := sstar.DefaultOptions()
	opts.BlockSize = *bsize
	opts.Amalgamate = *amalg
	opts.HostWorkers = *workers
	var tr *sstar.Trace
	if *trace != "" {
		tr = sstar.NewTrace(0)
		opts.Observer = tr
	}

	if *btf {
		start := time.Now()
		bf, err := sstar.FactorizeBTF(a, opts)
		if err != nil {
			fatalf("btf factorization failed: %v", err)
		}
		x, err := bf.Solve(b)
		if err != nil {
			fatalf("btf solve failed: %v", err)
		}
		fmt.Printf("BTF: %d irreducible blocks, %.0f%% of the matrix factored, wall-clock %v\n",
			bf.NumBlocks(), 100*bf.FactoredFraction(), time.Since(start).Round(time.Microsecond))
		fmt.Printf("residual ||Ax-b||/(||A|| ||x|| + ||b||): %.3e\n", sstar.Residual(a, x, b))
		if tr != nil {
			if err := writeTrace(*trace, tr); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("trace: %d spans -> %s (%d dropped)\n", tr.Len(), *trace, tr.Dropped())
		}
		return
	}

	if *mapping != "seq" {
		opts.Procs = *procs
		opts.Machine = sstar.MachineName(*mach)
		opts.Mapping = sstar.Mapping(*mapping)
		opts.TraceParallel = *trace != ""
	}
	start := time.Now()
	fact, err := sstar.Factorize(a, opts)
	if err != nil {
		fatalf("factorization failed: %v", err)
	}
	stats := fact.RunStats()
	wall := time.Since(start)
	x, err := fact.Solve(b)
	if err != nil {
		fatalf("solve failed: %v", err)
	}
	fmt.Printf("factor storage entries: %d (static fill %d), %d blocks\n",
		fact.FillIn(), fact.StaticFill(), fact.Blocks())
	if bc := fact.Blocking(); bc.Adaptive {
		fmt.Printf("blocking: adaptive (max width %d, r=%d, %d panels)\n", bc.MaxBlock, bc.Amalgamate, bc.Panels)
	} else {
		fmt.Printf("blocking: fixed (bsize %d, r=%d, %d panels)\n", bc.MaxBlock, bc.Amalgamate, bc.Panels)
	}
	fmt.Printf("host wall-clock: %v\n", wall.Round(time.Microsecond))
	if stats != nil {
		fmt.Printf("virtual machine %s x %d (%s): parallel time %.4fs, %.1f MFLOPS, %d msgs, %d bytes, load balance %.3f\n",
			*mach, *procs, *mapping, stats.ParallelTime, stats.MFLOPS, stats.SentMessages, stats.SentBytes, stats.LoadBalance)
		if stats.Utilization != nil {
			fmt.Print("utilization:")
			for i, u := range stats.Utilization {
				fmt.Printf(" P%d=%.0f%%", i, 100*u)
			}
			fmt.Println()
		}
	}
	fmt.Printf("residual ||Ax-b||/(||A|| ||x|| + ||b||): %.3e\n", sstar.Residual(a, x, b))
	if tr != nil {
		if err := writeTrace(*trace, tr); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("trace: %d spans -> %s (%d dropped)\n", tr.Len(), *trace, tr.Dropped())
	}
	if xTrue != nil {
		maxErr := 0.0
		for i := range x {
			if d := x[i] - xTrue[i]; d > maxErr {
				maxErr = d
			} else if -d > maxErr {
				maxErr = -d
			}
		}
		fmt.Printf("max error vs exact ones solution: %.3e\n", maxErr)
	}
}

// writeTrace dumps the recorded timeline as Chrome trace JSON.
func writeTrace(path string, tr *sstar.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// isHB guesses Harwell-Boeing input from the file suffix.
func isHB(path string) bool {
	for _, suf := range []string{".rua", ".rsa", ".pua", ".psa", ".hb", ".rb"} {
		if strings.HasSuffix(strings.ToLower(path), suf) {
			return true
		}
	}
	return false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sstar-solve: "+format+"\n", args...)
	os.Exit(1)
}
