// Command sstar-bench regenerates the tables and figures of the paper's
// evaluation section on the virtual T3D/T3E machines.
//
// Usage:
//
//	sstar-bench -experiment all                 # everything (several minutes)
//	sstar-bench -experiment table6 -scale 0.5   # one artifact, smaller inputs
//	sstar-bench -experiment ablations -matrix goodwin
//	sstar-bench -experiment kernels             # kernel GFLOP/s -> BENCH_kernels.json
//	sstar-bench -experiment blocking            # fixed vs adaptive blocking sweep -> blocking section of BENCH_kernels.json
//	sstar-bench -experiment hostpar             # wall-clock parallel factorization speedup -> BENCH_hostpar.json
//	sstar-bench -experiment hostpar -procs 1,2,4,8,16   # custom worker sweep
//	sstar-bench -trace out.json -matrix goodwin -procs 8  # Chrome trace of one run
//
// Experiments: kernels blocking hostpar table1 table2 table3 table4 table5
// table6 table7 fig16 fig17 fig18 ablations all.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"sstar/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which table/figure to regenerate (table1..table7, fig16..fig18, ablations, all)")
		scale      = flag.Float64("scale", 1.0, "matrix size multiplier relative to DESIGN.md sizes")
		bsize      = flag.Int("bsize", 25, "supernode panel width (paper: 25)")
		amalg      = flag.Int("r", 4, "amalgamation factor (paper: 4-6)")
		procsFlag  = flag.String("procs", "", "comma-separated processor counts (default: per-experiment paper values)")
		matrix     = flag.String("matrix", "goodwin", "matrix for the ablation sweeps and -trace runs")
		out        = flag.String("out", "", "output path for the kernels/hostpar reports (default BENCH_<experiment>.json)")
		trace      = flag.String("trace", "", "trace one host-parallel factorization of -matrix and write Chrome trace JSON to this file, then exit")
	)
	flag.Parse()
	cfg := bench.Config{Scale: *scale, BSize: *bsize, Amalg: *amalg}

	if *trace != "" {
		workers := runtime.NumCPU()
		if *procsFlag != "" {
			if v, err := strconv.Atoi(strings.TrimSpace(strings.Split(*procsFlag, ",")[0])); err == nil && v > 0 {
				workers = v
			}
		}
		sum, err := bench.TraceRun(cfg, *matrix, workers, *trace)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("traced %s (n=%d nnz=%d): %d tasks on %d workers in %.3fs, %d spans -> %s (%d dropped)\n",
			sum.Matrix, sum.Order, sum.Nnz, sum.Tasks, sum.Workers, sum.Seconds, sum.Spans, sum.Path, sum.Dropped)
		return
	}

	parseProcs := func(def []int) []int {
		if *procsFlag == "" {
			return def
		}
		var out []int
		for _, s := range strings.Split(*procsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v <= 0 {
				fatalf("bad -procs entry %q", s)
			}
			out = append(out, v)
		}
		return out
	}

	type job struct {
		name string
		run  func() (*bench.Table, error)
	}
	outPath := func(def string) string {
		if *out != "" {
			return *out
		}
		return def
	}

	jobs := []job{
		{"kernels", func() (*bench.Table, error) {
			rep, err := bench.Kernels(cfg)
			if err != nil {
				return nil, err
			}
			path := outPath("BENCH_kernels.json")
			if err := rep.WriteJSON(path); err != nil {
				return nil, err
			}
			fmt.Printf("wrote %s\n", path)
			return rep.Table(), nil
		}},
		{"blocking", func() (*bench.Table, error) {
			results, err := bench.Blocking(cfg)
			if err != nil {
				return nil, err
			}
			// Refresh the blocking section of the tracked kernels artifact
			// in place when it exists; the kernels experiment regenerates
			// the whole file including this section.
			path := outPath("BENCH_kernels.json")
			if rep, rerr := bench.ReadKernelReport(path); rerr == nil {
				rep.Blocking = results
				rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
				if err := rep.WriteJSON(path); err != nil {
					return nil, err
				}
				fmt.Printf("updated blocking section of %s\n", path)
			} else {
				fmt.Printf("note: %s not found or unreadable; run -experiment kernels to create it (sweep results printed only)\n", path)
			}
			return bench.BlockingTable(results, cfg), nil
		}},
		{"hostpar", func() (*bench.Table, error) {
			rep, err := bench.Hostpar(cfg, parseProcs(bench.HostparWorkerCounts()))
			if err != nil {
				return nil, err
			}
			path := outPath("BENCH_hostpar.json")
			if err := rep.WriteJSON(path); err != nil {
				return nil, err
			}
			fmt.Printf("wrote %s\n", path)
			return rep.Table(), nil
		}},
		{"table1", func() (*bench.Table, error) { return bench.Table1(cfg) }},
		{"table2", func() (*bench.Table, error) { return bench.Table2(cfg) }},
		{"table3", func() (*bench.Table, error) { return bench.Table3(cfg, parseProcs([]int{2, 4, 8, 16, 32, 64})) }},
		{"fig16", func() (*bench.Table, error) { return bench.Fig16(cfg, parseProcs([]int{2, 4, 8, 16, 32})) }},
		{"table4", func() (*bench.Table, error) { return bench.Table4(cfg, parseProcs([]int{1, 2, 4, 8, 16, 32})) }},
		{"table5", func() (*bench.Table, error) { return bench.Table5(cfg, parseProcs([]int{16, 32, 64})) }},
		{"table6", func() (*bench.Table, error) { return bench.Table6(cfg, parseProcs([]int{8, 16, 32, 64, 128})) }},
		{"fig17", func() (*bench.Table, error) { return bench.Fig17(cfg, firstOr(parseProcs(nil), 32)) }},
		{"fig18", func() (*bench.Table, error) { return bench.Fig18(cfg, firstOr(parseProcs(nil), 32)) }},
		{"table7", func() (*bench.Table, error) { return bench.Table7(cfg, parseProcs([]int{2, 4, 8, 16, 32, 64})) }},
		{"blas3", func() (*bench.Table, error) { return bench.Blas3Fraction(cfg) }},
		{"theorem2", func() (*bench.Table, error) { return bench.Theorem2Buffers(cfg, parseProcs([]int{8, 32, 128})) }},
		{"solvecost", func() (*bench.Table, error) { return bench.SolveCost(cfg, firstOr(parseProcs(nil), 16)) }},
		{"scaling", func() (*bench.Table, error) { return bench.ScalingReport(cfg, parseProcs([]int{4, 16, 64})) }},
		{"caveats", func() (*bench.Table, error) { return bench.Caveats(cfg, firstOr(parseProcs(nil), 32)) }},
		{"prepcost", func() (*bench.Table, error) { return bench.PrepCost(cfg) }},
		{"ablations", func() (*bench.Table, error) {
			// Ablations print several tables; run them here and return the
			// last for uniformity.
			var last *bench.Table
			for _, f := range []func() (*bench.Table, error){
				func() (*bench.Table, error) { return bench.AblationBlockSize(cfg, *matrix, []int{8, 16, 25, 40}, 16) },
				func() (*bench.Table, error) { return bench.AblationAmalgamation(cfg, *matrix, []int{0, 2, 4, 6, 8}) },
				func() (*bench.Table, error) { return bench.AblationGridAspect(cfg, *matrix, 16) },
				func() (*bench.Table, error) { return bench.AblationOrdering(cfg) },
				func() (*bench.Table, error) {
					return bench.AblationMapping(cfg, *matrix, parseProcs([]int{2, 4, 8, 16, 32}))
				},
			} {
				t, err := f()
				if err != nil {
					return nil, err
				}
				if last != nil {
					fmt.Println(last.Render())
				}
				last = t
			}
			return last, nil
		}},
	}

	ran := false
	for _, j := range jobs {
		if *experiment != "all" && *experiment != j.name {
			continue
		}
		ran = true
		start := time.Now()
		t, err := j.run()
		if err != nil {
			fatalf("%s: %v", j.name, err)
		}
		fmt.Println(t.Render())
		fmt.Printf("[%s regenerated in %v]\n\n", j.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fatalf("unknown experiment %q", *experiment)
	}
}

func firstOr(xs []int, def int) int {
	if len(xs) > 0 {
		return xs[0]
	}
	return def
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sstar-bench: "+format+"\n", args...)
	os.Exit(1)
}
