// Command sstar-serve runs the sparse-solve service: a long-running server
// that factorizes and solves client-submitted systems over the sstar binary
// protocol, with a structure-keyed analysis cache and a values-only
// refactorize fast path (see DESIGN.md, "Solver service").
//
// Usage:
//
//	sstar-serve -tcp :7071                        # serve TCP
//	sstar-serve -unix /tmp/sstar.sock             # serve a Unix socket
//	sstar-serve -tcp :7071 -unix /tmp/sstar.sock  # both at once
//	sstar-serve -tcp :7071 -workers 8 -cache 128  # bigger pool and cache
//	sstar-serve -tcp :7071 -admin :8080           # + HTTP admin listener
//
// Cluster mode makes the process one shard of a multi-node fleet (see
// DESIGN.md, "Cluster"): requests for structures placed elsewhere are
// refused with typed redirects, factors are replicated asynchronously to
// the ring successor, and cmd/sstar-router fronts the fleet:
//
//	sstar-serve -tcp :7071 -cluster-self 127.0.0.1:7071 \
//	    -cluster-peers 127.0.0.1:7071,127.0.0.1:7072,127.0.0.1:7073
//
// The admin listener serves Prometheus metrics on /metrics, the most recent
// request spans as Chrome trace JSON on /debug/trace, and the Go profiling
// endpoints under /debug/pprof. It speaks plain HTTP with no auth — bind it
// to localhost or a private interface.
//
// The server runs until SIGINT/SIGTERM, then shuts down cleanly.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sstar/internal/cluster"
	"sstar/internal/server"
	"sstar/internal/xblas"
)

// parseTenantWeights parses "a=3,b=1" into a weight map. Weights must be
// positive integers; names must be non-empty.
func parseTenantWeights(s string) (map[string]int, error) {
	out := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad entry %q, want tenant=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad weight %q for tenant %q, want a positive integer", val, name)
		}
		out[name] = w
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenant=weight entries in %q", s)
	}
	return out, nil
}

func main() {
	var (
		tcpAddr  = flag.String("tcp", "", "TCP listen address (e.g. :7071); empty disables")
		unixPath = flag.String("unix", "", "Unix socket path; empty disables")
		workers  = flag.Int("workers", 4, "concurrent factorize/solve workers")
		factorW  = flag.Int("factor-workers", 0, "goroutines per numeric factor phase; 0 = NumCPU/workers (core split)")
		cache    = flag.Int("cache", 64, "analysis cache capacity (structures)")
		memMB    = flag.Int64("mem-budget", 0, "handle memory budget in MiB; LRU handles are evicted beyond it (0 = unlimited)")
		ttl      = flag.Duration("handle-ttl", 0, "evict handles idle for this long, e.g. 10m (0 = never)")
		drain    = flag.Duration("drain", 10*time.Second, "max time to wait for in-flight requests on shutdown")
		admin    = flag.String("admin", "", "HTTP admin listen address (/metrics, /debug/trace, /debug/pprof); empty disables")
		autotune = flag.Bool("autotune", true, "measure the xblas kernels at startup and pick the best cache-block tile shape")
		quiet    = flag.Bool("quiet", false, "suppress per-event logging")

		coalesceWidth  = flag.Int("coalesce-width", 0, "max solves merged into one batched solve; 0 = default (32), 1 disables coalescing")
		coalesceWindow = flag.Duration("coalesce-window", 0, "extra time a dequeued solve waits for ride-alongs, e.g. 200us (0 = opportunistic only)")
		tenantWeights  = flag.String("tenant-weights", "", "per-tenant fair-share weights, e.g. prod=4,batch=1 (unlisted tenants get 1)")

		clusterSelf  = flag.String("cluster-self", "", "this shard's advertised address; enables cluster mode")
		clusterPeers = flag.String("cluster-peers", "", "comma-separated advertised addresses of every shard (including self)")
		clusterJoin  = flag.String("cluster-join", "", "address of any live cluster member to join through (dynamic membership; needs -cluster-self)")
		vnodes       = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per shard on the placement ring")
		replicas     = flag.Int("replicas", 2, "copies per structure including the owner")
		heartbeat    = flag.Duration("heartbeat", 0, "peer heartbeat interval; 0 = default (250ms), negative disables the failure detector")
		repairEvery  = flag.Duration("repair-interval", 0, "anti-entropy repair sweep interval; 0 = default (2s), negative disables the periodic sweep")
	)
	flag.Parse()
	if *autotune {
		tc := xblas.Autotune()
		log.Printf("sstar-serve: xblas autotune chose tile (mc=%d, nc=%d), gemm %.0fus trsm %.0fus", tc.MC, tc.NC, tc.GemmNs/1e3, tc.TrsmNs/1e3)
	}
	if *tcpAddr == "" && *unixPath == "" {
		fmt.Fprintln(os.Stderr, "sstar-serve: need -tcp and/or -unix")
		flag.Usage()
		os.Exit(2)
	}

	cfg := server.Config{
		Workers:        *workers,
		FactorWorkers:  *factorW,
		CacheEntries:   *cache,
		MemBudget:      *memMB << 20,
		HandleTTL:      *ttl,
		DrainTimeout:   *drain,
		CoalesceWidth:  *coalesceWidth,
		CoalesceWindow: *coalesceWindow,
	}
	if *tenantWeights != "" {
		w, err := parseTenantWeights(*tenantWeights)
		if err != nil {
			log.Fatalf("sstar-serve: -tenant-weights: %v", err)
		}
		cfg.TenantWeights = w
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	if *clusterJoin != "" && *clusterSelf == "" {
		log.Fatalf("sstar-serve: -cluster-join needs -cluster-self (the address this shard advertises)")
	}
	var shard *cluster.Shard
	if *clusterSelf != "" {
		var peers []string
		for _, p := range strings.Split(*clusterPeers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		shardCfg := cluster.ShardConfig{
			Self:              *clusterSelf,
			Peers:             peers,
			Join:              *clusterJoin,
			VNodes:            *vnodes,
			Replicas:          *replicas,
			HeartbeatInterval: *heartbeat,
			RepairInterval:    *repairEvery,
		}
		if !*quiet {
			shardCfg.Logf = log.Printf
		}
		var err error
		shard, err = cluster.NewShard(shardCfg)
		if err != nil {
			log.Fatalf("sstar-serve: %v", err)
		}
		cfg.Cluster = shard
		if *clusterJoin != "" {
			log.Printf("sstar-serve: cluster shard %s joining via %s (vnodes=%d replicas=%d)", *clusterSelf, *clusterJoin, *vnodes, *replicas)
		} else {
			log.Printf("sstar-serve: cluster shard %s of %d peers (vnodes=%d replicas=%d)", *clusterSelf, len(peers), *vnodes, *replicas)
		}
	}
	s := server.New(cfg)
	if shard != nil {
		shard.Bind(s)
	}

	errc := make(chan error, 2)
	serve := func(network, addr string) {
		l, err := net.Listen(network, addr)
		if err != nil {
			errc <- err
			return
		}
		st := s.Stats()
		log.Printf("sstar-serve: listening on %s %s (workers=%d factor-workers=%d cache=%d)", network, addr, st.Workers, st.FactorWorkers, *cache)
		errc <- s.Serve(l)
	}
	if *tcpAddr != "" {
		go serve("tcp", *tcpAddr)
	}
	if *unixPath != "" {
		os.Remove(*unixPath) // a stale socket from a previous run
		go serve("unix", *unixPath)
	}
	if *admin != "" {
		al, err := net.Listen("tcp", *admin)
		if err != nil {
			log.Fatalf("sstar-serve: admin listener: %v", err)
		}
		defer al.Close()
		log.Printf("sstar-serve: admin HTTP on %s (/metrics, /debug/trace, /debug/pprof)", al.Addr())
		go func() {
			if err := http.Serve(al, s.AdminHandler()); err != nil {
				log.Printf("sstar-serve: admin listener: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil {
			log.Fatalf("sstar-serve: %v", err)
		}
	case got := <-sig:
		log.Printf("sstar-serve: %v, shutting down", got)
	}
	if shard != nil {
		// Announce the departure first, so peers bump the epoch and route
		// around this shard instead of waiting for the failure detector.
		shard.Leave()
	}
	s.Close()
	if shard != nil {
		shard.Close()
	}
	if *unixPath != "" {
		os.Remove(*unixPath)
	}
	st := s.Stats()
	log.Printf("sstar-serve: served %d requests (%d errors, %d shed), cache %d/%d hit/miss (%.0f%%), %d live handles (%d evicted)",
		st.Requests, st.Errors, st.Sheds, st.CacheHits, st.CacheMisses, 100*st.HitRate(), st.Handles, st.Evictions)
}
