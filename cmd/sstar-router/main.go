// Command sstar-router fronts a fleet of sstar-serve cluster shards with the
// ordinary client protocol: clients connect to the router exactly as they
// would to a single server, and the router places each request on the shard
// that owns its structure (consistent hashing), follows redirects, fails
// solves over to the replica when the owner dies — without refactorizing —
// and scatters wide multi-RHS panels across replica holders.
//
// Usage:
//
//	sstar-router -tcp :7070 \
//	    -shards 127.0.0.1:7071,127.0.0.1:7072,127.0.0.1:7073
//
// The -vnodes and -replicas flags must match the shards' configuration:
// placement is a pure function of (membership, vnodes), computed
// independently by router and shards.
//
// The router runs until SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"sstar/internal/cluster"
	"sstar/internal/obs"
)

func main() {
	var (
		tcpAddr  = flag.String("tcp", ":7070", "TCP listen address for clients")
		shards   = flag.String("shards", "", "comma-separated shard addresses (required)")
		vnodes   = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per shard on the placement ring (must match the shards)")
		replicas = flag.Int("replicas", 2, "copies per structure including the owner (must match the shards)")
		admin    = flag.String("admin", "", "HTTP admin listen address (/metrics); empty disables")
		quiet    = flag.Bool("quiet", false, "suppress per-event logging")
	)
	flag.Parse()
	if *shards == "" {
		fmt.Fprintln(os.Stderr, "sstar-router: need -shards")
		flag.Usage()
		os.Exit(2)
	}

	cfg := cluster.RouterConfig{
		Shards:   strings.Split(*shards, ","),
		VNodes:   *vnodes,
		Replicas: *replicas,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	r, err := cluster.NewRouter(cfg)
	if err != nil {
		log.Fatalf("sstar-router: %v", err)
	}

	if *admin != "" {
		reg := obs.NewRegistry()
		r.Bind(reg)
		al, err := net.Listen("tcp", *admin)
		if err != nil {
			log.Fatalf("sstar-router: admin listener: %v", err)
		}
		defer al.Close()
		log.Printf("sstar-router: admin HTTP on %s (/metrics)", al.Addr())
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		})
		go func() {
			if err := http.Serve(al, mux); err != nil {
				log.Printf("sstar-router: admin listener: %v", err)
			}
		}()
	}

	l, err := net.Listen("tcp", *tcpAddr)
	if err != nil {
		log.Fatalf("sstar-router: %v", err)
	}
	log.Printf("sstar-router: listening on %s, fronting %d shards (vnodes=%d replicas=%d)", l.Addr(), len(cfg.Shards), *vnodes, *replicas)

	errc := make(chan error, 1)
	go func() { errc <- r.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil {
			log.Fatalf("sstar-router: %v", err)
		}
	case got := <-sig:
		log.Printf("sstar-router: %v, shutting down", got)
	}
	r.Close()
	st := r.Stats()
	log.Printf("sstar-router: routed %d requests (%d errors), %d failovers, %d scatters, %d redirects followed, %d ambiguous, %d ring refreshes (epoch %d)",
		st.Requests, st.Errors, st.Failovers, st.Scatters, st.Redirects, st.Ambiguous, st.RingRefreshes, st.Epoch)
}
