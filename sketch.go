package sstar

import "sstar/internal/sparse"

// sketchLanes is the minhash width of a PatternSketch. 24 lanes put the
// Jaccard estimator's standard error around 1/sqrt(24) ≈ 0.2 — coarse, but
// the sketch only has to rank candidates; Analysis.Patch then measures the
// exact diff and falls back on its own.
const sketchLanes = 24

// PatternSketch is a compact minhash fingerprint of a nonzero pattern, built
// for the solver service's near-miss cache lookup: two sketches estimate the
// Jaccard similarity of their entry sets in O(sketchLanes) without touching
// either pattern. A pure function of the pattern (values excluded), so equal
// patterns always sketch identically.
type PatternSketch struct {
	N     int
	Lanes [sketchLanes]uint64
}

// SketchOf fingerprints the nonzero pattern of a.
func SketchOf(a *Matrix) PatternSketch { return sketchPattern(sparse.PatternOf(a)) }

func sketchPattern(p *sparse.Pattern) PatternSketch {
	s := PatternSketch{N: p.N}
	for l := range s.Lanes {
		s.Lanes[l] = ^uint64(0)
	}
	for i := 0; i < p.N; i++ {
		for _, j := range p.Row(i) {
			e := mix64(uint64(i)<<32 | uint64(j))
			for l := range s.Lanes {
				if h := mix64(e + laneSalt*uint64(l+1)); h < s.Lanes[l] {
					s.Lanes[l] = h
				}
			}
		}
	}
	return s
}

// laneSalt decorrelates the minhash lanes; any odd constant with good bit
// dispersion works (this is splitmix64's increment).
const laneSalt = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finalizer — a cheap 64-bit bijection with full
// avalanche, which is all a minhash needs.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Similarity estimates the Jaccard similarity of the two underlying entry
// sets (matching-lane fraction), or 0 when the orders differ — patterns of
// different order are never patch candidates.
func (s PatternSketch) Similarity(t PatternSketch) float64 {
	if s.N != t.N {
		return 0
	}
	match := 0
	for l := range s.Lanes {
		if s.Lanes[l] == t.Lanes[l] {
			match++
		}
	}
	return float64(match) / float64(sketchLanes)
}

// Sketch returns the pattern sketch of the analyzed structure.
func (an *Analysis) Sketch() PatternSketch {
	an.sketchOnce.Do(func() { an.sketch = sketchPattern(an.pat) })
	return an.sketch
}
