GO ?= go
SERVE_ADDR ?= 127.0.0.1:7071

.PHONY: check tier1 build test race chaos cluster cluster-churn fuzz bench-kernels bench-blocking benchpar bench-analyze bench-tenants bench-churn serve loadtest trace

check: ## gofmt + vet + build + tests + race detector (CI gate)
	sh scripts/check.sh

tier1: ## vet + build + full tests (the quick must-stay-green gate)
	sh scripts/tier1.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race . ./internal/machine ./internal/core ./internal/xblas ./internal/server ./internal/obs ./client ./internal/cluster ./internal/symbolic ./internal/supernode

chaos: ## fault-injection suite: chaos conn/proxy tests + the end-to-end kill/restart workload, race detector on
	$(GO) test -race -count=1 ./internal/chaos
	$(GO) test -race -count=1 -run 'TestChaosEndToEnd' -timeout 600s ./internal/server
	$(GO) test -race -count=1 -run 'TestClusterChaosFailover' -timeout 600s ./internal/cluster

cluster: ## the sharded-cluster suite: ring placement, redirects, replication failover, scatter, chaos e2e — race detector on
	$(GO) test -race -count=1 -timeout 600s ./internal/cluster

cluster-churn: ## the self-healing suite: membership churn property test + kill/rejoin and partition e2e — race detector on
	$(GO) test -race -count=1 -run 'TestChurnConvergence|TestSelfHealKillRejoinE2E|TestClusterPartitionHeal' -timeout 600s ./internal/cluster

fuzz: ## short fuzz smokes over the wire codec and the server request/response decoders
	$(GO) test -run='^$$' -fuzz='^FuzzReadFrame$$' -fuzztime=10s ./internal/wire
	$(GO) test -run='^$$' -fuzz='^FuzzRequestDecode$$' -fuzztime=10s ./internal/server
	$(GO) test -run='^$$' -fuzz='^FuzzRedirectDecode$$' -fuzztime=10s ./internal/server
	$(GO) test -run='^$$' -fuzz='^FuzzMembershipDecode$$' -fuzztime=10s ./internal/server

bench-kernels: ## regenerate the tracked kernel benchmark report
	$(GO) run ./cmd/sstar-bench -experiment kernels -out BENCH_kernels.json

bench-blocking: ## refresh the fixed-vs-adaptive blocking section of BENCH_kernels.json
	$(GO) run ./cmd/sstar-bench -experiment blocking -out BENCH_kernels.json

benchpar: ## regenerate the tracked host-parallel factorization speedup report
	$(GO) run ./cmd/sstar-bench -experiment hostpar -out BENCH_hostpar.json

bench-analyze: ## refresh the cold_analysis section of BENCH_service.json (cold-start churn + seq/par/incremental analyze)
	$(GO) run ./cmd/sstar-load -cold -nx 100 -clients 4 -duration 10s -out BENCH_service.json

bench-tenants: ## refresh the multi_tenant section of BENCH_service.json (per-tenant solve tails: coalescing off/on, then + a weight-1 factorize storm)
	$(GO) run ./cmd/sstar-load -tenants 3 -clients 16 -workers 2 -duration 3s -nx 48 -coalesce-window 2ms -out BENCH_service.json

bench-churn: ## refresh the availability section of BENCH_service.json (kill/rejoin rounds: failover, repair, rejoin-converged latency)
	$(GO) run ./cmd/sstar-load -churn -rounds 3 -out BENCH_service.json

trace: ## record a Chrome trace of a small parallel factorization and validate it
	$(GO) run ./cmd/sstar-bench -trace trace.json -matrix jpwh991 -scale 0.5 -procs 4
	$(GO) run ./scripts/checktrace trace.json

serve: ## run the sparse-solve service on $(SERVE_ADDR)
	$(GO) run ./cmd/sstar-serve -tcp $(SERVE_ADDR)

loadtest: ## regenerate the tracked service benchmark report (in-process server)
	$(GO) run ./cmd/sstar-load -clients 8 -duration 5s -patterns 2 -check -out BENCH_service.json
