GO ?= go

.PHONY: check build test race bench-kernels

check: ## vet + build + tests + race detector (CI gate)
	sh scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/machine ./internal/core ./internal/xblas

bench-kernels: ## regenerate the tracked kernel benchmark report
	$(GO) run ./cmd/sstar-bench -experiment kernels -out BENCH_kernels.json
