package sstar

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// recordingObserver collects every Phase and Task callback, safely across
// the executor's concurrent workers.
type recordingObserver struct {
	mu     sync.Mutex
	phases map[string]int
	tasks  []TaskEvent
}

func newRecordingObserver() *recordingObserver {
	return &recordingObserver{phases: make(map[string]int)}
}

func (r *recordingObserver) Phase(name string, d time.Duration) {
	r.mu.Lock()
	r.phases[name]++
	r.mu.Unlock()
}

func (r *recordingObserver) Task(ev TaskEvent) {
	r.mu.Lock()
	r.tasks = append(r.tasks, ev)
	r.mu.Unlock()
}

// TestObserverReceivesAllPhases: one Factorize + Solve through an Observer
// must report every pipeline phase exactly once and a Factor task per panel.
func TestObserverReceivesAllPhases(t *testing.T) {
	a := GenGrid2D(11, 10, false, GenOptions{Seed: 91, Convection: 0.3})
	rec := newRecordingObserver()
	o := DefaultOptions()
	o.HostWorkers = 4
	o.Observer = rec
	f, err := Factorize(a, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve(rhs(a.N, 92)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{PhaseOrdering, PhaseSymbolic, PhasePartition, PhaseFactor, PhaseSolve} {
		if rec.phases[name] != 1 {
			t.Fatalf("phase %q reported %d times, want 1 (all: %v)", name, rec.phases[name], rec.phases)
		}
	}
	nb := f.Blocks()
	factors, updates := 0, 0
	for _, ev := range rec.tasks {
		switch ev.Kind {
		case TaskFactor:
			factors++
			if ev.J != ev.K {
				t.Fatalf("Factor(%d) has J=%d, want J==K", ev.K, ev.J)
			}
		case TaskUpdate:
			updates++
			if ev.J <= ev.K {
				t.Fatalf("Update(%d,%d) must have J > K", ev.K, ev.J)
			}
		default:
			t.Fatalf("unknown task kind %q", ev.Kind)
		}
		if ev.Worker < 0 || ev.Worker >= 4 {
			t.Fatalf("task worker %d out of range [0,4)", ev.Worker)
		}
	}
	if factors != nb {
		t.Fatalf("got %d Factor tasks, want one per panel (%d)", factors, nb)
	}
	if updates == 0 {
		t.Fatal("no Update tasks reported")
	}

	// Refactorize reports the factor phase again through the stored observer.
	if err := f.Refactorize(a); err != nil {
		t.Fatal(err)
	}
	if rec.phases[PhaseFactor] != 2 {
		t.Fatalf("PhaseFactor after Refactorize reported %d times, want 2", rec.phases[PhaseFactor])
	}
}

// TestObserverDoesNotChangeFactors: the stability contract — attaching an
// Observer (including a Trace with its per-task time stamps) must leave the
// factors bit-identical, at any worker count.
func TestObserverDoesNotChangeFactors(t *testing.T) {
	a := GenGrid2D(12, 11, false, GenOptions{Seed: 93, Convection: 0.4})
	plain, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		o := DefaultOptions()
		o.HostWorkers = w
		o.Observer = NewTrace(0)
		traced, err := Factorize(a, o)
		if err != nil {
			t.Fatal(err)
		}
		factsBitIdentical(t, "traced vs plain", plain, traced)
	}
}

// TestTraceChromeJSON: a Factorize recorded through a Trace must render as
// valid Chrome trace_event JSON whose Factor/Update spans match the task DAG
// (one F(k) per panel, every U(k,j) with j > k).
func TestTraceChromeJSON(t *testing.T) {
	a := GenGrid2D(10, 10, false, GenOptions{Seed: 94})
	tr := NewTrace(0)
	o := DefaultOptions()
	o.HostWorkers = 3
	o.Observer = tr
	f, err := Factorize(a, o)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("trace recorded no spans")
	}
	if tr.Dropped() != 0 {
		t.Fatalf("trace dropped %d spans with default capacity", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
			Args struct {
				K int `json:"k"`
				J int `json:"j"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	factors := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has ph=%q, want complete event X", ev.Name, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur <= 0 {
			t.Fatalf("event %q has ts=%v dur=%v", ev.Name, ev.Ts, ev.Dur)
		}
		switch ev.Cat {
		case "factor":
			factors++
			if ev.Args.J != ev.Args.K {
				t.Fatalf("Factor span %q has j=%d, want j==k=%d", ev.Name, ev.Args.J, ev.Args.K)
			}
			if ev.TID < 0 || ev.TID >= 3 {
				t.Fatalf("Factor span %q on lane %d, want [0,3)", ev.Name, ev.TID)
			}
		case "update":
			if ev.Args.J <= ev.Args.K {
				t.Fatalf("Update span %q has j=%d <= k=%d", ev.Name, ev.Args.J, ev.Args.K)
			}
		}
	}
	if factors != f.Blocks() {
		t.Fatalf("trace holds %d Factor spans, want one per panel (%d)", factors, f.Blocks())
	}
}
