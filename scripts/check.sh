#!/bin/sh
# Repo-wide checks: formatting, vet, build, full tests, then the race
# detector over the packages with real concurrency (the virtual machine, the
# shared-memory kernels with the task-DAG executor, the solver service with
# its client, and the facade that drives the parallel factorization). Run
# from the repo root; exits nonzero on the first failure.
set -eux

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race . ./internal/machine ./internal/core ./internal/xblas ./internal/server ./client
