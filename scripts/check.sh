#!/bin/sh
# Repo-wide checks: formatting, vet, build, full tests, then the race
# detector over the packages with real concurrency (the virtual machine, the
# shared-memory kernels with the task-DAG executor, the solver service with
# its client, and the facade that drives the parallel factorization). Run
# from the repo root; exits nonzero on the first failure.
set -eux

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race . ./internal/machine ./internal/core ./internal/xblas ./internal/server ./internal/obs ./client ./internal/chaos ./internal/cluster ./internal/symbolic ./internal/supernode

# Chaos suite: the full client -> fault proxy -> server stack with a
# mid-workload server kill/restart; every completed solve must be
# bit-identical and nothing may leak. Bounded: ~10-20s under -race.
go test -race -count=1 -run 'TestChaosEndToEnd' -timeout 600s ./internal/server

# Cluster chaos suite: three shards behind fault-injecting proxies with one
# killed mid-workload; zero failed solves, bit-identical answers, and no
# refactorization on failover.
go test -race -count=1 -run 'TestClusterChaosFailover' -timeout 600s ./internal/cluster

# Self-healing suite (make cluster-churn): the membership churn property
# test (any join/leave/kill sequence converges to an empty manifest diff
# with every key at min(R, live) copies) plus the kill/rejoin and partition
# e2e tests — owner dies mid-workload behind fault proxies, replica is
# promoted, the rejoined member is repopulated by repair without ever
# refactorizing.
make cluster-churn

# Fuzz smoke: the frame codec and the request decoder face the raw network
# and must never panic; a few seconds of fuzzing guards the invariant
# without stalling CI (longer runs: make fuzz).
go test -run='^$' -fuzz='^FuzzReadFrame$' -fuzztime=5s ./internal/wire
go test -run='^$' -fuzz='^FuzzRequestDecode$' -fuzztime=5s ./internal/server
go test -run='^$' -fuzz='^FuzzRedirectDecode$' -fuzztime=5s ./internal/server
go test -run='^$' -fuzz='^FuzzMembershipDecode$' -fuzztime=5s ./internal/server

# Observability overhead guard: the disabled instrumentation path (no
# Observer, stats off) must stay allocation-free in the kernels and the
# obs primitives.
go test -run 'ZeroAlloc' -count=1 ./internal/obs ./internal/xblas

# Multi-tenant smoke: two zipf-skewed tenants through the coalescing server
# with a weight-1 factorize storm. The bench itself hard-fails unless the
# server attributes every tenant's traffic to its per-tenant counters; the
# greps pin the per-tenant tails and the storm accounting in the report.
go run ./cmd/sstar-load -tenants 2 -clients 8 -workers 2 -duration 1s -nx 20 -coalesce-window 1ms -out /tmp/sstar_tenant_smoke.json
grep -q '"tenant": "tenant-1"' /tmp/sstar_tenant_smoke.json
grep -q '"storm_factorizes"' /tmp/sstar_tenant_smoke.json
