#!/bin/sh
# Repo-wide checks: vet, build, full tests, then the race detector over the
# packages with real concurrency (the virtual machine and the shared-memory
# kernels). Run from the repo root; exits nonzero on the first failure.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/machine ./internal/core ./internal/xblas
