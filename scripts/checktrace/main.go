// Command checktrace sanity-checks a Chrome trace_event JSON file produced
// by the -trace flags of sstar-solve/sstar-bench or by a server's
// /debug/trace endpoint: the file must parse, every span must be a
// well-formed complete ("X") event, and the Factor/Update spans must
// respect the task DAG's structure (J == K on Factor, J > K on Update).
// Used by `make trace` as the end-to-end check that the tracing pipeline
// emits something the viewers will accept.
//
//	go run ./scripts/checktrace out.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	Args struct {
		K *int `json:"k"`
		J *int `json:"j"`
	} `json:"args"`
}

func main() {
	if len(os.Args) != 2 {
		fatalf("usage: checktrace <trace.json>")
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatalf("%v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		fatalf("%s: not valid JSON: %v", os.Args[1], err)
	}
	if len(doc.TraceEvents) == 0 {
		fatalf("%s: no trace events", os.Args[1])
	}
	var factors, updates, phases int
	lanes := map[int]bool{}
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			fatalf("event %d (%q): ph=%q, want complete event \"X\"", i, ev.Name, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur <= 0 {
			fatalf("event %d (%q): ts=%v dur=%v", i, ev.Name, ev.Ts, ev.Dur)
		}
		switch ev.Cat {
		case "factor":
			factors++
			lanes[ev.TID] = true
			if ev.Args.K == nil || ev.Args.J == nil || *ev.Args.J != *ev.Args.K {
				fatalf("event %d (%q): Factor span needs args j == k", i, ev.Name)
			}
		case "update":
			updates++
			lanes[ev.TID] = true
			if ev.Args.K == nil || ev.Args.J == nil || *ev.Args.J <= *ev.Args.K {
				fatalf("event %d (%q): Update span needs args j > k", i, ev.Name)
			}
		case "phase":
			phases++
		}
	}
	if factors == 0 {
		fatalf("%s: no Factor spans — the numeric phase was not traced", os.Args[1])
	}
	fmt.Printf("checktrace: %s ok — %d events (%d factor, %d update, %d phase) on %d lanes\n",
		os.Args[1], len(doc.TraceEvents), factors, updates, phases, len(lanes))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "checktrace: "+format+"\n", args...)
	os.Exit(1)
}
