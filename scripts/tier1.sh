#!/bin/sh
# Tier-1 gate: the minimal must-stay-green checks run on every change —
# static analysis, a clean build, and the full test suite. The heavier CI
# gate (race detector, chaos suite, fuzz smokes, formatting) lives in
# check.sh; tier-1 is the subset quick enough to run before every commit.
set -eux

go vet ./...
go build ./...
go test ./...

# The cluster package is all cross-shard concurrency (replication queues,
# failover, scatter/gather, and the self-healing machinery: heartbeat loops,
# membership merges, repair sweeps racing live traffic); its suite is fast
# enough to run under the race detector on every commit. The symbolic and
# supernode packages carry the
# parallel analyze stages (subtree workers, candidate sweep, block builds)
# whose byte-identity contract the race detector must see exercised.
go test -race ./internal/cluster ./internal/symbolic ./internal/supernode
