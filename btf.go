package sstar

import (
	"fmt"

	"sstar/internal/ordering"
)

// BTFFactorization factors a reducible matrix through its block upper
// triangular form: the matrix is permuted so all entries lie on or above a
// block diagonal of irreducible (strongly connected) blocks, only the
// diagonal blocks are LU-factored with S*, and solves back-substitute through
// the off-diagonal couplings. For reducible systems — circuit matrices
// especially — this factors far less than the whole matrix would need.
type BTFFactorization struct {
	n       int
	rowPerm []int
	colPerm []int
	starts  []int
	perm    *Matrix          // the permuted matrix (couplings + 1x1 values)
	blocks  []*Factorization // per diagonal block; nil for 1x1 blocks
	diag    []float64        // 1x1 block values, indexed by block
}

// FactorizeBTF computes the block triangular form of a and factors each
// irreducible diagonal block with S* (1-by-1 blocks are handled directly).
func FactorizeBTF(a *Matrix, o Options) (*BTFFactorization, error) {
	if err := validate(a, Options{}); err != nil {
		return nil, err
	}
	rowPerm, colPerm, starts := ordering.BlockTriangular(a)
	perm := a.Permute(rowPerm, colPerm)
	nb := len(starts) - 1
	f := &BTFFactorization{
		n: a.N, rowPerm: rowPerm, colPerm: colPerm, starts: starts,
		perm: perm, blocks: make([]*Factorization, nb), diag: make([]float64, nb),
	}
	for b := 0; b < nb; b++ {
		lo, hi := starts[b], starts[b+1]
		if hi-lo == 1 {
			v := perm.At(lo, lo)
			if v == 0 {
				return nil, fmt.Errorf("%w: btf 1x1 block at column %d", ErrSingular, lo)
			}
			f.diag[b] = v
			continue
		}
		sub := extractSquare(perm, lo, hi)
		bf, err := Factorize(sub, o)
		if err != nil {
			return nil, fmt.Errorf("sstar: btf: block %d (%d..%d): %w", b, lo, hi-1, err)
		}
		f.blocks[b] = bf
	}
	return f, nil
}

// extractSquare copies the [lo,hi) x [lo,hi) diagonal submatrix.
func extractSquare(a *Matrix, lo, hi int) *Matrix {
	coo := NewCOO(hi-lo, hi-lo)
	for i := lo; i < hi; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if j >= lo && j < hi {
				coo.Add(i-lo, j-lo, vals[k])
			}
		}
	}
	return coo.ToCSR()
}

// NumBlocks returns the number of irreducible diagonal blocks.
func (f *BTFFactorization) NumBlocks() int { return len(f.starts) - 1 }

// BlockSizes returns the sizes of the diagonal blocks in order.
func (f *BTFFactorization) BlockSizes() []int {
	out := make([]int, f.NumBlocks())
	for b := range out {
		out[b] = f.starts[b+1] - f.starts[b]
	}
	return out
}

// FactoredFraction returns the fraction of the matrix order covered by
// blocks larger than 1x1 — the share that actually needed LU factorization.
func (f *BTFFactorization) FactoredFraction() float64 {
	covered := 0
	for b, bf := range f.blocks {
		if bf != nil {
			covered += f.starts[b+1] - f.starts[b]
		}
	}
	return float64(covered) / float64(f.n)
}

// Solve solves A x = b through block back-substitution: the last block first,
// each block's right-hand side reduced by the couplings to already-solved
// later blocks.
func (f *BTFFactorization) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("sstar: rhs length %d, want %d", len(b), f.n)
	}
	y := make([]float64, f.n)
	for i := 0; i < f.n; i++ {
		y[f.rowPerm[i]] = b[i]
	}
	x := make([]float64, f.n)
	for blk := f.NumBlocks() - 1; blk >= 0; blk-- {
		lo, hi := f.starts[blk], f.starts[blk+1]
		rhs := make([]float64, hi-lo)
		for i := lo; i < hi; i++ {
			sum := y[i]
			cols, vals := f.perm.Row(i)
			for k, j := range cols {
				if j >= hi {
					sum -= vals[k] * x[j]
				}
			}
			rhs[i-lo] = sum
		}
		if bf := f.blocks[blk]; bf != nil {
			xb, err := bf.Solve(rhs)
			if err != nil {
				return nil, err
			}
			copy(x[lo:hi], xb)
		} else {
			x[lo] = rhs[0] / f.diag[blk]
		}
	}
	out := make([]float64, f.n)
	for j := 0; j < f.n; j++ {
		out[j] = x[f.colPerm[j]]
	}
	return out, nil
}

// Refactorize reuses the block decomposition and each block's symbolic
// analysis for a matrix with the same pattern but new values.
func (f *BTFFactorization) Refactorize(a *Matrix) error {
	if a.N != f.n {
		return fmt.Errorf("sstar: btf refactorize size mismatch")
	}
	perm := a.Permute(f.rowPerm, f.colPerm)
	f.perm = perm
	for b := range f.blocks {
		lo, hi := f.starts[b], f.starts[b+1]
		if f.blocks[b] == nil {
			v := perm.At(lo, lo)
			if v == 0 {
				return fmt.Errorf("%w: btf 1x1 block at column %d", ErrSingular, lo)
			}
			f.diag[b] = v
			continue
		}
		if err := f.blocks[b].Refactorize(extractSquare(perm, lo, hi)); err != nil {
			return fmt.Errorf("sstar: btf: block %d: %w", b, err)
		}
	}
	return nil
}
