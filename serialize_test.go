package sstar

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	a := GenGrid2D(10, 10, false, GenOptions{Seed: 75, WeakDiagFraction: 0.15})
	f, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := rhs(a.N, 76)
	x1, _ := f.Solve(b)
	x2, err := g.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("loaded factorization solves differently at %d", i)
		}
	}
	// Transpose solve and refactorize must work on the loaded object too.
	xt, err := g.SolveTranspose(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a.Transpose(), xt, b); r > 1e-9 {
		t.Fatalf("loaded transpose residual %g", r)
	}
	a2 := a.Clone()
	for i := range a2.Val {
		a2.Val[i] *= 2
	}
	if err := g.Refactorize(a2); err != nil {
		t.Fatal(err)
	}
	x3, _ := g.Solve(b)
	if r := Residual(a2, x3, b); r > 1e-9 {
		t.Fatalf("loaded refactorize residual %g", r)
	}
	// Sanity: halving all values doubles the solution.
	for i := range x3 {
		if math.Abs(2*x3[i]-x1[i]) > 1e-8*(1+math.Abs(x1[i])) {
			t.Fatalf("scaled refactorization inconsistent at %d", i)
		}
	}
}

func TestLoadedFactorizationKeepsPatternCheck(t *testing.T) {
	a := GenGrid2D(8, 8, false, GenOptions{Seed: 31})
	f, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// A different-structure matrix of the same order must still be rejected
	// after the round trip: the pattern fingerprint travels with the stream.
	if err := g.Refactorize(GenGrid2D(8, 8, true, GenOptions{Seed: 31})); err == nil {
		t.Fatal("loaded factorization accepted a different pattern")
	}
}

// TestLoadNeverPanicsOnCorruption is the corruption fuzz of the wire format:
// truncate the stream at every length and flip bits across the stream; Load
// must return an error every time and may never panic or succeed.
func TestLoadNeverPanicsOnCorruption(t *testing.T) {
	a := GenGrid2D(6, 6, false, GenOptions{Seed: 32})
	f, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	load := func(what string, data []byte) {
		t.Helper()
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("Load panicked on %s: %v", what, p)
			}
		}()
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Fatalf("Load accepted %s", what)
		}
	}
	// Every truncation point (stride keeps the test fast on big streams).
	stride := len(full)/512 + 1
	for cut := 0; cut < len(full); cut += stride {
		load(fmt.Sprintf("truncation at %d/%d", cut, len(full)), full[:cut])
	}
	// Single-bit flips across the stream: the per-frame CRC must catch all
	// of them (a flip in a length field trips the checksum or size bound).
	for pos := 0; pos < len(full); pos += stride {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), full...)
			mut[pos] ^= 1 << bit
			load(fmt.Sprintf("bit flip at byte %d bit %d", pos, bit), mut)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("this is not a factorization")); err == nil {
		t.Fatal("expected error for garbage stream")
	}
	var buf bytes.Buffer
	a := GenDense(8, 77)
	f, _ := Factorize(a, DefaultOptions())
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncate: must fail cleanly.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}

// TestAnalysisSaveLoadRoundTrip: a saved symbolic analysis reloads into an
// equivalent object — same key, same options, matching pattern — and
// FactorizeWith on the loaded analysis produces bit-identical factors. This
// is the contract cluster analysis replication rides on: a shard that
// receives the blob factorizes exactly as the shard that analyzed.
func TestAnalysisSaveLoadRoundTrip(t *testing.T) {
	a := GenGrid2D(11, 9, true, GenOptions{Seed: 78, Convection: 0.25})
	opts := DefaultOptions()
	an, err := Analyze(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := an.Save(&buf); err != nil {
		t.Fatal(err)
	}
	an2, err := LoadAnalysis(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if an2.Key() != an.Key() {
		t.Fatalf("loaded key %#x, want %#x", an2.Key(), an.Key())
	}
	if an2.Options() != an.Options() {
		t.Fatalf("loaded options %+v, want %+v", an2.Options(), an.Options())
	}
	if !an2.Matches(a) {
		t.Fatal("loaded analysis does not match its own pattern")
	}
	f1, err := an.FactorizeWith(a)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := an2.FactorizeWith(a)
	if err != nil {
		t.Fatal(err)
	}
	b := rhs(a.N, 79)
	x1, err := f1.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := f2.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if math.Float64bits(x1[i]) != math.Float64bits(x2[i]) {
			t.Fatalf("loaded-analysis factorization solves differently at %d", i)
		}
	}
	// An observer never travels: Save strips it so the blob is stable and the
	// receiver's cache equality check is not poisoned by a foreign pointer.
	opts2 := opts
	opts2.Observer = newRecordingObserver()
	an3, err := Analyze(a, opts2)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := an3.Save(&buf); err != nil {
		t.Fatal(err)
	}
	an4, err := LoadAnalysis(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if an4.Options().Observer != nil {
		t.Fatal("observer survived the analysis round trip")
	}
}

// TestLoadAnalysisNeverPanicsOnCorruption: truncations and bit flips across
// an analysis stream must fail with an error, never panic or load.
func TestLoadAnalysisNeverPanicsOnCorruption(t *testing.T) {
	a := GenGrid2D(7, 6, false, GenOptions{Seed: 80})
	an, err := Analyze(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := an.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	load := func(what string, data []byte) {
		t.Helper()
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("LoadAnalysis panicked on %s: %v", what, p)
			}
		}()
		if _, err := LoadAnalysis(bytes.NewReader(data)); err == nil {
			t.Fatalf("LoadAnalysis accepted %s", what)
		}
	}
	stride := len(full)/512 + 1
	for cut := 0; cut < len(full); cut += stride {
		load(fmt.Sprintf("truncation at %d/%d", cut, len(full)), full[:cut])
	}
	for pos := 0; pos < len(full); pos += stride {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), full...)
			mut[pos] ^= 1 << bit
			load(fmt.Sprintf("bit flip at byte %d bit %d", pos, bit), mut)
		}
	}
	load("garbage", []byte("this is not an analysis"))
	// A factorization stream is not an analysis stream and vice versa.
	f, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	load("a factorization stream", buf.Bytes())
}
