package sstar

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	a := GenGrid2D(10, 10, false, GenOptions{Seed: 75, WeakDiagFraction: 0.15})
	f, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := rhs(a.N, 76)
	x1, _ := f.Solve(b)
	x2, err := g.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("loaded factorization solves differently at %d", i)
		}
	}
	// Transpose solve and refactorize must work on the loaded object too.
	xt, err := g.SolveTranspose(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a.Transpose(), xt, b); r > 1e-9 {
		t.Fatalf("loaded transpose residual %g", r)
	}
	a2 := a.Clone()
	for i := range a2.Val {
		a2.Val[i] *= 2
	}
	if err := g.Refactorize(a2); err != nil {
		t.Fatal(err)
	}
	x3, _ := g.Solve(b)
	if r := Residual(a2, x3, b); r > 1e-9 {
		t.Fatalf("loaded refactorize residual %g", r)
	}
	// Sanity: halving all values doubles the solution.
	for i := range x3 {
		if math.Abs(2*x3[i]-x1[i]) > 1e-8*(1+math.Abs(x1[i])) {
			t.Fatalf("scaled refactorization inconsistent at %d", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("this is not a factorization")); err == nil {
		t.Fatal("expected error for garbage stream")
	}
	var buf bytes.Buffer
	a := GenDense(8, 77)
	f, _ := Factorize(a, DefaultOptions())
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncate: must fail cleanly.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}
