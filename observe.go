package sstar

import (
	"io"
	"time"

	"sstar/internal/obs"
)

// Pipeline phase names reported to an Observer. The set and meaning of
// these names is part of the API's stability contract (see Observer).
const (
	// PhaseOrdering covers the maximum transversal and the fill-reducing
	// column ordering.
	PhaseOrdering = obs.PhaseOrdering
	// PhaseSymbolic is the George–Ng static symbolic factorization.
	PhaseSymbolic = obs.PhaseSymbolic
	// PhasePartition is the 2D L/U supernode partitioning.
	PhasePartition = obs.PhasePartition
	// PhaseFactor is the numeric factorization.
	PhaseFactor = obs.PhaseFactor
	// PhaseSolve is the triangular-solve pair of one Solve call.
	PhaseSolve = obs.PhaseSolve

	// Sub-phases of the partition stage (strict supernode detection, the
	// blocking choice, the per-block structure build) and the incremental
	// re-analysis of Analysis.Patch. Reported in addition to the coarse
	// phases above; per the stability contract, implementations ignore
	// names they do not know.
	PhaseDetect = obs.PhaseDetect
	PhaseChoose = obs.PhaseChoose
	PhaseBuild  = obs.PhaseBuild
	PhasePatch  = obs.PhasePatch
)

// Task kinds of TaskEvent.Kind, in the paper's notation.
const (
	TaskFactor byte = obs.KindFactor // 'F': Factor(k)
	TaskUpdate byte = obs.KindUpdate // 'U': Update(k, j)
)

// TaskEvent describes one completed Factor(k)/Update(k,j) task of the
// numeric factorization: which panel(s) it touched, which executor worker
// ran it, and when.
type TaskEvent struct {
	Kind   byte // TaskFactor or TaskUpdate
	K, J   int  // elimination step and target block column (J == K for Factor)
	Worker int  // executor worker id (0 for the sequential driver)
	Start  time.Time
	Dur    time.Duration
}

// Observer receives pipeline timings without the caller importing any
// internal package: set Options.Observer and every analyze phase, the
// numeric factorization, each of its Factor/Update tasks, and every solve
// reports through it.
//
// Stability contract: the five Phase names (PhaseOrdering, PhaseSymbolic,
// PhasePartition, PhaseFactor, PhaseSolve) and the TaskEvent fields are
// stable API; new phase names may be added in future versions, so
// implementations must ignore names they do not know. Implementations must
// be safe for concurrent use — Task events arrive concurrently from every
// executor worker — and cheap, since they run on the factorization hot
// path. Observation never changes numeric results: factors are
// bit-identical with or without an Observer attached.
type Observer interface {
	// Phase reports a just-completed pipeline phase and its duration.
	Phase(name string, d time.Duration)
	// Task reports a completed Factor/Update task of the numeric phase.
	Task(ev TaskEvent)
}

// observerSink adapts a public Observer to the internal obs.Sink the core
// pipeline emits on.
type observerSink struct{ o Observer }

func (s observerSink) Phase(name string, ns int64) { s.o.Phase(name, time.Duration(ns)) }

func (s observerSink) Task(ev obs.TaskEvent) {
	s.o.Task(TaskEvent{
		Kind: ev.Kind, K: int(ev.K), J: int(ev.J), Worker: int(ev.Worker),
		Start: time.Unix(0, ev.StartNs), Dur: time.Duration(ev.DurNs),
	})
}

// sinkFor wraps an Observer for the internal pipeline; nil stays nil so the
// disabled path keeps its zero-cost nil checks.
func sinkFor(o Observer) obs.Sink {
	if o == nil {
		return nil
	}
	return observerSink{o}
}

// Trace is an Observer that records phases and tasks into a bounded
// in-memory ring and renders them as a Chrome trace_event JSON timeline
// (loadable in chrome://tracing or https://ui.perfetto.dev): one lane per
// executor worker, one span per Factor/Update task, so the pipeline overlap
// of the task-DAG executor is directly visible.
//
//	tr := sstar.NewTrace(0)
//	opts := sstar.DefaultOptions()
//	opts.HostWorkers = 8
//	opts.Observer = tr
//	f, _ := sstar.Factorize(a, opts)
//	tr.WriteChromeTrace(file)
//
// When the ring fills, the oldest spans are overwritten (Dropped counts
// them), so tracing a huge factorization keeps the most recent window.
type Trace struct{ tr *obs.Tracer }

// NewTrace returns an empty trace recorder holding up to capacity spans
// (a 64k-span default when capacity <= 0).
func NewTrace(capacity int) *Trace { return &Trace{tr: obs.NewTracer(capacity)} }

// Phase implements Observer.
func (t *Trace) Phase(name string, d time.Duration) { t.tr.Phase(name, d.Nanoseconds()) }

// Task implements Observer.
func (t *Trace) Task(ev TaskEvent) {
	t.tr.Task(obs.TaskEvent{
		Kind: ev.Kind, K: int32(ev.K), J: int32(ev.J), Worker: int32(ev.Worker),
		StartNs: ev.Start.UnixNano(), DurNs: ev.Dur.Nanoseconds(),
	})
}

// Len returns the number of spans currently held.
func (t *Trace) Len() int { return t.tr.Len() }

// Dropped returns how many spans were overwritten after the ring filled.
func (t *Trace) Dropped() int64 { return t.tr.Dropped() }

// WriteChromeTrace writes the recorded timeline as Chrome trace_event JSON.
func (t *Trace) WriteChromeTrace(w io.Writer) error { return t.tr.WriteChromeTrace(w) }
