package sstar

import (
	"fmt"
	"time"

	"sstar/internal/core"
	"sstar/internal/obs"
	"sstar/internal/sparse"
	"sstar/internal/supernode"
	"sstar/internal/symbolic"
)

// PatchInfo reports how an Analysis.Patch call was served.
type PatchInfo struct {
	// Patched is true when the incremental path produced the analysis;
	// false means Patch fell back to a full analyze (Fallback says why).
	Patched bool
	// Fallback names why the incremental path was refused: "disabled",
	// "diff-above-threshold", "diagonal-lost" or "shape-mismatch". Empty
	// when Patched (including the trivial identical-pattern case).
	Fallback string
	// ChangedRows and ChangedEntries size the structural diff between the
	// cached and the new pattern (entries = symmetric difference).
	ChangedRows, ChangedEntries int
	// RecomputedCols and ReusedCols split the columns into merge steps the
	// propagation re-ran and columns spliced unchanged from the cached
	// structure. Zero when the call fell back.
	RecomputedCols, ReusedCols int
}

// Patch derives an Analysis for a matrix whose pattern is a near miss of the
// analyzed one, re-running the symbolic computation only on the propagation
// cone of the changed entries and splicing every untouched column from the
// cached structure. The cached analysis's decisions are reused wholesale:
// the ordering (row/column permutations) and the settled blocking choice
// (the amalgamation factor, and the panel cap when it was fixed). The static
// structure is byte-identical to a full recompute under that pinned
// ordering, and the partition byte-identical to re-running the pinned
// blocking on the new structure — so under SkipOrdering plus an explicit
// BlockSize the result is exactly Analyze's. A fresh Analyze may pick a
// different fill-reducing ordering or amalgamation factor for the new
// pattern; callers that want the last percent of quality for a drifted
// structure should re-analyze from scratch occasionally.
//
// When the diff exceeds Options.PatchMaxDiff (or the incremental machinery
// cannot apply — the reused transversal lost a diagonal entry, the shapes
// differ, or PatchMaxDiff is negative), Patch transparently falls back to a
// full Analyze with the cached options; info.Fallback records the reason.
// An identical pattern returns the receiver itself.
func (an *Analysis) Patch(a *Matrix) (*Analysis, PatchInfo, error) {
	var info PatchInfo
	if a == nil {
		return nil, info, fmt.Errorf("sstar: Patch: nil matrix")
	}
	if err := validate(a, an.opts); err != nil {
		return nil, info, err
	}
	if an.pat.EqualCSR(a) {
		info.Patched = true
		info.ReusedCols = an.pat.N
		return an, info, nil
	}
	maxFrac := an.opts.PatchMaxDiff
	if maxFrac == 0 {
		maxFrac = DefaultPatchMaxDiff
	}
	fallback := func(reason string) (*Analysis, PatchInfo, error) {
		info.Fallback = reason
		full, err := Analyze(a, an.opts)
		return full, info, err
	}
	if maxFrac < 0 {
		return fallback("disabled")
	}
	if a.N != an.pat.N {
		return fallback("shape-mismatch")
	}
	t0 := time.Now()
	// The propagation runs in the analyzed coordinate system: permute both
	// patterns by the cached transversal + fill-reducing permutations, then
	// patch the static structure there.
	oldPerm := sparse.PermutePattern(an.pat, an.sym.RowPerm, an.sym.ColPerm)
	newPerm := sparse.PermutePattern(sparse.PatternOf(a), an.sym.RowPerm, an.sym.ColPerm)
	st, stats := symbolic.Patch(an.sym.Static, oldPerm, newPerm, maxFrac)
	info.ChangedRows, info.ChangedEntries = stats.ChangedRows, stats.ChangedEntries
	if st == nil {
		return fallback(stats.Reason)
	}
	info.Patched = true
	info.RecomputedCols, info.ReusedCols = stats.Recomputed, stats.Reused
	patchNs := time.Since(t0).Nanoseconds()
	t0 = time.Now()
	part := supernode.PatchPartition(st, an.sym.Static, an.sym.Partition, an.opts.HostWorkers)
	partNs := time.Since(t0).Nanoseconds()
	if sink := sinkFor(an.opts.Observer); sink != nil {
		sink.Phase(obs.PhasePatch, patchNs)
		sink.Phase(obs.PhasePartition, partNs)
		sink.Phase(obs.PhaseDetect, part.Times.DetectNs)
		sink.Phase(obs.PhaseChoose, part.Times.ChooseNs)
		sink.Phase(obs.PhaseBuild, part.Times.BuildNs)
	}
	sym := &core.Symbolic{
		N:         an.sym.N,
		RowPerm:   an.sym.RowPerm,
		ColPerm:   an.sym.ColPerm,
		Static:    st,
		Partition: part,
		PivotTol:  an.sym.PivotTol,
		Phases:    core.PhaseTimes{PartitionNs: partNs, PatchNs: patchNs},
	}
	return &Analysis{
		sym:  sym,
		opts: an.opts,
		pat:  sparse.PatternOf(a),
		key:  StructureKey(a, an.opts),
	}, info, nil
}

// AnalyzePhases is the cost breakdown of the analyze phase that produced an
// Analysis, as recorded at construction.
type AnalyzePhases struct {
	// Ordering, Symbolic and Partition are the coarse pipeline stages.
	Ordering, Symbolic, Partition time.Duration
	// Patch is the incremental re-analysis time when the Analysis came from
	// Analysis.Patch; such an analysis inherited (rather than ran) the
	// ordering and symbolic stages, which report zero.
	Patch time.Duration
	// Detect, Choose and Build split the partition stage: strict supernode
	// detection, the blocking choice (amalgamation sweep + split planning)
	// and the per-block structure build.
	Detect, Choose, Build time.Duration
}

// Phases returns where the analyze phase spent its time.
func (an *Analysis) Phases() AnalyzePhases {
	pt := an.sym.Phases
	tm := an.sym.Partition.Times
	return AnalyzePhases{
		Ordering:  time.Duration(pt.OrderingNs),
		Symbolic:  time.Duration(pt.SymbolicNs),
		Partition: time.Duration(pt.PartitionNs),
		Patch:     time.Duration(pt.PatchNs),
		Detect:    time.Duration(tm.DetectNs),
		Choose:    time.Duration(tm.ChooseNs),
		Build:     time.Duration(tm.BuildNs),
	}
}
