package sstar

import "testing"

// TestAdaptiveGoldenBitIdentical is the facade-level golden test of
// structure-adaptive blocking: on the standard test matrices the adaptive
// default must (a) factor and solve to the usual residual, (b) produce
// bit-identical solutions sequentially and at HostWorkers=4 (the executor's
// determinism contract is blocking-independent), and (c) agree with the
// fixed paper configuration to roundoff — panel boundaries change the
// floating-point grouping, so bitwise equality with fixed-25 is not
// expected, but both are LU factorizations of the same matrix.
func TestAdaptiveGoldenBitIdentical(t *testing.T) {
	mats := []*Matrix{
		GenGrid2D(10, 10, false, GenOptions{Seed: 1, Convection: 0.3}),
		GenGrid2D(8, 8, true, GenOptions{Seed: 2, DOF: 2}),
		GenCircuit(400, 3, GenOptions{Seed: 3, StructuralDrop: 0.2}),
	}
	for mi, a := range mats {
		b := rhs(a.N, int64(100+mi))

		seq, err := Factorize(a, DefaultOptions())
		if err != nil {
			t.Fatalf("matrix %d seq: %v", mi, err)
		}
		if bc := seq.Blocking(); !bc.Adaptive || bc.MaxBlock <= 0 || bc.Amalgamate < 0 {
			t.Fatalf("matrix %d: default factorize not adaptive: %+v", mi, bc)
		}
		xSeq, err := seq.Solve(b)
		if err != nil {
			t.Fatalf("matrix %d seq solve: %v", mi, err)
		}
		if r := Residual(a, xSeq, b); r > 1e-10 {
			t.Fatalf("matrix %d: adaptive residual %g", mi, r)
		}

		po := DefaultOptions()
		po.HostWorkers = 4
		par, err := Factorize(a, po)
		if err != nil {
			t.Fatalf("matrix %d par: %v", mi, err)
		}
		xPar, err := par.Solve(b)
		if err != nil {
			t.Fatalf("matrix %d par solve: %v", mi, err)
		}
		for i := range xSeq {
			if xSeq[i] != xPar[i] {
				t.Fatalf("matrix %d: x[%d] differs between sequential and 4-worker adaptive runs: %v vs %v",
					mi, i, xSeq[i], xPar[i])
			}
		}

		fixed, err := Factorize(a, PaperOptions())
		if err != nil {
			t.Fatalf("matrix %d fixed: %v", mi, err)
		}
		if fixed.Blocking().Adaptive {
			t.Fatalf("matrix %d: PaperOptions reported adaptive", mi)
		}
		xFixed, err := fixed.Solve(b)
		if err != nil {
			t.Fatalf("matrix %d fixed solve: %v", mi, err)
		}
		for i := range xSeq {
			d := xSeq[i] - xFixed[i]
			if d > 1e-8 || d < -1e-8 {
				t.Fatalf("matrix %d: adaptive and fixed solutions diverge at %d: %v vs %v",
					mi, i, xSeq[i], xFixed[i])
			}
		}
	}
}

// TestAdaptiveAnalysisCarriesBlocking: the blocking choice rides with the
// Analysis (it is pattern-pure), so a reused analysis reports the same plan
// the factorization was built with, and explicit overrides win.
func TestAdaptiveAnalysisCarriesBlocking(t *testing.T) {
	a := GenGrid2D(9, 9, false, GenOptions{Seed: 7, Convection: 0.2})
	an, err := Analyze(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bc := an.Blocking()
	if !bc.Adaptive || bc.Panels != an.Blocks() {
		t.Fatalf("analysis blocking inconsistent: %+v vs %d blocks", bc, an.Blocks())
	}
	f, err := an.FactorizeWith(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.Blocking() != bc {
		t.Fatalf("factorization blocking %+v != analysis blocking %+v", f.Blocking(), bc)
	}

	o := DefaultOptions()
	o.BlockSize = 7
	o.Amalgamate = 2
	an2, err := Analyze(a, o)
	if err != nil {
		t.Fatal(err)
	}
	bc2 := an2.Blocking()
	if bc2.Adaptive || bc2.MaxBlock != 7 || bc2.Amalgamate != 2 {
		t.Fatalf("explicit override not honored: %+v", bc2)
	}

	// Adaptive and fixed options key differently: the cache must never
	// serve one configuration's analysis for the other.
	if StructureKey(a, DefaultOptions()) == StructureKey(a, o) {
		t.Fatal("adaptive and fixed options share a structure key")
	}
}
