package xblas

import "sync/atomic"

// Stats is a snapshot of the kernel-level counters: how many times each
// BLAS-3 entry point ran, the floating-point operations it performed and
// the operand bytes it touched (8 bytes per float64 of A, B and C, counted
// once each — the arithmetic-intensity denominator). Counting happens per
// kernel *call*, not per element, so the enabled overhead is a handful of
// atomic adds against thousands of flops.
//
// The blocked TRSM kernels drive their trailing updates through Gemm, so
// the Gemm counters include the GEMM portion of TRSM work; TrsmFlops counts
// the full triangular-solve operation count of each Trsm call.
type Stats struct {
	GemmCalls, GemmFlops, GemmBytes          int64
	ScatterCalls, ScatterFlops, ScatterBytes int64
	TrsmCalls, TrsmFlops, TrsmBytes          int64
}

// Flops returns the total counted floating-point operations. The Trsm tally
// is excluded because its GEMM portion is already inside GemmFlops.
func (s Stats) Flops() int64 { return s.GemmFlops + s.ScatterFlops }

// statCounters is the live atomic counter block; Stats is its snapshot.
type statCounters struct {
	gemmCalls, gemmFlops, gemmBytes          atomic.Int64
	scatterCalls, scatterFlops, scatterBytes atomic.Int64
	trsmCalls, trsmFlops, trsmBytes          atomic.Int64
}

// kstats is the installed counter block, nil when disabled (the default).
// The hot kernels do one atomic pointer load and a nil check per call —
// the disabled path costs nothing measurable and allocates nothing.
var kstats atomic.Pointer[statCounters]

// EnableStats installs a fresh zeroed counter block and starts counting.
// Safe to call at any time, including concurrently with running kernels
// (in-flight calls land in whichever block they loaded).
func EnableStats() { kstats.Store(new(statCounters)) }

// DisableStats stops counting and drops the counters.
func DisableStats() { kstats.Store(nil) }

// ReadStats returns a snapshot of the counters and whether counting is
// enabled.
func ReadStats() (Stats, bool) {
	s := kstats.Load()
	if s == nil {
		return Stats{}, false
	}
	return Stats{
		GemmCalls: s.gemmCalls.Load(), GemmFlops: s.gemmFlops.Load(), GemmBytes: s.gemmBytes.Load(),
		ScatterCalls: s.scatterCalls.Load(), ScatterFlops: s.scatterFlops.Load(), ScatterBytes: s.scatterBytes.Load(),
		TrsmCalls: s.trsmCalls.Load(), TrsmFlops: s.trsmFlops.Load(), TrsmBytes: s.trsmBytes.Load(),
	}, true
}

// noteGemm charges one Gemm/GemmAdd call of shape m x n x k.
func noteGemm(m, n, k int) {
	if s := kstats.Load(); s != nil {
		s.gemmCalls.Add(1)
		s.gemmFlops.Add(2 * int64(m) * int64(n) * int64(k))
		s.gemmBytes.Add(8 * (int64(m)*int64(k) + int64(k)*int64(n) + int64(m)*int64(n)))
	}
}

// noteScatter charges one GemmScatter call of compacted shape m x n x k.
func noteScatter(m, n, k int) {
	if s := kstats.Load(); s != nil {
		s.scatterCalls.Add(1)
		s.scatterFlops.Add(2 * int64(m) * int64(n) * int64(k))
		s.scatterBytes.Add(8 * (int64(m)*int64(k) + int64(k)*int64(n) + int64(m)*int64(n)))
	}
}

// noteTrsm charges one blocked triangular solve with flop count fl over a
// k x k triangle and a k x n right-hand side.
func noteTrsm(k, n int, fl int64) {
	if s := kstats.Load(); s != nil {
		s.trsmCalls.Add(1)
		s.trsmFlops.Add(fl)
		s.trsmBytes.Add(8 * (int64(k)*int64(k)/2 + int64(k)*int64(n)))
	}
}
