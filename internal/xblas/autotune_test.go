package xblas

import (
	"math/rand"
	"testing"
)

// TestTileShapeBitIdentical pins the safety argument of the autotuner: the
// cache-block shape only regroups packing and micro-kernel calls, never the
// per-element accumulation order, so every candidate shape must produce
// bitwise-identical GEMM output. Shapes that don't divide the problem evenly
// (edge tiles) are the interesting cases, so the problem sizes are ragged.
func TestTileShapeBitIdentical(t *testing.T) {
	origMC, origNC := TileShape()
	defer func() {
		if err := SetTileShape(origMC, origNC); err != nil {
			t.Fatal(err)
		}
	}()

	rng := rand.New(rand.NewSource(7))
	dims := []struct{ m, n, k int }{
		{7, 5, 3},
		{65, 129, 33},
		{200, 300, 25},
		{257, 513, 64},
	}
	for _, d := range dims {
		a := make([]float64, d.m*d.k)
		b := make([]float64, d.k*d.n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		var ref []float64
		for _, cand := range tileCandidates {
			if err := SetTileShape(cand.mc, cand.nc); err != nil {
				t.Fatal(err)
			}
			c := make([]float64, d.m*d.n)
			for i := range c {
				c[i] = 1.5 // non-zero so the subtract path is exercised
			}
			Gemm(d.m, d.n, d.k, a, d.k, b, d.n, c, d.n)
			if ref == nil {
				ref = c
				continue
			}
			for i := range c {
				if c[i] != ref[i] {
					t.Fatalf("m=%d n=%d k=%d tile (%d,%d): c[%d] = %v, want %v (bitwise)",
						d.m, d.n, d.k, cand.mc, cand.nc, i, c[i], ref[i])
				}
			}
		}
	}
}

func TestSetTileShapeValidation(t *testing.T) {
	origMC, origNC := TileShape()
	defer SetTileShape(origMC, origNC)

	for _, bad := range []struct{ mc, nc int }{
		{0, 256}, {96, 0}, {-4, 8}, {6, 256}, {96, 12},
	} {
		if err := SetTileShape(bad.mc, bad.nc); err == nil {
			t.Errorf("SetTileShape(%d, %d): want error", bad.mc, bad.nc)
		}
	}
	if err := SetTileShape(64, 128); err != nil {
		t.Fatalf("SetTileShape(64, 128): %v", err)
	}
	if mc, nc := TileShape(); mc != 64 || nc != 128 {
		t.Fatalf("TileShape() = (%d, %d), want (64, 128)", mc, nc)
	}
}

// TestAutotuneIdempotent checks Autotune runs its measurement once, returns a
// stable decision, and publishes a valid shape.
func TestAutotuneIdempotent(t *testing.T) {
	if testing.Short() {
		t.Skip("autotune measurement in -short mode")
	}
	first := Autotune()
	if !first.Autotuned {
		t.Fatal("Autotune(): Autotuned = false")
	}
	if first.MC <= 0 || first.MC%mr != 0 || first.NC <= 0 || first.NC%nr != 0 {
		t.Fatalf("Autotune() chose invalid shape (%d, %d)", first.MC, first.NC)
	}
	if first.GemmNs <= 0 || first.TrsmNs <= 0 {
		t.Fatalf("Autotune() timings not positive: %+v", first)
	}
	second := Autotune()
	if second != first {
		t.Fatalf("Autotune() second call = %+v, want cached %+v", second, first)
	}
	cached, ok := AutotuneResult()
	if !ok || cached != first {
		t.Fatalf("AutotuneResult() = %+v, %v; want %+v, true", cached, ok, first)
	}
	if mc, nc := TileShape(); mc != first.MC || nc != first.NC {
		t.Fatalf("TileShape() = (%d, %d) after Autotune, want (%d, %d)", mc, nc, first.MC, first.NC)
	}
}
