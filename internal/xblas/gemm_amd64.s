// AVX2+FMA micro-kernel for the packed GEMM engine.
//
// Register plan for kernel4x8asm:
//   Y0..Y7   4x8 accumulator tile (row i in Y(2i) [cols 0..3] and Y(2i+1)
//            [cols 4..7])
//   Y12,Y13  current B strip row (8 columns)
//   Y14,Y15  broadcast A values
// The write-back folds C += sign*acc with one FMA (single rounding) per
// element, matching the portable math.FMA kernel bit for bit.

#include "textflag.h"

// func x86HasAVX2FMA() bool
TEXT ·x86HasAVX2FMA(SB), NOSPLIT, $0-1
	// CPUID.(EAX=1):ECX — FMA (bit 12), OSXSAVE (bit 27), AVX (bit 28).
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<12 | 1<<27 | 1<<28), R8
	CMPL R8, $(1<<12 | 1<<27 | 1<<28)
	JNE  no
	// XGETBV(XCR0): SSE (bit 1) and YMM (bit 2) state enabled by the OS.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	// CPUID.(EAX=7,ECX=0):EBX — AVX2 (bit 5).
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func kernel4x8asm(kc int, a, b, c *float64, ldc int, sign float64)
TEXT ·kernel4x8asm(SB), NOSPLIT, $0-48
	MOVQ kc+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ c+24(FP), DI
	MOVQ ldc+32(FP), R8

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

loop:
	VMOVUPD      (BX), Y12
	VMOVUPD      32(BX), Y13
	VBROADCASTSD (SI), Y14
	VBROADCASTSD 8(SI), Y15
	VFMADD231PD  Y12, Y14, Y0
	VFMADD231PD  Y13, Y14, Y1
	VFMADD231PD  Y12, Y15, Y2
	VFMADD231PD  Y13, Y15, Y3
	VBROADCASTSD 16(SI), Y14
	VBROADCASTSD 24(SI), Y15
	VFMADD231PD  Y12, Y14, Y4
	VFMADD231PD  Y13, Y14, Y5
	VFMADD231PD  Y12, Y15, Y6
	VFMADD231PD  Y13, Y15, Y7
	ADDQ         $32, SI
	ADDQ         $64, BX
	DECQ         CX
	JNZ          loop

	// Write back: C[i] += sign * acc[i], one rounding per element.
	VBROADCASTSD sign+40(FP), Y15
	SHLQ         $3, R8
	LEAQ         (DI)(R8*1), R9
	LEAQ         (R9)(R8*1), R10
	LEAQ         (R10)(R8*1), R11

	VMOVUPD     (DI), Y12
	VFMADD231PD Y15, Y0, Y12
	VMOVUPD     Y12, (DI)
	VMOVUPD     32(DI), Y13
	VFMADD231PD Y15, Y1, Y13
	VMOVUPD     Y13, 32(DI)

	VMOVUPD     (R9), Y12
	VFMADD231PD Y15, Y2, Y12
	VMOVUPD     Y12, (R9)
	VMOVUPD     32(R9), Y13
	VFMADD231PD Y15, Y3, Y13
	VMOVUPD     Y13, 32(R9)

	VMOVUPD     (R10), Y12
	VFMADD231PD Y15, Y4, Y12
	VMOVUPD     Y12, (R10)
	VMOVUPD     32(R10), Y13
	VFMADD231PD Y15, Y5, Y13
	VMOVUPD     Y13, 32(R10)

	VMOVUPD     (R11), Y12
	VFMADD231PD Y15, Y6, Y12
	VMOVUPD     Y12, (R11)
	VMOVUPD     32(R11), Y13
	VFMADD231PD Y15, Y7, Y13
	VMOVUPD     Y13, 32(R11)

	VZEROUPPER
	RET
