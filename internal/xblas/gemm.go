// Packed, register-tiled GEMM engine.
//
// All BLAS-3 routines (Gemm, GemmAdd, GemmScatter, TrsmLowerUnitLeft) run on
// one micro-architecture: operand panels are packed into contiguous tiles and
// an unrolled mr-by-nr accumulator micro-kernel sweeps them, BLIS-style.
//
//   - A panels are packed into strips of mr rows: strip element (l, i) sits at
//     offset l*mr+i, so each k-step of the micro-kernel reads mr contiguous
//     values.
//   - B panels are packed into strips of nr columns: strip element (l, j) sits
//     at offset l*nr+j.
//   - The micro-kernel keeps the full mr-by-nr product tile in registers,
//     accumulating over the whole k extent with fused multiply-adds, and folds
//     the tile into C with a single rounding per element: C += sign*acc.
//
// On amd64 with AVX2+FMA (detected at startup via CPUID) the micro-kernel is
// hand-written vector assembly; everywhere else a math.FMA-based pure-Go
// kernel runs. Both accumulate in the same order with correctly-rounded fused
// multiply-adds, so the results are bitwise identical across platforms — the
// property the repo's determinism guarantees rest on. For the same reason
// every element's accumulation order equals the naive triple loop's (ascending
// l, one final fold into C), so the packed kernels bit-match an FMA-based
// naive reference exactly.
//
// The k extent is deliberately NOT split into cache blocks: S*'s supernode
// panels keep k at or below the block size (≤ ~128), the packed panels stay
// cache-resident, and full-k accumulation is what makes the single-rounding
// write-back (and hence exact reproducibility) possible.
package xblas

import (
	"math"
	"sync"
)

// Tile constants of the engine. The micro-tile shape mr×nr is fixed by the
// amd64 micro-kernel (8 vector accumulators of 4 lanes), so changing it
// means updating gemm_amd64.s and kernel4x8go together. The cache blocks
// (rows of A, columns of B per packed panel) are runtime state published by
// autotune.go: every element of C is still accumulated over the full k
// extent inside a single micro-kernel call and folded with one rounding, so
// the cache-block shape never changes results — retiling is a pure
// wall-clock knob (see Autotune).
const (
	mr = 4 // micro-tile rows (A-panel strip width)
	nr = 8 // micro-tile columns (B-panel strip width)

	defaultMCBlock = 96  // A-panel rows per cache block (multiple of mr)
	defaultNCBlock = 256 // B-panel columns per cache block (multiple of nr)

	// smallGemmFlops: at or below this many flops (2*m*n*k) the packing
	// overhead outweighs the micro-kernel win and a direct FMA triple loop
	// runs instead. Both paths produce bitwise-identical results, so the
	// threshold is a pure tuning knob.
	smallGemmFlops = 2 * 4 * 4 * 4
)

// packBuf holds the pooled packing buffers of one in-flight GEMM call.
type packBuf struct {
	a, b       []float64
	rsrc, rdst []int
	csrc, cdst []int
}

var packPool = sync.Pool{New: func() any { return new(packBuf) }}

func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growInt(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func roundUp(n, q int) int { return (n + q - 1) / q * q }

// Gemm computes C = C - A*B (the update form used throughout sparse LU:
// A_ij -= L_ik * U_kj) for row-major A (m-by-k, stride lda), B (k-by-n,
// stride ldb) and C (m-by-n, stride ldc). Flops: 2*m*n*k.
func Gemm(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	noteGemm(m, n, k)
	gemmEngine(m, n, k, a, lda, b, ldb, c, ldc, -1)
}

// GemmAdd computes C = C + A*B with the same layout conventions as Gemm.
func GemmAdd(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	noteGemm(m, n, k)
	gemmEngine(m, n, k, a, lda, b, ldb, c, ldc, 1)
}

// gemmEngine is the shared packed driver: C += sign * A*B.
func gemmEngine(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, sign float64) {
	if 2*m*n*k <= smallGemmFlops {
		smallGemm(m, n, k, a, lda, b, ldb, c, ldc, sign)
		return
	}
	pb := packPool.Get().(*packBuf)
	ts := tileCfg.Load()
	mcBlock, ncBlock := ts.mc, ts.nc
	for jc := 0; jc < n; jc += ncBlock {
		ncb := min(ncBlock, n-jc)
		ncbPad := roundUp(ncb, nr)
		pb.b = grow(pb.b, ncbPad*k)
		packB(pb.b, b, ldb, jc, k, ncb)
		for ic := 0; ic < m; ic += mcBlock {
			mcb := min(mcBlock, m-ic)
			mcbPad := roundUp(mcb, mr)
			pb.a = grow(pb.a, mcbPad*k)
			packA(pb.a, a, lda, ic, k, mcb)
			for jr := 0; jr < ncb; jr += nr {
				bs := pb.b[jr*k:]
				fullN := jr+nr <= ncb
				for ir := 0; ir < mcb; ir += mr {
					as := pb.a[ir*k:]
					if fullN && ir+mr <= mcb {
						kernel4x8(k, as, bs, c[(ic+ir)*ldc+jc+jr:], ldc, sign)
					} else {
						var tmp [mr * nr]float64
						kernel4x8(k, as, bs, tmp[:], nr, 1)
						addTile(c, ldc, ic+ir, jc+jr, min(mr, mcb-ir), min(nr, ncb-jr), &tmp, sign)
					}
				}
			}
		}
	}
	packPool.Put(pb)
}

// smallGemm is the direct path for tiny products: an FMA triple loop with the
// same per-element accumulation order and single-rounding fold as the packed
// path, so the two are bitwise interchangeable.
func smallGemm(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, sign float64) {
	for i := 0; i < m; i++ {
		arow := a[i*lda : i*lda+k]
		crow := c[i*ldc : i*ldc+n]
		for j := 0; j < n; j++ {
			acc := 0.0
			for l, av := range arow {
				acc = math.FMA(av, b[l*ldb+j], acc)
			}
			crow[j] = math.FMA(sign, acc, crow[j])
		}
	}
}

// packA packs rows [ic, ic+rows) of A (full k extent) into strips of mr rows;
// strip s holds element (l, i) at offset s*mr*k + l*mr + i. Rows past the end
// are zero-padded so the micro-kernel always runs full tiles.
func packA(dst, a []float64, lda, ic, k, rows int) {
	rowsPad := roundUp(rows, mr)
	for ir := 0; ir < rowsPad; ir += mr {
		strip := dst[ir*k : (ir+mr)*k]
		for ii := 0; ii < mr; ii++ {
			if ir+ii >= rows {
				for l := 0; l < k; l++ {
					strip[l*mr+ii] = 0
				}
				continue
			}
			arow := a[(ic+ir+ii)*lda : (ic+ir+ii)*lda+k]
			for l, v := range arow {
				strip[l*mr+ii] = v
			}
		}
	}
}

// packB packs columns [jc, jc+cols) of B (full k extent) into strips of nr
// columns; strip s holds element (l, j) at offset s*nr*k + l*nr + j, with
// zero padding past the last column.
func packB(dst, b []float64, ldb, jc, k, cols int) {
	colsPad := roundUp(cols, nr)
	for jr := 0; jr < colsPad; jr += nr {
		strip := dst[jr*k : (jr+nr)*k]
		w := min(nr, cols-jr)
		for l := 0; l < k; l++ {
			brow := b[l*ldb+jc+jr : l*ldb+jc+jr+w]
			drow := strip[l*nr : l*nr+nr]
			copy(drow, brow)
			for jj := w; jj < nr; jj++ {
				drow[jj] = 0
			}
		}
	}
}

// addTile folds the valid mi-by-nj region of a micro-tile into C.
func addTile(c []float64, ldc, i0, j0, mi, nj int, tmp *[mr * nr]float64, sign float64) {
	for ii := 0; ii < mi; ii++ {
		crow := c[(i0+ii)*ldc+j0:]
		trow := tmp[ii*nr:]
		for jj := 0; jj < nj; jj++ {
			crow[jj] = math.FMA(sign, trow[jj], crow[jj])
		}
	}
}

// kernel4x8go is the portable micro-kernel: a 4x8 accumulator tile swept over
// packed strips with correctly-rounded fused multiply-adds (math.FMA), then
// folded into C with one rounding per element — bitwise identical to the
// amd64 vector kernel.
func kernel4x8go(kc int, a, b, c []float64, ldc int, sign float64) {
	var acc [mr * nr]float64
	for l := 0; l < kc; l++ {
		bl := b[l*nr : l*nr+nr]
		al := a[l*mr : l*mr+mr]
		for i, av := range al {
			row := acc[i*nr : i*nr+nr]
			for j, bv := range bl {
				row[j] = math.FMA(av, bv, row[j])
			}
		}
	}
	for i := 0; i < mr; i++ {
		crow := c[i*ldc : i*ldc+nr]
		arow := acc[i*nr : i*nr+nr]
		for j, v := range arow {
			crow[j] = math.FMA(sign, v, crow[j])
		}
	}
}

// GemmScatter computes the fused gather/scatter update
//
//	C[dstRow[i], dstCol[j]] -= (A*B)[i, j]
//
// for row-major A (m-by-k, stride lda) and B (k-by-n, stride ldb), writing
// directly into the mapped positions of C (stride ldc). Entries of dstRow /
// dstCol equal to -1 mark product rows/columns with no slot in C; their
// contributions are skipped entirely (they are structural zeros in the S*
// update). This replaces the compute-into-scratch + subtract-pass sequence:
// rows and columns are gathered during packing, the micro-kernel accumulates
// the tile in registers, and the write-back scatters with a single rounding
// per element, bit-matching the naive gather/scatter triple loop.
func GemmScatter(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, dstRow, dstCol []int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	pb := packPool.Get().(*packBuf)
	// Compact away rows/columns without a target slot.
	pb.rsrc, pb.rdst = growInt(pb.rsrc, m), growInt(pb.rdst, m)
	mv := 0
	for i, t := range dstRow[:m] {
		if t >= 0 {
			pb.rsrc[mv], pb.rdst[mv] = i, t
			mv++
		}
	}
	pb.csrc, pb.cdst = growInt(pb.csrc, n), growInt(pb.cdst, n)
	nv := 0
	for j, t := range dstCol[:n] {
		if t >= 0 {
			pb.csrc[nv], pb.cdst[nv] = j, t
			nv++
		}
	}
	if mv == 0 || nv == 0 {
		packPool.Put(pb)
		return
	}
	rsrc, rdst := pb.rsrc[:mv], pb.rdst[:mv]
	csrc, cdst := pb.csrc[:nv], pb.cdst[:nv]
	noteScatter(mv, nv, k)
	if 2*mv*nv*k <= smallGemmFlops {
		for ii, sr := range rsrc {
			arow := a[sr*lda : sr*lda+k]
			crow := c[rdst[ii]*ldc:]
			for jj, sc := range csrc {
				acc := 0.0
				for l, av := range arow {
					acc = math.FMA(av, b[l*ldb+sc], acc)
				}
				crow[cdst[jj]] -= acc
			}
		}
		packPool.Put(pb)
		return
	}
	mvPad, nvPad := roundUp(mv, mr), roundUp(nv, nr)
	pb.a = grow(pb.a, mvPad*k)
	packAGather(pb.a, a, lda, rsrc, k)
	pb.b = grow(pb.b, nvPad*k)
	packBGather(pb.b, b, ldb, csrc, k)
	for jr := 0; jr < nv; jr += nr {
		bs := pb.b[jr*k:]
		nj := min(nr, nv-jr)
		for ir := 0; ir < mv; ir += mr {
			mi := min(mr, mv-ir)
			var tmp [mr * nr]float64
			kernel4x8(k, pb.a[ir*k:], bs, tmp[:], nr, 1)
			for ii := 0; ii < mi; ii++ {
				crow := c[rdst[ir+ii]*ldc:]
				trow := tmp[ii*nr:]
				for jj := 0; jj < nj; jj++ {
					crow[cdst[jr+jj]] -= trow[jj]
				}
			}
		}
	}
	packPool.Put(pb)
}

// packAGather packs the gathered rows src of A into mr strips (zero padding
// past the last row).
func packAGather(dst, a []float64, lda int, src []int, k int) {
	rows := len(src)
	rowsPad := roundUp(rows, mr)
	for ir := 0; ir < rowsPad; ir += mr {
		strip := dst[ir*k : (ir+mr)*k]
		for ii := 0; ii < mr; ii++ {
			if ir+ii >= rows {
				for l := 0; l < k; l++ {
					strip[l*mr+ii] = 0
				}
				continue
			}
			arow := a[src[ir+ii]*lda : src[ir+ii]*lda+k]
			for l, v := range arow {
				strip[l*mr+ii] = v
			}
		}
	}
}

// packBGather packs the gathered columns src of B into nr strips (zero
// padding past the last column).
func packBGather(dst, b []float64, ldb int, src []int, k int) {
	cols := len(src)
	colsPad := roundUp(cols, nr)
	for jr := 0; jr < colsPad; jr += nr {
		strip := dst[jr*k : (jr+nr)*k]
		w := min(nr, cols-jr)
		for l := 0; l < k; l++ {
			brow := b[l*ldb:]
			drow := strip[l*nr : l*nr+nr]
			for jj := 0; jj < w; jj++ {
				drow[jj] = brow[src[jr+jj]]
			}
			for jj := w; jj < nr; jj++ {
				drow[jj] = 0
			}
		}
	}
}

// trsmBlock is the diagonal-block edge of the blocked triangular solve.
const trsmBlock = 16

// TrsmLowerUnitLeft solves L * X = B in place for a unit lower-triangular
// k-by-k L (row-major, stride ldl); B is k-by-n (row-major, stride ldb) and
// is overwritten with X. This is the "U_kj = L_kk^{-1} U_kj" operation of
// task Update (Fig. 8 line 05). The solve is blocked: small triangular
// eliminations on trsmBlock-row diagonal blocks, with the trailing rows
// updated by the packed GEMM engine — true BLAS-3. Flops: n*k*(k-1).
func TrsmLowerUnitLeft(k, n int, l []float64, ldl int, b []float64, ldb int) {
	if k == 0 || n == 0 {
		return
	}
	noteTrsm(k, n, int64(n)*int64(k)*int64(k-1))
	for ib := 0; ib < k; ib += trsmBlock {
		tb := min(trsmBlock, k-ib)
		// Triangular solve of the diagonal block rows.
		for i := ib + 1; i < ib+tb; i++ {
			brow := b[i*ldb : i*ldb+n]
			lrow := l[i*ldl:]
			for p := ib; p < i; p++ {
				lip := lrow[p]
				prow := b[p*ldb : p*ldb+n]
				for j, v := range prow {
					brow[j] -= lip * v
				}
			}
		}
		// Trailing-panel update B[ib+tb:] -= L[ib+tb:, ib:ib+tb] * B[ib:ib+tb].
		if rem := k - ib - tb; rem > 0 {
			Gemm(rem, n, tb, l[(ib+tb)*ldl+ib:], ldl, b[ib*ldb:], ldb, b[(ib+tb)*ldb:], ldb)
		}
	}
}

// TrsmUpperLeft solves U * X = B in place for an upper-triangular k-by-k U
// (row-major, stride ldu, nonzero diagonal); B is k-by-n (row-major, stride
// ldb) and is overwritten with X — the multi-RHS counterpart of TrsvUpper
// for the blocked SolveMany backward sweep. Blocked like TrsmLowerUnitLeft:
// the coupling of each diagonal block to the already-solved trailing rows
// goes through the packed GEMM engine, only the trsmBlock-row backward
// substitutions run as vector ops. Flops: n*k*k.
func TrsmUpperLeft(k, n int, u []float64, ldu int, b []float64, ldb int) {
	if k == 0 || n == 0 {
		return
	}
	noteTrsm(k, n, int64(n)*int64(k)*int64(k))
	for ib := (k - 1) / trsmBlock * trsmBlock; ib >= 0; ib -= trsmBlock {
		tb := min(trsmBlock, k-ib)
		// Couple to the solved rows below: B[ib:ib+tb] -= U[ib:ib+tb, ib+tb:] * B[ib+tb:].
		if rem := k - ib - tb; rem > 0 {
			Gemm(tb, n, rem, u[ib*ldu+ib+tb:], ldu, b[(ib+tb)*ldb:], ldb, b[ib*ldb:], ldb)
		}
		// Backward substitution within the diagonal block.
		for i := ib + tb - 1; i >= ib; i-- {
			brow := b[i*ldb : i*ldb+n]
			urow := u[i*ldu:]
			for p := i + 1; p < ib+tb; p++ {
				uip := urow[p]
				prow := b[p*ldb : p*ldb+n]
				for j, v := range prow {
					brow[j] -= uip * v
				}
			}
			d := urow[i]
			for j := range brow {
				brow[j] /= d
			}
		}
	}
}
