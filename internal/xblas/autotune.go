// One-shot cache-block autotuning for the packed GEMM engine.
//
// The micro-tile shape (4x8) is fixed by the vector micro-kernel, but the
// cache blocking — how many A rows and B columns are packed per panel — is a
// machine property: the right shape depends on cache sizes, SMT siblings and
// memory bandwidth, not on the matrix. Autotune measures the GEMM and TRSM
// kernels once, at supernode-update shapes, over a small candidate set and
// publishes the winner for the process lifetime.
//
// Correctness is unconditional: every element of C accumulates over the full
// k extent inside one micro-kernel call whatever the cache blocking, so all
// candidates produce bitwise-identical results (pinned by
// TestTileShapeBitIdentical). Autotuning therefore never interacts with the
// repo's determinism guarantees — it only moves wall-clock.
package xblas

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// tileShape is the published cache-block configuration of the engine.
type tileShape struct {
	mc int // A-panel rows per cache block (multiple of mr)
	nc int // B-panel columns per cache block (multiple of nr)
}

// tileCfg is the live configuration; gemmEngine loads it once per call (one
// atomic pointer load against thousands of flops).
var tileCfg atomic.Pointer[tileShape]

func init() {
	tileCfg.Store(&tileShape{mc: defaultMCBlock, nc: defaultNCBlock})
}

// TileShape returns the cache-block shape currently in use.
func TileShape() (mc, nc int) {
	ts := tileCfg.Load()
	return ts.mc, ts.nc
}

// SetTileShape installs a cache-block shape directly, bypassing the
// autotuner — for tests and benchmarks that sweep shapes. mc must be a
// positive multiple of 4 and nc a positive multiple of 8.
func SetTileShape(mc, nc int) error {
	if mc <= 0 || mc%mr != 0 {
		return fmt.Errorf("xblas: tile mc %d must be a positive multiple of %d", mc, mr)
	}
	if nc <= 0 || nc%nr != 0 {
		return fmt.Errorf("xblas: tile nc %d must be a positive multiple of %d", nc, nr)
	}
	tileCfg.Store(&tileShape{mc: mc, nc: nc})
	return nil
}

// TileChoice reports the outcome of Autotune.
type TileChoice struct {
	MC, NC    int     // the winning cache-block shape
	GemmNs    float64 // measured ns per probe GEMM at the winning shape
	TrsmNs    float64 // measured ns per probe TRSM at the winning shape
	Autotuned bool    // false when the measurement was skipped (defaults kept)
}

// tileCandidates is the shape set Autotune measures. The default sits in the
// middle; the others trade packed-A residency (mc, L1/L2 bound) against
// packed-B reuse (nc, L2/L3 bound) in both directions.
var tileCandidates = []tileShape{
	{mc: 64, nc: 128},
	{mc: 64, nc: 512},
	{mc: 96, nc: 256}, // default
	{mc: 128, nc: 256},
	{mc: 192, nc: 384},
}

var (
	autotuneOnce   sync.Once
	autotuneResult TileChoice
)

// Autotune measures the packed engine at every candidate cache-block shape
// and installs the fastest, once per process; later calls return the cached
// decision without re-measuring. The probe shapes mirror the hot supernode
// operations: a trailing update GEMM (m = n = 256 rows/columns of trailing
// structure, k = 32 panel width) and the panel TRSM (32-row triangle against
// 256 right-hand columns). Total budget is a few hundred milliseconds —
// intended for process startup (sstar-serve, sstar-bench), not per-request
// paths.
func Autotune() TileChoice {
	autotuneOnce.Do(func() {
		autotuneResult = runAutotune()
		tileCfg.Store(&tileShape{mc: autotuneResult.MC, nc: autotuneResult.NC})
	})
	return autotuneResult
}

// AutotuneResult returns the cached Autotune outcome without triggering a
// measurement. ok is false when Autotune has not run.
func AutotuneResult() (TileChoice, bool) {
	if !autotuneResult.Autotuned {
		return TileChoice{MC: defaultMCBlock, NC: defaultNCBlock}, false
	}
	return autotuneResult, true
}

// Probe problem shapes (see Autotune docs).
const (
	probeMN = 256
	probeK  = 32
)

// runAutotune does the actual sweep. It restores the configured shape while
// measuring so a concurrent caller never observes a half-tuned engine, then
// the caller publishes the winner.
func runAutotune() TileChoice {
	a := make([]float64, probeMN*probeK)
	b := make([]float64, probeK*probeMN)
	c := make([]float64, probeMN*probeMN)
	l := make([]float64, probeK*probeK)
	rhs := make([]float64, probeK*probeMN)
	fillSeq(a, 1)
	fillSeq(b, 2)
	fillSeq(l, 3)
	for i := 0; i < probeK; i++ {
		l[i*probeK+i] = 1
	}
	prev := tileCfg.Load()
	defer tileCfg.Store(prev)

	best := TileChoice{Autotuned: true}
	bestScore := 0.0
	for _, cand := range tileCandidates {
		tileCfg.Store(&tileShape{mc: cand.mc, nc: cand.nc})
		gemmNs := probeNs(func() {
			Gemm(probeMN, probeMN, probeK, a, probeK, b, probeMN, c, probeMN)
		})
		copy(rhs, b)
		trsmNs := probeNs(func() {
			TrsmLowerUnitLeft(probeK, probeMN, l, probeK, rhs, probeMN)
		})
		// Score by combined time; GEMM dominates real factorizations, and
		// the TRSM term (whose trailing updates run on the same engine)
		// keeps a shape that only wins on square-ish products from
		// regressing the triangular path.
		score := gemmNs + trsmNs
		if best.MC == 0 || score < bestScore {
			best.MC, best.NC = cand.mc, cand.nc
			best.GemmNs, best.TrsmNs = gemmNs, trsmNs
			bestScore = score
		}
	}
	return best
}

// probeNs times run with geometrically growing repetition counts until the
// batch is long enough to trust, then returns ns per call — a smaller,
// faster cousin of the bench harness's measurement loop (the autotuner runs
// at startup, so its budget is tens of milliseconds per candidate).
func probeNs(run func()) float64 {
	run() // warm cache-block buffers and branch predictors
	reps := 1
	for {
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			run()
		}
		el := time.Since(t0)
		if el >= 20*time.Millisecond || reps >= 1<<20 {
			return float64(el.Nanoseconds()) / float64(reps)
		}
		if el <= 0 {
			reps *= 64
			continue
		}
		next := int(float64(reps) * float64(25*time.Millisecond) / float64(el))
		if next <= reps {
			next = reps * 2
		}
		reps = next
	}
}

// fillSeq fills x with a deterministic non-constant pattern (values in
// (-1, 1)) without pulling in math/rand.
func fillSeq(x []float64, seed uint64) {
	s := seed
	for i := range x {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		x[i] = float64(int64(s)) / float64(1<<63)
	}
}
