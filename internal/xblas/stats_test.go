package xblas

import "testing"

func TestStatsCounting(t *testing.T) {
	EnableStats()
	defer DisableStats()

	m, n, k := 8, 8, 8
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	c := make([]float64, m*n)
	for i := range a {
		a[i] = float64(i%7) + 1
	}
	for i := range b {
		b[i] = float64(i%5) + 1
	}
	Gemm(m, n, k, a, k, b, n, c, n)

	s, on := ReadStats()
	if !on {
		t.Fatal("stats should be enabled")
	}
	if s.GemmCalls != 1 {
		t.Fatalf("GemmCalls = %d, want 1", s.GemmCalls)
	}
	if want := int64(2 * m * n * k); s.GemmFlops != want {
		t.Fatalf("GemmFlops = %d, want %d", s.GemmFlops, want)
	}
	if want := int64(8 * (m*k + k*n + m*n)); s.GemmBytes != want {
		t.Fatalf("GemmBytes = %d, want %d", s.GemmBytes, want)
	}

	// A scatter call with one masked row/column counts the compacted shape.
	rowPos := []int{0, 1, -1, 3, 4, 5, 6, 7}
	colPos := []int{0, 1, 2, 3, -1, 5, 6, 7}
	GemmScatter(m, n, k, a, k, b, n, c, n, rowPos, colPos)
	s, _ = ReadStats()
	if s.ScatterCalls != 1 {
		t.Fatalf("ScatterCalls = %d, want 1", s.ScatterCalls)
	}
	if want := int64(2 * 7 * 7 * k); s.ScatterFlops != want {
		t.Fatalf("ScatterFlops = %d, want %d", s.ScatterFlops, want)
	}

	// TRSM counts its own flop formula; its trailing GEMM sub-calls land in
	// the Gemm counters on top.
	l := make([]float64, k*k)
	for i := 0; i < k; i++ {
		l[i*k+i] = 1
	}
	TrsmLowerUnitLeft(k, n, l, k, c, n)
	s, _ = ReadStats()
	if s.TrsmCalls != 1 {
		t.Fatalf("TrsmCalls = %d, want 1", s.TrsmCalls)
	}
	if want := int64(n * k * (k - 1)); s.TrsmFlops != want {
		t.Fatalf("TrsmFlops = %d, want %d", s.TrsmFlops, want)
	}

	DisableStats()
	if _, on := ReadStats(); on {
		t.Fatal("stats should be disabled")
	}
}

// TestStatsDisabledZeroAlloc is the kernel half of the overhead guard: with
// stats disabled (the default), the counting hook in the small-GEMM path
// must allocate nothing — the whole disabled cost is one atomic pointer
// load and a nil check per kernel call.
func TestStatsDisabledZeroAlloc(t *testing.T) {
	DisableStats()
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	c := make([]float64, 4)
	allocs := testing.AllocsPerRun(1000, func() {
		Gemm(2, 2, 2, a, 2, b, 2, c, 2)
	})
	if allocs != 0 {
		t.Fatalf("disabled-stats Gemm allocates: %v allocs/op, want 0", allocs)
	}
}
