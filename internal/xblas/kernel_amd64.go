//go:build amd64

package xblas

// useAsmKernel reports whether the AVX2+FMA vector micro-kernel can run on
// this CPU (checked once at startup via CPUID/XGETBV). The fallback
// kernel4x8go produces bitwise-identical results, so the switch is purely a
// speed decision.
var useAsmKernel = x86HasAVX2FMA()

// x86HasAVX2FMA reports AVX2+FMA hardware support with OS-enabled YMM state.
// Implemented in gemm_amd64.s.
func x86HasAVX2FMA() bool

// kernel4x8asm computes the 4x8 micro-tile update C += sign * Ap*Bp over
// packed strips Ap (kc*4, layout l*4+i) and Bp (kc*8, layout l*8+j), with C
// row-major at stride ldc. Implemented in gemm_amd64.s (AVX2+FMA).
//
//go:noescape
func kernel4x8asm(kc int, a, b, c *float64, ldc int, sign float64)

// KernelName identifies the micro-kernel selected at startup, for benchmark
// reports.
func KernelName() string {
	if useAsmKernel {
		return "amd64-avx2-fma"
	}
	return "portable-fma"
}

// kernel4x8 dispatches to the vector kernel when available.
func kernel4x8(kc int, a, b, c []float64, ldc int, sign float64) {
	if useAsmKernel {
		kernel4x8asm(kc, &a[0], &b[0], &c[0], ldc, sign)
		return
	}
	kernel4x8go(kc, a, b, c, ldc, sign)
}
