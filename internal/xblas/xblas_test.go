package xblas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func randMat(rng *rand.Rand, m, n int) []float64 {
	a := make([]float64, m*n)
	for i := range a {
		a[i] = 2*rng.Float64() - 1
	}
	return a
}

// naiveGemm computes C -= A*B elementwise for reference.
func naiveGemm(m, n, k int, a, b, c []float64, lda, ldb, ldc int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += a[i*lda+l] * b[l*ldb+j]
			}
			c[i*ldc+j] -= s
		}
	}
}

func maxDiff(x, y []float64) float64 {
	d := 0.0
	for i := range x {
		if v := math.Abs(x[i] - y[i]); v > d {
			d = v
		}
	}
	return d
}

func TestAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	Axpy(2, x, y)
	want := []float64{6, 9, 12}
	if maxDiff(y, want) > eps {
		t.Fatalf("Axpy = %v, want %v", y, want)
	}
}

func TestAxpyZeroAlpha(t *testing.T) {
	y := []float64{1, 2}
	Axpy(0, []float64{9, 9}, y)
	if y[0] != 1 || y[1] != 2 {
		t.Fatal("Axpy with alpha=0 modified y")
	}
}

func TestScalDot(t *testing.T) {
	x := []float64{1, -2, 3}
	Scal(-2, x)
	if x[0] != -2 || x[1] != 4 || x[2] != -6 {
		t.Fatalf("Scal result %v", x)
	}
	if got := Dot([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Fatalf("Dot = %v, want 11", got)
	}
}

func TestIamax(t *testing.T) {
	if got := Iamax([]float64{1, -5, 3}); got != 1 {
		t.Fatalf("Iamax = %d, want 1", got)
	}
	if got := Iamax(nil); got != -1 {
		t.Fatalf("Iamax(nil) = %d, want -1", got)
	}
	// Ties resolve to the first occurrence.
	if got := Iamax([]float64{2, -2}); got != 0 {
		t.Fatalf("Iamax tie = %d, want 0", got)
	}
}

func TestGemvAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, n := 7, 5
	a := randMat(rng, m, n)
	x := randMat(rng, n, 1)
	y := randMat(rng, m, 1)
	want := make([]float64, m)
	for i := 0; i < m; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a[i*n+j] * x[j]
		}
		want[i] = 1.5*s + 0.5*y[i]
	}
	Gemv(m, n, 1.5, a, n, x, 0.5, y)
	if maxDiff(y, want) > eps {
		t.Fatalf("Gemv mismatch: %v", maxDiff(y, want))
	}
}

func TestGerAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, n := 6, 4
	a := randMat(rng, m, n)
	want := append([]float64(nil), a...)
	x := randMat(rng, m, 1)
	y := randMat(rng, n, 1)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			want[i*n+j] += -0.7 * x[i] * y[j]
		}
	}
	Ger(m, n, -0.7, x, y, a, n)
	if maxDiff(a, want) > eps {
		t.Fatal("Ger mismatch")
	}
}

func TestGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 13, 11}, {64, 64, 64}, {100, 3, 70}, {5, 120, 2}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		c := randMat(rng, m, n)
		want := append([]float64(nil), c...)
		naiveGemm(m, n, k, a, b, want, k, n, n)
		Gemm(m, n, k, a, k, b, n, c, n)
		if d := maxDiff(c, want); d > 1e-10 {
			t.Fatalf("Gemm(%d,%d,%d) diff %g", m, n, k, d)
		}
	}
}

func TestGemmStrided(t *testing.T) {
	// Operate on a sub-block of a larger matrix via leading dimensions.
	rng := rand.New(rand.NewSource(4))
	lda, ldb, ldc := 10, 12, 11
	m, n, k := 4, 5, 6
	a := randMat(rng, 8, lda)
	b := randMat(rng, 8, ldb)
	c := randMat(rng, 8, ldc)
	want := append([]float64(nil), c...)
	naiveGemm(m, n, k, a, b, want, lda, ldb, ldc)
	Gemm(m, n, k, a, lda, b, ldb, c, ldc)
	if maxDiff(c, want) > 1e-10 {
		t.Fatal("strided Gemm mismatch")
	}
}

func TestGemmAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, n, k := 9, 7, 8
	a := randMat(rng, m, k)
	b := randMat(rng, k, n)
	c := randMat(rng, m, n)
	d := append([]float64(nil), c...)
	Gemm(m, n, k, a, k, b, n, c, n)
	GemmAdd(m, n, k, a, k, b, n, c, n)
	if maxDiff(c, d) > 1e-10 {
		t.Fatal("GemmAdd did not invert Gemm")
	}
}

func TestGemmEmpty(t *testing.T) {
	c := []float64{1, 2, 3, 4}
	Gemm(0, 2, 2, nil, 1, nil, 2, c, 2)
	Gemm(2, 2, 0, nil, 1, nil, 2, c, 2)
	if c[0] != 1 || c[3] != 4 {
		t.Fatal("empty Gemm modified C")
	}
}

func TestTrsmLowerUnitLeft(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	k, n := 6, 4
	l := randMat(rng, k, k)
	for i := 0; i < k; i++ {
		l[i*k+i] = 1
		for j := i + 1; j < k; j++ {
			l[i*k+j] = 0
		}
	}
	x := randMat(rng, k, n)
	b := make([]float64, k*n)
	// b = L*x
	for i := 0; i < k; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p <= i; p++ {
				s += l[i*k+p] * x[p*n+j]
			}
			b[i*n+j] = s
		}
	}
	TrsmLowerUnitLeft(k, n, l, k, b, n)
	if maxDiff(b, x) > 1e-10 {
		t.Fatal("TrsmLowerUnitLeft failed to recover X")
	}
}

func TestTrsmUpperLeft(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// k crosses two trsmBlock boundaries so the blocked GEMM coupling runs.
	k, n := 2*trsmBlock+5, 7
	u := randMat(rng, k, k)
	for i := 0; i < k; i++ {
		u[i*k+i] = 2 + rng.Float64()
		for j := 0; j < i; j++ {
			u[i*k+j] = 0
		}
	}
	x := randMat(rng, k, n)
	b := make([]float64, k*n)
	// b = U*x
	for i := 0; i < k; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := i; p < k; p++ {
				s += u[i*k+p] * x[p*n+j]
			}
			b[i*n+j] = s
		}
	}
	// Column-by-column TrsvUpper is the established reference.
	ref := make([]float64, k*n)
	col := make([]float64, k)
	for j := 0; j < n; j++ {
		for i := 0; i < k; i++ {
			col[i] = b[i*n+j]
		}
		TrsvUpper(k, u, k, col)
		for i := 0; i < k; i++ {
			ref[i*n+j] = col[i]
		}
	}
	TrsmUpperLeft(k, n, u, k, b, n)
	if maxDiff(b, x) > 1e-9 {
		t.Fatal("TrsmUpperLeft failed to recover X")
	}
	if maxDiff(b, ref) > 1e-12 {
		t.Fatal("TrsmUpperLeft disagrees with per-column TrsvUpper")
	}
}

func TestTrsvLowerUnitUpper(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 8
	l := randMat(rng, n, n)
	u := randMat(rng, n, n)
	for i := 0; i < n; i++ {
		l[i*n+i] = 1
		u[i*n+i] = 2 + rng.Float64()
		for j := i + 1; j < n; j++ {
			l[i*n+j] = 0
		}
		for j := 0; j < i; j++ {
			u[i*n+j] = 0
		}
	}
	x := randMat(rng, n, 1)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b[i] += l[i*n+j] * x[j]
		}
	}
	TrsvLowerUnit(n, l, n, b)
	if maxDiff(b, x) > 1e-10 {
		t.Fatal("TrsvLowerUnit mismatch")
	}
	b2 := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b2[i] += u[i*n+j] * x[j]
		}
	}
	TrsvUpper(n, u, n, b2)
	if maxDiff(b2, x) > 1e-10 {
		t.Fatal("TrsvUpper mismatch")
	}
}

// Property: Gemm is linear in A — Gemm with A1+A2 equals sequential Gemm with
// A1 then A2.
func TestGemmLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, k := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a1 := randMat(rng, m, k)
		a2 := randMat(rng, m, k)
		sum := make([]float64, m*k)
		for i := range sum {
			sum[i] = a1[i] + a2[i]
		}
		b := randMat(rng, k, n)
		c1 := randMat(rng, m, n)
		c2 := append([]float64(nil), c1...)
		Gemm(m, n, k, sum, k, b, n, c1, n)
		Gemm(m, n, k, a1, k, b, n, c2, n)
		Gemm(m, n, k, a2, k, b, n, c2, n)
		return maxDiff(c1, c2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
