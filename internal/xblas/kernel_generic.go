//go:build !amd64

package xblas

// KernelName identifies the micro-kernel selected at startup, for benchmark
// reports.
func KernelName() string { return "portable-fma" }

// kernel4x8 runs the portable micro-kernel on non-amd64 targets. math.FMA
// is correctly rounded on every platform (hardware fused multiply-add where
// available, exact software emulation otherwise), so results are bitwise
// identical to the amd64 vector kernel.
func kernel4x8(kc int, a, b, c []float64, ldc int, sign float64) {
	kernel4x8go(kc, a, b, c, ldc, sign)
}
