package xblas

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// Property tests pinning the packed register-tiled kernels to a naive
// reference implementation.
//
// The engine accumulates every C element over the full k extent in ascending
// order with correctly-rounded fused multiply-adds and folds the result into
// C with a single rounding — exactly what the FMA triple loop below does. So
// Gemm, GemmAdd and GemmScatter must bit-match the reference EXACTLY, on
// every path (small direct, packed interior tiles, padded edge tiles, asm and
// portable micro-kernels alike). TrsmLowerUnitLeft reassociates the solve
// into blocked BLAS-3 form, so it gets a 1e-12 relative tolerance instead.

// refGemmSign computes C += sign*A*B the naive way, with the engine's
// rounding contract (FMA accumulation in ascending l, one fold per element).
func refGemmSign(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, sign float64) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := 0.0
			for l := 0; l < k; l++ {
				acc = math.FMA(a[i*lda+l], b[l*ldb+j], acc)
			}
			c[i*ldc+j] = math.FMA(sign, acc, c[i*ldc+j])
		}
	}
}

// refGemmScatter is the naive gather/scatter update: C[dr[i], dc[j]] -=
// (A*B)[i, j], skipping -1 map entries.
func refGemmScatter(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, dstRow, dstCol []int) {
	for i := 0; i < m; i++ {
		if dstRow[i] < 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if dstCol[j] < 0 {
				continue
			}
			acc := 0.0
			for l := 0; l < k; l++ {
				acc = math.FMA(a[i*lda+l], b[l*ldb+j], acc)
			}
			c[dstRow[i]*ldc+dstCol[j]] -= acc
		}
	}
}

// refTrsmLowerUnitLeft is the unblocked forward solve.
func refTrsmLowerUnitLeft(k, n int, l []float64, ldl int, b []float64, ldb int) {
	for i := 1; i < k; i++ {
		for p := 0; p < i; p++ {
			lip := l[i*ldl+p]
			for j := 0; j < n; j++ {
				b[i*ldb+j] -= lip * b[p*ldb+j]
			}
		}
	}
}

// randDims draws a random shape: mostly general rectangles, with degenerate
// 1-by-n and m-by-1 shapes and micro-tile-boundary sizes mixed in.
func randDims(rng *rand.Rand) (m, n, k int) {
	switch rng.Intn(6) {
	case 0: // degenerate row
		return 1, 1 + rng.Intn(40), 1 + rng.Intn(40)
	case 1: // degenerate column
		return 1 + rng.Intn(40), 1, 1 + rng.Intn(40)
	case 2: // exact micro-tile multiples
		return 4 * (1 + rng.Intn(8)), 8 * (1 + rng.Intn(4)), 1 + rng.Intn(40)
	case 3: // one off the micro-tile boundary
		return 4*(1+rng.Intn(8)) + 1, 8*(1+rng.Intn(4)) - 1, 1 + rng.Intn(40)
	default:
		return 1 + rng.Intn(70), 1 + rng.Intn(70), 1 + rng.Intn(70)
	}
}

func bitEqual(x, y []float64) bool {
	for i := range x {
		if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
			return false
		}
	}
	return true
}

func TestGemmBitMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		m, n, k := randDims(rng)
		// Leading dimensions strictly greater than the row width half the
		// time, to exercise strided packing.
		lda := k + rng.Intn(7)
		ldb := n + rng.Intn(7)
		ldc := n + rng.Intn(7)
		a := randMat(rng, m, lda)
		b := randMat(rng, k, ldb)
		c := randMat(rng, m, ldc)
		want := append([]float64(nil), c...)
		sign := -1.0
		if trial%2 == 0 {
			sign = 1
		}
		refGemmSign(m, n, k, a, lda, b, ldb, want, ldc, sign)
		if sign < 0 {
			Gemm(m, n, k, a, lda, b, ldb, c, ldc)
		} else {
			GemmAdd(m, n, k, a, lda, b, ldb, c, ldc)
		}
		if !bitEqual(c, want) {
			t.Fatalf("trial %d: Gemm(sign=%v) m=%d n=%d k=%d lda=%d ldb=%d ldc=%d: not bit-identical to reference (max diff %g)",
				trial, sign, m, n, k, lda, ldb, ldc, maxDiff(c, want))
		}
	}
}

func TestGemmScatterBitMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 300; trial++ {
		m, n, k := randDims(rng)
		lda := k + rng.Intn(5)
		ldb := n + rng.Intn(5)
		// Target with its own (larger) shape; maps send product rows/cols to
		// random distinct target slots, with ~1/4 of them dropped (-1).
		tm, tn := m+rng.Intn(4), n+rng.Intn(4)
		ldc := tn + rng.Intn(5)
		dstRow := scatterMap(rng, m, tm)
		dstCol := scatterMap(rng, n, tn)
		a := randMat(rng, m, lda)
		b := randMat(rng, k, ldb)
		c := randMat(rng, tm, ldc)
		want := append([]float64(nil), c...)
		refGemmScatter(m, n, k, a, lda, b, ldb, want, ldc, dstRow, dstCol)
		GemmScatter(m, n, k, a, lda, b, ldb, c, ldc, dstRow, dstCol)
		if !bitEqual(c, want) {
			t.Fatalf("trial %d: GemmScatter m=%d n=%d k=%d: not bit-identical to reference (max diff %g)",
				trial, m, n, k, maxDiff(c, want))
		}
	}
}

// scatterMap draws an injective map of src positions onto t target slots with
// about a quarter of the positions unmapped (-1).
func scatterMap(rng *rand.Rand, src, t int) []int {
	perm := rng.Perm(t)
	out := make([]int, src)
	for i := range out {
		if rng.Intn(4) == 0 {
			out[i] = -1
			continue
		}
		out[i] = perm[i%t]
	}
	return out
}

func TestTrsmMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 200; trial++ {
		// Cross the trsmBlock boundaries (16, 32, 48...) and degenerate n=1.
		k := 1 + rng.Intn(70)
		n := 1 + rng.Intn(40)
		if trial%7 == 0 {
			n = 1
		}
		ldl := k + rng.Intn(5)
		ldb := n + rng.Intn(5)
		l := randMat(rng, k, ldl)
		for i := 0; i < k; i++ {
			l[i*ldl+i] = 1
			// Mild off-diagonal magnitudes keep the solve well conditioned,
			// so the 1e-12 relative tolerance is meaningful.
			for j := 0; j < i; j++ {
				l[i*ldl+j] *= 0.5
			}
		}
		b := randMat(rng, k, ldb)
		want := append([]float64(nil), b...)
		refTrsmLowerUnitLeft(k, n, l, ldl, want, ldb)
		TrsmLowerUnitLeft(k, n, l, ldl, b, ldb)
		scale := 1.0
		for _, v := range want {
			scale = math.Max(scale, math.Abs(v))
		}
		if d := maxDiff(b, want); d > 1e-12*scale {
			t.Fatalf("trial %d: Trsm k=%d n=%d ldl=%d ldb=%d: rel diff %g", trial, k, n, ldl, ldb, d/scale)
		}
	}
}

// TestKernelDispatchParity pins the dispatched micro-kernel (vector assembly
// on capable amd64 hosts) to the portable math.FMA kernel bit for bit.
func TestKernelDispatchParity(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, kc := range []int{1, 2, 7, 16, 33, 128} {
		a := randMat(rng, kc, 4)
		b := randMat(rng, kc, 8)
		for _, sign := range []float64{1, -1} {
			ldc := 8 + rng.Intn(4)
			c1 := randMat(rng, 4, ldc)
			c2 := append([]float64(nil), c1...)
			kernel4x8(kc, a, b, c1, ldc, sign)
			kernel4x8go(kc, a, b, c2, ldc, sign)
			if !bitEqual(c1, c2) {
				t.Fatalf("kc=%d sign=%v: dispatched kernel differs from portable kernel on %s", kc, sign, runtime.GOARCH)
			}
		}
	}
}

// TestGemmConcurrent hammers the shared pack-buffer pool from many
// goroutines; with -race this verifies the pool discipline, and the bitwise
// check verifies calls never observe each other's buffers.
func TestGemmConcurrent(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < 50; trial++ {
				m, n, k := randDims(rng)
				a := randMat(rng, m, k)
				b := randMat(rng, k, n)
				c := randMat(rng, m, n)
				want := append([]float64(nil), c...)
				refGemmSign(m, n, k, a, k, b, n, want, n, -1)
				Gemm(m, n, k, a, k, b, n, c, n)
				if !bitEqual(c, want) {
					errs <- "concurrent Gemm diverged from reference"
					return
				}
			}
		}(int64(100 + w))
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
