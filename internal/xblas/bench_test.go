package xblas

import (
	"fmt"
	"math/rand"
	"testing"
)

// Kernel micro-benchmarks at representative supernode block sizes (the
// paper's BSIZE=25 panels, amalgamated panels up to ~128). b.ReportMetric
// publishes GFLOP/s so `go test -bench` output doubles as a perf tracker;
// cmd/sstar-bench -experiment kernels records the same quantities in
// BENCH_kernels.json.

var gemmBenchSizes = []int{8, 16, 25, 32, 64, 128}

func BenchmarkGemm(b *testing.B) {
	for _, n := range gemmBenchSizes {
		b.Run(fmt.Sprintf("%dx%dx%d", n, n, n), func(b *testing.B) {
			benchGemmN(b, n)
		})
	}
}

func benchGemmN(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, n, n)
	bb := randMat(rng, n, n)
	c := randMat(rng, n, n)
	b.SetBytes(int64(8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(n, n, n, a, n, bb, n, c, n)
	}
	b.ReportMetric(gflops(2*int64(n)*int64(n)*int64(n), b), "GFLOP/s")
}

func BenchmarkGemmAdd(b *testing.B) {
	for _, n := range gemmBenchSizes {
		b.Run(fmt.Sprintf("%dx%dx%d", n, n, n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			a := randMat(rng, n, n)
			bb := randMat(rng, n, n)
			c := randMat(rng, n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				GemmAdd(n, n, n, a, n, bb, n, c, n)
			}
			b.ReportMetric(gflops(2*int64(n)*int64(n)*int64(n), b), "GFLOP/s")
		})
	}
}

// BenchmarkGemmRect exercises the panel-update shape of the 1D/2D codes:
// a tall L block times a BSIZE-wide U block.
func BenchmarkGemmRect(b *testing.B) {
	for _, dims := range [][3]int{{128, 25, 25}, {256, 25, 25}, {64, 128, 25}} {
		m, n, k := dims[0], dims[1], dims[2]
		b.Run(fmt.Sprintf("%dx%dx%d", m, n, k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			a := randMat(rng, m, k)
			bb := randMat(rng, k, n)
			c := randMat(rng, m, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Gemm(m, n, k, a, k, bb, n, c, n)
			}
			b.ReportMetric(gflops(2*int64(m)*int64(n)*int64(k), b), "GFLOP/s")
		})
	}
}

func BenchmarkTrsm(b *testing.B) {
	for _, n := range gemmBenchSizes {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			l := randMat(rng, n, n)
			for i := 0; i < n; i++ {
				l[i*n+i] = 1
			}
			x := randMat(rng, n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				TrsmLowerUnitLeft(n, n, l, n, x, n)
			}
			b.ReportMetric(gflops(int64(n)*int64(n)*int64(n-1), b), "GFLOP/s")
		})
	}
}

func BenchmarkGemv25(b *testing.B) {
	n := 25
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, n, n)
	x := randMat(rng, n, 1)
	y := randMat(rng, n, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemv(n, n, 1, a, n, x, 1, y)
	}
}

// gflops converts the per-iteration flop count into a GFLOP/s rate.
func gflops(flopsPerOp int64, b *testing.B) float64 {
	return float64(flopsPerOp) * float64(b.N) / b.Elapsed().Seconds() / 1e9
}
