// Package xblas implements the dense linear-algebra kernels (a BLAS subset)
// that S* runs its supernode-block updates on. The Cray T3D/T3E libraries the
// paper links against are replaced by these pure-Go routines; the kernels are
// written so the inner loops vectorize reasonably, and every routine reports
// its floating-point operation count so the machine model can charge BLAS-2
// versus BLAS-3 work at different rates (the distinction the paper's analysis
// in Section 6.1 hinges on).
//
// Matrices are dense, column-major is NOT used: all matrices here are
// row-major with an explicit leading dimension (stride), matching Go slice
// idiom: element (i,j) of an m-by-n matrix a with stride lda is a[i*lda+j].
package xblas

import "math"

// Axpy computes y += alpha*x (BLAS-1). Flops: 2*len(x).
func Axpy(alpha float64, x, y []float64) {
	if alpha == 0 || len(x) == 0 {
		return
	}
	_ = y[len(x)-1]
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scal computes x *= alpha (BLAS-1). Flops: len(x).
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dot returns x · y (BLAS-1). Flops: 2*len(x).
func Dot(x, y []float64) float64 {
	s := 0.0
	_ = y[len(x)-1]
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Iamax returns the index of the entry of x with the largest absolute value,
// or -1 for an empty x (BLAS-1).
func Iamax(x []float64) int {
	best, arg := -1.0, -1
	for i, v := range x {
		if a := math.Abs(v); a > best {
			best, arg = a, i
		}
	}
	return arg
}

// Gemv computes y = alpha*A*x + beta*y for an m-by-n row-major A with stride
// lda (BLAS-2). Flops: 2*m*n.
func Gemv(m, n int, alpha float64, a []float64, lda int, x []float64, beta float64, y []float64) {
	for i := 0; i < m; i++ {
		row := a[i*lda : i*lda+n]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = alpha*s + beta*y[i]
	}
}

// Ger computes A += alpha * x * y^T for an m-by-n row-major A (BLAS-2).
// Flops: 2*m*n.
func Ger(m, n int, alpha float64, x, y []float64, a []float64, lda int) {
	for i := 0; i < m; i++ {
		xi := alpha * x[i]
		if xi == 0 {
			continue
		}
		row := a[i*lda : i*lda+n]
		for j, v := range y[:n] {
			row[j] += xi * v
		}
	}
}

// gemmBlock is the cache-blocking tile edge for Gemm.
const gemmBlock = 48

// Gemm computes C = C - A*B (the update form used throughout sparse LU:
// A_ij -= L_ik * U_kj) for row-major A (m-by-k, stride lda), B (k-by-n,
// stride ldb) and C (m-by-n, stride ldc). Flops: 2*m*n*k.
func Gemm(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	// Blocked i-k-j loop order: the innermost loop runs along rows of B and
	// C, which are contiguous, so it auto-vectorizes.
	for ii := 0; ii < m; ii += gemmBlock {
		iMax := min(ii+gemmBlock, m)
		for kk := 0; kk < k; kk += gemmBlock {
			kMax := min(kk+gemmBlock, k)
			for i := ii; i < iMax; i++ {
				crow := c[i*ldc : i*ldc+n]
				arow := a[i*lda:]
				for l := kk; l < kMax; l++ {
					ail := arow[l]
					if ail == 0 {
						continue
					}
					brow := b[l*ldb : l*ldb+n]
					for j, v := range brow {
						crow[j] -= ail * v
					}
				}
			}
		}
	}
}

// GemmAdd computes C = C + A*B with the same layout conventions as Gemm.
func GemmAdd(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for ii := 0; ii < m; ii += gemmBlock {
		iMax := min(ii+gemmBlock, m)
		for kk := 0; kk < k; kk += gemmBlock {
			kMax := min(kk+gemmBlock, k)
			for i := ii; i < iMax; i++ {
				crow := c[i*ldc : i*ldc+n]
				arow := a[i*lda:]
				for l := kk; l < kMax; l++ {
					ail := arow[l]
					if ail == 0 {
						continue
					}
					brow := b[l*ldb : l*ldb+n]
					for j, v := range brow {
						crow[j] += ail * v
					}
				}
			}
		}
	}
}

// TrsmLowerUnitLeft solves L * X = B in place for a unit lower-triangular
// k-by-k L (row-major, stride ldl); B is k-by-n (row-major, stride ldb) and
// is overwritten with X. This is the "U_kj = L_kk^{-1} U_kj" operation of
// task Update (Fig. 8 line 05). Flops: n*k*(k-1).
func TrsmLowerUnitLeft(k, n int, l []float64, ldl int, b []float64, ldb int) {
	for i := 1; i < k; i++ {
		brow := b[i*ldb : i*ldb+n]
		lrow := l[i*ldl:]
		for p := 0; p < i; p++ {
			lip := lrow[p]
			if lip == 0 {
				continue
			}
			prow := b[p*ldb : p*ldb+n]
			for j, v := range prow {
				brow[j] -= lip * v
			}
		}
	}
}

// TrsvLowerUnit solves L*x = b in place for unit lower-triangular L (n-by-n,
// stride ldl), overwriting b with x. Flops: n*(n-1).
func TrsvLowerUnit(n int, l []float64, ldl int, b []float64) {
	for i := 1; i < n; i++ {
		row := l[i*ldl : i*ldl+i]
		s := b[i]
		for p, v := range row {
			s -= v * b[p]
		}
		b[i] = s
	}
}

// TrsvUpper solves U*x = b in place for upper-triangular U (n-by-n, stride
// ldu) with nonzero diagonal, overwriting b with x. Flops: n*n.
func TrsvUpper(n int, u []float64, ldu int, b []float64) {
	for i := n - 1; i >= 0; i-- {
		row := u[i*ldu : i*ldu+n]
		s := b[i]
		for p := i + 1; p < n; p++ {
			s -= row[p] * b[p]
		}
		b[i] = s / row[i]
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
