// Package xblas implements the dense linear-algebra kernels (a BLAS subset)
// that S* runs its supernode-block updates on. The Cray T3D/T3E libraries the
// paper links against are replaced by these stdlib-only routines; the BLAS-3
// kernels run on the packed register-tiled engine of gemm.go, and every
// routine reports its floating-point operation count so the machine model can
// charge BLAS-2 versus BLAS-3 work at different rates (the distinction the
// paper's analysis in Section 6.1 hinges on).
//
// Matrices are dense, column-major is NOT used: all matrices here are
// row-major with an explicit leading dimension (stride), matching Go slice
// idiom: element (i,j) of an m-by-n matrix a with stride lda is a[i*lda+j].
package xblas

import "math"

// Axpy computes y += alpha*x (BLAS-1). Flops: 2*len(x).
func Axpy(alpha float64, x, y []float64) {
	if alpha == 0 || len(x) == 0 {
		return
	}
	_ = y[len(x)-1]
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scal computes x *= alpha (BLAS-1). Flops: len(x).
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dot returns x · y (BLAS-1). Flops: 2*len(x).
func Dot(x, y []float64) float64 {
	s := 0.0
	_ = y[len(x)-1]
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Iamax returns the index of the entry of x with the largest absolute value,
// or -1 for an empty x (BLAS-1).
func Iamax(x []float64) int {
	best, arg := -1.0, -1
	for i, v := range x {
		if a := math.Abs(v); a > best {
			best, arg = a, i
		}
	}
	return arg
}

// Gemv computes y = alpha*A*x + beta*y for an m-by-n row-major A with stride
// lda (BLAS-2). Flops: 2*m*n.
func Gemv(m, n int, alpha float64, a []float64, lda int, x []float64, beta float64, y []float64) {
	for i := 0; i < m; i++ {
		row := a[i*lda : i*lda+n]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = alpha*s + beta*y[i]
	}
}

// Ger computes A += alpha * x * y^T for an m-by-n row-major A (BLAS-2).
// Flops: 2*m*n.
func Ger(m, n int, alpha float64, x, y []float64, a []float64, lda int) {
	for i := 0; i < m; i++ {
		xi := alpha * x[i]
		if xi == 0 {
			continue
		}
		row := a[i*lda : i*lda+n]
		for j, v := range y[:n] {
			row[j] += xi * v
		}
	}
}

// TrsvLowerUnit solves L*x = b in place for unit lower-triangular L (n-by-n,
// stride ldl), overwriting b with x. Flops: n*(n-1).
func TrsvLowerUnit(n int, l []float64, ldl int, b []float64) {
	for i := 1; i < n; i++ {
		row := l[i*ldl : i*ldl+i]
		s := b[i]
		for p, v := range row {
			s -= v * b[p]
		}
		b[i] = s
	}
}

// TrsvUpper solves U*x = b in place for upper-triangular U (n-by-n, stride
// ldu) with nonzero diagonal, overwriting b with x. Flops: n*n.
func TrsvUpper(n int, u []float64, ldu int, b []float64) {
	for i := n - 1; i >= 0; i-- {
		row := u[i*ldu : i*ldu+n]
		s := b[i]
		for p := i + 1; p < n; p++ {
			s -= row[p] * b[p]
		}
		b[i] = s / row[i]
	}
}
