package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_requests_total", "requests processed")
	g := r.Gauge("t_queue_depth", "requests waiting")
	h := r.Histogram("t_factor_seconds", "factor latency", 0.001, 0.01, 0.1)
	r.GaugeFunc("t_handles", "live handles", func() float64 { return 3 })
	r.CounterFunc("t_hits_total", "cache hits", func() float64 { return 7 })

	c.Add(5)
	g.Set(2)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(9) // overflow bucket

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		"# HELP t_requests_total requests processed",
		"# TYPE t_requests_total counter",
		"t_requests_total 5",
		"# TYPE t_queue_depth gauge",
		"t_queue_depth 2",
		"# TYPE t_factor_seconds histogram",
		`t_factor_seconds_bucket{le="0.001"} 1`,
		`t_factor_seconds_bucket{le="0.01"} 1`,
		`t_factor_seconds_bucket{le="0.1"} 2`,
		`t_factor_seconds_bucket{le="+Inf"} 3`,
		"t_factor_seconds_count 3",
		"t_handles 3",
		"t_hits_total 7",
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("missing %q in output:\n%s", want, got)
		}
	}
	// Sum: 0.0005 + 0.05 + 9.
	if !strings.Contains(got, "t_factor_seconds_sum 9.0505\n") {
		t.Errorf("bad histogram sum in:\n%s", got)
	}
	// Every line must be a comment or a sample with exactly one space.
	for _, line := range strings.Split(strings.TrimSpace(got), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Split(line, " "); len(parts) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const goroutines, each = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*each {
		t.Fatalf("count = %d, want %d", got, goroutines*each)
	}
	if got, want := h.Sum(), float64(goroutines*each)*0.001; got < want*0.999 || got > want*1.001 {
		t.Fatalf("sum = %g, want ~%g", got, want)
	}
}

// TestTracerConcurrent hammers one tracer from many goroutines (run under
// -race in the CI gate) and checks the ring-buffer accounting: capacity is
// respected, and held + dropped equals the number of events emitted.
func TestTracerConcurrent(t *testing.T) {
	const capEvents = 256
	tr := NewTracer(capEvents)
	var wg sync.WaitGroup
	const goroutines, each = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Task(TaskEvent{Kind: KindUpdate, K: int32(i), J: int32(i + 1),
					Worker: int32(worker), StartNs: time.Now().UnixNano(), DurNs: 100})
				tr.Phase(PhaseFactor, 50)
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Len(); got != capEvents {
		t.Fatalf("ring holds %d events, want full capacity %d", got, capEvents)
	}
	total := int64(goroutines * each * 2)
	if got := tr.Dropped() + int64(tr.Len()); got != total {
		t.Fatalf("held+dropped = %d, want %d", got, total)
	}
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].StartNs < evs[i-1].StartNs {
			t.Fatalf("events not chronological at %d", i)
		}
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	tr := NewTracer(64)
	tr.Phase(PhaseOrdering, int64(2*time.Millisecond))
	tr.Phase(PhaseSymbolic, int64(time.Millisecond))
	tr.Task(TaskEvent{Kind: KindFactor, K: 0, Worker: 1, StartNs: time.Now().UnixNano(), DurNs: 5000})
	tr.Task(TaskEvent{Kind: KindUpdate, K: 0, J: 2, Worker: 2, StartNs: time.Now().UnixNano(), DurNs: 7000})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
		if ev.Ph != "X" {
			t.Errorf("event %q: ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Dur <= 0 || ev.TS < 0 {
			t.Errorf("event %q: bad ts/dur %v/%v", ev.Name, ev.TS, ev.Dur)
		}
	}
	for _, want := range []string{"ordering", "symbolic", "F(0)", "U(0,2)"} {
		if !names[want] {
			t.Errorf("missing event %q in %v", want, names)
		}
	}
}

// TestDisabledPathZeroAlloc is the overhead guard of the disabled
// instrumentation path: every nil-receiver call must allocate nothing (and
// in particular never touch a clock). This is what keeps the library path
// within the <2% overhead budget when no tracer/observer is attached.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var tr *Tracer
	var c *Counter
	var g *Gauge
	var h *Histogram
	ev := TaskEvent{Kind: KindFactor, K: 1, StartNs: 1, DurNs: 1}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Task(ev)
		tr.Phase(PhaseFactor, 10)
		tr.Emit(Event{})
		_ = tr.Since()
		c.Inc()
		c.Add(3)
		g.Set(1)
		h.Observe(0.5)
		h.ObserveNs(100)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates: %v allocs/op, want 0", allocs)
	}
}

// TestEnabledTaskZeroAlloc pins the enabled hot path too: recording a task
// event into a warm ring allocates nothing.
func TestEnabledTaskZeroAlloc(t *testing.T) {
	tr := NewTracer(64)
	ev := TaskEvent{Kind: KindUpdate, K: 1, J: 2, StartNs: 1, DurNs: 1}
	allocs := testing.AllocsPerRun(1000, func() { tr.Task(ev) })
	if allocs != 0 {
		t.Fatalf("enabled Task allocates: %v allocs/op, want 0", allocs)
	}
}
