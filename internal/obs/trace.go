package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Event is one completed span on a recorder's timeline. Task events carry
// Kind/K/J and synthesize their name ("F(12)", "U(3,7)") at dump time so
// the hot recording path never formats strings; phase and request spans
// carry a literal Name.
type Event struct {
	Name    string // literal span name; "" for task events
	Cat     string // Chrome trace category ("phase", "factor", "update", "server", ...)
	Kind    byte   // KindFactor/KindUpdate for task events, 0 otherwise
	K, J    int32
	TID     int32 // timeline lane: executor worker or server worker
	StartNs int64 // offset from the tracer's t0, nanoseconds
	DurNs   int64
}

// label renders the span name.
func (e *Event) label() string {
	switch {
	case e.Name != "":
		return e.Name
	case e.Kind == KindFactor:
		return fmt.Sprintf("F(%d)", e.K)
	case e.Kind == KindUpdate:
		return fmt.Sprintf("U(%d,%d)", e.K, e.J)
	}
	return "span"
}

// Tracer records completed spans into a fixed-capacity ring buffer: when
// the ring is full the oldest events are overwritten and counted as
// dropped, so a long-running server can keep a tracer attached permanently
// and /debug/trace always returns the most recent window. Recording is one
// short mutex-protected copy into the ring — no allocation, no I/O — cheap
// enough to leave on around every Factor/Update task. A nil *Tracer is a
// valid disabled tracer: every method nil-checks and returns.
//
// Tracer implements Sink, so it can be handed directly to the core
// pipeline.
type Tracer struct {
	t0  time.Time
	t0n int64 // t0.UnixNano(), for converting absolute task stamps

	mu      sync.Mutex
	ring    []Event
	n       int64 // events ever emitted; ring slot is n % cap
	dropped int64
}

// DefaultTraceEvents is the default ring capacity: enough for the full task
// DAG of the paper's large matrices (tens of thousands of tasks) without
// being a memory hazard when attached to a server for days.
const DefaultTraceEvents = 1 << 16

// NewTracer returns a tracer whose timeline starts now, with the given ring
// capacity (DefaultTraceEvents when <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	now := time.Now()
	return &Tracer{t0: now, t0n: now.UnixNano(), ring: make([]Event, 0, capacity)}
}

// Since returns nanoseconds elapsed on the tracer's timeline (0 on nil).
func (t *Tracer) Since() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.t0).Nanoseconds()
}

// Emit records one span. No-op on nil.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.n%int64(cap(t.ring))] = ev
		t.dropped++
	}
	t.n++
	t.mu.Unlock()
}

// Span records a completed span with a literal name.
func (t *Tracer) Span(name, cat string, tid int, startNs, durNs int64) {
	t.Emit(Event{Name: name, Cat: cat, TID: int32(tid), StartNs: startNs, DurNs: durNs})
}

// Phase implements Sink: the phase is assumed to have just ended, so its
// span is placed at [now-ns, now] on the timeline.
func (t *Tracer) Phase(name string, ns int64) {
	if t == nil {
		return
	}
	end := t.Since()
	start := end - ns
	if start < 0 {
		start = 0
	}
	t.Emit(Event{Name: name, Cat: "phase", StartNs: start, DurNs: ns})
}

// Task implements Sink: the absolute task stamp is converted onto this
// tracer's timeline.
func (t *Tracer) Task(ev TaskEvent) {
	if t == nil {
		return
	}
	cat := "factor"
	if ev.Kind == KindUpdate {
		cat = "update"
	}
	t.Emit(Event{
		Cat: cat, Kind: ev.Kind, K: ev.K, J: ev.J, TID: ev.Worker,
		StartNs: ev.StartNs - t.t0n, DurNs: ev.DurNs,
	})
}

// Events returns a chronological snapshot of the recorded window.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Event(nil), t.ring...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].StartNs < out[j].StartNs })
	return out
}

// Len returns the number of events currently held (<= capacity).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Dropped returns how many events were overwritten after the ring filled.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteChromeTrace dumps the recorded window as a Chrome trace_event JSON
// document (the "JSON object format": {"traceEvents": [...]}) loadable in
// chrome://tracing or https://ui.perfetto.dev. Every span is a complete
// "X" event; timestamps and durations are microseconds per the format;
// lanes (tid) are the executor/server workers.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range t.Events() {
		sep := ","
		if i == 0 {
			sep = ""
		}
		// Durations are floored at 1µs so zero-length spans stay visible.
		us := func(ns int64) float64 { return float64(ns) / 1e3 }
		dur := us(ev.DurNs)
		if dur < 1 {
			dur = 1
		}
		if _, err := fmt.Fprintf(bw,
			"%s{\"name\":%q,\"cat\":%q,\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"k\":%d,\"j\":%d}}\n",
			sep, ev.label(), ev.Cat, us(ev.StartNs), dur, ev.TID, ev.K, ev.J); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
