package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// CounterVec is a family of counters sharing one metric name, keyed by a
// single label (e.g. per-tenant request counts rendered as
// name{tenant="a"} 12). Series are created on first use, in first-seen order
// for stable /metrics output. Nil-safe: With on a nil vec returns a nil
// (no-op) Counter.
type CounterVec struct {
	label    string
	mu       sync.RWMutex
	vals     map[string]*Counter
	order    []string
	limit    int    // max distinct series; 0 = unbounded
	overflow string // label value absorbing series past the limit
}

// Bound caps the vec at limit distinct label values; further values share
// one spillover series under the overflow label value. Call once, before
// traffic. Returns the vec for chaining at registration.
func (v *CounterVec) Bound(limit int, overflow string) *CounterVec {
	if v != nil {
		v.limit, v.overflow = limit, overflow
	}
	return v
}

// With returns the counter for the given label value, creating it on first
// use (or the spillover series when the vec is bounded and full).
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.vals[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.vals[value]; c != nil {
		return c
	}
	if v.limit > 0 && len(v.vals) >= v.limit && value != v.overflow {
		value = v.overflow
		if c = v.vals[value]; c != nil {
			return c
		}
	}
	c = &Counter{}
	v.vals[value] = c
	v.order = append(v.order, value)
	return c
}

// Values snapshots the current series as label value -> count.
func (v *CounterVec) Values() map[string]int64 {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.vals))
	for k, c := range v.vals {
		out[k] = c.Value()
	}
	return out
}

// GaugeVec is a family of gauges keyed by a single label value; the labeled
// analogue of Gauge, with the same creation and bounding rules as
// CounterVec.
type GaugeVec struct {
	label    string
	mu       sync.RWMutex
	vals     map[string]*Gauge
	order    []string
	limit    int
	overflow string
}

// Bound caps the vec at limit distinct label values (see CounterVec.Bound).
func (v *GaugeVec) Bound(limit int, overflow string) *GaugeVec {
	if v != nil {
		v.limit, v.overflow = limit, overflow
	}
	return v
}

// With returns the gauge for the given label value, creating it on first
// use.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	g := v.vals[value]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.vals[value]; g != nil {
		return g
	}
	if v.limit > 0 && len(v.vals) >= v.limit && value != v.overflow {
		value = v.overflow
		if g = v.vals[value]; g != nil {
			return g
		}
	}
	g = &Gauge{}
	v.vals[value] = g
	v.order = append(v.order, value)
	return g
}

// Values snapshots the current series as label value -> value.
func (v *GaugeVec) Values() map[string]int64 {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.vals))
	for k, g := range v.vals {
		out[k] = g.Value()
	}
	return out
}

// CounterVec registers and returns a labeled counter family. The label is
// the single label name every series carries.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{label: label, vals: make(map[string]*Counter)}
	r.register(&metric{name: name, help: help, kind: kindCounterVec, cv: v})
	return v
}

// GaugeVec registers and returns a labeled gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	v := &GaugeVec{label: label, vals: make(map[string]*Gauge)}
	r.register(&metric{name: name, help: help, kind: kindGaugeVec, gv: v})
	return v
}

// escapeLabel quotes a label value per the Prometheus text format:
// backslash, double quote and newline are escaped.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// writeCounterVec renders every series of a counter vec in first-seen order.
func writeCounterVec(w io.Writer, name string, v *CounterVec) error {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, lv := range v.order {
		if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", name, v.label, escapeLabel(lv), v.vals[lv].Value()); err != nil {
			return err
		}
	}
	return nil
}

// writeGaugeVec renders every series of a gauge vec in first-seen order.
func writeGaugeVec(w io.Writer, name string, v *GaugeVec) error {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, lv := range v.order {
		if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", name, v.label, escapeLabel(lv), v.vals[lv].Value()); err != nil {
			return err
		}
	}
	return nil
}
