package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestVecPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("t_tenant_requests_total", "per-tenant requests", "tenant")
	gv := r.GaugeVec("t_tenant_queue_depth", "per-tenant queue depth", "tenant")

	cv.With("acme").Add(3)
	cv.With("globex").Inc()
	cv.With("acme").Inc() // existing series, same counter
	gv.With("acme").Set(2)
	gv.With(`we"ird\nt`).Set(1)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		"# TYPE t_tenant_requests_total counter",
		`t_tenant_requests_total{tenant="acme"} 4`,
		`t_tenant_requests_total{tenant="globex"} 1`,
		"# TYPE t_tenant_queue_depth gauge",
		`t_tenant_queue_depth{tenant="acme"} 2`,
		`t_tenant_queue_depth{tenant="we\"ird\\nt"} 1`,
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("missing %q in output:\n%s", want, got)
		}
	}
	// First-seen order is stable.
	if strings.Index(got, `tenant="acme"`) > strings.Index(got, `tenant="globex"`) {
		t.Errorf("series not in first-seen order:\n%s", got)
	}
	if v := cv.Values(); v["acme"] != 4 || v["globex"] != 1 {
		t.Errorf("Values snapshot wrong: %v", v)
	}
}

func TestVecBoundSpillover(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("t_bounded_total", "bounded family", "tenant").Bound(2, "~other")
	cv.With("a").Inc()
	cv.With("b").Inc()
	cv.With("c").Inc() // past the limit: lands on ~other
	cv.With("d").Add(2)
	cv.With("a").Inc() // existing series unaffected by the bound
	v := cv.Values()
	if v["a"] != 2 || v["b"] != 1 || v["~other"] != 3 {
		t.Fatalf("spillover accounting wrong: %v", v)
	}
	if _, leaked := v["c"]; leaked {
		t.Fatal("series past the bound must not be created")
	}
}

func TestVecNilSafe(t *testing.T) {
	var cv *CounterVec
	var gv *GaugeVec
	cv.With("x").Inc()
	gv.With("x").Set(1)
	if cv.Values() != nil || gv.Values() != nil {
		t.Fatal("nil vec snapshots must be nil")
	}
	cv.Bound(1, "o")
	gv.Bound(1, "o")
}

func TestVecConcurrent(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("t_conc_total", "concurrent", "tenant").Bound(8, "~other")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				cv.With(fmt.Sprintf("t%d", i%12)).Inc()
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for _, n := range cv.Values() {
		total += n
	}
	if total != 8*200 {
		t.Fatalf("lost increments: %d", total)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}
