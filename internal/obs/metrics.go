package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods are
// no-ops on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 for Prometheus semantics; not enforced).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. All methods are no-ops on nil.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefTimeBuckets is the default latency bucket ladder in seconds: 100µs to
// 10s, roughly ×2.5 per step — wide enough to hold both a cached analyze
// (microseconds) and a cold large-matrix factorization (seconds).
var DefTimeBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram with Prometheus cumulative
// semantics: counts[i] tallies observations <= bounds[i], counts[len]
// tallies the +Inf overflow. Observation is lock-free (one atomic add plus
// one CAS loop for the sum) and allocation-free. Nil-safe.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// NewHistogram returns a histogram over the given ascending upper bounds
// (DefTimeBuckets when none are given).
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefTimeBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value (typically seconds).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: the ladders here are ~16 buckets, and a branchy binary
	// search buys nothing at that size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveNs records a duration given in nanoseconds, converted to seconds.
func (h *Histogram) ObserveNs(ns int64) { h.Observe(float64(ns) / 1e9) }

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// metricKind discriminates the registry entry types.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
	kindCounterVec
	kindGaugeVec
)

// metric is one named registry entry.
type metric struct {
	name, help string
	kind       metricKind
	c          *Counter
	g          *Gauge
	h          *Histogram
	fn         func() float64
	cv         *CounterVec
	gv         *GaugeVec
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Registration order is preserved in the output, which
// keeps /metrics diffs (and the golden-format test) stable.
type Registry struct {
	mu     sync.Mutex
	ms     []*metric
	byName map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byName: make(map[string]*metric)} }

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name))
	}
	r.byName[m.name] = m
	r.ms = append(r.ms, m)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, c: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, g: g})
	return g
}

// Histogram registers and returns a new histogram (DefTimeBuckets when no
// bounds are given).
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	h := NewHistogram(bounds...)
	r.register(&metric{name: name, help: help, kind: kindHistogram, h: h})
	return h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotonic quantities owned elsewhere (e.g. a cache's hit
// count).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindCounterFunc, fn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time —
// for instantaneous quantities owned elsewhere (queue depth, live handles).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGaugeFunc, fn: fn})
}

// fmtFloat renders a sample value the way Prometheus clients do: integers
// without a decimal point, everything else in shortest-form %g.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := append([]*metric(nil), r.ms...)
	r.mu.Unlock()
	for _, m := range ms {
		typ := "counter"
		switch m.kind {
		case kindGauge, kindGaugeFunc, kindGaugeVec:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, typ); err != nil {
			return err
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.g.Value())
		case kindCounterFunc, kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, fmtFloat(m.fn()))
		case kindCounterVec:
			err = writeCounterVec(w, m.name, m.cv)
		case kindGaugeVec:
			err = writeGaugeVec(w, m.name, m.gv)
		case kindHistogram:
			cum := int64(0)
			for i, b := range m.h.bounds {
				cum += m.h.counts[i].Load()
				if _, err = fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", m.name, fmtFloat(b), cum); err != nil {
					return err
				}
			}
			// _count is taken from the same bucket walk as the +Inf sample
			// so the two always agree, even mid-scrape under concurrent
			// observations.
			cum += m.h.counts[len(m.h.bounds)].Load()
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
				m.name, cum, m.name, fmtFloat(m.h.Sum()), m.name, cum); err != nil {
				return err
			}
			continue
		}
		if err != nil {
			return err
		}
	}
	return nil
}
