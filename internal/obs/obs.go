// Package obs is the repo's zero-dependency observability layer: atomic
// counters, gauges and fixed-bucket latency histograms collected in a
// Registry that renders Prometheus text format, plus a lock-cheap
// ring-buffer trace recorder that dumps Chrome trace_event JSON timelines.
//
// The paper's whole argument is a performance argument — PT/ET efficiency,
// per-phase cost splits, bounded asynchronous overlap — and this package is
// what makes those quantities visible on the host implementation: the
// analyze and numeric phases report their timings through the Sink
// interface, the task-DAG executor emits one span per Factor(k)/Update(k,j)
// with the worker that ran it (so a run renders as a pipeline-overlap
// timeline in chrome://tracing or Perfetto), and the solver service exports
// its counters and request-phase histograms over /metrics.
//
// Everything here is safe on a nil receiver: a nil *Tracer, *Counter,
// *Gauge or *Histogram turns every method into a pointer check and return,
// which is what keeps the disabled path (the default for the library) at
// effectively zero cost — no allocation, no atomics, no time syscalls.
package obs

// Phase names used across the pipeline. Emitters and dashboards agree on
// these strings; they are part of the root package's Observer contract.
const (
	PhaseOrdering  = "ordering"  // max transversal + fill-reducing ordering
	PhaseSymbolic  = "symbolic"  // George–Ng static symbolic factorization
	PhasePartition = "partition" // 2D L/U supernode partition
	PhaseFactor    = "factor"    // numeric factorization
	PhaseSolve     = "solve"     // triangular solves

	// Sub-phases of the partition stage and the incremental analyze path.
	// Emitted in addition to (not instead of) the phases above; sinks that
	// only know the coarse five keep working by ignoring unknown names.
	PhaseDetect = "partition-detect" // strict supernode detection
	PhaseChoose = "partition-choose" // amalgamation + blocking choice
	PhaseBuild  = "partition-build"  // per-block structure build
	PhasePatch  = "patch"            // incremental symbolic re-analysis
)

// Task kinds of TaskEvent.Kind, matching the paper's notation.
const (
	KindFactor byte = 'F' // Factor(k)
	KindUpdate byte = 'U' // Update(k, j)
)

// TaskEvent is one completed Factor/Update task of the numeric
// factorization. StartNs is an absolute wall-clock stamp (UnixNano) so
// events from one factorization can be placed on any recorder's timeline.
type TaskEvent struct {
	Kind    byte  // KindFactor or KindUpdate
	K, J    int32 // elimination step and target block (J == K for Factor)
	Worker  int32 // executor worker that ran the task
	StartNs int64 // time.Now().UnixNano() at task start
	DurNs   int64 // task duration in nanoseconds
}

// Sink receives pipeline instrumentation. Implementations must be safe for
// concurrent use (task events arrive from every executor worker) and cheap:
// the emitting code sits on the factorization hot path. A nil Sink disables
// instrumentation entirely — emitters nil-check before doing any timing
// work.
type Sink interface {
	// Phase reports a just-finished pipeline phase and its duration.
	Phase(name string, ns int64)
	// Task reports a completed Factor/Update task.
	Task(ev TaskEvent)
}

// MultiSink fans events out to several sinks.
type MultiSink []Sink

// Phase implements Sink.
func (m MultiSink) Phase(name string, ns int64) {
	for _, s := range m {
		s.Phase(name, ns)
	}
}

// Task implements Sink.
func (m MultiSink) Task(ev TaskEvent) {
	for _, s := range m {
		s.Task(ev)
	}
}
