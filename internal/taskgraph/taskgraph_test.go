package taskgraph

import (
	"strings"
	"testing"

	"sstar/internal/sparse"
	"sstar/internal/supernode"
	"sstar/internal/symbolic"
)

func buildGraph(t *testing.T, a *sparse.CSR, bsize, amal int) (*Graph, *supernode.Partition) {
	t.Helper()
	st := symbolic.Factorize(sparse.PatternOf(a))
	p := supernode.NewPartition(st, supernode.Options{MaxBlock: bsize, Amalgamate: amal})
	return Build(p), p
}

func TestBuildDenseGraphShape(t *testing.T) {
	g, p := buildGraph(t, sparse.Dense(30, 1), 10, 0)
	if p.NB != 3 {
		t.Fatalf("NB = %d, want 3", p.NB)
	}
	// Dense: N factors + N(N-1)/2 updates.
	wantTasks := 3 + 3
	if len(g.Tasks) != wantTasks {
		t.Fatalf("tasks = %d, want %d", len(g.Tasks), wantTasks)
	}
	// Factor(1) must depend on Update(0,1), Factor(2) on Update(1,2).
	f1 := g.Tasks[g.Factor(1)]
	if len(f1.Pred) != 1 || g.Tasks[f1.Pred[0]].Kind != KindUpdate {
		t.Fatalf("Factor(1) preds wrong: %+v", f1.Pred)
	}
}

func TestGraphDependenceProperties(t *testing.T) {
	a := sparse.Grid2D(8, 8, false, sparse.GenOptions{Seed: 1})
	g, p := buildGraph(t, a, 6, 4)
	if len(g.Tasks) < p.NB {
		t.Fatal("missing tasks")
	}
	for _, id := range g.TopoOrder() {
		task := g.Tasks[id]
		switch task.Kind {
		case KindUpdate:
			// Every update has its factor as a predecessor.
			found := false
			for _, pr := range task.Pred {
				pt := g.Tasks[pr]
				if pt.Kind == KindFactor && pt.K == task.K {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s lacks Factor(%d) predecessor", task.Label(), task.K)
			}
		case KindFactor:
			// Factor(j) must come after the last Update(*, j).
			for _, uid := range g.Updates(task.K) {
				ut := g.Tasks[uid]
				hasPath := false
				for _, s := range ut.Succ {
					st := g.Tasks[s]
					if st.Kind == KindFactor && st.K == task.K {
						hasPath = true
					}
					if st.Kind == KindUpdate && st.J == task.K {
						hasPath = true // chain continues toward Factor
					}
				}
				if !hasPath {
					t.Fatalf("%s has no forward path toward Factor(%d)", ut.Label(), task.K)
				}
			}
		}
	}
}

func TestUpdateChainSerialized(t *testing.T) {
	g, _ := buildGraph(t, sparse.Dense(40, 2), 10, 0)
	for j := 0; j < g.NB; j++ {
		chain := g.Updates(j)
		for i := 0; i+1 < len(chain); i++ {
			cur, next := g.Tasks[chain[i]], g.Tasks[chain[i+1]]
			if cur.K >= next.K {
				t.Fatalf("chain for column %d not ascending", j)
			}
			linked := false
			for _, s := range cur.Succ {
				if s == chain[i+1] {
					linked = true
				}
			}
			if !linked {
				t.Fatalf("chain edge %s -> %s missing", cur.Label(), next.Label())
			}
		}
	}
}

func TestTopoOrderValid(t *testing.T) {
	a := sparse.Circuit(120, 3, sparse.GenOptions{Seed: 2, StructuralDrop: 0.1})
	g, _ := buildGraph(t, a, 8, 4)
	order := g.TopoOrder()
	pos := make([]int, len(g.Tasks))
	for i, id := range order {
		pos[id] = i
	}
	for _, task := range g.Tasks {
		for _, s := range task.Succ {
			if pos[s] <= pos[task.ID] {
				t.Fatalf("topological violation %s -> %s", task.Label(), g.Tasks[s].Label())
			}
		}
	}
}

func TestCriticalPathDenseChain(t *testing.T) {
	g, _ := buildGraph(t, sparse.Dense(30, 3), 10, 0)
	w := make([]float64, len(g.Tasks))
	for i := range w {
		w[i] = 1
	}
	cp, blevel := g.CriticalPath(w)
	// Dense 3-block chain: F0 -> U(0,1) -> F1 -> U(1,2) -> F2 = 5 tasks.
	if cp != 5 {
		t.Fatalf("critical path %v, want 5", cp)
	}
	if blevel[g.Factor(0)] != 5 {
		t.Fatalf("blevel(F0) = %v, want 5", blevel[g.Factor(0)])
	}
	if blevel[g.Factor(g.NB-1)] != 1 {
		t.Fatalf("blevel(last factor) = %v, want 1", blevel[g.Factor(g.NB-1)])
	}
}

func TestWeightsPositive(t *testing.T) {
	a := sparse.Grid2D(7, 7, false, sparse.GenOptions{Seed: 3})
	g, _ := buildGraph(t, a, 5, 3)
	w := g.Weights(1e6, 1e6, 1e8, 1e7, 1e-6)
	for i, task := range g.Tasks {
		if w[i] <= 0 {
			t.Fatalf("task %s has non-positive weight", task.Label())
		}
	}
	if g.TotalWork(w) <= 0 {
		t.Fatal("total work must be positive")
	}
}

func TestCommBytesSet(t *testing.T) {
	g, _ := buildGraph(t, sparse.Dense(20, 4), 10, 0)
	for _, task := range g.Tasks {
		if task.Kind == KindFactor && task.CommBytes <= 0 {
			t.Fatalf("%s has no broadcast payload", task.Label())
		}
	}
}

func TestRenderGantt(t *testing.T) {
	g, _ := buildGraph(t, sparse.Dense(20, 5), 10, 0)
	entries := []GanttEntry{
		{Task: g.Factor(0), Proc: 0, Start: 0, End: 2},
		{Task: g.Updates(1)[0], Proc: 1, Start: 3, End: 5},
	}
	out := RenderGantt(g, entries, 2)
	if !strings.Contains(out, "F(0)") || !strings.Contains(out, "U(0,1)") {
		t.Fatalf("gantt rendering missing labels:\n%s", out)
	}
	if !strings.HasPrefix(out, "P0:") {
		t.Fatalf("gantt rendering malformed:\n%s", out)
	}
}
