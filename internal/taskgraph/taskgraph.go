// Package taskgraph builds the static directed acyclic task graphs that model
// the irregular parallelism of partitioned sparse LU (paper Section 4): tasks
// Factor(k) and Update(k, j) with the four dependence properties plus the
// Update-chain serialization property, task weights derived from flop counts,
// critical-path analytics and Gantt charts (Figs. 9 and 11).
package taskgraph

import (
	"fmt"
	"sort"

	"sstar/internal/supernode"
)

// Kind distinguishes the two task types.
type Kind uint8

const (
	// KindFactor is task Factor(k): factorize block column k.
	KindFactor Kind = iota
	// KindUpdate is task Update(k, j): apply panel k to block column j.
	KindUpdate
)

// Task is one node of the LU task DAG.
type Task struct {
	ID   int
	Kind Kind
	K    int // elimination step (block index)
	J    int // target column block (Update only; == K for Factor)

	// Flop-class weights, converted to seconds by a machine model.
	B1, B2, B3, Sw int64
	// CommBytes is the payload this task's outgoing cross-processor edges
	// carry (for Factor(k): the pivot sequence plus block column k).
	CommBytes int

	Succ []int // successor task ids
	Pred []int // predecessor task ids
}

// Label renders the task name in the paper's notation.
func (t *Task) Label() string {
	if t.Kind == KindFactor {
		return fmt.Sprintf("F(%d)", t.K)
	}
	return fmt.Sprintf("U(%d,%d)", t.K, t.J)
}

// Graph is the full task DAG of one factorization.
type Graph struct {
	Tasks   []*Task
	NB      int
	factor  []int   // factor[k] = task id of Factor(k)
	updates [][]int // updates[j] = ids of Update(*, j), ascending in k
}

// Factor returns the task id of Factor(k).
func (g *Graph) Factor(k int) int { return g.factor[k] }

// Updates returns the ids of the Update(*, j) chain for column block j in
// ascending source order.
func (g *Graph) Updates(j int) []int { return g.updates[j] }

// Build constructs the task graph of a partition, with weights derived from
// the block structure (flops of each panel factorization and block update).
func Build(p *supernode.Partition) *Graph {
	g := &Graph{NB: p.NB, factor: make([]int, p.NB), updates: make([][]int, p.NB)}
	addTask := func(t *Task) int {
		t.ID = len(g.Tasks)
		g.Tasks = append(g.Tasks, t)
		return t.ID
	}
	// Per-block L row counts drive the weights.
	nL := make([]int64, p.NB)
	for k := 0; k < p.NB; k++ {
		nL[k] = int64(len(p.LRows[k]))
	}
	for k := 0; k < p.NB; k++ {
		s := int64(p.Size(k))
		// Factor(k): per panel column, a scale plus a rank-1 update of the
		// panel to the right over all rows below.
		var b1, b2 int64
		for mc := int64(0); mc < s; mc++ {
			below := (s - mc - 1) + nL[k]
			b1 += below
			b2 += 2 * below * (s - mc - 1)
		}
		ft := &Task{Kind: KindFactor, K: k, J: k, B1: b1, B2: b2}
		// Broadcast payload: pivot sequence + diagonal block + L blocks.
		ft.CommBytes = 8 * int(s+s*s+nL[k]*s)
		g.factor[k] = addTask(ft)
	}
	for k := 0; k < p.NB; k++ {
		s := int64(p.Size(k))
		for _, jb := range p.UBlocks[k] {
			j := int(jb)
			nc := int64(countInBlock(p.UCols[k], p.Start[j], p.Start[j+1]))
			ut := &Task{
				Kind: KindUpdate,
				K:    k,
				J:    j,
				B3:   nc*s*(s-1) + 2*nL[k]*nc*s,
				Sw:   s * nc, // delayed row interchanges, elementwise
			}
			id := addTask(ut)
			g.updates[j] = append(g.updates[j], id)
		}
	}
	// Edges. updates[j] is already ascending in k because the outer loop
	// runs k in order.
	edge := func(from, to int) {
		g.Tasks[from].Succ = append(g.Tasks[from].Succ, to)
		g.Tasks[to].Pred = append(g.Tasks[to].Pred, from)
	}
	for j := 0; j < p.NB; j++ {
		chain := g.updates[j]
		for i, id := range chain {
			t := g.Tasks[id]
			// Property 3: Factor(k) -> Update(k, j).
			edge(g.factor[t.K], id)
			// Property 5: Update(k, j) -> Update(k', j), consecutive.
			if i+1 < len(chain) {
				edge(id, chain[i+1])
			}
		}
		// Property 4: last Update(k', j) -> Factor(j).
		if len(chain) > 0 {
			edge(chain[len(chain)-1], g.factor[j])
		}
	}
	return g
}

func countInBlock(cols []int32, lo, hi int) int {
	n := 0
	for _, c := range cols {
		if int(c) >= lo && int(c) < hi {
			n++
		}
	}
	return n
}

// Weights converts each task's flop classes to seconds given per-class rates
// (flops/sec for b1/b2/b3, elements/sec for swaps) plus a fixed per-task
// overhead.
func (g *Graph) Weights(rate1, rate2, rate3, swapRate, overhead float64) []float64 {
	w := make([]float64, len(g.Tasks))
	for i, t := range g.Tasks {
		w[i] = overhead +
			float64(t.B1)/rate1 +
			float64(t.B2)/rate2 +
			float64(t.B3)/rate3 +
			float64(t.Sw)/swapRate
	}
	return w
}

// CriticalPath returns the length of the longest weighted path (task weights
// w, zero communication) and each task's bottom level (longest path from the
// task to an exit, inclusive).
func (g *Graph) CriticalPath(w []float64) (float64, []float64) {
	blevel := make([]float64, len(g.Tasks))
	order := g.TopoOrder()
	cp := 0.0
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		best := 0.0
		for _, s := range g.Tasks[id].Succ {
			if blevel[s] > best {
				best = blevel[s]
			}
		}
		blevel[id] = w[id] + best
		if blevel[id] > cp {
			cp = blevel[id]
		}
	}
	return cp, blevel
}

// InDegrees returns each task's predecessor count — the initial dependence
// counters of a task-DAG executor (a task is ready when its counter reaches
// zero). int32 so executors can decrement the returned slice atomically.
func (g *Graph) InDegrees() []int32 {
	deg := make([]int32, len(g.Tasks))
	for i, t := range g.Tasks {
		deg[i] = int32(len(t.Pred))
	}
	return deg
}

// TopoOrder returns a topological order of the task ids.
func (g *Graph) TopoOrder() []int {
	n := len(g.Tasks)
	indeg := make([]int, n)
	for _, t := range g.Tasks {
		for _, s := range t.Succ {
			indeg[s]++
		}
	}
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	sort.Ints(queue)
	order := make([]int, 0, n)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, s := range g.Tasks[id].Succ {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		panic("taskgraph: dependence cycle")
	}
	return order
}

// TotalWork returns the sum of all task weights.
func (g *Graph) TotalWork(w []float64) float64 {
	s := 0.0
	for _, v := range w {
		s += v
	}
	return s
}

// GanttEntry is one scheduled execution interval, for rendering Fig. 11-style
// charts.
type GanttEntry struct {
	Task       int
	Proc       int
	Start, End float64
}

// RenderGantt formats a Gantt chart as text, one line per processor.
func RenderGantt(g *Graph, entries []GanttEntry, procs int) string {
	perProc := make([][]GanttEntry, procs)
	for _, e := range entries {
		perProc[e.Proc] = append(perProc[e.Proc], e)
	}
	out := ""
	for p := 0; p < procs; p++ {
		sort.Slice(perProc[p], func(i, j int) bool { return perProc[p][i].Start < perProc[p][j].Start })
		out += fmt.Sprintf("P%d:", p)
		for _, e := range perProc[p] {
			out += fmt.Sprintf(" [%.1f %s %.1f]", e.Start, g.Tasks[e.Task].Label(), e.End)
		}
		out += "\n"
	}
	return out
}
