// Package supernode implements the 2D L/U supernode partitioning layer of S*
// (paper Section 3.2/3.3): detection of supernodes in the static symbolic
// structure, relaxed amalgamation controlled by the factor r, splitting into
// cache-sized column blocks, and the packed dense block storage that Theorem 1
// justifies (U submatrices consist of structurally dense subcolumns; L
// submatrices of dense subrows).
package supernode

import (
	"time"

	"sstar/internal/symbolic"
)

// Options controls partitioning.
type Options struct {
	// MaxBlock is the largest allowed block (supernode panel) size; the
	// paper uses 25 on both T3D and T3E ("if the block size is too large,
	// the available parallelism will be reduced"). MaxBlock <= 0 selects
	// structure-adaptive blocking: panel widths and (unless pinned) the
	// amalgamation factor are chosen per matrix by the cost model of
	// adaptive.go instead of one global constant.
	MaxBlock int
	// Amalgamate is the relaxed-amalgamation factor r: merging two
	// adjacent supernodes is allowed when it introduces at most r explicit
	// zeros per column of the merged supernode. The paper reports r in 4..6
	// as best. With a fixed MaxBlock, r = 0 disables amalgamation; under
	// adaptive blocking (MaxBlock <= 0), r = 0 lets the cost model choose
	// r too, while r > 0 pins it.
	Amalgamate int
	// Workers bounds the goroutines used inside partitioning — supernode
	// detection, the adaptive candidate sweep and the per-block structure
	// builds. <= 1 runs sequentially; the partition is identical at any
	// worker count (every parallel stage writes index-owned slots and the
	// candidate winner is picked by a deterministic lowest-index rule).
	Workers int
}

// DefaultOptions selects structure-adaptive blocking: the panel widths and
// amalgamation factor are chosen per matrix at partition time. The paper's
// fixed experimental setup (BSIZE 25, r 4) remains available by setting the
// fields explicitly.
func DefaultOptions() Options { return Options{} }

// Partition is the 2D L/U supernode partition of an n-by-n static structure:
// the same block boundaries cut both the columns and the rows, so the matrix
// becomes an NB-by-NB grid of submatrices.
type Partition struct {
	N       int
	NB      int
	Start   []int // Start[b] = first column (== row) of block b; Start[NB] = N
	BlockOf []int // column/row -> owning block

	// UCols[b] lists the global columns >= Start[b+1] in which the rows of
	// block b hold U entries (the union of the block's static row
	// structures — identical across rows for strict supernodes, a few
	// explicit zeros after amalgamation). Sorted.
	UCols [][]int32
	// LRows[b] lists the global rows >= Start[b+1] holding L entries in the
	// columns of block b (union of the block's static column structures).
	// Sorted.
	LRows [][]int32

	// UBlocks[b] / LBlocks[b] are the block-granularity images of UCols /
	// LRows: the column blocks j > b with U_bj nonzero and the row blocks
	// i > b with L_ib nonzero. Sorted.
	UBlocks [][]int32
	LBlocks [][]int32

	// Choice records how the blocking was selected (fixed options or the
	// adaptive cost model), so analyses can report and cache the decision.
	Choice Choice

	// Times is the partition-phase cost split, recorded at construction.
	// Purely observational: two partitions are structurally equal iff every
	// other field is equal, regardless of Times.
	Times Times
}

// Times splits the partition build into its stages, in nanoseconds: strict
// supernode detection, the blocking choice (amalgamation and split planning,
// including the adaptive candidate sweep), and the structure build.
type Times struct {
	DetectNs int64
	ChooseNs int64
	BuildNs  int64
}

// Choice describes the blocking a partition was built with. For a fixed
// partition it echoes the options; for an adaptive one it reports what the
// cost model picked.
type Choice struct {
	// Adaptive is true when the cost model chose the blocking.
	Adaptive bool
	// MaxBlock is the widest panel of the partition (the MaxBlock option
	// for fixed blocking, the widest chosen panel for adaptive).
	MaxBlock int
	// Amalgamate is the relaxed-amalgamation factor used.
	Amalgamate int
	// ModelCost is the cost model's predicted factorization cost of the
	// chosen blocking, in flop-equivalents (0 for fixed blocking).
	ModelCost float64
}

// Size returns the number of columns of block b.
func (p *Partition) Size(b int) int { return p.Start[b+1] - p.Start[b] }

// EliminationForest returns the supernodal elimination forest of the
// partition: parent[k] is the block containing the first row below block k
// with an L entry in block k's columns (-1 for roots). Disjoint subtrees can
// be factored concurrently, so the forest's height over its node count is a
// cheap proxy for the available tree parallelism.
func (p *Partition) EliminationForest() []int {
	parent := make([]int, p.NB)
	for k := 0; k < p.NB; k++ {
		parent[k] = -1
		if len(p.LBlocks[k]) > 0 {
			parent[k] = int(p.LBlocks[k][0])
		}
		if len(p.UBlocks[k]) > 0 {
			if u := int(p.UBlocks[k][0]); parent[k] == -1 || u < parent[k] {
				parent[k] = u
			}
		}
	}
	return parent
}

// FlopWeightedWidth returns the average panel width weighted by each panel's
// update-flop volume. Factorization work concentrates in the wide trailing
// supernodes, so this — not the plain average — is the effective dense-kernel
// operand size that determines cache behaviour.
func (p *Partition) FlopWeightedWidth() float64 {
	var wsum, fsum float64
	for k := 0; k < p.NB; k++ {
		s := float64(p.Size(k))
		fl := 2 * s * float64(len(p.LRows[k])) * float64(len(p.UCols[k]))
		if fl == 0 {
			fl = s * s * s // trailing block: dense panel factorization
		}
		wsum += fl * s
		fsum += fl
	}
	if fsum == 0 {
		return float64(p.N) / float64(p.NB)
	}
	return wsum / fsum
}

// NewPartition builds the 2D L/U partition from a static symbolic
// factorization: strict supernode detection, relaxed amalgamation, then
// splitting into panels of at most MaxBlock columns. MaxBlock <= 0 selects
// the structure-adaptive path (adaptive.go), which chooses the amalgamation
// factor and per-supernode panel widths from the symbolic structure — one
// entry point either way, so every caller gets the explicit-override
// semantics of Options for free.
func NewPartition(st *symbolic.Static, o Options) *Partition {
	if o.MaxBlock <= 0 {
		return newAdaptivePartition(st, o)
	}
	var tm Times
	t0 := time.Now()
	bounds := detectSupernodesWorkers(st, o.Workers)
	tm.DetectNs = time.Since(t0).Nanoseconds()
	t0 = time.Now()
	if o.Amalgamate > 0 {
		bounds = amalgamate(st, bounds, o.Amalgamate)
	}
	bounds = split(bounds, o.MaxBlock)
	tm.ChooseNs = time.Since(t0).Nanoseconds()
	t0 = time.Now()
	p := buildPartition(st, bounds, o.Workers)
	tm.BuildNs = time.Since(t0).Nanoseconds()
	p.Choice = Choice{MaxBlock: o.MaxBlock, Amalgamate: o.Amalgamate}
	p.Times = tm
	return p
}

// buildPartition materializes the partition for a final set of panel
// boundaries: per-panel U/L structures and their block-granularity images.
// Blocks are independent (each writes only its own slots and reads the
// frozen BlockOf map), so they spread across workers freely.
func buildPartition(st *symbolic.Static, bounds []int, workers int) *Partition {
	n := st.N
	nb := len(bounds) - 1
	p := &Partition{
		N:       n,
		NB:      nb,
		Start:   bounds,
		BlockOf: make([]int, n),
		UCols:   make([][]int32, nb),
		LRows:   make([][]int32, nb),
		UBlocks: make([][]int32, nb),
		LBlocks: make([][]int32, nb),
	}
	for b := 0; b < nb; b++ {
		for c := bounds[b]; c < bounds[b+1]; c++ {
			p.BlockOf[c] = b
		}
	}
	parallelFor(nb, workers, func(b int) {
		end := int32(bounds[b+1])
		var ucols, lrows []int32
		for c := bounds[b]; c < bounds[b+1]; c++ {
			for _, j := range st.URows[c] {
				if j >= end {
					ucols = append(ucols, j)
				}
			}
			for _, i := range st.LCols[c] {
				if i >= end {
					lrows = append(lrows, i)
				}
			}
		}
		p.UCols[b] = sortDedup(ucols)
		p.LRows[b] = sortDedup(lrows)
		p.UBlocks[b] = p.blocksOf(p.UCols[b])
		p.LBlocks[b] = p.blocksOf(p.LRows[b])
	})
	return p
}

func (p *Partition) blocksOf(idx []int32) []int32 {
	var out []int32
	for _, x := range idx {
		b := int32(p.BlockOf[x])
		if len(out) == 0 || out[len(out)-1] != b {
			out = append(out, b)
		}
	}
	return out
}

// detectSupernodes returns the strict supernode boundaries of the static
// structure: consecutive columns are fused while their U-row structures and
// L-column structures are exactly nested (the nonsymmetric T1-style
// definition on the George–Ng structure, which is what Theorem 1 needs).
func detectSupernodes(st *symbolic.Static) []int {
	n := st.N
	bounds := []int{0}
	for k := 1; k < n; k++ {
		if !(uNested(st.URows[k-1], st.URows[k]) && lNested(st.LCols[k-1], st.LCols[k], int32(k))) {
			bounds = append(bounds, k)
		}
	}
	bounds = append(bounds, n)
	return bounds
}

// uNested reports whether prev \ {its first column} == cur.
func uNested(prev, cur []int32) bool {
	if len(prev) != len(cur)+1 {
		return false
	}
	for i, c := range cur {
		if prev[i+1] != c {
			return false
		}
	}
	return true
}

// lNested reports whether prev == {k} ∪ cur, i.e. column k-1's L rows are
// row k plus exactly column k's L rows.
func lNested(prev, cur []int32, k int32) bool {
	if len(prev) != len(cur)+1 || prev[0] != k {
		return false
	}
	for i, r := range cur {
		if prev[i+1] != r {
			return false
		}
	}
	return true
}

// superStruct is the running structure of a (possibly amalgamated) supernode
// during the merge pass.
type superStruct struct {
	lo, hi int     // column range [lo, hi)
	ucols  []int32 // U columns >= hi
	lrows  []int32 // L rows >= hi
}

// amalgamate greedily merges adjacent supernodes while each merge introduces
// at most r explicit zeros per column of the merged supernode (the paper's
// O(n), permutation-free scheme of Section 3.3).
func amalgamate(st *symbolic.Static, bounds []int, r int) []int {
	ss := amalgamateStructs(st, bounds, r)
	out := make([]int, 0, len(ss)+1)
	out = append(out, 0)
	for _, s := range ss {
		out = append(out, s.hi)
	}
	return out
}

// strictStruct returns the trailing U/L structure of the strict supernode
// [lo, hi) in O(1): by the nestedness that defines strictness, every member
// column's structure past hi equals the last column's, so the supernode's
// trailing structure is URows[hi-1] minus its diagonal and LCols[hi-1]
// verbatim. The slices alias the static structure and must not be mutated
// (the merge pass only reads them; merged supernodes get fresh slices from
// mergeSorted).
func strictStruct(st *symbolic.Static, lo, hi int) superStruct {
	s := superStruct{lo: lo, hi: hi}
	if hi <= lo {
		return s // degenerate n == 0 range
	}
	if u := st.URows[hi-1]; len(u) > 1 {
		s.ucols = u[1:]
	}
	s.lrows = st.LCols[hi-1]
	return s
}

// buildStructs returns the structures of every strict supernode in bounds
// without merging (the r = 0 view the adaptive chooser also evaluates).
// bounds must be strict supernode boundaries of st.
func buildStructs(st *symbolic.Static, bounds []int) []superStruct {
	out := make([]superStruct, 0, len(bounds)-1)
	for s := 0; s+1 < len(bounds); s++ {
		out = append(out, strictStruct(st, bounds[s], bounds[s+1]))
	}
	return out
}

// amalgamateStructs runs the merge pass and returns the merged supernodes
// with their trailing structures (the raw material of both the bounds-only
// amalgamate above and the adaptive cost model). bounds must be strict
// supernode boundaries of st, which makes the initial structures O(1) each.
func amalgamateStructs(st *symbolic.Static, bounds []int, r int) []superStruct {
	ns := len(bounds) - 1
	if ns < 1 {
		return nil
	}
	if r <= 0 {
		return buildStructs(st, bounds)
	}
	cur := strictStruct(st, bounds[0], bounds[1])
	var out []superStruct
	for s := 1; s < ns; s++ {
		next := strictStruct(st, bounds[s], bounds[s+1])
		if merged, ok := tryMerge(cur, next, r); ok {
			cur = merged
			continue
		}
		out = append(out, cur)
		cur = next
	}
	return append(out, cur)
}

// tryMerge evaluates merging adjacent supernodes a (left) and b (right);
// on success it returns the merged structure.
func tryMerge(a, b superStruct, r int) (superStruct, bool) {
	wa := a.hi - a.lo // width of a
	wb := b.hi - b.lo
	// Split a's structure at b.hi: the part inside b's columns/rows becomes
	// the dense coupling rectangles; the rest is compared against b's.
	uaIn, uaOut := splitAt(a.ucols, int32(b.hi))
	laIn, laOut := splitAt(a.lrows, int32(b.hi))
	uOnlyA, uOnlyB := diffCounts(uaOut, b.ucols)
	lOnlyA, lOnlyB := diffCounts(laOut, b.lrows)
	extraZeros := wa*(wb-len(uaIn)) + // superdiagonal rectangle padding
		wa*(wb-len(laIn)) + // subdiagonal rectangle padding
		wb*uOnlyA + wa*uOnlyB + // U region rows extended to the union
		wb*lOnlyA + wa*lOnlyB // L region columns extended to the union
	if extraZeros > r*(wa+wb) {
		return superStruct{}, false
	}
	return superStruct{
		lo:    a.lo,
		hi:    b.hi,
		ucols: mergeSorted(uaOut, b.ucols),
		lrows: mergeSorted(laOut, b.lrows),
	}, true
}

// split cuts every supernode wider than maxBlock into panels of at most
// maxBlock columns.
func split(bounds []int, maxBlock int) []int {
	out := []int{0}
	for s := 0; s+1 < len(bounds); s++ {
		lo, hi := bounds[s], bounds[s+1]
		for c := lo + maxBlock; c < hi; c += maxBlock {
			out = append(out, c)
		}
		out = append(out, hi)
	}
	return out
}

// splitAt partitions sorted xs into (< at, >= at) halves... inverted: returns
// (inside, outside) where inside are the entries < at and outside >= at.
func splitAt(xs []int32, at int32) (inside, outside []int32) {
	for i, x := range xs {
		if x >= at {
			return xs[:i], xs[i:]
		}
	}
	return xs, nil
}

// diffCounts returns |a \ b| and |b \ a| for sorted slices.
func diffCounts(a, b []int32) (onlyA, onlyB int) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			onlyA++
			i++
		case a[i] > b[j]:
			onlyB++
			j++
		default:
			i++
			j++
		}
	}
	onlyA += len(a) - i
	onlyB += len(b) - j
	return
}

func mergeSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func sortDedup(xs []int32) []int32 {
	if len(xs) == 0 {
		return nil
	}
	sortInt32(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func sortInt32(x []int32) {
	// Insertion sort for short slices, else a simple quicksort.
	if len(x) < 24 {
		for i := 1; i < len(x); i++ {
			for j := i; j > 0 && x[j] < x[j-1]; j-- {
				x[j], x[j-1] = x[j-1], x[j]
			}
		}
		return
	}
	pivot := x[len(x)/2]
	lo, hi := 0, len(x)-1
	for lo <= hi {
		for x[lo] < pivot {
			lo++
		}
		for x[hi] > pivot {
			hi--
		}
		if lo <= hi {
			x[lo], x[hi] = x[hi], x[lo]
			lo++
			hi--
		}
	}
	sortInt32(x[:hi+1])
	sortInt32(x[lo:])
}
