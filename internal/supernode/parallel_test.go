package supernode

import (
	"reflect"
	"testing"

	"sstar/internal/sparse"
	"sstar/internal/symbolic"
)

// samePartition compares everything but Times (timings legitimately differ
// run to run).
func samePartition(a, b *Partition) bool {
	ac, bc := *a, *b
	ac.Times, bc.Times = Times{}, Times{}
	return reflect.DeepEqual(ac, bc)
}

// TestPartitionWorkerCountIndependent pins the determinism contract of the
// partitioning layer: fixed and adaptive blocking produce structurally
// identical partitions at every worker count, including with the parallel
// detection path forced on.
func TestPartitionWorkerCountIndependent(t *testing.T) {
	oldMin := partParMin
	partParMin = 2
	t.Cleanup(func() { partParMin = oldMin })
	mats := []*sparse.CSR{
		sparse.Grid2D(18, 18, false, sparse.GenOptions{Seed: 1}),
		sparse.Circuit(400, 4, sparse.GenOptions{Seed: 5}),
		sparse.RandomSparse(250, 3, 9),
	}
	optsList := []Options{
		{},                            // adaptive
		{MaxBlock: 25, Amalgamate: 4}, // paper's fixed setup
		{MaxBlock: 8},                 // fixed, no amalgamation
		{Amalgamate: 6},               // adaptive with pinned r
	}
	for mi, a := range mats {
		st := symbolic.Factorize(sparse.PatternOf(a))
		for oi, o := range optsList {
			want := NewPartition(st, o) // Workers == 0: sequential
			for _, w := range []int{1, 2, 4, 8} {
				o.Workers = w
				got := NewPartition(st, o)
				if !samePartition(got, want) {
					t.Fatalf("matrix %d opts %d: partition at %d workers differs from sequential", mi, oi, w)
				}
			}
		}
	}
}

func TestPartitionTimesPopulated(t *testing.T) {
	a := sparse.Grid2D(16, 16, false, sparse.GenOptions{Seed: 2})
	st := symbolic.Factorize(sparse.PatternOf(a))
	for _, o := range []Options{{}, {MaxBlock: 16, Amalgamate: 4}} {
		p := NewPartition(st, o)
		if p.Times.DetectNs <= 0 || p.Times.BuildNs <= 0 {
			t.Fatalf("partition times not recorded: %+v", p.Times)
		}
	}
}
