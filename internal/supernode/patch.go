package supernode

// Incremental partitioning for patched symbolic structures. When a static
// structure was produced by symbolic.Patch, most of its columns alias the
// base structure's slices unchanged. The partition of such a structure can
// reuse the base partition's per-block unions for every block whose column
// range matches a base block made of untouched columns — only blocks
// overlapping the recomputed cone pay the O(structure) union work.
//
// The blocking *decision* is not re-made: a patched analysis re-applies the
// base's settled Choice (the amalgamation factor and, for the fixed path,
// the panel cap), just as it reuses the base's ordering. The result is
// byte-identical to running the pinned-choice partition on the new structure
// from scratch (pinnedPartition below, which the tests compare against).

import (
	"time"

	"sstar/internal/symbolic"
)

// pinnedBounds computes panel boundaries for st with the blocking decisions
// of ch re-applied: the adaptive per-supernode split plan under ch's pinned
// amalgamation factor, or the fixed amalgamate+split pipeline. Returns the
// bounds and the Choice describing them.
func pinnedBounds(st *symbolic.Static, ch Choice, workers int, tm *Times) ([]int, Choice) {
	t0 := time.Now()
	strict := detectSupernodesWorkers(st, workers)
	tm.DetectNs = time.Since(t0).Nanoseconds()
	t0 = time.Now()
	var bounds []int
	if ch.Adaptive {
		supers := amalgamateStructs(st, strict, ch.Amalgamate)
		plan, cost := planSplits(supers)
		bounds = boundsOf(supers, plan)
		if len(bounds) == 1 {
			bounds = append(bounds, 0)
		}
		maxw := 0
		for i := 0; i+1 < len(bounds); i++ {
			if w := bounds[i+1] - bounds[i]; w > maxw {
				maxw = w
			}
		}
		ch = Choice{Adaptive: true, MaxBlock: maxw, Amalgamate: ch.Amalgamate, ModelCost: cost}
	} else {
		bounds = strict
		if ch.Amalgamate > 0 {
			bounds = amalgamate(st, bounds, ch.Amalgamate)
		}
		bounds = split(bounds, ch.MaxBlock)
		ch = Choice{MaxBlock: ch.MaxBlock, Amalgamate: ch.Amalgamate}
	}
	tm.ChooseNs = time.Since(t0).Nanoseconds()
	return bounds, ch
}

// pinnedPartition is the non-incremental reference: the partition of st under
// the re-applied blocking decisions of ch. PatchPartition is defined to equal
// it (modulo Times).
func pinnedPartition(st *symbolic.Static, ch Choice, workers int) *Partition {
	var tm Times
	bounds, choice := pinnedBounds(st, ch, workers, &tm)
	t0 := time.Now()
	p := buildPartition(st, bounds, workers)
	tm.BuildNs = time.Since(t0).Nanoseconds()
	p.Choice = choice
	p.Times = tm
	return p
}

// sameSlice reports whether two int32 slices share content by sharing
// storage: equal length and the same backing array start (or both empty).
func sameSlice(a, b []int32) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// PatchPartition builds the partition of newSt — a structure produced by
// symbolic.Patch over oldSt — reusing base (the partition of oldSt) wherever
// possible. The blocking choice is pinned to base.Choice, and the result is
// byte-identical to building that pinned-choice partition on newSt from
// scratch; only the per-block union work of blocks touching recomputed
// columns is actually re-run. The block-granularity images (UBlocks, LBlocks)
// are always recomputed: they index blocks, and one shifted boundary
// renumbers every later block.
func PatchPartition(newSt, oldSt *symbolic.Static, base *Partition, workers int) *Partition {
	var tm Times
	bounds, choice := pinnedBounds(newSt, base.Choice, workers, &tm)
	t0 := time.Now()

	n := newSt.N
	clean := make([]bool, n)
	for c := 0; c < n; c++ {
		clean[c] = sameSlice(newSt.URows[c], oldSt.URows[c]) && sameSlice(newSt.LCols[c], oldSt.LCols[c])
	}

	nb := len(bounds) - 1
	p := &Partition{
		N:       n,
		NB:      nb,
		Start:   bounds,
		BlockOf: make([]int, n),
		UCols:   make([][]int32, nb),
		LRows:   make([][]int32, nb),
		UBlocks: make([][]int32, nb),
		LBlocks: make([][]int32, nb),
	}
	for b := 0; b < nb; b++ {
		for c := bounds[b]; c < bounds[b+1]; c++ {
			p.BlockOf[c] = b
		}
	}
	parallelFor(nb, workers, func(b int) {
		lo, hi := bounds[b], bounds[b+1]
		if bb := baseBlockAt(base, lo, hi); bb >= 0 && allClean(clean, lo, hi) {
			// Same column range, every column untouched: the unions are the
			// base's verbatim.
			p.UCols[b] = base.UCols[bb]
			p.LRows[b] = base.LRows[bb]
		} else {
			end := int32(hi)
			var ucols, lrows []int32
			for c := lo; c < hi; c++ {
				for _, j := range newSt.URows[c] {
					if j >= end {
						ucols = append(ucols, j)
					}
				}
				for _, i := range newSt.LCols[c] {
					if i >= end {
						lrows = append(lrows, i)
					}
				}
			}
			p.UCols[b] = sortDedup(ucols)
			p.LRows[b] = sortDedup(lrows)
		}
		p.UBlocks[b] = p.blocksOf(p.UCols[b])
		p.LBlocks[b] = p.blocksOf(p.LRows[b])
	})
	tm.BuildNs = time.Since(t0).Nanoseconds()
	p.Choice = choice
	p.Times = tm
	return p
}

// baseBlockAt returns the base block with column range exactly [lo, hi), or
// -1 when the patched boundaries shifted over it.
func baseBlockAt(base *Partition, lo, hi int) int {
	if lo >= len(base.BlockOf) {
		return -1
	}
	bb := base.BlockOf[lo]
	if base.Start[bb] != lo || base.Start[bb+1] != hi {
		return -1
	}
	return bb
}

func allClean(clean []bool, lo, hi int) bool {
	for c := lo; c < hi; c++ {
		if !clean[c] {
			return false
		}
	}
	return true
}
