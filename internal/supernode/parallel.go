package supernode

import (
	"sync"
	"sync/atomic"

	"sstar/internal/symbolic"
)

// partParMin is the matrix order below which the parallel detection path is
// skipped outright (the per-column predicate is too cheap to farm out). A
// variable, not a constant, so tests can force the parallel path.
var partParMin = 2048

// parallelFor runs f(i) for every i in [0, n) on up to workers goroutines,
// pulling indices from a shared cursor. workers <= 1 runs inline. Every use
// in this package writes only index-i-owned slots, so scheduling order never
// changes the result.
func parallelFor(n, workers int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// detectSupernodesWorkers is detectSupernodes on up to workers goroutines.
// The boundary predicate at column k reads only columns k-1 and k, so the
// columns split into chunks freely; the boundary list is assembled in column
// order afterwards, making the result identical to the sequential scan.
func detectSupernodesWorkers(st *symbolic.Static, workers int) []int {
	n := st.N
	if workers <= 1 || n < partParMin {
		return detectSupernodes(st)
	}
	isBound := make([]bool, n)
	const chunk = 512
	nchunks := (n - 1 + chunk - 1) / chunk
	parallelFor(nchunks, workers, func(ci int) {
		lo := 1 + ci*chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for k := lo; k < hi; k++ {
			if !(uNested(st.URows[k-1], st.URows[k]) && lNested(st.LCols[k-1], st.LCols[k], int32(k))) {
				isBound[k] = true
			}
		}
	})
	bounds := []int{0}
	for k := 1; k < n; k++ {
		if isBound[k] {
			bounds = append(bounds, k)
		}
	}
	return append(bounds, n)
}
