package supernode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sstar/internal/sparse"
	"sstar/internal/symbolic"
)

// TestBestSplitRespectsPanelBound: for any supernode geometry, the chosen
// split never yields a panel wider than MaxAdaptivePanel (boundsOf gives the
// widest panel ceil(w/p) columns).
func TestBestSplitRespectsPanelBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := rng.Intn(500)
		l := rng.Intn(2000)
		u := rng.Intn(2000)
		p, cost := bestSplit(w, l, u)
		if p < 1 || cost <= 0 {
			return false
		}
		if w <= 0 {
			return p == 1
		}
		widest := (w + p - 1) / p
		return widest <= MaxAdaptivePanel
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptivePartitionInvariants: on random structures the adaptive
// partition must cover the matrix exactly, keep every panel within the hard
// width bound, and report a Choice consistent with what it built.
func TestAdaptivePartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(120)
		a := sparse.RandomSparse(n, 1+rng.Intn(4), seed)
		st := symbolic.Factorize(sparse.PatternOf(a))
		p := NewPartition(st, Options{})
		if !p.Choice.Adaptive {
			return false
		}
		if p.Start[0] != 0 || p.Start[p.NB] != n {
			return false
		}
		maxw := 0
		for b := 0; b < p.NB; b++ {
			w := p.Size(b)
			if w <= 0 || w > MaxAdaptivePanel {
				return false
			}
			if w > maxw {
				maxw = w
			}
			for c := p.Start[b]; c < p.Start[b+1]; c++ {
				if p.BlockOf[c] != b {
					return false
				}
			}
		}
		return p.Choice.MaxBlock == maxw && p.Choice.ModelCost > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptivePanelsRefineSupernodes: the adaptive panels only ever *split*
// the amalgamated supernodes, never straddle them — every supernode boundary
// of the same structure amalgamated at the chosen r (the unsplit partition,
// MaxBlock huge) must appear among the adaptive panel boundaries. Theorem 1
// density within panels follows from this containment.
func TestAdaptivePanelsRefineSupernodes(t *testing.T) {
	mats := []*sparse.CSR{
		sparse.Grid2D(12, 12, false, sparse.GenOptions{Seed: 31}),
		sparse.Circuit(300, 3, sparse.GenOptions{Seed: 32, StructuralDrop: 0.2}),
		sparse.RandomSparse(150, 3, 33),
	}
	for mi, a := range mats {
		st := symbolic.Factorize(sparse.PatternOf(a))
		p := NewPartition(st, Options{})
		coarse := NewPartition(st, Options{MaxBlock: a.N, Amalgamate: p.Choice.Amalgamate})
		fine := make(map[int]bool, p.NB+1)
		for b := 0; b <= p.NB; b++ {
			fine[p.Start[b]] = true
		}
		for b := 0; b <= coarse.NB; b++ {
			if !fine[coarse.Start[b]] {
				t.Fatalf("matrix %d: supernode boundary %d (r=%d) not an adaptive panel boundary",
					mi, coarse.Start[b], p.Choice.Amalgamate)
			}
		}
	}
}

// TestAdaptiveDeterministic: the chooser is a pure function of the
// structure — two partitions of the same Static agree exactly.
func TestAdaptiveDeterministic(t *testing.T) {
	a := sparse.Circuit(400, 3, sparse.GenOptions{Seed: 41, StructuralDrop: 0.15})
	st := symbolic.Factorize(sparse.PatternOf(a))
	p1 := NewPartition(st, Options{})
	p2 := NewPartition(st, Options{})
	if p1.Choice != p2.Choice {
		t.Fatalf("choices differ: %+v vs %+v", p1.Choice, p2.Choice)
	}
	if p1.NB != p2.NB {
		t.Fatalf("panel counts differ: %d vs %d", p1.NB, p2.NB)
	}
	for b := 0; b <= p1.NB; b++ {
		if p1.Start[b] != p2.Start[b] {
			t.Fatalf("boundary %d differs: %d vs %d", b, p1.Start[b], p2.Start[b])
		}
	}
}

// TestAdaptiveDenseGoesWide: on a dense matrix there is no padding penalty
// and plenty of flops, so the model must choose panels wider than the
// paper's fixed 25 — the whole point of making the width structure-aware.
func TestAdaptiveDenseGoesWide(t *testing.T) {
	st := symbolic.Factorize(sparse.PatternOf(sparse.Dense(300, 51)))
	p := NewPartition(st, Options{})
	if p.Choice.MaxBlock <= 25 {
		t.Fatalf("dense 300x300 chose max width %d, want > 25", p.Choice.MaxBlock)
	}
	if p.Choice.MaxBlock > MaxAdaptivePanel {
		t.Fatalf("max width %d above hard bound %d", p.Choice.MaxBlock, MaxAdaptivePanel)
	}
}

// TestAdaptivePinnedAmalgamate: a positive Options.Amalgamate under adaptive
// blocking pins r; the model only chooses panel widths.
func TestAdaptivePinnedAmalgamate(t *testing.T) {
	a := sparse.Grid2D(10, 10, false, sparse.GenOptions{Seed: 52})
	st := symbolic.Factorize(sparse.PatternOf(a))
	p := NewPartition(st, Options{Amalgamate: 3})
	if !p.Choice.Adaptive || p.Choice.Amalgamate != 3 {
		t.Fatalf("pinned r not honored: %+v", p.Choice)
	}
}

// TestFixedPathChoice: an explicit MaxBlock keeps the fixed path and reports
// a non-adaptive choice carrying the configured knobs.
func TestFixedPathChoice(t *testing.T) {
	a := sparse.Grid2D(8, 8, false, sparse.GenOptions{Seed: 53})
	st := symbolic.Factorize(sparse.PatternOf(a))
	p := NewPartition(st, Options{MaxBlock: 25, Amalgamate: 4})
	want := Choice{Adaptive: false, MaxBlock: 25, Amalgamate: 4, ModelCost: 0}
	if p.Choice != want {
		t.Fatalf("fixed choice %+v, want %+v", p.Choice, want)
	}
}
