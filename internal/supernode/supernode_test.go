package supernode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sstar/internal/sparse"
	"sstar/internal/symbolic"
)

func tridiag(n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		if i+1 < n {
			coo.Add(i, i+1, -1)
			coo.Add(i+1, i, -1)
		}
	}
	return coo.ToCSR()
}

func TestPartitionCoversMatrix(t *testing.T) {
	a := sparse.Grid2D(9, 9, false, sparse.GenOptions{Seed: 1})
	st := symbolic.Factorize(sparse.PatternOf(a))
	p := NewPartition(st, Options{MaxBlock: 8, Amalgamate: 4})
	if p.Start[0] != 0 || p.Start[p.NB] != a.N {
		t.Fatalf("partition bounds [%d,%d], want [0,%d]", p.Start[0], p.Start[p.NB], a.N)
	}
	for b := 0; b < p.NB; b++ {
		if p.Size(b) <= 0 || p.Size(b) > 8 {
			t.Fatalf("block %d size %d out of (0,8]", b, p.Size(b))
		}
		for c := p.Start[b]; c < p.Start[b+1]; c++ {
			if p.BlockOf[c] != b {
				t.Fatalf("BlockOf[%d] = %d, want %d", c, p.BlockOf[c], b)
			}
		}
	}
}

func TestPartitionDenseSingleSupernode(t *testing.T) {
	n := 30
	st := symbolic.Factorize(sparse.PatternOf(sparse.Dense(n, 1)))
	p := NewPartition(st, Options{MaxBlock: 12, Amalgamate: 0})
	// One strict supernode split into ceil(30/12) = 3 panels.
	if p.NB != 3 {
		t.Fatalf("NB = %d, want 3", p.NB)
	}
	if p.Size(0) != 12 || p.Size(1) != 12 || p.Size(2) != 6 {
		t.Fatalf("panel sizes %d,%d,%d", p.Size(0), p.Size(1), p.Size(2))
	}
	// Every off-diagonal block of a dense matrix is full.
	for b := 0; b < p.NB-1; b++ {
		if len(p.UCols[b]) != n-p.Start[b+1] {
			t.Fatalf("UCols[%d] has %d entries, want %d", b, len(p.UCols[b]), n-p.Start[b+1])
		}
		if len(p.LRows[b]) != n-p.Start[b+1] {
			t.Fatalf("LRows[%d] has %d entries, want %d", b, len(p.LRows[b]), n-p.Start[b+1])
		}
	}
}

func TestPartitionTridiagonalStrict(t *testing.T) {
	n := 12
	st := symbolic.Factorize(sparse.PatternOf(tridiag(n)))
	p := NewPartition(st, Options{MaxBlock: 25, Amalgamate: 0})
	// Tridiagonal static structure has no strict supernodes of width > 1
	// except possibly the trailing 2x2.
	if p.NB < n-1 {
		t.Fatalf("NB = %d, want >= %d singleton-ish blocks", p.NB, n-1)
	}
}

func TestAmalgamationMergesSmallSupernodes(t *testing.T) {
	n := 60
	st := symbolic.Factorize(sparse.PatternOf(tridiag(n)))
	strict := NewPartition(st, Options{MaxBlock: 25, Amalgamate: 0})
	relaxed := NewPartition(st, Options{MaxBlock: 25, Amalgamate: 4})
	if relaxed.NB >= strict.NB {
		t.Fatalf("amalgamation did not reduce block count: %d -> %d", strict.NB, relaxed.NB)
	}
}

func TestAmalgamationFactorMonotone(t *testing.T) {
	a := sparse.Grid2D(10, 10, false, sparse.GenOptions{Seed: 3})
	st := symbolic.Factorize(sparse.PatternOf(a))
	prev := -1
	for _, r := range []int{0, 2, 4, 8, 16} {
		p := NewPartition(st, Options{MaxBlock: 100, Amalgamate: r})
		if prev != -1 && p.NB > prev {
			t.Fatalf("block count increased from %d to %d as r grew to %d", prev, p.NB, r)
		}
		prev = p.NB
	}
}

// TestTheorem1DenseSubcolumns verifies the paper's Theorem 1 on strict
// partitions: every row of a supernode shares the same U structure beyond the
// supernode, so each nonzero U submatrix consists of structurally dense
// subcolumns. Corollary-style dual for L: each column of the supernode has
// the same L rows beyond the supernode (dense subrows).
func TestTheorem1DenseSubcolumns(t *testing.T) {
	mats := []*sparse.CSR{
		sparse.Grid2D(8, 8, false, sparse.GenOptions{Seed: 4}),
		sparse.Circuit(80, 3, sparse.GenOptions{Seed: 5, StructuralDrop: 0.2}),
		sparse.RandomSparse(60, 3, 6),
	}
	for mi, a := range mats {
		st := symbolic.Factorize(sparse.PatternOf(a))
		p := NewPartition(st, Options{MaxBlock: 6, Amalgamate: 0})
		for b := 0; b < p.NB; b++ {
			end := int32(p.Start[b+1])
			for c := p.Start[b]; c < p.Start[b+1]; c++ {
				// U: row c's structure beyond the block == UCols[b].
				var beyond []int32
				for _, j := range st.URows[c] {
					if j >= end {
						beyond = append(beyond, j)
					}
				}
				if !equalInt32(beyond, p.UCols[b]) {
					t.Fatalf("matrix %d block %d: row %d U structure %v != block UCols %v",
						mi, b, c, beyond, p.UCols[b])
				}
				// L: column c's rows beyond the block == LRows[b].
				beyond = nil
				for _, i := range st.LCols[c] {
					if i >= end {
						beyond = append(beyond, i)
					}
				}
				if !equalInt32(beyond, p.LRows[b]) {
					t.Fatalf("matrix %d block %d: column %d L structure %v != block LRows %v",
						mi, b, c, beyond, p.LRows[b])
				}
			}
		}
	}
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBlockMatrixReproducesValues(t *testing.T) {
	a := sparse.Circuit(70, 3, sparse.GenOptions{Seed: 7, StructuralDrop: 0.15})
	st := symbolic.Factorize(sparse.PatternOf(a))
	for _, r := range []int{0, 4} {
		p := NewPartition(st, Options{MaxBlock: 7, Amalgamate: r})
		bm := NewBlockMatrix(p, a)
		for i := 0; i < a.N; i++ {
			cols, vals := a.Row(i)
			for k, j := range cols {
				if got := bm.At(i, j); got != vals[k] {
					t.Fatalf("r=%d: At(%d,%d) = %v, want %v", r, i, j, got, vals[k])
				}
			}
		}
		// Positions outside the static structure read as zero.
		if p.NB > 1 && bm.At(0, a.N-1) != 0 && a.At(0, a.N-1) == 0 && st.URows[0][len(st.URows[0])-1] != int32(a.N-1) {
			t.Fatal("expected zero outside structure")
		}
	}
}

func TestBlockMatrixStorageAtLeastStatic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		a := sparse.RandomSparse(n, 1+rng.Intn(3), seed)
		st := symbolic.Factorize(sparse.PatternOf(a))
		p := NewPartition(st, Options{MaxBlock: 1 + rng.Intn(10), Amalgamate: rng.Intn(6)})
		bm := NewBlockMatrix(p, a)
		// Storage includes every static entry (plus padding zeros).
		return bm.StorageEntries() >= int64(st.NnzTotal())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockMatrixStrictStorageExact(t *testing.T) {
	// With strict supernodes and MaxBlock 1, the packed storage holds
	// exactly the static structure (every block slot is a static entry).
	a := sparse.RandomSparse(40, 2, 9)
	st := symbolic.Factorize(sparse.PatternOf(a))
	p := NewPartition(st, Options{MaxBlock: 1, Amalgamate: 0})
	bm := NewBlockMatrix(p, a)
	if bm.StorageEntries() != int64(st.NnzTotal()) {
		t.Fatalf("storage %d != static nnz %d", bm.StorageEntries(), st.NnzTotal())
	}
}

func TestBlockLookup(t *testing.T) {
	a := sparse.Grid2D(6, 6, false, sparse.GenOptions{Seed: 10})
	st := symbolic.Factorize(sparse.PatternOf(a))
	p := NewPartition(st, Options{MaxBlock: 5, Amalgamate: 2})
	bm := NewBlockMatrix(p, a)
	for b := 0; b < p.NB; b++ {
		if got := bm.BlockAt(b, b); got != bm.Diag[b] {
			t.Fatalf("BlockAt(%d,%d) != Diag", b, b)
		}
		for _, blk := range bm.LCol[b] {
			if got := bm.BlockAt(blk.I, b); got != blk {
				t.Fatalf("L lookup (%d,%d) failed", blk.I, b)
			}
			if blk.I <= b {
				t.Fatalf("L block (%d,%d) not strictly below diagonal", blk.I, b)
			}
		}
		for _, blk := range bm.URow[b] {
			if got := bm.BlockAt(b, blk.J); got != blk {
				t.Fatalf("U lookup (%d,%d) failed", b, blk.J)
			}
			if blk.J <= b {
				t.Fatalf("U block (%d,%d) not strictly right of diagonal", b, blk.J)
			}
		}
	}
	if bm.BlockAt(0, p.NB-1) == nil && len(bm.URow[0]) > 0 && bm.URow[0][len(bm.URow[0])-1].J == p.NB-1 {
		t.Fatal("lookup missed an existing far block")
	}
}

func TestBlockRowSlice(t *testing.T) {
	a := sparse.Grid2D(5, 5, false, sparse.GenOptions{Seed: 11})
	st := symbolic.Factorize(sparse.PatternOf(a))
	p := NewPartition(st, Options{MaxBlock: 4, Amalgamate: 2})
	bm := NewBlockMatrix(p, a)
	d := bm.Diag[0]
	if rs := d.RowSlice(0); len(rs) != d.NumCols() {
		t.Fatalf("RowSlice length %d, want %d", len(rs), d.NumCols())
	}
	if rs := d.RowSlice(p.N + 5); rs != nil {
		t.Fatal("RowSlice of absent row must be nil")
	}
	if d.ColPos(p.Start[1]) != -1 {
		t.Fatal("diagonal block must not contain next block's column")
	}
}

func TestFlopWeightedWidth(t *testing.T) {
	// Dense matrix, single supernode split into equal panels: weighted
	// width equals the panel width.
	st := symbolic.Factorize(sparse.PatternOf(sparse.Dense(40, 21)))
	p := NewPartition(st, Options{MaxBlock: 10, Amalgamate: 0})
	w := p.FlopWeightedWidth()
	if w < 9 || w > 10.01 {
		t.Fatalf("dense weighted width %v, want ~10", w)
	}
	// General case: bounded by the largest panel and at least 1.
	a := sparse.Grid2D(10, 10, false, sparse.GenOptions{Seed: 22})
	st2 := symbolic.Factorize(sparse.PatternOf(a))
	p2 := NewPartition(st2, Options{MaxBlock: 8, Amalgamate: 4})
	w2 := p2.FlopWeightedWidth()
	if w2 < 1 || w2 > 8.01 {
		t.Fatalf("weighted width %v out of [1, 8]", w2)
	}
	// Flop-weighted width should be at least the plain average (wide
	// panels carry more work).
	avg := float64(p2.N) / float64(p2.NB)
	if w2 < avg-1e-9 {
		t.Fatalf("weighted width %v below plain average %v", w2, avg)
	}
}

func TestEliminationForest(t *testing.T) {
	// Dense matrix: the forest is a chain 0 -> 1 -> ... -> NB-1.
	st := symbolic.Factorize(sparse.PatternOf(sparse.Dense(30, 23)))
	p := NewPartition(st, Options{MaxBlock: 10, Amalgamate: 0})
	parent := p.EliminationForest()
	for k := 0; k < p.NB-1; k++ {
		if parent[k] != k+1 {
			t.Fatalf("dense forest parent[%d] = %d, want %d", k, parent[k], k+1)
		}
	}
	if parent[p.NB-1] != -1 {
		t.Fatal("last block must be a root")
	}
	// General: parent strictly greater than the node, or -1.
	a := sparse.Grid2D(9, 9, false, sparse.GenOptions{Seed: 24})
	st2 := symbolic.Factorize(sparse.PatternOf(a))
	p2 := NewPartition(st2, Options{MaxBlock: 6, Amalgamate: 4})
	for k, pr := range p2.EliminationForest() {
		if pr != -1 && pr <= k {
			t.Fatalf("parent[%d] = %d not beyond the node", k, pr)
		}
	}
}

// TestCorollary1DenseColsGrowDownward: within a block column j, the dense
// subcolumn set of U blocks grows from top to bottom (paper Corollary 1):
// if subcolumn c is structurally dense in U_ij then it is dense in U_i'j for
// every i < i' < j with L_i'i' on the path. At block granularity with strict
// supernodes this reads: UCols(i) ∩ block j ⊆ UCols(i') ∩ block j whenever
// U_ij and U_i'j are both nonzero and L_i'i nonzero.
func TestCorollary1DenseColsGrowDownward(t *testing.T) {
	a := sparse.Grid2D(8, 8, false, sparse.GenOptions{Seed: 25})
	st := symbolic.Factorize(sparse.PatternOf(a))
	p := NewPartition(st, Options{MaxBlock: 5, Amalgamate: 0})
	inBlock := func(cols []int32, lo, hi int) map[int32]bool {
		m := map[int32]bool{}
		for _, c := range cols {
			if int(c) >= lo && int(c) < hi {
				m[c] = true
			}
		}
		return m
	}
	hasL := func(i2, i1 int) bool { // L block (i2, i1) nonzero?
		for _, b := range p.LBlocks[i1] {
			if int(b) == i2 {
				return true
			}
		}
		return false
	}
	for j := 0; j < p.NB; j++ {
		for i1 := 0; i1 < j; i1++ {
			s1 := inBlock(p.UCols[i1], p.Start[j], p.Start[j+1])
			if len(s1) == 0 {
				continue
			}
			for i2 := i1 + 1; i2 < j; i2++ {
				if !hasL(i2, i1) {
					continue
				}
				s2 := inBlock(p.UCols[i2], p.Start[j], p.Start[j+1])
				for c := range s1 {
					if !s2[c] {
						t.Fatalf("Corollary 1 violated: col %d dense in U(%d,%d) but not U(%d,%d)",
							c, i1, j, i2, j)
					}
				}
			}
		}
	}
}
