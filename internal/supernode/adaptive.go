// Structure-adaptive blocking: instead of one global (MaxBlock, Amalgamate)
// pair for every matrix, the partition's panel boundaries are chosen at
// analyze time from the actual symbolic structure by a small flop-versus-
// overhead cost model (in the spirit of the structure-aware irregular
// blocking literature; see DESIGN.md "Structure-adaptive blocking").
//
// The model captures the two opposing forces of supernode blocking:
//
//   - Wider panels run the BLAS-3 kernels closer to their asymptotic rate
//     (the packed GEMM engine amortizes packing and micro-tile overhead over
//     the panel width, which is the k extent of every update product), and
//     fewer panels mean fewer per-task costs (scatter maps, pivot
//     bookkeeping, DAG dispatch).
//   - Wider amalgamation pads the blocks with explicit zeros, which are real
//     flops, and wider panels serialize more of the elimination.
//
// Both effects are computable from the supernode structures alone — the
// trailing L-row and U-column counts that amalgamateStructs already derives —
// so the choice is a deterministic, pivot-independent function of the
// nonzero pattern. It therefore caches with the symbolic analysis: a cached
// Analysis carries its chosen blocking, and every matrix sharing the pattern
// reuses the same decision.
//
// Everything here only moves panel boundaries. The numeric kernels, the
// task DAG and the determinism guarantees are untouched: for a given
// partition the factors are bit-identical across every execution path, and
// the same holds for an adaptively chosen partition.
package supernode

import (
	"time"

	"sstar/internal/symbolic"
)

// Cost-model constants. The efficiency curve is calibrated against the
// tracked kernel benchmark (BENCH_kernels.json): the packed GEMM engine
// reaches roughly half its asymptotic rate around k ≈ 12 and ~90% by k ≈ 96.
// These are deliberately plain constants, not measured at runtime: the
// chooser must be a pure function of the structure so a cached analysis is
// reproducible across processes.
const (
	// MaxAdaptivePanel is the hard upper bound on any adaptively chosen
	// panel width. Panels wider than this stop gaining kernel efficiency
	// (the curve is flat past ~96) while still losing parallelism, and the
	// bound keeps workspace sizes predictable.
	MaxAdaptivePanel = 64

	// widthHalf is the panel width at which the dense kernels reach half
	// their asymptotic rate: eff(s) = s / (s + widthHalf). Least-squares
	// fit of the measured gemm GFLOP/s curve of BENCH_kernels.json
	// (6.1 at k=8 through 30.4 at k=128) gives h ≈ 38.
	widthHalf = 38.0

	// panelOverhead is the fixed per-panel cost in flop-equivalents: task
	// dispatch, pivot bookkeeping, and the per-panel pass over the block
	// column. Charged once per panel, it is what pushes thin supernodes
	// toward fewer, wider panels.
	panelOverhead = 2000.0

	// rcOverhead is the per-trailing-row/column cost of one panel in
	// flop-equivalents: gather/scatter index setup touches every trailing
	// L row and U column of the panel once per panel.
	rcOverhead = 12.0
)

// adaptiveAmalgCandidates are the relaxed-amalgamation factors the chooser
// evaluates when Options.Amalgamate does not pin one. The paper reports 4-6
// as the best fixed range; 0 and 2 cover structures that cannot afford
// padding, 8 covers very regular ones.
var adaptiveAmalgCandidates = []int{0, 2, 4, 6, 8}

// eff is the modeled kernel efficiency (fraction of asymptotic rate) at
// panel width s.
func eff(s float64) float64 { return s / (s + widthHalf) }

// superCost models the cost of factoring one supernode of width w with l
// trailing L rows and u trailing U columns, split into p panels: the dense
// flops of the (padded) supernode at the efficiency of its panel width,
// plus the per-panel overheads.
func superCost(w, l, u float64, p int) float64 {
	// Dense flop proxy for the supernode: the panel factorizations touch
	// the w-by-w diagonal triangle and the l trailing rows, the updates
	// stream the l-by-u trailing rectangle once per panel width. The split
	// leaves the flop total essentially unchanged (the w columns are
	// eliminated either way); what the split changes is the rate and the
	// overhead.
	flops := 2 * w * (l + w/2) * (u + w/2)
	s := w / float64(p)
	return flops/eff(s) + float64(p)*(panelOverhead+rcOverhead*(l+u))
}

// bestSplit returns the panel count p minimizing the modeled cost of a
// supernode of width w (trailing counts l, u), subject to every panel being
// at most MaxAdaptivePanel wide, along with that cost.
func bestSplit(w, l, u int) (p int, cost float64) {
	if w <= 0 {
		return 1, panelOverhead
	}
	pMin := (w + MaxAdaptivePanel - 1) / MaxAdaptivePanel
	if pMin < 1 {
		pMin = 1
	}
	p, cost = pMin, superCost(float64(w), float64(l), float64(u), pMin)
	// The cost in p is a sum of a decreasing (rate) and an increasing
	// (overhead) term — unimodal — so scanning up from pMin and stopping
	// after the first rise finds the minimum. The scan is bounded by w
	// (panels cannot be thinner than one column).
	for q := pMin + 1; q <= w; q++ {
		c := superCost(float64(w), float64(l), float64(u), q)
		if c < cost {
			p, cost = q, c
		} else if c > cost {
			break
		}
	}
	return p, cost
}

// planSplits chooses a panel count per supernode and returns the total
// modeled cost of the plan.
func planSplits(supers []superStruct) (splits []int, total float64) {
	splits = make([]int, len(supers))
	for i, s := range supers {
		p, c := bestSplit(s.hi-s.lo, len(s.lrows), len(s.ucols))
		splits[i] = p
		total += c
	}
	return splits, total
}

// boundsOf expands a per-supernode split plan into panel boundaries with
// balanced widths: a supernode of width w split p ways yields w%p panels of
// width ⌈w/p⌉ followed by panels of width ⌊w/p⌋.
func boundsOf(supers []superStruct, splits []int) []int {
	out := []int{0}
	for i, s := range supers {
		w := s.hi - s.lo
		p := splits[i]
		base, rem := w/p, w%p
		c := s.lo
		for j := 0; j < p; j++ {
			width := base
			if j < rem {
				width++
			}
			c += width
			out = append(out, c)
		}
	}
	return out
}

// newAdaptivePartition is the structure-adaptive partitioning path: detect
// strict supernodes once, evaluate the cost model over the amalgamation
// candidates (or the pinned Options.Amalgamate), pick the per-supernode
// panel widths of the winner, and build the partition on those irregular
// boundaries.
func newAdaptivePartition(st *symbolic.Static, o Options) *Partition {
	var tm Times
	t0 := time.Now()
	strict := detectSupernodesWorkers(st, o.Workers)
	tm.DetectNs = time.Since(t0).Nanoseconds()
	t0 = time.Now()
	cands := adaptiveAmalgCandidates
	if o.Amalgamate > 0 {
		cands = []int{o.Amalgamate}
	}
	// Evaluate the candidates concurrently — each runs its own merge pass and
	// split plan into an index-owned slot — then pick the winner by strictly
	// lower cost, lowest index on ties: exactly the order the sequential scan
	// would have preferred, so the choice is worker-count independent.
	type cand struct {
		supers []superStruct
		plan   []int
		cost   float64
	}
	results := make([]cand, len(cands))
	parallelFor(len(cands), o.Workers, func(i int) {
		supers := amalgamateStructs(st, strict, cands[i])
		plan, cost := planSplits(supers)
		results[i] = cand{supers: supers, plan: plan, cost: cost}
	})
	best := 0
	for i := 1; i < len(results); i++ {
		if results[i].cost < results[best].cost {
			best = i
		}
	}
	bestR, bestCost := cands[best], results[best].cost
	bounds := boundsOf(results[best].supers, results[best].plan)
	if len(bounds) == 1 {
		// n == 0: keep the fixed path's shape (one empty block) so the
		// two paths agree on degenerate input.
		bounds = append(bounds, 0)
	}
	tm.ChooseNs = time.Since(t0).Nanoseconds()
	t0 = time.Now()
	p := buildPartition(st, bounds, o.Workers)
	tm.BuildNs = time.Since(t0).Nanoseconds()
	maxw := 0
	for b := 0; b < p.NB; b++ {
		if s := p.Size(b); s > maxw {
			maxw = s
		}
	}
	p.Choice = Choice{Adaptive: true, MaxBlock: maxw, Amalgamate: bestR, ModelCost: bestCost}
	p.Times = tm
	return p
}
