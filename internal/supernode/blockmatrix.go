package supernode

import (
	"fmt"

	"sstar/internal/sparse"
)

// Block is one submatrix of the 2D L/U partition, stored as a packed dense
// matrix: Rows and Cols list the global indices present (sorted), Data holds
// the len(Rows) x len(Cols) values row-major.
//
// Layout by region:
//   - diagonal blocks (I == J): full dense (all rows and columns of the block);
//   - L blocks (I > J): packed structural rows (dense subrows, Theorem 1's
//     dual), all columns of block J;
//   - U blocks (I < J): all rows of block I, packed structural columns
//     (Theorem 1's dense subcolumns).
type Block struct {
	I, J int
	Rows []int32
	Cols []int32
	Data []float64
}

// NumRows returns the packed row count.
func (b *Block) NumRows() int { return len(b.Rows) }

// NumCols returns the packed column count.
func (b *Block) NumCols() int { return len(b.Cols) }

// Bytes returns the payload size of the block's values in bytes, used by the
// communication cost model.
func (b *Block) Bytes() int { return 8 * len(b.Data) }

// RowSlice returns the packed value slice of global row r, or nil when the
// block has no such row.
func (b *Block) RowSlice(r int) []float64 {
	p := searchInt32(b.Rows, int32(r))
	if p < 0 {
		return nil
	}
	nc := len(b.Cols)
	return b.Data[p*nc : (p+1)*nc]
}

// ColPos returns the packed position of global column c, or -1.
func (b *Block) ColPos(c int) int { return searchInt32(b.Cols, int32(c)) }

// RowPos returns the packed position of global row r, or -1.
func (b *Block) RowPos(r int) int { return searchInt32(b.Rows, int32(r)) }

// At returns the value at global (r, c), or 0 when the position is not
// stored.
func (b *Block) At(r, c int) float64 {
	i := b.RowPos(r)
	j := b.ColPos(c)
	if i < 0 || j < 0 {
		return 0
	}
	return b.Data[i*len(b.Cols)+j]
}

func searchInt32(xs []int32, v int32) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(xs) && xs[lo] == v {
		return lo
	}
	return -1
}

// BlockMatrix is the partitioned working matrix: diagonal blocks plus sparse
// collections of L and U off-diagonal blocks, all allocated up front from the
// static structure (nothing is ever reallocated during factorization — the
// whole point of the S* design).
type BlockMatrix struct {
	P    *Partition
	Diag []*Block
	// LCol[j] holds the L blocks of block column j, sorted by block row.
	LCol [][]*Block
	// URow[k] holds the U blocks of block row k, sorted by block column.
	URow [][]*Block
}

// NewBlockMatrix allocates every block of the static 2D structure and
// scatters the values of a into it. Positions of a outside the static
// structure cause a panic (they cannot exist if the same matrix produced the
// partition).
func NewBlockMatrix(p *Partition, a *sparse.CSR) *BlockMatrix {
	if a.N != p.N || a.M != p.N {
		panic("supernode: matrix/partition size mismatch")
	}
	bm := &BlockMatrix{
		P:    p,
		Diag: make([]*Block, p.NB),
		LCol: make([][]*Block, p.NB),
		URow: make([][]*Block, p.NB),
	}
	for b := 0; b < p.NB; b++ {
		s := p.Size(b)
		d := &Block{I: b, J: b, Rows: rangeInt32(p.Start[b], p.Start[b+1]), Cols: rangeInt32(p.Start[b], p.Start[b+1])}
		d.Data = make([]float64, s*s)
		bm.Diag[b] = d
		// L blocks of column b: group LRows[b] by row block.
		for lo := 0; lo < len(p.LRows[b]); {
			rb := p.BlockOf[p.LRows[b][lo]]
			hi := lo
			for hi < len(p.LRows[b]) && p.BlockOf[p.LRows[b][hi]] == rb {
				hi++
			}
			blk := &Block{
				I:    rb,
				J:    b,
				Rows: append([]int32(nil), p.LRows[b][lo:hi]...),
				Cols: d.Cols,
			}
			blk.Data = make([]float64, len(blk.Rows)*s)
			bm.LCol[b] = append(bm.LCol[b], blk)
			lo = hi
		}
		// U blocks of row b: group UCols[b] by column block.
		for lo := 0; lo < len(p.UCols[b]); {
			cb := p.BlockOf[p.UCols[b][lo]]
			hi := lo
			for hi < len(p.UCols[b]) && p.BlockOf[p.UCols[b][hi]] == cb {
				hi++
			}
			blk := &Block{
				I:    b,
				J:    cb,
				Rows: d.Rows,
				Cols: append([]int32(nil), p.UCols[b][lo:hi]...),
			}
			blk.Data = make([]float64, s*len(blk.Cols))
			bm.URow[b] = append(bm.URow[b], blk)
			lo = hi
		}
	}
	// Scatter the original values.
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			blk := bm.BlockAt(p.BlockOf[i], p.BlockOf[j])
			if blk == nil {
				panic(fmt.Sprintf("supernode: entry (%d,%d) outside static block structure", i, j))
			}
			r := blk.RowPos(i)
			c := blk.ColPos(j)
			if r < 0 || c < 0 {
				panic(fmt.Sprintf("supernode: entry (%d,%d) outside block (%d,%d) packing", i, j, blk.I, blk.J))
			}
			blk.Data[r*len(blk.Cols)+c] = vals[k]
		}
	}
	return bm
}

// BlockAt returns the block at block coordinates (i, j), or nil when the
// static structure has no such block.
func (bm *BlockMatrix) BlockAt(i, j int) *Block {
	switch {
	case i == j:
		return bm.Diag[i]
	case i > j:
		return searchBlocksByRow(bm.LCol[j], i)
	default:
		return searchBlocksByCol(bm.URow[i], j)
	}
}

func searchBlocksByRow(bs []*Block, i int) *Block {
	lo, hi := 0, len(bs)
	for lo < hi {
		mid := (lo + hi) / 2
		if bs[mid].I < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(bs) && bs[lo].I == i {
		return bs[lo]
	}
	return nil
}

func searchBlocksByCol(bs []*Block, j int) *Block {
	lo, hi := 0, len(bs)
	for lo < hi {
		mid := (lo + hi) / 2
		if bs[mid].J < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(bs) && bs[lo].J == j {
		return bs[lo]
	}
	return nil
}

// At returns the value at global (i, j), or 0 when the position is not
// stored.
func (bm *BlockMatrix) At(i, j int) float64 {
	blk := bm.BlockAt(bm.P.BlockOf[i], bm.P.BlockOf[j])
	if blk == nil {
		return 0
	}
	return blk.At(i, j)
}

// StorageEntries returns the total number of float64 slots allocated — the
// "factor entries" statistic of the block storage, including the explicit
// zeros that amalgamation and block packing introduce.
func (bm *BlockMatrix) StorageEntries() int64 {
	var total int64
	for _, d := range bm.Diag {
		total += int64(len(d.Data))
	}
	for _, col := range bm.LCol {
		for _, b := range col {
			total += int64(len(b.Data))
		}
	}
	for _, row := range bm.URow {
		for _, b := range row {
			total += int64(len(b.Data))
		}
	}
	return total
}

func rangeInt32(lo, hi int) []int32 {
	out := make([]int32, hi-lo)
	for i := range out {
		out[i] = int32(lo + i)
	}
	return out
}
