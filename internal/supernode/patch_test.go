package supernode

import (
	"math/rand"
	"testing"

	"sstar/internal/sparse"
	"sstar/internal/symbolic"
)

// genericStruct is the O(structure) reference for strictStruct: the union of
// the trailing structures of every member column.
func genericStruct(st *symbolic.Static, lo, hi int) superStruct {
	var uc, lr []int32
	for c := lo; c < hi; c++ {
		for _, j := range st.URows[c] {
			if int(j) >= hi {
				uc = append(uc, j)
			}
		}
		for _, i := range st.LCols[c] {
			if int(i) >= hi {
				lr = append(lr, i)
			}
		}
	}
	return superStruct{lo: lo, hi: hi, ucols: sortDedup(uc), lrows: sortDedup(lr)}
}

func eqI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStrictStructMatchesUnion pins the O(1) supernode-structure shortcut:
// on strict bounds it equals the explicit trailing union.
func TestStrictStructMatchesUnion(t *testing.T) {
	mats := []*sparse.CSR{
		sparse.Grid2D(16, 16, false, sparse.GenOptions{Seed: 2}),
		sparse.Circuit(350, 4, sparse.GenOptions{Seed: 7}),
		sparse.RandomSparse(220, 3, 13),
	}
	for mi, a := range mats {
		st := symbolic.Factorize(sparse.PatternOf(a))
		bounds := detectSupernodes(st)
		for s := 0; s+1 < len(bounds); s++ {
			lo, hi := bounds[s], bounds[s+1]
			fast, ref := strictStruct(st, lo, hi), genericStruct(st, lo, hi)
			if !eqI32(fast.ucols, ref.ucols) || !eqI32(fast.lrows, ref.lrows) {
				t.Fatalf("mat %d supernode [%d,%d): strictStruct != union", mi, lo, hi)
			}
		}
	}
}

// TestPatchPartitionMatchesPinned pins the incremental partition contract:
// PatchPartition over a patched static equals building the pinned-choice
// partition on the new structure from scratch, for fixed and adaptive bases
// and random near-miss perturbations.
func TestPatchPartitionMatchesPinned(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	optsList := []Options{
		{},                            // adaptive
		{MaxBlock: 16, Amalgamate: 4}, // fixed
		{Amalgamate: 6},               // adaptive, pinned r
	}
	for trial := 0; trial < 30; trial++ {
		n := 30 + rng.Intn(120)
		a := sparse.RandomSparse(n, 3, rng.Int63())
		pert := sparse.PerturbPattern(a, 1+rng.Intn(4), rng.Intn(3), rng.Int63())
		oldPat, newPat := sparse.PatternOf(a), sparse.PatternOf(pert)
		oldSt := symbolic.Factorize(oldPat)
		newSt, stats := symbolic.Patch(oldSt, oldPat, newPat, 1.0)
		if newSt == nil {
			continue // diagonal lost under identity ordering; nothing to test
		}
		for oi, o := range optsList {
			base := NewPartition(oldSt, o)
			got := PatchPartition(newSt, oldSt, base, 1)
			want := pinnedPartition(newSt, base.Choice, 1)
			if !samePartition(got, want) {
				t.Fatalf("trial %d opts %d: PatchPartition != pinnedPartition (recomputed %d/%d cols)",
					trial, oi, stats.Recomputed, n)
			}
		}
	}
}

// TestPatchPartitionIdenticalReusesBlocks: patching with an unchanged static
// (every column aliased) reuses every union slice of the base.
func TestPatchPartitionIdenticalReusesBlocks(t *testing.T) {
	a := sparse.Circuit(300, 4, sparse.GenOptions{Seed: 11})
	st := symbolic.Factorize(sparse.PatternOf(a))
	base := NewPartition(st, Options{})
	got := PatchPartition(st, st, base, 1)
	if !samePartition(got, pinnedPartition(st, base.Choice, 1)) {
		t.Fatal("self-patch partition differs from pinned rebuild")
	}
	for b := 0; b < got.NB; b++ {
		if !sameSlice(got.UCols[b], base.UCols[b]) || !sameSlice(got.LRows[b], base.LRows[b]) {
			t.Fatalf("block %d: unions were recomputed instead of reused", b)
		}
	}
}
