package wire

import (
	"bytes"
	"testing"
)

// FuzzReadFrame throws arbitrary byte streams at the frame decoder. The codec
// faces the raw network, so the invariants are absolute: never panic, never
// allocate past the caller's bound, and anything it does accept must survive
// a re-encode/re-decode round trip bit-for-bit.
func FuzzReadFrame(f *testing.F) {
	// Well-formed frames of a few shapes, plus classic trouble: empty input,
	// truncated header, a header announcing far more payload than follows,
	// and a length field past the limit.
	for _, payload := range [][]byte{nil, {0}, bytes.Repeat([]byte{0xA5}, 300)} {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, 0x2, payload); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0})
	f.Add([]byte{1, 0, 0, 1, 0, 0, 0, 0, 0, 42})
	f.Add([]byte{1, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})

	const limit = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data), limit)
		if err != nil {
			return
		}
		if len(payload) > limit {
			t.Fatalf("accepted %d-byte payload past the %d limit", len(payload), limit)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		typ2, payload2, err := ReadFrame(&buf, limit)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if typ2 != typ || !bytes.Equal(payload2, payload) {
			t.Fatal("accepted frame did not round-trip")
		}
	})
}
