package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

type payload struct {
	Name string
	Xs   []float64
	N    int
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []payload{
		{Name: "a", Xs: []float64{1, 2.5, -3}, N: 7},
		{Name: "", Xs: nil, N: 0},
		{Name: strings.Repeat("z", 1000), Xs: make([]float64, 512), N: -1},
	}
	for i, m := range msgs {
		if err := WriteGob(&buf, byte(i+1), m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		var got payload
		if err := ReadGob(&buf, byte(i+1), 0, &got); err != nil {
			t.Fatal(err)
		}
		if got.Name != want.Name || got.N != want.N || len(got.Xs) != len(want.Xs) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	// Clean end of stream is a plain EOF.
	if _, _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("end of stream: got %v, want io.EOF", err)
	}
}

func TestFrameTypeMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGob(&buf, 5, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := ReadGob(&buf, 6, 0, &got); err == nil {
		t.Fatal("expected frame type error")
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 1, []byte("hello, frame")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(buf.Bytes()), 4); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestTruncationAlwaysErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGob(&buf, 3, payload{Name: "trunc", Xs: []float64{1, 2, 3}, N: 9}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		var got payload
		err := ReadGob(bytes.NewReader(full[:cut]), 3, 0, &got)
		if err == nil || err == io.EOF {
			t.Fatalf("truncation at %d/%d not detected (err=%v)", cut, len(full), err)
		}
	}
}

func TestBitFlipAlwaysErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGob(&buf, 3, payload{Name: "crc", Xs: []float64{4, 5, 6}, N: 2}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for pos := 0; pos < len(full); pos++ {
		for bit := 0; bit < 8; bit++ {
			flipped := append([]byte(nil), full...)
			flipped[pos] ^= 1 << bit
			var got payload
			if err := ReadGob(bytes.NewReader(flipped), 3, 0, &got); err == nil {
				t.Fatalf("bit flip at byte %d bit %d slipped through", pos, bit)
			}
		}
	}
}

func TestDecodeGobGarbage(t *testing.T) {
	var got payload
	if err := DecodeGob([]byte{0xff, 0x01, 0x80, 0x80, 0x80}, &got); err == nil {
		t.Fatal("expected decode error on garbage")
	}
}
