// Package wire implements the length-prefixed binary frame codec shared by
// the factorization serializer (Save/Load) and the solver-service protocol.
//
// A frame is:
//
//	byte 0      frame type
//	bytes 1-4   payload length, big-endian uint32
//	bytes 5-8   CRC-32 (IEEE) of the payload, big-endian uint32
//	bytes 9-    payload (a gob-encoded message for every current user)
//
// The explicit length bounds the allocation a reader performs before any
// payload byte is trusted, and the checksum turns every corruption — a
// flipped bit no less than a truncated stream — into a clean error instead
// of silently wrong numbers. Decoding recovers internal gob panics, so a
// hostile or damaged stream can never take the process down.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// DefaultMaxPayload caps a frame payload when the caller does not supply a
// tighter bound (64 MiB holds the factors of every matrix in the bench
// suite with an order of magnitude to spare).
const DefaultMaxPayload = 64 << 20

const headerSize = 1 + 4 + 4

// ErrFrameTooLarge reports a frame whose declared payload exceeds the
// caller's bound — corrupt length bytes or an oversized message.
var ErrFrameTooLarge = errors.New("wire: frame exceeds payload limit")

// ErrChecksum reports a payload whose CRC-32 does not match its header.
var ErrChecksum = errors.New("wire: frame checksum mismatch")

// WriteFrame writes one frame with the given type byte and payload.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > DefaultMaxPayload {
		return ErrFrameTooLarge
	}
	var hdr [headerSize]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: write frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame, enforcing maxPayload (<= 0 selects
// DefaultMaxPayload) before allocating and verifying the checksum after
// reading. A clean EOF before the first header byte returns io.EOF so
// callers can distinguish "peer closed" from a torn frame.
func ReadFrame(r io.Reader, maxPayload int) (typ byte, payload []byte, err error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("wire: read frame type: %w", err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, fmt.Errorf("wire: read frame header: %w", noEOF(err))
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	if int64(n) > int64(maxPayload) {
		return 0, nil, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, n, maxPayload)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: read frame payload: %w", noEOF(err))
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(hdr[5:9]); got != want {
		return 0, nil, fmt.Errorf("%w: computed %08x, header %08x", ErrChecksum, got, want)
	}
	return hdr[0], payload, nil
}

// noEOF upgrades a bare EOF mid-frame to ErrUnexpectedEOF: the stream ended
// inside a frame, which is always corruption, never a clean close.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// WriteGob gob-encodes v and writes it as one frame of the given type.
func WriteGob(w io.Writer, typ byte, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	return WriteFrame(w, typ, buf.Bytes())
}

// ReadGob reads one frame, checks its type against want, and gob-decodes the
// payload into v.
func ReadGob(r io.Reader, want byte, maxPayload int, v any) error {
	typ, payload, err := ReadFrame(r, maxPayload)
	if err != nil {
		return err
	}
	if typ != want {
		return fmt.Errorf("wire: frame type 0x%02x, want 0x%02x", typ, want)
	}
	return DecodeGob(payload, v)
}

// DecodeGob gob-decodes payload into v, converting any internal decoder
// panic on malformed input into an error.
func DecodeGob(payload []byte, v any) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("wire: decode panic: %v", p)
		}
	}()
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}
