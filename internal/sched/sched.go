// Package sched provides the two 1D scheduling strategies the paper compares
// (Section 5.1): block-cyclic mapping for the compute-ahead (CA) code, and
// critical-path list scheduling of the task graph in the style of
// PYRROS/RAPID for the graph-scheduled code. Because the 1D codes use
// owner-compute column mapping, the scheduler assigns *column blocks* (task
// clusters) to processors and orders tasks within each processor by
// bottom-level priority.
package sched

import (
	"math"
	"sort"

	"sstar/internal/taskgraph"
)

// Schedule is the result of mapping a task graph onto P processors.
type Schedule struct {
	P int
	// Owner[j] = processor owning column block j (and so all its tasks).
	Owner []int
	// Order[p] = task ids assigned to processor p, in execution order.
	Order [][]int
	// Makespan is the scheduler's *estimate* of the parallel time; the
	// machine-level execution recomputes the real (virtual) time.
	Makespan float64
	// blevels, kept for diagnostics.
	BLevel []float64
}

// CyclicOwners returns the block-cyclic column mapping used by the CA code.
func CyclicOwners(nb, p int) []int {
	owner := make([]int, nb)
	for j := 0; j < nb; j++ {
		owner[j] = j % p
	}
	return owner
}

// ComputeAhead builds the schedule of the CA code (Fig. 10): cyclic column
// ownership, with each processor executing its tasks in the global
// k-major order, except that Update(k, k+1) and Factor(k+1) are promoted
// ahead of the remaining Update(k, *) tasks so that the next pivot panel is
// produced and broadcast as early as possible.
func ComputeAhead(g *taskgraph.Graph, p int) *Schedule {
	owner := CyclicOwners(g.NB, p)
	s := &Schedule{P: p, Owner: owner, Order: make([][]int, p)}
	assign := func(id int) {
		t := g.Tasks[id]
		pr := owner[t.J]
		s.Order[pr] = append(s.Order[pr], id)
	}
	assign(g.Factor(0))
	for k := 0; k < g.NB-1; k++ {
		// Compute-ahead: the (k, k+1) update and the next factor first.
		for _, id := range g.Updates(k + 1) {
			if g.Tasks[id].K == k {
				assign(id)
			}
		}
		assign(g.Factor(k + 1))
		for j := k + 2; j < g.NB; j++ {
			for _, id := range g.Updates(j) {
				if g.Tasks[id].K == k {
					assign(id)
				}
			}
		}
	}
	return s
}

// ListSchedule runs communication-aware critical-path list scheduling with
// the owner-compute clustering constraint: it decides (a) which processor
// owns each column block and (b) the task order on each processor. Task
// weights w are in seconds; commCost(bytes) converts a cross-processor edge
// payload to seconds.
func ListSchedule(g *taskgraph.Graph, p int, w []float64, commCost func(int) float64) *Schedule {
	n := len(g.Tasks)
	_, blevel := g.CriticalPath(w)
	s := &Schedule{P: p, Owner: make([]int, g.NB), Order: make([][]int, p), BLevel: blevel}
	for j := range s.Owner {
		s.Owner[j] = -1
	}
	// Event-driven ETF-style simulation: ready tasks are picked by highest
	// bottom level; each task runs on its column's owner, chosen on first
	// contact as the processor that can start it earliest (accounting for
	// the Factor broadcast payload of cross-processor predecessors).
	indeg := make([]int, n)
	for _, t := range g.Tasks {
		for _, succ := range t.Succ {
			indeg[succ]++
		}
	}
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	procAvail := make([]float64, p)
	finish := make([]float64, n)
	scheduled := 0
	for scheduled < n {
		// Pick the ready task with the highest bottom level.
		sort.Slice(ready, func(a, b int) bool {
			if blevel[ready[a]] != blevel[ready[b]] {
				return blevel[ready[a]] > blevel[ready[b]]
			}
			return ready[a] < ready[b]
		})
		id := ready[0]
		ready = ready[1:]
		t := g.Tasks[id]
		// Candidate processors: the owner if fixed, else all.
		var candidates []int
		if s.Owner[t.J] >= 0 {
			candidates = []int{s.Owner[t.J]}
		} else {
			candidates = make([]int, p)
			for i := range candidates {
				candidates[i] = i
			}
		}
		bestProc, bestStart := -1, 0.0
		for _, pr := range candidates {
			start := procAvail[pr]
			for _, pred := range t.Pred {
				pt := g.Tasks[pred]
				avail := finish[pred]
				if s.Owner[pt.J] != pr {
					avail += commCost(pt.CommBytes)
				}
				if avail > start {
					start = avail
				}
			}
			if bestProc == -1 || start < bestStart || (start == bestStart && procAvail[pr] < procAvail[bestProc]) {
				bestProc, bestStart = pr, start
			}
		}
		s.Owner[t.J] = bestProc
		s.Order[bestProc] = append(s.Order[bestProc], id)
		finish[id] = bestStart + w[id]
		procAvail[bestProc] = finish[id]
		if finish[id] > s.Makespan {
			s.Makespan = finish[id]
		}
		scheduled++
		for _, succ := range t.Succ {
			indeg[succ]--
			if indeg[succ] == 0 {
				ready = append(ready, succ)
			}
		}
	}
	return s
}

// LPTSchedule is the second graph-scheduling heuristic: column clusters are
// assigned to processors by longest-processing-time-first bin packing of the
// cluster work (optimizing balance), and each processor executes its tasks in
// global bottom-level priority order. It tends to beat pure ETF when
// communication is cheap relative to imbalance, and lose when locality along
// the critical path matters — ScheduleRAPID picks whichever simulates faster.
func LPTSchedule(g *taskgraph.Graph, p int, w []float64) *Schedule {
	_, blevel := g.CriticalPath(w)
	// Cluster work per column block.
	work := make([]float64, g.NB)
	for i, t := range g.Tasks {
		work[t.J] += w[i]
	}
	cols := make([]int, g.NB)
	for j := range cols {
		cols[j] = j
	}
	sort.Slice(cols, func(a, b int) bool {
		if work[cols[a]] != work[cols[b]] {
			return work[cols[a]] > work[cols[b]]
		}
		return cols[a] < cols[b]
	})
	owner := make([]int, g.NB)
	load := make([]float64, p)
	for _, j := range cols {
		best := 0
		for q := 1; q < p; q++ {
			if load[q] < load[best] {
				best = q
			}
		}
		owner[j] = best
		load[best] += work[j]
	}
	// Per-processor order: topological order broken by bottom level.
	s := &Schedule{P: p, Owner: owner, Order: make([][]int, p), BLevel: blevel}
	order := prioritizedTopoOrder(g, blevel)
	for _, id := range order {
		pr := owner[g.Tasks[id].J]
		s.Order[pr] = append(s.Order[pr], id)
	}
	return s
}

// prioritizedTopoOrder returns a topological order that releases the
// highest-bottom-level ready task first.
func prioritizedTopoOrder(g *taskgraph.Graph, blevel []float64) []int {
	n := len(g.Tasks)
	indeg := make([]int, n)
	for _, t := range g.Tasks {
		for _, s := range t.Succ {
			indeg[s]++
		}
	}
	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	out := make([]int, 0, n)
	for len(ready) > 0 {
		sort.Slice(ready, func(a, b int) bool {
			if blevel[ready[a]] != blevel[ready[b]] {
				return blevel[ready[a]] > blevel[ready[b]]
			}
			return ready[a] < ready[b]
		})
		id := ready[0]
		ready = ready[1:]
		out = append(out, id)
		for _, s := range g.Tasks[id].Succ {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return out
}

// Estimate plays a schedule with blocking semantics (each processor runs its
// task list in order; a task starts when its predecessors are done, plus the
// communication delay for cross-processor edges) and returns the makespan.
// This is the scheduler-side counterpart of the virtual-machine execution.
func Estimate(g *taskgraph.Graph, s *Schedule, w []float64, commCost func(int) float64) float64 {
	n := len(g.Tasks)
	finish := make([]float64, n)
	done := make([]bool, n)
	procOf := make([]int, n)
	for p := 0; p < s.P; p++ {
		for _, id := range s.Order[p] {
			procOf[id] = p
		}
	}
	idx := make([]int, s.P)
	avail := make([]float64, s.P)
	remaining := n
	for remaining > 0 {
		progress := false
		for p := 0; p < s.P; p++ {
			for idx[p] < len(s.Order[p]) {
				id := s.Order[p][idx[p]]
				start := avail[p]
				ok := true
				for _, pred := range g.Tasks[id].Pred {
					if !done[pred] {
						ok = false
						break
					}
					t := finish[pred]
					if procOf[pred] != p {
						t += commCost(g.Tasks[pred].CommBytes)
					}
					if t > start {
						start = t
					}
				}
				if !ok {
					break
				}
				finish[id] = start + w[id]
				avail[p] = finish[id]
				done[id] = true
				idx[p]++
				remaining--
				progress = true
			}
		}
		if !progress {
			// The schedule deadlocks under blocking execution; report it
			// as unusable.
			return math.Inf(1)
		}
	}
	max := 0.0
	for _, f := range finish {
		if f > max {
			max = f
		}
	}
	return max
}

// Best returns whichever of the candidate schedules simulates fastest.
func Best(g *taskgraph.Graph, w []float64, commCost func(int) float64, candidates ...*Schedule) *Schedule {
	var best *Schedule
	bestT := math.Inf(1)
	for _, s := range candidates {
		if t := Estimate(g, s, w, commCost); t < bestT {
			best, bestT = s, t
		}
	}
	best.Makespan = bestT
	return best
}

// LoadBalance returns the load balance factor work_total / (P * work_max)
// over the update work only (the paper's Fig. 18 metric), given each task's
// weight and an ownership assignment of tasks to processors.
func LoadBalance(g *taskgraph.Graph, w []float64, taskProc func(*taskgraph.Task) int, p int) float64 {
	per := make([]float64, p)
	total := 0.0
	for i, t := range g.Tasks {
		if t.Kind != taskgraph.KindUpdate {
			continue
		}
		per[taskProc(t)] += w[i]
		total += w[i]
	}
	max := 0.0
	for _, v := range per {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return 1
	}
	return total / (float64(p) * max)
}
