package sched

import (
	"testing"

	"sstar/internal/sparse"
	"sstar/internal/supernode"
	"sstar/internal/symbolic"
	"sstar/internal/taskgraph"
)

func buildGraph(t *testing.T, a *sparse.CSR, bsize, amal int) *taskgraph.Graph {
	t.Helper()
	st := symbolic.Factorize(sparse.PatternOf(a))
	p := supernode.NewPartition(st, supernode.Options{MaxBlock: bsize, Amalgamate: amal})
	return taskgraph.Build(p)
}

func unitWeights(g *taskgraph.Graph) []float64 {
	w := make([]float64, len(g.Tasks))
	for i := range w {
		w[i] = 1
	}
	return w
}

func TestCyclicOwners(t *testing.T) {
	o := CyclicOwners(7, 3)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if o[i] != want[i] {
			t.Fatalf("owner[%d] = %d, want %d", i, o[i], want[i])
		}
	}
}

func TestComputeAheadCoversAllTasks(t *testing.T) {
	a := sparse.Grid2D(8, 8, false, sparse.GenOptions{Seed: 1})
	g := buildGraph(t, a, 6, 4)
	s := ComputeAhead(g, 3)
	seen := make([]bool, len(g.Tasks))
	for p := 0; p < s.P; p++ {
		for _, id := range s.Order[p] {
			if seen[id] {
				t.Fatalf("task %s scheduled twice", g.Tasks[id].Label())
			}
			seen[id] = true
			// Owner-compute: the task must live on its column's owner.
			if s.Owner[g.Tasks[id].J] != p {
				t.Fatalf("task %s on proc %d, owner is %d", g.Tasks[id].Label(), p, s.Owner[g.Tasks[id].J])
			}
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("task %s never scheduled", g.Tasks[id].Label())
		}
	}
}

func TestComputeAheadPromotesNextFactor(t *testing.T) {
	g := buildGraph(t, sparse.Dense(40, 1), 10, 0)
	s := ComputeAhead(g, 2)
	// On the owner of column 1 (proc 1), Update(0,1) then Factor(1) must
	// precede Update(0,3).
	pos := map[string]int{}
	for _, id := range s.Order[1] {
		pos[g.Tasks[id].Label()] = len(pos)
	}
	if pos["F(1)"] > pos["U(0,3)"] {
		t.Fatalf("compute-ahead failed to promote F(1): order %v", pos)
	}
}

func TestListScheduleValid(t *testing.T) {
	a := sparse.Circuit(100, 3, sparse.GenOptions{Seed: 2, StructuralDrop: 0.1})
	g := buildGraph(t, a, 6, 4)
	w := unitWeights(g)
	s := ListSchedule(g, 4, w, func(bytes int) float64 { return 0.1 })
	// All tasks scheduled exactly once, owner-compute respected, and
	// per-processor order respects intra-processor dependencies.
	pos := make([]int, len(g.Tasks))
	procOf := make([]int, len(g.Tasks))
	for i := range pos {
		pos[i] = -1
	}
	seq := 0
	for p := 0; p < s.P; p++ {
		for _, id := range s.Order[p] {
			if pos[id] != -1 {
				t.Fatalf("task %s scheduled twice", g.Tasks[id].Label())
			}
			pos[id] = seq
			procOf[id] = p
			seq++
			if s.Owner[g.Tasks[id].J] != p {
				t.Fatal("owner-compute violated")
			}
		}
	}
	if seq != len(g.Tasks) {
		t.Fatalf("scheduled %d of %d tasks", seq, len(g.Tasks))
	}
	// Within a processor, predecessors on the same processor come first.
	for p := 0; p < s.P; p++ {
		rank := map[int]int{}
		for i, id := range s.Order[p] {
			rank[id] = i
		}
		for _, id := range s.Order[p] {
			for _, pred := range g.Tasks[id].Pred {
				if procOf[pred] == p && rank[pred] > rank[id] {
					t.Fatalf("intra-processor order violates dependence %s -> %s",
						g.Tasks[pred].Label(), g.Tasks[id].Label())
				}
			}
		}
	}
	if s.Makespan <= 0 {
		t.Fatal("makespan must be positive")
	}
}

func TestListScheduleBeatsSingleProcessorEstimate(t *testing.T) {
	a := sparse.Grid2D(10, 10, false, sparse.GenOptions{Seed: 3})
	g := buildGraph(t, a, 6, 4)
	w := unitWeights(g)
	comm := func(int) float64 { return 0.05 }
	s1 := ListSchedule(g, 1, w, comm)
	s4 := ListSchedule(g, 4, w, comm)
	if s4.Makespan >= s1.Makespan {
		t.Fatalf("4-proc makespan %v not better than 1-proc %v", s4.Makespan, s1.Makespan)
	}
	// Single processor must equal total work.
	if s1.Makespan != g.TotalWork(w) {
		t.Fatalf("1-proc makespan %v != total work %v", s1.Makespan, g.TotalWork(w))
	}
}

func TestListScheduleRespectsMakespanLowerBound(t *testing.T) {
	a := sparse.Grid2D(9, 9, false, sparse.GenOptions{Seed: 4})
	g := buildGraph(t, a, 5, 4)
	w := unitWeights(g)
	cp, _ := g.CriticalPath(w)
	s := ListSchedule(g, 8, w, func(int) float64 { return 0 })
	if s.Makespan < cp-1e-12 {
		t.Fatalf("makespan %v below critical path %v", s.Makespan, cp)
	}
	if s.Makespan < g.TotalWork(w)/8-1e-12 {
		t.Fatalf("makespan %v below work/P bound", s.Makespan)
	}
}

func TestLoadBalanceFactor(t *testing.T) {
	a := sparse.Grid2D(8, 8, false, sparse.GenOptions{Seed: 5})
	g := buildGraph(t, a, 6, 4)
	w := unitWeights(g)
	// Perfectly balanced hypothetical: factor must be in (0, 1].
	s := ComputeAhead(g, 4)
	lb := LoadBalance(g, w, func(task *taskgraph.Task) int { return s.Owner[task.J] }, 4)
	if lb <= 0 || lb > 1 {
		t.Fatalf("load balance factor %v out of (0,1]", lb)
	}
	// Everything on one processor of four: factor = 1/4.
	lb1 := LoadBalance(g, w, func(*taskgraph.Task) int { return 0 }, 4)
	if lb1 != 0.25 {
		t.Fatalf("degenerate load balance %v, want 0.25", lb1)
	}
}

func TestListScheduleHighCommClusters(t *testing.T) {
	// When communication dwarfs computation, the scheduler should keep the
	// critical chain on few processors; the makespan must never exceed the
	// one-processor schedule (which needs no communication at all) by more
	// than rounding.
	a := sparse.Grid2D(7, 7, false, sparse.GenOptions{Seed: 6})
	g := buildGraph(t, a, 5, 4)
	w := unitWeights(g)
	comm := func(int) float64 { return 1e6 }
	s1 := ListSchedule(g, 1, w, comm)
	s8 := ListSchedule(g, 8, w, comm)
	if s8.Makespan > s1.Makespan+1e-9 {
		t.Fatalf("high-comm schedule %v worse than serial %v", s8.Makespan, s1.Makespan)
	}
}

func TestLPTScheduleValid(t *testing.T) {
	a := sparse.Grid2D(8, 8, false, sparse.GenOptions{Seed: 7})
	g := buildGraph(t, a, 6, 4)
	w := unitWeights(g)
	s := LPTSchedule(g, 4, w)
	seen := make([]bool, len(g.Tasks))
	for p := 0; p < 4; p++ {
		for _, id := range s.Order[p] {
			if seen[id] {
				t.Fatal("duplicate task")
			}
			seen[id] = true
			if s.Owner[g.Tasks[id].J] != p {
				t.Fatal("owner-compute violated")
			}
		}
	}
	for _, ok := range seen {
		if !ok {
			t.Fatal("task missing")
		}
	}
	// Blocking execution must terminate.
	if m := Estimate(g, s, w, func(int) float64 { return 0.1 }); m <= 0 || m > 1e308 {
		t.Fatalf("estimate %v", m)
	}
}

func TestEstimateMatchesSerialWork(t *testing.T) {
	a := sparse.Grid2D(6, 6, false, sparse.GenOptions{Seed: 8})
	g := buildGraph(t, a, 5, 3)
	w := unitWeights(g)
	s := LPTSchedule(g, 1, w)
	if m := Estimate(g, s, w, func(int) float64 { return 9 }); m != g.TotalWork(w) {
		t.Fatalf("serial estimate %v != total work %v", m, g.TotalWork(w))
	}
}

func TestBestPicksFaster(t *testing.T) {
	a := sparse.Grid2D(8, 8, false, sparse.GenOptions{Seed: 9})
	g := buildGraph(t, a, 6, 4)
	w := unitWeights(g)
	comm := func(int) float64 { return 0.1 }
	etf := ListSchedule(g, 4, w, comm)
	lpt := LPTSchedule(g, 4, w)
	best := Best(g, w, comm, etf, lpt)
	e1, e2 := Estimate(g, etf, w, comm), Estimate(g, lpt, w, comm)
	min := e1
	if e2 < min {
		min = e2
	}
	if best.Makespan != min {
		t.Fatalf("Best makespan %v, want min(%v,%v)", best.Makespan, e1, e2)
	}
}
