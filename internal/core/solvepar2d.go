package core

import (
	"sstar/internal/machine"
	"sstar/internal/xblas"
)

// Tag kinds of the 2D distributed triangular solver.
const (
	tagFwd2DY uint8 = iota + 48
	tagFwd2DContrib
	tagFwd2DSwap
	tagBwd2DX
	tagBwd2DContrib
)

// SolvePar2D solves A x = b on the virtual machine with the factors
// distributed block-cyclically over a pr x pc grid exactly as Factorize2D
// leaves them: block (i, j) at processor (i mod pr, j mod pc), solution
// segment k at the owner of diagonal block k.
//
// Forward sweep per panel k: the pivot interchanges exchange scalars between
// the diagonal owners involved; the diagonal owner solves against L_kk and
// multicasts the segment down its processor column; the owners of the L
// blocks (i, k) compute their contributions and ship them along their
// processor rows to the diagonal owners of the target panels. The backward
// sweep mirrors this through the U blocks.
func SolvePar2D(f *Factorization, pr, pc int, model machine.Model, b []float64) (*SolveResult, error) {
	sym := f.Sym
	p := sym.Partition
	bm := f.BM
	n := sym.N
	nproc := pr * pc
	mach := machine.New(nproc, model)

	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[sym.RowPerm[i]] = b[i]
	}
	id := func(r, c int) int { return r*pc + c }
	diagOf := func(k int) int { return id(k%pr, k%pc) }
	// Static per-panel row sets: processor rows holding L blocks of column k
	// (forward multicast targets) and U blocks of column k (backward).
	lRowsOf := make([][]int, p.NB)
	uRowsOf := make([][]int, p.NB)
	for k := 0; k < p.NB; k++ {
		lRowsOf[k] = procRowsOf(p.LBlocks[k], pr)
		for _, jb := range p.UBlocks[k] {
			j := int(jb)
			uRowsOf[j] = appendUniqueInt(uRowsOf[j], k%pr)
		}
	}

	pt, err := runMachine(mach, func(proc *machine.Proc) {
		me := proc.ID()
		r, c := me/pc, me%pc
		// ---- Forward sweep. ----
		for k := 0; k < p.NB; k++ {
			start, end := p.Start[k], p.Start[k+1]
			s := end - start
			// Pivot exchanges between diagonal owners.
			for m := start; m < end; m++ {
				t := int(f.Piv[m])
				if t == m {
					continue
				}
				dk, dt := diagOf(k), diagOf(p.BlockOf[t])
				switch {
				case me == dk && me == dt:
					y[m], y[t] = y[t], y[m]
				case me == dk:
					proc.Send(dt, machine.Tag{Kind: tagFwd2DSwap, K: k, Aux: m}, 8, y[m])
					y[m] = proc.Recv(machine.Tag{Src: dt, Kind: tagFwd2DSwap, K: k, Aux: m}).(float64)
				case me == dt:
					proc.Send(dk, machine.Tag{Kind: tagFwd2DSwap, K: k, Aux: m}, 8, y[t])
					y[t] = proc.Recv(machine.Tag{Src: dk, Kind: tagFwd2DSwap, K: k, Aux: m}).(float64)
				}
			}
			// Diagonal solve and column multicast of the segment.
			if me == diagOf(k) {
				d := bm.Diag[k]
				xblas.TrsvLowerUnit(s, d.Data, s, y[start:end])
				proc.ChargeFlops(0, int64(s)*int64(s-1), 0, 0)
				if pr > 1 {
					dsts := make([]int, 0, pr-1)
					for _, rr := range lRowsOf[k] {
						if rr != r {
							dsts = append(dsts, id(rr, k%pc))
						}
					}
					if len(dsts) > 0 {
						proc.Multicast(dsts, machine.Tag{Kind: tagFwd2DY, K: k}, 8*s, nil)
					}
				}
			}
			// L-block owners: compute and ship contributions.
			if c == k%pc {
				received := false
				for _, lb := range bm.LCol[k] {
					if lb.I%pr != r {
						continue
					}
					if me != diagOf(k) && !received {
						proc.Recv(machine.Tag{Src: diagOf(k), Kind: tagFwd2DY, K: k})
						received = true
					}
					nc := len(lb.Cols)
					vals := make([]float64, len(lb.Rows))
					for rr := range lb.Rows {
						vals[rr] = xblas.Dot(lb.Data[rr*nc:(rr+1)*nc], y[start:end])
					}
					proc.ChargeFlops(0, 2*int64(len(lb.Rows))*int64(s), 0, 0)
					dst := diagOf(lb.I)
					if dst == me {
						for rr, gr := range lb.Rows {
							y[gr] -= vals[rr]
						}
					} else {
						proc.Send(dst, machine.Tag{Kind: tagFwd2DContrib, K: k, Aux: lb.I},
							8*len(vals), vals)
					}
				}
			}
			// Diagonal owners of later panels: absorb the contributions of
			// panel k that target them (event order = panel order).
			for _, ib := range p.LBlocks[k] {
				i := int(ib)
				if me != diagOf(i) {
					continue
				}
				src := id(i%pr, k%pc)
				if src == me {
					continue // applied locally above
				}
				lb := bm.BlockAt(i, k)
				vals := proc.Recv(machine.Tag{Src: src, Kind: tagFwd2DContrib, K: k, Aux: i}).([]float64)
				for rr, gr := range lb.Rows {
					y[gr] -= vals[rr]
				}
				proc.ChargeFlops(int64(len(vals)), 0, 0, 0)
			}
		}
		// ---- Backward sweep. ----
		for k := p.NB - 1; k >= 0; k-- {
			start, end := p.Start[k], p.Start[k+1]
			s := end - start
			if me == diagOf(k) {
				// Absorb contributions from later panels, fixed source
				// order for determinism.
				for _, jb := range p.UBlocks[k] {
					j := int(jb)
					src := id(k%pr, j%pc)
					if src == me {
						continue // applied locally below, when panel j ran
					}
					vals := proc.Recv(machine.Tag{Src: src, Kind: tagBwd2DContrib, K: j, Aux: k}).([]float64)
					for i := 0; i < s; i++ {
						y[start+i] -= vals[i]
					}
					proc.ChargeFlops(int64(s), 0, 0, 0)
				}
				d := bm.Diag[k]
				xblas.TrsvUpper(s, d.Data, s, y[start:end])
				proc.ChargeFlops(0, int64(s)*int64(s), 0, 0)
				// Multicast the solved segment up my processor column for
				// the U-block owners of block column k.
				if pr > 1 {
					dsts := make([]int, 0, pr-1)
					for _, rr := range uRowsOf[k] {
						if rr != r {
							dsts = append(dsts, id(rr, k%pc))
						}
					}
					if len(dsts) > 0 {
						proc.Multicast(dsts, machine.Tag{Kind: tagBwd2DX, K: k}, 8*s, nil)
					}
				}
			}
			// U-block owners in block column k: compute contributions for
			// their row panels i < k and ship them along the processor row.
			if c == k%pc {
				received := me == diagOf(k)
				for i := k - 1; i >= 0; i-- {
					if i%pr != r {
						continue
					}
					ub := bm.BlockAt(i, k)
					if ub == nil {
						continue
					}
					if !received {
						proc.Recv(machine.Tag{Src: diagOf(k), Kind: tagBwd2DX, K: k})
						received = true
					}
					si := p.Size(i)
					nc := len(ub.Cols)
					vals := make([]float64, si)
					for rr := 0; rr < si; rr++ {
						sum := 0.0
						row := ub.Data[rr*nc : (rr+1)*nc]
						for q, cc := range ub.Cols {
							sum += row[q] * y[cc]
						}
						vals[rr] = sum
					}
					proc.ChargeFlops(0, 2*int64(si)*int64(nc), 0, 0)
					dst := diagOf(i)
					if dst == me {
						for rr := 0; rr < si; rr++ {
							y[p.Start[i]+rr] -= vals[rr]
						}
					} else {
						proc.Send(dst, machine.Tag{Kind: tagBwd2DContrib, K: k, Aux: i}, 8*si, vals)
					}
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = y[sym.ColPerm[j]]
	}
	var bytes, msgs int64
	for i := 0; i < nproc; i++ {
		bytes += mach.Proc(i).SentBytes
		msgs += mach.Proc(i).SentMessages
	}
	return &SolveResult{X: x, ParallelTime: pt, SentBytes: bytes, SentMessages: msgs}, nil
}

// procRowsOf maps block indices to the distinct processor rows holding them.
func procRowsOf(blocks []int32, pr int) []int {
	var out []int
	for _, b := range blocks {
		out = appendUniqueInt(out, int(b)%pr)
	}
	return out
}

func appendUniqueInt(xs []int, v int) []int {
	for _, x := range xs {
		if x == v {
			return xs
		}
	}
	return append(xs, v)
}
