package core

import (
	"testing"

	"sstar/internal/machine"
	"sstar/internal/sparse"
	"sstar/internal/supernode"
	"sstar/internal/symbolic"
)

// TestMoreProcsThanBlocks: processor counts exceeding the number of supernode
// panels must still run correctly (idle processors participate in collectives
// but own no work).
func TestMoreProcsThanBlocks(t *testing.T) {
	a := sparse.Grid2D(5, 5, false, sparse.GenOptions{Seed: 31})
	sym := analyzeFor(t, a, 25, 8) // few, wide panels
	if sym.Partition.NB >= 16 {
		t.Skipf("partition produced %d blocks; want < 16 for this test", sym.Partition.NB)
	}
	seq, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	xs := solveAndCheck(t, a, seq, 1e-9)
	res1, err := Factorize1D(a, sym, machine.T3E(), ScheduleCA(sym, 16))
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, solveAndCheck(t, a, res1.Fact, 1e-9), xs, "1D overprovisioned")
	res2, err := Factorize2D(a, sym, machine.T3E(), 4, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, solveAndCheck(t, a, res2.Fact, 1e-9), xs, "2D overprovisioned")
}

// TestSingleBlockMatrix: a matrix that fits one panel degenerates to a single
// Factor task everywhere.
func TestSingleBlockMatrix(t *testing.T) {
	a := sparse.Dense(10, 32)
	sym := analyzeFor(t, a, 25, 0)
	if sym.Partition.NB != 1 {
		t.Fatalf("NB = %d, want 1", sym.Partition.NB)
	}
	seq, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	solveAndCheck(t, a, seq, 1e-10)
	res, err := Factorize2D(a, sym, machine.T3E(), 2, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	solveAndCheck(t, a, res.Fact, 1e-10)
}

// TestNearlyDenseRowCaveat reproduces the paper's Section 7 caveat: a matrix
// with a nearly dense *row* forces the static symbolic factorization toward
// complete fill-in (the memplus phenomenon). The library must still compute a
// correct factorization — just an expensive one.
func TestNearlyDenseRowCaveat(t *testing.T) {
	n := 60
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
		if i+1 < n {
			coo.Add(i+1, i, -1)
		}
	}
	// Row 0 touches (almost) every column.
	for j := 1; j < n-2; j++ {
		coo.Add(0, j, 0.5)
	}
	a := coo.ToCSR()
	st := symbolic.Factorize(sparse.PatternOf(a))
	dense := n * (n + 1) / 2
	if st.NnzU() < dense/2 {
		t.Fatalf("expected massive U overestimation, got %d of %d", st.NnzU(), dense)
	}
	sym := Analyze(a, AnalyzeOptions{SkipOrdering: true, Supernode: supernode.Options{MaxBlock: 8, Amalgamate: 4}})
	f, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	solveAndCheck(t, a, f, 1e-9)
}

// TestHighlyNonsymmetricPattern: structural-drop generators stress the
// nonsymmetric-pattern path of the whole pipeline.
func TestHighlyNonsymmetricPattern(t *testing.T) {
	a := sparse.Grid2D(9, 9, true, sparse.GenOptions{Seed: 33, StructuralDrop: 0.5, Convection: 0.9})
	s := sparse.ComputeStats(a)
	if s.Symmetry < 1.2 {
		t.Fatalf("matrix not nonsymmetric enough (%.2f) for this test", s.Symmetry)
	}
	sym := analyzeFor(t, a, 8, 4)
	f, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	solveAndCheck(t, a, f, 1e-9)
	res, err := Factorize2D(a, sym, machine.T3D(), 2, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	solveAndCheck(t, a, res.Fact, 1e-9)
}

// TestPermutedInputEquivalence: factorizing P A Q^T with SkipOrdering=false
// must solve the same system regardless of how the caller pre-scrambled it.
func TestPermutedInputEquivalence(t *testing.T) {
	a := sparse.Circuit(90, 3, sparse.GenOptions{Seed: 34})
	rp := sparse.InversePerm(sparse.IdentityPerm(a.N))
	// A deterministic scramble.
	for i := range rp {
		rp[i] = (i*37 + 11) % a.N
	}
	if !sparse.IsPerm(rp) {
		t.Skip("scramble is not a permutation for this n")
	}
	b := randRHS(a.N, 35)
	sym1 := analyzeFor(t, a, 8, 4)
	f1, err := FactorizeSeq(a, sym1)
	if err != nil {
		t.Fatal(err)
	}
	x1 := f1.Solve(b)
	// Scrambled system: (P A) x = P b has the same solution x.
	ap := a.PermuteRows(rp)
	bp := make([]float64, a.N)
	for i := range b {
		bp[rp[i]] = b[i]
	}
	sym2 := analyzeFor(t, ap, 8, 4)
	f2, err := FactorizeSeq(ap, sym2)
	if err != nil {
		t.Fatal(err)
	}
	x2 := f2.Solve(bp)
	sameSolution(t, x2, x1, "scrambled system")
}

// TestUnitMachineParallelTimeMatchesWork: on the unit-rate machine with zero
// latency and one processor, the parallel time equals total flops+swaps.
func TestUnitMachineParallelTimeMatchesWork(t *testing.T) {
	a := sparse.Grid2D(6, 6, false, sparse.GenOptions{Seed: 36})
	sym := analyzeFor(t, a, 6, 2)
	res, err := Factorize1D(a, sym, machine.Unit(), ScheduleCA(sym, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(res.Fact.Fl.Total() + res.Fact.Fl.Sw)
	if diff := res.ParallelTime - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("unit-machine time %v != work %v", res.ParallelTime, want)
	}
}

// TestFlopsAdd covers the accumulator arithmetic.
func TestFlopsAdd(t *testing.T) {
	a := Flops{B1: 1, B2: 2, B3: 3, Sw: 4}
	a.Add(Flops{B1: 10, B2: 20, B3: 30, Sw: 40})
	if a.B1 != 11 || a.B2 != 22 || a.B3 != 33 || a.Sw != 44 {
		t.Fatalf("Add broken: %+v", a)
	}
	if a.Total() != 66 {
		t.Fatalf("Total = %d, want 66", a.Total())
	}
}

// TestTracing: spans are recorded only when requested, stay on each
// processor's own timeline in order, and never overlap.
func TestTracing(t *testing.T) {
	a := sparse.Grid2D(8, 8, false, sparse.GenOptions{Seed: 37})
	sym := analyzeFor(t, a, 6, 3)
	plain, err := Factorize2D(a, sym, machine.T3E(), 2, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Traces != nil {
		t.Fatal("tracing must be off by default")
	}
	traced, err := Factorize2D(a, sym, machine.T3E(), 2, 2, true, WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.Traces) != 4 {
		t.Fatalf("want 4 processor traces, got %d", len(traced.Traces))
	}
	total := 0
	for pid, spans := range traced.Traces {
		last := 0.0
		for _, s := range spans {
			if s.End < s.Start {
				t.Fatalf("proc %d: span %q ends before it starts", pid, s.Label)
			}
			if s.Start < last-1e-12 {
				t.Fatalf("proc %d: span %q overlaps its predecessor", pid, s.Label)
			}
			last = s.End
			total++
		}
	}
	if total == 0 {
		t.Fatal("no spans recorded")
	}
	res1, err := Factorize1D(a, sym, machine.T3E(), ScheduleCA(sym, 3), WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Traces) != 3 {
		t.Fatalf("1D traces %d, want 3", len(res1.Traces))
	}
}

// TestColmmdOrderingPath exercises the alternative column ordering through
// the whole pipeline.
func TestColmmdOrderingPath(t *testing.T) {
	a := sparse.Grid2D(10, 10, false, sparse.GenOptions{Seed: 38, Convection: 0.4})
	sym := Analyze(a, AnalyzeOptions{Ordering: "colmmd", Supernode: supernode.Options{MaxBlock: 8, Amalgamate: 4}})
	f, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	solveAndCheck(t, a, f, 1e-9)
	res, err := Factorize2D(a, sym, machine.T3E(), 2, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	solveAndCheck(t, a, res.Fact, 1e-9)
}

func TestUnknownOrderingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown ordering")
		}
	}()
	Analyze(sparse.Dense(5, 1), AnalyzeOptions{Ordering: "nope"})
}
