package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sstar/internal/sparse"
	"sstar/internal/supernode"
)

// residual returns ‖Ax−b‖_∞ / (‖A‖_∞‖x‖_∞ + ‖b‖_∞).
func residual(a *sparse.CSR, x, b []float64) float64 {
	r := make([]float64, a.N)
	a.MulVec(x, r)
	num, xn, bn := 0.0, 0.0, 0.0
	for i := range r {
		if v := math.Abs(r[i] - b[i]); v > num {
			num = v
		}
		if v := math.Abs(x[i]); v > xn {
			xn = v
		}
		if v := math.Abs(b[i]); v > bn {
			bn = v
		}
	}
	return num / (a.NormInf()*xn + bn)
}

func randRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = 2*rng.Float64() - 1
	}
	return b
}

func TestDenseLUSolve(t *testing.T) {
	n := 40
	a := sparse.Dense(n, 3)
	lu := append([]float64(nil), denseOf(a)...)
	piv := make([]int, n)
	if err := DenseLU(n, lu, piv); err != nil {
		t.Fatal(err)
	}
	b := randRHS(n, 1)
	x := append([]float64(nil), b...)
	DenseSolve(n, lu, piv, x)
	if r := residual(a, x, b); r > 1e-10 {
		t.Fatalf("dense residual %g", r)
	}
}

func denseOf(a *sparse.CSR) []float64 {
	d := make([]float64, a.N*a.M)
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			d[i*a.M+j] = vals[k]
		}
	}
	return d
}

func TestDenseLUSingular(t *testing.T) {
	n := 3
	lu := make([]float64, 9) // zero matrix
	if err := DenseLU(n, lu, make([]int, n)); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestGPSolveAgainstDense(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		a := sparse.RandomSparse(50, 4, seed)
		f, err := GPFactorize(a, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		b := randRHS(a.N, seed)
		x := f.Solve(b)
		if r := residual(a, x, b); r > 1e-10 {
			t.Fatalf("seed %d: GP residual %g", seed, r)
		}
		// Cross-check the solution against the dense oracle.
		lu := denseOf(a)
		piv := make([]int, a.N)
		if err := DenseLU(a.N, lu, piv); err != nil {
			t.Fatal(err)
		}
		xd := append([]float64(nil), b...)
		DenseSolve(a.N, lu, piv, xd)
		for i := range x {
			if math.Abs(x[i]-xd[i]) > 1e-8*(1+math.Abs(xd[i])) {
				t.Fatalf("seed %d: GP and dense disagree at %d: %g vs %g", seed, i, x[i], xd[i])
			}
		}
	}
}

func TestGPPivotingKicksIn(t *testing.T) {
	// A matrix with a tiny diagonal entry must still solve accurately;
	// without pivoting the residual would blow up.
	coo := sparse.NewCOO(3, 3)
	coo.Add(0, 0, 1e-14)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	coo.Add(1, 1, 1)
	coo.Add(1, 2, 1)
	coo.Add(2, 1, 1)
	coo.Add(2, 2, 3)
	a := coo.ToCSR()
	f, err := GPFactorize(a, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3}
	x := f.Solve(b)
	if r := residual(a, x, b); r > 1e-12 {
		t.Fatalf("residual %g with pivoting", r)
	}
	// Pivot permutation must be a real permutation.
	if !sparse.IsPerm(f.PRow) {
		t.Fatal("PRow is not a permutation")
	}
}

func TestGPSingular(t *testing.T) {
	coo := sparse.NewCOO(2, 2)
	coo.Add(0, 0, 1)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 2)
	coo.Add(1, 1, 2)
	if _, err := GPFactorize(coo.ToCSR(), 1.0); err == nil {
		t.Fatal("expected singular error for rank-deficient matrix")
	}
}

func TestGPFillAtLeastA(t *testing.T) {
	a := sparse.Grid2D(10, 10, false, sparse.GenOptions{Seed: 5})
	f, err := GPFactorize(a, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if f.NnzTotal() < a.Nnz() {
		t.Fatalf("fill %d below nnz(A) %d", f.NnzTotal(), a.Nnz())
	}
	if f.Flops <= 0 {
		t.Fatal("flop count must be positive")
	}
}

func analyzeFor(t *testing.T, a *sparse.CSR, bsize, amal int) *Symbolic {
	t.Helper()
	return Analyze(a, AnalyzeOptions{Supernode: supernode.Options{MaxBlock: bsize, Amalgamate: amal}})
}

func TestSeqStarSolvesVariousMatrices(t *testing.T) {
	cases := []struct {
		name string
		a    *sparse.CSR
	}{
		{"dense", sparse.Dense(35, 1)},
		{"grid2d", sparse.Grid2D(9, 9, false, sparse.GenOptions{Seed: 2, Convection: 0.4})},
		{"grid2d-drop", sparse.Grid2D(8, 8, false, sparse.GenOptions{Seed: 3, StructuralDrop: 0.25})},
		{"grid3d", sparse.Grid3D(4, 4, 4, sparse.GenOptions{Seed: 4, DOF: 2})},
		{"circuit", sparse.Circuit(120, 3, sparse.GenOptions{Seed: 5, Convection: 0.5, StructuralDrop: 0.1})},
		{"random", sparse.RandomSparse(90, 3, 6)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sym := analyzeFor(t, tc.a, 8, 4)
			f, err := FactorizeSeq(tc.a, sym)
			if err != nil {
				t.Fatal(err)
			}
			b := randRHS(tc.a.N, 7)
			x := f.Solve(b)
			if r := residual(tc.a, x, b); r > 1e-9 {
				t.Fatalf("residual %g", r)
			}
		})
	}
}

func TestSeqStarMatchesGPSolution(t *testing.T) {
	a := sparse.Grid2D(7, 7, false, sparse.GenOptions{Seed: 8, Convection: 0.3})
	sym := analyzeFor(t, a, 6, 3)
	f, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := GPFactorize(a, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(a.N, 9)
	xs := f.Solve(b)
	xg := gp.Solve(b)
	for i := range xs {
		if math.Abs(xs[i]-xg[i]) > 1e-8*(1+math.Abs(xg[i])) {
			t.Fatalf("S* and GP disagree at %d: %g vs %g", i, xs[i], xg[i])
		}
	}
}

func TestSeqStarBlockSizeInvariance(t *testing.T) {
	// The computed solution must be essentially independent of the
	// partitioning options.
	a := sparse.Circuit(100, 3, sparse.GenOptions{Seed: 10, StructuralDrop: 0.15})
	b := randRHS(a.N, 11)
	var ref []float64
	for _, opt := range []struct{ bs, r int }{{1, 0}, {4, 0}, {8, 4}, {25, 6}, {100, 8}} {
		sym := analyzeFor(t, a, opt.bs, opt.r)
		f, err := FactorizeSeq(a, sym)
		if err != nil {
			t.Fatalf("bs=%d r=%d: %v", opt.bs, opt.r, err)
		}
		x := f.Solve(b)
		if r := residual(a, x, b); r > 1e-9 {
			t.Fatalf("bs=%d r=%d: residual %g", opt.bs, opt.r, r)
		}
		if ref == nil {
			ref = x
			continue
		}
		for i := range x {
			if math.Abs(x[i]-ref[i]) > 1e-7*(1+math.Abs(ref[i])) {
				t.Fatalf("bs=%d r=%d: solution drifted at %d", opt.bs, opt.r, i)
			}
		}
	}
}

func TestSeqStarWeakDiagonalNeedsPivoting(t *testing.T) {
	// Generators plant tiny diagonal entries; S* must pivot them away.
	a := sparse.Grid2D(10, 10, false, sparse.GenOptions{Seed: 12, WeakDiagFraction: 0.3})
	sym := analyzeFor(t, a, 8, 4)
	f, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	swaps := 0
	for m, t0 := range f.Piv {
		if int(t0) != m {
			swaps++
		}
	}
	if swaps == 0 {
		t.Fatal("expected at least one row interchange")
	}
	b := randRHS(a.N, 13)
	if r := residual(a, f.Solve(b), b); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}

func TestSeqStarPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		a := sparse.RandomSparse(n, 1+rng.Intn(4), seed)
		sym := Analyze(a, AnalyzeOptions{Supernode: supernode.Options{MaxBlock: 1 + rng.Intn(12), Amalgamate: rng.Intn(6)}})
		fac, err := FactorizeSeq(a, sym)
		if err != nil {
			return false
		}
		b := randRHS(n, seed+1)
		return residual(a, fac.Solve(b), b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqStarFlopsAccounting(t *testing.T) {
	a := sparse.Grid2D(8, 8, false, sparse.GenOptions{Seed: 14})
	sym := analyzeFor(t, a, 8, 4)
	f, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	if f.Fl.B2 <= 0 || f.Fl.B3 <= 0 {
		t.Fatalf("expected both BLAS-2 and BLAS-3 work, got %+v", f.Fl)
	}
	gp, _ := GPFactorize(a, 1.0)
	if f.Fl.Total() < gp.Flops {
		t.Fatalf("static-structure flops %d below dynamic-fill flops %d", f.Fl.Total(), gp.Flops)
	}
}

func TestAnalyzeSkipOrdering(t *testing.T) {
	a := sparse.RandomSparse(30, 2, 15)
	sym := Analyze(a, AnalyzeOptions{SkipOrdering: true, Supernode: supernode.Options{MaxBlock: 4}})
	for i, v := range sym.RowPerm {
		if v != i || sym.ColPerm[i] != i {
			t.Fatal("SkipOrdering must produce identity permutations")
		}
	}
	f, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(a.N, 16)
	if r := residual(a, f.Solve(b), b); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}

func TestSeqStarSingular(t *testing.T) {
	// Structurally fine but numerically rank-deficient.
	coo := sparse.NewCOO(3, 3)
	coo.Add(0, 0, 1)
	coo.Add(0, 1, 2)
	coo.Add(1, 0, 2)
	coo.Add(1, 1, 4)
	coo.Add(1, 2, 0.5)
	coo.Add(2, 1, 1)
	coo.Add(2, 2, 1)
	a := coo.ToCSR()
	sym := Analyze(a, AnalyzeOptions{SkipOrdering: true, Supernode: supernode.Options{MaxBlock: 3}})
	if _, err := FactorizeSeq(a, sym); err == nil {
		t.Skip("matrix happened to be numerically nonsingular under this structure")
	}
}

func TestGPThresholdPivoting(t *testing.T) {
	a := sparse.Grid2D(9, 9, false, sparse.GenOptions{Seed: 16, WeakDiagFraction: 0.2})
	strict, err := GPFactorize(a, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := GPFactorize(a, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	offDiagStrict, offDiagRelaxed := 0, 0
	for i, p := range strict.PRow {
		if p != i {
			offDiagStrict++
		}
	}
	for i, p := range relaxed.PRow {
		if p != i {
			offDiagRelaxed++
		}
	}
	if offDiagRelaxed > offDiagStrict {
		t.Fatalf("threshold pivoting moved more rows: %d vs %d", offDiagRelaxed, offDiagStrict)
	}
	b := randRHS(a.N, 17)
	if r := residual(a, relaxed.Solve(b), b); r > 1e-8 {
		t.Fatalf("relaxed GP residual %g", r)
	}
	// Out-of-range tolerance falls back to classical pivoting.
	fallback, err := GPFactorize(a, 7.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range strict.PRow {
		if strict.PRow[i] != fallback.PRow[i] {
			t.Fatal("tol > 1 should behave classically")
		}
	}
}
