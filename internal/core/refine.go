package core

import (
	"math"

	"sstar/internal/sparse"
)

// RefineResult reports the outcome of iterative refinement.
type RefineResult struct {
	Iterations int
	// Berr is the final componentwise backward error
	// max_i |Ax-b|_i / (|A||x| + |b|)_i (the Oettli–Prager measure).
	Berr float64
	// Converged is true when Berr fell below the requested tolerance.
	Converged bool
}

// Refine improves a computed solution x of A x = b by classical iterative
// refinement with the existing factors: r = b − A x, solve A d = r,
// x += d, until the componentwise backward error stops improving, reaches
// tol, or maxIter is hit. x is updated in place.
func (f *Factorization) Refine(a *sparse.CSR, x, b []float64, tol float64, maxIter int) RefineResult {
	if maxIter <= 0 {
		maxIter = 5
	}
	if tol <= 0 {
		tol = 1e-14
	}
	n := a.N
	r := make([]float64, n)
	res := RefineResult{Berr: backwardError(a, x, b, r)}
	for res.Iterations = 0; res.Iterations < maxIter; {
		if res.Berr <= tol {
			res.Converged = true
			return res
		}
		d := f.Solve(r)
		for i := range x {
			x[i] += d[i]
		}
		res.Iterations++
		prev := res.Berr
		res.Berr = backwardError(a, x, b, r)
		if res.Berr >= prev/2 {
			// Stagnation: no further digits to gain at this precision.
			res.Converged = res.Berr <= tol
			return res
		}
	}
	res.Converged = res.Berr <= tol
	return res
}

// backwardError computes the Oettli–Prager componentwise backward error and
// leaves the residual b − A x in r.
func backwardError(a *sparse.CSR, x, b, r []float64) float64 {
	berr := 0.0
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		ax, axAbs := 0.0, 0.0
		for k, j := range cols {
			ax += vals[k] * x[j]
			axAbs += math.Abs(vals[k] * x[j])
		}
		r[i] = b[i] - ax
		den := axAbs + math.Abs(b[i])
		if den > 0 {
			if e := math.Abs(r[i]) / den; e > berr {
				berr = e
			}
		} else if r[i] != 0 {
			berr = math.Inf(1)
		}
	}
	return berr
}

// CondEst estimates the 1-norm condition number κ₁(A) = ‖A‖₁‖A⁻¹‖₁ using
// Hager's algorithm (the LAPACK xLACON scheme): ‖A⁻¹‖₁ is estimated from a
// few solves with A and Aᵀ.
func (f *Factorization) CondEst(a *sparse.CSR) float64 {
	n := a.N
	// ‖A‖₁ = max column sum.
	colSum := make([]float64, n)
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			colSum[j] += math.Abs(vals[k])
		}
	}
	norm1 := 0.0
	for _, s := range colSum {
		norm1 = math.Max(norm1, s)
	}
	// Hager iteration for ‖A⁻¹‖₁.
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	est := 0.0
	for iter := 0; iter < 5; iter++ {
		y := f.Solve(x) // y = A⁻¹ x
		newEst := 0.0
		for _, v := range y {
			newEst += math.Abs(v)
		}
		if iter > 0 && newEst <= est {
			break
		}
		est = newEst
		// ξ = sign(y); z = A⁻ᵀ ξ.
		xi := make([]float64, n)
		for i, v := range y {
			if v >= 0 {
				xi[i] = 1
			} else {
				xi[i] = -1
			}
		}
		z := f.SolveTranspose(xi)
		// Next x = e_j with j = argmax |z_j|; stop when |z|_∞ <= zᵀx.
		jmax, zmax := 0, 0.0
		for i, v := range z {
			if av := math.Abs(v); av > zmax {
				jmax, zmax = i, av
			}
		}
		dot := 0.0
		for i := range z {
			dot += z[i] * x[i]
		}
		if zmax <= dot {
			break
		}
		clear(x)
		x[jmax] = 1
	}
	return norm1 * est
}

// Equilibrate computes row and column scalings (powers-of-two free simple
// scaling) r_i = 1/max_j|a_ij| and c_j = 1/max_i |r_i a_ij|, returning the
// scaled matrix R·A·C together with the scale vectors. Solving A x = b then
// proceeds as: factorize RAC, solve (RAC) y = R b, x = C y.
func Equilibrate(a *sparse.CSR) (scaled *sparse.CSR, rowScale, colScale []float64) {
	n := a.N
	rowScale = make([]float64, n)
	colScale = make([]float64, a.M)
	for i := 0; i < n; i++ {
		_, vals := a.Row(i)
		m := MaxAbs(vals)
		if m == 0 {
			rowScale[i] = 1
		} else {
			rowScale[i] = 1 / m
		}
	}
	clear(colScale)
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			colScale[j] = math.Max(colScale[j], math.Abs(rowScale[i]*vals[k]))
		}
	}
	for j := range colScale {
		if colScale[j] == 0 {
			colScale[j] = 1
		} else {
			colScale[j] = 1 / colScale[j]
		}
	}
	scaled = a.Clone()
	for i := 0; i < n; i++ {
		cols, vals := scaled.Row(i)
		for k, j := range cols {
			vals[k] = rowScale[i] * vals[k] * colScale[j]
		}
	}
	return scaled, rowScale, colScale
}
