package core

import (
	"math"
	"testing"

	"sstar/internal/machine"
	"sstar/internal/sparse"
)

// applyU computes u = U v from the factor storage (diagonal upper parts plus
// the U blocks).
func applyU(f *Factorization, v []float64) []float64 {
	p := f.Sym.Partition
	bm := f.BM
	u := make([]float64, p.N)
	for k := 0; k < p.NB; k++ {
		start := p.Start[k]
		s := p.Size(k)
		d := bm.Diag[k]
		for i := 0; i < s; i++ {
			sum := 0.0
			for j := i; j < s; j++ {
				sum += d.Data[i*s+j] * v[start+j]
			}
			u[start+i] = sum
		}
		for _, ub := range bm.URow[k] {
			nc := len(ub.Cols)
			for i := 0; i < s; i++ {
				sum := 0.0
				row := ub.Data[i*nc : (i+1)*nc]
				for q, c := range ub.Cols {
					sum += row[q] * v[c]
				}
				u[start+i] += sum
			}
		}
	}
	return u
}

// applyLk computes v := L_k v in place, where L_k is the elementary block
// column factor of panel k (unit-lower diagonal part plus the L blocks).
func applyLk(f *Factorization, k int, v []float64) {
	p := f.Sym.Partition
	bm := f.BM
	start := p.Start[k]
	s := p.Size(k)
	d := bm.Diag[k]
	// Below part first (uses the *pre*-multiplication panel values).
	for _, lb := range bm.LCol[k] {
		nc := len(lb.Cols)
		for r, gr := range lb.Rows {
			sum := 0.0
			row := lb.Data[r*nc : (r+1)*nc]
			for q := 0; q < nc; q++ {
				sum += row[q] * v[start+q]
			}
			v[gr] += sum
		}
	}
	// Panel part: v_p := L_d v_p, bottom-up to reuse the original entries.
	for i := s - 1; i >= 0; i-- {
		sum := v[start+i] // unit diagonal
		for j := 0; j < i; j++ {
			sum += d.Data[i*s+j] * v[start+j]
		}
		v[start+i] = sum
	}
}

// applyPkT undoes the panel-k interchanges (applies them in reverse order).
func applyPkT(f *Factorization, k int, v []float64) {
	p := f.Sym.Partition
	for m := p.Start[k+1] - 1; m >= p.Start[k]; m-- {
		if t := int(f.Piv[m]); t != m {
			v[m], v[t] = v[t], v[m]
		}
	}
}

// TestFactorProductReconstruction verifies the factorization identity
// A_w = P_1ᵀ L_1 … P_NBᵀ L_NB U column by column: applying the stored factors
// to basis vectors must reproduce the working matrix exactly (to rounding).
// This is a much stronger check than solve residuals — it pins the exact
// semantics of the lazy (trailing-only) pivoting.
func TestFactorProductReconstruction(t *testing.T) {
	mats := []*sparse.CSR{
		sparse.Grid2D(7, 7, false, sparse.GenOptions{Seed: 81, WeakDiagFraction: 0.2}),
		sparse.Circuit(90, 3, sparse.GenOptions{Seed: 82, StructuralDrop: 0.1}),
		sparse.Dense(25, 83),
	}
	for mi, a := range mats {
		sym := analyzeFor(t, a, 6, 3)
		f, err := FactorizeSeq(a, sym)
		if err != nil {
			t.Fatal(err)
		}
		work := sym.PermutedMatrix(a)
		scale := work.NormInf()
		n := a.N
		for j := 0; j < n; j += 7 { // sample every 7th column
			e := make([]float64, n)
			e[j] = 1
			col := applyU(f, e)
			for k := sym.Partition.NB - 1; k >= 0; k-- {
				applyLk(f, k, col)
				applyPkT(f, k, col)
			}
			// col must equal column j of the working matrix.
			for i := 0; i < n; i++ {
				want := work.At(i, j)
				if math.Abs(col[i]-want) > 1e-10*scale {
					t.Fatalf("matrix %d: reconstructed A[%d,%d] = %g, want %g", mi, i, j, col[i], want)
				}
			}
		}
	}
}

// TestFactorProductReconstructionParallel repeats the identity check on
// factors produced by the 2D asynchronous code.
func TestFactorProductReconstructionParallel(t *testing.T) {
	a := sparse.Grid2D(8, 8, false, sparse.GenOptions{Seed: 84, WeakDiagFraction: 0.15})
	sym := analyzeFor(t, a, 6, 3)
	res, err := Factorize2D(a, sym, unitMachine(), 2, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Fact
	work := sym.PermutedMatrix(a)
	scale := work.NormInf()
	n := a.N
	for j := 0; j < n; j += 5 {
		e := make([]float64, n)
		e[j] = 1
		col := applyU(f, e)
		for k := sym.Partition.NB - 1; k >= 0; k-- {
			applyLk(f, k, col)
			applyPkT(f, k, col)
		}
		for i := 0; i < n; i++ {
			want := work.At(i, j)
			if math.Abs(col[i]-want) > 1e-10*scale {
				t.Fatalf("reconstructed A[%d,%d] = %g, want %g", i, j, col[i], want)
			}
		}
	}
}

func unitMachine() machine.Model { return machine.Unit() }
