package core

import (
	"fmt"
	"math"
)

// DenseLU is an in-place dense GEPP factorization used as a numerical oracle
// by the tests and for the dense1000 rows of Table 2. a is n-by-n row-major
// and is overwritten with L (unit diagonal implied) and U; piv[k] records the
// row swapped into position k at step k.
func DenseLU(n int, a []float64, piv []int) error {
	for k := 0; k < n; k++ {
		p, best := k, math.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a[i*n+k]); v > best {
				p, best = i, v
			}
		}
		if best == 0 {
			return fmt.Errorf("%w: dense zero pivot at step %d", ErrSingular, k)
		}
		piv[k] = p
		if p != k {
			for j := 0; j < n; j++ {
				a[k*n+j], a[p*n+j] = a[p*n+j], a[k*n+j]
			}
		}
		d := a[k*n+k]
		for i := k + 1; i < n; i++ {
			a[i*n+k] /= d
			l := a[i*n+k]
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= l * a[k*n+j]
			}
		}
	}
	return nil
}

// DenseSolve solves A x = b given the in-place factors and pivots from
// DenseLU, overwriting b with x.
func DenseSolve(n int, lu []float64, piv []int, b []float64) {
	for k := 0; k < n; k++ {
		if p := piv[k]; p != k {
			b[k], b[p] = b[p], b[k]
		}
		for i := k + 1; i < n; i++ {
			b[i] -= lu[i*n+k] * b[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= lu[i*n+j] * b[j]
		}
		b[i] = s / lu[i*n+i]
	}
}

// DenseLUFlops returns the classical operation count 2/3 n^3 + O(n^2) for
// dense GEPP, used when reporting dense-matrix MFLOPS.
func DenseLUFlops(n int) int64 {
	nn := int64(n)
	return 2*nn*nn*nn/3 + nn*nn/2
}
