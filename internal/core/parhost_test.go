package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sstar/internal/sparse"
	"sstar/internal/supernode"
)

var hostWorkerCounts = []int{1, 2, 4, 8}

// assertFactorsBitIdentical fails unless the two factorizations match bit
// for bit: pivot sequence, every block's packed data, flop tallies.
func assertFactorsBitIdentical(t *testing.T, label string, seq, par *Factorization) {
	t.Helper()
	if seq.Fl != par.Fl {
		t.Fatalf("%s: flop tallies differ: %+v vs %+v", label, seq.Fl, par.Fl)
	}
	for m := range seq.Piv {
		if seq.Piv[m] != par.Piv[m] {
			t.Fatalf("%s: pivot %d differs: %d vs %d", label, m, seq.Piv[m], par.Piv[m])
		}
	}
	checkData := func(kind string, k int, a, b []float64) {
		t.Helper()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: %s block %d differs at %d: %x vs %x", label, kind, k, i, a[i], b[i])
			}
		}
	}
	for k := range seq.BM.Diag {
		checkData("diag", k, seq.BM.Diag[k].Data, par.BM.Diag[k].Data)
		for i := range seq.BM.LCol[k] {
			checkData("L", k, seq.BM.LCol[k][i].Data, par.BM.LCol[k][i].Data)
		}
		for i := range seq.BM.URow[k] {
			checkData("U", k, seq.BM.URow[k][i].Data, par.BM.URow[k][i].Data)
		}
	}
}

func TestFactorizeHostBitIdentical(t *testing.T) {
	mats := map[string]*sparse.CSR{
		"grid2d":  sparse.Grid2D(14, 13, false, sparse.GenOptions{Convection: 0.6, Seed: 61}),
		"grid3d":  sparse.Grid3D(6, 6, 6, sparse.GenOptions{DOF: 2, Convection: 0.3, Seed: 62}),
		"circuit": sparse.Circuit(300, 4, sparse.GenOptions{Convection: 0.5, Seed: 63}),
		"dense":   sparse.Dense(80, 64),
	}
	for name, a := range mats {
		sym := Analyze(a, AnalyzeOptions{Supernode: supernode.Options{MaxBlock: 8, Amalgamate: 4}})
		seq, err := FactorizeSeq(a, sym)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, w := range hostWorkerCounts {
			par, err := FactorizeHost(a, sym, w)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			assertFactorsBitIdentical(t, name, seq, par)
			// The parallel factors must solve, not just match.
			b := randRHS(a.N, int64(70+w))
			if r := residual(a, par.Solve(b), b); r > 1e-8 {
				t.Fatalf("%s workers=%d: residual %g", name, w, r)
			}
		}
	}
}

func TestFactorizeHostBitIdenticalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		a := sparse.RandomSparse(n, 1+rng.Intn(3), seed)
		sym := Analyze(a, AnalyzeOptions{Supernode: supernode.Options{MaxBlock: 6, Amalgamate: 3}})
		seq, err := FactorizeSeq(a, sym)
		if err != nil {
			return true // singular instances are covered below
		}
		w := 2 + rng.Intn(7)
		par, err := FactorizeHost(a, sym, w)
		if err != nil {
			return false
		}
		if seq.Fl != par.Fl {
			return false
		}
		for m := range seq.Piv {
			if seq.Piv[m] != par.Piv[m] {
				return false
			}
		}
		for k := range seq.BM.Diag {
			for i, v := range seq.BM.Diag[k].Data {
				if par.BM.Diag[k].Data[i] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestFactorizeHostSingular: a numerically singular matrix must come back as
// an error from the parallel driver too (workers abort cleanly), not a hang
// or a panic.
func TestFactorizeHostSingular(t *testing.T) {
	a := sparse.Dense(30, 9)
	// Zero out column 7's values: structurally full, numerically singular.
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for p, c := range cols {
			if c == 7 {
				vals[p] = 0
			}
		}
	}
	sym := Analyze(a, AnalyzeOptions{SkipOrdering: true, Supernode: supernode.Options{MaxBlock: 6}})
	if _, err := FactorizeSeq(a, sym); err == nil {
		t.Fatal("sequential driver accepted a singular matrix")
	}
	for _, w := range []int{2, 4} {
		_, err := FactorizeHost(a, sym, w)
		if err == nil {
			t.Fatalf("workers=%d: parallel driver accepted a singular matrix", w)
		}
		if !strings.Contains(err.Error(), "singular") {
			t.Fatalf("workers=%d: unexpected error %v", w, err)
		}
	}
}

// TestFactorizeHostWorkerClamp: more workers than tasks must not deadlock.
func TestFactorizeHostWorkerClamp(t *testing.T) {
	a := sparse.Grid2D(3, 3, false, sparse.GenOptions{Seed: 64})
	sym := Analyze(a, AnalyzeOptions{Supernode: supernode.Options{MaxBlock: 4}})
	par, err := FactorizeHost(a, sym, 64)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(a.N, 65)
	if r := residual(a, par.Solve(b), b); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}
