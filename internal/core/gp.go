// Package core implements the factorization algorithms of S*: the sequential
// partitioned sparse LU with partial pivoting of Figs. 6-8, the 1D
// compute-ahead and graph-scheduled parallel codes, the 2D synchronous and
// asynchronous codes of Figs. 12-15, triangular solvers, and the baselines
// the paper compares against (a Gilbert–Peierls left-looking LU with dynamic
// symbolic factorization standing in for SuperLU, and dense GEPP).
package core

import (
	"fmt"
	"math"

	"sstar/internal/sparse"
)

// GPFactors holds the result of the Gilbert–Peierls factorization:
// (P A) = L U with L unit lower triangular. L and U are stored by column;
// row indices inside L/U refer to *pivot positions* (post-permutation).
type GPFactors struct {
	N     int
	LPtr  []int
	LInd  []int32
	LVal  []float64
	UPtr  []int
	UInd  []int32
	UVal  []float64
	PRow  []int // PRow[i] = pivot position assigned to original row i
	Flops int64 // multiply-add + divide count of the numeric factorization
	fillL int   // nnz(L) including unit diagonal
	fillU int   // nnz(U) including diagonal
}

// NnzL returns nnz(L) including the unit diagonal.
func (f *GPFactors) NnzL() int { return f.fillL }

// NnzU returns nnz(U) including the diagonal.
func (f *GPFactors) NnzU() int { return f.fillU }

// NnzTotal returns nnz(L+U) counting the diagonal once — the dynamic-fill
// statistic the paper's Table 1 takes from SuperLU.
func (f *GPFactors) NnzTotal() int { return f.fillL + f.fillU - f.N }

// GPFactorize computes a sparse LU factorization with partial pivoting using
// the Gilbert–Peierls left-looking algorithm with dynamic (on-the-fly)
// symbolic factorization. This is the algorithmic core of SuperLU (minus
// supernodes) and provides the exact dynamic fill and operation counts the
// experiments use as baselines and MFLOPS denominators.
//
// pivotTol in (0,1] controls threshold pivoting; 1.0 is classical partial
// pivoting (always take the largest magnitude).
func GPFactorize(a *sparse.CSR, pivotTol float64) (*GPFactors, error) {
	n := a.N
	if n != a.M {
		return nil, fmt.Errorf("core: matrix must be square, got %dx%d", n, a.M)
	}
	if pivotTol <= 0 || pivotTol > 1 {
		pivotTol = 1
	}
	ac := a.ToCSC()
	f := &GPFactors{
		N:    n,
		LPtr: make([]int, n+1),
		UPtr: make([]int, n+1),
		PRow: make([]int, n),
	}
	pinv := f.PRow
	for i := range pinv {
		pinv[i] = -1
	}
	x := make([]float64, n)   // dense accumulator
	xi := make([]int32, 0, n) // pattern of x (original row ids)
	stack := make([]int32, n) // DFS stack
	pstack := make([]int, n)  // per-frame column cursor
	marked := make([]int, n)  // DFS marks, stamped by column
	for i := range marked {
		marked[i] = -1
	}
	for j := 0; j < n; j++ {
		// Symbolic: depth-first search from the rows of A(:,j) through the
		// columns of L already computed, producing a topological order of
		// the reachable pivotal rows in xi (reverse DFS finish order).
		xi = xi[:0]
		rows, vals := ac.Col(j)
		for _, r := range rows {
			if marked[r] == j {
				continue
			}
			// Iterative DFS from r.
			top := 0
			stack[0] = int32(r)
			pstack[0] = 0
			marked[r] = j
			for top >= 0 {
				node := stack[top]
				pcol := pinv[node]
				if pcol < 0 {
					// Non-pivotal row: leaf.
					xi = append(xi, node)
					top--
					continue
				}
				lo, hi := f.LPtr[pcol], f.LPtr[pcol+1]
				cursor := pstack[top]
				advanced := false
				for k := lo + cursor; k < hi; k++ {
					child := f.LInd[k]
					if marked[child] != j {
						marked[child] = j
						pstack[top] = k - lo + 1
						top++
						stack[top] = child
						pstack[top] = 0
						advanced = true
						break
					}
				}
				if !advanced {
					xi = append(xi, node)
					top--
				}
			}
		}
		// xi is in reverse topological order (children first); numeric
		// elimination must process pivotal entries parents-first, i.e.
		// iterate xi from the END.
		for _, r := range xi {
			x[r] = 0
		}
		for k, r := range rows {
			x[r] = vals[k]
		}
		for idx := len(xi) - 1; idx >= 0; idx-- {
			r := xi[idx]
			pcol := pinv[r]
			if pcol < 0 {
				continue
			}
			xr := x[r]
			if xr == 0 {
				continue
			}
			lo, hi := f.LPtr[pcol], f.LPtr[pcol+1]
			for k := lo; k < hi; k++ {
				x[f.LInd[k]] -= f.LVal[k] * xr
				f.Flops += 2
			}
		}
		// Partial pivoting among the non-pivotal rows of x.
		var pivRow int32 = -1
		pivAbs := 0.0
		var diagRow int32 = -1
		for _, r := range xi {
			if pinv[r] >= 0 {
				continue
			}
			if v := math.Abs(x[r]); v > pivAbs {
				pivAbs = v
				pivRow = r
			}
			if int(r) == j {
				diagRow = r
			}
		}
		if pivRow < 0 || pivAbs == 0 {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, j)
		}
		// Threshold pivoting: prefer the diagonal when it is large enough.
		if diagRow >= 0 && math.Abs(x[diagRow]) >= pivotTol*pivAbs {
			pivRow = diagRow
		}
		pivVal := x[pivRow]
		pinv[pivRow] = j
		// Emit U column j (pivotal rows) and L column j (non-pivotal).
		for _, r := range xi {
			if p := pinv[r]; p >= 0 && r != pivRow {
				if x[r] != 0 {
					f.UInd = append(f.UInd, int32(p))
					f.UVal = append(f.UVal, x[r])
				}
			}
		}
		f.UInd = append(f.UInd, int32(j))
		f.UVal = append(f.UVal, pivVal)
		f.UPtr[j+1] = len(f.UInd)
		for _, r := range xi {
			if pinv[r] < 0 && x[r] != 0 {
				f.LInd = append(f.LInd, r)
				f.LVal = append(f.LVal, x[r]/pivVal)
				f.Flops++
			}
		}
		f.LPtr[j+1] = len(f.LInd)
	}
	f.fillL = len(f.LInd) + n // plus unit diagonal
	f.fillU = len(f.UInd)
	return f, nil
}

// Solve solves A x = b using the computed factors, overwriting nothing;
// returns x.
func (f *GPFactors) Solve(b []float64) []float64 {
	n := f.N
	y := make([]float64, n)
	// y = P b: row i of A went to pivot position PRow[i].
	for i := 0; i < n; i++ {
		y[f.PRow[i]] = b[i]
	}
	// Forward solve L z = y (unit diagonal; L stored by column with
	// original row ids — translate through PRow).
	for j := 0; j < n; j++ {
		yj := y[j]
		if yj == 0 {
			continue
		}
		for k := f.LPtr[j]; k < f.LPtr[j+1]; k++ {
			y[f.PRow[f.LInd[k]]] -= f.LVal[k] * yj
		}
	}
	// Backward solve U x = z. U columns hold pivot-position row indices;
	// the diagonal entry of column j is the last one appended.
	for j := n - 1; j >= 0; j-- {
		dk := f.UPtr[j+1] - 1
		y[j] /= f.UVal[dk]
		xj := y[j]
		for k := f.UPtr[j]; k < dk; k++ {
			y[f.UInd[k]] -= f.UVal[k] * xj
		}
	}
	return y
}
