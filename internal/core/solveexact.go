package core

import "fmt"

// SolveManyExact solves A X = B for nrhs right-hand sides stored column-major
// in b, with a guarantee the blocked SolveMany does not make: every solution
// column is bitwise identical to Solve on that column alone.
//
// SolveMany reaches the BLAS-3 kernels by reorganizing the sweeps into panel
// TRSM/GEMM calls, whose register-tiled accumulation order differs from the
// single-vector sweep — numerically equivalent, not bit-equal. SolveManyExact
// instead replays Solve's exact per-column operation sequence on all columns
// in lockstep: the loop structure (panels, interchanges, L/U blocks, dot
// accumulation order) is copied from Solve with the column dimension added as
// the innermost stride-1 loop. Per column the floating-point operations are
// the same ops in the same order, hence the same bits; across columns the
// factor blocks are streamed through the cache once per batch instead of once
// per right-hand side, which is where the batch throughput comes from (the
// triangular solves are memory-bound).
//
// This is the kernel behind the server's solve coalescing: merging concurrent
// single-RHS solve requests into one batched call must be invisible to every
// client, bit for bit.
func (f *Factorization) SolveManyExact(b []float64, nrhs int) ([]float64, error) {
	n := f.Sym.N
	if nrhs < 1 {
		return nil, fmt.Errorf("core: SolveManyExact needs nrhs >= 1, got %d", nrhs)
	}
	if len(b) != n*nrhs {
		return nil, fmt.Errorf("core: SolveManyExact rhs length %d, want %d", len(b), n*nrhs)
	}
	if nrhs == 1 {
		x := make([]float64, n)
		copy(x, f.Solve(b))
		return x, nil
	}
	p := f.Sym.Partition
	bm := f.BM
	w := nrhs
	// Row-major n × w working panel; row i holds all w columns' entry i, so
	// the innermost per-column loops below run stride-1.
	y := make([]float64, n*w)
	for i := 0; i < n; i++ {
		dst := y[f.Sym.RowPerm[i]*w : f.Sym.RowPerm[i]*w+w]
		for q := 0; q < w; q++ {
			dst[q] = b[q*n+i]
		}
	}
	acc := make([]float64, w)
	// Forward sweep — Solve's loop with the column dimension innermost.
	for k := 0; k < p.NB; k++ {
		start, end := p.Start[k], p.Start[k+1]
		s := end - start
		for m := start; m < end; m++ {
			if t := int(f.Piv[m]); t != m {
				ym, yt := y[m*w:m*w+w], y[t*w:t*w+w]
				for q := range ym {
					ym[q], yt[q] = yt[q], ym[q]
				}
			}
		}
		d := bm.Diag[k]
		// TrsvLowerUnit on the panel: b[i] -= L[i][p]*b[p] in p order.
		for i := 1; i < s; i++ {
			row := d.Data[i*s : i*s+i]
			yi := y[(start+i)*w : (start+i)*w+w]
			copy(acc, yi)
			for pc, v := range row {
				yp := y[(start+pc)*w : (start+pc)*w+w]
				for q := 0; q < w; q++ {
					acc[q] -= v * yp[q]
				}
			}
			copy(yi, acc)
		}
		// L-block elimination: y[gr] -= Dot(row, y[start:end]), dot
		// accumulated left to right exactly like xblas.Dot.
		for _, lb := range bm.LCol[k] {
			nc := len(lb.Cols)
			for r, gr := range lb.Rows {
				row := lb.Data[r*nc : (r+1)*nc]
				for q := 0; q < w; q++ {
					acc[q] = 0
				}
				for pc, v := range row {
					yp := y[(start+pc)*w : (start+pc)*w+w]
					for q := 0; q < w; q++ {
						acc[q] += v * yp[q]
					}
				}
				dst := y[int(gr)*w : int(gr)*w+w]
				for q := 0; q < w; q++ {
					dst[q] -= acc[q]
				}
			}
		}
	}
	// Backward sweep.
	for k := p.NB - 1; k >= 0; k-- {
		start, end := p.Start[k], p.Start[k+1]
		s := end - start
		for _, ub := range bm.URow[k] {
			nc := len(ub.Cols)
			for r := 0; r < s; r++ {
				row := ub.Data[r*nc : (r+1)*nc]
				for q := 0; q < w; q++ {
					acc[q] = 0
				}
				for t, c := range ub.Cols {
					yc := y[int(c)*w : int(c)*w+w]
					v := row[t]
					for q := 0; q < w; q++ {
						acc[q] += v * yc[q]
					}
				}
				dst := y[(start+r)*w : (start+r)*w+w]
				for q := 0; q < w; q++ {
					dst[q] -= acc[q]
				}
			}
		}
		// TrsvUpper on the panel: b[i] = (b[i] - Σ U[i][p]*b[p]) / U[i][i].
		d := bm.Diag[k]
		for i := s - 1; i >= 0; i-- {
			row := d.Data[i*s : i*s+s]
			yi := y[(start+i)*w : (start+i)*w+w]
			copy(acc, yi)
			for pc := i + 1; pc < s; pc++ {
				v := row[pc]
				yp := y[(start+pc)*w : (start+pc)*w+w]
				for q := 0; q < w; q++ {
					acc[q] -= v * yp[q]
				}
			}
			div := row[i]
			for q := 0; q < w; q++ {
				yi[q] = acc[q] / div
			}
		}
	}
	// Transpose out, undoing the column permutation.
	x := make([]float64, n*w)
	for j := 0; j < n; j++ {
		src := y[f.Sym.ColPerm[j]*w : f.Sym.ColPerm[j]*w+w]
		for q := 0; q < w; q++ {
			x[q*n+j] = src[q]
		}
	}
	return x, nil
}
