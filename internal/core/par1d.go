package core

import (
	"fmt"

	"sstar/internal/machine"
	"sstar/internal/sched"
	"sstar/internal/sparse"
	"sstar/internal/supernode"
	"sstar/internal/taskgraph"
)

// Message tag kinds used by the parallel codes.
const (
	tagPanel1D uint8 = iota + 1
	tagPanelRow2D
	tagPanelCol2D
	tagPivCand2D
	tagPivBcast2D
	tagSwap2D
)

// ParResult is the outcome of a parallel factorization run: the factors, the
// modeled parallel time and communication statistics.
type ParResult struct {
	Fact         *Factorization
	ParallelTime float64
	SentBytes    int64
	SentMessages int64
	BufferHigh   int
	LoadBalance  float64
	// BusySeconds is each processor's charged compute time (excluding
	// blocked waits) — busy/parallel time is the utilization.
	BusySeconds []float64
	// Traces holds per-processor execution spans when tracing was
	// requested (see WithTracing).
	Traces [][]machine.TraceEvent
}

// RunOption tweaks a parallel run.
type RunOption func(*runConfig)

type runConfig struct{ trace bool }

// WithTracing records per-task execution spans on every simulated processor;
// the result's Traces field then holds a Gantt-chart-ready timeline.
func WithTracing() RunOption { return func(c *runConfig) { c.trace = true } }

func applyRunOptions(opts []RunOption) runConfig {
	var c runConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// singularErr carries a singular-pivot failure out of a machine run.
type singularErr struct{ err error }

func runMachine(m *machine.Machine, body func(p *machine.Proc)) (pt float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(singularErr); ok {
				err = se.err
				return
			}
			panic(r)
		}
	}()
	pt = m.Run(body)
	return pt, nil
}

// chargeDelta charges the difference of a workspace's flop tally since prev
// to the processor and returns the new tally.
func chargeDelta(p *machine.Proc, ws *Workspace, prev Flops) Flops {
	cur := ws.Fl
	p.ChargeFlops(cur.B1-prev.B1, cur.B2-prev.B2, cur.B3-prev.B3, cur.Sw-prev.Sw)
	return cur
}

// panelBytes is the broadcast payload of Factor(k): pivot sequence, diagonal
// block and the L blocks of column k.
func panelBytes(p *supernode.Partition, k int) int {
	s := p.Size(k)
	return 8 * (s + s*s + len(p.LRows[k])*s)
}

// Factorize1D runs a 1D-mapped parallel factorization on nproc simulated
// processors, following the given schedule (compute-ahead or graph-scheduled;
// see package sched). Every processor executes its task list in order; panel
// broadcasts are the only communication, exactly as in the paper's 1D codes.
func Factorize1D(a *sparse.CSR, sym *Symbolic, model machine.Model, s *sched.Schedule, opts ...RunOption) (*ParResult, error) {
	cfg := applyRunOptions(opts)
	work := sym.PermutedMatrix(a)
	bm := supernode.NewBlockMatrix(sym.Partition, work)
	p := sym.Partition
	g := taskgraph.Build(p)
	piv := make([]int32, sym.N)
	mach := machine.New(s.P, model)
	if cfg.trace {
		mach.EnableTracing()
	}

	// Destination processors of each Factor(k) broadcast: owners of any
	// Update(k, j), excluding the panel owner itself.
	dests := make([][]int, p.NB)
	for k := 0; k < p.NB; k++ {
		seen := make(map[int]bool)
		for _, jb := range p.UBlocks[k] {
			o := s.Owner[int(jb)]
			if o != s.Owner[k] && !seen[o] {
				seen[o] = true
				dests[k] = append(dests[k], o)
			}
		}
		sortInts(dests[k])
	}

	workspaces := make([]*Workspace, s.P)
	for i := range workspaces {
		workspaces[i] = NewWorkspace(bm)
	}

	pt, err := runMachine(mach, func(proc *machine.Proc) {
		ws := workspaces[proc.ID()]
		var prev Flops
		received := make([]bool, p.NB)
		for _, id := range s.Order[proc.ID()] {
			t := g.Tasks[id]
			proc.ChargeTask()
			start := proc.Clock()
			switch t.Kind {
			case taskgraph.KindFactor:
				if err := FactorPanel(bm, t.K, piv, sym.pivotTol(), ws); err != nil {
					panic(singularErr{err})
				}
				prev = chargeDelta(proc, ws, prev)
				if len(dests[t.K]) > 0 {
					proc.Multicast(dests[t.K], machine.Tag{Kind: tagPanel1D, K: t.K}, panelBytes(p, t.K), nil)
				}
			case taskgraph.KindUpdate:
				if s.Owner[t.K] != proc.ID() && !received[t.K] {
					proc.Recv(machine.Tag{Src: s.Owner[t.K], Kind: tagPanel1D, K: t.K})
					received[t.K] = true
				}
				UpdatePanelPair(bm, t.K, t.J, piv, ws)
				prev = chargeDelta(proc, ws, prev)
			}
			proc.TraceSpan(t.Label(), start)
		}
	})
	if err != nil {
		return nil, err
	}
	var fl Flops
	var bytes, msgs int64
	for i := 0; i < s.P; i++ {
		fl.Add(workspaces[i].Fl)
		bytes += mach.Proc(i).SentBytes
		msgs += mach.Proc(i).SentMessages
	}
	w := g.Weights(model.Blas1Rate, model.Blas2Rate, model.Blas3Rate, model.SwapRate, model.TaskOverhead)
	lb := sched.LoadBalance(g, w, func(t *taskgraph.Task) int { return s.Owner[t.J] }, s.P)
	busy := make([]float64, s.P)
	for i := range busy {
		busy[i] = mach.Proc(i).BusySeconds()
	}
	res := &ParResult{
		Fact:         &Factorization{Sym: sym, BM: bm, Piv: piv, Fl: fl},
		ParallelTime: pt,
		SentBytes:    bytes,
		SentMessages: msgs,
		BufferHigh:   mach.BufferHighWater(),
		LoadBalance:  lb,
		BusySeconds:  busy,
	}
	if cfg.trace {
		res.Traces = mach.Traces()
	}
	return res, nil
}

// ScheduleCA builds the compute-ahead schedule for a symbolic factorization.
func ScheduleCA(sym *Symbolic, nproc int) *sched.Schedule {
	g := taskgraph.Build(sym.Partition)
	return sched.ComputeAhead(g, nproc)
}

// ScheduleRAPID builds the graph schedule for a symbolic factorization under
// a machine model: it generates both a communication-aware critical-path list
// schedule (ETF) and a load-balance-first LPT schedule with bottom-level task
// ordering, simulates both with blocking semantics, and keeps the faster —
// mirroring how the RAPID system executes the best schedule its scheduler
// finds.
func ScheduleRAPID(sym *Symbolic, nproc int, model machine.Model) *sched.Schedule {
	g := taskgraph.Build(sym.Partition)
	w := g.Weights(model.Blas1Rate, model.Blas2Rate, model.Blas3Rate, model.SwapRate, model.TaskOverhead)
	etf := sched.ListSchedule(g, nproc, w, model.TransferSeconds)
	lpt := sched.LPTSchedule(g, nproc, w)
	return sched.Best(g, w, model.TransferSeconds, etf, lpt)
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// errNB guards against empty partitions in parallel drivers.
func errNB(p *supernode.Partition) error {
	if p.NB == 0 {
		return fmt.Errorf("core: empty partition")
	}
	return nil
}

// scheduleGraph exposes the task graph used by the schedulers (test and
// tooling helper).
func scheduleGraph(sym *Symbolic) *taskgraph.Graph { return taskgraph.Build(sym.Partition) }
