package core

import (
	"fmt"
	"math"

	"sstar/internal/xblas"
)

// solveManyPanel is the RHS panel width of the blocked SolveMany: wide
// enough to keep the GEMM micro-kernel busy, narrow enough that the
// row-major working panel (n × solveManyPanel) stays cache-friendly.
const solveManyPanel = 32

// SolveMany solves A X = B for nrhs right-hand sides stored column-major in
// b (b[j*n:(j+1)*n] is the j-th column). The right-hand sides are processed
// in panels of up to solveManyPanel columns through the packed BLAS-3 path:
// each factor block is applied to the whole panel at once (TRSM on the
// diagonal blocks, GEMM/GemmScatter for the off-diagonal couplings), so the
// factor traversal and the kernel-launch overheads amortize across columns
// instead of re-running the BLAS-2 single-vector sweep per RHS.
func (f *Factorization) SolveMany(b []float64, nrhs int) ([]float64, error) {
	n := f.Sym.N
	if len(b) != n*nrhs {
		return nil, fmt.Errorf("core: SolveMany rhs length %d, want %d", len(b), n*nrhs)
	}
	if nrhs == 1 {
		// Single column: the vector sweep has less overhead (and keeps
		// SolveMany(b, 1) bit-identical to Solve(b)).
		x := make([]float64, n)
		copy(x, f.Solve(b))
		return x, nil
	}
	x := make([]float64, n*nrhs)
	ws := newSolvePanelScratch(f, min(nrhs, solveManyPanel))
	for j0 := 0; j0 < nrhs; j0 += solveManyPanel {
		w := min(solveManyPanel, nrhs-j0)
		f.solvePanel(b[j0*n:(j0+w)*n], x[j0*n:(j0+w)*n], w, ws)
	}
	return x, nil
}

// solvePanelScratch holds the reusable buffers of one SolveMany call: the
// row-major working panel, the gather buffer of the backward sweep, and the
// scatter maps of the forward GEMM updates.
type solvePanelScratch struct {
	y        []float64 // n × w working panel, row-major
	gat      []float64 // gathered U-block rows, maxUCols × w
	rowPos   []int     // L-block row scatter map
	colIdent []int     // identity column map (the panel is dense in RHS)
}

func newSolvePanelScratch(f *Factorization, w int) *solvePanelScratch {
	maxLRows, maxUCols := 0, 0
	for _, row := range f.BM.URow {
		for _, ub := range row {
			maxUCols = max(maxUCols, len(ub.Cols))
		}
	}
	for _, col := range f.BM.LCol {
		for _, lb := range col {
			maxLRows = max(maxLRows, len(lb.Rows))
		}
	}
	ws := &solvePanelScratch{
		y:        make([]float64, f.Sym.N*w),
		gat:      make([]float64, maxUCols*w),
		rowPos:   make([]int, maxLRows),
		colIdent: make([]int, w),
	}
	for q := range ws.colIdent {
		ws.colIdent[q] = q
	}
	return ws
}

// solvePanel runs the blocked forward/backward sweeps on one w-wide RHS
// panel: bpanel and xpanel are column-major n × w (slices of the caller's B
// and X), the working panel is row-major so every panel operation is a
// contiguous BLAS-3 call.
func (f *Factorization) solvePanel(bpanel, xpanel []float64, w int, ws *solvePanelScratch) {
	n := f.Sym.N
	p := f.Sym.Partition
	bm := f.BM
	y := ws.y[:n*w]
	// Transpose in, applying the analyze-phase row permutation: row i of A
	// is row RowPerm[i] of the working matrix.
	for i := 0; i < n; i++ {
		dst := y[f.Sym.RowPerm[i]*w:]
		for q := 0; q < w; q++ {
			dst[q] = bpanel[q*n+i]
		}
	}
	// Forward sweep: replay the panel interchanges on all w columns, solve
	// against the unit-lower diagonal block, then eliminate the L blocks
	// below through the fused scatter GEMM (the L rows land on scattered
	// global rows; the RHS dimension is dense, hence the identity map).
	cols := ws.colIdent[:w]
	for k := 0; k < p.NB; k++ {
		start, end := p.Start[k], p.Start[k+1]
		s := end - start
		for m := start; m < end; m++ {
			if t := int(f.Piv[m]); t != m {
				a, b := y[m*w:m*w+w], y[t*w:t*w+w]
				for q := range a {
					a[q], b[q] = b[q], a[q]
				}
			}
		}
		xblas.TrsmLowerUnitLeft(s, w, bm.Diag[k].Data, s, y[start*w:], w)
		for _, lb := range bm.LCol[k] {
			m := len(lb.Rows)
			rp := ws.rowPos[:m]
			for r, gr := range lb.Rows {
				rp[r] = int(gr)
			}
			xblas.GemmScatter(m, w, s, lb.Data, len(lb.Cols), y[start*w:], w, y, w, rp, cols)
		}
	}
	// Backward sweep: gather each U block's solved rows into a contiguous
	// panel, subtract with one GEMM, then the upper-triangular TRSM on the
	// diagonal block.
	for k := p.NB - 1; k >= 0; k-- {
		start := p.Start[k]
		s := p.Start[k+1] - start
		for _, ub := range bm.URow[k] {
			nc := len(ub.Cols)
			g := ws.gat[:nc*w]
			for t, c := range ub.Cols {
				copy(g[t*w:t*w+w], y[int(c)*w:int(c)*w+w])
			}
			xblas.Gemm(s, w, nc, ub.Data, nc, g, w, y[start*w:], w)
		}
		xblas.TrsmUpperLeft(s, w, bm.Diag[k].Data, s, y[start*w:], w)
	}
	// Transpose out, undoing the column permutation: working column
	// ColPerm[j] is variable j.
	for j := 0; j < n; j++ {
		src := y[f.Sym.ColPerm[j]*w:]
		for q := 0; q < w; q++ {
			xpanel[q*n+j] = src[q]
		}
	}
}

// SolveTranspose solves Aᵀ x = b using the same factors.
//
// The numeric phase computes U = M · (P_c A_w) with M the composition of
// per-panel interchanges and eliminations (A_w the ordered working matrix),
// so Aᵀ x = b unravels as: solve Uᵀ w = b' (a forward sweep over the U rows
// transposed), then apply Mᵀ = P_1ᵀ L_1⁻ᵀ … P_NBᵀ L_NB⁻ᵀ from the last panel
// backwards, undoing each panel's elimination (transposed) and then its
// interchanges in reverse order.
func (f *Factorization) SolveTranspose(b []float64) []float64 {
	n := f.Sym.N
	p := f.Sym.Partition
	bm := f.BM
	y := make([]float64, n)
	// Aᵀ's row space is A's column space: apply the column permutation.
	for j := 0; j < n; j++ {
		y[f.Sym.ColPerm[j]] = b[j]
	}
	// Forward: solve Uᵀ w = y, panel by panel. Row-block k of U couples
	// panel k (diagonal) with later column blocks; transposed, panel k's
	// result feeds forward into those blocks' positions.
	for k := 0; k < p.NB; k++ {
		start, end := p.Start[k], p.Start[k+1]
		s := end - start
		d := bm.Diag[k]
		// wₖ = U_kkᵀ⁻¹ yₖ : lower-triangular solve with the transpose of
		// the upper part of the diagonal block.
		for i := 0; i < s; i++ {
			sum := y[start+i]
			for r := 0; r < i; r++ {
				sum -= d.Data[r*s+i] * y[start+r]
			}
			y[start+i] = sum / d.Data[i*s+i]
		}
		// Propagate through the transposed U blocks of row k.
		for _, ub := range bm.URow[k] {
			nc := len(ub.Cols)
			for q, c := range ub.Cols {
				sum := 0.0
				for r := 0; r < s; r++ {
					sum += ub.Data[r*nc+q] * y[start+r]
				}
				y[c] -= sum
			}
		}
	}
	// Backward: apply Mᵀ from panel NB-1 down to 0. For each panel:
	// zₚ := L_dᵀ⁻¹ (zₚ − L_bᵀ z_below), then undo the interchanges in
	// reverse column order.
	for k := p.NB - 1; k >= 0; k-- {
		start, end := p.Start[k], p.Start[k+1]
		s := end - start
		// zₚ -= L_bᵀ z_below (the L blocks of column k, transposed).
		for _, lb := range bm.LCol[k] {
			nc := len(lb.Cols)
			for r, gr := range lb.Rows {
				zr := y[gr]
				if zr == 0 {
					continue
				}
				row := lb.Data[r*nc : (r+1)*nc]
				for q := range row {
					y[start+q] -= row[q] * zr
				}
			}
		}
		// zₚ := L_dᵀ⁻¹ zₚ with the unit-lower part of the diagonal block
		// transposed (a unit *upper* triangular solve).
		d := bm.Diag[k]
		for i := s - 1; i >= 0; i-- {
			sum := y[start+i]
			for r := i + 1; r < s; r++ {
				sum -= d.Data[r*s+i] * y[start+r]
			}
			y[start+i] = sum
		}
		// Undo the panel's interchanges in reverse order.
		for m := end - 1; m >= start; m-- {
			if t := int(f.Piv[m]); t != m {
				y[m], y[t] = y[t], y[m]
			}
		}
	}
	// Undo the row permutation: Aᵀ's column space is A's row space.
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = y[f.Sym.RowPerm[i]]
	}
	return x
}

// Stats summarizes a completed numeric factorization.
type FactStats struct {
	// Interchanges counts the columns whose pivot differed from the
	// diagonal.
	Interchanges int
	// GrowthFactor is max |U| / max |A_w|, the classical GEPP stability
	// monitor (small is good; 2^k worst case).
	GrowthFactor float64
	// Blas3Fraction is the share of floating-point work executed by the
	// BLAS-3 kernels (the paper measures ~0.64 for S*).
	Blas3Fraction float64
	// StorageEntries is the allocated factor storage.
	StorageEntries int64
}

// Stats computes summary statistics of the factorization. maxA must be the
// largest absolute value of the *original* matrix (callers have it from
// assembly; pass 0 to report a growth factor of 0).
func (f *Factorization) Stats(maxA float64) FactStats {
	st := FactStats{StorageEntries: f.BM.StorageEntries()}
	for m, t := range f.Piv {
		if int(t) != m {
			st.Interchanges++
		}
	}
	if total := f.Fl.Total(); total > 0 {
		st.Blas3Fraction = float64(f.Fl.B3) / float64(total)
	}
	if maxA > 0 {
		maxU := 0.0
		p := f.Sym.Partition
		for k := 0; k < p.NB; k++ {
			d := f.BM.Diag[k]
			s := p.Size(k)
			for i := 0; i < s; i++ {
				for j := i; j < s; j++ {
					maxU = math.Max(maxU, math.Abs(d.Data[i*s+j]))
				}
			}
			for _, ub := range f.BM.URow[k] {
				for _, v := range ub.Data {
					maxU = math.Max(maxU, math.Abs(v))
				}
			}
		}
		st.GrowthFactor = maxU / maxA
	}
	return st
}

// MaxAbs returns the largest absolute value of the matrix — the growth-factor
// reference.
func MaxAbs(vals []float64) float64 {
	m := 0.0
	for _, v := range vals {
		m = math.Max(m, math.Abs(v))
	}
	return m
}
