package core

import (
	"fmt"
	"math"

	"sstar/internal/supernode"
	"sstar/internal/xblas"
)

// Flops tallies floating-point work by BLAS level; the machine model charges
// each class at a different rate (DGEMM vs DGEMV vs vector ops), which is the
// distinction the paper's performance analysis is built on.
type Flops struct {
	B1 int64 // vector ops: scaling, pivot search comparisons are excluded
	B2 int64 // matrix-vector class: the within-panel eliminations of Factor()
	B3 int64 // matrix-matrix class: TRSM scalings and GEMM updates
	Sw int64 // row-interchange data movement, in elements
}

// Add accumulates other into f.
func (f *Flops) Add(other Flops) {
	f.B1 += other.B1
	f.B2 += other.B2
	f.B3 += other.B3
	f.Sw += other.Sw
}

// Total returns the total floating point operations (excluding swaps).
func (f Flops) Total() int64 { return f.B1 + f.B2 + f.B3 }

// Workspace holds per-worker scratch so the kernels allocate nothing on the
// hot path. Each (simulated) processor owns one. The rowPos/colPos buffers
// back the gather/scatter maps of UpdateBlock's fused update path; the
// drivers pre-size them from the block matrix via NewWorkspace so the zero
// allocation guarantee holds from the first task on.
type Workspace struct {
	rowPos []int
	colPos []int
	Fl     Flops
}

// NewWorkspace returns a workspace pre-sized for the largest block of bm: the
// scatter maps fit every L-block row set and every target-block column set
// without growing mid-run. A zero Workspace{} also works (buffers grow on
// first use); the drivers use NewWorkspace to keep the hot path allocation
// free.
func NewWorkspace(bm *supernode.BlockMatrix) *Workspace {
	maxR, maxC := 0, 0
	note := func(b *supernode.Block) {
		maxR = max(maxR, len(b.Rows))
		maxC = max(maxC, len(b.Cols))
	}
	for _, d := range bm.Diag {
		note(d)
	}
	for _, col := range bm.LCol {
		for _, b := range col {
			note(b)
		}
	}
	for _, row := range bm.URow {
		for _, b := range row {
			note(b)
		}
	}
	return &Workspace{rowPos: make([]int, maxR), colPos: make([]int, maxC)}
}

func (ws *Workspace) rowScratch(n int) []int {
	if cap(ws.rowPos) < n {
		ws.rowPos = make([]int, n)
	}
	return ws.rowPos[:n]
}

func (ws *Workspace) colScratch(n int) []int {
	if cap(ws.colPos) < n {
		ws.colPos = make([]int, n)
	}
	return ws.colPos[:n]
}

// FactorPanel performs task Factor(k) of Fig. 7 sequentially on the whole
// block column k: for each column of the panel it searches the pivot among
// every storage row of the column (diagonal block rows plus all L blocks),
// swaps the two panel rows, scales the subcolumn and rank-1-updates the rest
// of the panel (the BLAS-1/BLAS-2 part of the algorithm). piv[m] receives the
// global storage row chosen as pivot for column m.
//
// tol in (0,1] selects threshold pivoting: the diagonal candidate wins when
// its magnitude reaches tol times the column maximum; tol = 1 is classical
// partial pivoting.
func FactorPanel(bm *supernode.BlockMatrix, k int, piv []int32, tol float64, ws *Workspace) error {
	p := bm.P
	d := bm.Diag[k]
	s := p.Size(k)
	lblocks := bm.LCol[k]
	start := p.Start[k]
	for mc := 0; mc < s; mc++ {
		m := start + mc
		// Pivot search down column m.
		diagVal := math.Abs(d.Data[mc*s+mc])
		bestVal := diagVal
		bestRow := m
		for r := mc + 1; r < s; r++ {
			if v := math.Abs(d.Data[r*s+mc]); v > bestVal {
				bestVal, bestRow = v, start+r
			}
		}
		for _, lb := range lblocks {
			nc := len(lb.Cols)
			for r := range lb.Rows {
				if v := math.Abs(lb.Data[r*nc+mc]); v > bestVal {
					bestVal, bestRow = v, int(lb.Rows[r])
				}
			}
		}
		if bestVal == 0 {
			return fmt.Errorf("%w: zero pivot at column %d", ErrSingular, m)
		}
		if diagVal >= tol*bestVal {
			bestRow = m // threshold pivoting: keep the diagonal
		}
		piv[m] = int32(bestRow)
		if bestRow != m {
			swapPanelRows(bm, k, m, bestRow, ws)
		}
		// Scale the subcolumn and update the remaining panel columns.
		pivVal := d.Data[mc*s+mc]
		urow := d.Data[mc*s+mc+1 : mc*s+s] // pivot row, panel columns right of m
		for r := mc + 1; r < s; r++ {
			row := d.Data[r*s : r*s+s]
			row[mc] /= pivVal
			xblas.Axpy(-row[mc], urow, row[mc+1:s])
		}
		ws.Fl.B1 += int64(s - mc - 1)
		ws.Fl.B2 += 2 * int64(s-mc-1) * int64(s-mc-1)
		for _, lb := range lblocks {
			nc := len(lb.Cols)
			for r := range lb.Rows {
				row := lb.Data[r*nc : r*nc+nc]
				row[mc] /= pivVal
				xblas.Axpy(-row[mc], urow, row[mc+1:nc])
			}
			ws.Fl.B1 += int64(len(lb.Rows))
			ws.Fl.B2 += 2 * int64(len(lb.Rows)) * int64(s-mc-1)
		}
	}
	return nil
}

// swapPanelRows exchanges the full panel-k rows of global rows m and t
// (both must have storage in block column k; t may sit in the diagonal block
// or in any L block).
func swapPanelRows(bm *supernode.BlockMatrix, k, m, t int, ws *Workspace) {
	a := panelRow(bm, k, m)
	b := panelRow(bm, k, t)
	for i := range a {
		a[i], b[i] = b[i], a[i]
	}
	ws.Fl.Sw += int64(len(a))
}

// panelRow returns the storage slice of global row r within block column k.
func panelRow(bm *supernode.BlockMatrix, k, r int) []float64 {
	p := bm.P
	rb := p.BlockOf[r]
	if rb == k {
		return bm.Diag[k].RowSlice(r)
	}
	blk := bm.BlockAt(rb, k)
	if blk == nil {
		panic(fmt.Sprintf("core: row %d has no storage in block column %d", r, k))
	}
	rs := blk.RowSlice(r)
	if rs == nil {
		panic(fmt.Sprintf("core: row %d missing from block (%d,%d)", r, blk.I, blk.J))
	}
	return rs
}

// ApplyPivots applies the panel-k pivot sequence to block column j > k (the
// delayed row interchange of Update / ScaleSwap, Fig. 8 line 02). Swapping is
// restricted to the storage slots the two rows share; values at asymmetric
// slots are structural zeros by the static-structure argument, so nothing is
// lost.
func ApplyPivots(bm *supernode.BlockMatrix, k, j int, piv []int32, ws *Workspace) {
	p := bm.P
	for m := p.Start[k]; m < p.Start[k+1]; m++ {
		t := int(piv[m])
		if t == m {
			continue
		}
		SwapRowsInBlockColumn(bm, j, m, t, ws)
	}
}

// SwapRowsInBlockColumn exchanges the common storage slots of global rows m
// and t within block column j.
func SwapRowsInBlockColumn(bm *supernode.BlockMatrix, j, m, t int, ws *Workspace) {
	bm1 := bm.BlockAt(bm.P.BlockOf[m], j)
	bm2 := bm.BlockAt(bm.P.BlockOf[t], j)
	if bm1 == nil || bm2 == nil {
		return // one of the rows has no structure in this block column
	}
	r1 := bm1.RowSlice(m)
	r2 := bm2.RowSlice(t)
	if r1 == nil || r2 == nil {
		return
	}
	if &bm1.Cols[0] == &bm2.Cols[0] || equalCols(bm1.Cols, bm2.Cols) {
		for i := range r1 {
			r1[i], r2[i] = r2[i], r1[i]
		}
		ws.Fl.Sw += int64(len(r1))
		return
	}
	// General case: walk the two sorted column lists and swap matches.
	c1, c2 := bm1.Cols, bm2.Cols
	i, q := 0, 0
	for i < len(c1) && q < len(c2) {
		switch {
		case c1[i] < c2[q]:
			i++
		case c1[i] > c2[q]:
			q++
		default:
			r1[i], r2[q] = r2[q], r1[i]
			ws.Fl.Sw++
			i++
			q++
		}
	}
}

func equalCols(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ScaleU computes U_kj = L_kk^{-1} U_kj (Fig. 8 line 05) with a BLAS-3
// triangular solve against the unit-lower part of the diagonal block.
func ScaleU(bm *supernode.BlockMatrix, k, j int, ws *Workspace) {
	ub := bm.BlockAt(k, j)
	if ub == nil {
		return
	}
	s := bm.P.Size(k)
	nc := len(ub.Cols)
	xblas.TrsmLowerUnitLeft(s, nc, bm.Diag[k].Data, s, ub.Data, nc)
	ws.Fl.B3 += int64(nc) * int64(s) * int64(s-1)
}

// UpdateBlock performs A_ij -= L_ik * U_kj for one target block (Fig. 8
// lines 10-17): a dense multiply of the packed L rows by the packed U
// columns, scattered into the target's packing. When the packings align the
// product lands directly in the target without scratch.
func UpdateBlock(bm *supernode.BlockMatrix, lb, ub *supernode.Block, ws *Workspace) {
	i, j := lb.I, ub.J
	target := bm.BlockAt(i, j)
	if target == nil {
		// Amalgamation padding can pair an L block with a U block whose
		// product rectangle holds no static entries; every contribution
		// is then an exact zero (padding slots never acquire nonzero
		// values) and the whole update can be skipped.
		return
	}
	m := len(lb.Rows)
	kk := len(lb.Cols)
	n := len(ub.Cols)
	if m == 0 || n == 0 {
		return
	}
	ws.Fl.B3 += 2 * int64(m) * int64(n) * int64(kk)
	if equalCols(lb.Rows, target.Rows) && equalCols(ub.Cols, target.Cols) {
		xblas.Gemm(m, n, kk, lb.Data, kk, ub.Data, n, target.Data, len(target.Cols))
		return
	}
	// Fused gather/scatter path: map the product's rows/columns onto the
	// target's packing and let the kernel compute directly into the mapped
	// positions — no scratch zero-fill, no second subtract pass.
	// Rows/columns absent from the target's packing can only receive zero
	// contributions (see above); the -1 map entries make the kernel skip
	// them.
	rowPos := ws.rowScratch(m)
	for r, gr := range lb.Rows {
		rowPos[r] = target.RowPos(int(gr))
	}
	colPos := ws.colScratch(n)
	for q, c := range ub.Cols {
		colPos[q] = target.ColPos(int(c))
	}
	xblas.GemmScatter(m, n, kk, lb.Data, kk, ub.Data, n, target.Data, len(target.Cols), rowPos, colPos)
}

// UpdatePanelPair runs the whole Update(k, j) task of Fig. 8 (pivot
// application, U scaling, then all block updates of column j below block k).
// It is the unit of work of the 1D codes.
func UpdatePanelPair(bm *supernode.BlockMatrix, k, j int, piv []int32, ws *Workspace) {
	ApplyPivots(bm, k, j, piv, ws)
	ScaleU(bm, k, j, ws)
	ub := bm.BlockAt(k, j)
	if ub == nil {
		return
	}
	for _, lb := range bm.LCol[k] {
		UpdateBlock(bm, lb, ub, ws)
	}
}
