package core

import (
	"math"
	"testing"

	"sstar/internal/machine"
	"sstar/internal/sparse"
)

func testMatrixPar() *sparse.CSR {
	return sparse.Grid2D(12, 12, false, sparse.GenOptions{Seed: 21, Convection: 0.4, WeakDiagFraction: 0.1})
}

func solveAndCheck(t *testing.T, a *sparse.CSR, f *Factorization, tol float64) []float64 {
	t.Helper()
	b := randRHS(a.N, 99)
	x := f.Solve(b)
	if r := residual(a, x, b); r > tol {
		t.Fatalf("residual %g > %g", r, tol)
	}
	return x
}

func sameSolution(t *testing.T, x, y []float64, what string) {
	t.Helper()
	for i := range x {
		if math.Abs(x[i]-y[i]) > 1e-8*(1+math.Abs(y[i])) {
			t.Fatalf("%s: solutions differ at %d: %g vs %g", what, i, x[i], y[i])
		}
	}
}

func TestFactorize1DCAMatchesSequential(t *testing.T) {
	a := testMatrixPar()
	sym := analyzeFor(t, a, 8, 4)
	seq, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	xs := solveAndCheck(t, a, seq, 1e-9)
	for _, p := range []int{1, 2, 3, 4, 8} {
		res, err := Factorize1D(a, sym, machine.T3E(), ScheduleCA(sym, p))
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		xp := solveAndCheck(t, a, res.Fact, 1e-9)
		sameSolution(t, xp, xs, "1D CA vs sequential")
		if res.ParallelTime <= 0 {
			t.Fatalf("P=%d: non-positive parallel time", p)
		}
		// Identical pivot sequences (same elimination, different mapping).
		for m := range seq.Piv {
			if seq.Piv[m] != res.Fact.Piv[m] {
				t.Fatalf("P=%d: pivot sequence differs at %d", p, m)
			}
		}
	}
}

func TestFactorize1DRAPIDMatchesSequential(t *testing.T) {
	a := testMatrixPar()
	sym := analyzeFor(t, a, 8, 4)
	seq, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	xs := solveAndCheck(t, a, seq, 1e-9)
	for _, p := range []int{2, 4} {
		res, err := Factorize1D(a, sym, machine.T3E(), ScheduleRAPID(sym, p, machine.T3E()))
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		xp := solveAndCheck(t, a, res.Fact, 1e-9)
		sameSolution(t, xp, xs, "1D RAPID vs sequential")
	}
}

func TestFactorize1DSpeedsUp(t *testing.T) {
	a := sparse.Grid2D(20, 20, false, sparse.GenOptions{Seed: 22})
	sym := analyzeFor(t, a, 12, 4)
	t1, err := Factorize1D(a, sym, machine.T3D(), ScheduleCA(sym, 1))
	if err != nil {
		t.Fatal(err)
	}
	t4, err := Factorize1D(a, sym, machine.T3D(), ScheduleCA(sym, 4))
	if err != nil {
		t.Fatal(err)
	}
	if t4.ParallelTime >= t1.ParallelTime {
		t.Fatalf("no speedup: P=1 %v, P=4 %v", t1.ParallelTime, t4.ParallelTime)
	}
	if t4.SentBytes == 0 || t4.SentMessages == 0 {
		t.Fatal("parallel run sent no messages")
	}
	if t1.SentBytes != 0 {
		t.Fatal("single-processor run should not communicate")
	}
}

func TestRAPIDBeatsCAOnEnoughProcs(t *testing.T) {
	a := sparse.Grid2D(16, 16, false, sparse.GenOptions{Seed: 23})
	sym := analyzeFor(t, a, 10, 4)
	model := machine.T3E()
	p := 8
	ca, err := Factorize1D(a, sym, model, ScheduleCA(sym, p))
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Factorize1D(a, sym, model, ScheduleRAPID(sym, p, model))
	if err != nil {
		t.Fatal(err)
	}
	// Graph scheduling should not be drastically worse; the paper reports
	// 10-40% better at P >= 8. Allow generous slack to avoid flakiness but
	// catch wild regressions.
	if ra.ParallelTime > ca.ParallelTime*1.25 {
		t.Fatalf("RAPID %v much slower than CA %v", ra.ParallelTime, ca.ParallelTime)
	}
}

func TestGridShape(t *testing.T) {
	cases := map[int][2]int{
		1:   {1, 1},
		2:   {1, 2},
		8:   {2, 4},
		32:  {4, 8},
		128: {8, 16},
	}
	for p, want := range cases {
		pr, pc := GridShape(p)
		if pr != want[0] || pc != want[1] {
			t.Errorf("GridShape(%d) = (%d,%d), want (%d,%d)", p, pr, pc, want[0], want[1])
		}
		if pr*pc != p {
			t.Errorf("GridShape(%d) does not multiply out", p)
		}
	}
}

// Prime processor counts > 3 must not collapse to a degenerate 1 x p grid:
// GridShape falls back to the best grid of p-1 (one idle processor beats a
// 1D mapping masquerading as 2D). Tiny counts keep their 1 x p row.
func TestGridShapePrime(t *testing.T) {
	cases := map[int][2]int{
		2:  {1, 2}, // small counts: 1 x p is the only sane shape
		3:  {1, 3},
		5:  {1, 4},  // falls back to 4, whose sqrt(p/2)-closest divisor is still 1
		7:  {2, 3},  // falls back to 6
		13: {2, 6},  // falls back to 12
		31: {3, 10}, // falls back to 30
	}
	for p, want := range cases {
		pr, pc := GridShape(p)
		if pr != want[0] || pc != want[1] {
			t.Errorf("GridShape(%d) = (%d,%d), want (%d,%d)", p, pr, pc, want[0], want[1])
		}
	}
	// Every count must yield a usable grid of p or p-1 processors, and no
	// prime count above 5 may keep the degenerate 1 x p row.
	for p := 1; p <= 64; p++ {
		pr, pc := GridShape(p)
		if pr < 1 || pc < 1 || pr*pc > p || pr*pc < p-1 {
			t.Errorf("GridShape(%d) = (%d,%d) out of range", p, pr, pc)
		}
		if p > 5 && smallestFactor(p) == p && pr == 1 {
			t.Errorf("GridShape(%d) = degenerate 1x%d grid for a prime count", p, pc)
		}
	}
}

func TestFactorize2DAsyncMatchesSequential(t *testing.T) {
	a := testMatrixPar()
	sym := analyzeFor(t, a, 8, 4)
	seq, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	xs := solveAndCheck(t, a, seq, 1e-9)
	for _, grid := range [][2]int{{1, 1}, {1, 2}, {2, 2}, {2, 4}, {4, 2}, {3, 3}} {
		res, err := Factorize2D(a, sym, machine.T3E(), grid[0], grid[1], true)
		if err != nil {
			t.Fatalf("grid %v: %v", grid, err)
		}
		xp := solveAndCheck(t, a, res.Fact, 1e-9)
		sameSolution(t, xp, xs, "2D async vs sequential")
		for m := range seq.Piv {
			if seq.Piv[m] != res.Fact.Piv[m] {
				t.Fatalf("grid %v: pivot sequence differs at column %d", grid, m)
			}
		}
	}
}

func TestFactorize2DSyncMatchesSequential(t *testing.T) {
	a := testMatrixPar()
	sym := analyzeFor(t, a, 8, 4)
	seq, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	xs := solveAndCheck(t, a, seq, 1e-9)
	res, err := Factorize2D(a, sym, machine.T3E(), 2, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	xp := solveAndCheck(t, a, res.Fact, 1e-9)
	sameSolution(t, xp, xs, "2D sync vs sequential")
}

func TestAsyncBeatsSync2D(t *testing.T) {
	a := sparse.Grid2D(18, 18, false, sparse.GenOptions{Seed: 24})
	sym := analyzeFor(t, a, 10, 4)
	model := machine.T3E()
	asy, err := Factorize2D(a, sym, model, 2, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := Factorize2D(a, sym, model, 2, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if asy.ParallelTime >= syn.ParallelTime {
		t.Fatalf("async %v not faster than sync %v", asy.ParallelTime, syn.ParallelTime)
	}
}

func TestParallelTimeDeterministic(t *testing.T) {
	a := testMatrixPar()
	sym := analyzeFor(t, a, 8, 4)
	model := machine.T3D()
	first := -1.0
	for i := 0; i < 5; i++ {
		res, err := Factorize2D(a, sym, model, 2, 4, true)
		if err != nil {
			t.Fatal(err)
		}
		if first < 0 {
			first = res.ParallelTime
		} else if res.ParallelTime != first {
			t.Fatalf("2D virtual time not deterministic: %v vs %v", res.ParallelTime, first)
		}
	}
	first = -1
	for i := 0; i < 5; i++ {
		res, err := Factorize1D(a, sym, model, ScheduleCA(sym, 5))
		if err != nil {
			t.Fatal(err)
		}
		if first < 0 {
			first = res.ParallelTime
		} else if res.ParallelTime != first {
			t.Fatalf("1D virtual time not deterministic: %v vs %v", res.ParallelTime, first)
		}
	}
}

func TestLoadBalance2DWithinRange(t *testing.T) {
	a := testMatrixPar()
	sym := analyzeFor(t, a, 8, 4)
	res, err := Factorize2D(a, sym, machine.T3E(), 2, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.LoadBalance <= 0 || res.LoadBalance > 1 {
		t.Fatalf("load balance %v out of (0,1]", res.LoadBalance)
	}
}

func TestBufferHighWaterBounded(t *testing.T) {
	// Theorem 2: the asynchronous 2D code needs bounded buffer space —
	// roughly (pc + pr) panels' worth, far below the full matrix size.
	a := sparse.Grid2D(16, 16, false, sparse.GenOptions{Seed: 25})
	sym := analyzeFor(t, a, 8, 4)
	res, err := Factorize2D(a, sym, machine.T3E(), 2, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	matrixBytes := 8 * res.Fact.BM.StorageEntries()
	if int64(res.BufferHigh) >= matrixBytes {
		t.Fatalf("buffer high water %d not below matrix size %d", res.BufferHigh, matrixBytes)
	}
}

func TestFactorize2DSingular(t *testing.T) {
	coo := sparse.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			coo.Add(i, j, 1) // rank-1: singular
		}
	}
	a := coo.ToCSR()
	sym := Analyze(a, AnalyzeOptions{SkipOrdering: true})
	if _, err := Factorize2D(a, sym, machine.Unit(), 2, 2, true); err == nil {
		t.Fatal("expected singular error from 2D code")
	}
	if _, err := Factorize1D(a, sym, machine.Unit(), ScheduleCA(sym, 2)); err == nil {
		t.Fatal("expected singular error from 1D code")
	}
}
