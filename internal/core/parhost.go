package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sstar/internal/obs"
	"sstar/internal/sparse"
	"sstar/internal/supernode"
	"sstar/internal/taskgraph"
)

// FactorizeHost runs the numeric factorization on real shared-memory
// hardware: the Factor(k)/Update(k,j) task DAG of the paper's Section 4 is
// executed by `workers` goroutines with atomic dependence counters and a
// critical-path-priority ready queue. This is the wall-clock counterpart of
// the virtual-time codes — same tasks, same dependences, but the parallel
// time is real.
//
// Determinism: the factors are bit-identical to FactorizeSeq's, whatever the
// worker count and however the scheduler interleaves. The argument rests on
// the DAG's dependence properties:
//
//   - Update(k, j) writes only block column j and reads only block column k
//     and the panel-k pivot sequence; Factor(k) writes only block column k
//     and piv[panel k]. Tasks targeting different block columns therefore
//     never write the same memory.
//   - All updates into one destination column j are serialized in ascending
//     source order k by the Update-chain property (the chain edges
//     Update(k,j) -> Update(k',j)), and Factor(j) runs after the last of
//     them — exactly the relative order FactorizeSeq executes them in.
//
// So every block column experiences the same sequence of floating-point
// operations on the same inputs as in the sequential code, and the
// accumulation order (the only thing reordering could perturb) is pinned.
// The same holds transitively for the pivot choices, which are a function of
// the (bit-identical) column data.
//
// workers <= 1 falls back to the sequential driver. Each worker owns a
// pre-sized Workspace, so the steady state allocates nothing.
func FactorizeHost(a *sparse.CSR, sym *Symbolic, workers int) (*Factorization, error) {
	return FactorizeHostObs(a, sym, workers, nil)
}

// FactorizeHostObs is FactorizeHost with optional instrumentation: when
// sink is non-nil, every Factor(k)/Update(k,j) task is timed and reported
// with the worker that ran it — the raw material of the Chrome-trace
// pipeline-overlap timeline — and the whole numeric phase is reported as one
// Phase event. A nil sink compiles down to pointer checks: no clocks are
// read, nothing allocates, and the factors are bit-identical either way
// (instrumentation never touches numeric state).
func FactorizeHostObs(a *sparse.CSR, sym *Symbolic, workers int, sink obs.Sink) (*Factorization, error) {
	var t0 time.Time
	if sink != nil {
		t0 = time.Now()
	}
	fact, err := factorizeHostObs(a, sym, workers, sink)
	if sink != nil && err == nil {
		sink.Phase(obs.PhaseFactor, time.Since(t0).Nanoseconds())
	}
	return fact, err
}

func factorizeHostObs(a *sparse.CSR, sym *Symbolic, workers int, sink obs.Sink) (*Factorization, error) {
	if workers <= 1 {
		return factorizeSeqObs(a, sym, sink)
	}
	work := sym.PermutedMatrix(a)
	bm := supernode.NewBlockMatrix(sym.Partition, work)
	piv := make([]int32, sym.N)
	g := taskgraph.Build(sym.Partition)
	if workers > len(g.Tasks) {
		workers = len(g.Tasks)
	}

	// Ready-queue priority: longest weighted path to an exit (bottom level)
	// over raw flop weights. Descheduling the critical path last is the
	// classic way to starve the tail of the factorization, so the heap pops
	// the largest bottom level first.
	blevel := func() []float64 {
		w := g.Weights(1, 1, 1, 1, 0)
		_, bl := g.CriticalPath(w)
		return bl
	}()

	run := &hostRun{
		g:         g,
		deps:      g.InDegrees(),
		blevel:    blevel,
		remaining: int32(len(g.Tasks)),
		sink:      sink,
	}
	run.cond = sync.NewCond(&run.mu)
	for id, d := range run.deps {
		if d == 0 {
			run.ready.push(id, blevel[id])
		}
	}

	tol := sym.pivotTol()
	spaces := make([]*Workspace, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ws := NewWorkspace(bm)
		spaces[w] = ws
		wg.Add(1)
		go func(worker int32) {
			defer wg.Done()
			run.work(bm, piv, tol, ws, worker)
		}(int32(w))
	}
	wg.Wait()
	if run.err != nil {
		return nil, run.err
	}
	// Merge the per-worker flop tallies (integer sums: order-independent).
	var fl Flops
	for _, ws := range spaces {
		fl.Add(ws.Fl)
	}
	return &Factorization{Sym: sym, BM: bm, Piv: piv, Fl: fl}, nil
}

// hostRun is the shared state of one parallel factorization: the dependence
// counters (decremented atomically on task completion), the priority ready
// queue (mutex+cond protected) and the first error.
type hostRun struct {
	g      *taskgraph.Graph
	deps   []int32
	blevel []float64

	mu        sync.Mutex
	cond      *sync.Cond
	ready     taskHeap
	remaining int32
	err       error
	aborted   bool
	sink      obs.Sink
}

// work is one worker's loop: pop the highest-priority ready task, execute it,
// release the successors whose dependence counters hit zero.
func (r *hostRun) work(bm *supernode.BlockMatrix, piv []int32, tol float64, ws *Workspace, worker int32) {
	for {
		r.mu.Lock()
		for len(r.ready.ids) == 0 && !r.aborted && r.remaining > 0 {
			r.cond.Wait()
		}
		if r.aborted || r.remaining == 0 {
			r.mu.Unlock()
			return
		}
		id := r.ready.pop()
		r.mu.Unlock()

		t := r.g.Tasks[id]
		var t0 time.Time
		if r.sink != nil {
			t0 = time.Now()
		}
		var err error
		if t.Kind == taskgraph.KindFactor {
			err = FactorPanel(bm, t.K, piv, tol, ws)
		} else {
			UpdatePanelPair(bm, t.K, t.J, piv, ws)
		}
		if r.sink != nil {
			kind := obs.KindFactor
			if t.Kind == taskgraph.KindUpdate {
				kind = obs.KindUpdate
			}
			r.sink.Task(obs.TaskEvent{Kind: kind, K: int32(t.K), J: int32(t.J), Worker: worker,
				StartNs: t0.UnixNano(), DurNs: time.Since(t0).Nanoseconds()})
		}
		if err != nil {
			r.mu.Lock()
			if r.err == nil {
				r.err = err
			}
			r.aborted = true
			r.mu.Unlock()
			r.cond.Broadcast()
			return
		}

		// Release successors. The atomic decrement orders this task's writes
		// before the successor's execution: the worker that drops a counter
		// to zero publishes the task through the mutex-protected queue.
		for _, s := range t.Succ {
			if atomic.AddInt32(&r.deps[s], -1) == 0 {
				r.mu.Lock()
				r.ready.push(s, r.blevel[s])
				r.mu.Unlock()
				r.cond.Signal()
			}
		}
		r.mu.Lock()
		r.remaining--
		done := r.remaining == 0
		r.mu.Unlock()
		if done {
			r.cond.Broadcast()
		}
	}
}

// taskHeap is a max-heap of task ids keyed by priority, hand-rolled (rather
// than container/heap's interface) to keep pops allocation-free on the hot
// scheduling path.
type taskHeap struct {
	ids  []int
	prio []float64
}

func (h *taskHeap) push(id int, p float64) {
	h.ids = append(h.ids, id)
	h.prio = append(h.prio, p)
	i := len(h.ids) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio[parent] >= h.prio[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *taskHeap) pop() int {
	top := h.ids[0]
	last := len(h.ids) - 1
	h.swap(0, last)
	h.ids = h.ids[:last]
	h.prio = h.prio[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < last && h.prio[l] > h.prio[big] {
			big = l
		}
		if r < last && h.prio[r] > h.prio[big] {
			big = r
		}
		if big == i {
			break
		}
		h.swap(i, big)
		i = big
	}
	return top
}

func (h *taskHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
}

// DefaultHostWorkers is the worker count FactorizeHost callers should use
// when they want "all the cores": the scheduler's view of the CPU count.
func DefaultHostWorkers() int { return runtime.NumCPU() }
