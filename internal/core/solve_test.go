package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sstar/internal/machine"
	"sstar/internal/sparse"
)

func TestSolveTransposeAgainstGP(t *testing.T) {
	for _, seed := range []int64{41, 42, 43} {
		a := sparse.Grid2D(8, 8, false, sparse.GenOptions{Seed: seed, Convection: 0.5})
		sym := analyzeFor(t, a, 6, 3)
		f, err := FactorizeSeq(a, sym)
		if err != nil {
			t.Fatal(err)
		}
		b := randRHS(a.N, seed)
		x := f.SolveTranspose(b)
		// x must satisfy Aᵀ x = b.
		at := a.Transpose()
		if r := residual(at, x, b); r > 1e-9 {
			t.Fatalf("seed %d: transpose residual %g", seed, r)
		}
		// Cross-check against a direct factorization of Aᵀ.
		gp, err := GPFactorize(at, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		xg := gp.Solve(b)
		for i := range x {
			if math.Abs(x[i]-xg[i]) > 1e-7*(1+math.Abs(xg[i])) {
				t.Fatalf("seed %d: transpose solutions differ at %d: %g vs %g", seed, i, x[i], xg[i])
			}
		}
	}
}

func TestSolveTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15 + rng.Intn(50)
		a := sparse.RandomSparse(n, 1+rng.Intn(3), seed)
		sym := Analyze(a, AnalyzeOptions{})
		fac, err := FactorizeSeq(a, sym)
		if err != nil {
			return false
		}
		b := randRHS(n, seed+7)
		x := fac.SolveTranspose(b)
		return residual(a.Transpose(), x, b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveTransposeWithPivoting(t *testing.T) {
	// Force interchanges with weak diagonals, then check the transpose
	// solve still replays them correctly (in reverse).
	a := sparse.Grid2D(9, 9, false, sparse.GenOptions{Seed: 44, WeakDiagFraction: 0.3})
	sym := analyzeFor(t, a, 7, 4)
	f, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats(0).Interchanges == 0 {
		t.Fatal("test needs interchanges to be meaningful")
	}
	b := randRHS(a.N, 45)
	if r := residual(a.Transpose(), f.SolveTranspose(b), b); r > 1e-9 {
		t.Fatalf("transpose residual %g with pivoting", r)
	}
}

func TestSolveMany(t *testing.T) {
	a := sparse.Circuit(80, 3, sparse.GenOptions{Seed: 46})
	sym := analyzeFor(t, a, 8, 4)
	f, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	nrhs := 3
	b := make([]float64, a.N*nrhs)
	for j := 0; j < nrhs; j++ {
		copy(b[j*a.N:], randRHS(a.N, int64(50+j)))
	}
	x, err := f.SolveMany(b, nrhs)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < nrhs; j++ {
		if r := residual(a, x[j*a.N:(j+1)*a.N], b[j*a.N:(j+1)*a.N]); r > 1e-9 {
			t.Fatalf("rhs %d: residual %g", j, r)
		}
	}
	if _, err := f.SolveMany(b[:5], nrhs); err == nil {
		t.Fatal("expected length error")
	}
}

// TestSolveManyBlockedAgainstSolve: the blocked BLAS-3 panel path must agree
// with the per-column vector sweep on every right-hand side, including when
// nrhs crosses the 32-column panel boundary, and the single-column case must
// stay bit-identical to Solve.
func TestSolveManyBlockedAgainstSolve(t *testing.T) {
	a := sparse.Grid2D(11, 10, false, sparse.GenOptions{Seed: 48, Convection: 0.4, WeakDiagFraction: 0.2})
	sym := analyzeFor(t, a, 8, 4)
	f, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats(0).Interchanges == 0 {
		t.Fatal("test needs interchanges to exercise the panel row swaps")
	}
	for _, nrhs := range []int{2, 31, 32, 33, 40} {
		b := make([]float64, a.N*nrhs)
		for j := 0; j < nrhs; j++ {
			copy(b[j*a.N:], randRHS(a.N, int64(300+j)))
		}
		x, err := f.SolveMany(b, nrhs)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < nrhs; j++ {
			bj := b[j*a.N : (j+1)*a.N]
			xj := x[j*a.N : (j+1)*a.N]
			if r := residual(a, xj, bj); r > 1e-9 {
				t.Fatalf("nrhs=%d rhs %d: residual %g", nrhs, j, r)
			}
			ref := f.Solve(bj)
			for i := range ref {
				if math.Abs(xj[i]-ref[i]) > 1e-10*(1+math.Abs(ref[i])) {
					t.Fatalf("nrhs=%d rhs %d: blocked path differs from Solve at %d: %g vs %g",
						nrhs, j, i, xj[i], ref[i])
				}
			}
		}
	}
	// nrhs == 1 delegates to Solve and must match it bit for bit.
	b := randRHS(a.N, 299)
	x1, err := f.SolveMany(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref := f.Solve(b)
	for i := range ref {
		if x1[i] != ref[i] {
			t.Fatalf("SolveMany(b, 1) not bit-identical to Solve at %d", i)
		}
	}
}

// TestSolveManyExactBitIdentical: the coalescing kernel's contract — at every
// batch width 1..32 (and past the panel boundary) each column of
// SolveManyExact must be bit-for-bit what Solve returns on that column alone.
func TestSolveManyExactBitIdentical(t *testing.T) {
	a := sparse.Grid2D(11, 10, false, sparse.GenOptions{Seed: 48, Convection: 0.4, WeakDiagFraction: 0.2})
	sym := analyzeFor(t, a, 8, 4)
	f, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats(0).Interchanges == 0 {
		t.Fatal("test needs interchanges to exercise the panel row swaps")
	}
	widths := make([]int, 0, 34)
	for w := 1; w <= 32; w++ {
		widths = append(widths, w)
	}
	widths = append(widths, 33, 40)
	for _, nrhs := range widths {
		b := make([]float64, a.N*nrhs)
		for j := 0; j < nrhs; j++ {
			copy(b[j*a.N:], randRHS(a.N, int64(700+j)))
		}
		x, err := f.SolveManyExact(b, nrhs)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < nrhs; j++ {
			bj := b[j*a.N : (j+1)*a.N]
			xj := x[j*a.N : (j+1)*a.N]
			ref := f.Solve(bj)
			for i := range ref {
				if xj[i] != ref[i] {
					t.Fatalf("nrhs=%d rhs %d: SolveManyExact differs from Solve at %d: %v vs %v",
						nrhs, j, i, xj[i], ref[i])
				}
			}
		}
	}
	if _, err := f.SolveManyExact(nil, 0); err == nil {
		t.Fatal("expected nrhs error")
	}
	if _, err := f.SolveManyExact(make([]float64, 5), 2); err == nil {
		t.Fatal("expected length error")
	}
}

func TestThresholdPivoting(t *testing.T) {
	a := sparse.Grid2D(10, 10, false, sparse.GenOptions{Seed: 47, WeakDiagFraction: 0.15})
	classical := analyzeFor(t, a, 8, 4)
	fc, err := FactorizeSeq(a, classical)
	if err != nil {
		t.Fatal(err)
	}
	thresholded := analyzeFor(t, a, 8, 4)
	thresholded.PivotTol = 0.1
	ft, err := FactorizeSeq(a, thresholded)
	if err != nil {
		t.Fatal(err)
	}
	sc, st := fc.Stats(0), ft.Stats(0)
	if st.Interchanges > sc.Interchanges {
		t.Fatalf("threshold pivoting increased interchanges: %d vs %d", st.Interchanges, sc.Interchanges)
	}
	b := randRHS(a.N, 48)
	if r := residual(a, ft.Solve(b), b); r > 1e-8 {
		t.Fatalf("thresholded residual %g", r)
	}
}

func TestThresholdPivotingConsistentAcrossCodes(t *testing.T) {
	a := sparse.Grid2D(10, 10, false, sparse.GenOptions{Seed: 49, WeakDiagFraction: 0.2})
	sym := analyzeFor(t, a, 8, 4)
	sym.PivotTol = 0.25
	seq, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Factorize2D(a, sym, machine.T3E(), 2, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := Factorize1D(a, sym, machine.T3E(), ScheduleCA(sym, 3))
	if err != nil {
		t.Fatal(err)
	}
	for m := range seq.Piv {
		if seq.Piv[m] != d2.Fact.Piv[m] || seq.Piv[m] != d1.Fact.Piv[m] {
			t.Fatalf("threshold pivot choice diverged at column %d", m)
		}
	}
}

func TestStatsBlas3Fraction(t *testing.T) {
	// On the goodwin-family CFD matrix the paper reports >= 64% of the
	// update work in DGEMM; our packed-block implementation should land in
	// the same regime.
	a := sparse.Grid2D(16, 16, true, sparse.GenOptions{Seed: 50, DOF: 4, Convection: 0.5})
	sym := analyzeFor(t, a, 25, 4)
	f, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats(MaxAbs(a.Val))
	if st.Blas3Fraction < 0.5 {
		t.Fatalf("BLAS-3 fraction %.2f, want >= 0.5 (paper: ~0.64)", st.Blas3Fraction)
	}
	if st.GrowthFactor < 1 || st.GrowthFactor > 1e6 {
		t.Fatalf("implausible growth factor %g", st.GrowthFactor)
	}
	if st.StorageEntries <= 0 {
		t.Fatal("storage entries missing")
	}
}

func TestRefineImprovesOrHolds(t *testing.T) {
	// An ill-scaled system: refinement should converge to a tiny
	// componentwise backward error.
	a := sparse.Grid2D(10, 10, false, sparse.GenOptions{Seed: 51, WeakDiagFraction: 0.2})
	sc := a.Clone()
	for k := range sc.Val {
		sc.Val[k] *= math.Pow(10, float64(k%7)-3)
	}
	sym := analyzeFor(t, sc, 8, 4)
	f, err := FactorizeSeq(sc, sym)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(sc.N, 52)
	x := f.Solve(b)
	res := f.Refine(sc, x, b, 1e-14, 10)
	if !res.Converged {
		t.Fatalf("refinement did not converge: %+v", res)
	}
	if res.Berr > 1e-13 {
		t.Fatalf("backward error %g after refinement", res.Berr)
	}
}

func TestRefineAlreadyAccurate(t *testing.T) {
	a := sparse.Dense(20, 53)
	sym := Analyze(a, AnalyzeOptions{})
	f, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(a.N, 54)
	x := f.Solve(b)
	res := f.Refine(a, x, b, 1e-12, 5)
	if !res.Converged || res.Iterations > 2 {
		t.Fatalf("well-conditioned refinement should converge immediately: %+v", res)
	}
}

func TestCondEstIdentityAndIllConditioned(t *testing.T) {
	// Identity-like: condition ~ 1.
	n := 30
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		if i+1 < n {
			coo.Add(i, i+1, 1e-6)
		}
	}
	a := coo.ToCSR()
	sym := Analyze(a, AnalyzeOptions{})
	f, err := FactorizeSeq(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	c1 := f.CondEst(a)
	if c1 < 1 || c1 > 10 {
		t.Fatalf("near-diagonal condition estimate %g, want ~1", c1)
	}
	// Graded matrix: condition grows like the scale range.
	coo2 := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo2.Add(i, i, math.Pow(10, -float64(i%9)))
		if i+1 < n {
			coo2.Add(i+1, i, 1e-4)
		}
	}
	a2 := coo2.ToCSR()
	sym2 := Analyze(a2, AnalyzeOptions{})
	f2, err := FactorizeSeq(a2, sym2)
	if err != nil {
		t.Fatal(err)
	}
	c2 := f2.CondEst(a2)
	if c2 < 1e6 {
		t.Fatalf("graded condition estimate %g, want >= 1e6", c2)
	}
}

func TestEquilibrate(t *testing.T) {
	a := sparse.Circuit(60, 3, sparse.GenOptions{Seed: 55})
	// Wreck the scaling.
	bad := a.Clone()
	for i := 0; i < bad.N; i++ {
		_, vals := bad.Row(i)
		s := math.Pow(10, float64(i%8)-4)
		for k := range vals {
			vals[k] *= s
		}
	}
	scaled, rs, cs := Equilibrate(bad)
	// Every row's max must now be ~1 and every column's max <= 1.
	for i := 0; i < scaled.N; i++ {
		_, vals := scaled.Row(i)
		m := MaxAbs(vals)
		if m > 1+1e-12 {
			t.Fatalf("row %d max %g after equilibration", i, m)
		}
	}
	// Solving through the scaled system reproduces the original solution.
	sym := Analyze(scaled, AnalyzeOptions{})
	f, err := FactorizeSeq(scaled, sym)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(bad.N, 56)
	rb := make([]float64, bad.N)
	for i := range rb {
		rb[i] = rs[i] * b[i]
	}
	y := f.Solve(rb)
	x := make([]float64, bad.N)
	for j := range x {
		x[j] = cs[j] * y[j]
	}
	if r := residual(bad, x, b); r > 1e-9 {
		t.Fatalf("equilibrated solve residual %g", r)
	}
}
