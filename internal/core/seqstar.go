package core

import (
	"fmt"
	"time"

	"sstar/internal/obs"
	"sstar/internal/ordering"
	"sstar/internal/sparse"
	"sstar/internal/supernode"
	"sstar/internal/symbolic"
	"sstar/internal/xblas"
)

// Symbolic bundles everything the numeric phases need that can be computed
// once per structure and reused across factorizations (the "analyze" phase):
// the preprocessing permutations, the static symbolic structure and the 2D
// L/U partition.
type Symbolic struct {
	N         int
	RowPerm   []int // transversal row permutation (old row -> new row)
	ColPerm   []int // fill-reducing column permutation (old col -> new col)
	Static    *symbolic.Static
	Partition *supernode.Partition
	// PivotTol enables threshold pivoting in the numeric phases: the
	// diagonal candidate is kept whenever its magnitude is at least
	// PivotTol times the column maximum, trading a little stability
	// headroom for fewer row interchanges. 0 (or 1) means classical
	// partial pivoting. The static structure is a valid bound for every
	// threshold because it already covers all pivot choices.
	PivotTol float64
	// Phases is the analyze-phase cost split, recorded once at
	// construction.
	Phases PhaseTimes
}

// pivotTol normalizes the threshold.
func (s *Symbolic) pivotTol() float64 {
	if s.PivotTol <= 0 || s.PivotTol > 1 {
		return 1
	}
	return s.PivotTol
}

// AnalyzeOptions configures the analyze phase.
type AnalyzeOptions struct {
	Supernode supernode.Options
	// SkipOrdering keeps the matrix in its given row/column order (useful
	// for experiments that supply a pre-ordered matrix).
	SkipOrdering bool
	// Ordering selects the fill-reducing column ordering: "mmd-ata" (the
	// paper's multiple minimum degree on A^T A, the default) or "colmmd"
	// (column minimum degree computed directly on A, COLMMD-style).
	Ordering string
	// Workers bounds the host goroutines of the analyze phase: the parallel
	// symbolic fill computation and the partition build (unless
	// Supernode.Workers pins the latter separately). <= 1 runs sequentially.
	// The analysis is byte-identical at every worker count.
	Workers int
	// Obs, when non-nil, receives one Phase event per analyze stage
	// (ordering, symbolic, partition). Nil disables all timing work.
	Obs obs.Sink
}

// PhaseTimes records where the analyze phase spent its time, in
// nanoseconds. It is filled at Symbolic construction and immutable after,
// so sharing a Symbolic across concurrent factorizations stays safe.
type PhaseTimes struct {
	OrderingNs  int64
	SymbolicNs  int64
	PartitionNs int64
	// PatchNs is the incremental re-analysis time when this Symbolic was
	// produced by patching a cached analysis (0 for full analyzes); such a
	// Symbolic leaves OrderingNs and SymbolicNs at 0 since those stages were
	// inherited, not run.
	PatchNs int64
}

// Analyze runs the S* preprocessing pipeline on a: Duff's maximum transversal
// for a zero-free diagonal, minimum-degree ordering of A^T A, the George–Ng
// static symbolic factorization and the 2D L/U supernode partition. Phase
// timings land in the returned Symbolic's Phases and, when o.Obs is set, are
// reported through the sink as they complete.
func Analyze(a *sparse.CSR, o AnalyzeOptions) *Symbolic {
	n := a.N
	sym := &Symbolic{N: n}
	// phase wraps one analyze stage with timing; with no sink attached the
	// clock is still read (analyze runs once per structure, far off any hot
	// path) so Symbolic.Phases is always populated.
	phase := func(name string, ns *int64, f func()) {
		t0 := time.Now()
		f()
		*ns = time.Since(t0).Nanoseconds()
		if o.Obs != nil {
			o.Obs.Phase(name, *ns)
		}
	}
	work := a
	phase(obs.PhaseOrdering, &sym.Phases.OrderingNs, func() {
		if o.SkipOrdering {
			sym.RowPerm = sparse.IdentityPerm(n)
			sym.ColPerm = sparse.IdentityPerm(n)
			return
		}
		rp, _ := ordering.MaxTransversal(a)
		work = a.PermuteRows(rp)
		var cp []int
		switch o.Ordering {
		case "colmmd":
			cp = ordering.ColumnMinDegree(work)
		case "", "mmd-ata":
			cp = ordering.MinimumDegree(sparse.ATAPattern(work))
		default:
			panic(fmt.Sprintf("core: unknown ordering %q", o.Ordering))
		}
		// The column permutation is applied symmetrically (rows follow
		// columns) so the zero-free diagonal survives.
		work = work.Permute(cp, cp)
		sym.RowPerm = composePerm(rp, cp)
		sym.ColPerm = cp
	})
	phase(obs.PhaseSymbolic, &sym.Phases.SymbolicNs, func() {
		sym.Static = symbolic.FactorizeWorkers(sparse.PatternOf(work), o.Workers)
	})
	phase(obs.PhasePartition, &sym.Phases.PartitionNs, func() {
		sn := o.Supernode
		if sn.Workers == 0 {
			sn.Workers = o.Workers
		}
		sym.Partition = supernode.NewPartition(sym.Static, sn)
	})
	if o.Obs != nil {
		// Partition sub-phase breakdown, emitted after the coarse phase so
		// sinks see detail inside the total they already received.
		tm := sym.Partition.Times
		o.Obs.Phase(obs.PhaseDetect, tm.DetectNs)
		o.Obs.Phase(obs.PhaseChoose, tm.ChooseNs)
		o.Obs.Phase(obs.PhaseBuild, tm.BuildNs)
	}
	return sym
}

// composePerm returns the permutation applying p first, then q.
func composePerm(p, q []int) []int {
	out := make([]int, len(p))
	for i := range p {
		out[i] = q[p[i]]
	}
	return out
}

// PermutedMatrix returns P_r A P_c^T, the matrix the numeric factorization
// actually works on.
func (s *Symbolic) PermutedMatrix(a *sparse.CSR) *sparse.CSR {
	return a.Permute(s.RowPerm, s.ColPerm)
}

// Factorization is the numeric result: the block matrix holds L (unit
// diagonal implied) and U in place; Piv records, for every column m, the
// global storage row interchanged into position m at elimination step m
// (LINPACK-style lazy pivoting — interchanges were applied to trailing
// columns only, so the triangular solves replay them panel by panel).
type Factorization struct {
	Sym *Symbolic
	BM  *supernode.BlockMatrix
	Piv []int32
	Fl  Flops
}

// FactorizeSeq runs the sequential S* numeric factorization (Fig. 6): for
// each block column, Factor(k) then Update(k, j) for every nonzero U_kj.
func FactorizeSeq(a *sparse.CSR, sym *Symbolic) (*Factorization, error) {
	return factorizeSeqObs(a, sym, nil)
}

// factorizeSeqObs is FactorizeSeq with optional task tracing: when sink is
// non-nil every Factor/Update task is timed and reported (worker 0). The
// instrumentation only changes when clocks are read, never the numeric
// work, so traced and untraced factors are bit-identical.
func factorizeSeqObs(a *sparse.CSR, sym *Symbolic, sink obs.Sink) (*Factorization, error) {
	work := sym.PermutedMatrix(a)
	bm := supernode.NewBlockMatrix(sym.Partition, work)
	ws := NewWorkspace(bm)
	piv := make([]int32, sym.N)
	p := sym.Partition
	for k := 0; k < p.NB; k++ {
		var t0 time.Time
		if sink != nil {
			t0 = time.Now()
		}
		if err := FactorPanel(bm, k, piv, sym.pivotTol(), ws); err != nil {
			return nil, err
		}
		if sink != nil {
			sink.Task(obs.TaskEvent{Kind: obs.KindFactor, K: int32(k), J: int32(k),
				StartNs: t0.UnixNano(), DurNs: time.Since(t0).Nanoseconds()})
		}
		for _, jb := range p.UBlocks[k] {
			if sink != nil {
				t0 = time.Now()
			}
			UpdatePanelPair(bm, k, int(jb), piv, ws)
			if sink != nil {
				sink.Task(obs.TaskEvent{Kind: obs.KindUpdate, K: int32(k), J: jb,
					StartNs: t0.UnixNano(), DurNs: time.Since(t0).Nanoseconds()})
			}
		}
	}
	return &Factorization{Sym: sym, BM: bm, Piv: piv, Fl: ws.Fl}, nil
}

// Solve solves A x = b for the original (unpermuted) system.
func (f *Factorization) Solve(b []float64) []float64 {
	n := f.Sym.N
	p := f.Sym.Partition
	bm := f.BM
	y := make([]float64, n)
	// Apply the analyze-phase row permutation: row i of A is row RowPerm[i]
	// of the working matrix.
	for i := 0; i < n; i++ {
		y[f.Sym.RowPerm[i]] = b[i]
	}
	// Forward sweep, panel by panel: replay the panel's interchanges, solve
	// against the diagonal block's unit-lower part, then eliminate the L
	// blocks below.
	for k := 0; k < p.NB; k++ {
		start, end := p.Start[k], p.Start[k+1]
		s := end - start
		for m := start; m < end; m++ {
			if t := int(f.Piv[m]); t != m {
				y[m], y[t] = y[t], y[m]
			}
		}
		d := bm.Diag[k]
		xblas.TrsvLowerUnit(s, d.Data, s, y[start:end])
		for _, lb := range bm.LCol[k] {
			nc := len(lb.Cols)
			for r, gr := range lb.Rows {
				y[gr] -= xblas.Dot(lb.Data[r*nc:(r+1)*nc], y[start:end])
			}
		}
	}
	// Backward sweep.
	for k := p.NB - 1; k >= 0; k-- {
		start, end := p.Start[k], p.Start[k+1]
		s := end - start
		for _, ub := range bm.URow[k] {
			nc := len(ub.Cols)
			for r := 0; r < s; r++ {
				sum := 0.0
				row := ub.Data[r*nc : (r+1)*nc]
				for q, c := range ub.Cols {
					sum += row[q] * y[c]
				}
				y[start+r] -= sum
			}
		}
		d := bm.Diag[k]
		xblas.TrsvUpper(s, d.Data, s, y[start:end])
	}
	// Undo the column permutation: working column ColPerm[j] is variable j.
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = y[f.Sym.ColPerm[j]]
	}
	return x
}
