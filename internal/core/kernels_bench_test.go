package core

import (
	"fmt"
	"testing"

	"sstar/internal/sparse"
	"sstar/internal/supernode"
)

// densePanel builds the leading s-wide panel of a dense 2s-order matrix: an
// s-by-s diagonal block with one s-by-s L block below — the supernode panel
// shape FactorPanel sees in the factorization proper.
func densePanel(s int) (*supernode.BlockMatrix, *Workspace, []int32, []float64, []float64) {
	a := sparse.Dense(2*s, int64(2000+s))
	sym := Analyze(a, AnalyzeOptions{
		SkipOrdering: true,
		Supernode:    supernode.Options{MaxBlock: s},
	})
	bm := supernode.NewBlockMatrix(sym.Partition, sym.PermutedMatrix(a))
	ws := NewWorkspace(bm)
	piv := make([]int32, 2*s)
	diag0 := append([]float64(nil), bm.Diag[0].Data...)
	lcol0 := append([]float64(nil), bm.LCol[0][0].Data...)
	return bm, ws, piv, diag0, lcol0
}

func BenchmarkFactorPanel(b *testing.B) {
	for _, s := range []int{8, 16, 25, 32, 64, 128} {
		b.Run(fmt.Sprintf("%dx%d", 2*s, s), func(b *testing.B) {
			bm, ws, piv, diag0, lcol0 := densePanel(s)
			before := ws.Fl.Total()
			if err := FactorPanel(bm, 0, piv, 1, ws); err != nil {
				b.Fatal(err)
			}
			flops := ws.Fl.Total() - before
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(bm.Diag[0].Data, diag0)
				copy(bm.LCol[0][0].Data, lcol0)
				if err := FactorPanel(bm, 0, piv, 1, ws); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(flops)*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "GFLOP/s")
		})
	}
}

// BenchmarkUpdateBlockAligned measures the trailing update when the L/U
// packings match the target exactly (the direct Gemm path; dense matrices
// always align).
func BenchmarkUpdateBlockAligned(b *testing.B) {
	for _, s := range []int{8, 16, 25, 32, 64, 128} {
		b.Run(fmt.Sprintf("%dx%dx%d", s, s, s), func(b *testing.B) {
			// Dense 3s-order matrix with s-wide panels: diagonal block 2
			// receives the update L(2,0) * U(0,2).
			a := sparse.Dense(3*s, int64(3000+s))
			sym := Analyze(a, AnalyzeOptions{
				SkipOrdering: true,
				Supernode:    supernode.Options{MaxBlock: s},
			})
			bm := supernode.NewBlockMatrix(sym.Partition, sym.PermutedMatrix(a))
			ws := NewWorkspace(bm)
			lb := bm.BlockAt(2, 0)
			ub := bm.BlockAt(0, 2)
			if lb == nil || ub == nil {
				b.Fatal("dense partition did not produce the expected blocks")
			}
			flops := int64(2) * int64(len(lb.Rows)) * int64(len(ub.Cols)) * int64(len(lb.Cols))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				UpdateBlock(bm, lb, ub, ws)
			}
			b.ReportMetric(float64(flops)*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "GFLOP/s")
		})
	}
}

// BenchmarkUpdateBlockScatter measures the fused gather/scatter path on the
// largest misaligned block update a real sparse partition produces.
func BenchmarkUpdateBlockScatter(b *testing.B) {
	a := sparse.Grid3D(12, 12, 12, sparse.GenOptions{Convection: 0.3, Seed: 9})
	sym := Analyze(a, AnalyzeOptions{
		Supernode: supernode.Options{MaxBlock: 25, Amalgamate: 4},
	})
	bm := supernode.NewBlockMatrix(sym.Partition, sym.PermutedMatrix(a))
	ws := NewWorkspace(bm)
	var lb, ub *supernode.Block
	best := int64(0)
	for k := 0; k < sym.Partition.NB; k++ {
		for _, ubc := range bm.URow[k] {
			for _, lbc := range bm.LCol[k] {
				t := bm.BlockAt(lbc.I, ubc.J)
				if t == nil || equalCols(lbc.Rows, t.Rows) && equalCols(ubc.Cols, t.Cols) {
					continue
				}
				vol := int64(len(lbc.Rows)) * int64(len(ubc.Cols)) * int64(len(lbc.Cols))
				if vol > best {
					best, lb, ub = vol, lbc, ubc
				}
			}
		}
	}
	if lb == nil {
		b.Skip("partition produced no misaligned update")
	}
	flops := 2 * best
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UpdateBlock(bm, lb, ub, ws)
	}
	b.ReportMetric(float64(flops)*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "GFLOP/s")
}
