package core

import (
	"fmt"
	"math"

	"sstar/internal/machine"
	"sstar/internal/sparse"
	"sstar/internal/supernode"
)

// GridShape picks the processor grid p = pr x pc for the 2D codes. The paper
// sets pc/pr = 2 in practice; for processor counts where that is not exact we
// take the divisor of p closest to sqrt(p/2), preferring the smaller.
//
// A prime p > 3 has only the degenerate divisors 1 and p, and a 1 x p grid
// collapses the 2D codes into a bad 1D mapping (every block row on one
// processor row). Rather than accept that cliff, GridShape falls back to the
// best grid of p-1 processors — one processor idles, which costs 1/p of the
// machine instead of the grid's whole row dimension. pr*pc may therefore be
// p-1; callers must use the returned shape, not assume pr*pc == p. Tiny
// counts (p <= 3) keep their natural 1 x p row, where 1D and 2D coincide.
func GridShape(p int) (pr, pc int) {
	if p > 3 && smallestFactor(p) == p {
		return GridShape(p - 1)
	}
	target := math.Sqrt(float64(p) / 2)
	best, bestDist := 1, math.Abs(1-target)
	for d := 2; d <= p; d++ {
		if p%d != 0 {
			continue
		}
		if dist := math.Abs(float64(d) - target); dist < bestDist {
			best, bestDist = d, dist
		}
	}
	return best, p / best
}

// smallestFactor returns the least factor >= 2 of p (p itself when prime).
func smallestFactor(p int) int {
	for d := 2; d*d <= p; d++ {
		if p%d == 0 {
			return d
		}
	}
	return p
}

// pivCand is the per-column pivot candidate a processor reports to the owner
// of the diagonal block (Fig. 13 line 05).
type pivCand struct {
	val float64   // |value| of the local maximum, -1 when no local rows
	row int       // global row index
	sub []float64 // copy of the candidate subrow (panel width)
}

// pivChoice is the owner's broadcast (Fig. 13 line 08): the selected pivot
// row, its subrow, and the displaced subrow m for the pivot's owner to store.
type pivChoice struct {
	t    int
	rowT []float64
	oldM []float64
}

// swapPayload carries one side of a pairwise row-interchange exchange in
// ScaleSwap (Fig. 14 line 05).
type swapPayload struct{ vals []float64 }

// proc2d bundles the per-processor state of a 2D run.
type proc2d struct {
	proc   *machine.Proc
	bm     *supernode.BlockMatrix
	p      *supernode.Partition
	pr, pc int
	r, c   int
	piv    []int32
	tol    float64
	ws     *Workspace
	prev   Flops
}

func (x *proc2d) id(r, c int) int      { return r*x.pc + c }
func (x *proc2d) rowOfBlock(b int) int { return b % x.pr }
func (x *proc2d) colOfBlock(b int) int { return b % x.pc }

func (x *proc2d) charge() {
	x.prev = chargeDelta(x.proc, x.ws, x.prev)
}

// Factorize2D runs the 2D block-cyclic parallel factorization on a pr x pc
// grid. async selects the asynchronous pipelined execution of Fig. 12
// (compute-ahead Factor, no global synchronization); otherwise a global
// barrier closes every elimination step (the synchronous code of Table 7).
func Factorize2D(a *sparse.CSR, sym *Symbolic, model machine.Model, pr, pc int, async bool, opts ...RunOption) (*ParResult, error) {
	if err := errNB(sym.Partition); err != nil {
		return nil, err
	}
	cfg := applyRunOptions(opts)
	work := sym.PermutedMatrix(a)
	bm := supernode.NewBlockMatrix(sym.Partition, work)
	p := sym.Partition
	nproc := pr * pc
	mach := machine.New(nproc, model)
	if cfg.trace {
		mach.EnableTracing()
	}
	barrier := mach.NewBarrier()
	piv := make([]int32, sym.N)
	workspaces := make([]*Workspace, nproc)
	for i := range workspaces {
		workspaces[i] = NewWorkspace(bm)
	}
	pt, err := runMachine(mach, func(proc *machine.Proc) {
		x := &proc2d{
			proc: proc, bm: bm, p: p, pr: pr, pc: pc,
			r: proc.ID() / pc, c: proc.ID() % pc,
			piv: piv, tol: sym.pivotTol(), ws: workspaces[proc.ID()],
		}
		nb := p.NB
		span := func(label string, start float64) { proc.TraceSpan(label, start) }
		if async {
			if x.c == x.colOfBlock(0) {
				st := proc.Clock()
				x.factor2D(0)
				span("F(0)", st)
			}
			for k := 0; k+1 < nb; k++ {
				st := proc.Clock()
				x.scaleSwap(k)
				span(fmt.Sprintf("S(%d)", k), st)
				next := k + 1
				if x.c == x.colOfBlock(next) {
					st = proc.Clock()
					x.update2D(k, next)
					span(fmt.Sprintf("U(%d,%d)", k, next), st)
					st = proc.Clock()
					x.factor2D(next)
					span(fmt.Sprintf("F(%d)", next), st)
				}
				for j := k + 2; j < nb; j++ {
					if x.c == x.colOfBlock(j) {
						st = proc.Clock()
						x.update2D(k, j)
						span(fmt.Sprintf("U(%d,%d)", k, j), st)
					}
				}
			}
		} else {
			for k := 0; k < nb; k++ {
				if x.c == x.colOfBlock(k) {
					st := proc.Clock()
					x.factor2D(k)
					span(fmt.Sprintf("F(%d)", k), st)
				}
				if k+1 < nb {
					st := proc.Clock()
					x.scaleSwap(k)
					span(fmt.Sprintf("S(%d)", k), st)
					for j := k + 1; j < nb; j++ {
						if x.c == x.colOfBlock(j) {
							st = proc.Clock()
							x.update2D(k, j)
							span(fmt.Sprintf("U(%d,%d)", k, j), st)
						}
					}
				}
				barrier.Wait(proc)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	var fl Flops
	var bytes, msgs int64
	for i := 0; i < nproc; i++ {
		fl.Add(workspaces[i].Fl)
		bytes += mach.Proc(i).SentBytes
		msgs += mach.Proc(i).SentMessages
	}
	lb := loadBalance2D(p, pr, pc, model)
	busy := make([]float64, nproc)
	for i := range busy {
		busy[i] = mach.Proc(i).BusySeconds()
	}
	res := &ParResult{
		Fact:         &Factorization{Sym: sym, BM: bm, Piv: piv, Fl: fl},
		ParallelTime: pt,
		SentBytes:    bytes,
		SentMessages: msgs,
		BufferHigh:   mach.BufferHighWater(),
		LoadBalance:  lb,
		BusySeconds:  busy,
	}
	if cfg.trace {
		res.Traces = mach.Traces()
	}
	return res, nil
}

// factor2D is the distributed Factor(k) of Fig. 13: the processors of the
// pivot column cooperate on each panel column — local maxima flow to the
// diagonal owner, the chosen pivot subrow is broadcast back down the column,
// every participant eliminates its own rows, and finally the pivot sequence
// and local L blocks are multicast along each processor row.
func (x *proc2d) factor2D(k int) {
	p, bm := x.p, x.bm
	krow, kcol := x.rowOfBlock(k), x.colOfBlock(k)
	diagProc := x.id(krow, kcol)
	isDiag := x.proc.ID() == diagProc
	start, s := p.Start[k], p.Size(k)
	d := bm.Diag[k]
	// My L blocks of this panel.
	var lblocks []*supernode.Block
	for _, lb := range bm.LCol[k] {
		if x.rowOfBlock(lb.I) == x.r {
			lblocks = append(lblocks, lb)
		}
	}
	for mc := 0; mc < s; mc++ {
		m := start + mc
		// Local maximum.
		cand := pivCand{val: -1, row: -1}
		if isDiag {
			for rr := mc; rr < s; rr++ {
				if v := math.Abs(d.Data[rr*s+mc]); v > cand.val || (v == cand.val && start+rr < cand.row) {
					cand.val, cand.row = v, start+rr
				}
			}
		}
		for _, lb := range lblocks {
			nc := len(lb.Cols)
			for rr := range lb.Rows {
				if v := math.Abs(lb.Data[rr*nc+mc]); v > cand.val || (v == cand.val && int(lb.Rows[rr]) < cand.row) {
					cand.val, cand.row = v, int(lb.Rows[rr])
				}
			}
		}
		nlocal := int64(len(lblocks))
		if isDiag {
			nlocal += int64(s - mc)
		}
		x.ws.Fl.B1 += nlocal // comparison sweep
		var choice pivChoice
		if !isDiag {
			if cand.row >= 0 {
				cand.sub = append([]float64(nil), panelRow(bm, k, cand.row)...)
			}
			x.proc.Send(diagProc, machine.Tag{Kind: tagPivCand2D, K: k, Aux: m}, 8*(s+2), cand)
			msg := x.proc.Recv(machine.Tag{Src: diagProc, Kind: tagPivBcast2D, K: k, Aux: m})
			choice = msg.(pivChoice)
			// If I own the pivot row, store the displaced subrow m.
			if x.ownsRow(choice.t, k) {
				copy(panelRow(bm, k, choice.t), choice.oldM)
				x.ws.Fl.Sw += int64(s)
			}
		} else {
			// Collect candidates from the other processors of the column.
			best := cand
			bestSub := []float64(nil) // nil means "local row, read in place"
			for rr := 0; rr < x.pr; rr++ {
				if rr == x.r {
					continue
				}
				msg := x.proc.Recv(machine.Tag{Src: x.id(rr, kcol), Kind: tagPivCand2D, K: k, Aux: m})
				c := msg.(pivCand)
				if c.val > best.val || (c.val == best.val && c.row >= 0 && (best.row < 0 || c.row < best.row)) {
					best = c
					bestSub = c.sub
				}
			}
			if best.row < 0 || best.val == 0 {
				panic(singularErr{fmt.Errorf("%w: zero pivot at column %d", ErrSingular, m)})
			}
			if math.Abs(d.Data[mc*s+mc]) >= x.tol*best.val {
				// Threshold pivoting: keep the diagonal row.
				best = pivCand{val: math.Abs(d.Data[mc*s+mc]), row: m}
				bestSub = nil
			}
			t := best.row
			x.piv[m] = int32(t)
			rowM := panelRow(bm, k, m)
			oldM := append([]float64(nil), rowM...)
			var rowT []float64
			if bestSub == nil {
				// Pivot row is local: swap in place.
				if t != m {
					swapPanelRows(bm, k, m, t, x.ws)
				}
				rowT = append([]float64(nil), rowM...)
			} else {
				// Remote pivot: its owner will store oldM; row m takes
				// the pivot subrow.
				copy(rowM, bestSub)
				rowT = append([]float64(nil), bestSub...)
				x.ws.Fl.Sw += int64(s)
			}
			choice = pivChoice{t: t, rowT: rowT, oldM: oldM}
			dsts := make([]int, 0, x.pr-1)
			for rr := 0; rr < x.pr; rr++ {
				if rr != x.r {
					dsts = append(dsts, x.id(rr, kcol))
				}
			}
			x.proc.Multicast(dsts, machine.Tag{Kind: tagPivBcast2D, K: k, Aux: m}, 8*(2*s+2), choice)
		}
		// Eliminate my rows below the pivot.
		pivVal := choice.rowT[mc]
		if isDiag {
			pivVal = d.Data[mc*s+mc]
		}
		urow := choice.rowT
		if isDiag {
			urow = d.Data[mc*s : mc*s+s]
		}
		if isDiag {
			for rr := mc + 1; rr < s; rr++ {
				row := d.Data[rr*s : rr*s+s]
				row[mc] /= pivVal
				axpyNeg(row[mc], urow[mc+1:s], row[mc+1:s])
			}
			x.ws.Fl.B1 += int64(s - mc - 1)
			x.ws.Fl.B2 += 2 * int64(s-mc-1) * int64(s-mc-1)
		}
		for _, lb := range lblocks {
			nc := len(lb.Cols)
			for rr := range lb.Rows {
				row := lb.Data[rr*nc : rr*nc+nc]
				row[mc] /= pivVal
				axpyNeg(row[mc], urow[mc+1:s], row[mc+1:nc])
			}
			x.ws.Fl.B1 += int64(len(lb.Rows))
			x.ws.Fl.B2 += 2 * int64(len(lb.Rows)) * int64(s-mc-1)
		}
		x.charge()
	}
	// Multicast the pivot sequence, the diagonal block (from its owner) and
	// my local L blocks along my processor row (Fig. 13 lines 12-14).
	if k+1 < x.p.NB && x.pc > 1 {
		bytes := 8 * s // pivot sequence
		if isDiag {
			bytes += 8 * s * s
		}
		for _, lb := range lblocks {
			bytes += 8 * len(lb.Data)
		}
		dsts := make([]int, 0, x.pc-1)
		for cc := 0; cc < x.pc; cc++ {
			if cc != x.c {
				dsts = append(dsts, x.id(x.r, cc))
			}
		}
		x.proc.Multicast(dsts, machine.Tag{Kind: tagPanelRow2D, K: k}, bytes, nil)
	}
	x.charge()
}

// ownsRow reports whether this processor holds the panel-k storage of global
// row t (t below the diagonal block).
func (x *proc2d) ownsRow(t, k int) bool {
	bt := x.p.BlockOf[t]
	if bt == k {
		return x.proc.ID() == x.id(x.rowOfBlock(k), x.colOfBlock(k))
	}
	return x.rowOfBlock(bt) == x.r && x.colOfBlock(k) == x.c && x.bm.BlockAt(bt, k) != nil
}

func axpyNeg(alpha float64, xs, ys []float64) {
	if alpha == 0 || len(xs) == 0 {
		return
	}
	_ = ys[len(xs)-1]
	for i, v := range xs {
		ys[i] -= alpha * v
	}
}

// scaleSwap is task ScaleSwap(k) of Fig. 14: obtain the pivot sequence (via
// the row multicast), perform the delayed row interchanges of the trailing
// block columns this processor owns (pairwise exchanges across processor
// rows when the two rows live apart), scale the U row by the diagonal owner
// row, and multicast the scaled U blocks down each processor column.
func (x *proc2d) scaleSwap(k int) {
	p, bm := x.p, x.bm
	krow, kcol := x.rowOfBlock(k), x.colOfBlock(k)
	if x.c != kcol && x.pc > 1 {
		x.proc.Recv(machine.Tag{Src: x.id(x.r, kcol), Kind: tagPanelRow2D, K: k})
	}
	// My trailing block columns with U structure in row k.
	var myJs []int
	for _, jb := range p.UBlocks[k] {
		if x.colOfBlock(int(jb)) == x.c {
			myJs = append(myJs, int(jb))
		}
	}
	// Delayed row interchanges.
	for m := p.Start[k]; m < p.Start[k+1]; m++ {
		t := int(x.piv[m])
		if t == m {
			continue
		}
		bt := p.BlockOf[t]
		trow := x.rowOfBlock(bt)
		if bt == k {
			trow = krow
		}
		switch {
		case x.r == krow && trow == krow:
			for _, j := range myJs {
				SwapRowsInBlockColumn(bm, j, m, t, x.ws)
			}
		case x.r == krow:
			x.exchangeSwap(k, m, t, myJs, m, x.id(trow, x.c))
		case x.r == trow:
			x.exchangeSwap(k, m, t, myJs, t, x.id(krow, x.c))
		}
	}
	x.charge()
	// Scaling of the U row and the column multicast.
	if x.r == krow {
		bytes := 0
		for _, j := range myJs {
			ScaleU(bm, k, j, x.ws)
			bytes += bm.BlockAt(k, j).Bytes()
		}
		x.charge()
		if x.pr > 1 && len(myJs) > 0 {
			dsts := make([]int, 0, x.pr-1)
			for rr := 0; rr < x.pr; rr++ {
				if rr != x.r {
					dsts = append(dsts, x.id(rr, x.c))
				}
			}
			x.proc.Multicast(dsts, machine.Tag{Kind: tagPanelCol2D, K: k}, bytes, nil)
		}
	} else if len(myJs) > 0 && x.pr > 1 {
		x.proc.Recv(machine.Tag{Src: x.id(krow, x.c), Kind: tagPanelCol2D, K: k})
	}
}

// exchangeSwap performs one side of the pairwise interchange of rows m and t
// across this processor's block columns myJs: it ships the local side's
// values at the commonly-stored columns to the partner and overwrites them
// with the partner's. mine selects which of the two rows is local.
func (x *proc2d) exchangeSwap(k, m, t int, myJs []int, mine int, partner int) {
	var vals []float64
	var slots []rowSlot
	for _, j := range myJs {
		cs := commonSlots(x.bm, j, m, t)
		for _, slot := range cs {
			var local rowSlot
			if mine == m {
				local = slot.a
			} else {
				local = slot.b
			}
			vals = append(vals, local.data[local.pos])
			slots = append(slots, local)
		}
	}
	tag := machine.Tag{Kind: tagSwap2D, K: k, Aux: m}
	x.proc.Send(partner, tag, 8*len(vals), swapPayload{vals: vals})
	in := x.proc.Recv(machine.Tag{Src: partner, Kind: tagSwap2D, K: k, Aux: m}).(swapPayload)
	if len(in.vals) != len(slots) {
		panic(fmt.Sprintf("core: swap exchange size mismatch %d vs %d", len(in.vals), len(slots)))
	}
	for i, slot := range slots {
		slot.data[slot.pos] = in.vals[i]
	}
	x.ws.Fl.Sw += int64(len(slots))
}

// rowSlot addresses one storage cell of a packed block row.
type rowSlot struct {
	data []float64
	pos  int
}

type slotPair struct{ a, b rowSlot }

// commonSlots lists, in ascending column order, the storage cells of global
// rows m and t within block column j at the columns both rows store (the
// interchange set; values at asymmetric slots are structural zeros).
func commonSlots(bm *supernode.BlockMatrix, j, m, t int) []slotPair {
	p := bm.P
	blkM := bm.BlockAt(p.BlockOf[m], j)
	blkT := bm.BlockAt(p.BlockOf[t], j)
	if blkM == nil || blkT == nil {
		return nil
	}
	rm := blkM.RowSlice(m)
	rt := blkT.RowSlice(t)
	if rm == nil || rt == nil {
		return nil
	}
	var out []slotPair
	c1, c2 := blkM.Cols, blkT.Cols
	i, q := 0, 0
	for i < len(c1) && q < len(c2) {
		switch {
		case c1[i] < c2[q]:
			i++
		case c1[i] > c2[q]:
			q++
		default:
			out = append(out, slotPair{a: rowSlot{rm, i}, b: rowSlot{rt, q}})
			i++
			q++
		}
	}
	return out
}

// update2D is task Update_2D(k, j) of Fig. 15: this processor updates the
// blocks A_ij it owns using L_ik (from the row multicast) and U_kj (from the
// column multicast).
func (x *proc2d) update2D(k, j int) {
	bm := x.bm
	ub := bm.BlockAt(k, j)
	if ub == nil {
		return
	}
	for _, lb := range bm.LCol[k] {
		if x.rowOfBlock(lb.I) != x.r {
			continue
		}
		UpdateBlock(bm, lb, ub, x.ws)
	}
	x.charge()
	x.proc.ChargeTask()
}

// loadBalance2D computes the Fig. 18 load-balance factor of the 2D mapping:
// the update work of target block (i, j) belongs to processor
// (i mod pr, j mod pc).
func loadBalance2D(p *supernode.Partition, pr, pc int, model machine.Model) float64 {
	per := make([]float64, pr*pc)
	total := 0.0
	for k := 0; k < p.NB; k++ {
		s := p.Size(k)
		// Group L rows by block.
		counts := map[int]int{}
		for _, r := range p.LRows[k] {
			counts[p.BlockOf[r]]++
		}
		for _, jb := range p.UBlocks[k] {
			j := int(jb)
			nc := 0
			for _, c := range p.UCols[k] {
				if p.BlockOf[c] == j {
					nc++
				}
			}
			for ib, rows := range counts {
				w := model.ComputeSeconds(0, 0, 2*int64(rows)*int64(nc)*int64(s), 0)
				per[(ib%pr)*pc+j%pc] += w
				total += w
			}
		}
	}
	max := 0.0
	for _, v := range per {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return 1
	}
	return total / (float64(len(per)) * max)
}
