package core

import (
	"math"
	"testing"

	"sstar/internal/machine"
	"sstar/internal/sched"
	"sstar/internal/sparse"
)

func TestSolvePar1DMatchesSequential(t *testing.T) {
	a := sparse.Grid2D(11, 11, false, sparse.GenOptions{Seed: 85, WeakDiagFraction: 0.15, Convection: 0.4})
	sym := analyzeFor(t, a, 8, 4)
	for _, nproc := range []int{1, 2, 4, 7} {
		s := ScheduleCA(sym, nproc)
		res, err := Factorize1D(a, sym, machine.T3E(), s)
		if err != nil {
			t.Fatal(err)
		}
		b := randRHS(a.N, 86)
		xSeq := res.Fact.Solve(b)
		sr, err := SolvePar1D(res.Fact, s.Owner, nproc, machine.T3E(), b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sr.X {
			if math.Abs(sr.X[i]-xSeq[i]) > 1e-11*(1+math.Abs(xSeq[i])) {
				t.Fatalf("P=%d: distributed solve differs at %d: %g vs %g", nproc, i, sr.X[i], xSeq[i])
			}
		}
		if r := residual(a, sr.X, b); r > 1e-9 {
			t.Fatalf("P=%d: residual %g", nproc, r)
		}
		if nproc == 1 && sr.SentMessages != 0 {
			t.Fatalf("single-processor solve sent %d messages", sr.SentMessages)
		}
		if sr.ParallelTime <= 0 {
			t.Fatal("non-positive solve time")
		}
	}
}

func TestSolvePar1DWithRAPIDOwners(t *testing.T) {
	a := sparse.Circuit(150, 3, sparse.GenOptions{Seed: 87})
	sym := analyzeFor(t, a, 8, 4)
	model := machine.T3E()
	s := ScheduleRAPID(sym, 4, model)
	res, err := Factorize1D(a, sym, model, s)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(a.N, 88)
	sr, err := SolvePar1D(res.Fact, s.Owner, 4, model, b)
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, sr.X, b); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}

// TestSolveMuchCheaperThanFactor checks the paper's Section 2 remark: "the
// triangular solvers are much less time consuming than the Gaussian
// elimination process".
func TestSolveMuchCheaperThanFactor(t *testing.T) {
	a := sparse.Grid2D(32, 32, false, sparse.GenOptions{Seed: 89})
	sym := analyzeFor(t, a, 25, 4)
	model := machine.T3E()
	s := ScheduleCA(sym, 4)
	res, err := Factorize1D(a, sym, model, s)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(a.N, 90)
	sr, err := SolvePar1D(res.Fact, s.Owner, 4, model, b)
	if err != nil {
		t.Fatal(err)
	}
	if sr.ParallelTime*3 > res.ParallelTime {
		t.Fatalf("solve time %v not well below factor time %v", sr.ParallelTime, res.ParallelTime)
	}
}

func TestSolvePar1DDeterministicTime(t *testing.T) {
	a := sparse.Grid2D(9, 9, false, sparse.GenOptions{Seed: 91, WeakDiagFraction: 0.2})
	sym := analyzeFor(t, a, 6, 3)
	s := ScheduleCA(sym, 3)
	res, err := Factorize1D(a, sym, machine.T3D(), s)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(a.N, 92)
	var first float64 = -1
	for i := 0; i < 4; i++ {
		sr, err := SolvePar1D(res.Fact, s.Owner, 3, machine.T3D(), b)
		if err != nil {
			t.Fatal(err)
		}
		if first < 0 {
			first = sr.ParallelTime
		} else if sr.ParallelTime != first {
			t.Fatalf("solve time not deterministic: %v vs %v", sr.ParallelTime, first)
		}
	}
}

// Exercise the owner-map flexibility: a deliberately bad (all-on-one) owner
// map must still give correct answers.
func TestSolvePar1DDegenerateOwners(t *testing.T) {
	a := sparse.RandomSparse(80, 3, 93)
	sym := analyzeFor(t, a, 8, 4)
	owner := make([]int, sym.Partition.NB)
	for i := range owner {
		owner[i] = 1 // everything on processor 1 of 3
	}
	res, err := Factorize1D(a, sym, machine.Unit(), &sched.Schedule{P: 3, Owner: owner, Order: ordersFor(sym, owner, 3)})
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(a.N, 94)
	sr, err := SolvePar1D(res.Fact, owner, 3, machine.Unit(), b)
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, sr.X, b); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}

// ordersFor builds a valid sequential task order for an owner map (helper for
// the degenerate-owner test).
func ordersFor(sym *Symbolic, owner []int, nproc int) [][]int {
	g := scheduleGraph(sym)
	order := make([][]int, nproc)
	for _, id := range g.TopoOrder() {
		t := g.Tasks[id]
		order[owner[t.J]] = append(order[owner[t.J]], id)
	}
	return order
}

func TestSolvePar2DMatchesSequential(t *testing.T) {
	a := sparse.Grid2D(11, 11, false, sparse.GenOptions{Seed: 95, WeakDiagFraction: 0.15, Convection: 0.4})
	sym := analyzeFor(t, a, 8, 4)
	for _, grid := range [][2]int{{1, 1}, {1, 3}, {2, 2}, {2, 4}, {3, 2}} {
		res, err := Factorize2D(a, sym, machine.T3E(), grid[0], grid[1], true)
		if err != nil {
			t.Fatal(err)
		}
		b := randRHS(a.N, 96)
		xSeq := res.Fact.Solve(b)
		sr, err := SolvePar2D(res.Fact, grid[0], grid[1], machine.T3E(), b)
		if err != nil {
			t.Fatalf("grid %v: %v", grid, err)
		}
		for i := range sr.X {
			if math.Abs(sr.X[i]-xSeq[i]) > 1e-11*(1+math.Abs(xSeq[i])) {
				t.Fatalf("grid %v: 2D solve differs at %d: %g vs %g", grid, i, sr.X[i], xSeq[i])
			}
		}
		if r := residual(a, sr.X, b); r > 1e-9 {
			t.Fatalf("grid %v: residual %g", grid, r)
		}
	}
}

func TestSolvePar2DDeterministicAndCheap(t *testing.T) {
	a := sparse.Grid2D(20, 20, false, sparse.GenOptions{Seed: 97})
	sym := analyzeFor(t, a, 16, 4)
	res, err := Factorize2D(a, sym, machine.T3E(), 2, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(a.N, 98)
	var first float64 = -1
	for i := 0; i < 3; i++ {
		sr, err := SolvePar2D(res.Fact, 2, 4, machine.T3E(), b)
		if err != nil {
			t.Fatal(err)
		}
		if first < 0 {
			first = sr.ParallelTime
		} else if sr.ParallelTime != first {
			t.Fatalf("2D solve time not deterministic: %v vs %v", sr.ParallelTime, first)
		}
	}
	if first >= res.ParallelTime {
		t.Fatalf("2D solve %v not cheaper than factorization %v", first, res.ParallelTime)
	}
}
