package core

import "errors"

// ErrSingular reports a numerically singular matrix: some pivot search found
// no nonzero candidate. Every factorization path — the sequential S* kernels,
// the host-parallel executor, the virtual-machine 1D/2D codes, the dense
// fallback, and the Gilbert–Peierls reference — wraps this sentinel, so
// callers can test errors.Is(err, core.ErrSingular) without parsing messages.
// The root package re-exports it as sstar.ErrSingular.
var ErrSingular = errors.New("core: matrix is numerically singular")
