package core

import (
	"sort"

	"sstar/internal/machine"
	"sstar/internal/supernode"
	"sstar/internal/xblas"
)

// Tag kinds of the distributed triangular solver.
const (
	tagFwdContrib uint8 = iota + 32
	tagFwdSwap
	tagBwdContrib
)

// SolveResult is the outcome of a distributed solve.
type SolveResult struct {
	X            []float64
	ParallelTime float64
	SentBytes    int64
	SentMessages int64
}

// SolvePar1D solves A x = b on the virtual machine with the factors
// distributed by block column: owner[j] names the processor holding block
// column j (use the owner map of the schedule that produced the
// factorization). The forward sweep interleaves the panel pivot exchanges
// with fan-in contribution messages exactly as the sequential solve does, so
// the result matches the sequential Solve; the backward sweep is a pure
// fan-in. The returned parallel time demonstrates the paper's remark that the
// triangular solvers are much cheaper than the factorization.
func SolvePar1D(f *Factorization, owner []int, nproc int, model machine.Model, b []float64) (*SolveResult, error) {
	sym := f.Sym
	p := sym.Partition
	bm := f.BM
	n := sym.N
	mach := machine.New(nproc, model)

	// Shared solution vector; ownership discipline follows the messages.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[sym.RowPerm[i]] = b[i]
	}

	// Static event structure: for each panel k, the L target blocks (fan-out
	// of forward contributions) and U source columns (fan-in of backward
	// contributions) at block granularity.
	pt, err := runMachine(mach, func(proc *machine.Proc) {
		me := proc.ID()
		// ---- Forward sweep: L y' = P b, panel by panel. ----
		for k := 0; k < p.NB; k++ {
			start, end := p.Start[k], p.Start[k+1]
			s := end - start
			// 1. Pivot exchanges of panel k (they precede the panel solve).
			for m := start; m < end; m++ {
				t := int(f.Piv[m])
				if t == m {
					continue
				}
				bt := p.BlockOf[t]
				ownK, ownT := owner[k] == me, owner[bt] == me
				switch {
				case ownK && ownT:
					y[m], y[t] = y[t], y[m]
				case ownK:
					proc.Send(owner[bt], machine.Tag{Kind: tagFwdSwap, K: k, Aux: m}, 8, y[m])
					y[m] = proc.Recv(machine.Tag{Src: owner[bt], Kind: tagFwdSwap, K: k, Aux: m}).(float64)
				case ownT:
					proc.Send(owner[k], machine.Tag{Kind: tagFwdSwap, K: k, Aux: m}, 8, y[t])
					y[t] = proc.Recv(machine.Tag{Src: owner[k], Kind: tagFwdSwap, K: k, Aux: m}).(float64)
				}
			}
			if owner[k] == me {
				// 2. Solve the panel against the unit-lower diagonal part.
				d := bm.Diag[k]
				xblas.TrsvLowerUnit(s, d.Data, s, y[start:end])
				proc.ChargeFlops(0, int64(s)*int64(s-1), 0, 0)
				// 3. Eliminate: per L block, compute the contribution and
				// deliver it (locally or by message).
				for _, lb := range bm.LCol[k] {
					nc := len(lb.Cols)
					vals := make([]float64, len(lb.Rows))
					for r := range lb.Rows {
						vals[r] = xblas.Dot(lb.Data[r*nc:(r+1)*nc], y[start:end])
					}
					proc.ChargeFlops(0, 2*int64(len(lb.Rows))*int64(s), 0, 0)
					if owner[lb.I] == me {
						for r, gr := range lb.Rows {
							y[gr] -= vals[r]
						}
					} else {
						proc.Send(owner[lb.I], machine.Tag{Kind: tagFwdContrib, K: k, Aux: lb.I},
							8*len(vals), vals)
					}
				}
			} else {
				// 3'. Apply the contributions of panel k that target my
				// panels.
				for _, myBlk := range myLTargets(p, owner, me, k) {
					lb := bm.BlockAt(myBlk, k)
					vals := proc.Recv(machine.Tag{Src: owner[k], Kind: tagFwdContrib, K: k, Aux: myBlk}).([]float64)
					for r, gr := range lb.Rows {
						y[gr] -= vals[r]
					}
					proc.ChargeFlops(int64(len(vals)), 0, 0, 0)
				}
			}
		}
		// ---- Backward sweep: U x = y', panels in reverse. ----
		for k := p.NB - 1; k >= 0; k-- {
			start, end := p.Start[k], p.Start[k+1]
			s := end - start
			if owner[k] != me {
				// Send my column blocks' contributions to row k when I own
				// a later panel j with U_kj nonzero — handled from the
				// owner[j] side below, nothing to do here.
				continue
			}
			// Collect contributions from later panels (local ones were
			// applied when those panels were processed — see below), then
			// remote fan-in sorted by source for determinism.
			var srcs []int
			for _, j := range contributorsOfRow(p, k) {
				if owner[j] != me {
					srcs = append(srcs, j)
				}
			}
			sort.Ints(srcs)
			for _, j := range srcs {
				vals := proc.Recv(machine.Tag{Src: owner[j], Kind: tagBwdContrib, K: j, Aux: k}).([]float64)
				for i := 0; i < s; i++ {
					y[start+i] -= vals[i]
				}
				proc.ChargeFlops(int64(s), 0, 0, 0)
			}
			// Solve against the upper-triangular diagonal part.
			d := bm.Diag[k]
			xblas.TrsvUpper(s, d.Data, s, y[start:end])
			proc.ChargeFlops(0, int64(s)*int64(s), 0, 0)
			// Produce contributions of my panel to earlier row panels: the
			// U blocks (i, k) live in MY block column k.
			for i := k - 1; i >= 0; i-- {
				ub := bm.BlockAt(i, k)
				if ub == nil {
					continue
				}
				si := p.Size(i)
				nc := len(ub.Cols)
				vals := make([]float64, si)
				for r := 0; r < si; r++ {
					sum := 0.0
					row := ub.Data[r*nc : (r+1)*nc]
					for q, c := range ub.Cols {
						sum += row[q] * y[c]
					}
					vals[r] = sum
				}
				proc.ChargeFlops(0, 2*int64(si)*int64(nc), 0, 0)
				if owner[i] == me {
					for r := 0; r < si; r++ {
						y[p.Start[i]+r] -= vals[r]
					}
				} else {
					proc.Send(owner[i], machine.Tag{Kind: tagBwdContrib, K: k, Aux: i}, 8*si, vals)
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = y[sym.ColPerm[j]]
	}
	var bytes, msgs int64
	for i := 0; i < nproc; i++ {
		bytes += mach.Proc(i).SentBytes
		msgs += mach.Proc(i).SentMessages
	}
	return &SolveResult{X: x, ParallelTime: pt, SentBytes: bytes, SentMessages: msgs}, nil
}

// myLTargets lists the row blocks i of the L blocks in column k whose panels
// the given processor owns, in ascending order (the deterministic receive
// order of the forward sweep).
func myLTargets(p *supernode.Partition, owner []int, me, k int) []int {
	var out []int
	for _, ib := range p.LBlocks[k] {
		if owner[ib] == me {
			out = append(out, int(ib))
		}
	}
	return out
}

// contributorsOfRow lists the panels j > k with U_kj nonzero (the backward
// fan-in sources of panel k).
func contributorsOfRow(p *supernode.Partition, k int) []int {
	out := make([]int, len(p.UBlocks[k]))
	for i, jb := range p.UBlocks[k] {
		out[i] = int(jb)
	}
	return out
}
