package bench

import (
	"fmt"

	"sstar/internal/core"
	"sstar/internal/supernode"
)

// BlockingResult compares fixed-knob blocking (the paper's BSIZE/r) against
// the structure-adaptive chooser on one suite matrix: sequential
// factorization wall clock and MFLOPS under each partition, plus the plan
// the chooser settled on. BitIdentical verifies the determinism contract of
// the adaptive path: with the solves compared against themselves across the
// two partitions the *solutions* agree to roundoff, but the factors only
// need to be bitwise stable run to run, which is what is checked here.
type BlockingResult struct {
	Matrix string `json:"matrix"`
	Order  int    `json:"order"`
	Nnz    int    `json:"nnz"`

	// Fixed-knob partition (cfg.BSize / cfg.Amalg).
	FixedPanels  int     `json:"fixed_panels"`
	FixedFlops   int64   `json:"fixed_flops"`
	FixedSeconds float64 `json:"fixed_seconds"`
	FixedMFLOPS  float64 `json:"fixed_mflops"`

	// Structure-adaptive partition and its chosen plan.
	AdaptivePanels     int     `json:"adaptive_panels"`
	AdaptiveMaxBlock   int     `json:"adaptive_max_block"`
	AdaptiveAmalgamate int     `json:"adaptive_amalgamate"`
	AdaptiveFlops      int64   `json:"adaptive_flops"`
	AdaptiveSeconds    float64 `json:"adaptive_seconds"`
	AdaptiveMFLOPS     float64 `json:"adaptive_mflops"`

	// Speedup is fixed seconds over adaptive seconds (>1: adaptive wins).
	Speedup float64 `json:"speedup"`
	// BitIdentical reports that repeating the adaptive factorization
	// reproduced the factors bit for bit (the chooser is deterministic).
	BitIdentical bool `json:"bit_identical"`
}

// Blocking measures fixed vs structure-adaptive blocking over the bundled
// suite: one symbolic analysis per configuration, then timed sequential
// factorizations on the same matrix values.
func Blocking(cfg Config) ([]BlockingResult, error) {
	var out []BlockingResult
	for _, spec := range Suite() {
		r, err := blockingMatrix(spec, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func blockingMatrix(spec Spec, cfg Config) (BlockingResult, error) {
	a := spec.Gen(cfg.Scale)
	fixedSym := core.Analyze(a, core.AnalyzeOptions{
		Supernode: supernode.Options{MaxBlock: cfg.BSize, Amalgamate: cfg.Amalg},
	})
	adaptSym := core.Analyze(a, core.AnalyzeOptions{
		Supernode: supernode.Options{}, // MaxBlock 0: structure-adaptive
	})

	fixedSec, fixedFact, err := timeFactorize(a, fixedSym, 1)
	if err != nil {
		return BlockingResult{}, fmt.Errorf("%s fixed: %w", spec.Name, err)
	}
	adaptSec, adaptFact, err := timeFactorize(a, adaptSym, 1)
	if err != nil {
		return BlockingResult{}, fmt.Errorf("%s adaptive: %w", spec.Name, err)
	}
	// Re-run the adaptive path once more, through a fresh analysis, to pin
	// that the chooser + factorization reproduce bit for bit.
	reSym := core.Analyze(a, core.AnalyzeOptions{Supernode: supernode.Options{}})
	reFact, err := core.FactorizeSeq(a, reSym)
	if err != nil {
		return BlockingResult{}, fmt.Errorf("%s adaptive rerun: %w", spec.Name, err)
	}

	choice := adaptSym.Partition.Choice
	return BlockingResult{
		Matrix: spec.Name,
		Order:  a.N,
		Nnz:    a.Nnz(),

		FixedPanels:  fixedSym.Partition.NB,
		FixedFlops:   fixedFact.Fl.Total(),
		FixedSeconds: fixedSec,
		FixedMFLOPS:  mflops(fixedFact.Fl.Total(), fixedSec),

		AdaptivePanels:     adaptSym.Partition.NB,
		AdaptiveMaxBlock:   choice.MaxBlock,
		AdaptiveAmalgamate: choice.Amalgamate,
		AdaptiveFlops:      adaptFact.Fl.Total(),
		AdaptiveSeconds:    adaptSec,
		AdaptiveMFLOPS:     mflops(adaptFact.Fl.Total(), adaptSec),

		Speedup:      fixedSec / adaptSec,
		BitIdentical: factorsEqual(adaptFact, reFact),
	}, nil
}

// BlockingTable renders the comparison for the terminal.
func BlockingTable(results []BlockingResult, cfg Config) *Table {
	t := &Table{
		Title:   "Blocking: fixed knobs vs structure-adaptive cost model (sequential factorization)",
		Headers: []string{"matrix", "order", "fixed NB", "fixed MFLOPS", "adapt NB", "maxw", "r", "adapt MFLOPS", "speedup", "bit-id"},
		Notes: []string{
			fmt.Sprintf("fixed: BSIZE=%d r=%d; adaptive: per-matrix cost model", cfg.BSize, cfg.Amalg),
			"speedup = fixed seconds / adaptive seconds (fastest of repeated runs)",
			"bit-id: adaptive factors reproduce bitwise across fresh analyses",
		},
	}
	for _, r := range results {
		t.AddRow(r.Matrix,
			fmt.Sprintf("%d", r.Order),
			fmt.Sprintf("%d", r.FixedPanels),
			fmt.Sprintf("%.0f", r.FixedMFLOPS),
			fmt.Sprintf("%d", r.AdaptivePanels),
			fmt.Sprintf("%d", r.AdaptiveMaxBlock),
			fmt.Sprintf("%d", r.AdaptiveAmalgamate),
			fmt.Sprintf("%.0f", r.AdaptiveMFLOPS),
			fmt.Sprintf("%.2f", r.Speedup),
			fmt.Sprintf("%v", r.BitIdentical))
	}
	return t
}
