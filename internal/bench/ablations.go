package bench

import (
	"fmt"

	"sstar/internal/core"
	"sstar/internal/machine"
	"sstar/internal/supernode"
)

// AblationBlockSize sweeps the supernode panel width (the paper fixes 25
// after observing that larger blocks cut parallelism and smaller ones cut
// BLAS-3 efficiency is folded into the rate model; here the visible effect is
// on parallel time and task granularity).
func AblationBlockSize(cfg Config, name string, sizes []int, nproc int) (*Table, error) {
	spec := ByName(name)
	if spec == nil {
		return nil, fmt.Errorf("bench: unknown matrix %q", name)
	}
	t := &Table{
		Title:   fmt.Sprintf("Ablation: block size sweep on %s (2D async, P=%d, T3E)", name, nproc),
		Headers: []string{"BSIZE", "blocks", "PT(s)", "MFLOPS", "storage"},
		Notes:   []string{"paper: BSIZE=25 balances cache efficiency against available parallelism."},
	}
	a := spec.Gen(cfg.Scale)
	model := machine.T3E()
	for _, bs := range sizes {
		sym := core.Analyze(a, core.AnalyzeOptions{Supernode: supernode.Options{MaxBlock: bs, Amalgamate: cfg.Amalg}})
		pre := sym.PermutedMatrix(a)
		gp, err := core.GPFactorize(pre, 1.0)
		if err != nil {
			return nil, err
		}
		pr, pc := core.GridShape(nproc)
		res, err := core.Factorize2D(a, sym, effModel(model, sym), pr, pc, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", bs),
			fmt.Sprintf("%d", sym.Partition.NB),
			fmt.Sprintf("%.4f", res.ParallelTime),
			fmt.Sprintf("%.1f", mflops(gp.Flops, res.ParallelTime)),
			fmt.Sprintf("%d", res.Fact.BM.StorageEntries()))
	}
	return t, nil
}

// AblationAmalgamation sweeps the relaxation factor r (paper Section 3.3:
// r in 4..6 is best, improving sequential time 10-55%).
func AblationAmalgamation(cfg Config, name string, factors []int) (*Table, error) {
	spec := ByName(name)
	if spec == nil {
		return nil, fmt.Errorf("bench: unknown matrix %q", name)
	}
	t := &Table{
		Title:   fmt.Sprintf("Ablation: amalgamation factor sweep on %s (sequential, T3E model)", name),
		Headers: []string{"r", "blocks", "storage", "T_seq(s)", "MFLOPS"},
		Notes:   []string{"paper: bigger supernodes raise BLAS-3 share until padding zeros dominate."},
	}
	a := spec.Gen(cfg.Scale)
	model := machine.T3E()
	for _, r := range factors {
		sym := core.Analyze(a, core.AnalyzeOptions{Supernode: supernode.Options{MaxBlock: cfg.BSize, Amalgamate: r}})
		pre := sym.PermutedMatrix(a)
		gp, err := core.GPFactorize(pre, 1.0)
		if err != nil {
			return nil, err
		}
		fact, err := core.FactorizeSeq(a, sym)
		if err != nil {
			return nil, err
		}
		ts := seqModeledTime(fact.Fl, effModel(model, sym))
		t.AddRow(fmt.Sprintf("%d", r),
			fmt.Sprintf("%d", sym.Partition.NB),
			fmt.Sprintf("%d", fact.BM.StorageEntries()),
			fmt.Sprintf("%.4f", ts),
			fmt.Sprintf("%.1f", mflops(gp.Flops, ts)))
	}
	return t, nil
}

// AblationGridAspect sweeps the processor-grid aspect ratio at a fixed
// processor count (the paper reports pr <= pc + 1, in practice pc/pr = 2,
// works best).
func AblationGridAspect(cfg Config, name string, nproc int) (*Table, error) {
	spec := ByName(name)
	if spec == nil {
		return nil, fmt.Errorf("bench: unknown matrix %q", name)
	}
	t := &Table{
		Title:   fmt.Sprintf("Ablation: 2D grid aspect sweep on %s (P=%d, T3E, async)", name, nproc),
		Headers: []string{"pr x pc", "PT(s)", "MFLOPS", "msgs", "bytes"},
		Notes:   []string{"paper: pc/pr ~ 2 is best — pivot search serializes along pr, U multicasts along pc."},
	}
	a := spec.Gen(cfg.Scale)
	model := machine.T3E()
	sym := core.Analyze(a, core.AnalyzeOptions{Supernode: supernode.Options{MaxBlock: cfg.BSize, Amalgamate: cfg.Amalg}})
	pre := sym.PermutedMatrix(a)
	gp, err := core.GPFactorize(pre, 1.0)
	if err != nil {
		return nil, err
	}
	for pr := 1; pr <= nproc; pr++ {
		if nproc%pr != 0 {
			continue
		}
		pc := nproc / pr
		res, err := core.Factorize2D(a, sym, effModel(model, sym), pr, pc, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%dx%d", pr, pc),
			fmt.Sprintf("%.4f", res.ParallelTime),
			fmt.Sprintf("%.1f", mflops(gp.Flops, res.ParallelTime)),
			fmt.Sprintf("%d", res.SentMessages),
			fmt.Sprintf("%d", res.SentBytes))
	}
	return t, nil
}

// AblationOrdering quantifies how much the preprocessing ordering matters for
// the static overestimate (the paper's Section 7 future-work discussion):
// natural order versus MC21 transversal + minimum degree on A^T A.
func AblationOrdering(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Ablation: ordering impact on static fill (natural vs MMD(A'A) vs COLMMD)",
		Headers: []string{"matrix", "fill natural", "fill MMD(A'A)", "fill COLMMD", "MMD reduction", "COLMMD reduction"},
		Notes: []string{
			"paper Section 7: the static scheme depends on a good ordering; a poor one (or a",
			"nearly dense row) inflates the overestimate dramatically.",
		},
	}
	for _, spec := range SmallSuite() {
		a := spec.Gen(cfg.Scale)
		sn := supernode.Options{MaxBlock: cfg.BSize, Amalgamate: cfg.Amalg}
		natural := core.Analyze(a, core.AnalyzeOptions{SkipOrdering: true, Supernode: sn})
		mmd := core.Analyze(a, core.AnalyzeOptions{Supernode: sn})
		colmmd := core.Analyze(a, core.AnalyzeOptions{Supernode: sn, Ordering: "colmmd"})
		fn := natural.Static.NnzTotal()
		fm := mmd.Static.NnzTotal()
		fc := colmmd.Static.NnzTotal()
		t.AddRow(spec.Name,
			fmt.Sprintf("%d", fn),
			fmt.Sprintf("%d", fm),
			fmt.Sprintf("%d", fc),
			fmt.Sprintf("%.1f%%", 100*(1-float64(fm)/float64(fn))),
			fmt.Sprintf("%.1f%%", 100*(1-float64(fc)/float64(fn))))
	}
	return t, nil
}

// AblationMapping compares 1D cyclic (CA), 1D graph-scheduled and 2D async on
// one matrix across processor counts.
func AblationMapping(cfg Config, name string, procs []int) (*Table, error) {
	spec := ByName(name)
	if spec == nil {
		return nil, fmt.Errorf("bench: unknown matrix %q", name)
	}
	headers := []string{"P", "1D CA (s)", "1D RAPID (s)", "2D async (s)"}
	t := &Table{
		Title:   fmt.Sprintf("Ablation: mapping/scheduling comparison on %s (T3E)", name),
		Headers: headers,
	}
	p, err := prepare(*spec, cfg)
	if err != nil {
		return nil, err
	}
	model := machine.T3E()
	for _, np := range procs {
		ca, err := run1D(p, np, model, "ca")
		if err != nil {
			return nil, err
		}
		ra, err := run1D(p, np, model, "rapid")
		if err != nil {
			return nil, err
		}
		d2, err := run2D(p, np, model, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", np),
			fmt.Sprintf("%.4f", ca.ParallelTime),
			fmt.Sprintf("%.4f", ra.ParallelTime),
			fmt.Sprintf("%.4f", d2.ParallelTime))
	}
	return t, nil
}
