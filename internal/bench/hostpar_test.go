package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestHostparQuick runs the hostpar experiment at reduced scale: every large
// suite matrix, workers {1, 2, 4, 8}, and asserts what the tracked artifact
// promises — a point per worker count, sane timings, and bit-identity of the
// parallel factors at every single point.
func TestHostparQuick(t *testing.T) {
	cfg := Config{Scale: 0.15, BSize: 10, Amalg: 4}
	workers := []int{1, 2, 4, 8}
	rep, err := Hostpar(cfg, workers)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Matrices) != len(LargeSuite()) {
		t.Fatalf("report covers %d matrices, want %d", len(rep.Matrices), len(LargeSuite()))
	}
	for _, m := range rep.Matrices {
		if len(m.Points) != len(workers) {
			t.Fatalf("%s: %d points, want %d", m.Matrix, len(m.Points), len(workers))
		}
		if m.SeqSeconds <= 0 || m.Flops <= 0 || m.Tasks <= m.Blocks-1 {
			t.Fatalf("%s: degenerate header %+v", m.Matrix, m)
		}
		for _, p := range m.Points {
			if !p.BitIdentical {
				t.Fatalf("%s workers=%d: parallel factors not bit-identical", m.Matrix, p.Workers)
			}
			if p.Seconds <= 0 || p.Speedup <= 0 || p.MFLOPS <= 0 {
				t.Fatalf("%s workers=%d: degenerate point %+v", m.Matrix, p.Workers, p)
			}
		}
	}
	// The JSON artifact must round-trip with its context fields populated.
	path := filepath.Join(t.TempDir(), "hostpar.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back HostparReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumCPU < 1 || back.GoVersion == "" || len(back.Matrices) != len(rep.Matrices) {
		t.Fatalf("round-tripped report lost context: %+v", back)
	}
	if got := rep.Table(); len(got.Rows) != len(rep.Matrices)*len(workers) {
		t.Fatalf("table has %d rows, want %d", len(got.Rows), len(rep.Matrices)*len(workers))
	}
}

func TestHostparWorkerCountsShape(t *testing.T) {
	ws := HostparWorkerCounts()
	if len(ws) == 0 || ws[0] != 1 {
		t.Fatalf("worker sweep must start at 1: %v", ws)
	}
	for i := 1; i < len(ws); i++ {
		if ws[i] != 2*ws[i-1] {
			t.Fatalf("worker sweep must double: %v", ws)
		}
	}
	// The default sweep never oversubscribes: points beyond NumCPU measure
	// scheduler overhead, not the executor, and have no place in the
	// tracked artifact.
	if top := ws[len(ws)-1]; top > runtime.NumCPU() {
		t.Fatalf("worker sweep exceeds NumCPU=%d: %v", runtime.NumCPU(), ws)
	}
}

// TestHostparOversubscribedFlag pins that explicit worker counts past the
// core count are marked, so a custom sweep cannot silently publish
// misleading "speedups".
func TestHostparOversubscribedFlag(t *testing.T) {
	over := 2 * runtime.NumCPU()
	cfg := Config{Scale: 0.1, BSize: 8, Amalg: 2}
	rep, err := Hostpar(cfg, []int{1, over})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range rep.Matrices {
		if len(m.Points) != 2 {
			t.Fatalf("%s: %d points, want 2", m.Matrix, len(m.Points))
		}
		if m.Points[0].Oversubscribed {
			t.Fatalf("%s: 1 worker flagged oversubscribed", m.Matrix)
		}
		if !m.Points[1].Oversubscribed {
			t.Fatalf("%s: %d workers on %d CPUs not flagged oversubscribed", m.Matrix, over, runtime.NumCPU())
		}
	}
}
