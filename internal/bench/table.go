package bench

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: headers, string rows and free-form
// notes (the expected shape from the paper, caveats, parameters).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteString("\n")
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteString("\n")
	}
	return b.String()
}
