package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sstar/internal/core"
	"sstar/internal/sparse"
	"sstar/internal/supernode"
)

// HostparPoint is one (worker count, wall clock) measurement of the
// shared-memory task-DAG executor on one matrix.
type HostparPoint struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	MFLOPS  float64 `json:"mflops"`
	// Speedup is sequential-driver seconds over this point's seconds.
	Speedup float64 `json:"speedup"`
	// BitIdentical reports that this run's factors (all block data and the
	// pivot sequence) matched the sequential factorization bit for bit —
	// the executor's determinism contract, verified per measurement.
	BitIdentical bool `json:"bit_identical"`
	// Oversubscribed marks points with more workers than physical CPUs:
	// their "speedup" measures goroutine scheduling overhead, not the
	// executor, and must not be read as a scaling result.
	Oversubscribed bool `json:"oversubscribed,omitempty"`
}

// HostparMatrix is the speedup curve of one suite matrix.
type HostparMatrix struct {
	Matrix     string         `json:"matrix"`
	Order      int            `json:"order"`
	Nnz        int            `json:"nnz"`
	Blocks     int            `json:"blocks"`
	Tasks      int            `json:"tasks"`
	Flops      int64          `json:"factor_flops"`
	SeqSeconds float64        `json:"seq_seconds"`
	Points     []HostparPoint `json:"points"`
}

// HostparReport is the tracked BENCH_hostpar.json artifact: wall-clock
// factorization speedup of core.FactorizeHost over worker counts on the
// large suite matrices, with the host context needed to read the curve (a
// single-core container cannot show real speedup however good the
// scheduler; num_cpu says which regime the numbers were taken in).
type HostparReport struct {
	GeneratedAt string          `json:"generated_at"`
	GoVersion   string          `json:"go_version"`
	GOOS        string          `json:"goos"`
	GOARCH      string          `json:"goarch"`
	NumCPU      int             `json:"num_cpu"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	Scale       float64         `json:"scale"`
	BSize       int             `json:"bsize"`
	Amalg       int             `json:"amalg"`
	Workers     []int           `json:"worker_counts"`
	Matrices    []HostparMatrix `json:"matrices"`
}

// HostparWorkerCounts returns the default worker sweep: 1, 2, 4, ...
// doubling up to NumCPU. The sweep deliberately stops at the physical core
// count — points beyond it measure goroutine scheduling overhead, not the
// executor, and a tracked artifact full of sub-1.0 "speedups" on a small
// box misleads more than it informs. Callers that want the oversubscribed
// tail pass explicit counts; those points carry the Oversubscribed flag.
func HostparWorkerCounts() []int {
	var out []int
	for w := 1; w <= runtime.NumCPU(); w *= 2 {
		out = append(out, w)
	}
	return out
}

// Hostpar measures the shared-memory parallel factorization on the large
// suite matrices (the ones the paper reserves for the 2D code) over the
// given worker counts, verifying bit-identity against the sequential driver
// at every point.
func Hostpar(cfg Config, workerCounts []int) (*HostparReport, error) {
	if len(workerCounts) == 0 {
		workerCounts = HostparWorkerCounts()
	}
	rep := &HostparReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Scale:       cfg.Scale,
		BSize:       cfg.BSize,
		Amalg:       cfg.Amalg,
		Workers:     workerCounts,
	}
	for _, spec := range LargeSuite() {
		m, err := hostparMatrix(spec, cfg, workerCounts)
		if err != nil {
			return nil, err
		}
		rep.Matrices = append(rep.Matrices, m)
	}
	return rep, nil
}

func hostparMatrix(spec Spec, cfg Config, workerCounts []int) (HostparMatrix, error) {
	a := spec.Gen(cfg.Scale)
	sym := core.Analyze(a, core.AnalyzeOptions{
		Supernode: supernode.Options{MaxBlock: cfg.BSize, Amalgamate: cfg.Amalg},
	})
	seqSec, seq, err := timeFactorize(a, sym, 1)
	if err != nil {
		return HostparMatrix{}, fmt.Errorf("%s: %w", spec.Name, err)
	}
	m := HostparMatrix{
		Matrix:     spec.Name,
		Order:      a.N,
		Nnz:        a.Nnz(),
		Blocks:     sym.Partition.NB,
		Tasks:      hostparTaskCount(sym.Partition.NB, sym),
		Flops:      seq.Fl.Total(),
		SeqSeconds: seqSec,
	}
	for _, w := range workerCounts {
		sec, fact, err := timeFactorize(a, sym, w)
		if err != nil {
			return HostparMatrix{}, fmt.Errorf("%s workers=%d: %w", spec.Name, w, err)
		}
		m.Points = append(m.Points, HostparPoint{
			Workers:        w,
			Seconds:        sec,
			MFLOPS:         mflops(fact.Fl.Total(), sec),
			Speedup:        seqSec / sec,
			BitIdentical:   factorsEqual(seq, fact),
			Oversubscribed: w > runtime.NumCPU(),
		})
	}
	return m, nil
}

// timeFactorize runs core.FactorizeHost until the accumulated wall clock is
// long enough for timer noise not to matter, returning the fastest run (the
// standard way to strip scheduler jitter from a speedup curve) and its
// factorization.
func timeFactorize(a *sparse.CSR, sym *core.Symbolic, workers int) (float64, *core.Factorization, error) {
	const (
		minTotal = 300 * time.Millisecond
		maxReps  = 5
	)
	best := 0.0
	var fact *core.Factorization
	total := time.Duration(0)
	for rep := 0; rep < maxReps; rep++ {
		t0 := time.Now()
		f, err := core.FactorizeHost(a, sym, workers)
		el := time.Since(t0)
		if err != nil {
			return 0, nil, err
		}
		if sec := el.Seconds(); fact == nil || sec < best {
			best, fact = sec, f
		}
		total += el
		if total >= minTotal {
			break
		}
	}
	return best, fact, nil
}

// factorsEqual reports bitwise equality of two factorizations: the pivot
// sequence, every block's packed data, and the flop tallies.
func factorsEqual(a, b *core.Factorization) bool {
	if len(a.Piv) != len(b.Piv) || a.Fl != b.Fl {
		return false
	}
	for i := range a.Piv {
		if a.Piv[i] != b.Piv[i] {
			return false
		}
	}
	eq := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	for k := range a.BM.Diag {
		if !eq(a.BM.Diag[k].Data, b.BM.Diag[k].Data) {
			return false
		}
		for i := range a.BM.LCol[k] {
			if !eq(a.BM.LCol[k][i].Data, b.BM.LCol[k][i].Data) {
				return false
			}
		}
		for i := range a.BM.URow[k] {
			if !eq(a.BM.URow[k][i].Data, b.BM.URow[k][i].Data) {
				return false
			}
		}
	}
	return true
}

// hostparTaskCount counts the DAG tasks without materializing the graph: one
// Factor per block plus one Update per nonzero U block pair.
func hostparTaskCount(nb int, sym *core.Symbolic) int {
	n := nb
	for k := 0; k < nb; k++ {
		n += len(sym.Partition.UBlocks[k])
	}
	return n
}

// WriteJSON writes the report, indented for diff-friendly tracking.
func (r *HostparReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Table renders the speedup curves for the terminal.
func (r *HostparReport) Table() *Table {
	t := &Table{
		Title:   "Host-parallel factorization: wall-clock speedup over workers",
		Headers: []string{"matrix", "order", "tasks", "seq s", "workers", "s", "speedup", "MFLOPS", "bit-id"},
		Notes: []string{
			fmt.Sprintf("%s %s/%s, NumCPU=%d GOMAXPROCS=%d, scale=%.2f",
				r.GoVersion, r.GOOS, r.GOARCH, r.NumCPU, r.GOMAXPROCS, r.Scale),
			"speedup = sequential-driver seconds / parallel seconds (fastest of repeated runs)",
			"bit-id: parallel factors bitwise equal to the sequential factors",
		},
	}
	for _, m := range r.Matrices {
		for i, p := range m.Points {
			name, order, tasks, seq := "", "", "", ""
			if i == 0 {
				name = m.Matrix
				order = fmt.Sprintf("%d", m.Order)
				tasks = fmt.Sprintf("%d", m.Tasks)
				seq = fmt.Sprintf("%.3f", m.SeqSeconds)
			}
			workers := fmt.Sprintf("%d", p.Workers)
			if p.Oversubscribed {
				workers += " (over)"
			}
			t.AddRow(name, order, tasks, seq,
				workers,
				fmt.Sprintf("%.3f", p.Seconds),
				fmt.Sprintf("%.2f", p.Speedup),
				fmt.Sprintf("%.0f", p.MFLOPS),
				fmt.Sprintf("%v", p.BitIdentical))
		}
	}
	return t
}
