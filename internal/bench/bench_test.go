package bench

import (
	"fmt"
	"strings"
	"testing"
)

func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

// quickCfg shrinks every matrix hard so the whole experiment suite runs in
// seconds inside unit tests.
func quickCfg() Config { return Config{Scale: 0.25, BSize: 16, Amalg: 4} }

func TestSuiteSpecsGenerate(t *testing.T) {
	for _, spec := range append(Suite(), Extras()...) {
		a := spec.Gen(0.2)
		if a.N <= 0 || !a.HasZeroFreeDiagonal() {
			t.Fatalf("%s: bad generated matrix", spec.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("goodwin") == nil || ByName("dense1000") == nil {
		t.Fatal("known names must resolve")
	}
	if ByName("nope") != nil {
		t.Fatal("unknown name must return nil")
	}
}

func TestSmallLargeSplit(t *testing.T) {
	small, large := SmallSuite(), LargeSuite()
	if len(small)+len(large) != len(Suite()) {
		t.Fatal("small/large partition broken")
	}
	for _, s := range large {
		if !s.Large {
			t.Fatal("large suite contains small matrix")
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"a", "bb"}, Notes: []string{"n"}}
	tab.AddRow("1", "2")
	out := tab.Render()
	for _, want := range []string{"T\n", "a", "bb", "1", "2", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	tab, err := Table1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(Suite()) {
		t.Fatalf("rows %d, want %d", len(tab.Rows), len(Suite()))
	}
	// Every static fill must be at least the dynamic fill (column 8 ratio >= 1)
	for _, row := range tab.Rows {
		var ratio float64
		if _, err := sscan(row[7], &ratio); err != nil {
			t.Fatalf("bad ratio cell %q", row[7])
		}
		if ratio < 1 {
			t.Fatalf("%s: static/dynamic fill ratio %v < 1", row[0], ratio)
		}
	}
}

func sscan(s string, v *float64) (int, error) {
	return fmtSscan(s, v)
}

func TestTable2Shape(t *testing.T) {
	tab, err := Table2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(SmallSuite())+len(Extras()) {
		t.Fatalf("unexpected row count %d", len(tab.Rows))
	}
}

func TestParallelExperimentsQuick(t *testing.T) {
	cfg := quickCfg()
	procs := []int{2, 4}
	if _, err := Table3(cfg, procs); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig16(cfg, procs); err != nil {
		t.Fatal(err)
	}
	if _, err := Table4(cfg, procs); err != nil {
		t.Fatal(err)
	}
	if _, err := Table7(cfg, procs); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig17(cfg, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig18(cfg, 4); err != nil {
		t.Fatal(err)
	}
}

func TestLargeExperimentsQuick(t *testing.T) {
	cfg := Config{Scale: 0.18, BSize: 12, Amalg: 4}
	if _, err := Table5(cfg, []int{4}); err != nil {
		t.Fatal(err)
	}
	if _, err := Table6(cfg, []int{8}); err != nil {
		t.Fatal(err)
	}
}

func TestAblationsQuick(t *testing.T) {
	cfg := quickCfg()
	if _, err := AblationBlockSize(cfg, "sherman5", []int{8, 16}, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationAmalgamation(cfg, "sherman5", []int{0, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationGridAspect(cfg, "sherman5", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationMapping(cfg, "sherman5", []int{2, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationBlockSize(cfg, "missing", []int{8}, 4); err == nil {
		t.Fatal("unknown matrix must error")
	}
}

func TestClaimExperimentsQuick(t *testing.T) {
	cfg := quickCfg()
	tab, err := Blas3Fraction(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty blas3 table")
	}
	tb, err := Theorem2Buffers(cfg, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	// Buffer high-water must be a small fraction of the matrix storage.
	for _, row := range tb.Rows {
		var pct float64
		if _, err := fmt.Sscanf(row[3], "%f%%", &pct); err != nil {
			t.Fatalf("bad percent cell %q", row[3])
		}
		if pct > 60 {
			t.Fatalf("%s: buffer high water %.1f%% of matrix — not 'small'", row[0], pct)
		}
	}
}

func TestAblationOrderingQuick(t *testing.T) {
	tab, err := AblationOrdering(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(SmallSuite()) {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// Fill-reducing orderings must not make the static fill (much) worse on
	// the grid-family matrices.
	for _, row := range tab.Rows {
		var fn, fm, fc float64
		fmt.Sscan(row[1], &fn)
		fmt.Sscan(row[2], &fm)
		fmt.Sscan(row[3], &fc)
		if fm > 1.5*fn || fc > 2.0*fn {
			t.Fatalf("%s: ordering blew up static fill: nat %v mmd %v colmmd %v", row[0], fn, fm, fc)
		}
	}
}

func TestSolveCostQuick(t *testing.T) {
	tab, err := SolveCost(quickCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(SmallSuite()) {
		t.Fatalf("rows %d", len(tab.Rows))
	}
}

func TestScalingReportQuick(t *testing.T) {
	tab, err := ScalingReport(Config{Scale: 0.2, BSize: 12, Amalg: 4}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	// Speedup at P=4 must be > 1 for at least the larger matrices.
	any := false
	for _, row := range tab.Rows {
		var sp float64
		fmt.Sscan(row[2], &sp)
		if sp > 1.5 {
			any = true
		}
		if sp <= 0 {
			t.Fatalf("%s: speedup %v", row[0], sp)
		}
	}
	if !any {
		t.Fatal("no matrix shows speedup at P=4")
	}
}

func TestCaveatsQuick(t *testing.T) {
	tab, err := Caveats(Config{Scale: 0.3, BSize: 12, Amalg: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var ratios []float64
	for _, row := range tab.Rows {
		var r float64
		fmt.Sscan(row[4], &r)
		ratios = append(ratios, r)
	}
	// The memplus analog must overestimate much more than the wang3 analog.
	if !(ratios[0] > 2*ratios[1]) {
		t.Fatalf("memplus-like ratio %v not much worse than wang3-like %v", ratios[0], ratios[1])
	}
}

func TestPrepCostQuick(t *testing.T) {
	tab, err := PrepCost(Config{Scale: 0.2, BSize: 12, Amalg: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty prepcost table")
	}
}
