package bench

import "testing"

// TestBlockingQuick runs the fixed-vs-adaptive sweep at reduced scale and
// asserts the artifact's promises: a result per suite matrix, sane timings,
// adaptive plans within the hard panel bound, and bitwise reproducibility of
// the adaptive factorization.
func TestBlockingQuick(t *testing.T) {
	cfg := Config{Scale: 0.15, BSize: 25, Amalg: 4}
	results, err := Blocking(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Suite()) {
		t.Fatalf("sweep covers %d matrices, want %d", len(results), len(Suite()))
	}
	for _, r := range results {
		if r.FixedSeconds <= 0 || r.AdaptiveSeconds <= 0 || r.Speedup <= 0 {
			t.Fatalf("%s: degenerate timings %+v", r.Matrix, r)
		}
		if r.FixedPanels <= 0 || r.AdaptivePanels <= 0 {
			t.Fatalf("%s: degenerate panel counts %+v", r.Matrix, r)
		}
		if r.AdaptiveMaxBlock <= 0 || r.AdaptiveMaxBlock > 64 {
			t.Fatalf("%s: adaptive max block %d outside (0, 64]", r.Matrix, r.AdaptiveMaxBlock)
		}
		if !r.BitIdentical {
			t.Fatalf("%s: adaptive factors not reproducible bitwise", r.Matrix)
		}
	}
	tbl := BlockingTable(results, cfg)
	if len(tbl.Rows) != len(results) {
		t.Fatalf("table has %d rows, want %d", len(tbl.Rows), len(results))
	}
}
