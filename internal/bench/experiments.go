package bench

import (
	"fmt"

	"sstar/internal/core"
	"sstar/internal/machine"
	"sstar/internal/sparse"
	"sstar/internal/supernode"
	"sstar/internal/symbolic"
)

// Config sets the shared experiment parameters.
type Config struct {
	// Scale multiplies the generator grid dimensions (1.0 = DESIGN.md
	// sizes; smaller values shrink every matrix for quick runs).
	Scale float64
	// BSize is the maximum supernode panel width (paper: 25).
	BSize int
	// Amalg is the amalgamation factor r (paper: 4-6).
	Amalg int
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config { return Config{Scale: 1.0, BSize: 25, Amalg: 4} }

// superLUSymbolicOverhead is the paper's h: the ratio of SuperLU's on-the-fly
// symbolic factorization time to its numeric time. The paper estimates
// h < 0.82 from [7]; we use a mid-range value.
const superLUSymbolicOverhead = 0.5

// prepared bundles the per-matrix artifacts every experiment needs.
type prepared struct {
	spec Spec
	a    *sparse.CSR
	sym  *core.Symbolic
	gp   *core.GPFactors // dynamic-fill baseline (SuperLU stand-in)
}

func prepare(spec Spec, cfg Config) (*prepared, error) {
	a := spec.Gen(cfg.Scale)
	sym := core.Analyze(a, core.AnalyzeOptions{
		Supernode: supernode.Options{MaxBlock: cfg.BSize, Amalgamate: cfg.Amalg},
	})
	// The dynamic-fill baseline runs on the same ordering so fills and op
	// counts are comparable (the paper orders both codes with MMD(A^T A)).
	pre := sym.PermutedMatrix(a)
	gp, err := core.GPFactorize(pre, 1.0)
	if err != nil {
		return nil, fmt.Errorf("%s: baseline LU failed: %w", spec.Name, err)
	}
	return &prepared{spec: spec, a: a, sym: sym, gp: gp}, nil
}

// effModel derates the machine's dense-kernel rates for the average panel
// width the partition actually achieved — the paper's rates are calibrated at
// block size 25, and narrower supernodes lose cache efficiency (the effect
// amalgamation exists to fight, Section 3.3).
func effModel(m machine.Model, sym *core.Symbolic) machine.Model {
	return m.WithBlockSize(sym.Partition.FlopWeightedWidth())
}

// mflops converts an operation count and seconds to MFLOPS, guarding zero.
func mflops(ops int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(ops) / seconds / 1e6
}

// Table1 regenerates the testing-matrix statistics table: order, nnz,
// structural symmetry, and the factor-entry counts of the dynamic-fill
// baseline, the George–Ng static prediction and the Cholesky-of-A^T A bound,
// plus the extra-operation ratio of the static approach.
func Table1(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Table 1: testing matrices and their statistics",
		Headers: []string{"matrix", "order", "|A|", "sym",
			"fill(dynamic)", "fill(S*)", "fill(chol A'A)", "S*/dyn", "chol/dyn", "ops-ratio"},
		Notes: []string{
			"paper shape: static fill usually < 1.5x dynamic fill; Cholesky(A'A) bound much looser;",
			"element-op ratio can reach ~5x yet running-time ratio stays near 1 (Table 2).",
			fmt.Sprintf("scale=%.2f relative to DESIGN.md sizes; 'sym' > 1 means nonsymmetric pattern", cfg.Scale),
		},
	}
	for _, spec := range Suite() {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		stats := sparse.ComputeStats(p.a)
		staticNnz := p.sym.Static.NnzTotal()
		dynNnz := p.gp.NnzTotal()
		chol := symbolic.CholeskyFill(sparse.ATAPattern(p.sym.PermutedMatrix(p.a)))
		cholTotal := 2*chol - int64(p.a.N)
		opsRatio := float64(p.sym.Static.ElementOps()) / float64(p.gp.Flops)
		t.AddRow(spec.Name,
			fmt.Sprintf("%d", p.a.N),
			fmt.Sprintf("%d", p.a.Nnz()),
			fmt.Sprintf("%.2f", stats.Symmetry),
			fmt.Sprintf("%d", dynNnz),
			fmt.Sprintf("%d", staticNnz),
			fmt.Sprintf("%d", cholTotal),
			fmt.Sprintf("%.2f", float64(staticNnz)/float64(dynNnz)),
			fmt.Sprintf("%.2f", float64(cholTotal)/float64(dynNnz)),
			fmt.Sprintf("%.2f", opsRatio),
		)
	}
	return t, nil
}

// seqModeledTime returns the modeled sequential time of the S* factorization
// under a machine model (per-kernel-class charging of the real flop tallies).
func seqModeledTime(fl core.Flops, m machine.Model) float64 {
	return m.ComputeSeconds(fl.B1, fl.B2, fl.B3, fl.Sw)
}

// superLUModeledTime applies the paper's cost model (Eqs. 1 and 3):
// T = (1 + h) * w2 * C — all numeric work at DGEMV speed plus the dynamic
// symbolic factorization overhead h.
func superLUModeledTime(ops int64, m machine.Model) float64 {
	return (1 + superLUSymbolicOverhead) * float64(ops) / m.Blas2Rate
}

// Table2 regenerates the sequential comparison: S* versus the
// dynamic-symbolic baseline on the T3D and T3E models.
func Table2(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Table 2: sequential performance, S* vs dynamic-symbolic LU (SuperLU model)",
		Headers: []string{"matrix", "S* T3D(s)", "S* T3D MF", "SLU T3D(s)", "ratio T3D",
			"S* T3E(s)", "S* T3E MF", "SLU T3E(s)", "ratio T3E"},
		Notes: []string{
			"paper shape: exec-time ratio S*/SuperLU ~0.4-1.6 despite up-to-5x extra operations,",
			"because S* runs most flops at DGEMM speed; MFLOPS use the dynamic op count (paper's formula).",
			fmt.Sprintf("SuperLU model: T=(1+h)*C/DGEMV with h=%.2f", superLUSymbolicOverhead),
		},
	}
	specs := append(SmallSuite(), Extras()...)
	for _, spec := range specs {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		fact, err := core.FactorizeSeq(p.a, p.sym)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		ops := p.gp.Flops
		if spec.Kind == "dense" {
			ops = core.DenseLUFlops(p.a.N)
		}
		row := []string{spec.Name}
		for _, m := range []machine.Model{machine.T3D(), machine.T3E()} {
			ts := seqModeledTime(fact.Fl, effModel(m, p.sym))
			tslu := superLUModeledTime(ops, m)
			row = append(row,
				fmt.Sprintf("%.3f", ts),
				fmt.Sprintf("%.1f", mflops(ops, ts)),
				fmt.Sprintf("%.3f", tslu),
				fmt.Sprintf("%.2f", ts/tslu),
			)
			// Keep header order: S* time, S* MF, SLU time, ratio.
		}
		// Reorder: row currently name, t3d..., t3e... matching headers.
		t.AddRow(row...)
	}
	return t, nil
}

// run1D runs the 1D code for one matrix at one processor count with the given
// scheduler ("ca" or "rapid") and returns the parallel result.
func run1D(p *prepared, nproc int, model machine.Model, scheduler string) (*core.ParResult, error) {
	model = effModel(model, p.sym)
	var s = core.ScheduleCA(p.sym, nproc)
	if scheduler == "rapid" {
		s = core.ScheduleRAPID(p.sym, nproc, model)
	}
	return core.Factorize1D(p.a, p.sym, model, s)
}

// Table3 regenerates the 1D graph-scheduled (RAPID) absolute performance
// table: MFLOPS on T3D and T3E for each processor count.
func Table3(cfg Config, procs []int) (*Table, error) {
	headers := []string{"matrix"}
	for _, p := range procs {
		headers = append(headers, fmt.Sprintf("T3D P=%d", p), fmt.Sprintf("T3E P=%d", p))
	}
	t := &Table{
		Title:   "Table 3: absolute performance (MFLOPS) of the 1D RAPID code",
		Headers: headers,
		Notes: []string{
			"paper shape: MFLOPS grow with P; T3E ~3x T3D; gains flatten past 32 procs on small matrices.",
		},
	}
	for _, spec := range SmallSuite() {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		row := []string{spec.Name}
		for _, np := range procs {
			for _, m := range []machine.Model{machine.T3D(), machine.T3E()} {
				res, err := run1D(p, np, m, "rapid")
				if err != nil {
					return nil, fmt.Errorf("%s P=%d: %w", spec.Name, np, err)
				}
				row = append(row, fmt.Sprintf("%.1f", mflops(p.gp.Flops, res.ParallelTime)))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig16 regenerates the scheduling comparison: 1 - PT_RAPID/PT_CA per
// processor count (positive = graph scheduling wins).
func Fig16(cfg Config, procs []int) (*Table, error) {
	headers := []string{"matrix"}
	for _, p := range procs {
		headers = append(headers, fmt.Sprintf("P=%d", p))
	}
	t := &Table{
		Title:   "Fig. 16: impact of scheduling, 1 - PT_RAPID/PT_CA (T3E model)",
		Headers: headers,
		Notes: []string{
			"paper shape: near zero (sometimes slightly negative) at P<=4, then 10-40% in favor of",
			"graph scheduling as P grows and parallelism becomes scarce.",
		},
	}
	model := machine.T3E()
	for _, spec := range SmallSuite() {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		row := []string{spec.Name}
		for _, np := range procs {
			ca, err := run1D(p, np, model, "ca")
			if err != nil {
				return nil, err
			}
			ra, err := run1D(p, np, model, "rapid")
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%+.1f%%", 100*(1-ra.ParallelTime/ca.ParallelTime)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table4 regenerates the supernode-amalgamation study: parallel-time
// improvement (1 - PT_amalgamated/PT_plain) of the 1D RAPID code.
func Table4(cfg Config, procs []int) (*Table, error) {
	headers := []string{"matrix"}
	for _, p := range procs {
		headers = append(headers, fmt.Sprintf("P=%d", p))
	}
	t := &Table{
		Title:   "Table 4: parallel-time improvement from supernode amalgamation (r=4 vs r=0, T3E)",
		Headers: headers,
		Notes: []string{
			"paper shape: 10-55% improvement, largest on matrices with tiny supernodes;",
			"slightly smaller gains at high P where amalgamation trades parallelism for granularity.",
		},
	}
	model := machine.T3E()
	for _, spec := range SmallSuite() {
		plainCfg := cfg
		plainCfg.Amalg = 0
		amal, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		plain, err := prepare(spec, plainCfg)
		if err != nil {
			return nil, err
		}
		row := []string{spec.Name}
		for _, np := range procs {
			ra, err := run1D(amal, np, model, "rapid")
			if err != nil {
				return nil, err
			}
			rp, err := run1D(plain, np, model, "rapid")
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%+.0f%%", 100*(1-ra.ParallelTime/rp.ParallelTime)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// run2D runs the asynchronous (or synchronous) 2D code with the paper's
// default grid aspect.
func run2D(p *prepared, nproc int, model machine.Model, async bool) (*core.ParResult, error) {
	pr, pc := core.GridShape(nproc)
	return core.Factorize2D(p.a, p.sym, effModel(model, p.sym), pr, pc, async)
}

// table2D regenerates Table 5 (T3D) or Table 6 (T3E): the 2D asynchronous
// code on the large matrices.
func table2D(cfg Config, procs []int, model machine.Model, title string, note string) (*Table, error) {
	headers := []string{"matrix"}
	for _, p := range procs {
		headers = append(headers, fmt.Sprintf("P=%d t(s)", p), fmt.Sprintf("P=%d MF", p))
	}
	t := &Table{Title: title, Headers: headers, Notes: []string{note}}
	for _, spec := range LargeSuite() {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		row := []string{spec.Name}
		for _, np := range procs {
			res, err := run2D(p, np, model, true)
			if err != nil {
				return nil, fmt.Errorf("%s P=%d: %w", spec.Name, np, err)
			}
			row = append(row,
				fmt.Sprintf("%.3f", res.ParallelTime),
				fmt.Sprintf("%.1f", mflops(p.gp.Flops, res.ParallelTime)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table5 is the 2D asynchronous code on the T3D model.
func Table5(cfg Config, procs []int) (*Table, error) {
	return table2D(cfg, procs, machine.T3D(),
		"Table 5: 2D asynchronous code, large matrices, T3D model",
		"paper shape: MFLOPS scale with P (1.48 GFLOPS at P=64 on vavasis3); per-node 23-33 MFLOPS.")
}

// Table6 is the 2D asynchronous code on the T3E model (the headline result).
func Table6(cfg Config, procs []int) (*Table, error) {
	return table2D(cfg, procs, machine.T3E(),
		"Table 6: 2D asynchronous code, large matrices, T3E model",
		"paper shape: up to 8.8 GFLOPS at P=128 on vavasis3; T3E ~3.1-3.4x T3D at P=64.")
}

// Fig17 compares the 1D RAPID code against the 2D code on the matrices both
// can solve: 1 - PT_RAPID/PT_2D (positive = 1D wins, the paper's finding when
// memory suffices).
func Fig17(cfg Config, nproc int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Fig. 17: 1D RAPID vs 2D async at P=%d (T3E model), 1 - PT_RAPID/PT_2D", nproc),
		Headers: []string{"matrix", "PT_RAPID(s)", "PT_2D(s)", "improvement"},
		Notes: []string{
			"paper shape: 1D RAPID faster (5-40%) thanks to graph scheduling; gap shrinks when the",
			"2D code's load balance is much better (see Fig. 18).",
		},
	}
	model := machine.T3E()
	for _, spec := range SmallSuite() {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		ra, err := run1D(p, nproc, model, "rapid")
		if err != nil {
			return nil, err
		}
		d2, err := run2D(p, nproc, model, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(spec.Name,
			fmt.Sprintf("%.4f", ra.ParallelTime),
			fmt.Sprintf("%.4f", d2.ParallelTime),
			fmt.Sprintf("%+.1f%%", 100*(1-ra.ParallelTime/d2.ParallelTime)))
	}
	return t, nil
}

// Fig18 compares the load-balance factors of the 1D RAPID mapping and the 2D
// block-cyclic mapping.
func Fig18(cfg Config, nproc int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Fig. 18: load balance factors at P=%d", nproc),
		Headers: []string{"matrix", "1D RAPID", "2D"},
		Notes: []string{
			"paper shape: 2D block-cyclic balances update work better than 1D column mapping;",
			"where the two are close, the 1D code's scheduling advantage dominates (Fig. 17).",
		},
	}
	model := machine.T3E()
	for _, spec := range SmallSuite() {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		ra, err := run1D(p, nproc, model, "rapid")
		if err != nil {
			return nil, err
		}
		d2, err := run2D(p, nproc, model, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(spec.Name, fmt.Sprintf("%.3f", ra.LoadBalance), fmt.Sprintf("%.3f", d2.LoadBalance))
	}
	return t, nil
}

// Table7 regenerates the synchronous-versus-asynchronous 2D comparison:
// percentage parallel-time reduction of the asynchronous design.
func Table7(cfg Config, procs []int) (*Table, error) {
	headers := []string{"matrix"}
	for _, p := range procs {
		headers = append(headers, fmt.Sprintf("P=%d", p))
	}
	t := &Table{
		Title:   "Table 7: improvement of 2D asynchronous over 2D synchronous (T3E model)",
		Headers: headers,
		Notes: []string{
			"paper shape: 3-15% at P<=4 growing to ~25-35% at P>=16 — overlapping update stages",
			"matters more as the per-step work per processor shrinks.",
		},
	}
	model := machine.T3E()
	for _, spec := range SmallSuite() {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		row := []string{spec.Name}
		for _, np := range procs {
			asy, err := run2D(p, np, model, true)
			if err != nil {
				return nil, err
			}
			syn, err := run2D(p, np, model, false)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%+.1f%%", 100*(1-asy.ParallelTime/syn.ParallelTime)))
		}
		t.AddRow(row...)
	}
	return t, nil
}
