package bench

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"sstar"
	"sstar/client"
	"sstar/internal/server"
)

// TenantOptions configures the multi-tenant tail-latency bench.
type TenantOptions struct {
	Tenants  int           // distinct solve tenants; popularity is zipf-skewed
	Clients  int           // concurrent solve clients (shared across tenants)
	Duration time.Duration // measured window per scenario
	NX       int           // grid dimension; matrix order ~ NX*NX
	Width    int           // coalesce width for the coalesced scenarios
	Window   time.Duration // coalesce batch window (0 = opportunistic only)
	Workers  int           // server worker goroutines
	ZipfS    float64       // zipf skew across tenants (> 1; hotter head as it grows)
	Seed     int64
}

func (o *TenantOptions) setDefaults() {
	if o.Tenants < 1 {
		o.Tenants = 2
	}
	if o.Clients < 1 {
		o.Clients = 8
	}
	if o.Duration <= 0 {
		o.Duration = 3 * time.Second
	}
	if o.NX < 2 {
		o.NX = 20
	}
	if o.Width < 2 {
		o.Width = 32
	}
	if o.Workers < 1 {
		o.Workers = 4
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.3
	}
}

// TenantTail is one tenant's solve-latency summary within one scenario.
type TenantTail struct {
	Tenant   string  `json:"tenant"`
	Weight   int     `json:"weight"`
	Requests int     `json:"requests"`
	P50ms    float64 `json:"p50_ms"`
	P99ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// TenantScenario is one measured server configuration + traffic shape.
type TenantScenario struct {
	Name            string       `json:"name"`
	SolveRequests   int          `json:"solve_requests"`
	SolveRPS        float64      `json:"solve_rps"`
	Errors          int          `json:"errors"`
	P50ms           float64      `json:"p50_ms"`
	P99ms           float64      `json:"p99_ms"`
	SolveBatches    int64        `json:"solve_batches"`
	CoalescedSolves int64        `json:"coalesced_solves"`
	MeanBatchWidth  float64      `json:"mean_batch_width"`
	StormFactorizes int64        `json:"storm_factorizes,omitempty"`
	Tenants         []TenantTail `json:"tenants"`
}

// TenantReport is the multi_tenant section of BENCH_service.json: solve tail
// latency per tenant with and without a competing factorize storm, with
// coalescing off and on.
type TenantReport struct {
	Config struct {
		Tenants  int     `json:"tenants"`
		Clients  int     `json:"clients"`
		Duration string  `json:"duration"`
		NX       int     `json:"nx"`
		Order    int     `json:"order"`
		Width    int     `json:"coalesce_width"`
		Window   string  `json:"coalesce_window"`
		Workers  int     `json:"workers"`
		ZipfS    float64 `json:"zipf_s"`
	} `json:"config"`
	Scenarios []TenantScenario `json:"scenarios"`
	// CoalescingGainX is solo_coalesced solve throughput over
	// solo_uncoalesced — the payoff of merging concurrent solves into
	// blocked batches.
	CoalescingGainX float64 `json:"coalescing_gain_x"`
	// StormP99InflationX is the aggregate solve p99 under a competing
	// factorize storm over the storm-free p99 (same coalesced server). The
	// weighted fair scheduler is what keeps this bounded: the storm tenant
	// holds weight 1 against the solve tenants' weight 4.
	StormP99InflationX float64 `json:"storm_p99_inflation_x"`
	Note               string  `json:"note"`
}

// RunTenants measures per-tenant solve tails in three scenarios against
// in-process servers: solve-only with coalescing off, solve-only with
// coalescing on, and coalescing on with a weight-1 "storm" tenant issuing
// back-to-back factorizes. It fails if the server's per-tenant counters do
// not attribute every tenant's traffic — the same check the CI smoke relies
// on.
func RunTenants(o TenantOptions) (*TenantReport, error) {
	o.setDefaults()

	names := make([]string, o.Tenants)
	weights := map[string]int{"storm": 1}
	for i := range names {
		names[i] = fmt.Sprintf("tenant-%d", i)
		weights[names[i]] = 4
	}
	a := sstar.GenGrid2D(o.NX, o.NX, false, sstar.GenOptions{Seed: o.Seed, Convection: 0.2})

	rep := &TenantReport{}
	rep.Config.Tenants = o.Tenants
	rep.Config.Clients = o.Clients
	rep.Config.Duration = o.Duration.String()
	rep.Config.NX = o.NX
	rep.Config.Order = a.N
	rep.Config.Width = o.Width
	rep.Config.Window = o.Window.String()
	rep.Config.Workers = o.Workers
	rep.Config.ZipfS = o.ZipfS
	rep.Note = "in-process server; storm tenant carries weight 1 vs the solve tenants' weight 4, so its factorize backlog cannot starve solve admission beyond its fair share. On a one-core box the clients, codec and workers serialize upstream of the queue, so opportunistic batches stay narrow and the coalescing gain needs either cores or a batch window to show."

	scenarios := []struct {
		name   string
		width  int
		window time.Duration
		storm  bool
	}{
		{"solo_uncoalesced", 1, 0, false},
		{"solo_coalesced", o.Width, o.Window, false},
		{"storm", o.Width, o.Window, true},
	}
	for _, sc := range scenarios {
		run, err := runTenantScenario(o, a, names, weights, sc.name, sc.width, sc.window, sc.storm)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.name, err)
		}
		rep.Scenarios = append(rep.Scenarios, run)
	}

	if solo, coal := rep.Scenarios[0], rep.Scenarios[1]; solo.SolveRPS > 0 {
		rep.CoalescingGainX = coal.SolveRPS / solo.SolveRPS
	}
	if coal, storm := rep.Scenarios[1], rep.Scenarios[2]; coal.P99ms > 0 {
		rep.StormP99InflationX = storm.P99ms / coal.P99ms
	}
	return rep, nil
}

func runTenantScenario(o TenantOptions, a *sstar.Matrix, names []string, weights map[string]int, name string, width int, window time.Duration, storm bool) (TenantScenario, error) {
	run := TenantScenario{Name: name}

	s := server.New(server.Config{
		Workers:        o.Workers,
		CoalesceWidth:  width,
		CoalesceWindow: window,
		TenantWeights:  weights,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return run, err
	}
	go s.Serve(l)
	defer s.Close()

	ctx := context.Background()
	// Pool one idle connection per concurrent client: the default pool cap
	// would force most round trips through a fresh dial + handshake, and the
	// bench would measure the handshake, not the server.
	c, err := client.Dial("tcp", l.Addr().String(), client.WithMaxIdle(o.Clients+4))
	if err != nil {
		return run, err
	}
	defer c.Close()
	h, _, err := c.Factorize(ctx, a, sstar.DefaultOptions())
	if err != nil {
		return run, err
	}

	// One tenant-stamped view of the shared handle per tenant: all views
	// target the same server-side factors, so solves coalesce across tenants
	// while the accounting stays per-tenant.
	views := make([]*client.Handle, len(names))
	for i, tn := range names {
		views[i] = h.ForTenant(tn)
	}

	type sample struct {
		tenant  int
		latency time.Duration
	}
	var (
		mu      sync.Mutex
		samples []sample
		nerr    int
	)
	deadline := time.Now().Add(o.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < o.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + 11*int64(ci) + 1))
			var zipf *rand.Zipf
			if len(names) > 1 {
				zipf = rand.NewZipf(rng, o.ZipfS, 1, uint64(len(names)-1))
			}
			b := make([]float64, a.N)
			for time.Now().Before(deadline) {
				ti := 0
				if zipf != nil {
					ti = int(zipf.Uint64())
				}
				for i := range b {
					b[i] = 2*rng.Float64() - 1
				}
				t0 := time.Now()
				_, _, err := views[ti].Solve(ctx, b)
				lat := time.Since(t0)
				mu.Lock()
				if err != nil {
					nerr++
				} else {
					samples = append(samples, sample{tenant: ti, latency: lat})
				}
				mu.Unlock()
			}
		}(ci)
	}

	// The storm: a weight-1 tenant issuing back-to-back factorizations of
	// the same structure — each one occupies a worker for a full numeric
	// factorization, the contention the fair scheduler must bound.
	if storm {
		sc := c.ForTenant("storm")
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for time.Now().Before(deadline) {
					hs, _, err := sc.Factorize(ctx, a, sstar.DefaultOptions())
					if err != nil {
						mu.Lock()
						nerr++
						mu.Unlock()
						continue
					}
					hs.Free(ctx)
				}
			}(g)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	st, err := c.Stats(ctx)
	if err != nil {
		return run, err
	}

	byTenant := make([][]time.Duration, len(names))
	var all []time.Duration
	for _, sm := range samples {
		byTenant[sm.tenant] = append(byTenant[sm.tenant], sm.latency)
		all = append(all, sm.latency)
	}
	for i, tn := range names {
		ts, ok := st.Tenants[tn]
		if len(byTenant[i]) > 0 && (!ok || ts.Requests == 0) {
			return run, fmt.Errorf("server did not attribute traffic to %s: %+v", tn, st.Tenants)
		}
		run.Tenants = append(run.Tenants, TenantTail{
			Tenant:   tn,
			Weight:   ts.Weight,
			Requests: len(byTenant[i]),
			P50ms:    pctMs(byTenant[i], 0.50),
			P99ms:    pctMs(byTenant[i], 0.99),
			MaxMs:    pctMs(byTenant[i], 1),
		})
	}
	if storm {
		ts, ok := st.Tenants["storm"]
		if !ok || ts.Requests == 0 {
			return run, fmt.Errorf("server did not attribute storm traffic: %+v", st.Tenants)
		}
		run.StormFactorizes = ts.Requests
	}

	run.SolveRequests = len(samples)
	run.Errors = nerr
	if elapsed > 0 {
		run.SolveRPS = float64(len(samples)) / elapsed.Seconds()
	}
	run.P50ms = pctMs(all, 0.50)
	run.P99ms = pctMs(all, 0.99)
	run.SolveBatches = st.SolveBatches
	run.CoalescedSolves = st.CoalescedSolves
	if st.SolveBatches > 0 {
		run.MeanBatchWidth = float64(st.CoalescedSolves) / float64(st.SolveBatches)
	}
	return run, nil
}

// pctMs returns the p-quantile of ds in milliseconds (p=1 is the max).
func pctMs(ds []time.Duration, p float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p * float64(len(s)-1))
	return float64(s[idx]) / 1e6
}
