package bench

import (
	"fmt"
	"time"

	"sstar/internal/core"
	"sstar/internal/machine"
	"sstar/internal/ordering"
	"sstar/internal/sparse"
	"sstar/internal/supernode"
	"sstar/internal/symbolic"
)

// Blas3Fraction regenerates the paper's Section 3.2 measurement: "more than
// 64 percent of numerical updates is performed by the BLAS-3 routine DGEMM in
// S*", per matrix, along with interchange counts and pivot-growth factors.
func Blas3Fraction(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Claim check: fraction of numerical work performed by BLAS-3 kernels (paper: r ~ 0.64)",
		Headers: []string{"matrix", "BLAS-1", "BLAS-2", "BLAS-3", "B3 fraction", "interchanges", "growth"},
		Notes: []string{
			"paper: DGEMM share ~64% after 2D L/U partitioning + amalgamation; BLAS-2 is the",
			"within-panel Factor() work the 1D/2D codes cannot avoid.",
		},
	}
	for _, spec := range append(SmallSuite(), LargeSuite()...) {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		fact, err := core.FactorizeSeq(p.a, p.sym)
		if err != nil {
			return nil, err
		}
		st := fact.Stats(core.MaxAbs(p.a.Val))
		fl := fact.Fl
		t.AddRow(spec.Name,
			fmt.Sprintf("%d", fl.B1),
			fmt.Sprintf("%d", fl.B2),
			fmt.Sprintf("%d", fl.B3),
			fmt.Sprintf("%.2f", st.Blas3Fraction),
			fmt.Sprintf("%d", st.Interchanges),
			fmt.Sprintf("%.1f", st.GrowthFactor),
		)
	}
	return t, nil
}

// Caveats regenerates the paper's Section 3.1/7 caveat discussion: a
// memplus-like matrix with nearly dense rows blows the static overestimate
// up, while a wang3-like 3D device matrix overestimates ~4x yet still runs at
// GFLOPS-class rates on many processors.
func Caveats(cfg Config, nproc int) (*Table, error) {
	t := &Table{
		Title:   "Claim check: overestimation caveats (memplus and wang3 analogs, Section 3.1/7)",
		Headers: []string{"matrix", "order", "fill dyn", "fill S*", "ratio", fmt.Sprintf("2D P=%d MFLOPS", nproc)},
		Notes: []string{
			"paper: memplus overestimates 119x under MMD(A'A) (2.34x under A'+A ordering) — nearly",
			"dense rows are the static scheme's failure mode; wang3 overestimates ~4x yet still",
			"reaches 1 GFLOPS on 128 T3E nodes. Analog matrices reproduce both regimes.",
		},
	}
	model := machine.T3E()
	cases := []struct {
		name string
		gen  func() *sparse.CSR
		run  bool // run the 2D code (skip for the blowup case: too expensive by design)
	}{
		{"memplus-like", func() *sparse.CSR { return sparse.MemoryCircuitFrac(dimScale(1500, cfg.Scale), 2, 301) }, false},
		{"wang3-like", func() *sparse.CSR {
			d := dimScale(14, cfg.Scale)
			return sparse.Grid3D(d, d, d, sparse.GenOptions{Convection: 0.8, StructuralDrop: 0.08, Seed: 302})
		}, true},
	}
	for _, c := range cases {
		a := c.gen()
		sym := core.Analyze(a, core.AnalyzeOptions{
			Supernode: supernodeOptions(cfg),
		})
		gp, err := core.GPFactorize(sym.PermutedMatrix(a), 1.0)
		if err != nil {
			return nil, err
		}
		mf := "-"
		if c.run {
			pr, pc := core.GridShape(nproc)
			res, err := core.Factorize2D(a, sym, effModel(model, sym), pr, pc, true)
			if err != nil {
				return nil, err
			}
			mf = fmt.Sprintf("%.1f", mflops(gp.Flops, res.ParallelTime))
		}
		t.AddRow(c.name,
			fmt.Sprintf("%d", a.N),
			fmt.Sprintf("%d", gp.NnzTotal()),
			fmt.Sprintf("%d", sym.Static.NnzTotal()),
			fmt.Sprintf("%.1f", float64(sym.Static.NnzTotal())/float64(gp.NnzTotal())),
			mf)
	}
	return t, nil
}

func dimScale(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 4 {
		return 4
	}
	return v
}

// ScalingReport is the classical speedup/efficiency table for the 2D
// asynchronous code: speedup = modeled sequential time / parallel time,
// efficiency = speedup / P.
func ScalingReport(cfg Config, procs []int) (*Table, error) {
	headers := []string{"matrix", "T_seq(s)"}
	for _, p := range procs {
		headers = append(headers, fmt.Sprintf("S(%d)", p), fmt.Sprintf("E(%d)", p))
	}
	t := &Table{
		Title:   "Scaling report: 2D asynchronous code speedup and efficiency (T3E model)",
		Headers: headers,
		Notes: []string{
			"speedup vs the modeled sequential S* time; efficiency = speedup/P. Larger, denser",
			"matrices sustain efficiency to higher P (Tables 5/6 in ratio form).",
		},
	}
	model := machine.T3E()
	for _, spec := range append(SmallSuite(), LargeSuite()...) {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		fact, err := core.FactorizeSeq(p.a, p.sym)
		if err != nil {
			return nil, err
		}
		tseq := effModel(model, p.sym).ComputeSeconds(fact.Fl.B1, fact.Fl.B2, fact.Fl.B3, fact.Fl.Sw)
		row := []string{spec.Name, fmt.Sprintf("%.3f", tseq)}
		for _, np := range procs {
			res, err := run2D(p, np, model, true)
			if err != nil {
				return nil, err
			}
			sp := tseq / res.ParallelTime
			row = append(row, fmt.Sprintf("%.1f", sp), fmt.Sprintf("%.2f", sp/float64(np)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// SolveCost regenerates the paper's Section 2 remark that "the triangular
// solvers are much less time consuming than the Gaussian elimination
// process": modeled factorization versus distributed-solve time on the same
// processors.
func SolveCost(cfg Config, nproc int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Claim check: factorization vs triangular-solve time (1D, P=%d, T3E)", nproc),
		Headers: []string{"matrix", "factor PT(s)", "solve PT(s)", "ratio", "solve msgs"},
		Notes: []string{
			"paper Section 2: triangular solves cost far less than the factorization; the gap",
			"widens with matrix size (solves are O(fill), factorization O(sum of fill products)).",
		},
	}
	model := machine.T3E()
	for _, spec := range SmallSuite() {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		s := core.ScheduleRAPID(p.sym, nproc, effModel(model, p.sym))
		res, err := core.Factorize1D(p.a, p.sym, effModel(model, p.sym), s)
		if err != nil {
			return nil, err
		}
		b := make([]float64, p.a.N)
		for i := range b {
			b[i] = 1
		}
		sr, err := core.SolvePar1D(res.Fact, s.Owner, nproc, effModel(model, p.sym), b)
		if err != nil {
			return nil, err
		}
		t.AddRow(spec.Name,
			fmt.Sprintf("%.4f", res.ParallelTime),
			fmt.Sprintf("%.5f", sr.ParallelTime),
			fmt.Sprintf("%.1fx", res.ParallelTime/sr.ParallelTime),
			fmt.Sprintf("%d", sr.SentMessages))
	}
	return t, nil
}

// Theorem2Buffers validates the paper's Theorem 2 buffer-space analysis
// empirically: the asynchronous 2D code's peak per-processor buffered message
// volume must stay below the analytic bound
// C*pc + R*(pr-1) <= n*BSIZE*s*(pc/pr + pr/pc) words (Section 5.2), far below
// the matrix size.
func Theorem2Buffers(cfg Config, procs []int) (*Table, error) {
	headers := []string{"matrix"}
	for _, p := range procs {
		headers = append(headers, fmt.Sprintf("P=%d high(B)", p), fmt.Sprintf("P=%d bound(B)", p), fmt.Sprintf("P=%d matrix%%", p))
	}
	t := &Table{
		Title:   "Claim check: Theorem 2 — asynchronous 2D buffer space is bounded and small",
		Headers: headers,
		Notes: []string{
			"bound: 8*n*BSIZE*s*(pc/pr + pr/pc) bytes with s the post-fill density; 'matrix%' is",
			"the measured high-water mark relative to total factor storage (paper: <100K words).",
		},
	}
	model := machine.T3E()
	for _, spec := range SmallSuite() {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		row := []string{spec.Name}
		for _, np := range procs {
			pr, pc := core.GridShape(np)
			res, err := core.Factorize2D(p.a, p.sym, effModel(model, p.sym), pr, pc, true)
			if err != nil {
				return nil, err
			}
			storageBytes := 8 * res.Fact.BM.StorageEntries()
			// Post-fill density s and the Theorem 2 expression.
			n := float64(p.sym.N)
			density := float64(res.Fact.BM.StorageEntries()) / (n * n)
			bound := 8 * n * float64(cfg.BSize) * density *
				(float64(pc)/float64(pr) + float64(pr)/float64(pc))
			row = append(row,
				fmt.Sprintf("%d", res.BufferHigh),
				fmt.Sprintf("%.0f", bound),
				fmt.Sprintf("%.1f%%", 100*float64(res.BufferHigh)/float64(storageBytes)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// PrepCost measures the host wall-clock of the analyze pipeline stages
// (transversal, ordering, static symbolic factorization, partitioning) next
// to the numeric factorization — the paper's footnote reports the static
// preprocessing is cheap (2.76 s for its largest matrix on one T3E node).
// These are real measured times on the current host, not modeled times.
func PrepCost(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Claim check: analyze-phase cost vs numeric factorization (host wall-clock)",
		Headers: []string{"matrix", "transversal", "ordering", "symbolic", "partition", "numeric", "prep/numeric"},
		Notes: []string{
			"paper footnote: static symbolic preprocessing is very efficient (2.76 s for vavasis3",
			"on one T3E node); and it is paid once per pattern, amortized over refactorizations.",
		},
	}
	for _, spec := range append(SmallSuite(), LargeSuite()...) {
		a := spec.Gen(cfg.Scale)
		t0 := time.Now()
		rp, _ := ordering.MaxTransversal(a)
		work := a.PermuteRows(rp)
		t1 := time.Now()
		cp := ordering.MinimumDegree(sparse.ATAPattern(work))
		work = work.Permute(cp, cp)
		t2 := time.Now()
		st := symbolic.Factorize(sparse.PatternOf(work))
		t3 := time.Now()
		part := supernode.NewPartition(st, supernodeOptions(cfg))
		t4 := time.Now()
		sym := &core.Symbolic{N: a.N, RowPerm: composedPerm(rp, cp), ColPerm: cp, Static: st, Partition: part}
		if _, err := core.FactorizeSeq(a, sym); err != nil {
			return nil, err
		}
		t5 := time.Now()
		prep := t4.Sub(t0).Seconds()
		numeric := t5.Sub(t4).Seconds()
		t.AddRow(spec.Name,
			fmt.Sprintf("%.3fs", t1.Sub(t0).Seconds()),
			fmt.Sprintf("%.3fs", t2.Sub(t1).Seconds()),
			fmt.Sprintf("%.3fs", t3.Sub(t2).Seconds()),
			fmt.Sprintf("%.3fs", t4.Sub(t3).Seconds()),
			fmt.Sprintf("%.3fs", numeric),
			fmt.Sprintf("%.2f", prep/numeric))
	}
	return t, nil
}

func composedPerm(p, q []int) []int {
	out := make([]int, len(p))
	for i := range p {
		out[i] = q[p[i]]
	}
	return out
}

// supernodeOptions builds the partition options from a config.
func supernodeOptions(cfg Config) supernode.Options {
	return supernode.Options{MaxBlock: cfg.BSize, Amalgamate: cfg.Amalg}
}
