// Package bench holds the benchmark-matrix suite mirroring the paper's
// Table 1 and the experiment runners that regenerate every table and figure
// of the evaluation (Section 6). The Harwell–Boeing/Davis matrices the paper
// uses are not redistributable here, so each entry is a synthetic generator
// tuned to the same family, order and density; the four biggest are scaled
// down to stay feasible in pure Go (see DESIGN.md).
package bench

import (
	"math"

	"sstar/internal/sparse"
)

// PaperStats records what the paper's Table 1 states about the original
// matrix, for side-by-side reporting.
type PaperStats struct {
	Order int
	Nnz   int
}

// Spec describes one suite matrix.
type Spec struct {
	Name   string
	Kind   string // family label: reservoir, cfd, circuit, structural, dense
	Paper  PaperStats
	Scaled bool // true when our instance is smaller than the paper's
	// Large marks matrices the paper could only run with the 2D code.
	Large bool
	Gen   func(scale float64) *sparse.CSR
}

// dim scales a grid dimension by sqrt-ish of the scale factor, keeping >= 2.
func dim(n int, scale float64) int {
	v := int(math.Round(float64(n) * scale))
	if v < 2 {
		return 2
	}
	return v
}

// Suite returns the benchmark suite. scale multiplies the grid dimensions of
// every generator (1.0 = the sizes documented in DESIGN.md; tests use smaller
// scales to stay fast).
func Suite() []Spec {
	return []Spec{
		{
			Name: "sherman5", Kind: "reservoir", Paper: PaperStats{3312, 20793},
			Gen: func(s float64) *sparse.CSR {
				return sparse.Grid3D(dim(16, s), dim(23, s), 3, sparse.GenOptions{DOF: 3, Convection: 0.4, DiagCoupling: true, Seed: 101})
			},
		},
		{
			Name: "lnsp3937", Kind: "cfd", Paper: PaperStats{3937, 25407},
			Gen: func(s float64) *sparse.CSR {
				return sparse.Grid2D(dim(63, s), dim(62, s), false, sparse.GenOptions{Convection: 0.8, StructuralDrop: 0.25, Seed: 102})
			},
		},
		{
			Name: "lns3937", Kind: "cfd", Paper: PaperStats{3937, 25407},
			Gen: func(s float64) *sparse.CSR {
				return sparse.Grid2D(dim(63, s), dim(62, s), false, sparse.GenOptions{Convection: 0.8, StructuralDrop: 0.3, Seed: 103})
			},
		},
		{
			Name: "sherman3", Kind: "reservoir", Paper: PaperStats{5005, 20033},
			Gen: func(s float64) *sparse.CSR {
				return sparse.Grid3D(dim(35, s), dim(11, s), dim(13, s), sparse.GenOptions{Convection: 0.3, Seed: 104})
			},
		},
		{
			Name: "jpwh991", Kind: "circuit", Paper: PaperStats{991, 6027},
			Gen: func(s float64) *sparse.CSR {
				return sparse.Circuit(dim(991, s), 5, sparse.GenOptions{Convection: 0.5, StructuralDrop: 0.05, Seed: 105})
			},
		},
		{
			Name: "orsreg1", Kind: "reservoir", Paper: PaperStats{2205, 14133},
			Gen: func(s float64) *sparse.CSR {
				return sparse.Grid3D(dim(21, s), dim(21, s), 5, sparse.GenOptions{Convection: 0.3, Anisotropy: 0.5, Seed: 106})
			},
		},
		{
			Name: "saylr4", Kind: "reservoir", Paper: PaperStats{3564, 22316},
			Gen: func(s float64) *sparse.CSR {
				return sparse.Grid3D(dim(33, s), 6, dim(18, s), sparse.GenOptions{Convection: 0.4, Anisotropy: 0.5, Seed: 107})
			},
		},
		{
			Name: "goodwin", Kind: "cfd", Paper: PaperStats{7320, 324772}, Large: true,
			Gen: func(s float64) *sparse.CSR {
				return sparse.Grid2D(dim(43, s), dim(43, s), true, sparse.GenOptions{DOF: 4, Convection: 0.6, Seed: 108})
			},
		},
		{
			Name: "e40r0100", Kind: "cfd", Paper: PaperStats{17281, 553562}, Scaled: true, Large: true,
			Gen: func(s float64) *sparse.CSR {
				return sparse.Grid2D(dim(47, s), dim(47, s), true, sparse.GenOptions{DOF: 4, Convection: 0.7, Seed: 109})
			},
		},
		{
			Name: "ex11", Kind: "cfd3d", Paper: PaperStats{16614, 1096948}, Scaled: true, Large: true,
			Gen: func(s float64) *sparse.CSR {
				return sparse.Grid3D(dim(10, s), dim(10, s), dim(10, s), sparse.GenOptions{DOF: 4, Convection: 0.5, Seed: 110})
			},
		},
		{
			Name: "raefsky4", Kind: "structural", Paper: PaperStats{19779, 1316789}, Scaled: true, Large: true,
			Gen: func(s float64) *sparse.CSR {
				return sparse.Grid3D(dim(12, s), dim(12, s), dim(12, s), sparse.GenOptions{DOF: 3, Convection: 0.1, Seed: 111})
			},
		},
		{
			Name: "inaccura", Kind: "structural", Paper: PaperStats{16146, 1015156}, Scaled: true, Large: true,
			Gen: func(s float64) *sparse.CSR {
				return sparse.Grid3D(dim(11, s), dim(11, s), dim(11, s), sparse.GenOptions{DOF: 3, Convection: 0.2, Seed: 112})
			},
		},
		{
			Name: "af23560", Kind: "cfd", Paper: PaperStats{23560, 460598}, Scaled: true, Large: true,
			Gen: func(s float64) *sparse.CSR {
				return sparse.Grid2D(dim(39, s), dim(39, s), true, sparse.GenOptions{DOF: 4, Convection: 0.8, StructuralDrop: 0.1, Seed: 113})
			},
		},
		{
			Name: "vavasis3", Kind: "stratified", Paper: PaperStats{41092, 1683902}, Scaled: true, Large: true,
			Gen: func(s float64) *sparse.CSR {
				// 2-DOF 9-point stencil with strong stratification: matches
				// the original's ~41 nnz/row density at reduced order.
				return sparse.Grid2D(dim(65, s), dim(63, s), true, sparse.GenOptions{DOF: 2, Anisotropy: 0.1, Convection: 0.4, Seed: 114})
			},
		},
	}
}

// Extras returns the two additional matrices Table 2 introduces.
func Extras() []Spec {
	return []Spec{
		{
			Name: "b33_5600", Kind: "structural", Paper: PaperStats{5600, 0}, Scaled: true,
			Gen: func(s float64) *sparse.CSR {
				return sparse.Grid3D(dim(9, s), dim(9, s), dim(23, s), sparse.GenOptions{DOF: 3, Convection: 0.05, Seed: 115})
			},
		},
		{
			Name: "dense1000", Kind: "dense", Paper: PaperStats{1000, 1000000}, Scaled: true,
			Gen: func(s float64) *sparse.CSR {
				return sparse.Dense(dim(1000, s*s), 116)
			},
		},
	}
}

// ByName returns the spec with the given name from Suite()+Extras(), or nil.
func ByName(name string) *Spec {
	for _, s := range append(Suite(), Extras()...) {
		if s.Name == name {
			sc := s
			return &sc
		}
	}
	return nil
}

// SmallSuite returns the matrices the paper runs through the sequential and
// 1D codes (Tables 2-4, Fig. 16).
func SmallSuite() []Spec {
	var out []Spec
	for _, s := range Suite() {
		if !s.Large {
			out = append(out, s)
		}
	}
	return out
}

// LargeSuite returns the matrices of Tables 5 and 6.
func LargeSuite() []Spec {
	var out []Spec
	for _, s := range Suite() {
		if s.Large {
			out = append(out, s)
		}
	}
	return out
}
