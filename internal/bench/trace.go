package bench

import (
	"fmt"
	"os"
	"time"

	"sstar/internal/core"
	"sstar/internal/obs"
	"sstar/internal/supernode"
)

// TraceSummary describes one traced factorization run: what ran, how long,
// and what landed in the trace file.
type TraceSummary struct {
	Matrix  string
	Order   int
	Nnz     int
	Workers int
	Tasks   int
	Seconds float64
	Spans   int
	Dropped int64
	Path    string
}

// TraceRun factorizes one suite matrix with the host task-DAG executor
// under a trace recorder and writes the timeline as Chrome trace_event JSON
// to path (open in chrome://tracing or https://ui.perfetto.dev). The trace
// holds the analyze phases plus one span per Factor(k)/Update(k,j) task on
// one lane per worker — the direct visualization of the executor's pipeline
// overlap.
func TraceRun(cfg Config, matrixName string, workers int, path string) (*TraceSummary, error) {
	spec := ByName(matrixName)
	if spec == nil {
		return nil, fmt.Errorf("bench: unknown matrix %q", matrixName)
	}
	a := spec.Gen(cfg.Scale)
	tr := obs.NewTracer(0)
	sym := core.Analyze(a, core.AnalyzeOptions{
		Supernode: supernode.Options{MaxBlock: cfg.BSize, Amalgamate: cfg.Amalg},
		Obs:       tr,
	})
	t0 := time.Now()
	if _, err := core.FactorizeHostObs(a, sym, workers, tr); err != nil {
		return nil, fmt.Errorf("bench: trace run %s: %w", matrixName, err)
	}
	sec := time.Since(t0).Seconds()
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return &TraceSummary{
		Matrix:  matrixName,
		Order:   a.N,
		Nnz:     a.Nnz(),
		Workers: workers,
		Tasks:   hostparTaskCount(sym.Partition.NB, sym),
		Seconds: sec,
		Spans:   tr.Len(),
		Dropped: tr.Dropped(),
		Path:    path,
	}, nil
}
