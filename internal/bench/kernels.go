package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sstar/internal/core"
	"sstar/internal/sparse"
	"sstar/internal/supernode"
	"sstar/internal/xblas"
)

// kernelSizes are the supernode-scale square problem sizes tracked by the
// kernel benchmark (the paper's panels are 8-40 columns wide; 64 and 128
// cover amalgamated supernodes and the dense tail of the factorization).
var kernelSizes = []int{8, 16, 25, 32, 64, 128}

// KernelResult is one measured kernel configuration.
type KernelResult struct {
	Kernel  string  `json:"kernel"`
	M       int     `json:"m"`
	N       int     `json:"n"`
	K       int     `json:"k"`
	NsPerOp float64 `json:"ns_per_op"`
	GFLOPS  float64 `json:"gflops"`
}

// EndToEndResult is one wall-clock sequential factorization of a suite
// matrix.
type EndToEndResult struct {
	Matrix        string  `json:"matrix"`
	Order         int     `json:"order"`
	Nnz           int     `json:"nnz"`
	FactorFlops   int64   `json:"factor_flops"`
	FactorSeconds float64 `json:"factor_seconds"`
	FactorMFLOPS  float64 `json:"factor_mflops"`
}

// KernelReport is the tracked benchmark artifact (BENCH_kernels.json): the
// per-kernel GFLOP/s of the xblas engine plus end-to-end factorization
// wall-clock on the bundled matrix suite, with enough host context to judge
// whether two reports are comparable.
type KernelReport struct {
	GeneratedAt string           `json:"generated_at"`
	GoVersion   string           `json:"go_version"`
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	NumCPU      int              `json:"num_cpu"`
	MicroKernel string           `json:"micro_kernel"`
	Scale       float64          `json:"scale"`
	BSize       int              `json:"bsize"`
	Amalg       int              `json:"amalg"`
	Kernels     []KernelResult   `json:"kernels"`
	EndToEnd    []EndToEndResult `json:"end_to_end"`
}

// benchNs times run() with geometrically growing batch sizes until one batch
// lasts long enough for timer noise not to matter, then reports ns per call.
func benchNs(run func()) float64 {
	run() // warm caches, pool buffers and the branch predictor
	reps := 1
	for {
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			run()
		}
		el := time.Since(t0)
		if el >= 100*time.Millisecond || reps >= 1<<26 {
			return float64(el.Nanoseconds()) / float64(reps)
		}
		if el <= 0 {
			reps *= 100
			continue
		}
		next := int(float64(reps) * float64(150*time.Millisecond) / float64(el))
		if next <= reps {
			next = reps * 2
		}
		reps = next
	}
}

func gflopsOf(flops int64, nsPerOp float64) float64 {
	if nsPerOp <= 0 {
		return 0
	}
	return float64(flops) / nsPerOp
}

func fillRand(x []float64, seed uint64) {
	s := seed
	for i := range x {
		// xorshift64: deterministic, dependency-free values in (-1, 1).
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		x[i] = float64(int64(s)) / float64(1<<63)
	}
}

// Kernels measures the xblas BLAS-3 kernels and core.FactorPanel at
// supernode sizes, runs the sequential factorization end-to-end over the
// bundled suite, and returns the report.
func Kernels(cfg Config) (*KernelReport, error) {
	rep := &KernelReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		MicroKernel: xblas.KernelName(),
		Scale:       cfg.Scale,
		BSize:       cfg.BSize,
		Amalg:       cfg.Amalg,
	}
	for _, s := range kernelSizes {
		rep.Kernels = append(rep.Kernels,
			benchGemmKernel("gemm", s, false),
			benchGemmKernel("gemm_add", s, true),
			benchGemmScatterKernel(s),
			benchTrsmKernel(s),
			benchFactorPanelKernel(s),
		)
	}
	rep.Kernels = append(rep.Kernels, benchSolveManyKernels(cfg)...)
	for _, spec := range Suite() {
		r, err := benchEndToEnd(spec, cfg)
		if err != nil {
			return nil, err
		}
		rep.EndToEnd = append(rep.EndToEnd, r)
	}
	return rep, nil
}

func benchGemmKernel(name string, s int, add bool) KernelResult {
	a := make([]float64, s*s)
	b := make([]float64, s*s)
	c := make([]float64, s*s)
	fillRand(a, 1)
	fillRand(b, 2)
	fillRand(c, 3)
	var ns float64
	if add {
		ns = benchNs(func() { xblas.GemmAdd(s, s, s, a, s, b, s, c, s) })
	} else {
		ns = benchNs(func() { xblas.Gemm(s, s, s, a, s, b, s, c, s) })
	}
	flops := int64(2) * int64(s) * int64(s) * int64(s)
	return KernelResult{Kernel: name, M: s, N: s, K: s, NsPerOp: ns, GFLOPS: gflopsOf(flops, ns)}
}

func benchGemmScatterKernel(s int) KernelResult {
	a := make([]float64, s*s)
	b := make([]float64, s*s)
	c := make([]float64, s*s)
	fillRand(a, 4)
	fillRand(b, 5)
	fillRand(c, 6)
	// Full maps: measures the fused gather/scatter path against plain Gemm.
	rows := make([]int, s)
	cols := make([]int, s)
	for i := range rows {
		rows[i], cols[i] = i, i
	}
	ns := benchNs(func() { xblas.GemmScatter(s, s, s, a, s, b, s, c, s, rows, cols) })
	flops := int64(2) * int64(s) * int64(s) * int64(s)
	return KernelResult{Kernel: "gemm_scatter", M: s, N: s, K: s, NsPerOp: ns, GFLOPS: gflopsOf(flops, ns)}
}

func benchTrsmKernel(s int) KernelResult {
	l := make([]float64, s*s)
	b := make([]float64, s*s)
	fillRand(l, 7)
	fillRand(b, 8)
	for i := 0; i < s; i++ {
		l[i*s+i] = 1
	}
	ns := benchNs(func() { xblas.TrsmLowerUnitLeft(s, s, l, s, b, s) })
	flops := int64(s) * int64(s-1) * int64(s) // n * k(k-1) mul-adds
	return KernelResult{Kernel: "trsm_lower_unit", M: s, N: s, K: s, NsPerOp: ns, GFLOPS: gflopsOf(flops, ns)}
}

// benchFactorPanelKernel times core.FactorPanel on the leading s-wide panel
// of a dense 2s-order matrix (an s-by-s diagonal block plus one s-by-s L
// block — the supernode-panel shape of the paper). The timed loop restores
// the panel data before each call; the restore copy is O(s^2) against the
// O(s^3) factorization.
func benchFactorPanelKernel(s int) KernelResult {
	a := sparse.Dense(2*s, int64(1000+s))
	sym := core.Analyze(a, core.AnalyzeOptions{
		SkipOrdering: true,
		Supernode:    supernode.Options{MaxBlock: s},
	})
	bm := supernode.NewBlockMatrix(sym.Partition, sym.PermutedMatrix(a))
	ws := core.NewWorkspace(bm)
	piv := make([]int32, 2*s)
	diag0 := append([]float64(nil), bm.Diag[0].Data...)
	lcol0 := append([]float64(nil), bm.LCol[0][0].Data...)

	// Exact flop count from the workspace tally of one factorization.
	before := ws.Fl.Total()
	if err := core.FactorPanel(bm, 0, piv, 1, ws); err != nil {
		panic(fmt.Sprintf("bench: dense panel became singular: %v", err))
	}
	flops := ws.Fl.Total() - before

	ns := benchNs(func() {
		copy(bm.Diag[0].Data, diag0)
		copy(bm.LCol[0][0].Data, lcol0)
		if err := core.FactorPanel(bm, 0, piv, 1, ws); err != nil {
			panic(fmt.Sprintf("bench: dense panel became singular: %v", err))
		}
	})
	return KernelResult{Kernel: "factor_panel", M: 2 * s, N: s, K: s, NsPerOp: ns, GFLOPS: gflopsOf(flops, ns)}
}

// benchSolveManyKernels times the multi-RHS triangular solve on a factored
// suite-scale matrix: the blocked SolveMany (panels of RHS through the
// packed GEMM engine) against the column-at-a-time loop over Solve, at
// several RHS counts. m is the matrix order, n the RHS count; the flop
// model is one mul-add (2 flops) per stored factor entry per RHS — rough,
// but identical for both rows, so the ratio is the real speedup.
func benchSolveManyKernels(cfg Config) []KernelResult {
	a := sparse.Grid2D(40, 40, true, sparse.GenOptions{Convection: 0.4, Seed: 117})
	sym := core.Analyze(a, core.AnalyzeOptions{
		Supernode: supernode.Options{MaxBlock: cfg.BSize, Amalgamate: cfg.Amalg},
	})
	fact, err := core.FactorizeSeq(a, sym)
	if err != nil {
		panic(fmt.Sprintf("bench: solve-many matrix singular: %v", err))
	}
	entries := fact.BM.StorageEntries()
	var out []KernelResult
	for _, nrhs := range []int{1, 8, 32} {
		b := make([]float64, a.N*nrhs)
		fillRand(b, uint64(200+nrhs))
		ns := benchNs(func() {
			if _, err := fact.SolveMany(b, nrhs); err != nil {
				panic(err)
			}
		})
		flops := 2 * entries * int64(nrhs)
		out = append(out, KernelResult{Kernel: "solve_many", M: a.N, N: nrhs, NsPerOp: ns, GFLOPS: gflopsOf(flops, ns)})
		nsLoop := benchNs(func() {
			for j := 0; j < nrhs; j++ {
				fact.Solve(b[j*a.N : (j+1)*a.N])
			}
		})
		out = append(out, KernelResult{Kernel: "solve_columns", M: a.N, N: nrhs, NsPerOp: nsLoop, GFLOPS: gflopsOf(flops, nsLoop)})
	}
	return out
}

func benchEndToEnd(spec Spec, cfg Config) (EndToEndResult, error) {
	a := spec.Gen(cfg.Scale)
	sym := core.Analyze(a, core.AnalyzeOptions{
		Supernode: supernode.Options{MaxBlock: cfg.BSize, Amalgamate: cfg.Amalg},
	})
	t0 := time.Now()
	fact, err := core.FactorizeSeq(a, sym)
	if err != nil {
		return EndToEndResult{}, fmt.Errorf("%s: %w", spec.Name, err)
	}
	sec := time.Since(t0).Seconds()
	return EndToEndResult{
		Matrix:        spec.Name,
		Order:         a.N,
		Nnz:           a.Nnz(),
		FactorFlops:   fact.Fl.Total(),
		FactorSeconds: sec,
		FactorMFLOPS:  mflops(fact.Fl.Total(), sec),
	}, nil
}

// WriteJSON writes the report to path, indented for diff-friendly tracking.
func (r *KernelReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Table renders the report for the terminal.
func (r *KernelReport) Table() *Table {
	t := &Table{
		Title:   "Kernel benchmark: xblas engine and panel factorization",
		Headers: []string{"kernel", "m", "n", "k", "ns/op", "GFLOP/s"},
		Notes: []string{
			fmt.Sprintf("%s %s/%s, %d CPUs, micro-kernel %s", r.GoVersion, r.GOOS, r.GOARCH, r.NumCPU, r.MicroKernel),
			"end-to-end: sequential S* factorization wall-clock per suite matrix (see JSON)",
		},
	}
	for _, k := range r.Kernels {
		t.AddRow(k.Kernel,
			fmt.Sprintf("%d", k.M), fmt.Sprintf("%d", k.N), fmt.Sprintf("%d", k.K),
			fmt.Sprintf("%.0f", k.NsPerOp), fmt.Sprintf("%.2f", k.GFLOPS))
	}
	for _, e := range r.EndToEnd {
		t.AddRow("factorize:"+e.Matrix,
			fmt.Sprintf("%d", e.Order), "", fmt.Sprintf("%d", e.Nnz),
			fmt.Sprintf("%.0f", e.FactorSeconds*1e9), fmt.Sprintf("%.2f", e.FactorMFLOPS/1000))
	}
	return t
}
