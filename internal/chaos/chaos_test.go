package chaos_test

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"sstar/internal/chaos"
	"sstar/internal/wire"
)

// pipePair returns the two ends of an in-memory connection with faults on
// the a side.
func pipePair(cfg Config, streamID int64) (faulty net.Conn, clean net.Conn) {
	a, b := net.Pipe()
	return chaos.WrapConn(a, cfg, streamID), b
}

type Config = chaos.Config

// TestTransparentWhenZero: the zero Config must not alter the byte stream.
func TestTransparentWhenZero(t *testing.T) {
	faulty, clean := pipePair(Config{}, 1)
	defer faulty.Close()
	defer clean.Close()
	msg := []byte("the quick brown fox jumps over the lazy dog")
	go func() {
		faulty.Write(msg)
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(clean, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("bytes altered: %q", got)
	}
}

// TestPartialWritesPreserveBytes: fragmentation reorders nothing and loses
// nothing — it only splits the delivery.
func TestPartialWritesPreserveBytes(t *testing.T) {
	faulty, clean := pipePair(Config{Seed: 7, PartialWrite: 1}, 1)
	defer faulty.Close()
	defer clean.Close()
	msg := bytes.Repeat([]byte("abcdefgh"), 100)
	go func() {
		if _, err := faulty.Write(msg); err != nil {
			t.Errorf("write: %v", err)
		}
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(clean, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("fragmented write altered bytes")
	}
}

// TestCorruptionIsCaughtByFrameCRC: a bit flip anywhere in a frame must
// surface as a wire error (checksum, torn frame, bad type...), never as a
// silently decoded wrong payload.
func TestCorruptionIsCaughtByFrameCRC(t *testing.T) {
	payload := bytes.Repeat([]byte{0xA5}, 256)
	corrupted := 0
	for stream := int64(0); stream < 32; stream++ {
		faulty, clean := pipePair(Config{Seed: 99, Corrupt: 1}, stream)
		go func() {
			wire.WriteFrame(faulty, 0x2, payload)
			faulty.Close()
		}()
		typ, got, err := wire.ReadFrame(clean, 1<<16)
		clean.Close()
		if err != nil {
			corrupted++
			continue
		}
		// An undetected pass-through must be bit-identical.
		if typ != 0x2 || !bytes.Equal(got, payload) {
			t.Fatalf("stream %d: corruption decoded as success", stream)
		}
	}
	if corrupted == 0 {
		t.Fatal("Corrupt=1 never produced a detectable fault in 32 streams")
	}
}

// TestResetTearsMidFrame: with Reset=1 the first write fails with the
// injected-fault error and the peer sees a torn frame, not a clean EOF
// before any byte.
func TestResetTearsMidFrame(t *testing.T) {
	faulty, clean := pipePair(Config{Seed: 3, Reset: 1}, 1)
	defer clean.Close()
	// The reader must run concurrently: net.Pipe writes are synchronous, and
	// the reset path may deliver a prefix before tearing the conn down.
	readDone := make(chan int, 1)
	go func() {
		clean.SetReadDeadline(time.Now().Add(5 * time.Second))
		n, _ := io.Copy(io.Discard, clean)
		readDone <- int(n)
	}()
	_, err := faulty.Write(bytes.Repeat([]byte{1}, 1024))
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("write error %v, want ErrInjected", err)
	}
	if n := <-readDone; n >= 1024 {
		t.Fatalf("reset delivered the whole frame (%d bytes)", n)
	}
}

// TestDeterministicFaultStream: the same seed and the same I/O sequence draw
// the same faults — byte-identical delivery downstream.
func TestDeterministicFaultStream(t *testing.T) {
	run := func() []byte {
		faulty, clean := pipePair(Config{Seed: 1234, Corrupt: 0.5, PartialWrite: 0.5}, 5)
		defer faulty.Close()
		defer clean.Close()
		var got bytes.Buffer
		done := make(chan struct{})
		go func() {
			io.Copy(&got, clean)
			close(done)
		}()
		for i := 0; i < 20; i++ {
			if _, err := faulty.Write(bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
				break
			}
		}
		faulty.Close()
		<-done
		return got.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("two runs with one seed diverged: %d vs %d bytes", len(a), len(b))
	}
}

// TestBandwidthCapSlowsDelivery: a 64 KiB transfer over a 1 MiB/s cap takes
// at least a few tens of milliseconds; uncapped it is instant.
func TestBandwidthCapSlowsDelivery(t *testing.T) {
	faulty, clean := pipePair(Config{Seed: 1, BandwidthBps: 1 << 20}, 1)
	defer faulty.Close()
	defer clean.Close()
	const total = 64 << 10
	go func() {
		buf := make([]byte, 4096)
		for sent := 0; sent < total; sent += len(buf) {
			if _, err := faulty.Write(buf); err != nil {
				return
			}
		}
	}()
	t0 := time.Now()
	if _, err := io.ReadFull(clean, make([]byte, total)); err != nil {
		t.Fatal(err)
	}
	// 64 KiB at 1 MiB/s is 62.5ms of injected sleep; allow wide slack.
	if el := time.Since(t0); el < 20*time.Millisecond {
		t.Fatalf("bandwidth cap not applied: %v for %d bytes", el, total)
	}
}

// TestProxyRelaysAndSurvivesUpstreamRestart: an echo upstream behind the
// proxy, killed and restarted; a fresh connection through the same proxy
// reaches the new upstream.
func TestProxyRelaysAndSurvivesUpstreamRestart(t *testing.T) {
	startEcho := func() (net.Listener, string) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				go func() { io.Copy(c, c); c.Close() }()
			}
		}()
		return l, l.Addr().String()
	}
	up1, addr1 := startEcho()
	var upstream = make(chan string, 1)
	upstream <- addr1
	current := addr1
	dial := func() (net.Conn, error) {
		select {
		case current = <-upstream:
		default:
		}
		return net.DialTimeout("tcp", current, time.Second)
	}
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := chaos.NewProxy(pl, dial, Config{Seed: 5})
	go p.Serve()
	defer p.Close()

	echo := func(msg string) (string, error) {
		c, err := net.DialTimeout("tcp", p.Addr().String(), time.Second)
		if err != nil {
			return "", err
		}
		defer c.Close()
		c.SetDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Write([]byte(msg)); err != nil {
			return "", err
		}
		buf := make([]byte, len(msg))
		if _, err := io.ReadFull(c, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	if got, err := echo("hello"); err != nil || got != "hello" {
		t.Fatalf("echo through proxy: %q, %v", got, err)
	}

	up1.Close()
	_, addr2 := startEcho()
	upstream <- addr2
	if got, err := echo("again"); err != nil || got != "again" {
		t.Fatalf("echo after upstream restart: %q, %v", got, err)
	}
}
