package chaos

import (
	"sync"
	"time"
)

// Clock abstracts "now" for components whose behavior is a function of
// elapsed time — the cluster failure detector above all. Production code
// uses RealClock; tests drive a FakeClock by hand, so suspect/dead
// transitions happen at exact, reproducible instants instead of depending on
// scheduler timing.
type Clock interface {
	Now() time.Time
}

// RealClock is the wall clock.
type RealClock struct{}

// Now returns time.Now().
func (RealClock) Now() time.Time { return time.Now() }

// FakeClock is a manually advanced clock for deterministic tests. The zero
// value starts at the zero time; NewFakeClock picks an arbitrary non-zero
// base so code comparing against the zero time behaves as in production.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock returns a FakeClock starting at a fixed non-zero instant.
func NewFakeClock() *FakeClock {
	return &FakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// Now returns the fake instant.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d and returns the new instant.
func (c *FakeClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}
