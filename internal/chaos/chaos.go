// Package chaos injects transport faults into net connections so the solver
// service's failure paths can be exercised deterministically: injected
// latency, bandwidth caps, fragmented (partial) writes, mid-frame connection
// resets, and byte corruption.
//
// Every fault decision is drawn from a seeded PRNG — one independent stream
// per connection and direction — so a failing run replays with the same seed.
// (Determinism is per I/O stream: goroutine scheduling can still interleave
// connections differently, but each connection sees the same fault sequence
// for the same sequence of reads and writes.)
//
// Two deployment shapes share the same fault engine:
//
//   - WrapListener wraps a net.Listener in-process, injecting faults into
//     every accepted connection — the cheap harness for package tests;
//   - Proxy is a standalone TCP relay (cmd/sstar-chaos) that sits between a
//     real client and a real server, injecting faults into the client side of
//     the relay while leaving the upstream dial intact, so a server restart
//     behind the proxy is survivable: new connections re-dial upstream.
//
// The wire package's CRC-32 framing is the detection counterpart: a corrupted
// byte becomes a checksum error, a truncated frame an io.ErrUnexpectedEOF —
// never silently wrong numbers (see internal/wire).
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected marks every failure manufactured by this package, so tests can
// tell an injected fault from a real one.
var ErrInjected = errors.New("chaos: injected fault")

// Config selects the faults and their rates. The zero value injects nothing
// (a transparent wrapper). Probabilities are per I/O operation in [0,1].
type Config struct {
	// Seed seeds the fault PRNG. Two runs with equal seeds and equal I/O
	// sequences draw identical faults.
	Seed int64
	// Latency delays each I/O operation by a uniform random duration in
	// [0, Latency].
	Latency time.Duration
	// BandwidthBps caps each direction's throughput in bytes per second by
	// sleeping proportionally to the bytes moved (0 = uncapped).
	BandwidthBps int64
	// PartialWrite is the probability a Write is fragmented: the bytes are
	// delivered in several smaller writes with a scheduling pause between
	// them. No data is lost — this exercises readers against fragmented
	// frames.
	PartialWrite float64
	// Reset is the probability an I/O operation tears the connection down
	// mid-frame: a write delivers a random prefix and then the underlying
	// connection is closed; a read fails immediately.
	Reset float64
	// Corrupt is the probability an I/O operation flips one random bit of
	// the payload. The frame CRC must catch every one of these.
	Corrupt float64
}

// Conn wraps a net.Conn with fault injection in both directions. Create with
// WrapConn; safe for one concurrent reader plus one concurrent writer (the
// net.Conn contract).
type Conn struct {
	net.Conn
	cfg Config

	rmu  sync.Mutex // guards rrng and read-side state
	wmu  sync.Mutex // guards wrng and write-side state
	rrng *rand.Rand
	wrng *rand.Rand
}

// WrapConn wraps conn with faults drawn from cfg. streamID differentiates
// the PRNG streams of connections sharing one Config (WrapListener and Proxy
// use an accept counter).
func WrapConn(conn net.Conn, cfg Config, streamID int64) *Conn {
	// Distinct deterministic streams per connection and direction.
	base := cfg.Seed + 1000003*streamID
	return &Conn{
		Conn: conn,
		cfg:  cfg,
		rrng: rand.New(rand.NewSource(base*2 + 1)),
		wrng: rand.New(rand.NewSource(base*2 + 2)),
	}
}

// delay sleeps for the injected latency and the bandwidth-cap cost of moving
// n bytes.
func (c *Conn) delay(rng *rand.Rand, n int) {
	var d time.Duration
	if c.cfg.Latency > 0 {
		d = time.Duration(rng.Int63n(int64(c.cfg.Latency) + 1))
	}
	if c.cfg.BandwidthBps > 0 {
		d += time.Duration(int64(n) * int64(time.Second) / c.cfg.BandwidthBps)
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// hit draws one fault decision.
func hit(rng *rand.Rand, p float64) bool { return p > 0 && rng.Float64() < p }

// corrupt flips one random bit of p in place.
func corrupt(rng *rand.Rand, p []byte) {
	if len(p) == 0 {
		return
	}
	p[rng.Intn(len(p))] ^= 1 << uint(rng.Intn(8))
}

// Read reads from the underlying connection, then applies latency, optional
// corruption of the received bytes, and optional reset.
func (c *Conn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	reset := hit(c.rrng, c.cfg.Reset)
	doCorrupt := hit(c.rrng, c.cfg.Corrupt)
	c.rmu.Unlock()
	if reset {
		c.Conn.Close()
		return 0, fmt.Errorf("%w: read reset", ErrInjected)
	}
	n, err := c.Conn.Read(p)
	c.rmu.Lock()
	c.delay(c.rrng, n)
	if doCorrupt && n > 0 {
		corrupt(c.rrng, p[:n])
	}
	c.rmu.Unlock()
	return n, err
}

// Write applies latency and bandwidth cost, then delivers p — possibly
// corrupted by one bit flip, possibly fragmented into several underlying
// writes, or torn by a reset after a random prefix.
func (c *Conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.delay(c.wrng, len(p))
	if hit(c.wrng, c.cfg.Reset) {
		// Mid-frame teardown: deliver a random prefix, then kill the
		// connection. The peer sees a torn frame, never a clean close.
		n := 0
		if len(p) > 0 {
			n, _ = c.Conn.Write(p[:c.wrng.Intn(len(p))])
		}
		c.Conn.Close()
		return n, fmt.Errorf("%w: write reset", ErrInjected)
	}
	if hit(c.wrng, c.cfg.Corrupt) {
		q := append([]byte(nil), p...)
		corrupt(c.wrng, q)
		p = q
	}
	if hit(c.wrng, c.cfg.PartialWrite) && len(p) > 1 {
		written := 0
		for written < len(p) {
			chunk := 1 + c.wrng.Intn(len(p)-written)
			n, err := c.Conn.Write(p[written : written+chunk])
			written += n
			if err != nil {
				return written, err
			}
			// A scheduling pause between fragments, so the reader
			// genuinely observes a partial frame.
			time.Sleep(time.Duration(c.wrng.Intn(200)) * time.Microsecond)
		}
		return written, nil
	}
	return c.Conn.Write(p)
}

// Listener wraps a net.Listener so every accepted connection carries fault
// injection. Create with WrapListener.
type Listener struct {
	net.Listener
	cfg Config
	seq atomic.Int64
}

// WrapListener returns l with every accepted connection wrapped in a fault-
// injecting Conn. Connection PRNG streams are derived from cfg.Seed and the
// accept order.
func WrapListener(l net.Listener, cfg Config) *Listener {
	return &Listener{Listener: l, cfg: cfg}
}

// Accept accepts from the underlying listener and wraps the connection.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(conn, l.cfg, l.seq.Add(1)), nil
}

// Proxy is a fault-injecting TCP relay: it accepts client connections,
// dials the upstream for each, and pipes bytes both ways through a faulty
// wrapper of the client side. Because every new client connection performs a
// fresh upstream dial, the upstream can restart behind the proxy — exactly
// the failure the retrying client must survive.
type Proxy struct {
	l    net.Listener
	dial func() (net.Conn, error)
	cfg  Config

	seq         atomic.Int64
	closed      atomic.Bool
	partitioned atomic.Bool
	wg          sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// NewProxy returns a proxy accepting on l and connecting upstream via dial
// (called once per accepted connection). Start it with Serve.
func NewProxy(l net.Listener, dial func() (net.Conn, error), cfg Config) *Proxy {
	return &Proxy{l: l, dial: dial, cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() net.Addr { return p.l.Addr() }

// Serve accepts and relays until the listener closes. It blocks; run it in a
// goroutine.
func (p *Proxy) Serve() error {
	for {
		conn, err := p.l.Accept()
		if err != nil {
			if p.closed.Load() {
				return nil
			}
			return err
		}
		if p.partitioned.Load() {
			// Partition injection: the endpoint behind this proxy is
			// unreachable — accepted connections die immediately, exactly
			// like a network partition (the peer is alive, packets are not
			// getting through).
			conn.Close()
			continue
		}
		up, err := p.dial()
		if err != nil {
			conn.Close()
			continue // upstream down: the client sees a dropped conn and retries
		}
		down := WrapConn(conn, p.cfg, p.seq.Add(1))
		p.track(down, up)
		p.wg.Add(2)
		go p.pipe(down, up)
		go p.pipe(up, down)
	}
}

func (p *Proxy) track(conns ...net.Conn) {
	p.mu.Lock()
	for _, c := range conns {
		p.conns[c] = struct{}{}
	}
	p.mu.Unlock()
}

// pipe copies src to dst until either side fails, then tears both down (a
// half-broken relay would stall the peer forever).
func (p *Proxy) pipe(dst, src net.Conn) {
	defer p.wg.Done()
	io.Copy(dst, src)
	dst.Close()
	src.Close()
	p.mu.Lock()
	delete(p.conns, dst)
	delete(p.conns, src)
	p.mu.Unlock()
}

// SetPartitioned toggles partition injection: while true, new connections
// through the proxy are torn down on accept and every established relay is
// severed, so the endpoint behind the proxy looks unreachable while staying
// alive. Healing (false) lets new connections flow again — established
// connections stay dead, as after a real partition.
func (p *Proxy) SetPartitioned(on bool) {
	p.partitioned.Store(on)
	if !on {
		return
	}
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Close stops accepting, closes every relayed connection, and waits for the
// relay goroutines.
func (p *Proxy) Close() error {
	p.closed.Store(true)
	err := p.l.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}
