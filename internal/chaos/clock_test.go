package chaos_test

// Clock and partition tests: the fake clock must be exactly manual (no wall
// time leaks in), and SetPartitioned must sever established connections and
// refuse new ones until healed — the primitive the self-healing e2e tests
// build their network splits from.

import (
	"io"
	"net"
	"testing"
	"time"

	"sstar/internal/chaos"
)

func TestFakeClockIsManual(t *testing.T) {
	clk := chaos.NewFakeClock()
	base := clk.Now()
	if base.IsZero() {
		t.Fatal("NewFakeClock started at the zero time; code comparing against time.Time{} would misbehave")
	}
	if again := clk.Now(); !again.Equal(base) {
		t.Fatalf("Now drifted without Advance: %v -> %v", base, again)
	}
	at := clk.Advance(250 * time.Millisecond)
	if want := base.Add(250 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("Advance returned %v, want %v", at, want)
	}
	if now := clk.Now(); !now.Equal(at) {
		t.Fatalf("Now after Advance = %v, want %v", now, at)
	}
	// Advances accumulate.
	clk.Advance(time.Second)
	if want := base.Add(1250 * time.Millisecond); !clk.Now().Equal(want) {
		t.Fatalf("accumulated Now = %v, want %v", clk.Now(), want)
	}
}

func TestRealClockTracksWallTime(t *testing.T) {
	before := time.Now()
	got := chaos.RealClock{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("RealClock.Now() = %v outside [%v, %v]", got, before, after)
	}
}

// TestProxyPartition: a partitioned proxy kills established connections and
// rejects new ones; clearing the partition lets fresh connections relay
// again.
func TestProxyPartition(t *testing.T) {
	up, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	go func() {
		for {
			c, err := up.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dial := func() (net.Conn, error) {
		return net.DialTimeout("tcp", up.Addr().String(), time.Second)
	}
	p := chaos.NewProxy(pl, dial, chaos.Config{Seed: 11})
	go p.Serve()
	defer p.Close()

	echo := func(c net.Conn, msg string) (string, error) {
		c.SetDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Write([]byte(msg)); err != nil {
			return "", err
		}
		buf := make([]byte, len(msg))
		if _, err := io.ReadFull(c, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	// A long-lived connection works before the partition...
	held, err := net.DialTimeout("tcp", p.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer held.Close()
	if got, err := echo(held, "before"); err != nil || got != "before" {
		t.Fatalf("echo before partition: %q, %v", got, err)
	}

	p.SetPartitioned(true)

	// ...and is severed by it: the next read fails instead of hanging.
	held.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := held.Write([]byte("x")); err == nil {
		buf := make([]byte, 1)
		if _, err := io.ReadFull(held, buf); err == nil {
			t.Fatal("established connection survived the partition")
		}
	}

	// New connections die without relaying.
	if c, err := net.DialTimeout("tcp", p.Addr().String(), time.Second); err == nil {
		if got, err := echo(c, "during"); err == nil && got == "during" {
			t.Fatal("echo relayed through a partitioned proxy")
		}
		c.Close()
	}

	// Healing restores service for fresh connections.
	p.SetPartitioned(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := net.DialTimeout("tcp", p.Addr().String(), time.Second)
		if err == nil {
			got, err := echo(c, "healed")
			c.Close()
			if err == nil && got == "healed" {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("proxy never recovered after the partition was cleared")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
