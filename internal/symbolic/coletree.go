package symbolic

import "sstar/internal/sparse"

// ColEtree returns the column elimination tree of a square pattern a — the
// elimination tree of AᵀA — computed directly from the rows of a without
// forming AᵀA (the Gilbert–Ng–Peyton sp_coletree construction). parent[c] is
// the tree parent of column c, always > c; roots carry -1.
//
// The tree is the decomposition backbone of the parallel symbolic drivers:
// the final U-row structure of column k is contained in {k} ∪ ancestors(k),
// so the row-merge computation inside disjoint subtrees is independent (see
// FactorizeWorkers).
func ColEtree(a *sparse.Pattern) []int {
	n := a.N
	parent := make([]int, n)
	// firstcol[i] is the leftmost column of row i; each row's columns form a
	// clique in AᵀA, and by the time column c is processed every column of a
	// row before c is already linked into one set, so joining the set of the
	// row's first column stands in for joining every pairwise AᵀA edge.
	firstcol := make([]int32, n)
	colCount := make([]int, n+1)
	for i := 0; i < n; i++ {
		row := a.Row(i)
		if len(row) == 0 {
			panic("symbolic: empty row")
		}
		firstcol[i] = int32(row[0])
		for _, j := range row {
			colCount[j+1]++
		}
	}
	// Column-wise row lists (CSC of the pattern), built in one pass.
	for j := 0; j < n; j++ {
		colCount[j+1] += colCount[j]
	}
	colRows := make([]int32, len(a.Ind))
	next := make([]int, n)
	copy(next, colCount[:n])
	for i := 0; i < n; i++ {
		for _, j := range a.Row(i) {
			colRows[next[j]] = int32(i)
			next[j]++
		}
	}
	// Union-find over partial trees with path halving. root[find(x)] is the
	// highest column absorbed into x's set so far.
	pp := make([]int32, n)
	root := make([]int32, n)
	find := func(x int32) int32 {
		for pp[x] != x {
			pp[x] = pp[pp[x]]
			x = pp[x]
		}
		return x
	}
	for col := 0; col < n; col++ {
		c := int32(col)
		pp[col] = c
		root[col] = c
		parent[col] = -1
		for _, row := range colRows[colCount[col]:colCount[col+1]] {
			rset := find(firstcol[row])
			rroot := root[rset]
			if rroot != c {
				parent[rroot] = col
				pp[rset] = c
			}
		}
	}
	return parent
}
