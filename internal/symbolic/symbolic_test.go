package symbolic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sstar/internal/sparse"
)

// oracleStatic implements the George–Ng definition literally: at step k the
// structure of every candidate pivot row is replaced by the union of all
// candidate structures at columns >= k. Exponentially simpler to trust than
// the row-merge forest, quadratic cost, test-only.
func oracleStatic(a *sparse.Pattern) *Static {
	n := a.N
	rows := make([]map[int]bool, n)
	for i := 0; i < n; i++ {
		rows[i] = map[int]bool{}
		for _, j := range a.Row(i) {
			rows[i][j] = true
		}
	}
	for k := 0; k < n; k++ {
		var cands []int
		for i := k; i < n; i++ {
			if rows[i][k] {
				cands = append(cands, i)
			}
		}
		union := map[int]bool{}
		for _, i := range cands {
			for j := range rows[i] {
				if j >= k {
					union[j] = true
				}
			}
		}
		for _, i := range cands {
			for j := range rows[i] {
				if j >= k {
					delete(rows[i], j)
				}
			}
			for j := range union {
				rows[i][j] = true
			}
		}
	}
	st := &Static{N: n, URows: make([][]int32, n), LCols: make([][]int32, n)}
	for i := 0; i < n; i++ {
		for j := range rows[i] {
			if j >= i {
				st.URows[i] = append(st.URows[i], int32(j))
			} else {
				st.LCols[j] = append(st.LCols[j], int32(i))
			}
		}
	}
	for k := 0; k < n; k++ {
		sortInt32(st.URows[k])
		sortInt32(st.LCols[k])
	}
	return st
}

func sortInt32(x []int32) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

func equalStatic(a, b *Static) bool {
	if a.N != b.N {
		return false
	}
	eq := func(x, y []int32) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	for k := 0; k < a.N; k++ {
		if !eq(a.URows[k], b.URows[k]) || !eq(a.LCols[k], b.LCols[k]) {
			return false
		}
	}
	return true
}

func TestStaticTridiagonal(t *testing.T) {
	n := 6
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		if i+1 < n {
			coo.Add(i, i+1, -1)
			coo.Add(i+1, i, -1)
		}
	}
	st := Factorize(sparse.PatternOf(coo.ToCSR()))
	// Partial pivoting on a tridiagonal matrix can produce two
	// superdiagonals in U; the static bound must predict exactly that.
	for k := 0; k < n; k++ {
		wantU := 3
		if k >= n-2 {
			wantU = n - k
		}
		if len(st.URows[k]) != wantU {
			t.Fatalf("URows[%d] = %v, want %d entries", k, st.URows[k], wantU)
		}
		wantL := 1
		if k == n-1 {
			wantL = 0
		}
		if len(st.LCols[k]) != wantL {
			t.Fatalf("LCols[%d] = %v, want %d entries", k, st.LCols[k], wantL)
		}
	}
}

func TestStaticDense(t *testing.T) {
	n := 5
	a := sparse.PatternOf(sparse.Dense(n, 1))
	st := Factorize(a)
	if st.NnzTotal() != n*n {
		t.Fatalf("dense static nnz = %d, want %d", st.NnzTotal(), n*n)
	}
	// ElementOps for dense LU: sum_k l + 2*l*u with l=u=n-1-k.
	var want int64
	for k := 0; k < n; k++ {
		l := int64(n - 1 - k)
		want += l + 2*l*l
	}
	if st.ElementOps() != want {
		t.Fatalf("ElementOps = %d, want %d", st.ElementOps(), want)
	}
}

func TestStaticMatchesOracle(t *testing.T) {
	mats := []*sparse.CSR{
		sparse.RandomSparse(25, 3, 1),
		sparse.RandomSparse(40, 2, 2),
		sparse.Grid2D(5, 5, false, sparse.GenOptions{Seed: 3}),
		sparse.Grid2D(4, 4, true, sparse.GenOptions{Seed: 4, StructuralDrop: 0.3}),
		sparse.Circuit(30, 3, sparse.GenOptions{Seed: 5}),
	}
	for mi, a := range mats {
		p := sparse.PatternOf(a)
		got := Factorize(p)
		want := oracleStatic(p)
		if !equalStatic(got, want) {
			t.Fatalf("matrix %d: row-merge static factorization disagrees with oracle", mi)
		}
	}
}

func TestStaticMatchesOracleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		a := sparse.RandomSparse(n, 1+rng.Intn(4), seed)
		p := sparse.PatternOf(a)
		return equalStatic(Factorize(p), oracleStatic(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticContainsOriginal(t *testing.T) {
	a := sparse.Circuit(60, 4, sparse.GenOptions{Seed: 6, StructuralDrop: 0.2})
	p := sparse.PatternOf(a)
	st := Factorize(p)
	has := func(i, j int) bool {
		if j >= i {
			for _, c := range st.URows[i] {
				if int(c) == j {
					return true
				}
			}
			return false
		}
		for _, r := range st.LCols[j] {
			if int(r) == i {
				return true
			}
		}
		return false
	}
	for i := 0; i < p.N; i++ {
		for _, j := range p.Row(i) {
			if !has(i, j) {
				t.Fatalf("static structure lost original entry (%d,%d)", i, j)
			}
		}
	}
}

// TestStaticBoundsAnyPivotSequence is the paper's central claim (Section 3.1):
// whatever rows partial pivoting interchanges, every fill-in lands inside the
// static structure. We run dense GEPP with *randomized* pivot choices among
// the structurally-eligible candidate rows and check containment. As in the
// real algorithm (ScaleSwap, Fig. 14), interchanges apply to the *trailing*
// submatrix only — the already-computed L columns stay in place and the
// permutation is applied during the triangular solves (LINPACK-style lazy
// pivoting).
func TestStaticBoundsAnyPivotSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(20)
		a := sparse.RandomSparse(n, 2, int64(trial+100))
		p := sparse.PatternOf(a)
		st := Factorize(p)
		// Dense copy with explicit structural-zero tracking.
		val := make([]float64, n*n)
		nz := make([]bool, n*n)
		for i := 0; i < n; i++ {
			cols, vals := a.Row(i)
			for k, j := range cols {
				val[i*n+j] = vals[k]
				nz[i*n+j] = true
			}
		}
		perm := sparse.IdentityPerm(n) // tracks row swaps: perm[i] = original row now at i
		for k := 0; k < n; k++ {
			// Candidate rows: structural nonzero in column k.
			var cands []int
			for i := k; i < n; i++ {
				if nz[i*n+k] {
					cands = append(cands, i)
				}
			}
			if len(cands) == 0 {
				t.Fatalf("no structural candidate at step %d", k)
			}
			pick := cands[rng.Intn(len(cands))]
			if pick != k {
				for j := k; j < n; j++ {
					val[k*n+j], val[pick*n+j] = val[pick*n+j], val[k*n+j]
					nz[k*n+j], nz[pick*n+j] = nz[pick*n+j], nz[k*n+j]
				}
				perm[k], perm[pick] = perm[pick], perm[k]
			}
			piv := val[k*n+k]
			if math.Abs(piv) < 1e-300 {
				piv = 1 // structural elimination only; values don't matter
			}
			for i := k + 1; i < n; i++ {
				if !nz[i*n+k] {
					continue
				}
				for j := k + 1; j < n; j++ {
					if nz[k*n+j] {
						nz[i*n+j] = true // fill-in
					}
				}
			}
		}
		// Containment check against the static structure.
		inStatic := func(i, j int) bool {
			if j >= i {
				for _, c := range st.URows[i] {
					if int(c) == j {
						return true
					}
				}
				return false
			}
			for _, r := range st.LCols[j] {
				if int(r) == i {
					return true
				}
			}
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if nz[i*n+j] && !inStatic(i, j) {
					t.Fatalf("trial %d: fill at (%d,%d) escapes the static structure", trial, i, j)
				}
			}
		}
	}
}

func TestLRowsIsTransposeOfLCols(t *testing.T) {
	a := sparse.Grid2D(6, 6, false, sparse.GenOptions{Seed: 10})
	st := Factorize(sparse.PatternOf(a))
	rows := st.LRows()
	count := 0
	for i, r := range rows {
		for _, k := range r {
			count++
			found := false
			for _, x := range st.LCols[k] {
				if int(x) == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("LRows entry (%d,%d) missing from LCols", i, k)
			}
		}
	}
	if count != st.NnzL()-st.N {
		t.Fatalf("LRows total %d != NnzL-N %d", count, st.NnzL()-st.N)
	}
}

func TestCholeskyFillTridiagonal(t *testing.T) {
	n := 9
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		if i+1 < n {
			coo.Add(i, i+1, -1)
			coo.Add(i+1, i, -1)
		}
	}
	fill := CholeskyFill(sparse.PatternOf(coo.ToCSR()))
	if fill != int64(2*n-1) {
		t.Fatalf("tridiagonal Cholesky fill = %d, want %d", fill, 2*n-1)
	}
}

func TestCholeskyFillDense(t *testing.T) {
	n := 7
	fill := CholeskyFill(sparse.PatternOf(sparse.Dense(n, 2)))
	if fill != int64(n*(n+1)/2) {
		t.Fatalf("dense Cholesky fill = %d, want %d", fill, n*(n+1)/2)
	}
}

// TestStaticWithinCholeskyBound: the George–Ng structure is contained in the
// structure of the Cholesky factor of A^T A (paper Section 3.1), so its total
// fill is at most 2*nnz(L_c) - n.
func TestStaticWithinCholeskyBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		a := sparse.RandomSparse(n, 1+rng.Intn(3), seed+1000)
		st := Factorize(sparse.PatternOf(a))
		lc := CholeskyFill(sparse.ATAPattern(a))
		return int64(st.NnzTotal()) <= 2*lc-int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyColumnsSorted(t *testing.T) {
	a := sparse.Grid2D(7, 7, false, sparse.GenOptions{Seed: 11})
	cols := CholeskyColumns(sparse.ATAPattern(a))
	for j, c := range cols {
		for i := 1; i < len(c); i++ {
			if c[i] <= c[i-1] {
				t.Fatalf("column %d not strictly sorted", j)
			}
		}
		if len(c) > 0 && int(c[0]) <= j {
			t.Fatalf("column %d contains on/above-diagonal row %d", j, c[0])
		}
	}
}

// TestStaticClosureMonotone: treating the filled structure itself as the
// input matrix and re-running the static symbolic factorization must contain
// the original structure (monotonicity of the George–Ng bound). Note it is
// NOT idempotent in general: the fill entries enlarge later candidate-pivot
// sets, which can enlarge the bound further.
func TestStaticClosureMonotone(t *testing.T) {
	mats := []*sparse.CSR{
		sparse.Grid2D(7, 7, false, sparse.GenOptions{Seed: 60}),
		sparse.Circuit(60, 3, sparse.GenOptions{Seed: 61, StructuralDrop: 0.2}),
		sparse.RandomSparse(50, 2, 62),
	}
	for mi, a := range mats {
		st := Factorize(sparse.PatternOf(a))
		// Rebuild a pattern holding the full static structure.
		coo := sparse.NewCOO(a.N, a.N)
		for k := 0; k < st.N; k++ {
			for _, j := range st.URows[k] {
				coo.Add(k, int(j), 1)
			}
			for _, i := range st.LCols[k] {
				coo.Add(int(i), k, 1)
			}
		}
		st2 := Factorize(sparse.PatternOf(coo.ToCSR()))
		contains := func(sup, sub []int32) bool {
			i := 0
			for _, v := range sub {
				for i < len(sup) && sup[i] < v {
					i++
				}
				if i == len(sup) || sup[i] != v {
					return false
				}
			}
			return true
		}
		for k := 0; k < st.N; k++ {
			if !contains(st2.URows[k], st.URows[k]) || !contains(st2.LCols[k], st.LCols[k]) {
				t.Fatalf("matrix %d: refactorized structure lost entries at step %d", mi, k)
			}
		}
	}
}
