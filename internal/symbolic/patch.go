package symbolic

// Incremental re-analysis: the service pattern "same structure plus a few
// entries" should not pay a full static symbolic factorization. Patch
// re-runs the row-merge computation only where it can have changed, splicing
// every untouched column straight out of the base structure.
//
// The key observation making this exact is that the merge forest's full
// state is recoverable from the output: the group a column c hands onward is
// precisely (URows[c][1:], LCols[c]), and it is handed to column URows[c][1].
// So the incremental sweep processes columns in ascending order, keeps a
// "dirty" frontier seeded at the start columns of every changed row (old and
// new), rebuilds a dirty column's participants from current chain pointers,
// and compares the recomputed output against the base: an unchanged output
// cuts the propagation off (the downstream chain sees byte-equal inputs), a
// changed one dirties both the old and the new successor columns. This is
// standard change propagation with early cutoff, and it terminates because
// chain successors are strictly greater than their source column.

import "sstar/internal/sparse"

// PatchStats reports what an incremental re-analysis did.
type PatchStats struct {
	// ChangedRows is the number of rows whose structure differs between the
	// base and the new pattern; ChangedEntries the size of their symmetric
	// difference in entries.
	ChangedRows, ChangedEntries int
	// Recomputed and Reused split the columns into merge steps re-run by the
	// propagation and columns spliced unchanged from the base structure.
	Recomputed, Reused int
	// Reason is empty on success and names why the incremental path
	// refused ("diff-above-threshold", "diagonal-lost", "shape-mismatch").
	Reason string
}

// Patch computes the static symbolic factorization of newPat by change
// propagation over old, which must be Factorize(oldPat). The returned
// structure is byte-identical to Factorize(newPat) (untouched columns share
// the base's slices). A nil return means the incremental path refused —
// the diff exceeds maxFrac of the new pattern's entries, a changed row lost
// its diagonal entry (the merge precondition), or the shapes differ — and
// the caller should run a full analysis; stats.Reason says which.
func Patch(old *Static, oldPat, newPat *sparse.Pattern, maxFrac float64) (*Static, PatchStats) {
	var stats PatchStats
	n := old.N
	if oldPat.N != n || newPat.N != n {
		stats.Reason = "shape-mismatch"
		return nil, stats
	}
	// Diff the rows, seeding the dirty frontier at both start columns of
	// every changed row: the new group injects at its new start, and the old
	// group's absence changes the merge at its old start.
	dirty := make([]bool, n)
	for i := 0; i < n; i++ {
		or, nr := oldPat.Row(i), newPat.Row(i)
		if eqInts(or, nr) {
			continue
		}
		stats.ChangedRows++
		stats.ChangedEntries += symDiffSize(or, nr)
		if len(nr) == 0 || !containsInt(nr, i) {
			// An empty or diagonal-free row under the base ordering needs a
			// fresh transversal — full analysis territory.
			stats.Reason = "diagonal-lost"
			return nil, stats
		}
		dirty[or[0]] = true
		dirty[nr[0]] = true
	}
	if stats.ChangedRows == 0 {
		stats.Reused = n
		return old, stats
	}
	if float64(stats.ChangedEntries) > maxFrac*float64(max(1, newPat.Nnz())) {
		stats.Reason = "diff-above-threshold"
		return nil, stats
	}
	// Chain pointers of the current (patched-so-far) structure. next[c] is
	// the column c's surviving group flows to (-1: nothing flows on); rev[k]
	// holds the base's inbound sources, filtered by next at use; added[k]
	// collects sources the propagation re-aimed at k.
	next := make([]int32, n)
	rev := make([][]int32, n)
	for c := 0; c < n; c++ {
		next[c] = -1
		if len(old.LCols[c]) > 0 {
			m := old.URows[c][1]
			next[c] = m
			rev[m] = append(rev[m], int32(c))
		}
	}
	added := make([][]int32, n)
	startRows := make([][]int32, n)
	for i := 0; i < n; i++ {
		c := newPat.Row(i)[0]
		startRows[c] = append(startRows[c], int32(i))
	}
	st := &Static{N: n, URows: make([][]int32, n), LCols: make([][]int32, n)}
	var ms mergeState
	var parts []*group
	for k := 0; k < n; k++ {
		if !dirty[k] {
			st.URows[k] = old.URows[k]
			st.LCols[k] = old.LCols[k]
			continue
		}
		stats.Recomputed++
		parts = parts[:0]
		for _, i := range startRows[k] {
			parts = append(parts, rowGroup(newPat, int(i)))
		}
		for _, c := range rev[k] {
			if next[c] == int32(k) {
				parts = append(parts, &group{cols: st.URows[c][1:], rows: st.LCols[c]})
			}
		}
		for _, c := range added[k] {
			parts = append(parts, &group{cols: st.URows[c][1:], rows: st.LCols[c]})
		}
		g := ms.step(k, parts, st)
		if eqInt32(st.URows[k], old.URows[k]) && eqInt32(st.LCols[k], old.LCols[k]) {
			// Early cutoff: the recomputed output matches the base, so the
			// outflowing group is byte-equal too and downstream merges see
			// unchanged inputs. Keep the base slices (frees the copies).
			st.URows[k] = old.URows[k]
			st.LCols[k] = old.LCols[k]
			continue
		}
		// The output changed: the old successor loses (or changes) this
		// column's inbound group and the new successor gains it — both
		// merges must re-run. Successors are strictly greater than k, so
		// the ascending sweep reaches them after this point.
		if mOld := next[k]; mOld >= 0 {
			dirty[mOld] = true
		}
		if g != nil {
			m := g.cols[0]
			dirty[m] = true
			if m != next[k] {
				added[m] = append(added[m], int32(k))
			}
			next[k] = m
		} else {
			next[k] = -1
		}
	}
	stats.Reused = n - stats.Recomputed
	return st, stats
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}

func eqInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}

// symDiffSize returns |a Δ b| for sorted int slices.
func symDiffSize(a, b []int) int {
	i, j, d := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
			d++
		case a[i] > b[j]:
			j++
			d++
		default:
			i++
			j++
		}
	}
	return d + (len(a) - i) + (len(b) - j)
}

// containsInt reports whether sorted xs contains v.
func containsInt(xs []int, v int) bool {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(xs) && xs[lo] == v
}
