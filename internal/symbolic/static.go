// Package symbolic implements the structure-prediction layer of S*: the
// George–Ng static symbolic factorization that upper-bounds the L/U
// structures of sparse GEPP under every possible partial-pivoting sequence
// (paper Section 3.1), and the symbolic Cholesky factorization of A^T A used
// as the looser comparison bound in Table 1.
package symbolic

import "sort"

import "sstar/internal/sparse"

// Static holds the result of the static symbolic factorization of an n-by-n
// matrix with a zero-free diagonal.
//
// URows[k] is the final structure of row k restricted to columns >= k (the
// U-part of row k, diagonal included), sorted. LCols[k] lists the rows i > k
// that may hold a nonzero in column k of L, sorted. Together they cover the
// structures of both factors for any pivot sequence.
type Static struct {
	N     int
	URows [][]int32
	LCols [][]int32
}

// NnzU returns the number of structural entries in U (diagonal included).
func (s *Static) NnzU() int {
	n := 0
	for _, r := range s.URows {
		n += len(r)
	}
	return n
}

// NnzL returns the number of structural entries in L including the unit
// diagonal.
func (s *Static) NnzL() int {
	n := s.N
	for _, c := range s.LCols {
		n += len(c)
	}
	return n
}

// NnzTotal returns nnz(L+U) counting the diagonal once (the "factor entries"
// statistic of Table 1).
func (s *Static) NnzTotal() int { return s.NnzL() + s.NnzU() - s.N }

// ElementOps returns the number of floating-point operations a right-looking
// elimination performs when it touches every structural entry of the static
// structure: per step k, one division per L entry and a multiply-add pair per
// (L entry, U entry) combination. This is the over-estimated operation count
// whose ratio to the true count appears in the last column of Table 1.
func (s *Static) ElementOps() int64 {
	var ops int64
	for k := 0; k < s.N; k++ {
		l := int64(len(s.LCols[k]))
		u := int64(len(s.URows[k]) - 1) // exclude the diagonal
		ops += l + 2*l*u
	}
	return ops
}

// group is one "super-row" of the row-merge forest: a set of rows proven
// identical in structure for the remaining columns. The sequential,
// parallel-subtree and incremental drivers all move the same groups through
// the same merge step, which is what makes their outputs byte-identical.
type group struct {
	cols []int32 // remaining structure, sorted, all >= current step
	rows []int32 // alive member rows (candidate pivots), sorted
}

// rowGroup builds the initial merge group of row i of a.
func rowGroup(a *sparse.Pattern, i int) *group {
	row := a.Row(i)
	if len(row) == 0 {
		panic("symbolic: empty row")
	}
	cols := make([]int32, len(row))
	for p, c := range row {
		cols[p] = int32(c)
	}
	return &group{cols: cols, rows: []int32{int32(i)}}
}

// mergeState carries the reusable scratch buffers of one merge run.
type mergeState struct {
	scratch  []int32
	rscratch []int32
}

// step performs the merge at column k over the participant groups, writing
// the column's U-row and L-column into st and returning the surviving merged
// group (nil when the pivot row was the sole candidate). The unions are
// sort-and-dedup, so the output is independent of the order the participants
// arrive in — the property every parallel and incremental driver relies on.
func (ms *mergeState) step(k int, parts []*group, st *Static) *group {
	if len(parts) == 0 {
		panic("symbolic: no candidate rows at step; diagonal not zero-free?")
	}
	// Union the participants' structures and candidate-row sets. The
	// candidate rows at step k are exactly the rows that may hold an
	// L multiplier in column k (any of them could have been left
	// below the diagonal by the row interchanges).
	scratch := ms.scratch[:0]
	rscratch := ms.rscratch[:0]
	for _, g := range parts {
		scratch = append(scratch, g.cols...)
		rscratch = append(rscratch, g.rows...)
	}
	sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
	merged := make([]int32, 0, len(scratch))
	for i, c := range scratch {
		if i == 0 || c != scratch[i-1] {
			merged = append(merged, c)
		}
	}
	if merged[0] != int32(k) {
		panic("symbolic: candidate structure does not start at step column")
	}
	st.URows[k] = merged
	// Member-row sets of distinct groups are disjoint; sort and drop
	// the retiring row k (a candidate by the zero-free diagonal).
	sort.Slice(rscratch, func(i, j int) bool { return rscratch[i] < rscratch[j] })
	if len(rscratch) == 0 || rscratch[0] != int32(k) {
		panic("symbolic: row k is not a candidate at step k")
	}
	alive := make([]int32, len(rscratch)-1)
	copy(alive, rscratch[1:])
	st.LCols[k] = alive
	ms.scratch, ms.rscratch = scratch, rscratch
	// The merged structure propagates only through rows that remain
	// candidates; when the pivot was the sole candidate its remaining
	// U entries are frozen into row k and nothing flows on.
	if len(alive) == 0 {
		return nil
	}
	rest := merged[1:]
	if len(rest) == 0 {
		panic("symbolic: alive candidate rows with empty structure")
	}
	return &group{cols: rest, rows: alive}
}

// Factorize runs the static symbolic factorization on the pattern of a,
// which must be square with a structurally zero-free diagonal (apply
// ordering.MaxTransversal first when needed).
//
// The implementation uses a row-merge forest: at step k every "super-row"
// (group of rows proven identical in structure for columns >= k) whose
// structure contains column k is merged; the merged structure, restricted to
// columns >= k, is exactly the final structure of row k. Each group is
// consumed by exactly one merge, so the total work is O(nnz(L+U) log) — this
// is the efficient formulation the paper credits to Kai Shen's
// implementation.
//
// FactorizeWorkers runs the same computation on a worker pool with a
// byte-identical result.
func Factorize(a *sparse.Pattern) *Static {
	n := a.N
	// bucket[c] holds the groups whose minimum column is c.
	bucket := make([][]*group, n)
	for i := 0; i < n; i++ {
		g := rowGroup(a, i)
		bucket[g.cols[0]] = append(bucket[g.cols[0]], g)
	}
	st := &Static{N: n, URows: make([][]int32, n), LCols: make([][]int32, n)}
	var ms mergeState
	for k := 0; k < n; k++ {
		parts := bucket[k]
		bucket[k] = nil
		if g := ms.step(k, parts, st); g != nil {
			bucket[g.cols[0]] = append(bucket[g.cols[0]], g)
		}
	}
	return st
}

// LRows returns, for each row i, the sorted list of columns k < i where row i
// may hold an L entry (the transpose view of LCols). Useful for per-row
// storage layouts.
func (s *Static) LRows() [][]int32 {
	rows := make([][]int32, s.N)
	for k, col := range s.LCols {
		for _, i := range col {
			rows[i] = append(rows[i], int32(k))
		}
	}
	return rows
}
