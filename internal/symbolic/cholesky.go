package symbolic

import (
	"sort"

	"sstar/internal/sparse"
)

// CholeskyFill computes nnz(L_c) of the symbolic Cholesky factor of a
// symmetric pattern (diagonal included). Structure of L_c(A^T A) is the
// classical — but loose — upper bound for sparse GEPP structures that
// Table 1 compares the George–Ng bound against.
func CholeskyFill(s *sparse.Pattern) int64 {
	cols := CholeskyColumns(s)
	var nnz int64
	for _, c := range cols {
		nnz += int64(len(c)) + 1 // entries below diagonal, plus the diagonal
	}
	return nnz
}

// CholeskyColumns returns, for each column j, the sorted row indices i > j of
// the symbolic Cholesky factor of the symmetric pattern s.
//
// It uses Liu's row-merge formulation: struct(j) = (pattern of column j below
// the diagonal) ∪ ⋃ { struct(c) \ {first} : c a child of j in the
// elimination tree }, computed in one pass since children always have smaller
// indices.
func CholeskyColumns(s *sparse.Pattern) [][]int32 {
	n := s.N
	cols := make([][]int32, n)
	children := make([][]int32, n)
	marker := make([]int, n)
	for i := range marker {
		marker[i] = -1
	}
	var scratch []int32
	for j := 0; j < n; j++ {
		scratch = scratch[:0]
		for _, i := range s.Row(j) { // symmetric: row j == column j
			if i > j && marker[i] != j {
				marker[i] = j
				scratch = append(scratch, int32(i))
			}
		}
		for _, c := range children[j] {
			for _, i := range cols[c] {
				if int(i) > j && marker[i] != j {
					marker[i] = j
					scratch = append(scratch, i)
				}
			}
		}
		out := make([]int32, len(scratch))
		copy(out, scratch)
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		cols[j] = out
		if len(out) > 0 {
			p := out[0] // etree parent = first off-diagonal entry
			children[p] = append(children[p], int32(j))
		}
	}
	return cols
}
