package symbolic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sstar/internal/ordering"
	"sstar/internal/sparse"
)

// forceParallel drops the parallel driver's size gates so small test
// matrices exercise the subtree decomposition, restoring them afterwards.
func forceParallel(t *testing.T) {
	t.Helper()
	minCols, minGrain := parMinCols, parMinGrain
	parMinCols, parMinGrain = 2, 1
	t.Cleanup(func() { parMinCols, parMinGrain = minCols, minGrain })
}

func TestColEtreeMatchesATAEtree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		a := sparse.RandomSparse(n, 1+rng.Intn(4), seed)
		got := ColEtree(sparse.PatternOf(a))
		want := ordering.EliminationTree(sparse.ATAPattern(a))
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestColEtreeParentsAboveChildren(t *testing.T) {
	a := sparse.Grid2D(14, 14, false, sparse.GenOptions{Seed: 3})
	parent := ColEtree(sparse.PatternOf(a))
	for c, p := range parent {
		if p != -1 && p <= c {
			t.Fatalf("parent[%d] = %d, want > %d or -1", c, p, c)
		}
	}
}

// TestFactorizeWorkersByteIdentical pins the determinism contract: the
// parallel static structure is byte-identical to the sequential one at every
// worker count.
func TestFactorizeWorkersByteIdentical(t *testing.T) {
	forceParallel(t)
	mats := []*sparse.CSR{
		sparse.Grid2D(20, 20, false, sparse.GenOptions{Seed: 1}),
		sparse.Circuit(300, 4, sparse.GenOptions{Seed: 7, StructuralDrop: 0.2}),
		sparse.RandomSparse(200, 3, 11),
		sparse.MemoryCircuitFrac(150, 10, 5),
	}
	for mi, a := range mats {
		p := sparse.PatternOf(a)
		want := Factorize(p)
		for _, w := range []int{1, 2, 4, 8} {
			got := FactorizeWorkers(p, w)
			if !equalStatic(got, want) {
				t.Fatalf("matrix %d: parallel static at %d workers differs from sequential", mi, w)
			}
		}
	}
}

func TestFactorizeWorkersProperty(t *testing.T) {
	forceParallel(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(60)
		a := sparse.RandomSparse(n, 1+rng.Intn(4), seed)
		p := sparse.PatternOf(a)
		want := Factorize(p)
		for _, w := range []int{2, 3, 4, 8} {
			if !equalStatic(FactorizeWorkers(p, w), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFactorizeWorkersLargeGate(t *testing.T) {
	// With the default gates a small matrix silently runs the sequential
	// path; a grid above the gate must still match it exactly.
	a := sparse.Grid2D(24, 24, false, sparse.GenOptions{Seed: 9})
	p := sparse.PatternOf(a)
	if !equalStatic(FactorizeWorkers(p, 4), Factorize(p)) {
		t.Fatal("parallel static differs from sequential above the size gate")
	}
}
