package symbolic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sstar/internal/sparse"
)

// TestPatchMatchesFromScratch pins the incremental contract: patching the
// base structure with a randomized ±k-entry diff is byte-identical to a
// from-scratch factorization of the new pattern.
func TestPatchMatchesFromScratch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(80)
		base := sparse.RandomSparse(n, 1+rng.Intn(4), seed)
		basePat := sparse.PatternOf(base)
		old := Factorize(basePat)
		k := 1 + rng.Intn(6)
		pert := sparse.PerturbPattern(base, k, rng.Intn(k+1), seed+1)
		pertPat := sparse.PatternOf(pert)
		st, stats := Patch(old, basePat, pertPat, 1.0)
		if st == nil {
			t.Logf("patch refused: %s", stats.Reason)
			return false
		}
		return equalStatic(st, Factorize(pertPat))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPatchNoChangeReturnsBase(t *testing.T) {
	a := sparse.RandomSparse(60, 3, 4)
	p := sparse.PatternOf(a)
	old := Factorize(p)
	st, stats := Patch(old, p, p, 0.01)
	if st != old {
		t.Fatal("identical pattern should return the base structure")
	}
	if stats.Recomputed != 0 || stats.Reused != 60 || stats.ChangedRows != 0 {
		t.Fatalf("unexpected stats for no-op patch: %+v", stats)
	}
}

func TestPatchThresholdFallsBack(t *testing.T) {
	a := sparse.RandomSparse(80, 3, 4)
	p := sparse.PatternOf(a)
	old := Factorize(p)
	pert := sparse.PerturbPattern(a, 100, 50, 5)
	st, stats := Patch(old, p, sparse.PatternOf(pert), 0.01)
	if st != nil {
		t.Fatal("patch should refuse a diff above the threshold")
	}
	if stats.Reason != "diff-above-threshold" {
		t.Fatalf("reason = %q, want diff-above-threshold", stats.Reason)
	}
}

func TestPatchRefusesLostDiagonal(t *testing.T) {
	coo := sparse.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		coo.Add(i, i, 1)
		if i > 0 {
			coo.Add(i, i-1, 1)
		}
		if i+1 < 4 {
			coo.Add(i, i+1, 1)
		}
	}
	a := coo.ToCSR()
	p := sparse.PatternOf(a)
	old := Factorize(p)
	// Remove the (2,2) diagonal entry by hand.
	coo2 := sparse.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		cols, vals := a.Row(i)
		for q, j := range cols {
			if i == 2 && j == 2 {
				continue
			}
			coo2.Add(i, j, vals[q])
		}
	}
	st, stats := Patch(old, p, sparse.PatternOf(coo2.ToCSR()), 1.0)
	if st != nil || stats.Reason != "diagonal-lost" {
		t.Fatalf("want diagonal-lost refusal, got st=%v reason=%q", st != nil, stats.Reason)
	}
}

// TestPatchSharesUntouchedColumns checks the splice actually reuses the base
// slices (the memory and time win the propagation cone exists for).
func TestPatchSharesUntouchedColumns(t *testing.T) {
	a := sparse.Grid2D(16, 16, false, sparse.GenOptions{Seed: 2})
	p := sparse.PatternOf(a)
	old := Factorize(p)
	pert := sparse.PerturbPattern(a, 2, 0, 3)
	st, stats := Patch(old, p, sparse.PatternOf(pert), 1.0)
	if st == nil {
		t.Fatalf("patch refused: %+v", stats)
	}
	if stats.Reused == 0 {
		t.Fatal("a 2-entry diff should reuse most columns")
	}
	shared := 0
	for k := 0; k < st.N; k++ {
		if len(st.URows[k]) > 0 && len(old.URows[k]) > 0 && &st.URows[k][0] == &old.URows[k][0] {
			shared++
		}
	}
	if shared < stats.Reused {
		t.Fatalf("reused columns %d but only %d share backing arrays", stats.Reused, shared)
	}
}
