package symbolic

import (
	"sync"
	"sync/atomic"

	"sstar/internal/sparse"
)

// Tuning knobs of the parallel driver. Variables, not constants, so the
// property tests can force the parallel path on small matrices.
var (
	// parMinCols is the matrix order below which FactorizeWorkers runs the
	// sequential driver outright — the decomposition overhead cannot pay.
	parMinCols = 256
	// parMinGrain is the minimum subtree weight (structure entries) one
	// parallel task should carry.
	parMinGrain = 512
)

// FactorizeWorkers is Factorize computed on up to workers goroutines. The
// result is byte-identical to the sequential one at any worker count: the
// column elimination tree of the pattern is cut into disjoint subtrees, each
// subtree runs the unmodified sequential row-merge locally (the merge chain
// of a row starting inside a subtree provably stays inside it until it exits
// through the subtree's root — see DESIGN.md "Parallel & incremental symbolic
// analysis"), and a sequential top phase over the separator columns consumes
// the groups the subtrees export. Every per-column union is a sort-and-dedup,
// so scheduling order cannot change any output byte.
func FactorizeWorkers(a *sparse.Pattern, workers int) *Static {
	n := a.N
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < parMinCols {
		return Factorize(a)
	}
	parent := ColEtree(a)
	// Subtree weights: structure entries of the rows starting at each column
	// (the merge work a column originates), accumulated up the tree. Parents
	// are always greater than children, so one ascending pass accumulates.
	weight := make([]int64, n)
	for i := 0; i < n; i++ {
		row := a.Row(i)
		weight[row[0]] += int64(len(row)) + 1
	}
	var total int64
	for c := 0; c < n; c++ {
		total += weight[c] // before adding children's rollup: own weight only
	}
	subW := make([]int64, n)
	copy(subW, weight)
	childHead := make([]int32, n)
	childNext := make([]int32, n)
	for c := range childHead {
		childHead[c] = -1
	}
	for c := n - 1; c >= 0; c-- { // reverse so lists come out ascending
		if p := parent[c]; p >= 0 {
			childNext[c] = childHead[p]
			childHead[p] = int32(c)
		}
	}
	for c := 0; c < n; c++ { // children precede parents
		if p := parent[c]; p >= 0 {
			subW[p] += subW[c]
		}
	}
	// Deterministic subtree selection: walk down from every forest root,
	// keeping a subtree once it fits the grain and pushing over-grain nodes
	// into the separator. region[c] is the owning task (-1 = separator).
	maxGrain := total / int64(4*workers)
	if maxGrain < int64(parMinGrain) {
		maxGrain = int64(parMinGrain)
	}
	region := make([]int32, n)
	for c := range region {
		region[c] = -1
	}
	var taskRoots []int32
	stack := make([]int32, 0, 64)
	for c := 0; c < n; c++ {
		if parent[c] == -1 {
			stack = append(stack, int32(c))
		}
	}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if subW[c] <= maxGrain || childHead[c] == -1 {
			taskRoots = append(taskRoots, c)
			continue
		}
		// c joins the separator; its children are candidate subtrees.
		for ch := childHead[c]; ch != -1; ch = childNext[ch] {
			stack = append(stack, ch)
		}
	}
	if len(taskRoots) < 2 {
		return Factorize(a)
	}
	// Stamp subtree membership and bail out when the separator holds most of
	// the work (deep chain-like trees): the top phase would dominate.
	var subTotal int64
	for t, r := range taskRoots {
		subTotal += subW[r]
		stack = append(stack[:0], r)
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			region[c] = int32(t)
			for ch := childHead[c]; ch != -1; ch = childNext[ch] {
				stack = append(stack, ch)
			}
		}
	}
	if subTotal*2 < total {
		return Factorize(a)
	}
	// Per-task ascending column lists and the per-column row starts.
	colsOf := make([][]int32, len(taskRoots))
	startRows := make([][]int32, n)
	for c := 0; c < n; c++ {
		if t := region[c]; t >= 0 {
			colsOf[t] = append(colsOf[t], int32(c))
		}
	}
	for i := 0; i < n; i++ {
		c := a.Row(i)[0]
		startRows[c] = append(startRows[c], int32(i))
	}
	st := &Static{N: n, URows: make([][]int32, n), LCols: make([][]int32, n)}
	// Run the subtrees on the pool. Tasks write disjoint st slots (their own
	// columns) and collect exported groups; no ordering between tasks can
	// matter because no task reads another's output.
	exports := make([][]*group, len(taskRoots))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ms mergeState
			var parts []*group
			local := make(map[int32][]*group)
			for {
				t := int(cursor.Add(1)) - 1
				if t >= len(taskRoots) {
					return
				}
				myid := int32(t)
				var out []*group
				for _, k := range colsOf[t] {
					parts = parts[:0]
					for _, i := range startRows[k] {
						parts = append(parts, rowGroup(a, int(i)))
					}
					if gs, ok := local[k]; ok {
						parts = append(parts, gs...)
						delete(local, k)
					}
					g := ms.step(int(k), parts, st)
					if g == nil {
						continue
					}
					if m := g.cols[0]; region[m] == myid {
						local[m] = append(local[m], g)
					} else {
						out = append(out, g)
					}
				}
				if len(local) != 0 {
					panic("symbolic: parallel subtree left unconsumed groups")
				}
				exports[t] = out
			}
		}()
	}
	wg.Wait()
	// Sequential top phase over the separator: original rows starting there
	// plus every group the subtrees exported. Exports land above their
	// subtree's root, which is always a separator column.
	bucket := make([][]*group, n)
	for _, out := range exports {
		for _, g := range out {
			m := g.cols[0]
			if region[m] != -1 {
				panic("symbolic: exported group does not target the separator")
			}
			bucket[m] = append(bucket[m], g)
		}
	}
	var ms mergeState
	var parts []*group
	for k := 0; k < n; k++ {
		if region[k] != -1 {
			continue
		}
		parts = parts[:0]
		for _, i := range startRows[k] {
			parts = append(parts, rowGroup(a, int(i)))
		}
		parts = append(parts, bucket[k]...)
		bucket[k] = nil
		g := ms.step(k, parts, st)
		if g == nil {
			continue
		}
		m := g.cols[0]
		if region[m] != -1 {
			panic("symbolic: separator group re-entered a subtree")
		}
		bucket[m] = append(bucket[m], g)
	}
	return st
}
