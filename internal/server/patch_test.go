package server

import (
	"strings"
	"sync"
	"testing"

	"sstar"
)

// analyzedHooks records every Analyzed replication callback.
type analyzedHooks struct {
	mu   sync.Mutex
	keys []uint64
}

func (h *analyzedHooks) Route(*Request) *Response          { return nil }
func (h *analyzedHooks) Placement(uint64) (string, string) { return "", "" }
func (h *analyzedHooks) Analyzed(key uint64, _ *sstar.Analysis) {
	h.mu.Lock()
	h.keys = append(h.keys, key)
	h.mu.Unlock()
}
func (h *analyzedHooks) Stored(StoredEvent)        {}
func (h *analyzedHooks) Freed(uint64, uint64)      {}
func (h *analyzedHooks) AugmentStats(*ServerStats) {}

// TestFactorizeSecondChancePatch: a cold structure key whose pattern is a
// near miss of a cached one is served by the incremental patch path, and the
// patched analysis replicates to the successor exactly like a cold one.
func TestFactorizeSecondChancePatch(t *testing.T) {
	hooks := &analyzedHooks{}
	s := New(Config{Workers: 1, FactorWorkers: 1, Cluster: hooks})
	defer s.Close()

	base := sstar.GenCircuit(400, 4, sstar.GenOptions{Seed: 31})
	r1 := s.process(&Request{Op: OpFactorize, Matrix: base, Opts: sstar.DefaultOptions()})
	if r1.Err != "" {
		t.Fatal(r1.Err)
	}
	if r1.Stats.Patched {
		t.Fatal("first factorize cannot be a patch")
	}

	pert := sstar.GenPerturb(base, 3, 2, 32)
	r2 := s.process(&Request{Op: OpFactorize, Matrix: pert, Opts: sstar.DefaultOptions()})
	if r2.Err != "" {
		t.Fatal(r2.Err)
	}
	if !r2.Stats.Patched {
		t.Fatal("near-miss factorize was not served by the patch path")
	}
	if r2.Stats.CacheHit {
		t.Fatal("patched request must still count as a key miss")
	}
	if r2.Key == r1.Key {
		t.Fatal("perturbed structure should have a distinct key")
	}
	st := s.Stats()
	if st.Patches != 1 || st.PatchFallbacks != 0 {
		t.Fatalf("patches/fallbacks = %d/%d, want 1/0", st.Patches, st.PatchFallbacks)
	}

	// Satellite contract: the patched analysis flowed through the Analyzed
	// replication hook under its own key, so incremental hits survive
	// failover just like cold analyses.
	hooks.mu.Lock()
	keys := append([]uint64(nil), hooks.keys...)
	hooks.mu.Unlock()
	if len(keys) != 2 || keys[0] != r1.Key || keys[1] != r2.Key {
		t.Fatalf("Analyzed keys = %v, want [%d %d]", keys, r1.Key, r2.Key)
	}

	// The exact key now hits: a repeat of the perturbed structure pays
	// neither an analyze nor a patch.
	r3 := s.process(&Request{Op: OpFactorize, Matrix: pert, Opts: sstar.DefaultOptions()})
	if r3.Err != "" {
		t.Fatal(r3.Err)
	}
	if !r3.Stats.CacheHit || r3.Stats.Patched {
		t.Fatalf("repeat request: hit=%v patched=%v, want hit and no patch", r3.Stats.CacheHit, r3.Stats.Patched)
	}

	// The patched analysis solves correctly.
	b := make([]float64, pert.N)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	rs := s.process(&Request{Op: OpSolve, Handle: r2.Handle, B: b})
	if rs.Err != "" {
		t.Fatal(rs.Err)
	}
	if res := sstar.Residual(pert, rs.X, b); res > 1e-10 {
		t.Fatalf("solve residual through patched analysis: %g", res)
	}

	// And the breakdown made it to /metrics.
	var sb strings.Builder
	s.Registry().WritePrometheus(&sb)
	for _, fam := range []string{
		"sstar_server_analysis_patches_total 1",
		"sstar_analyze_patch_seconds_count 1",
		"sstar_analyze_symbolic_seconds_count 1",
		"sstar_analyze_build_seconds_count",
	} {
		if !strings.Contains(sb.String(), fam) {
			t.Errorf("/metrics missing %q", fam)
		}
	}
}

// TestFactorizePatchDisabled: a negative Config.PatchMaxDiff turns the
// second-chance lookup off entirely.
func TestFactorizePatchDisabled(t *testing.T) {
	s := New(Config{Workers: 1, FactorWorkers: 1, PatchMaxDiff: -1})
	defer s.Close()
	base := sstar.GenCircuit(300, 4, sstar.GenOptions{Seed: 7})
	if r := s.process(&Request{Op: OpFactorize, Matrix: base, Opts: sstar.DefaultOptions()}); r.Err != "" {
		t.Fatal(r.Err)
	}
	pert := sstar.GenPerturb(base, 2, 1, 8)
	r := s.process(&Request{Op: OpFactorize, Matrix: pert, Opts: sstar.DefaultOptions()})
	if r.Err != "" {
		t.Fatal(r.Err)
	}
	if r.Stats.Patched {
		t.Fatal("patching disabled but request reports a patch")
	}
	if st := s.Stats(); st.Patches != 0 {
		t.Fatalf("patches = %d, want 0", st.Patches)
	}
}

// TestNearestRespectsOptionsAndOrder: candidates under different options or
// a different order never qualify as patch bases.
func TestNearestRespectsOptionsAndOrder(t *testing.T) {
	c := newAnalysisCache(8)
	a := sstar.GenCircuit(200, 4, sstar.GenOptions{Seed: 3})
	opts := sstar.DefaultOptions()
	an, err := sstar.Analyze(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.add(an.Key(), an)

	pert := sstar.GenPerturb(a, 2, 1, 4)
	if got := c.nearest(pert, opts); got != an {
		t.Fatal("near-miss pattern should find the cached base")
	}
	other := opts
	other.BlockSize = 25
	if got := c.nearest(pert, other); got != nil {
		t.Fatal("different options must not match")
	}
	small := sstar.GenCircuit(100, 4, sstar.GenOptions{Seed: 3})
	if got := c.nearest(small, opts); got != nil {
		t.Fatal("different order must not match")
	}
	far := sstar.GenCircuit(200, 4, sstar.GenOptions{Seed: 99})
	if got := c.nearest(far, opts); got != nil {
		t.Fatal("unrelated structure must not clear the similarity gate")
	}
}
