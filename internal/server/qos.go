package server

import "sync"

// maxTenantQueues bounds the scheduler's tenant fan-out: a client inventing
// unbounded tenant names cannot grow server state without limit. Tenants past
// the bound share one spillover queue (and its fair share) under
// spillTenant.
const (
	maxTenantQueues = 1024
	spillTenant     = "~other"
)

// tenantQueue is one tenant's FIFO backlog plus its weighted-round-robin
// state.
type tenantQueue struct {
	name   string
	jobs   []*job
	weight int
	// credit is the tenant's remaining dequeues in the current round-robin
	// visit: replenished to weight when the pointer arrives, decremented
	// per dequeue, the pointer moves on at zero. A tenant with weight w
	// therefore gets up to w consecutive dequeues per visit — w shares per
	// round when every queue is backlogged.
	credit int
}

// qosched is the per-tenant weighted fair scheduler that replaced the single
// jobs channel: one FIFO per tenant, served weighted round-robin, so one
// tenant's burst (a factorize storm) queues behind its own share instead of
// ahead of everyone else's solves. Capacity is bounded by the caller (the
// server's admission slots), not here.
type qosched struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[string]*tenantQueue
	active  []*tenantQueue // queues with a backlog, in round-robin order
	rrpos   int
	queued  int
	weights map[string]int // configured weights; unlisted tenants get 1
	stopped bool
}

func newQosched(weights map[string]int) *qosched {
	q := &qosched{
		queues:  make(map[string]*tenantQueue),
		weights: weights,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// weightOf returns the configured weight for a tenant, floored at 1.
func (q *qosched) weightOf(tenant string) int {
	if w := q.weights[tenant]; w > 0 {
		return w
	}
	return 1
}

// enqueue appends j to its tenant's queue (creating it on first use) and
// wakes one worker. The tenant fan-out is bounded: past maxTenantQueues new
// names share the spillover queue.
func (q *qosched) enqueue(j *job) {
	q.mu.Lock()
	tq := q.queues[j.tenant]
	if tq == nil {
		name := j.tenant
		if len(q.queues) >= maxTenantQueues && name != spillTenant {
			name = spillTenant
			tq = q.queues[name]
		}
		if tq == nil {
			tq = &tenantQueue{name: name, weight: q.weightOf(name)}
			q.queues[name] = tq
		}
	}
	if len(tq.jobs) == 0 {
		tq.credit = tq.weight
		q.active = append(q.active, tq)
	}
	tq.jobs = append(tq.jobs, j)
	q.queued++
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until a job is available and returns the weighted-round-robin
// choice. After stop it keeps returning queued jobs until the backlog is
// drained, then reports ok=false — the worker-exit signal.
func (q *qosched) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.queued == 0 {
		if q.stopped {
			return nil, false
		}
		q.cond.Wait()
	}
	// Serve the queue under the round-robin pointer; a queue out of credit
	// passes the turn and replenishes for its next visit.
	for {
		tq := q.active[q.rrpos]
		if tq.credit <= 0 {
			tq.credit = tq.weight
			q.rrpos = (q.rrpos + 1) % len(q.active)
			continue
		}
		tq.credit--
		j := tq.jobs[0]
		tq.jobs = tq.jobs[1:]
		q.queued--
		if len(tq.jobs) == 0 {
			q.removeActive(q.rrpos)
		} else if tq.credit == 0 {
			q.rrpos = (q.rrpos + 1) % len(q.active)
		}
		return j, true
	}
}

// removeActive drops the queue at index i from the round-robin ring, keeping
// the pointer on the next queue in order.
func (q *qosched) removeActive(i int) {
	q.active = append(q.active[:i], q.active[i+1:]...)
	if len(q.active) == 0 {
		q.rrpos = 0
	} else if q.rrpos >= len(q.active) {
		q.rrpos = 0
	}
}

// takeSolves extracts up to maxn queued plain solves against the given handle
// — the coalescer's ride-along collection. Jobs are taken in FIFO order
// within each tenant queue, across every tenant (a ride-along costs its
// tenant nothing: it shares the leader's worker slot), and disappear from
// the backlog exactly as if a worker had dequeued them.
func (q *qosched) takeSolves(handle uint64, maxn int) []*job {
	if maxn <= 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.queued == 0 {
		return nil
	}
	var taken []*job
	for ai := 0; ai < len(q.active) && len(taken) < maxn; {
		tq := q.active[ai]
		kept := tq.jobs[:0]
		for _, j := range tq.jobs {
			if len(taken) < maxn && j.req.Op == OpSolve && j.req.Handle == handle {
				taken = append(taken, j)
				q.queued--
			} else {
				kept = append(kept, j)
			}
		}
		// Zero the vacated tail so taken jobs are not pinned by the
		// backing array.
		for i := len(kept); i < len(tq.jobs); i++ {
			tq.jobs[i] = nil
		}
		tq.jobs = kept
		if len(tq.jobs) == 0 {
			q.removeActive(ai)
		} else {
			ai++
		}
	}
	return taken
}

// depth returns the total backlog.
func (q *qosched) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// depths snapshots the per-tenant backlog.
func (q *qosched) depths() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int, len(q.queues))
	for name, tq := range q.queues {
		if len(tq.jobs) > 0 {
			out[name] = len(tq.jobs)
		}
	}
	return out
}

// stop makes pop return ok=false once the backlog is drained, and wakes every
// blocked worker.
func (q *qosched) stop() {
	q.mu.Lock()
	q.stopped = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
