package server_test

// The chaos end-to-end suite: the full client -> fault-injecting proxy ->
// server stack under a mixed factorize/refactorize/solve workload, including
// a server kill/restart in the middle. The bar is the service's core promise
// under faults:
//
//   - every solve that completes is bit-identical to a local sequential
//     factorization of the same system (corruption may fail a request, it may
//     never corrupt an answer);
//   - the workload finishes: retries, redials, and app-level refactorizes
//     recover from every injected fault and from the restart;
//   - nothing leaks: live handles drain to zero and the goroutine count
//     returns to its pre-test level once everything is closed.

import (
	"context"
	"errors"
	"math"
	"net"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sstar"
	"sstar/client"
	"sstar/internal/chaos"
	"sstar/internal/server"
)

// chaosSystem is one linear system of the workload with its locally computed
// ground truth.
type chaosSystem struct {
	a    *sstar.Matrix
	vals []float64 // a.Val copy for values-only refactorizes (same values: factors unchanged)
	b    []float64
	xref []float64 // local sequential solve, the bit-exact reference
	est  int64     // server-side handle byte estimate, for sizing the budget
	h    *client.Handle
}

func buildChaosSystems(t *testing.T) []*chaosSystem {
	t.Helper()
	var systems []*chaosSystem
	for i := 0; i < 4; i++ {
		a := sstar.GenGrid2D(10+i, 11+i, i%2 == 1, sstar.GenOptions{Seed: int64(100 + i), Convection: 0.2})
		f, err := sstar.Factorize(a, sstar.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, a.N)
		for k := range b {
			b[k] = math.Sin(float64(3*k+i) + 1)
		}
		xref, err := f.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		systems = append(systems, &chaosSystem{
			a:    a,
			vals: append([]float64(nil), a.Val...),
			b:    b,
			xref: xref,
			est:  f.FillIn()*12 + int64(len(a.RowPtr)+len(a.ColInd))*8,
		})
	}
	return systems
}

// staleHandle reports the typed failures that mean "this handle is gone —
// factorize again", as opposed to transient faults worth plain retrying.
func staleHandle(err error) bool {
	return errors.Is(err, sstar.ErrBadHandle) || errors.Is(err, sstar.ErrHandleEvicted)
}

func TestChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e takes seconds")
	}
	baseGoroutines := runtime.NumGoroutine()
	systems := buildChaosSystems(t)

	// The budget fits two of the four cycling structures, so the registry
	// evicts continuously; the TTL sweeps handles orphaned when a factorize
	// response is lost to an injected fault.
	cfg := server.Config{
		Workers:       2,
		FactorWorkers: 2,
		MemBudget:     systems[0].est + systems[1].est,
		HandleTTL:     400 * time.Millisecond,
		DrainTimeout:  2 * time.Second,
	}
	newServer := func() (*server.Server, net.Listener) {
		s := server.New(cfg)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go s.Serve(l)
		return s, l
	}
	s1, l1 := newServer()

	// The chaos proxy sits between client and server: deterministic seed,
	// fault rates low enough for steady progress and high enough that a
	// workload this size is guaranteed to trip every fault class many times.
	var upstream atomic.Value
	upstream.Store(l1.Addr().String())
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	proxy := chaos.NewProxy(pl, func() (net.Conn, error) {
		return net.DialTimeout("tcp", upstream.Load().(string), time.Second)
	}, chaos.Config{Seed: 42, Corrupt: 0.03, Reset: 0.02, PartialWrite: 0.25})
	go proxy.Serve()

	cl, err := client.Dial("tcp", proxy.Addr().String(),
		client.WithRetry(client.RetryPolicy{MaxRetries: 4, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}

	// Mixed workload: mostly solves, a values-only refactorize every fifth
	// iteration, factorizes whenever a handle is missing, evicted, or lost to
	// the restart. Every iteration must eventually complete, and every
	// completed solve must match the local reference bit for bit.
	const iters = 210
	s2, l2 := s1, l1
	var s1FinalStats server.ServerStats
	restarted := false
	for i := 0; i < iters; i++ {
		if i == iters/2 {
			// Kill and replace the server mid-workload. Handles die with it;
			// the random per-instance id base guarantees stale handles fail
			// typed instead of silently hitting the new instance's factors.
			s1FinalStats = s1.Stats()
			s1.Close()
			s2, l2 = newServer()
			upstream.Store(l2.Addr().String())
			restarted = true
		}
		sy := systems[i%len(systems)]
		completed := false
		for attempt := 0; attempt < 100 && !completed; attempt++ {
			if attempt > 0 {
				time.Sleep(5 * time.Millisecond)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if sy.h == nil {
				h, _, err := cl.Factorize(ctx, sy.a, sstar.DefaultOptions())
				cancel()
				if err == nil {
					sy.h = h
				}
				continue
			}
			if i%5 == 4 {
				if _, err := sy.h.Refactorize(ctx, sy.vals); err != nil {
					cancel()
					if staleHandle(err) {
						sy.h = nil
					}
					continue
				}
			}
			x, _, err := sy.h.Solve(ctx, sy.b)
			cancel()
			if err != nil {
				if staleHandle(err) {
					sy.h = nil
				}
				continue
			}
			if len(x) != len(sy.xref) {
				t.Fatalf("iteration %d: solve returned %d values, want %d", i, len(x), len(sy.xref))
			}
			for k := range x {
				if math.Float64bits(x[k]) != math.Float64bits(sy.xref[k]) {
					t.Fatalf("iteration %d: solve diverges from the local reference at %d: %x != %x — an injected fault corrupted an answer", i, k, math.Float64bits(x[k]), math.Float64bits(sy.xref[k]))
				}
			}
			completed = true
		}
		if !completed {
			t.Fatalf("iteration %d never completed (server restarted: %v)", i, restarted)
		}
	}

	// Deliberate overload against the live server, bypassing the proxy so the
	// shed is deterministic: both workers pinned by big factorizations, then a
	// short-deadline ping that can only be shed.
	direct, err := client.Dial("tcp", l2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// A separate client for the probe ping: its pooled connection is dialed
	// and handshaked *before* the workers are pinned, so the ping's deadline
	// budget is spent queueing on the server, not dialing under CPU
	// contention from the factorizations.
	pingc, err := client.Dial("tcp", l2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	big := sstar.GenGrid2D(96, 96, false, sstar.GenOptions{Seed: 7, Convection: 0.1})
	factorizesBefore := s2.Stats().Factorizes
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if h, _, err := direct.Factorize(context.Background(), big, sstar.DefaultOptions()); err == nil {
				h.Free(context.Background())
			}
		}()
	}
	// Wait until both factorizes are actually on the workers (the counter
	// increments on entry), not merely in flight on the wire.
	for i := 0; s2.Stats().Factorizes < factorizesBefore+int64(cfg.Workers); i++ {
		if i > 10000 {
			t.Fatal("big factorizes never reached the workers")
		}
		time.Sleep(time.Millisecond)
	}
	// 100ms: far past any scheduling jitter, far short of the hundreds of
	// milliseconds the workers stay pinned — the ping can only be shed.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	if err := pingc.Ping(ctx); err == nil {
		t.Fatal("short-deadline ping behind two pinned workers succeeded")
	}
	cancel()
	wg.Wait()

	// Resilience counters: the workload must actually have exercised the
	// machinery it claims to test.
	m := cl.Metrics()
	if m.Retries+m.Redials == 0 {
		t.Fatalf("client metrics %+v: the fault rates above cannot leave zero retries and redials over %d iterations", m, iters)
	}
	st2 := s2.Stats()
	if total := s1FinalStats.Requests + st2.Requests; total < 200 {
		t.Fatalf("servers saw %d requests, want >= 200", total)
	}
	if s1FinalStats.Evictions+st2.Evictions == 0 {
		t.Fatal("no handle evictions despite a two-handle budget and four cycling structures")
	}
	if st2.Sheds == 0 {
		t.Fatal("no sheds despite the deliberate overload")
	}

	// The counters are on /metrics, where an operator would look first.
	rec := httptest.NewRecorder()
	s2.AdminHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, name := range []string{"sstar_server_sheds_total", "sstar_server_handle_evictions_total", "sstar_server_handle_bytes"} {
		if !strings.Contains(body, name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}

	// No handle leaks: free what the workload still holds (stale ids fail
	// typed, which is fine), then the TTL sweeper must drain the rest —
	// including handles orphaned by lost factorize responses — to zero.
	for _, sy := range systems {
		if sy.h != nil {
			sy.h.Free(context.Background())
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := s2.Stats().Handles; n == 0 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("%d handles still live after frees and %v of TTL sweeping", n, cfg.HandleTTL)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// No goroutine leaks once every component is shut down.
	cl.Close()
	direct.Close()
	pingc.Close()
	proxy.Close()
	s2.Close()
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= baseGoroutines+2 {
			break
		}
		if i > 500 {
			t.Fatalf("goroutines: %d at start, %d after shutdown", baseGoroutines, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
