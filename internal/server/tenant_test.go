package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"sstar"
	"sstar/internal/wire"
)

// testRHS builds nrhs deterministic, mutually distinct right-hand sides.
func testRHS(n, nrhs int) [][]float64 {
	out := make([][]float64, nrhs)
	for q := range out {
		b := make([]float64, n)
		for i := range b {
			b[i] = float64((i*7+q*13)%11) - 5 + float64(q)/8
		}
		out[q] = b
	}
	return out
}

// TestQoschedWeightedOrder: with every queue backlogged, a tenant of weight w
// gets w consecutive dequeues per round-robin visit.
func TestQoschedWeightedOrder(t *testing.T) {
	q := newQosched(map[string]int{"heavy": 3, "light": 1})
	mk := func(tenant string, i int) *job {
		return &job{req: &Request{Op: OpPing}, tenant: tenant, done: make(chan *Response, 1)}
	}
	for i := 0; i < 6; i++ {
		q.enqueue(mk("heavy", i))
	}
	for i := 0; i < 2; i++ {
		q.enqueue(mk("light", i))
	}
	var order []string
	for i := 0; i < 8; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatal("pop reported stopped")
		}
		order = append(order, j.tenant)
	}
	want := []string{"heavy", "heavy", "heavy", "light", "heavy", "heavy", "heavy", "light"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("dequeue order %v, want %v", order, want)
	}
	if d := q.depth(); d != 0 {
		t.Fatalf("depth %d after draining", d)
	}
}

// TestSolveBatchBitwiseIdentical is the coalescing correctness property: at
// every batch width 1..32, a coalesced solve returns, for each member,
// bitwise exactly the vector a lone Solve of that member's rhs returns.
func TestSolveBatchBitwiseIdentical(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, CoalesceWidth: 32})
	a := sstar.GenGrid2D(11, 10, false, sstar.GenOptions{Seed: 42, Convection: 0.3})
	fr := s.submit(&Request{Op: OpFactorize, Matrix: a, Opts: sstar.DefaultOptions()})
	if fr.Err != "" {
		t.Fatal(fr.Err)
	}
	h := fr.Handle

	const maxW = 32
	rhs := testRHS(a.N, maxW)
	// Reference: each rhs solved alone through the server (a width-1 batch
	// takes the exact single-solve path).
	ref := make([][]float64, maxW)
	for q, b := range rhs {
		resp := s.submit(&Request{Op: OpSolve, Handle: h, B: b})
		if resp.Err != "" {
			t.Fatal(resp.Err)
		}
		ref[q] = resp.X
	}

	for w := 1; w <= maxW; w++ {
		batch := make([]*job, w)
		for q := 0; q < w; q++ {
			batch[q] = &job{
				req:      &Request{Op: OpSolve, Handle: h, B: rhs[q]},
				tenant:   DefaultTenant,
				enqueued: time.Now(),
				done:     make(chan *Response, 1),
			}
		}
		s.runSolveBatch(0, batch[0], batch[1:])
		for q, j := range batch {
			resp := <-j.done
			if resp.Err != "" {
				t.Fatalf("width %d member %d: %s", w, q, resp.Err)
			}
			if resp.Stats.BatchWidth != w {
				t.Fatalf("width %d member %d reported BatchWidth %d", w, q, resp.Stats.BatchWidth)
			}
			if len(resp.X) != len(ref[q]) {
				t.Fatalf("width %d member %d: len %d want %d", w, q, len(resp.X), len(ref[q]))
			}
			for i := range resp.X {
				if resp.X[i] != ref[q][i] {
					t.Fatalf("width %d member %d: x[%d] = %x, lone solve %x — coalescing changed bits",
						w, q, i, resp.X[i], ref[q][i])
				}
			}
		}
	}
	if n := s.solveBatches.Load(); n == 0 {
		t.Fatal("no batched solve recorded")
	}
}

// TestCoalescingEndToEnd drives coalescing through the real queue: solves
// piling up behind a busy worker ride one batch when the worker frees, each
// answered bitwise identically to solving alone.
func TestCoalescingEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 64, CoalesceWidth: 32})
	a := sstar.GenGrid2D(12, 12, false, sstar.GenOptions{Seed: 7, Convection: 0.2})
	fr := s.submit(&Request{Op: OpFactorize, Matrix: a, Opts: sstar.DefaultOptions()})
	if fr.Err != "" {
		t.Fatal(fr.Err)
	}
	h := fr.Handle

	const nrhs = 8
	rhs := testRHS(a.N, nrhs)
	ref := make([][]float64, nrhs)
	for q, b := range rhs {
		resp := s.submit(&Request{Op: OpSolve, Handle: h, B: b})
		if resp.Err != "" {
			t.Fatal(resp.Err)
		}
		ref[q] = resp.X
	}

	// Occupy the only worker, then pile the solves up behind it.
	busy := make(chan *Response, 1)
	go func() {
		busy <- s.submit(&Request{Op: OpFactorize, Matrix: slowMatrix(3), Opts: sstar.DefaultOptions()})
	}()
	waitFactorizing(t, s, 2)
	resps := make([]*Response, nrhs)
	var wg sync.WaitGroup
	for q := 0; q < nrhs; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			resps[q] = s.submit(&Request{Op: OpSolve, Handle: h, B: rhs[q]})
		}(q)
	}
	for i := 0; s.sched.depth() < nrhs; i++ {
		if i > 5000 {
			t.Fatal("solves never queued behind the busy worker")
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	if r := <-busy; r.Err != "" {
		t.Fatalf("blocker factorize failed: %s", r.Err)
	}

	for q, resp := range resps {
		if resp.Err != "" {
			t.Fatalf("solve %d: %s", q, resp.Err)
		}
		for i := range resp.X {
			if resp.X[i] != ref[q][i] {
				t.Fatalf("solve %d: x[%d] = %x, lone solve %x", q, i, resp.X[i], ref[q][i])
			}
		}
	}
	st := s.Stats()
	if st.SolveBatches == 0 || st.CoalescedSolves < 2 {
		t.Fatalf("queued solves never coalesced: batches=%d coalesced=%d", st.SolveBatches, st.CoalescedSolves)
	}
}

// TestTenantFairShareUnderStorm: one tenant flooding the queue with
// factorizes cannot starve another tenant's solve — weighted round-robin
// serves the quiet tenant on its next turn, ahead of the storm's backlog.
func TestTenantFairShareUnderStorm(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 64, CoalesceWidth: 1})
	a := sstar.GenGrid2D(10, 10, false, sstar.GenOptions{Seed: 9, Convection: 0.2})
	fr := s.submit(&Request{Op: OpFactorize, Matrix: a, Opts: sstar.DefaultOptions(), Tenant: "quiet"})
	if fr.Err != "" {
		t.Fatal(fr.Err)
	}
	b := testRHS(a.N, 1)[0]
	ref := s.submit(&Request{Op: OpSolve, Handle: fr.Handle, B: b, Tenant: "quiet"})
	if ref.Err != "" {
		t.Fatal(ref.Err)
	}

	// The storm: occupy the worker, then queue 10 more factorizes of
	// distinct structures (no cache hits, real work each).
	const stormN = 10
	var wg sync.WaitGroup
	stormResps := make([]*Response, stormN)
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.submit(&Request{Op: OpFactorize, Matrix: slowMatrix(11), Opts: sstar.DefaultOptions(), Tenant: "storm"})
	}()
	waitFactorizing(t, s, 2)
	for i := 0; i < stormN; i++ {
		wg.Add(1)
		go func(i int, m *sstar.Matrix) {
			defer wg.Done()
			stormResps[i] = s.submit(&Request{Op: OpFactorize, Matrix: m, Opts: sstar.DefaultOptions(), Tenant: "storm"})
		}(i, sstar.GenGrid2D(16, 17+i, false, sstar.GenOptions{Seed: int64(i), Convection: 0.1}))
	}
	for i := 0; s.sched.depth() < stormN; i++ {
		if i > 5000 {
			t.Fatal("storm never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// The quiet tenant's solve arrives with 10 storm factorizes already
	// queued ahead of it in submission order. Fair share: it runs on the
	// quiet queue's next round-robin turn, behind at most one more storm
	// job — not behind the whole backlog. The assertion uses the
	// server-measured queue waits (QueueNs, clocked at dequeue), which are
	// immune to goroutine wake-up latency: served fairly, the solve waits
	// less than almost every storm job; served FIFO, it would wait longer
	// than all of them.
	resp := s.submit(&Request{Op: OpSolve, Handle: fr.Handle, B: b, Tenant: "quiet"})
	if resp.Err != "" {
		t.Fatalf("quiet solve under storm: %s", resp.Err)
	}
	for i := range resp.X {
		if resp.X[i] != ref.X[i] {
			t.Fatalf("quiet solve changed under storm: x[%d] = %x want %x", i, resp.X[i], ref.X[i])
		}
	}
	wg.Wait()
	longerWaits := 0
	for i, r := range stormResps {
		if r == nil || r.Err != "" {
			t.Fatalf("storm factorize %d failed: %+v", i, r)
		}
		if r.Stats.QueueNs > resp.Stats.QueueNs {
			longerWaits++
		}
	}
	if longerWaits < stormN*2/3 {
		t.Fatalf("quiet solve queued %v, longer than %d of %d storm jobs — starved past its fair share",
			time.Duration(resp.Stats.QueueNs), stormN-longerWaits, stormN)
	}

	st := s.Stats()
	qs, ss := st.Tenants["quiet"], st.Tenants["storm"]
	if qs.Requests < 3 || ss.Requests != stormN+1 {
		t.Fatalf("tenant request counters: quiet=%d storm=%d (want >=3, %d)", qs.Requests, ss.Requests, stormN+1)
	}
	if qs.Weight != 1 || ss.Weight != 1 {
		t.Fatalf("tenant weights: quiet=%d storm=%d", qs.Weight, ss.Weight)
	}
}

// legacyRequest mirrors the wire Request as a peer that predates the Tenant
// field encoded it. Gob matches struct fields by name, so a stream encoded
// from this type must decode into today's Request with Tenant left zero.
type legacyRequest struct {
	Op     Op
	Handle uint64
	B      []float64
}

// TestOldPeerRequestDefaultTenant: a fieldless (pre-Tenant) request decodes
// cleanly and is admitted under the default tenant.
func TestOldPeerRequestDefaultTenant(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	a := sstar.GenGrid2D(8, 8, false, sstar.GenOptions{Seed: 2, Convection: 0.2})
	fr := s.submit(&Request{Op: OpFactorize, Matrix: a, Opts: sstar.DefaultOptions()})
	if fr.Err != "" {
		t.Fatal(fr.Err)
	}
	b := testRHS(a.N, 1)[0]

	for _, legacy := range []*legacyRequest{
		{Op: OpPing},
		{Op: OpSolve, Handle: fr.Handle, B: b},
	} {
		var buf bytes.Buffer
		if err := wire.WriteGob(&buf, FrameRequest, legacy); err != nil {
			t.Fatal(err)
		}
		req := new(Request)
		if err := wire.ReadGob(&buf, FrameRequest, 1<<20, req); err != nil {
			t.Fatalf("old-peer request failed to decode: %v", err)
		}
		if req.Tenant != "" {
			t.Fatalf("fieldless request decoded Tenant %q", req.Tenant)
		}
		if got := tenantOf(req); got != DefaultTenant {
			t.Fatalf("tenantOf(fieldless) = %q, want %q", got, DefaultTenant)
		}
		if resp := s.submit(req); resp.Err != "" {
			t.Fatalf("old-peer %s refused: %s", req.Op, resp.Err)
		}
	}
	if n := s.Stats().Tenants[DefaultTenant].Requests; n < 2 {
		t.Fatalf("default-tenant requests %d, want >= 2", n)
	}
}
