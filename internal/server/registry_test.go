package server

import (
	"errors"
	"testing"
	"time"

	"sstar"
)

// testHandle returns a real (small) factorization wrapped as a registry
// handle. The registry only consults bytes() and identity, so one
// factorization can back many handles.
func testHandle(t *testing.T) *handle {
	t.Helper()
	a := sstar.GenGrid2D(4, 4, false, sstar.GenOptions{Seed: 1})
	f, err := sstar.Factorize(a, sstar.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return &handle{f: f, n: a.N, rowPtr: a.RowPtr, colInd: a.ColInd}
}

// TestRegistryLRUOrder: under budget pressure the victim is the
// least-recently-*used* handle, not the least-recently-added one.
func TestRegistryLRUOrder(t *testing.T) {
	h := testHandle(t)
	// Budget fits exactly two of these handles.
	r := newRegistry(2*h.bytes(), 0)
	id1 := r.add(h)
	id2 := r.add(h)
	// Touch id1: id2 becomes the LRU entry.
	if _, err := r.get(id1); err != nil {
		t.Fatal(err)
	}
	id3 := r.add(h)
	if _, err := r.get(id2); !errors.Is(err, sstar.ErrHandleEvicted) {
		t.Fatalf("LRU victim id2: err %v, want ErrHandleEvicted", err)
	}
	for _, id := range []uint64{id1, id3} {
		if _, err := r.get(id); err != nil {
			t.Fatalf("handle %d gone: %v", id, err)
		}
	}
	if n, bytes, ev := r.stats(); n != 2 || bytes != 2*h.bytes() || ev != 1 {
		t.Fatalf("stats after eviction: n=%d bytes=%d ev=%d", n, bytes, ev)
	}
}

// TestRegistryOversizedHandleSurvivesItsOwnInsert: one handle larger than the
// whole budget still registers (evicting everything else), because refusing
// it would make big systems unsolvable rather than merely lonely.
func TestRegistryOversizedHandleSurvivesItsOwnInsert(t *testing.T) {
	h := testHandle(t)
	r := newRegistry(h.bytes()/2, 0)
	id := r.add(h)
	if _, err := r.get(id); err != nil {
		t.Fatalf("over-budget handle evicted by its own insertion: %v", err)
	}
	id2 := r.add(h)
	if _, err := r.get(id); !errors.Is(err, sstar.ErrHandleEvicted) {
		t.Fatalf("previous handle survived a second over-budget insert: %v", err)
	}
	if _, err := r.get(id2); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryTTLSweepInjectedClock: sweep evicts exactly the handles idle
// past the TTL under a controlled clock.
func TestRegistryTTLSweepInjectedClock(t *testing.T) {
	h := testHandle(t)
	r := newRegistry(0, 100*time.Millisecond)
	now := time.Unix(1000, 0)
	r.clock = func() time.Time { return now }

	idle := r.add(h)
	kept := r.add(h)
	now = now.Add(70 * time.Millisecond)
	if _, err := r.get(kept); err != nil {
		t.Fatal(err)
	}
	now = now.Add(60 * time.Millisecond) // idle is 130ms old, kept 60ms
	if n := r.sweep(); n != 1 {
		t.Fatalf("sweep evicted %d handles, want 1", n)
	}
	if _, err := r.get(idle); !errors.Is(err, sstar.ErrHandleEvicted) {
		t.Fatalf("idle handle: err %v, want ErrHandleEvicted", err)
	}
	if _, err := r.get(kept); err != nil {
		t.Fatalf("recently used handle swept: %v", err)
	}
}

// TestRegistryFreeLeavesNoTombstone: free means "gone by design" — later use
// is the caller's bug and reads as an unknown handle, not an eviction.
func TestRegistryFreeLeavesNoTombstone(t *testing.T) {
	h := testHandle(t)
	r := newRegistry(0, 0)
	id := r.add(h)
	if err := r.free(id); err != nil {
		t.Fatal(err)
	}
	if err := r.free(id); !errors.Is(err, sstar.ErrBadHandle) {
		t.Fatalf("double free: err %v, want ErrBadHandle", err)
	}
	if _, err := r.get(id); !errors.Is(err, sstar.ErrBadHandle) {
		t.Fatalf("freed handle: err %v, want ErrBadHandle", err)
	}
}

// TestRegistryTombstonesBounded: after far more evictions than the tombstone
// bound, old evictions degrade to ErrBadHandle and the tombstone memory stays
// capped — precision is traded, correctness is not.
func TestRegistryTombstonesBounded(t *testing.T) {
	h := testHandle(t)
	r := newRegistry(1, 0) // every insert evicts the previous handle
	first := r.add(h)
	for i := 0; i < maxTombstones+50; i++ {
		r.add(h)
	}
	if len(r.tombQ) > maxTombstones || len(r.tombs) > maxTombstones {
		t.Fatalf("tombstones unbounded: q=%d set=%d", len(r.tombQ), len(r.tombs))
	}
	if _, err := r.get(first); !errors.Is(err, sstar.ErrBadHandle) {
		t.Fatalf("expired tombstone: err %v, want degraded ErrBadHandle", err)
	}
	// A recent eviction is still classified precisely.
	recent := r.add(h)
	r.add(h)
	if _, err := r.get(recent); !errors.Is(err, sstar.ErrHandleEvicted) {
		t.Fatalf("recent eviction: err %v, want ErrHandleEvicted", err)
	}
}
