package server

import (
	"strings"
	"testing"

	"sstar"
)

// newTestServer returns a server without listeners; requests go straight
// through submit (the worker pool still runs, so queue stats are real).
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRequestLifecycle(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	a := sstar.GenGrid2D(8, 8, false, sstar.GenOptions{Seed: 5, Convection: 0.2})

	resp := s.submit(&Request{Op: OpFactorize, Matrix: a, Opts: sstar.DefaultOptions()})
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	if resp.Handle == 0 || resp.N != a.N || resp.Nnz != a.Nnz() {
		t.Fatalf("factorize response %+v", resp)
	}
	if resp.Stats.CacheHit {
		t.Fatal("first factorize reported a cache hit")
	}
	h := resp.Handle

	// Second factorize of the same structure hits the cache.
	resp2 := s.submit(&Request{Op: OpFactorize, Matrix: a, Opts: sstar.DefaultOptions()})
	if resp2.Err != "" || !resp2.Stats.CacheHit {
		t.Fatalf("second factorize: err=%q hit=%v", resp2.Err, resp2.Stats.CacheHit)
	}

	b := make([]float64, a.N)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	solve := s.submit(&Request{Op: OpSolve, Handle: h, B: b})
	if solve.Err != "" {
		t.Fatal(solve.Err)
	}
	if r := sstar.Residual(a, solve.X, b); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}

	// Values-only refactorize, then solve reflects the new values.
	vals := append([]float64(nil), a.Val...)
	for i := range vals {
		vals[i] *= 2
	}
	refac := s.submit(&Request{Op: OpRefactorize, Handle: h, Values: vals})
	if refac.Err != "" {
		t.Fatal(refac.Err)
	}
	a2 := a.Clone()
	copy(a2.Val, vals)
	solve2 := s.submit(&Request{Op: OpSolve, Handle: h, B: b})
	if solve2.Err != "" {
		t.Fatal(solve2.Err)
	}
	if r := sstar.Residual(a2, solve2.X, b); r > 1e-9 {
		t.Fatalf("post-refactorize residual %g", r)
	}

	if free := s.submit(&Request{Op: OpFree, Handle: h}); free.Err != "" {
		t.Fatal(free.Err)
	}
	if again := s.submit(&Request{Op: OpFree, Handle: h}); again.Err == "" {
		t.Fatal("double free succeeded")
	}

	st := s.Stats()
	if st.CacheHits < 1 || st.CacheMisses < 1 || st.Requests < 6 {
		t.Fatalf("stats %+v", st)
	}
	if st.HitRate() <= 0 || st.HitRate() > 1 {
		t.Fatalf("hit rate %g", st.HitRate())
	}
}

// TestBadInputNeverKillsServer feeds every malformed request shape through
// the pool and requires an in-band error each time — then proves the server
// still serves good requests.
func TestBadInputNeverKillsServer(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	a := sstar.GenGrid2D(6, 6, false, sstar.GenOptions{Seed: 2})
	good := s.submit(&Request{Op: OpFactorize, Matrix: a, Opts: sstar.DefaultOptions()})
	if good.Err != "" {
		t.Fatal(good.Err)
	}
	h := good.Handle

	// A structurally singular matrix: row 1 is empty.
	sing := &sstar.Matrix{N: 2, M: 2, RowPtr: []int{0, 2, 2}, ColInd: []int{0, 1}, Val: []float64{1, 1}}

	bad := []struct {
		name string
		req  *Request
		want string
	}{
		{"factorize nil matrix", &Request{Op: OpFactorize}, "needs a matrix"},
		{"factorize singular", &Request{Op: OpFactorize, Matrix: sing, Opts: sstar.DefaultOptions()}, "singular"},
		{"solve unknown handle", &Request{Op: OpSolve, Handle: 999, B: make([]float64, 36)}, "unknown handle"},
		{"solve nil rhs", &Request{Op: OpSolve, Handle: h}, "rhs length"},
		{"solve short rhs", &Request{Op: OpSolve, Handle: h, B: make([]float64, 3)}, "rhs length"},
		{"refactorize unknown handle", &Request{Op: OpRefactorize, Handle: 999, Values: nil}, "unknown handle"},
		{"refactorize short values", &Request{Op: OpRefactorize, Handle: h, Values: make([]float64, 3)}, "values length"},
		{"refactorize wrong pattern", &Request{Op: OpRefactorize, Handle: h, Matrix: sstar.GenGrid2D(6, 6, true, sstar.GenOptions{Seed: 2})}, "pattern mismatch"},
		{"unknown op", &Request{Op: Op(99)}, "unknown op"},
	}
	for _, tc := range bad {
		resp := s.submit(tc.req)
		if resp.Err == "" {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(resp.Err, tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, resp.Err, tc.want)
		}
	}

	// Still alive and correct.
	if resp := s.submit(&Request{Op: OpPing}); resp.Err != "" {
		t.Fatal("ping after bad inputs failed")
	}
	b := make([]float64, a.N)
	b[0] = 1
	solve := s.submit(&Request{Op: OpSolve, Handle: h, B: b})
	if solve.Err != "" {
		t.Fatal(solve.Err)
	}
	if r := sstar.Residual(a, solve.X, b); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
	st := s.Stats()
	if st.Errors != int64(len(bad)) {
		t.Fatalf("error counter %d, want %d", st.Errors, len(bad))
	}
}

func TestProcessRecoversPanic(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	// A matrix that lies about its own shape panics deep inside the
	// pipeline (RowPtr too short for N); the worker must turn that into an
	// error response.
	evil := &sstar.Matrix{N: 8, M: 8, RowPtr: []int{0, 1}, ColInd: []int{0}, Val: []float64{1}}
	resp := s.submit(&Request{Op: OpFactorize, Matrix: evil, Opts: sstar.DefaultOptions()})
	if resp.Err == "" {
		t.Fatal("malformed matrix accepted")
	}
	if resp := s.submit(&Request{Op: OpPing}); resp.Err != "" {
		t.Fatal("server dead after panic recovery")
	}
}
