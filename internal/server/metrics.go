package server

import (
	"net/http"
	"net/http/pprof"
	"time"

	"sstar"
	"sstar/internal/obs"
	"sstar/internal/xblas"
)

// metrics bundles the server's observability surface: a Prometheus-style
// registry over the server counters, per-request phase histograms, and a
// ring-buffer tracer holding the most recent request spans for
// /debug/trace. Created once per server; the scrape-time funcs read the
// live server state so the counters are never double-maintained.
type metrics struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	panics    *obs.Counter
	queueWait *obs.Histogram
	analyze   *obs.Histogram
	factor    *obs.Histogram
	solve     *obs.Histogram
	request   *obs.Histogram

	// Multi-tenant QoS surface: per-tenant request/shed counters and queue
	// gauges (bounded families — tenants past the bound share one spillover
	// series), plus the solve-coalescing width distribution.
	tenantRequests  *obs.CounterVec
	tenantSheds     *obs.CounterVec
	solveBatchWidth *obs.Histogram

	// Analyze-phase breakdown, observed once per freshly computed analysis
	// (cache hits contribute nothing — they ran no phase).
	phOrdering *obs.Histogram
	phSymbolic *obs.Histogram
	phDetect   *obs.Histogram
	phChoose   *obs.Histogram
	phBuild    *obs.Histogram
	phPatch    *obs.Histogram
}

func newMetrics(s *Server) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg, tracer: obs.NewTracer(0)}

	reg.CounterFunc("sstar_server_requests_total",
		"Requests processed, all operations.",
		func() float64 { return float64(s.requests.Load()) })
	reg.CounterFunc("sstar_server_errors_total",
		"Requests answered with an error.",
		func() float64 { return float64(s.errors.Load()) })
	m.panics = reg.Counter("sstar_server_panics_total",
		"Request handlers recovered from a panic (each one failed a single request, never the server).")
	reg.CounterFunc("sstar_server_factorize_total",
		"Factorize requests.",
		func() float64 { return float64(s.factorizes.Load()) })
	reg.CounterFunc("sstar_server_refactorize_total",
		"Refactorize requests.",
		func() float64 { return float64(s.refactorizes.Load()) })
	reg.CounterFunc("sstar_server_solve_total",
		"Solve requests.",
		func() float64 { return float64(s.solves.Load()) })
	reg.CounterFunc("sstar_server_cache_hits_total",
		"Analysis cache hits (factorize requests whose structure was already analyzed).",
		func() float64 { hit, _, _ := s.cache.counters(); return float64(hit) })
	reg.CounterFunc("sstar_server_cache_misses_total",
		"Analysis cache misses.",
		func() float64 { _, miss, _ := s.cache.counters(); return float64(miss) })
	reg.CounterFunc("sstar_server_cache_coalesced_total",
		"Factorize requests merged into a concurrent identical analysis by the singleflight.",
		func() float64 { return float64(s.cache.coalescedCount()) })
	reg.GaugeFunc("sstar_server_cache_entries",
		"Live cached analyses.",
		func() float64 { _, _, n := s.cache.counters(); return float64(n) })
	reg.GaugeFunc("sstar_server_handles",
		"Live factorization handles.",
		func() float64 { n, _, _ := s.reg.stats(); return float64(n) })
	reg.GaugeFunc("sstar_server_replica_handles",
		"Live handles installed by peer-shard replication pushes.",
		func() float64 { return float64(s.reg.replicaCount()) })
	reg.CounterFunc("sstar_server_replicas_installed_total",
		"Replication pushes accepted from peer shards.",
		func() float64 { return float64(s.replicasInstalled.Load()) })
	reg.GaugeFunc("sstar_server_handle_bytes",
		"Estimated bytes held by live handles (bounded by the memory budget).",
		func() float64 { _, b, _ := s.reg.stats(); return float64(b) })
	reg.CounterFunc("sstar_server_handle_evictions_total",
		"Handles evicted by the memory budget (LRU) or idle TTL.",
		func() float64 { _, _, ev := s.reg.stats(); return float64(ev) })
	reg.CounterFunc("sstar_server_sheds_total",
		"Requests refused by admission control: queue wait exceeded the deadline, or shutdown.",
		func() float64 { return float64(s.sheds.Load()) })
	reg.GaugeFunc("sstar_server_queue_depth",
		"Requests waiting for a worker.",
		func() float64 { return float64(s.sched.depth()) })
	reg.GaugeFunc("sstar_server_workers",
		"Request-level worker pool size.",
		func() float64 { return float64(s.cfg.Workers) })
	reg.GaugeFunc("sstar_server_factor_workers",
		"Factor-phase goroutines per request (the core-split knob).",
		func() float64 { return float64(s.cfg.FactorWorkers) })
	reg.GaugeFunc("sstar_blocking_max_block",
		"Widest supernode panel of the most recent factorize's analysis.",
		func() float64 { return float64(s.lastMaxBlock.Load()) })
	reg.GaugeFunc("sstar_blocking_amalgamate",
		"Amalgamation factor of the most recent factorize's analysis.",
		func() float64 { return float64(s.lastAmalgamate.Load()) })
	reg.GaugeFunc("sstar_blocking_adaptive",
		"1 when the most recent factorize used structure-adaptive blocking.",
		func() float64 { return float64(s.lastAdaptive.Load()) })
	reg.GaugeFunc("sstar_xblas_tile_mc",
		"Cache-block rows (mc) of the packed GEMM engine.",
		func() float64 { mc, _ := xblas.TileShape(); return float64(mc) })
	reg.GaugeFunc("sstar_xblas_tile_nc",
		"Cache-block columns (nc) of the packed GEMM engine.",
		func() float64 { _, nc := xblas.TileShape(); return float64(nc) })

	m.queueWait = reg.Histogram("sstar_server_queue_wait_seconds",
		"Time requests waited for a worker.")
	m.analyze = reg.Histogram("sstar_server_analyze_seconds",
		"Analyze-phase time of factorize requests (near zero on cache hits).")
	m.factor = reg.Histogram("sstar_server_factor_seconds",
		"Numeric factorization time of factorize/refactorize requests.")
	m.solve = reg.Histogram("sstar_server_solve_seconds",
		"Triangular-solve time of solve requests.")
	m.request = reg.Histogram("sstar_server_request_seconds",
		"End-to-end request processing time, queue wait excluded.")

	reg.CounterFunc("sstar_server_analysis_patches_total",
		"Cache misses served by incrementally patching a near-miss cached analysis.",
		func() float64 { return float64(s.patches.Load()) })
	reg.CounterFunc("sstar_server_analysis_patch_fallbacks_total",
		"Near-miss patch candidates that fell back to a full analyze (diff over budget, lost diagonal).",
		func() float64 { return float64(s.patchFallbacks.Load()) })
	m.phOrdering = reg.Histogram("sstar_analyze_ordering_seconds",
		"Ordering stage (max transversal + minimum degree) of freshly computed analyses.")
	m.phSymbolic = reg.Histogram("sstar_analyze_symbolic_seconds",
		"Static symbolic fill computation of freshly computed analyses.")
	m.phDetect = reg.Histogram("sstar_analyze_detect_seconds",
		"Strict supernode detection of freshly computed analyses.")
	m.phChoose = reg.Histogram("sstar_analyze_choose_seconds",
		"Blocking choice (amalgamation sweep + split planning) of freshly computed analyses.")
	m.phBuild = reg.Histogram("sstar_analyze_build_seconds",
		"Per-block partition structure build of freshly computed analyses.")
	m.phPatch = reg.Histogram("sstar_analyze_patch_seconds",
		"Incremental symbolic re-analysis time of patched analyses.")

	m.tenantRequests = reg.CounterVec("sstar_server_tenant_requests_total",
		"Requests submitted per tenant (including sheds).", "tenant").
		Bound(maxTenantQueues, spillTenant)
	m.tenantSheds = reg.CounterVec("sstar_server_tenant_sheds_total",
		"Requests refused by admission control, per tenant.", "tenant").
		Bound(maxTenantQueues, spillTenant)
	reg.CounterFunc("sstar_server_coalesced_solves_total",
		"Solve requests answered from a batched solve of width >= 2 (bitwise identical to solving alone).",
		func() float64 { return float64(s.coalescedSolves.Load()) })
	reg.CounterFunc("sstar_server_solve_batches_total",
		"Batched solve calls (width >= 2) the coalescer issued.",
		func() float64 { return float64(s.solveBatches.Load()) })
	m.solveBatchWidth = reg.Histogram("sstar_server_solve_batch_width",
		"Width distribution of coalesced solve batches.", 2, 4, 8, 16, 32, 64)
	return m
}

// observeAnalyze records the phase breakdown of one freshly computed (or
// patched) analysis. Zero phases are skipped: a patched analysis inherited
// its ordering and symbolic stages, a full one ran no patch.
func (m *metrics) observeAnalyze(ph sstar.AnalyzePhases) {
	obsPh := func(h *obs.Histogram, d time.Duration) {
		if d > 0 {
			h.ObserveNs(int64(d))
		}
	}
	obsPh(m.phOrdering, ph.Ordering)
	obsPh(m.phSymbolic, ph.Symbolic)
	obsPh(m.phDetect, ph.Detect)
	obsPh(m.phChoose, ph.Choose)
	obsPh(m.phBuild, ph.Build)
	obsPh(m.phPatch, ph.Patch)
}

// observe records the phase split of one processed request and its span on
// the request timeline (one lane per pool worker).
func (m *metrics) observe(op Op, worker int, queueNs, processNs int64, st RequestStats) {
	m.queueWait.ObserveNs(queueNs)
	m.request.ObserveNs(processNs)
	if st.AnalyzeNs > 0 {
		m.analyze.ObserveNs(st.AnalyzeNs)
	}
	if st.FactorNs > 0 {
		m.factor.ObserveNs(st.FactorNs)
	}
	if st.SolveNs > 0 {
		m.solve.ObserveNs(st.SolveNs)
	}
	end := m.tracer.Since()
	start := end - processNs
	if start < 0 {
		start = 0
	}
	m.tracer.Span(op.String(), "server", worker, start, processNs)
}

// Registry returns the server's metrics registry so outer layers (the
// cluster shard) can register their own gauges next to the server's on the
// same /metrics exposition.
func (s *Server) Registry() *obs.Registry { return s.met.reg }

// AdminHandler returns the HTTP admin surface of the server, mounted by
// sstar-serve's -admin listener:
//
//	/metrics      Prometheus text exposition of the server counters
//	/debug/trace  recent request spans as Chrome trace_event JSON
//	/debug/pprof  the standard Go profiling endpoints
//
// The handler holds no state of its own — it reads the live server — so it
// can be mounted on any mux, wrapped with auth, or served from several
// listeners at once.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.met.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.met.tracer.WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
