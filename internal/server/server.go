package server

import (
	"fmt"
	"net"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"sstar"
	"sstar/internal/wire"
)

// Config tunes a Server. The zero value picks sensible defaults.
type Config struct {
	// Workers bounds the number of requests factorizing/solving
	// concurrently (default 4). Requests beyond it queue; the queue wait
	// is reported per request.
	Workers int
	// FactorWorkers is the goroutine count each request's numeric factor
	// phase runs with — the knob that splits the machine's cores between
	// request-level parallelism (Workers) and factor-level parallelism.
	// Workers × FactorWorkers should roughly equal the core count: many
	// small independent systems want high Workers and FactorWorkers=1;
	// a few big systems want the opposite. Default: NumCPU()/Workers,
	// floored at 1 (all cores to request-level concurrency when the pool
	// is at least as wide as the machine). The server applies this to
	// every factorize/refactorize — clients cannot grab more cores than
	// the split grants; the factors are bit-identical at any setting.
	FactorWorkers int
	// QueueDepth is the buffered request backlog beyond the workers
	// (default 8*Workers). A full queue applies backpressure to clients.
	QueueDepth int
	// CacheEntries caps the analysis LRU cache (default 64 structures).
	CacheEntries int
	// MaxFrame caps an incoming frame payload (default
	// wire.DefaultMaxPayload); oversized or corrupt-length frames fail the
	// connection, never the server.
	MaxFrame int
	// Logf, when set, receives one line per connection event and per
	// failed request.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.FactorWorkers < 1 {
		c.FactorWorkers = max(1, runtime.NumCPU()/c.Workers)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 8 * c.Workers
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 64
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = wire.DefaultMaxPayload
	}
	return c
}

// handle is a live factorization owned by the registry. The RWMutex
// serializes refactorizations (which swap the numeric factors) against
// concurrent solves on the same handle.
type handle struct {
	mu     sync.RWMutex
	f      *sstar.Factorization
	n      int
	rowPtr []int // pattern of the originally submitted matrix, kept for
	colInd []int // the values-only refactorize fast path
}

// job is one queued request.
type job struct {
	req      *Request
	enqueued time.Time
	done     chan *Response
}

// Server is the sparse-solve service. Create with New, attach listeners
// with Serve (one goroutine per listener), stop with Close.
type Server struct {
	cfg   Config
	cache *analysisCache
	jobs  chan *job
	quit  chan struct{}
	wg    sync.WaitGroup
	met   *metrics

	mu         sync.Mutex
	handles    map[uint64]*handle
	nextHandle uint64
	listeners  map[net.Listener]struct{}
	conns      map[net.Conn]struct{}
	closed     bool

	requests     atomic.Int64
	errors       atomic.Int64
	factorizes   atomic.Int64
	refactorizes atomic.Int64
	solves       atomic.Int64
}

// New returns a running server (workers started, no listeners yet).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		cache:     newAnalysisCache(cfg.CacheEntries),
		jobs:      make(chan *job, cfg.QueueDepth),
		quit:      make(chan struct{}),
		handles:   make(map[uint64]*handle),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	s.met = newMetrics(s)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on l until the listener fails or the server is
// closed. It blocks; run it in a goroutine per listener (the server speaks
// the same protocol on every listener, TCP and Unix alike).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return fmt.Errorf("server: closed")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
				return err
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// Close stops the server: listeners and connections are closed, workers are
// stopped, queued requests are dropped.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.quit)
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// handleConn speaks the protocol on one connection: Hello exchange, then a
// request/response loop. Protocol errors (bad magic, corrupt frames) drop
// the connection; request-level errors are answered in-band and the
// connection lives on — the server never dies on bad input.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var hello Hello
	if err := wire.ReadGob(conn, FrameHello, 1<<16, &hello); err != nil {
		s.logf("server: %s: hello: %v", conn.RemoteAddr(), err)
		return
	}
	if hello.Magic != ProtoMagic || hello.Version != ProtoVersion {
		s.logf("server: %s: bad hello %+v", conn.RemoteAddr(), hello)
		wire.WriteGob(conn, FrameResponse, &Response{Err: fmt.Sprintf("server: unsupported protocol %q v%d", hello.Magic, hello.Version)})
		return
	}
	if err := wire.WriteGob(conn, FrameHello, Hello{Magic: ProtoMagic, Version: ProtoVersion}); err != nil {
		return
	}
	for {
		req := new(Request)
		if err := wire.ReadGob(conn, FrameRequest, s.cfg.MaxFrame, req); err != nil {
			// io.EOF here is the clean "client hung up" path.
			return
		}
		resp := s.submit(req)
		if err := wire.WriteGob(conn, FrameResponse, resp); err != nil {
			return
		}
	}
}

// submit queues the request on the worker pool and waits for its response.
func (s *Server) submit(req *Request) *Response {
	j := &job{req: req, enqueued: time.Now(), done: make(chan *Response, 1)}
	select {
	case s.jobs <- j:
	case <-s.quit:
		return &Response{Err: "server: shutting down"}
	}
	select {
	case resp := <-j.done:
		return resp
	case <-s.quit:
		return &Response{Err: "server: shutting down"}
	}
}

func (s *Server) worker(id int) {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.jobs:
			queueNs := time.Since(j.enqueued).Nanoseconds()
			t0 := time.Now()
			resp := s.process(j.req)
			processNs := time.Since(t0).Nanoseconds()
			resp.Stats.QueueNs = queueNs
			resp.Stats.Workers = s.cfg.Workers
			s.requests.Add(1)
			if resp.Err != "" {
				s.errors.Add(1)
				s.logf("server: %s failed: %s", j.req.Op, resp.Err)
			}
			s.met.observe(j.req.Op, id, queueNs, processNs, resp.Stats)
			j.done <- resp
		case <-s.quit:
			return
		}
	}
}

// process executes one request. A panic anywhere below (a malformed matrix
// slipping past validation, a bug in a kernel) is converted into an error
// response: one request may fail, the service keeps serving.
func (s *Server) process(req *Request) (resp *Response) {
	defer func() {
		if p := recover(); p != nil {
			resp = &Response{Err: fmt.Sprintf("server: internal panic: %v", p)}
			s.met.panics.Inc()
			s.logf("server: panic in %s: %v\n%s", req.Op, p, debug.Stack())
		}
	}()
	switch req.Op {
	case OpPing:
		return &Response{}
	case OpFactorize:
		return s.doFactorize(req)
	case OpRefactorize:
		return s.doRefactorize(req)
	case OpSolve:
		return s.doSolve(req)
	case OpFree:
		return s.doFree(req)
	case OpStats:
		return &Response{Server: s.Stats()}
	}
	return &Response{Err: fmt.Sprintf("server: unknown op %d", req.Op)}
}

func (s *Server) doFactorize(req *Request) *Response {
	s.factorizes.Add(1)
	a := req.Matrix
	if a == nil {
		return &Response{Err: "server: factorize needs a matrix"}
	}
	var stats RequestStats
	// The core split is server policy: the factor phase of every request
	// runs with the configured FactorWorkers, whatever the client asked
	// for. Normalizing before hashing keeps the cache's exact-options
	// check consistent across clients (the key itself already ignores
	// HostWorkers — parallelism never changes the analysis or factors).
	opts := req.Opts
	opts.HostWorkers = s.cfg.FactorWorkers
	// Observers are a local-process concern: they cannot travel the wire,
	// and the cache's exact-options check must not see one.
	opts.Observer = nil
	stats.FactorWorkers = s.cfg.FactorWorkers
	key := sstar.StructureKey(a, opts)
	t0 := time.Now()
	an := s.cache.get(key, a, opts)
	if an != nil {
		stats.CacheHit = true
	} else {
		var err error
		an, err = sstar.Analyze(a, opts)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		s.cache.add(key, an)
	}
	stats.AnalyzeNs = time.Since(t0).Nanoseconds()
	t1 := time.Now()
	f, err := an.FactorizeWith(a)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	stats.FactorNs = time.Since(t1).Nanoseconds()
	h := &handle{
		f:      f,
		n:      a.N,
		rowPtr: append([]int(nil), a.RowPtr...),
		colInd: append([]int(nil), a.ColInd...),
	}
	s.mu.Lock()
	s.nextHandle++
	id := s.nextHandle
	s.handles[id] = h
	s.mu.Unlock()
	return &Response{Handle: id, N: a.N, Nnz: len(h.colInd), Stats: stats}
}

func (s *Server) lookup(id uint64) (*handle, *Response) {
	s.mu.Lock()
	h := s.handles[id]
	s.mu.Unlock()
	if h == nil {
		return nil, &Response{Err: fmt.Sprintf("server: unknown handle %d", id)}
	}
	return h, nil
}

func (s *Server) doRefactorize(req *Request) *Response {
	s.refactorizes.Add(1)
	h, errResp := s.lookup(req.Handle)
	if errResp != nil {
		return errResp
	}
	m := req.Matrix
	if m == nil {
		// Values-only fast path: rebuild the matrix on the stored pattern.
		if len(req.Values) != len(h.colInd) {
			return &Response{Err: fmt.Sprintf("server: refactorize values length %d, pattern has %d nonzeros", len(req.Values), len(h.colInd))}
		}
		m = &sstar.Matrix{N: h.n, M: h.n, RowPtr: h.rowPtr, ColInd: h.colInd, Val: req.Values}
	}
	var stats RequestStats
	stats.FactorWorkers = s.cfg.FactorWorkers
	t0 := time.Now()
	h.mu.Lock()
	err := h.f.Refactorize(m)
	h.mu.Unlock()
	stats.FactorNs = time.Since(t0).Nanoseconds()
	if err != nil {
		return &Response{Err: err.Error()}
	}
	return &Response{Handle: req.Handle, N: h.n, Nnz: len(h.colInd), Stats: stats}
}

func (s *Server) doSolve(req *Request) *Response {
	s.solves.Add(1)
	h, errResp := s.lookup(req.Handle)
	if errResp != nil {
		return errResp
	}
	var stats RequestStats
	t0 := time.Now()
	h.mu.RLock()
	x, err := h.f.Solve(req.B)
	h.mu.RUnlock()
	stats.SolveNs = time.Since(t0).Nanoseconds()
	if err != nil {
		return &Response{Err: err.Error()}
	}
	return &Response{Handle: req.Handle, X: x, Stats: stats}
}

func (s *Server) doFree(req *Request) *Response {
	s.mu.Lock()
	_, ok := s.handles[req.Handle]
	delete(s.handles, req.Handle)
	s.mu.Unlock()
	if !ok {
		return &Response{Err: fmt.Sprintf("server: unknown handle %d", req.Handle)}
	}
	return &Response{}
}

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	hit, miss, entries := s.cache.counters()
	s.mu.Lock()
	nHandles := len(s.handles)
	s.mu.Unlock()
	return ServerStats{
		Requests:      s.requests.Load(),
		Errors:        s.errors.Load(),
		Factorizes:    s.factorizes.Load(),
		Refactorizes:  s.refactorizes.Load(),
		Solves:        s.solves.Load(),
		CacheHits:     hit,
		CacheMisses:   miss,
		CacheEntries:  entries,
		Handles:       nHandles,
		Workers:       s.cfg.Workers,
		FactorWorkers: s.cfg.FactorWorkers,
		QueueDepth:    len(s.jobs),
	}
}
