package server

import (
	"bytes"
	"fmt"
	"net"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"sstar"
	"sstar/internal/wire"
)

// Config tunes a Server. The zero value picks sensible defaults.
type Config struct {
	// Workers bounds the number of requests factorizing/solving
	// concurrently (default 4). Requests beyond it queue; the queue wait
	// is reported per request.
	Workers int
	// FactorWorkers is the goroutine count each request's numeric factor
	// phase runs with — the knob that splits the machine's cores between
	// request-level parallelism (Workers) and factor-level parallelism.
	// Workers × FactorWorkers should roughly equal the core count: many
	// small independent systems want high Workers and FactorWorkers=1;
	// a few big systems want the opposite. Default: NumCPU()/Workers,
	// floored at 1 (all cores to request-level concurrency when the pool
	// is at least as wide as the machine). The server applies this to
	// every factorize/refactorize — clients cannot grab more cores than
	// the split grants; the factors are bit-identical at any setting.
	FactorWorkers int
	// QueueDepth is the buffered request backlog beyond the workers
	// (default 8*Workers). A full queue applies backpressure to clients.
	QueueDepth int
	// CacheEntries caps the analysis LRU cache (default 64 structures).
	CacheEntries int
	// PatchMaxDiff tunes the incremental re-analysis path: on an analysis
	// cache miss the server looks for a cached analysis of a structurally
	// similar pattern (same order and options, pattern-sketch similarity at
	// least patchSimilarityMin) and derives the new analysis by
	// Analysis.Patch instead of analyzing from scratch, provided the
	// structural diff stays under this fraction of the new pattern's
	// nonzeros. 0 selects the library default (sstar.DefaultPatchMaxDiff);
	// a negative value disables the second-chance lookup entirely. Patched
	// analyses are byte-identical to a pinned-ordering recompute and
	// replicate exactly like cold ones.
	PatchMaxDiff float64
	// MaxFrame caps an incoming frame payload (default
	// wire.DefaultMaxPayload); oversized or corrupt-length frames fail the
	// connection, never the server.
	MaxFrame int
	// MemBudget caps the estimated bytes held by live factorization
	// handles (0 = unlimited). When a new handle pushes the total over
	// budget, least-recently-used handles are evicted; operations on an
	// evicted handle fail with ErrHandleEvicted (CodeEvicted).
	MemBudget int64
	// HandleTTL evicts handles idle (no solve/refactorize/lookup) for this
	// long (0 = never). A background sweeper enforces it, so an abandoned
	// handle — a client that died between factorize and free — cannot pin
	// factors forever.
	HandleTTL time.Duration
	// DrainTimeout bounds how long Close waits for in-flight requests to
	// finish before tearing connections down anyway (default 10s).
	DrainTimeout time.Duration
	// TenantWeights sets per-tenant fair-share weights for the weighted
	// round-robin scheduler: a tenant with weight w is served up to w
	// requests per scheduling round when every tenant is backlogged.
	// Unlisted tenants (including DefaultTenant) weigh 1. Nil gives every
	// tenant an equal share.
	TenantWeights map[string]int
	// CoalesceWidth is the maximum number of concurrent plain solves
	// against one handle merged into a single batched triangular solve
	// (bitwise identical to solving each alone). 0 selects the default
	// (32, the panel width the solve kernels are sized for); 1 disables
	// coalescing.
	CoalesceWidth int
	// CoalesceWindow is how long a dequeued solve waits for ride-along
	// solves on the same handle before executing, when opportunistic
	// collection found fewer than CoalesceWidth. 0 (the default) collects
	// only what is already queued — no added latency; a small positive
	// window trades that much solve latency for wider batches.
	CoalesceWindow time.Duration
	// Logf, when set, receives one line per connection event and per
	// failed request.
	Logf func(format string, args ...any)
	// Cluster, when set, makes this server one shard of a multi-node
	// cluster (see internal/cluster): requests for structures and handles
	// placed elsewhere are refused with typed redirect codes, and
	// successful factorizes/refactorizes are handed to the hooks for
	// asynchronous replication. Nil keeps the standalone behavior exactly.
	Cluster ClusterHooks
}

// ClusterHooks is the seam between the single-node server and the cluster
// layer (internal/cluster). The server calls these inline on the request
// path, so implementations must be fast and non-blocking — replication work
// is handed off to a queue, never performed in the hook.
type ClusterHooks interface {
	// Route inspects a request before execution. A non-nil response
	// short-circuits the request — the shard answering CodeRedirect or
	// CodeNotOwner for work that placement assigns elsewhere. Nil executes
	// locally.
	Route(req *Request) *Response
	// Placement reports the advertised address of this shard and of the
	// replica successor for key, stamped on factorize responses so clients
	// learn topology from first contact.
	Placement(key uint64) (self, replica string)
	// Analyzed is called after a cold analyze completes, with the
	// immutable analysis, for asynchronous replication of the cache entry.
	Analyzed(key uint64, an *sstar.Analysis)
	// Stored is called after a successful factorize or refactorize with
	// the serialized factors, for asynchronous replication to the
	// successor shard.
	Stored(ev StoredEvent)
	// Freed is called after a successful free so the replica can be
	// released too.
	Freed(handle uint64, key uint64)
	// AugmentStats fills the cluster section of a stats snapshot.
	AugmentStats(st *ServerStats)
}

// StoredEvent is one replicable write: the handle's identity and its factors
// serialized in the sstar Save format (bit-exact: a replica loaded from Blob
// solves bit-identically to the original). RowPtr/ColInd are the retained
// pattern backing the values-only refactorize fast path after a promotion;
// they are shared read-only slices.
type StoredEvent struct {
	Handle uint64
	Key    uint64
	N      int
	RowPtr []int
	ColInd []int
	Blob   []byte
	// ValEpoch is the values-epoch of the serialized factors (1 on
	// factorize, incremented per refactorize); it rides on the replication
	// push so a delayed push cannot roll a newer replica back.
	ValEpoch uint64
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.FactorWorkers < 1 {
		c.FactorWorkers = max(1, runtime.NumCPU()/c.Workers)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 8 * c.Workers
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 64
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = wire.DefaultMaxPayload
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.CoalesceWidth == 0 {
		c.CoalesceWidth = 32
	}
	if c.CoalesceWidth < 1 {
		c.CoalesceWidth = 1
	}
	return c
}

// job is one queued request. A zero deadline means the request carried no
// time budget and is processed whenever a worker frees up.
type job struct {
	req      *Request
	tenant   string // resolved tenant (DefaultTenant when the request carried none)
	enqueued time.Time
	deadline time.Time
	done     chan *Response
}

// Server is the sparse-solve service. Create with New, attach listeners
// with Serve (one goroutine per listener), stop with Close.
//
// Shutdown is graceful: Close first refuses new requests (they are answered
// in-band with CodeOverloaded, which retrying clients treat as "try again —
// elsewhere or later"), then waits up to DrainTimeout for every request
// already admitted to finish and have its response written back, and only
// then tears the connections down.
type Server struct {
	cfg   Config
	cache *analysisCache
	reg   *registry
	sched *qosched      // per-tenant weighted fair queues (replaced the single jobs channel)
	slots chan struct{} // admission capacity: one token per queued request, QueueDepth total
	stop  chan struct{} // closed first: gates submissions, accept loops, sweeper
	quit  chan struct{} // closed after drain: workers exit

	subWg    sync.WaitGroup // submissions past the admission gate
	workerWg sync.WaitGroup // worker pool + sweeper
	connWg   sync.WaitGroup // connection handlers
	met      *metrics

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool

	requests          atomic.Int64
	errors            atomic.Int64
	sheds             atomic.Int64
	factorizes        atomic.Int64
	refactorizes      atomic.Int64
	solves            atomic.Int64
	patches           atomic.Int64
	patchFallbacks    atomic.Int64
	replicasInstalled atomic.Int64
	staleReplicas     atomic.Int64 // replication pushes refused as older than the installed values-epoch
	coalescedSolves   atomic.Int64 // solves that rode in a width >= 2 batch
	solveBatches      atomic.Int64 // batched solve calls of width >= 2

	// Blocking choice of the most recent factorize (cache hit or miss),
	// exported as gauges so a blocking regression is visible on /metrics.
	lastMaxBlock   atomic.Int64
	lastAmalgamate atomic.Int64
	lastAdaptive   atomic.Int64 // 1 when the last analysis used adaptive blocking
}

// New returns a running server (workers started, no listeners yet).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		cache:     newAnalysisCache(cfg.CacheEntries),
		reg:       newRegistry(cfg.MemBudget, cfg.HandleTTL),
		sched:     newQosched(cfg.TenantWeights),
		slots:     make(chan struct{}, cfg.QueueDepth),
		stop:      make(chan struct{}),
		quit:      make(chan struct{}),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	s.met = newMetrics(s)
	for i := 0; i < cfg.Workers; i++ {
		s.workerWg.Add(1)
		go s.worker(i)
	}
	if cfg.HandleTTL > 0 {
		s.workerWg.Add(1)
		go s.sweeper()
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// sweeper enforces the handle TTL in the background, often enough that an
// idle handle outlives its TTL by at most a quarter of it.
func (s *Server) sweeper() {
	defer s.workerWg.Done()
	period := s.cfg.HandleTTL / 4
	period = min(max(period, 10*time.Millisecond), time.Second)
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if n := s.reg.sweep(); n > 0 {
				s.logf("server: evicted %d idle handles (ttl %v)", n, s.cfg.HandleTTL)
			}
		case <-s.stop:
			return
		}
	}
}

// Serve accepts connections on l until the listener fails or the server is
// closed. It blocks; run it in a goroutine per listener (the server speaks
// the same protocol on every listener, TCP and Unix alike).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return fmt.Errorf("server: closed")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return nil
			default:
				return err
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWg.Add(1)
		go s.handleConn(conn)
	}
}

// Close shuts the server down gracefully: stop accepting, refuse new
// requests in-band, drain requests already admitted (bounded by
// DrainTimeout), stop the workers, then close every connection and wait for
// the handlers. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	s.mu.Unlock()
	close(s.stop)

	// Drain: every submission past the admission gate gets its response
	// (workers are still running), bounded by DrainTimeout.
	drained := make(chan struct{})
	go func() {
		s.subWg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(s.cfg.DrainTimeout):
		s.logf("server: drain timeout (%v) — closing with requests in flight", s.cfg.DrainTimeout)
	}

	close(s.quit)
	// Wake every worker blocked on the scheduler; they drain whatever is
	// still queued (nothing new can arrive past the stop gate) and exit.
	s.sched.stop()
	s.workerWg.Wait()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.connWg.Wait()
	return nil
}

// handleConn speaks the protocol on one connection: Hello exchange, then a
// request/response loop. Protocol errors (bad magic, corrupt frames) drop
// the connection; request-level errors are answered in-band and the
// connection lives on — the server never dies on bad input.
func (s *Server) handleConn(conn net.Conn) {
	defer s.connWg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var hello Hello
	if err := wire.ReadGob(conn, FrameHello, 1<<16, &hello); err != nil {
		s.logf("server: %s: hello: %v", conn.RemoteAddr(), err)
		return
	}
	if hello.Magic != ProtoMagic || hello.Version != ProtoVersion {
		s.logf("server: %s: bad hello %+v", conn.RemoteAddr(), hello)
		wire.WriteGob(conn, FrameResponse, &Response{Err: fmt.Sprintf("server: unsupported protocol %q v%d", hello.Magic, hello.Version)})
		return
	}
	if err := wire.WriteGob(conn, FrameHello, Hello{Magic: ProtoMagic, Version: ProtoVersion}); err != nil {
		return
	}
	for {
		req := new(Request)
		if err := wire.ReadGob(conn, FrameRequest, s.cfg.MaxFrame, req); err != nil {
			// io.EOF here is the clean "client hung up" path.
			return
		}
		resp := s.submit(req)
		if err := wire.WriteGob(conn, FrameResponse, resp); err != nil {
			return
		}
	}
}

// errResponse classifies err against the root-package sentinels and carries
// both the class and the message to the client.
func errResponse(err error) *Response {
	return &Response{Err: err.Error(), Code: CodeOf(err)}
}

// shed refuses a request without executing it, counting it on the shed,
// request, error, and per-tenant counters.
func (s *Server) shed(req *Request, tenant string, queueNs int64, why string) *Response {
	s.sheds.Add(1)
	s.requests.Add(1)
	s.errors.Add(1)
	s.met.tenantSheds.With(tenant).Inc()
	s.logf("server: shed %s: %s", req.Op, why)
	resp := errResponse(fmt.Errorf("%w: %s", sstar.ErrOverloaded, why))
	resp.Stats.QueueNs = queueNs
	resp.Stats.Workers = s.cfg.Workers
	return resp
}

// tenantOf resolves a request's tenant: the wire field when present,
// DefaultTenant otherwise (old peers that predate the field land here).
func tenantOf(req *Request) string {
	if req.Tenant != "" {
		return req.Tenant
	}
	return DefaultTenant
}

// submit runs the admission gate, queues the request on its tenant's fair
// queue, and waits for the response. Admission control: capacity is a slot
// pool of QueueDepth tokens shared by every tenant — a request carrying a
// deadline budget is refused (never executed late) when no slot frees up
// before the budget runs out, and the dequeue side applies the matching
// check (see worker). Requests arriving after Close has begun are refused
// in-band with CodeOverloaded.
func (s *Server) submit(req *Request) *Response {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.shed(req, tenantOf(req), 0, "server shutting down")
	}
	s.subWg.Add(1)
	s.mu.Unlock()
	defer s.subWg.Done()

	j := &job{req: req, tenant: tenantOf(req), enqueued: time.Now(), done: make(chan *Response, 1)}
	s.met.tenantRequests.With(j.tenant).Inc()
	if req.TimeoutNs > 0 {
		j.deadline = j.enqueued.Add(time.Duration(req.TimeoutNs))
	}
	if j.deadline.IsZero() {
		select {
		case s.slots <- struct{}{}:
		case <-s.stop:
			return s.shed(req, j.tenant, 0, "server shutting down")
		}
	} else {
		t := time.NewTimer(time.Until(j.deadline))
		select {
		case s.slots <- struct{}{}:
			t.Stop()
		case <-t.C:
			return s.shed(req, j.tenant, time.Since(j.enqueued).Nanoseconds(), "queue full past the request deadline")
		case <-s.stop:
			t.Stop()
			return s.shed(req, j.tenant, 0, "server shutting down")
		}
	}
	s.sched.enqueue(j)
	// Every enqueued job is answered: workers keep running until the drain
	// in Close has seen this submission complete.
	return <-j.done
}

// worker processes jobs until the scheduler reports drained-and-stopped
// (Close guarantees no new submissions by then), so no admitted request is
// ever dropped. A dequeued plain solve first collects ride-along solves on
// the same handle and runs them as one batched, bitwise-identical solve.
func (s *Server) worker(id int) {
	defer s.workerWg.Done()
	for {
		j, ok := s.sched.pop()
		if !ok {
			return
		}
		<-s.slots // the job left the queue; its admission slot frees up
		if j.req.Op == OpSolve && s.cfg.CoalesceWidth > 1 {
			s.runSolveBatch(id, j, s.collectRiders(j))
			continue
		}
		s.run(id, j)
	}
}

// run executes one dequeued job. A job whose deadline already passed while
// it queued is shed here — the client stopped waiting, so doing the work
// would only delay requests that can still meet their deadlines.
func (s *Server) run(id int, j *job) {
	queueNs := time.Since(j.enqueued).Nanoseconds()
	if !j.deadline.IsZero() && time.Now().After(j.deadline) {
		j.done <- s.shed(j.req, j.tenant, queueNs, fmt.Sprintf("queue wait %v exceeded the request deadline", time.Duration(queueNs)))
		return
	}
	t0 := time.Now()
	resp := s.process(j.req)
	processNs := time.Since(t0).Nanoseconds()
	resp.Stats.QueueNs = queueNs
	resp.Stats.Workers = s.cfg.Workers
	s.requests.Add(1)
	if resp.Err != "" {
		s.errors.Add(1)
		s.logf("server: %s failed (%s): %s", j.req.Op, resp.Code, resp.Err)
	}
	s.met.observe(j.req.Op, id, queueNs, processNs, resp.Stats)
	j.done <- resp
}

// process executes one request. A panic anywhere below (a malformed matrix
// slipping past validation, a bug in a kernel) is converted into an error
// response: one request may fail, the service keeps serving.
func (s *Server) process(req *Request) (resp *Response) {
	defer func() {
		if p := recover(); p != nil {
			resp = errResponse(fmt.Errorf("%w: recovered panic: %v", sstar.ErrInternal, p))
			s.met.panics.Inc()
			s.logf("server: panic in %s: %v\n%s", req.Op, p, debug.Stack())
		}
	}()
	if hk := s.cfg.Cluster; hk != nil {
		if resp := hk.Route(req); resp != nil {
			return resp
		}
	}
	switch req.Op {
	case OpPing:
		return &Response{}
	case OpFactorize:
		return s.doFactorize(req)
	case OpRefactorize:
		return s.doRefactorize(req)
	case OpSolve:
		return s.doSolve(req)
	case OpSolveMany:
		return s.doSolveMany(req)
	case OpFree:
		return s.doFree(req)
	case OpStats:
		return &Response{Server: s.Stats()}
	case OpReplicate:
		return s.doReplicate(req)
	case OpReplicateAnalysis:
		return s.doReplicateAnalysis(req)
	case OpManifest:
		return &Response{Manifest: s.reg.manifest()}
	case OpMembership:
		// A cluster shard's Route hook answers this above; reaching here
		// means the process is standalone.
		return &Response{Err: "server: membership exchange requires cluster mode"}
	}
	return &Response{Err: fmt.Sprintf("server: unknown op %d", req.Op)}
}

func (s *Server) doFactorize(req *Request) *Response {
	s.factorizes.Add(1)
	a := req.Matrix
	if a == nil {
		return &Response{Err: "server: factorize needs a matrix"}
	}
	var stats RequestStats
	// The core split is server policy: the factor phase of every request
	// runs with the configured FactorWorkers, whatever the client asked
	// for. Normalizing before hashing keeps the cache's exact-options
	// check consistent across clients (the key itself already ignores
	// HostWorkers — parallelism never changes the analysis or factors).
	opts := req.Opts
	opts.HostWorkers = s.cfg.FactorWorkers
	// Observers are a local-process concern: they cannot travel the wire,
	// and the cache's exact-options check must not see one.
	opts.Observer = nil
	// The patch budget is server policy too, normalized for the same
	// reason as HostWorkers (and equally excluded from the key).
	opts.PatchMaxDiff = s.cfg.PatchMaxDiff
	// The virtual-machine routing knobs are meaningless on the service
	// path: the server always factors on the host executor. Normalized so
	// the cache's exact-options check cannot fragment on them (they are
	// excluded from the structure key for the same reason).
	opts.Procs, opts.Machine, opts.Mapping, opts.TraceParallel = 0, "", "", false
	stats.FactorWorkers = s.cfg.FactorWorkers
	key := sstar.StructureKey(a, opts)
	t0 := time.Now()
	// Singleflight on the cold analysis: a thundering herd on a new
	// structure computes the symbolic analysis once; every other herd
	// member waits for the leader's result (and counts as a cache hit —
	// it paid no analyze). Before paying a full analyze, the leader gives
	// the cache a second chance: a near-miss entry (same order and options,
	// similar pattern sketch) is patched incrementally, re-running the
	// symbolic computation only on the changed entries' propagation cone.
	patched := false
	an, hit, computed, err := s.cache.getOrCompute(key, a, opts, func() (*sstar.Analysis, error) {
		if s.cfg.PatchMaxDiff >= 0 {
			if base := s.cache.nearest(a, opts); base != nil {
				an2, info, err := base.Patch(a)
				if err != nil {
					return nil, err
				}
				if info.Patched {
					patched = true
					s.patches.Add(1)
				} else {
					// Patch already fell back to the full analyze
					// internally; an2 is that analysis.
					s.patchFallbacks.Add(1)
				}
				return an2, nil
			}
		}
		return sstar.Analyze(a, opts)
	})
	if err != nil {
		return errResponse(err)
	}
	stats.CacheHit = hit
	stats.Patched = patched
	stats.AnalyzeNs = time.Since(t0).Nanoseconds()
	if computed {
		s.met.observeAnalyze(an.Phases())
	}
	hk := s.cfg.Cluster
	if computed && hk != nil {
		hk.Analyzed(key, an)
	}
	bc := an.Blocking()
	s.lastMaxBlock.Store(int64(bc.MaxBlock))
	s.lastAmalgamate.Store(int64(bc.Amalgamate))
	if bc.Adaptive {
		s.lastAdaptive.Store(1)
	} else {
		s.lastAdaptive.Store(0)
	}
	t1 := time.Now()
	f, err := an.FactorizeWith(a)
	if err != nil {
		return errResponse(err)
	}
	stats.FactorNs = time.Since(t1).Nanoseconds()
	h := &handle{
		f:        f,
		n:        a.N,
		rowPtr:   append([]int(nil), a.RowPtr...),
		colInd:   append([]int(nil), a.ColInd...),
		key:      key,
		valEpoch: 1,
	}
	id := s.reg.add(h)
	resp := &Response{Handle: id, N: a.N, Nnz: len(h.colInd), Key: key, Stats: stats}
	if hk != nil {
		resp.Addr, resp.Replica = hk.Placement(key)
		if blob, err := serializeFactors(f); err == nil {
			hk.Stored(StoredEvent{Handle: id, Key: key, N: a.N, RowPtr: h.rowPtr, ColInd: h.colInd, Blob: blob, ValEpoch: 1})
		} else {
			s.logf("server: serialize for replication: %v", err)
		}
	}
	return resp
}

// serializeFactors renders f in the sstar Save format — the replication
// payload. Save/Load round-trips factors bit-exactly, which is what makes a
// failover solve on the replica bit-identical to one on the owner.
func serializeFactors(f *sstar.Factorization) ([]byte, error) {
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (s *Server) doRefactorize(req *Request) *Response {
	s.refactorizes.Add(1)
	h, err := s.reg.get(req.Handle)
	if err != nil {
		return errResponse(err)
	}
	m := req.Matrix
	if m == nil {
		// Values-only fast path: rebuild the matrix on the stored pattern.
		if len(req.Values) != len(h.colInd) {
			return &Response{Err: fmt.Sprintf("server: refactorize values length %d, pattern has %d nonzeros", len(req.Values), len(h.colInd))}
		}
		m = &sstar.Matrix{N: h.n, M: h.n, RowPtr: h.rowPtr, ColInd: h.colInd, Val: req.Values}
	}
	var stats RequestStats
	stats.FactorWorkers = s.cfg.FactorWorkers
	t0 := time.Now()
	hk := s.cfg.Cluster
	var blob []byte
	var blobErr error
	var valEpoch uint64
	h.mu.Lock()
	err = h.f.Refactorize(m)
	if err == nil {
		h.valEpoch++
		valEpoch = h.valEpoch
		if hk != nil {
			// Serialize under the handle lock: a concurrent refactorize must
			// not swap the factors mid-Save, or the replica would hold a
			// torn mixture of two factorizations.
			blob, blobErr = serializeFactors(h.f)
		}
	}
	h.mu.Unlock()
	stats.FactorNs = time.Since(t0).Nanoseconds()
	if err != nil {
		return errResponse(err)
	}
	if hk != nil {
		if blobErr == nil {
			hk.Stored(StoredEvent{Handle: req.Handle, Key: h.key, N: h.n, RowPtr: h.rowPtr, ColInd: h.colInd, Blob: blob, ValEpoch: valEpoch})
		} else {
			s.logf("server: serialize for replication: %v", blobErr)
		}
	}
	return &Response{Handle: req.Handle, N: h.n, Nnz: len(h.colInd), Key: h.key, Stats: stats}
}

func (s *Server) doSolve(req *Request) *Response {
	s.solves.Add(1)
	h, err := s.reg.get(req.Handle)
	if err != nil {
		return errResponse(err)
	}
	var stats RequestStats
	t0 := time.Now()
	h.mu.RLock()
	x, serr := h.f.Solve(req.B)
	h.mu.RUnlock()
	stats.SolveNs = time.Since(t0).Nanoseconds()
	if serr != nil {
		return errResponse(serr)
	}
	return &Response{Handle: req.Handle, X: x, Stats: stats}
}

// doSolveMany runs the blocked multi-RHS solve: B holds NRHS right-hand
// sides column-major, X comes back in the same layout. Columns are
// independent, which is what lets the cluster router scatter one of these
// across the shards holding replicas and gather a bit-identical result.
func (s *Server) doSolveMany(req *Request) *Response {
	s.solves.Add(1)
	h, err := s.reg.get(req.Handle)
	if err != nil {
		return errResponse(err)
	}
	if req.NRHS < 1 {
		return &Response{Err: fmt.Sprintf("server: solve-many needs nrhs >= 1, got %d", req.NRHS)}
	}
	if len(req.B) != h.n*req.NRHS {
		return &Response{Err: fmt.Sprintf("server: solve-many rhs length %d, want %d (n=%d x nrhs=%d)", len(req.B), h.n*req.NRHS, h.n, req.NRHS)}
	}
	var stats RequestStats
	t0 := time.Now()
	h.mu.RLock()
	x, serr := h.f.SolveMany(req.B, req.NRHS)
	h.mu.RUnlock()
	stats.SolveNs = time.Since(t0).Nanoseconds()
	if serr != nil {
		return errResponse(serr)
	}
	return &Response{Handle: req.Handle, X: x, Stats: stats}
}

// doReplicate installs (or refreshes) a replica pushed by a peer shard: the
// blob is loaded back into a live factorization under the id the owner
// allocated, so a failover solve addresses the same handle here. Load
// verifies every frame checksum — a blob corrupted in flight is refused, and
// the pusher retries.
func (s *Server) doReplicate(req *Request) *Response {
	valEpoch := req.ValEpoch
	if valEpoch == 0 {
		valEpoch = 1 // a pre-values-epoch peer
	}
	// Refuse (silently — the push succeeded from the sender's view, it is
	// just obsolete) a push older than what is already installed: a delayed
	// replication message must never roll newer factors back. Equal epochs
	// re-install — the push is idempotent and the bytes identical.
	if have, ok := s.reg.valEpochOf(req.Handle); ok && have > valEpoch {
		s.staleReplicas.Add(1)
		return &Response{Handle: req.Handle}
	}
	f, err := sstar.Load(bytes.NewReader(req.Blob))
	if err != nil {
		return errResponse(fmt.Errorf("server: replicate handle %d: %w", req.Handle, err))
	}
	m := req.Matrix
	if m == nil || len(m.RowPtr) != m.N+1 {
		return &Response{Err: "server: replicate needs the retained pattern"}
	}
	h := &handle{
		f:        f,
		n:        m.N,
		rowPtr:   m.RowPtr,
		colInd:   m.ColInd,
		key:      req.Key,
		replica:  true,
		valEpoch: valEpoch,
	}
	s.reg.put(req.Handle, h)
	s.replicasInstalled.Add(1)
	return &Response{Handle: req.Handle, N: m.N, Nnz: len(m.ColInd)}
}

// doReplicateAnalysis installs one analysis-cache entry pushed by a peer
// shard, so a post-failover factorize of that structure here is a cache hit.
func (s *Server) doReplicateAnalysis(req *Request) *Response {
	an, err := sstar.LoadAnalysis(bytes.NewReader(req.Blob))
	if err != nil {
		return errResponse(fmt.Errorf("server: replicate analysis: %w", err))
	}
	s.cache.add(an.Key(), an)
	return &Response{Key: an.Key()}
}

func (s *Server) doFree(req *Request) *Response {
	var key uint64
	owned := false
	if h, err := s.reg.get(req.Handle); err == nil {
		key, owned = h.key, !h.replica
	}
	if err := s.reg.free(req.Handle); err != nil {
		return errResponse(err)
	}
	// Only an owned handle's free is forwarded to the replica holder —
	// freeing a replica must not trigger a forward of its own, or the free
	// would cascade around the ring.
	if hk := s.cfg.Cluster; hk != nil && owned {
		hk.Freed(req.Handle, key)
	}
	return &Response{}
}

// HasHandle reports whether id is live in the registry (owned or replica),
// without disturbing the LRU order. The cluster layer's routing check.
func (s *Server) HasHandle(id uint64) bool { return s.reg.contains(id) }

// Manifest snapshots every live handle's placement identity — the input the
// cluster layer's anti-entropy repair sweep diffs against ring placement.
func (s *Server) Manifest() []ManifestEntry { return s.reg.manifest() }

// SetHandleRole flips a live handle between owned (replica=false) and
// replica. Returns whether the flag actually changed. The cluster layer
// promotes a replica to owner when a membership change moves its key here,
// and demotes an owned handle back when the key moves away (a rejoined
// owner reclaiming its range). Role never changes what a solve computes —
// only the ownership gauges and the free-forwarding rule.
func (s *Server) SetHandleRole(id uint64, replica bool) bool {
	return s.reg.setRole(id, replica)
}

// ExportHandle re-serializes a live handle's factors as a replicable
// StoredEvent (bit-exact: Save/Load round-trips the pivot sequence and
// values). The repair sweep uses it to push missing or stale copies; ok is
// false when the id is not live. The snapshot is taken under the handle's
// read lock, so a concurrent refactorize can never yield a torn blob.
func (s *Server) ExportHandle(id uint64) (ev StoredEvent, ok bool) {
	h, err := s.reg.get(id)
	if err != nil {
		return StoredEvent{}, false
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	blob, err := serializeFactors(h.f)
	if err != nil {
		s.logf("server: serialize for repair: %v", err)
		return StoredEvent{}, false
	}
	return StoredEvent{
		Handle:   id,
		Key:      h.key,
		N:        h.n,
		RowPtr:   h.rowPtr,
		ColInd:   h.colInd,
		Blob:     blob,
		ValEpoch: h.valEpoch,
	}, true
}

// DropHandle releases a live handle without a tombstone — the repair sweep
// removing a stray whose copies are confirmed on the responsible shards.
func (s *Server) DropHandle(id uint64) bool { return s.reg.drop(id) }

// InstallAnalysis inserts an analysis into the structure-keyed cache — the
// receiving end of analysis replication, exposed for the cluster layer and
// for warm-start tooling.
func (s *Server) InstallAnalysis(an *sstar.Analysis) { s.cache.add(an.Key(), an) }

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	hit, miss, entries := s.cache.counters()
	nHandles, handleBytes, evictions := s.reg.stats()
	st := ServerStats{
		Requests:        s.requests.Load(),
		Errors:          s.errors.Load(),
		Factorizes:      s.factorizes.Load(),
		Refactorizes:    s.refactorizes.Load(),
		Solves:          s.solves.Load(),
		CacheHits:       hit,
		CacheMisses:     miss,
		CacheEntries:    entries,
		Coalesced:       s.cache.coalescedCount(),
		Patches:         s.patches.Load(),
		PatchFallbacks:  s.patchFallbacks.Load(),
		Handles:         nHandles,
		ReplicaHandles:  s.reg.replicaCount(),
		Workers:         s.cfg.Workers,
		FactorWorkers:   s.cfg.FactorWorkers,
		QueueDepth:      s.sched.depth(),
		Sheds:           s.sheds.Load(),
		Evictions:       evictions,
		HandleBytes:     handleBytes,
		CoalescedSolves: s.coalescedSolves.Load(),
		SolveBatches:    s.solveBatches.Load(),
		StaleReplicas:   s.staleReplicas.Load(),
		Tenants:         s.tenantStats(),
	}
	if hk := s.cfg.Cluster; hk != nil {
		hk.AugmentStats(&st)
	}
	return st
}

// tenantStats assembles the per-tenant counter breakdown from the metric
// vecs (the single source of truth) and the scheduler's live backlog.
func (s *Server) tenantStats() map[string]TenantStats {
	reqs := s.met.tenantRequests.Values()
	sheds := s.met.tenantSheds.Values()
	depths := s.sched.depths()
	out := make(map[string]TenantStats, len(reqs))
	for name, n := range reqs {
		out[name] = TenantStats{
			Requests: n,
			Sheds:    sheds[name],
			Queued:   depths[name],
			Weight:   s.sched.weightOf(name),
		}
	}
	return out
}
