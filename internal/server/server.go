package server

import (
	"fmt"
	"net"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"sstar"
	"sstar/internal/wire"
)

// Config tunes a Server. The zero value picks sensible defaults.
type Config struct {
	// Workers bounds the number of requests factorizing/solving
	// concurrently (default 4). Requests beyond it queue; the queue wait
	// is reported per request.
	Workers int
	// FactorWorkers is the goroutine count each request's numeric factor
	// phase runs with — the knob that splits the machine's cores between
	// request-level parallelism (Workers) and factor-level parallelism.
	// Workers × FactorWorkers should roughly equal the core count: many
	// small independent systems want high Workers and FactorWorkers=1;
	// a few big systems want the opposite. Default: NumCPU()/Workers,
	// floored at 1 (all cores to request-level concurrency when the pool
	// is at least as wide as the machine). The server applies this to
	// every factorize/refactorize — clients cannot grab more cores than
	// the split grants; the factors are bit-identical at any setting.
	FactorWorkers int
	// QueueDepth is the buffered request backlog beyond the workers
	// (default 8*Workers). A full queue applies backpressure to clients.
	QueueDepth int
	// CacheEntries caps the analysis LRU cache (default 64 structures).
	CacheEntries int
	// MaxFrame caps an incoming frame payload (default
	// wire.DefaultMaxPayload); oversized or corrupt-length frames fail the
	// connection, never the server.
	MaxFrame int
	// MemBudget caps the estimated bytes held by live factorization
	// handles (0 = unlimited). When a new handle pushes the total over
	// budget, least-recently-used handles are evicted; operations on an
	// evicted handle fail with ErrHandleEvicted (CodeEvicted).
	MemBudget int64
	// HandleTTL evicts handles idle (no solve/refactorize/lookup) for this
	// long (0 = never). A background sweeper enforces it, so an abandoned
	// handle — a client that died between factorize and free — cannot pin
	// factors forever.
	HandleTTL time.Duration
	// DrainTimeout bounds how long Close waits for in-flight requests to
	// finish before tearing connections down anyway (default 10s).
	DrainTimeout time.Duration
	// Logf, when set, receives one line per connection event and per
	// failed request.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.FactorWorkers < 1 {
		c.FactorWorkers = max(1, runtime.NumCPU()/c.Workers)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 8 * c.Workers
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 64
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = wire.DefaultMaxPayload
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c
}

// job is one queued request. A zero deadline means the request carried no
// time budget and is processed whenever a worker frees up.
type job struct {
	req      *Request
	enqueued time.Time
	deadline time.Time
	done     chan *Response
}

// Server is the sparse-solve service. Create with New, attach listeners
// with Serve (one goroutine per listener), stop with Close.
//
// Shutdown is graceful: Close first refuses new requests (they are answered
// in-band with CodeOverloaded, which retrying clients treat as "try again —
// elsewhere or later"), then waits up to DrainTimeout for every request
// already admitted to finish and have its response written back, and only
// then tears the connections down.
type Server struct {
	cfg   Config
	cache *analysisCache
	reg   *registry
	jobs  chan *job
	stop  chan struct{} // closed first: gates submissions, accept loops, sweeper
	quit  chan struct{} // closed after drain: workers exit

	subWg    sync.WaitGroup // submissions past the admission gate
	workerWg sync.WaitGroup // worker pool + sweeper
	connWg   sync.WaitGroup // connection handlers
	met      *metrics

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool

	requests     atomic.Int64
	errors       atomic.Int64
	sheds        atomic.Int64
	factorizes   atomic.Int64
	refactorizes atomic.Int64
	solves       atomic.Int64

	// Blocking choice of the most recent factorize (cache hit or miss),
	// exported as gauges so a blocking regression is visible on /metrics.
	lastMaxBlock   atomic.Int64
	lastAmalgamate atomic.Int64
	lastAdaptive   atomic.Int64 // 1 when the last analysis used adaptive blocking
}

// New returns a running server (workers started, no listeners yet).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		cache:     newAnalysisCache(cfg.CacheEntries),
		reg:       newRegistry(cfg.MemBudget, cfg.HandleTTL),
		jobs:      make(chan *job, cfg.QueueDepth),
		stop:      make(chan struct{}),
		quit:      make(chan struct{}),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	s.met = newMetrics(s)
	for i := 0; i < cfg.Workers; i++ {
		s.workerWg.Add(1)
		go s.worker(i)
	}
	if cfg.HandleTTL > 0 {
		s.workerWg.Add(1)
		go s.sweeper()
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// sweeper enforces the handle TTL in the background, often enough that an
// idle handle outlives its TTL by at most a quarter of it.
func (s *Server) sweeper() {
	defer s.workerWg.Done()
	period := s.cfg.HandleTTL / 4
	period = min(max(period, 10*time.Millisecond), time.Second)
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if n := s.reg.sweep(); n > 0 {
				s.logf("server: evicted %d idle handles (ttl %v)", n, s.cfg.HandleTTL)
			}
		case <-s.stop:
			return
		}
	}
}

// Serve accepts connections on l until the listener fails or the server is
// closed. It blocks; run it in a goroutine per listener (the server speaks
// the same protocol on every listener, TCP and Unix alike).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return fmt.Errorf("server: closed")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return nil
			default:
				return err
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWg.Add(1)
		go s.handleConn(conn)
	}
}

// Close shuts the server down gracefully: stop accepting, refuse new
// requests in-band, drain requests already admitted (bounded by
// DrainTimeout), stop the workers, then close every connection and wait for
// the handlers. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	s.mu.Unlock()
	close(s.stop)

	// Drain: every submission past the admission gate gets its response
	// (workers are still running), bounded by DrainTimeout.
	drained := make(chan struct{})
	go func() {
		s.subWg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(s.cfg.DrainTimeout):
		s.logf("server: drain timeout (%v) — closing with requests in flight", s.cfg.DrainTimeout)
	}

	close(s.quit)
	s.workerWg.Wait()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.connWg.Wait()
	return nil
}

// handleConn speaks the protocol on one connection: Hello exchange, then a
// request/response loop. Protocol errors (bad magic, corrupt frames) drop
// the connection; request-level errors are answered in-band and the
// connection lives on — the server never dies on bad input.
func (s *Server) handleConn(conn net.Conn) {
	defer s.connWg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var hello Hello
	if err := wire.ReadGob(conn, FrameHello, 1<<16, &hello); err != nil {
		s.logf("server: %s: hello: %v", conn.RemoteAddr(), err)
		return
	}
	if hello.Magic != ProtoMagic || hello.Version != ProtoVersion {
		s.logf("server: %s: bad hello %+v", conn.RemoteAddr(), hello)
		wire.WriteGob(conn, FrameResponse, &Response{Err: fmt.Sprintf("server: unsupported protocol %q v%d", hello.Magic, hello.Version)})
		return
	}
	if err := wire.WriteGob(conn, FrameHello, Hello{Magic: ProtoMagic, Version: ProtoVersion}); err != nil {
		return
	}
	for {
		req := new(Request)
		if err := wire.ReadGob(conn, FrameRequest, s.cfg.MaxFrame, req); err != nil {
			// io.EOF here is the clean "client hung up" path.
			return
		}
		resp := s.submit(req)
		if err := wire.WriteGob(conn, FrameResponse, resp); err != nil {
			return
		}
	}
}

// errResponse classifies err against the root-package sentinels and carries
// both the class and the message to the client.
func errResponse(err error) *Response {
	return &Response{Err: err.Error(), Code: CodeOf(err)}
}

// shed refuses a request without executing it, counting it on the shed,
// request, and error counters.
func (s *Server) shed(req *Request, queueNs int64, why string) *Response {
	s.sheds.Add(1)
	s.requests.Add(1)
	s.errors.Add(1)
	s.logf("server: shed %s: %s", req.Op, why)
	resp := errResponse(fmt.Errorf("%w: %s", sstar.ErrOverloaded, why))
	resp.Stats.QueueNs = queueNs
	resp.Stats.Workers = s.cfg.Workers
	return resp
}

// submit runs the admission gate, queues the request on the worker pool, and
// waits for its response. Admission control: a request carrying a deadline
// budget is refused — never executed late — when the queue cannot even
// accept it before the budget runs out; the dequeue side applies the
// matching check (see worker). Requests arriving after Close has begun are
// refused in-band with CodeOverloaded.
func (s *Server) submit(req *Request) *Response {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.shed(req, 0, "server shutting down")
	}
	s.subWg.Add(1)
	s.mu.Unlock()
	defer s.subWg.Done()

	j := &job{req: req, enqueued: time.Now(), done: make(chan *Response, 1)}
	if req.TimeoutNs > 0 {
		j.deadline = j.enqueued.Add(time.Duration(req.TimeoutNs))
	}
	if j.deadline.IsZero() {
		select {
		case s.jobs <- j:
		case <-s.stop:
			return s.shed(req, 0, "server shutting down")
		}
	} else {
		t := time.NewTimer(time.Until(j.deadline))
		select {
		case s.jobs <- j:
			t.Stop()
		case <-t.C:
			return s.shed(req, time.Since(j.enqueued).Nanoseconds(), "queue full past the request deadline")
		case <-s.stop:
			t.Stop()
			return s.shed(req, 0, "server shutting down")
		}
	}
	// Every enqueued job is answered: workers keep running until the drain
	// in Close has seen this submission complete.
	return <-j.done
}

// worker processes jobs until quit; after quit it drains whatever is still
// queued (Close guarantees no new submissions by then) so no admitted
// request is ever dropped.
func (s *Server) worker(id int) {
	defer s.workerWg.Done()
	for {
		select {
		case j := <-s.jobs:
			s.run(id, j)
		case <-s.quit:
			for {
				select {
				case j := <-s.jobs:
					s.run(id, j)
				default:
					return
				}
			}
		}
	}
}

// run executes one dequeued job. A job whose deadline already passed while
// it queued is shed here — the client stopped waiting, so doing the work
// would only delay requests that can still meet their deadlines.
func (s *Server) run(id int, j *job) {
	queueNs := time.Since(j.enqueued).Nanoseconds()
	if !j.deadline.IsZero() && time.Now().After(j.deadline) {
		j.done <- s.shed(j.req, queueNs, fmt.Sprintf("queue wait %v exceeded the request deadline", time.Duration(queueNs)))
		return
	}
	t0 := time.Now()
	resp := s.process(j.req)
	processNs := time.Since(t0).Nanoseconds()
	resp.Stats.QueueNs = queueNs
	resp.Stats.Workers = s.cfg.Workers
	s.requests.Add(1)
	if resp.Err != "" {
		s.errors.Add(1)
		s.logf("server: %s failed (%s): %s", j.req.Op, resp.Code, resp.Err)
	}
	s.met.observe(j.req.Op, id, queueNs, processNs, resp.Stats)
	j.done <- resp
}

// process executes one request. A panic anywhere below (a malformed matrix
// slipping past validation, a bug in a kernel) is converted into an error
// response: one request may fail, the service keeps serving.
func (s *Server) process(req *Request) (resp *Response) {
	defer func() {
		if p := recover(); p != nil {
			resp = errResponse(fmt.Errorf("%w: recovered panic: %v", sstar.ErrInternal, p))
			s.met.panics.Inc()
			s.logf("server: panic in %s: %v\n%s", req.Op, p, debug.Stack())
		}
	}()
	switch req.Op {
	case OpPing:
		return &Response{}
	case OpFactorize:
		return s.doFactorize(req)
	case OpRefactorize:
		return s.doRefactorize(req)
	case OpSolve:
		return s.doSolve(req)
	case OpFree:
		return s.doFree(req)
	case OpStats:
		return &Response{Server: s.Stats()}
	}
	return &Response{Err: fmt.Sprintf("server: unknown op %d", req.Op)}
}

func (s *Server) doFactorize(req *Request) *Response {
	s.factorizes.Add(1)
	a := req.Matrix
	if a == nil {
		return &Response{Err: "server: factorize needs a matrix"}
	}
	var stats RequestStats
	// The core split is server policy: the factor phase of every request
	// runs with the configured FactorWorkers, whatever the client asked
	// for. Normalizing before hashing keeps the cache's exact-options
	// check consistent across clients (the key itself already ignores
	// HostWorkers — parallelism never changes the analysis or factors).
	opts := req.Opts
	opts.HostWorkers = s.cfg.FactorWorkers
	// Observers are a local-process concern: they cannot travel the wire,
	// and the cache's exact-options check must not see one.
	opts.Observer = nil
	stats.FactorWorkers = s.cfg.FactorWorkers
	key := sstar.StructureKey(a, opts)
	t0 := time.Now()
	an := s.cache.get(key, a, opts)
	if an != nil {
		stats.CacheHit = true
	} else {
		var err error
		an, err = sstar.Analyze(a, opts)
		if err != nil {
			return errResponse(err)
		}
		s.cache.add(key, an)
	}
	stats.AnalyzeNs = time.Since(t0).Nanoseconds()
	bc := an.Blocking()
	s.lastMaxBlock.Store(int64(bc.MaxBlock))
	s.lastAmalgamate.Store(int64(bc.Amalgamate))
	if bc.Adaptive {
		s.lastAdaptive.Store(1)
	} else {
		s.lastAdaptive.Store(0)
	}
	t1 := time.Now()
	f, err := an.FactorizeWith(a)
	if err != nil {
		return errResponse(err)
	}
	stats.FactorNs = time.Since(t1).Nanoseconds()
	h := &handle{
		f:      f,
		n:      a.N,
		rowPtr: append([]int(nil), a.RowPtr...),
		colInd: append([]int(nil), a.ColInd...),
	}
	id := s.reg.add(h)
	return &Response{Handle: id, N: a.N, Nnz: len(h.colInd), Stats: stats}
}

func (s *Server) doRefactorize(req *Request) *Response {
	s.refactorizes.Add(1)
	h, err := s.reg.get(req.Handle)
	if err != nil {
		return errResponse(err)
	}
	m := req.Matrix
	if m == nil {
		// Values-only fast path: rebuild the matrix on the stored pattern.
		if len(req.Values) != len(h.colInd) {
			return &Response{Err: fmt.Sprintf("server: refactorize values length %d, pattern has %d nonzeros", len(req.Values), len(h.colInd))}
		}
		m = &sstar.Matrix{N: h.n, M: h.n, RowPtr: h.rowPtr, ColInd: h.colInd, Val: req.Values}
	}
	var stats RequestStats
	stats.FactorWorkers = s.cfg.FactorWorkers
	t0 := time.Now()
	h.mu.Lock()
	err = h.f.Refactorize(m)
	h.mu.Unlock()
	stats.FactorNs = time.Since(t0).Nanoseconds()
	if err != nil {
		return errResponse(err)
	}
	return &Response{Handle: req.Handle, N: h.n, Nnz: len(h.colInd), Stats: stats}
}

func (s *Server) doSolve(req *Request) *Response {
	s.solves.Add(1)
	h, err := s.reg.get(req.Handle)
	if err != nil {
		return errResponse(err)
	}
	var stats RequestStats
	t0 := time.Now()
	h.mu.RLock()
	x, serr := h.f.Solve(req.B)
	h.mu.RUnlock()
	stats.SolveNs = time.Since(t0).Nanoseconds()
	if serr != nil {
		return errResponse(serr)
	}
	return &Response{Handle: req.Handle, X: x, Stats: stats}
}

func (s *Server) doFree(req *Request) *Response {
	if err := s.reg.free(req.Handle); err != nil {
		return errResponse(err)
	}
	return &Response{}
}

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	hit, miss, entries := s.cache.counters()
	nHandles, handleBytes, evictions := s.reg.stats()
	return ServerStats{
		Requests:      s.requests.Load(),
		Errors:        s.errors.Load(),
		Factorizes:    s.factorizes.Load(),
		Refactorizes:  s.refactorizes.Load(),
		Solves:        s.solves.Load(),
		CacheHits:     hit,
		CacheMisses:   miss,
		CacheEntries:  entries,
		Handles:       nHandles,
		Workers:       s.cfg.Workers,
		FactorWorkers: s.cfg.FactorWorkers,
		QueueDepth:    len(s.jobs),
		Sheds:         s.sheds.Load(),
		Evictions:     evictions,
		HandleBytes:   handleBytes,
	}
}
