package server

// Unit tests for the request-level pieces the cluster builds on: the
// singleflight analysis cache, the SolveMany op, and the replication ops —
// all driven through process, the same path a connection takes.

import (
	"bytes"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sstar"
)

// TestAnalyzeSingleflight: N concurrent factorizes of one never-seen
// structure perform exactly one symbolic analysis — one miss, everyone else
// either coalesces onto the in-flight computation or hits the freshly
// inserted entry. Without the singleflight a cold popular structure costs
// N analyses.
func TestAnalyzeSingleflight(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	a := sstar.GenGrid2D(12, 12, true, sstar.GenOptions{Seed: 71})

	const n = 16
	var wg sync.WaitGroup
	resps := make([]*Response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i] = s.process(&Request{Op: OpFactorize, Matrix: a, Opts: sstar.DefaultOptions()})
		}(i)
	}
	wg.Wait()

	key := sstar.StructureKey(a, sstar.DefaultOptions())
	for i, r := range resps {
		if r.Err != "" {
			t.Fatalf("factorize %d: %s", i, r.Err)
		}
		if r.Key != key {
			t.Fatalf("factorize %d: key %#x, want %#x", i, r.Key, key)
		}
	}
	st := s.Stats()
	if st.CacheMisses != 1 {
		t.Errorf("cache misses = %d, want exactly 1 analysis for %d concurrent factorizes", st.CacheMisses, n)
	}
	if st.CacheHits+st.Coalesced != n-1 {
		t.Errorf("hits(%d) + coalesced(%d) = %d, want %d", st.CacheHits, st.Coalesced, st.CacheHits+st.Coalesced, n-1)
	}
}

// TestCacheSingleflightCoalesces pins the coalescing itself, which the
// server-level test cannot assert deterministically (goroutine start latency
// can serialize the herd): the leader blocks inside compute while four
// waiters join the flight, and exactly one compute ever runs.
func TestCacheSingleflightCoalesces(t *testing.T) {
	c := newAnalysisCache(8)
	a := sstar.GenGrid2D(6, 6, false, sstar.GenOptions{Seed: 75})
	opts := sstar.DefaultOptions()
	opts.Observer = nil
	key := sstar.StructureKey(a, opts)

	entered := make(chan struct{})
	release := make(chan struct{})
	var computes atomic.Int32
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the leader: first in, blocks mid-compute
		defer wg.Done()
		an, hit, computed, err := c.getOrCompute(key, a, opts, func() (*sstar.Analysis, error) {
			close(entered)
			<-release
			computes.Add(1)
			return sstar.Analyze(a, opts)
		})
		if err != nil || an == nil || hit || !computed {
			t.Errorf("leader: an=%v hit=%v computed=%v err=%v", an != nil, hit, computed, err)
		}
	}()
	<-entered
	const waiters = 4
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			an, hit, computed, err := c.getOrCompute(key, a, opts, func() (*sstar.Analysis, error) {
				computes.Add(1)
				return sstar.Analyze(a, opts)
			})
			if err != nil || an == nil || !hit || computed {
				t.Errorf("waiter: an=%v hit=%v computed=%v err=%v", an != nil, hit, computed, err)
			}
		}()
	}
	// Waiters count themselves into coalesced before blocking on the flight.
	deadline := time.Now().Add(10 * time.Second)
	for c.coalescedCount() < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters joined the flight", c.coalescedCount(), waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("compute ran %d times, want 1", got)
	}
	if got := c.coalescedCount(); got != waiters {
		t.Errorf("coalesced = %d, want %d", got, waiters)
	}
}

// TestSolveManyOp: the blocked multi-RHS op answers bit-identically to a
// local SolveMany and validates its inputs in-band.
func TestSolveManyOp(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	a := sstar.GenGrid2D(9, 10, false, sstar.GenOptions{Seed: 72, Convection: 0.4})
	f, err := sstar.Factorize(a, sstar.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fr := s.process(&Request{Op: OpFactorize, Matrix: a, Opts: sstar.DefaultOptions()})
	if fr.Err != "" {
		t.Fatal(fr.Err)
	}

	const nrhs = 5
	b := make([]float64, a.N*nrhs)
	for k := range b {
		b[k] = math.Sin(float64(k)*0.9 + 3)
	}
	want, err := f.SolveMany(b, nrhs)
	if err != nil {
		t.Fatal(err)
	}
	r := s.process(&Request{Op: OpSolveMany, Handle: fr.Handle, B: b, NRHS: nrhs})
	if r.Err != "" {
		t.Fatal(r.Err)
	}
	if len(r.X) != len(want) {
		t.Fatalf("X length %d, want %d", len(r.X), len(want))
	}
	for i := range want {
		if math.Float64bits(r.X[i]) != math.Float64bits(want[i]) {
			t.Fatalf("X[%d] differs bitwise from local SolveMany", i)
		}
	}

	for _, bad := range []*Request{
		{Op: OpSolveMany, Handle: fr.Handle, B: b, NRHS: 0},
		{Op: OpSolveMany, Handle: fr.Handle, B: b[:len(b)-1], NRHS: nrhs},
		{Op: OpSolveMany, Handle: fr.Handle + 999, B: b, NRHS: nrhs},
	} {
		if r := s.process(bad); r.Err == "" {
			t.Errorf("invalid SolveMany (nrhs=%d, len=%d, handle=%d) accepted", bad.NRHS, len(bad.B), bad.Handle)
		}
	}
}

// TestReplicateInstallsUnderSameHandle: an OpReplicate push installs the
// factors under the pushed handle id, solves bit-identically, and supports
// the values-only refactorize fast path — the full failover contract of a
// promoted replica.
func TestReplicateInstallsUnderSameHandle(t *testing.T) {
	owner := New(Config{Workers: 2})
	defer owner.Close()
	replica := New(Config{Workers: 2})
	defer replica.Close()
	a := sstar.GenGrid2D(8, 9, true, sstar.GenOptions{Seed: 73})
	f, err := sstar.Factorize(a, sstar.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	for k := range b {
		b[k] = math.Cos(float64(k) + 2)
	}
	xref, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}

	fr := owner.process(&Request{Op: OpFactorize, Matrix: a, Opts: sstar.DefaultOptions()})
	if fr.Err != "" {
		t.Fatal(fr.Err)
	}
	// Serialize the owner's factors the way the Stored hook does.
	var events []StoredEvent
	owner2 := New(Config{Workers: 2, Cluster: captureHooks{stored: func(ev StoredEvent) { events = append(events, ev) }}})
	defer owner2.Close()
	fr2 := owner2.process(&Request{Op: OpFactorize, Matrix: a, Opts: sstar.DefaultOptions()})
	if fr2.Err != "" {
		t.Fatal(fr2.Err)
	}
	if len(events) != 1 {
		t.Fatalf("Stored hook fired %d times, want 1", len(events))
	}
	ev := events[0]

	rr := replica.process(&Request{
		Op:     OpReplicate,
		Handle: ev.Handle,
		Key:    ev.Key,
		Matrix: &sstar.Matrix{N: ev.N, M: ev.N, RowPtr: ev.RowPtr, ColInd: ev.ColInd},
		Blob:   ev.Blob,
	})
	if rr.Err != "" {
		t.Fatalf("replicate: %s", rr.Err)
	}
	if !replica.HasHandle(ev.Handle) {
		t.Fatal("replica does not hold the pushed handle id")
	}
	if got := replica.Stats().ReplicaHandles; got != 1 {
		t.Errorf("ReplicaHandles = %d, want 1", got)
	}
	sr := replica.process(&Request{Op: OpSolve, Handle: ev.Handle, B: b})
	if sr.Err != "" {
		t.Fatal(sr.Err)
	}
	for i := range xref {
		if math.Float64bits(sr.X[i]) != math.Float64bits(xref[i]) {
			t.Fatalf("replica solve X[%d] differs bitwise from the owner's factors", i)
		}
	}
	// Values-only refactorize on the replica: the pattern rode along.
	if r := replica.process(&Request{Op: OpRefactorize, Handle: ev.Handle, Values: a.Val}); r.Err != "" {
		t.Fatalf("refactorize on replica: %s", r.Err)
	}
	// Garbage blob: typed in-band error, never a panic.
	if r := replica.process(&Request{Op: OpReplicate, Handle: 999, Key: 1, Matrix: a, Blob: []byte("junk")}); r.Err == "" {
		t.Error("garbage replicate blob accepted")
	}
}

// TestReplicateAnalysisWarmsCache: an OpReplicateAnalysis push makes the
// next factorize of that structure a cache hit. The pushed analysis carries
// the owner's *normalized* options (HostWorkers = FactorWorkers, no
// Observer) — exactly what a shard's Analyzed hook replicates — because the
// cache's exact-options check compares against the receiver's normalized
// options; a heterogeneous FactorWorkers config across the fleet degrades
// the push to a harmless cache miss.
func TestReplicateAnalysisWarmsCache(t *testing.T) {
	a := sstar.GenGrid2D(10, 8, false, sstar.GenOptions{Seed: 74})
	opts := sstar.DefaultOptions()
	opts.HostWorkers = 3 // matches FactorWorkers below
	opts.Observer = nil
	an, err := sstar.Analyze(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := an.Save(&buf); err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 2, FactorWorkers: 3})
	defer s.Close()
	if r := s.process(&Request{Op: OpReplicateAnalysis, Key: an.Key(), Blob: buf.Bytes()}); r.Err != "" {
		t.Fatalf("replicate analysis: %s", r.Err)
	}
	fr := s.process(&Request{Op: OpFactorize, Matrix: a, Opts: sstar.DefaultOptions()})
	if fr.Err != "" {
		t.Fatal(fr.Err)
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 0 {
		t.Errorf("cache hits/misses = %d/%d, want 1/0: replicated analysis did not warm the cache", st.CacheHits, st.CacheMisses)
	}
	// Garbage analysis blob: in-band error.
	if r := s.process(&Request{Op: OpReplicateAnalysis, Key: 7, Blob: []byte("junk")}); r.Err == "" {
		t.Error("garbage analysis blob accepted")
	}
}

// captureHooks is a minimal ClusterHooks that records Stored events.
type captureHooks struct {
	stored func(StoredEvent)
}

func (c captureHooks) Route(*Request) *Response          { return nil }
func (c captureHooks) Placement(uint64) (string, string) { return "", "" }
func (c captureHooks) Analyzed(uint64, *sstar.Analysis)  {}
func (c captureHooks) Stored(ev StoredEvent)             { c.stored(ev) }
func (c captureHooks) Freed(uint64, uint64)              {}
func (c captureHooks) AugmentStats(*ServerStats)         {}
