package server

import (
	"container/list"
	"sync"

	"sstar"
)

// analysisCache is the structure-keyed LRU cache of analyze-phase results.
//
// Soundness: the analyze phase (maximum transversal, minimum degree on AᵀA,
// George–Ng static symbolic factorization, supernode partition) is a pure
// function of the nonzero pattern and the analysis options — it never reads
// a value. And by the paper's pivot-independence property the static
// structure bounds the fill of every partial-pivoting interchange sequence,
// so a cached analysis is valid for *any* values carried by a matching
// pattern. The key is the 64-bit sstar.StructureKey (pattern ⊕ options
// hash); a hit additionally verifies the pattern and options exactly, so a
// hash collision degrades to a miss instead of a wrong answer.
//
// A cached *sstar.Analysis is immutable and safe to share across concurrent
// factorizations, so entries are handed out without copying.
type analysisCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List                 // front = most recently used
	m         map[uint64][]*list.Element // key -> entries (collision-tolerant)
	hit, miss int64
}

type cacheEntry struct {
	key  uint64
	opts sstar.Options
	an   *sstar.Analysis
}

func newAnalysisCache(capacity int) *analysisCache {
	if capacity < 1 {
		capacity = 1
	}
	return &analysisCache{cap: capacity, ll: list.New(), m: make(map[uint64][]*list.Element)}
}

// get returns the cached analysis for (pattern of a, opts), or nil on a
// miss. The caller supplies the precomputed key to avoid hashing twice.
func (c *analysisCache) get(key uint64, a *sstar.Matrix, opts sstar.Options) *sstar.Analysis {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, el := range c.m[key] {
		e := el.Value.(*cacheEntry)
		if e.opts == opts && e.an.Matches(a) {
			c.ll.MoveToFront(el)
			c.hit++
			return e.an
		}
	}
	c.miss++
	return nil
}

// add inserts an analysis under key, evicting least-recently-used entries
// beyond capacity. A racing duplicate (two misses analyzing the same
// structure concurrently) is tolerated: both are inserted, both are valid,
// and LRU eviction reclaims the spare.
func (c *analysisCache) add(key uint64, an *sstar.Analysis) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.ll.PushFront(&cacheEntry{key: key, opts: an.Options(), an: an})
	c.m[key] = append(c.m[key], el)
	for c.ll.Len() > c.cap {
		c.evictOldest()
	}
}

// evictOldest removes the LRU entry. Caller holds c.mu.
func (c *analysisCache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.ll.Remove(el)
	e := el.Value.(*cacheEntry)
	els := c.m[e.key]
	for i, cand := range els {
		if cand == el {
			els = append(els[:i], els[i+1:]...)
			break
		}
	}
	if len(els) == 0 {
		delete(c.m, e.key)
	} else {
		c.m[e.key] = els
	}
}

// counters returns (hits, misses, live entries).
func (c *analysisCache) counters() (hit, miss int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hit, c.miss, c.ll.Len()
}
