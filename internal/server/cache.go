package server

import (
	"container/list"
	"sync"

	"sstar"
)

// analysisCache is the structure-keyed LRU cache of analyze-phase results.
//
// Soundness: the analyze phase (maximum transversal, minimum degree on AᵀA,
// George–Ng static symbolic factorization, supernode partition) is a pure
// function of the nonzero pattern and the analysis options — it never reads
// a value. And by the paper's pivot-independence property the static
// structure bounds the fill of every partial-pivoting interchange sequence,
// so a cached analysis is valid for *any* values carried by a matching
// pattern. The key is the 64-bit sstar.StructureKey (pattern ⊕ options
// hash); a hit additionally verifies the pattern and options exactly, so a
// hash collision degrades to a miss instead of a wrong answer.
//
// A cached *sstar.Analysis is immutable and safe to share across concurrent
// factorizations, so entries are handed out without copying.
type analysisCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List                 // front = most recently used
	m         map[uint64][]*list.Element // key -> entries (collision-tolerant)
	inflight  map[uint64]*flight         // cold analyses being computed right now
	hit, miss int64
	coalesced int64 // requests that waited on another request's computation
}

// flight is one in-progress cold analysis. The leader computes and closes
// done; every concurrent request for the same key waits instead of
// recomputing — the singleflight that turns a thundering herd on a new
// structure into one analyze (and, on a cluster shard, one replication push
// instead of a duplicate per herd member).
type flight struct {
	done chan struct{}
	an   *sstar.Analysis
	err  error
}

type cacheEntry struct {
	key  uint64
	opts sstar.Options
	an   *sstar.Analysis
}

// patchSimilarityMin gates the near-miss lookup: a cached entry qualifies as
// a patch base only when its pattern-sketch similarity to the request
// reaches this. The sketch is a coarse estimator — the gate only has to keep
// obviously unrelated structures from paying a pattern diff; Analysis.Patch
// measures the exact diff and falls back on its own.
const patchSimilarityMin = 0.75

// nearest returns the cached analysis most similar to a's pattern under the
// same (normalized) options — the second-chance candidate the server patches
// incrementally when the exact structure key missed. Entries must share the
// order and the options and clear patchSimilarityMin; nil when none does.
// LRU positions and hit/miss counters are untouched: this is a miss-path
// helper, and the caller accounts for patches separately.
func (c *analysisCache) nearest(a *sstar.Matrix, opts sstar.Options) *sstar.Analysis {
	sk := sstar.SketchOf(a)
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *sstar.Analysis
	bestSim := patchSimilarityMin
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		if e.opts != opts || e.an.N() != a.N {
			continue
		}
		if sim := sk.Similarity(e.an.Sketch()); sim >= bestSim && (best == nil || sim > bestSim) {
			best, bestSim = e.an, sim
		}
	}
	return best
}

func newAnalysisCache(capacity int) *analysisCache {
	if capacity < 1 {
		capacity = 1
	}
	return &analysisCache{
		cap:      capacity,
		ll:       list.New(),
		m:        make(map[uint64][]*list.Element),
		inflight: make(map[uint64]*flight),
	}
}

// getOrCompute returns the analysis for (pattern of a, opts), computing it
// with compute on a miss. Concurrent misses on the same key are coalesced:
// one leader runs compute, everyone else waits for its result. A waiter whose
// (pattern, opts) does not actually match the leader's result — a key
// collision, astronomically unlikely — falls back to computing its own.
func (c *analysisCache) getOrCompute(key uint64, a *sstar.Matrix, opts sstar.Options, compute func() (*sstar.Analysis, error)) (an *sstar.Analysis, cacheHit, computed bool, err error) {
	for {
		c.mu.Lock()
		if an := c.lookup(key, a, opts); an != nil {
			c.hit++
			c.mu.Unlock()
			return an, true, false, nil
		}
		if fl, ok := c.inflight[key]; ok {
			c.coalesced++
			c.mu.Unlock()
			<-fl.done
			if fl.err == nil && fl.an.Options() == opts && fl.an.Matches(a) {
				return fl.an, true, false, nil
			}
			if fl.err != nil {
				// The leader failed; its inputs were byte-equal up to the
				// key, so this request would fail the same way.
				return nil, false, false, fl.err
			}
			// Key collision with a different structure: loop and compute
			// under a fresh flight slot (the leader's is gone by now).
			continue
		}
		fl := &flight{done: make(chan struct{})}
		c.inflight[key] = fl
		c.miss++
		c.mu.Unlock()

		fl.an, fl.err = compute()
		c.mu.Lock()
		delete(c.inflight, key)
		if fl.err == nil {
			c.insert(key, fl.an)
		}
		c.mu.Unlock()
		close(fl.done)
		return fl.an, false, true, fl.err
	}
}

// lookup returns the cached analysis for (pattern of a, opts) and bumps it to
// most recently used, or nil. Caller holds c.mu and maintains the counters.
func (c *analysisCache) lookup(key uint64, a *sstar.Matrix, opts sstar.Options) *sstar.Analysis {
	for _, el := range c.m[key] {
		e := el.Value.(*cacheEntry)
		if e.opts == opts && e.an.Matches(a) {
			c.ll.MoveToFront(el)
			return e.an
		}
	}
	return nil
}

// get returns the cached analysis for (pattern of a, opts), or nil on a
// miss. The caller supplies the precomputed key to avoid hashing twice.
func (c *analysisCache) get(key uint64, a *sstar.Matrix, opts sstar.Options) *sstar.Analysis {
	c.mu.Lock()
	defer c.mu.Unlock()
	if an := c.lookup(key, a, opts); an != nil {
		c.hit++
		return an
	}
	c.miss++
	return nil
}

// add inserts an analysis under key, evicting least-recently-used entries
// beyond capacity. A racing duplicate (two inserts of the same structure,
// e.g. a replication racing a local analyze) is tolerated: both are valid,
// and LRU eviction reclaims the spare.
func (c *analysisCache) add(key uint64, an *sstar.Analysis) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(key, an)
}

// insert adds an entry and enforces capacity. Caller holds c.mu.
func (c *analysisCache) insert(key uint64, an *sstar.Analysis) {
	el := c.ll.PushFront(&cacheEntry{key: key, opts: an.Options(), an: an})
	c.m[key] = append(c.m[key], el)
	for c.ll.Len() > c.cap {
		c.evictOldest()
	}
}

// evictOldest removes the LRU entry. Caller holds c.mu.
func (c *analysisCache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.ll.Remove(el)
	e := el.Value.(*cacheEntry)
	els := c.m[e.key]
	for i, cand := range els {
		if cand == el {
			els = append(els[:i], els[i+1:]...)
			break
		}
	}
	if len(els) == 0 {
		delete(c.m, e.key)
	} else {
		c.m[e.key] = els
	}
}

// counters returns (hits, misses, live entries).
func (c *analysisCache) counters() (hit, miss int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hit, c.miss, c.ll.Len()
}

// coalescedCount returns how many requests were merged into a concurrent
// identical computation by the singleflight.
func (c *analysisCache) coalescedCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coalesced
}
