package server_test

import (
	"context"
	"math/rand"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"sstar"
	"sstar/client"
	"sstar/internal/server"
	"sstar/internal/wire"
)

// startServer runs a server on a loopback TCP listener and returns its
// address.
func startServer(t *testing.T, cfg server.Config) string {
	t.Helper()
	s := server.New(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return l.Addr().String()
}

// TestEndToEndConcurrentClients is the acceptance scenario: 8 concurrent
// clients submit matrices drawn from 2 distinct patterns; every solve meets
// the repo residual bound, second-and-later factorizations of each pattern
// hit the analysis cache, and the values-only refactorize path beats a cold
// factorize in this test's own timing.
func TestEndToEndConcurrentClients(t *testing.T) {
	addr := startServer(t, server.Config{Workers: 4, CacheEntries: 8})

	patterns := []*sstar.Matrix{
		sstar.GenGrid2D(14, 14, false, sstar.GenOptions{Seed: 100, Convection: 0.2}),
		sstar.GenGrid2D(14, 14, true, sstar.GenOptions{Seed: 200}),
	}

	const nClients = 8
	const roundsPerClient = 3
	var wg sync.WaitGroup
	errs := make(chan error, nClients*16)
	fail := func(err error) { errs <- err }
	for ci := 0; ci < nClients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := client.Dial("tcp", addr)
			if err != nil {
				fail(err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(1000 + ci)))
			base := patterns[ci%len(patterns)]
			for round := 0; round < roundsPerClient; round++ {
				m := base.Clone()
				for i := range m.Val {
					m.Val[i] *= 1 + 0.2*rng.Float64()
				}
				h, _, err := c.Factorize(context.Background(), m, sstar.DefaultOptions())
				if err != nil {
					fail(err)
					return
				}
				b := make([]float64, m.N)
				for i := range b {
					b[i] = 2*rng.Float64() - 1
				}
				x, _, err := h.Solve(context.Background(), b)
				if err != nil {
					fail(err)
					return
				}
				if r := sstar.Residual(m, x, b); r > 1e-9 {
					t.Errorf("client %d round %d: residual %g", ci, round, r)
				}
				// Values-only refactorize, then verify against the new matrix.
				vals := append([]float64(nil), m.Val...)
				for i := range vals {
					vals[i] *= 1 + 0.1*rng.Float64()
				}
				if _, err := h.Refactorize(context.Background(), vals); err != nil {
					fail(err)
					return
				}
				m2 := m.Clone()
				copy(m2.Val, vals)
				x2, _, err := h.Solve(context.Background(), b)
				if err != nil {
					fail(err)
					return
				}
				if r := sstar.Residual(m2, x2, b); r > 1e-9 {
					t.Errorf("client %d round %d: refactorized residual %g", ci, round, r)
				}
				if err := h.Free(context.Background()); err != nil {
					fail(err)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	c, err := client.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 8 clients x 3 rounds = 24 factorizes over 2 structures: at most one
	// miss per structure per racing first round; everything after must hit.
	if st.CacheHits == 0 {
		t.Fatalf("no cache hits across %d factorizes: %+v", st.Factorizes, st)
	}
	if st.HitRate() <= 0 {
		t.Fatalf("hit rate %g, want > 0", st.HitRate())
	}
	if st.Factorizes != nClients*roundsPerClient {
		t.Fatalf("factorize count %d, want %d", st.Factorizes, nClients*roundsPerClient)
	}
	if st.Errors != 0 {
		t.Fatalf("server reported %d errored requests", st.Errors)
	}
	if st.Handles != 0 {
		t.Fatalf("%d handles leaked", st.Handles)
	}
	t.Logf("server stats: %+v (hit rate %.2f)", st, st.HitRate())
}

// TestRefactorizeBeatsColdFactorize times both paths through the full
// client/server stack: cold factorizations of never-seen structures vs
// values-only refactorizations of a held handle.
func TestRefactorizeBeatsColdFactorize(t *testing.T) {
	addr := startServer(t, server.Config{Workers: 2, CacheEntries: 64})
	c, err := client.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const reps = 5
	cold := make([]time.Duration, 0, reps)
	for j := 0; j < reps; j++ {
		// A fresh structure every time: nx varies, so nothing is cached.
		m := sstar.GenGrid2D(20+j, 20, false, sstar.GenOptions{Seed: int64(j), Convection: 0.1})
		t0 := time.Now()
		h, st, err := c.Factorize(context.Background(), m, sstar.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		cold = append(cold, time.Since(t0))
		if st.CacheHit {
			t.Fatal("cold factorize hit the cache")
		}
		if err := h.Free(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	m := sstar.GenGrid2D(20, 20, false, sstar.GenOptions{Seed: 99, Convection: 0.1})
	h, _, err := c.Factorize(context.Background(), m, sstar.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Free(context.Background())
	refac := make([]time.Duration, 0, reps)
	vals := append([]float64(nil), m.Val...)
	for j := 0; j < reps; j++ {
		for i := range vals {
			vals[i] *= 1.01
		}
		t0 := time.Now()
		if _, err := h.Refactorize(context.Background(), vals); err != nil {
			t.Fatal(err)
		}
		refac = append(refac, time.Since(t0))
	}

	coldMed, refacMed := median(cold), median(refac)
	t.Logf("cold factorize median %v, refactorize median %v (%.1fx)", coldMed, refacMed, float64(coldMed)/float64(refacMed))
	if refacMed >= coldMed {
		t.Fatalf("refactorize (%v) not faster than cold factorize (%v)", refacMed, coldMed)
	}
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// TestCorruptFrameDropsOnlyThatConnection sends garbage on one connection
// and proves the server survives to serve a healthy one.
func TestCorruptFrameDropsOnlyThatConnection(t *testing.T) {
	addr := startServer(t, server.Config{Workers: 1})

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if err := wire.WriteGob(raw, server.FrameHello, server.Hello{Magic: server.ProtoMagic, Version: server.ProtoVersion}); err != nil {
		t.Fatal(err)
	}
	var hello server.Hello
	if err := wire.ReadGob(raw, server.FrameHello, 1<<16, &hello); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte("\x02\xff\xff\xff\xffgarbage beyond any frame bound")); err != nil {
		t.Fatal(err)
	}
	// The server must drop this connection (read returns EOF/error soon).
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("server kept a connection after a corrupt frame")
	}

	// A fresh, well-behaved client is unaffected.
	c, err := client.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestWrongProtocolHello proves version/magic mismatches are rejected
// in-band without killing the listener.
func TestWrongProtocolHello(t *testing.T) {
	addr := startServer(t, server.Config{Workers: 1})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if err := wire.WriteGob(raw, server.FrameHello, server.Hello{Magic: "not-sstar", Version: 0}); err != nil {
		t.Fatal(err)
	}
	var resp server.Response
	if err := wire.ReadGob(raw, server.FrameResponse, 1<<16, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Fatal("bad hello accepted")
	}
	c, err := client.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}
