package server

import (
	"fmt"
	"runtime/debug"
	"time"

	"sstar"
)

// Solve coalescing: concurrent plain solves against one handle are merged
// into a single batched triangular solve. The batch runs through
// SolveManyExact, whose every column is bitwise identical to a lone Solve of
// that column — coalescing is invisible to clients except in throughput: the
// factor blocks stream through memory once per batch instead of once per
// request, and the triangular solves are memory-bound. Each member keeps its
// own response (scatter), its own queue-wait accounting, and its own
// deadline check.

// collectRiders gathers ride-along solves for a dequeued lead: everything
// already queued against the same handle (opportunistic, no added latency),
// then — if a batch window is configured and the batch has room — one
// bounded wait for more. Ride-alongs leave the queue exactly as if a worker
// had dequeued them, freeing their admission slots here.
func (s *Server) collectRiders(lead *job) []*job {
	room := s.cfg.CoalesceWidth - 1
	riders := s.sched.takeSolves(lead.req.Handle, room)
	if len(riders) < room && s.cfg.CoalesceWindow > 0 {
		t := time.NewTimer(s.cfg.CoalesceWindow)
		select {
		case <-t.C:
		case <-s.quit:
			t.Stop()
		}
		riders = append(riders, s.sched.takeSolves(lead.req.Handle, room-len(riders))...)
	}
	for range riders {
		<-s.slots
	}
	return riders
}

// runSolveBatch executes the lead and its riders as one batched solve,
// scattering a per-member response. Each member is individually shed on an
// expired deadline, individually routed in cluster mode, and individually
// validated — one bad member never fails its companions — and each member's
// counters and histogram observations match what the single-job path would
// have recorded for it. A panic anywhere below answers every unanswered
// member, mirroring process()'s recover.
func (s *Server) runSolveBatch(id int, lead *job, riders []*job) {
	batch := append([]*job{lead}, riders...)
	answered := make([]bool, len(batch))
	// finish counts and answers member i the way run() would have:
	// requests/errors counters, the observation, then the response.
	finish := func(i int, resp *Response, queueNs, processNs int64) {
		j := batch[i]
		resp.Stats.QueueNs = queueNs
		resp.Stats.Workers = s.cfg.Workers
		s.requests.Add(1)
		if resp.Err != "" {
			s.errors.Add(1)
			s.logf("server: %s failed (%s): %s", j.req.Op, resp.Code, resp.Err)
		}
		s.met.observe(OpSolve, id, queueNs, processNs, resp.Stats)
		answered[i] = true
		j.done <- resp
	}
	defer func() {
		if p := recover(); p != nil {
			s.met.panics.Inc()
			s.logf("server: panic in coalesced solve: %v\n%s", p, debug.Stack())
			for i, j := range batch {
				if !answered[i] {
					resp := errResponse(fmt.Errorf("%w: recovered panic: %v", sstar.ErrInternal, p))
					finish(i, resp, time.Since(j.enqueued).Nanoseconds(), 0)
				}
			}
		}
	}()

	// Per-member admission gates, in the order the single-job path applies
	// them: dequeue-side deadline shed, cluster routing, handle lookup,
	// length validation. Gate failures answer just that member.
	var live []*job
	var liveIdx []int
	hk := s.cfg.Cluster
	h, herr := s.reg.get(lead.req.Handle)
	for i, j := range batch {
		queueNs := time.Since(j.enqueued).Nanoseconds()
		if !j.deadline.IsZero() && time.Now().After(j.deadline) {
			// shed() maintains the shed/request/error counters itself, and
			// shed jobs are not observed on the histograms — same as run().
			resp := s.shed(j.req, j.tenant, queueNs, fmt.Sprintf("queue wait %v exceeded the request deadline", time.Duration(queueNs)))
			answered[i] = true
			j.done <- resp
			continue
		}
		if hk != nil {
			if r := hk.Route(j.req); r != nil {
				// Routing short-circuits before the op runs (no solve
				// counted), exactly like process().
				finish(i, r, queueNs, 0)
				continue
			}
		}
		s.solves.Add(1)
		if herr != nil {
			finish(i, errResponse(herr), queueNs, 0)
			continue
		}
		if len(j.req.B) != h.n {
			finish(i, errResponse(fmt.Errorf("sstar: rhs length %d, want %d", len(j.req.B), h.n)), queueNs, 0)
			continue
		}
		live = append(live, j)
		liveIdx = append(liveIdx, i)
	}
	if len(live) == 0 {
		return
	}

	w := len(live)
	t0 := time.Now()
	var xs [][]float64
	var serr error
	if w == 1 {
		// A lone survivor takes the exact single-solve path.
		h.mu.RLock()
		x, err := h.f.Solve(live[0].req.B)
		h.mu.RUnlock()
		xs, serr = [][]float64{x}, err
	} else {
		bb := make([]float64, h.n*w)
		for q, j := range live {
			copy(bb[q*h.n:(q+1)*h.n], j.req.B)
		}
		h.mu.RLock()
		x, err := h.f.SolveManyExact(bb, w)
		h.mu.RUnlock()
		serr = err
		if err == nil {
			xs = make([][]float64, w)
			for q := range live {
				xs[q] = x[q*h.n : (q+1)*h.n : (q+1)*h.n]
			}
		}
		s.solveBatches.Add(1)
		s.coalescedSolves.Add(int64(w))
		s.met.solveBatchWidth.Observe(float64(w))
	}
	solveNs := time.Since(t0).Nanoseconds()

	for q, j := range live {
		queueNs := t0.Sub(j.enqueued).Nanoseconds()
		var resp *Response
		if serr != nil {
			resp = errResponse(serr)
		} else {
			resp = &Response{Handle: j.req.Handle, X: xs[q]}
		}
		resp.Stats.SolveNs = solveNs
		resp.Stats.BatchWidth = w
		finish(liveIdx[q], resp, queueNs, solveNs)
	}
}
