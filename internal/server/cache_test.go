package server

import (
	"testing"

	"sstar"
)

func mustAnalyze(t *testing.T, a *sstar.Matrix, o sstar.Options) *sstar.Analysis {
	t.Helper()
	an, err := sstar.Analyze(a, o)
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestCacheHitMiss(t *testing.T) {
	c := newAnalysisCache(4)
	o := sstar.DefaultOptions()
	a := sstar.GenGrid2D(6, 6, false, sstar.GenOptions{Seed: 1})
	key := sstar.StructureKey(a, o)
	if c.get(key, a, o) != nil {
		t.Fatal("hit on empty cache")
	}
	c.add(key, mustAnalyze(t, a, o))
	if c.get(key, a, o) == nil {
		t.Fatal("miss after add")
	}
	// Same pattern, different values: still a hit.
	b := a.Clone()
	for i := range b.Val {
		b.Val[i] *= -2
	}
	if c.get(sstar.StructureKey(b, o), b, o) == nil {
		t.Fatal("values changed the cache outcome")
	}
	// Different options: miss.
	o2 := o
	o2.BlockSize = 7
	if c.get(sstar.StructureKey(a, o2), a, o2) != nil {
		t.Fatal("different options hit the cached analysis")
	}
	hit, miss, entries := c.counters()
	if hit != 2 || miss != 2 || entries != 1 {
		t.Fatalf("counters hit=%d miss=%d entries=%d, want 2/2/1", hit, miss, entries)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newAnalysisCache(2)
	o := sstar.DefaultOptions()
	mats := []*sstar.Matrix{
		sstar.GenGrid2D(5, 5, false, sstar.GenOptions{Seed: 1}),
		sstar.GenGrid2D(5, 5, true, sstar.GenOptions{Seed: 1}),
		sstar.GenGrid2D(6, 5, false, sstar.GenOptions{Seed: 1}),
	}
	keys := make([]uint64, len(mats))
	for i, m := range mats[:2] {
		keys[i] = sstar.StructureKey(m, o)
		c.add(keys[i], mustAnalyze(t, m, o))
	}
	// Touch 0 so 1 becomes the LRU, then overflow with 2.
	if c.get(keys[0], mats[0], o) == nil {
		t.Fatal("warm entry missing")
	}
	keys[2] = sstar.StructureKey(mats[2], o)
	c.add(keys[2], mustAnalyze(t, mats[2], o))
	if _, _, entries := c.counters(); entries != 2 {
		t.Fatalf("entries %d, want 2", entries)
	}
	if c.get(keys[1], mats[1], o) != nil {
		t.Fatal("LRU entry survived eviction")
	}
	if c.get(keys[0], mats[0], o) == nil || c.get(keys[2], mats[2], o) == nil {
		t.Fatal("recently used entries evicted")
	}
}
