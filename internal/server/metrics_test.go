package server

import (
	"encoding/json"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"sstar"
)

// TestAdminMetricsGoldenFormat drives a small workload through the server
// and checks the /metrics output line by line against the Prometheus text
// exposition format: HELP/TYPE pairs, the full histogram sample family, and
// counter values that match the work actually performed.
func TestAdminMetricsGoldenFormat(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	a := sstar.GenGrid2D(7, 7, false, sstar.GenOptions{Seed: 11, Convection: 0.1})
	resp := s.submit(&Request{Op: OpFactorize, Matrix: a, Opts: sstar.DefaultOptions()})
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	b := make([]float64, a.N)
	b[0] = 1
	if r := s.submit(&Request{Op: OpSolve, Handle: resp.Handle, B: b}); r.Err != "" {
		t.Fatal(r.Err)
	}
	if r := s.submit(&Request{Op: OpSolve, Handle: 999, B: b}); r.Err == "" {
		t.Fatal("bad solve accepted")
	}

	rec := httptest.NewRecorder()
	s.AdminHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body := rec.Body.String()

	// Exact-value samples: the workload above fixes these.
	for _, want := range []string{
		"sstar_server_requests_total 3\n",
		"sstar_server_errors_total 1\n",
		"sstar_server_panics_total 0\n",
		"sstar_server_factorize_total 1\n",
		"sstar_server_solve_total 2\n",
		"sstar_server_cache_misses_total 1\n",
		"sstar_server_handles 1\n",
		"sstar_server_workers 2\n",
		// DefaultOptions selects structure-adaptive blocking, so the
		// factorize above must report it.
		"sstar_blocking_adaptive 1\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing sample %q in:\n%s", want, body)
		}
	}

	// Every metric family must carry its HELP and TYPE header.
	for name, typ := range map[string]string{
		"sstar_server_requests_total":     "counter",
		"sstar_server_panics_total":       "counter",
		"sstar_server_queue_depth":        "gauge",
		"sstar_server_factor_workers":     "gauge",
		"sstar_server_request_seconds":    "histogram",
		"sstar_server_queue_wait_seconds": "histogram",
		"sstar_server_solve_seconds":      "histogram",
		"sstar_server_factor_seconds":     "histogram",
		"sstar_server_analyze_seconds":    "histogram",
		"sstar_server_cache_hits_total":   "counter",
		"sstar_server_cache_misses_total": "counter",
		"sstar_blocking_max_block":        "gauge",
		"sstar_blocking_amalgamate":       "gauge",
		"sstar_blocking_adaptive":         "gauge",
		"sstar_xblas_tile_mc":             "gauge",
		"sstar_xblas_tile_nc":             "gauge",
	} {
		if !strings.Contains(body, "# HELP "+name+" ") {
			t.Fatalf("/metrics missing HELP for %s", name)
		}
		if !strings.Contains(body, "# TYPE "+name+" "+typ+"\n") {
			t.Fatalf("/metrics missing TYPE %s for %s", typ, name)
		}
	}

	// Histogram shape: cumulative buckets ending in +Inf, _sum, _count, and
	// _count equal to the +Inf bucket. The solve histogram saw exactly one
	// observation (the failed solve never reached the solver).
	lines := strings.Split(body, "\n")
	bucketRe := regexp.MustCompile(`^sstar_server_solve_seconds_bucket\{le="([^"]+)"\} (\d+)$`)
	var bucketCount, infValue int
	prev := int64(-1)
	for _, ln := range lines {
		m := bucketRe.FindStringSubmatch(ln)
		if m == nil {
			continue
		}
		bucketCount++
		v, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket value in %q", ln)
		}
		if v < prev {
			t.Fatalf("buckets not cumulative at %q", ln)
		}
		prev = v
		if m[1] == "+Inf" {
			infValue = int(v)
		}
	}
	if bucketCount == 0 {
		t.Fatal("no solve histogram buckets rendered")
	}
	if infValue != 1 {
		t.Fatalf("solve histogram +Inf bucket %d, want 1", infValue)
	}
	if !strings.Contains(body, "sstar_server_solve_seconds_count 1\n") {
		t.Fatal("solve histogram _count != 1 or missing")
	}
	if !strings.Contains(body, "sstar_server_solve_seconds_sum ") {
		t.Fatal("solve histogram missing _sum")
	}

	// Every non-comment line must be "name[{labels}] value".
	sampleRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+\-]+$`)
	for _, ln := range lines {
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		if !sampleRe.MatchString(ln) {
			t.Fatalf("malformed exposition line %q", ln)
		}
	}
}

// TestAdminDebugTrace: request spans land on the tracer and /debug/trace
// renders them as valid Chrome trace JSON with server-category spans.
func TestAdminDebugTrace(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	a := sstar.GenGrid2D(6, 6, false, sstar.GenOptions{Seed: 12})
	resp := s.submit(&Request{Op: OpFactorize, Matrix: a, Opts: sstar.DefaultOptions()})
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	b := make([]float64, a.N)
	b[0] = 1
	if r := s.submit(&Request{Op: OpSolve, Handle: resp.Handle, B: b}); r.Err != "" {
		t.Fatal(r.Err)
	}

	rec := httptest.NewRecorder()
	s.AdminHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/trace status %d", rec.Code)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Cat == "server" {
			if ev.Ph != "X" {
				t.Fatalf("span %q has ph=%q", ev.Name, ev.Ph)
			}
			names[ev.Name] = true
		}
	}
	if !names["factorize"] || !names["solve"] {
		t.Fatalf("trace lacks factorize/solve spans: %v", names)
	}
}

// TestAdminPprofIndex: the pprof index must answer (the profiling surface is
// part of the admin contract).
func TestAdminPprofIndex(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	rec := httptest.NewRecorder()
	s.AdminHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/ status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatal("pprof index lacks profile listing")
	}
}
