package server_test

import (
	"context"
	"net"
	"strings"
	"testing"

	"sstar"
	"sstar/client"
	"sstar/internal/server"
)

// startServerWith is startServer exposing the *Server through out, for tests
// that read server-side state alongside the client view.
func startServerWith(t *testing.T, cfg server.Config, out **server.Server) string {
	t.Helper()
	s := server.New(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	*out = s
	return l.Addr().String()
}

// TestClientTenantStamping: WithTenant and ForTenant attribute requests to
// their tenants end to end — the server's per-tenant counters and the
// /metrics exposition both see the split, and the views share one pool.
func TestClientTenantStamping(t *testing.T) {
	var srv *server.Server
	addr := startServerWith(t, server.Config{Workers: 2, TenantWeights: map[string]int{"prod": 4}}, &srv)

	c, err := client.Dial("tcp", addr, client.WithTenant("prod"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	batch := c.ForTenant("batch")

	ctx := context.Background()
	a := sstar.GenGrid2D(8, 8, false, sstar.GenOptions{Seed: 4, Convection: 0.2})
	h, _, err := c.Factorize(ctx, a, sstar.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = float64(i % 5)
	}
	if _, _, err := h.Solve(ctx, b); err != nil {
		t.Fatal(err)
	}
	if err := batch.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	if err := batch.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	prod, ok := st.Tenants["prod"]
	if !ok || prod.Requests < 2 {
		t.Fatalf("prod tenant stats %+v (tenants %v)", prod, st.Tenants)
	}
	if prod.Weight != 4 {
		t.Fatalf("prod weight %d, want 4", prod.Weight)
	}
	bt, ok := st.Tenants["batch"]
	if !ok || bt.Requests < 2 {
		t.Fatalf("batch tenant stats %+v", bt)
	}

	// The exposition carries the per-tenant families as labeled series.
	var sb strings.Builder
	srv.Registry().WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		`sstar_server_tenant_requests_total{tenant="prod"}`,
		`sstar_server_tenant_requests_total{tenant="batch"}`,
		"sstar_server_solve_batch_width",
		"sstar_server_coalesced_solves_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}
