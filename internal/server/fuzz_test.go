package server

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"sstar"
	"sstar/internal/wire"
)

// fuzzServer is one shared worker-less server; process is called directly, so
// the pool is irrelevant and paying New per fuzz iteration would only slow
// the fuzzer down.
var fuzzServer = sync.OnceValue(func() *Server {
	return New(Config{Workers: 1})
})

// FuzzRequestDecode drives hostile byte streams through the exact path a
// connection uses — frame decode, gob decode, then request execution — and
// requires the server side to survive every one: decode errors and in-band
// error responses are fine, a process-killing panic is not. (process recovers
// panics by contract; the fuzzer proves the recovery really holds the line.)
func FuzzRequestDecode(f *testing.F) {
	// Seed with well-formed requests of every op so the fuzzer starts from
	// deep inside the accepted grammar rather than random noise.
	a := sstar.GenGrid2D(4, 4, false, sstar.GenOptions{Seed: 3})
	seeds := []*Request{
		{Op: OpPing},
		{Op: OpStats},
		{Op: OpFactorize, Matrix: a, Opts: sstar.DefaultOptions(), TimeoutNs: 1e9},
		{Op: OpSolve, Handle: 1, B: make([]float64, 16)},
		{Op: OpRefactorize, Handle: 2, Values: []float64{1, 2, 3}},
		{Op: OpFree, Handle: 3},
		{Op: Op(200)},
		// Tenant is the additive QoS field: hostile names must be as
		// survivable as hostile payloads (they become scheduler queue names
		// and metric label values).
		{Op: OpSolve, Handle: 1, B: make([]float64, 16), Tenant: "prod"},
		{Op: OpPing, Tenant: "\x00\xff weird\nname\""},
		{Op: OpFactorize, Matrix: a, Opts: sstar.DefaultOptions(), Tenant: strings.Repeat("t", 300)},
	}
	for _, req := range seeds {
		var buf bytes.Buffer
		if err := wire.WriteGob(&buf, FrameRequest, req); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{FrameRequest, 0, 0, 0, 4, 0, 0, 0, 0, 1, 2, 3, 4})

	s := fuzzServer()
	f.Fuzz(func(t *testing.T, data []byte) {
		req := new(Request)
		if err := wire.ReadGob(bytes.NewReader(data), FrameRequest, 1<<20, req); err != nil {
			return // rejected at the wire: exactly what hostile bytes should get
		}
		// The cluster extension decodes the same frame on shards: hostile Key
		// and Blob fields must be as survivable as the rest.
		if len(req.Blob) > 4096 {
			return
		}
		// Cap the work a decoded request may describe — the fuzzer's job is
		// crashing the decoder and the validators, not factorizing whatever
		// huge random matrix happens to parse.
		if m := req.Matrix; m != nil && (m.N > 64 || m.M > 64 || len(m.RowPtr) > 4096 || len(m.ColInd) > 4096 || len(m.Val) > 4096) {
			return
		}
		if len(req.B) > 4096 || len(req.Values) > 4096 {
			return
		}
		resp := s.process(req)
		if resp == nil {
			t.Fatal("process returned nil response")
		}
	})
}

// FuzzRedirectDecode drives hostile bytes through the response-decode path a
// client (and the router, following redirects between shards) runs: frame
// decode, gob decode, then the typed-error classification that redirect
// following branches on. Decode errors are fine; a panic, or a classification
// that disagrees with the code-to-sentinel mapping, is not.
func FuzzRedirectDecode(f *testing.F) {
	seeds := []*Response{
		{Code: CodeRedirect, Addr: "127.0.0.1:7072", Key: 0xdeadbeef, Err: "redirect: structure 0xdeadbeef is placed on 127.0.0.1:7072"},
		{Code: CodeNotOwner, Addr: "10.0.0.3:7071", Key: 1, Err: "not owner: handle 7"},
		{Handle: 7, N: 16, Nnz: 64, Key: 9, Addr: "127.0.0.1:7071", Replica: "127.0.0.1:7073"},
		{Code: CodeRedirect, Err: "redirect with no address"},
		{Code: Code(250), Addr: "\x00junk", Err: "unknown code"},
		{X: []float64{1, 2, 3}},
	}
	for _, resp := range seeds {
		var buf bytes.Buffer
		if err := wire.WriteGob(&buf, FrameResponse, resp); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{FrameResponse, 0, 0, 0, 2, 0, 0, 0, 0, 9, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		resp := new(Response)
		if err := wire.ReadGob(bytes.NewReader(data), FrameResponse, 1<<20, resp); err != nil {
			return
		}
		err := resp.Error()
		if resp.Err == "" {
			if err != nil {
				t.Fatalf("success response produced error %v", err)
			}
			return
		}
		if err == nil {
			t.Fatal("failed response produced nil error")
		}
		// The round trip a redirect-following client depends on: the typed
		// error must classify back to the code it was built from (unknown
		// codes survive as CodeNone, never panic).
		if got := CodeOf(err); got != resp.Code && got != CodeNone {
			t.Fatalf("CodeOf round trip: %v -> %v (want %v or CodeNone)", resp.Code, got, resp.Code)
		}
		isRedirect := resp.Code == CodeRedirect || resp.Code == CodeNotOwner
		if isRedirect != (errors.Is(err, sstar.ErrRedirect) || errors.Is(err, sstar.ErrNotOwner)) {
			t.Fatalf("code %v: redirect classification mismatch for %v", resp.Code, err)
		}
	})
}

// FuzzMembershipDecode drives hostile membership and manifest exchanges —
// the self-healing wire ops a shard accepts from any peer that can dial it —
// through the same decode-then-process path. Hostile epochs, member lists
// (huge, empty, binary garbage), and intent flags must all come back as
// in-band answers, never a panic: the failure detector calls these ops on
// every heartbeat, so a poisonous view from one sick peer must not take a
// healthy shard down with it.
func FuzzMembershipDecode(f *testing.F) {
	seeds := []*Request{
		{Op: OpMembership, Epoch: 1, Members: []string{"127.0.0.1:7071", "127.0.0.1:7072"}, Addr: "127.0.0.1:7071"},
		{Op: OpMembership, Epoch: 3, Members: []string{"127.0.0.1:7073"}, Addr: "127.0.0.1:7073", Join: true},
		{Op: OpMembership, Epoch: 9, Addr: "127.0.0.1:7072", Leave: true},
		{Op: OpMembership}, // empty view, no identity
		{Op: OpMembership, Epoch: ^uint64(0), Members: []string{""}, Addr: ""},
		{Op: OpMembership, Epoch: 5, Members: []string{"\x00\xffgarbage", strings.Repeat("m", 300)}, Addr: "\nnot an addr", Join: true, Leave: true},
		{Op: OpManifest},
		{Op: OpManifest, Epoch: 2, Addr: "127.0.0.1:7071"},
	}
	for _, req := range seeds {
		var buf bytes.Buffer
		if err := wire.WriteGob(&buf, FrameRequest, req); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})

	s := fuzzServer()
	f.Fuzz(func(t *testing.T, data []byte) {
		req := new(Request)
		if err := wire.ReadGob(bytes.NewReader(data), FrameRequest, 1<<20, req); err != nil {
			return
		}
		if req.Op != OpMembership && req.Op != OpManifest {
			return // other ops belong to FuzzRequestDecode
		}
		// Cap the membership list a decoded request may carry; the target is
		// the decoder and the merge rules, not allocating a million vnodes.
		if len(req.Members) > 64 {
			return
		}
		resp := s.process(req)
		if resp == nil {
			t.Fatal("process returned nil response")
		}
		if req.Op == OpManifest && resp.Err != "" {
			t.Fatalf("manifest exchange failed in-band: %s", resp.Err)
		}
	})
}
