package server

import (
	"bytes"
	"sync"
	"testing"

	"sstar"
	"sstar/internal/wire"
)

// fuzzServer is one shared worker-less server; process is called directly, so
// the pool is irrelevant and paying New per fuzz iteration would only slow
// the fuzzer down.
var fuzzServer = sync.OnceValue(func() *Server {
	return New(Config{Workers: 1})
})

// FuzzRequestDecode drives hostile byte streams through the exact path a
// connection uses — frame decode, gob decode, then request execution — and
// requires the server side to survive every one: decode errors and in-band
// error responses are fine, a process-killing panic is not. (process recovers
// panics by contract; the fuzzer proves the recovery really holds the line.)
func FuzzRequestDecode(f *testing.F) {
	// Seed with well-formed requests of every op so the fuzzer starts from
	// deep inside the accepted grammar rather than random noise.
	a := sstar.GenGrid2D(4, 4, false, sstar.GenOptions{Seed: 3})
	seeds := []*Request{
		{Op: OpPing},
		{Op: OpStats},
		{Op: OpFactorize, Matrix: a, Opts: sstar.DefaultOptions(), TimeoutNs: 1e9},
		{Op: OpSolve, Handle: 1, B: make([]float64, 16)},
		{Op: OpRefactorize, Handle: 2, Values: []float64{1, 2, 3}},
		{Op: OpFree, Handle: 3},
		{Op: Op(200)},
	}
	for _, req := range seeds {
		var buf bytes.Buffer
		if err := wire.WriteGob(&buf, FrameRequest, req); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{FrameRequest, 0, 0, 0, 4, 0, 0, 0, 0, 1, 2, 3, 4})

	s := fuzzServer()
	f.Fuzz(func(t *testing.T, data []byte) {
		req := new(Request)
		if err := wire.ReadGob(bytes.NewReader(data), FrameRequest, 1<<20, req); err != nil {
			return // rejected at the wire: exactly what hostile bytes should get
		}
		// Cap the work a decoded request may describe — the fuzzer's job is
		// crashing the decoder and the validators, not factorizing whatever
		// huge random matrix happens to parse.
		if m := req.Matrix; m != nil && (m.N > 64 || m.M > 64 || len(m.RowPtr) > 4096 || len(m.ColInd) > 4096 || len(m.Val) > 4096) {
			return
		}
		if len(req.B) > 4096 || len(req.Values) > 4096 {
			return
		}
		resp := s.process(req)
		if resp == nil {
			t.Fatal("process returned nil response")
		}
	})
}
