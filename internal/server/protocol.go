// Package server implements the sparse-solve service: a long-running server
// that factorizes and solves client-submitted systems over a length-prefixed
// binary protocol (internal/wire frames carrying gob messages) on TCP or
// Unix sockets.
//
// The serving model follows the paper's central property: the George–Ng
// static symbolic analysis is valid for *any* pivot sequence, hence for any
// values sharing a nonzero pattern. The server therefore keeps an LRU cache
// of analyses keyed by structure hash — the canonical workload (many solves,
// few patterns: time stepping, Newton iterations, parameter sweeps) pays for
// ordering + symbolic factorization + partitioning once per pattern, and a
// values-only Refactorize fast path skips even the pattern transfer.
//
// Protocol: after connecting, the client sends a Hello frame and the server
// answers with its own. From then on the client sends Request frames and
// reads one Response frame per request, in order. All payloads are gob.
package server

import (
	"errors"

	"sstar"
)

// Protocol identification, exchanged in the Hello frame of each side.
const (
	ProtoMagic   = "sstar-rpc"
	ProtoVersion = 1
)

// Frame type bytes of the service protocol.
const (
	FrameHello    byte = 0x01
	FrameRequest  byte = 0x02
	FrameResponse byte = 0x03
)

// Hello opens a connection in both directions.
type Hello struct {
	Magic   string
	Version int
}

// Op selects the operation of a Request.
type Op uint8

// Operations of the service protocol.
const (
	OpPing        Op = 1 // liveness check, empty response
	OpFactorize   Op = 2 // Matrix+Opts -> Handle (analysis served from cache when the structure is known)
	OpRefactorize Op = 3 // Handle+Values (fast path) or Handle+Matrix -> new factors under the same handle
	OpSolve       Op = 4 // Handle+B -> X
	OpFree        Op = 5 // Handle -> release the factorization
	OpStats       Op = 6 // -> ServerStats snapshot
)

// Idempotent reports whether repeating the operation after an ambiguous
// transport failure is safe: executing it twice yields the same server state
// and the same answer. Factorize is excluded (each execution allocates a new
// handle) and so is Free (a repeat answers "unknown handle"). The client's
// retry policy and its stale-connection redial consult this — a shed
// (CodeOverloaded) is retry-safe for every op because the server guarantees a
// shed request never executed.
func (o Op) Idempotent() bool {
	switch o {
	case OpPing, OpStats, OpSolve, OpRefactorize:
		return true
	}
	return false
}

// String names the operation for logs and reports.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpFactorize:
		return "factorize"
	case OpRefactorize:
		return "refactorize"
	case OpSolve:
		return "solve"
	case OpFree:
		return "free"
	case OpStats:
		return "stats"
	}
	return "unknown"
}

// Request is the client-to-server message. Which fields are meaningful
// depends on Op; unused fields stay zero and cost nothing on the wire.
type Request struct {
	Op Op

	// OpFactorize: the matrix and analysis options. Also accepted by
	// OpRefactorize as the full-matrix form.
	Matrix *sstar.Matrix
	Opts   sstar.Options

	// OpRefactorize, OpSolve, OpFree: the target factorization.
	Handle uint64

	// OpRefactorize values-only fast path: new values for the handle's
	// pattern, in the same CSR entry order as the originally submitted
	// matrix. Ignored when Matrix is set.
	Values []float64

	// OpSolve: the right-hand side.
	B []float64

	// TimeoutNs is the request's deadline header: the client's remaining
	// time budget, in nanoseconds, measured at send time (relative, so no
	// clock synchronization is assumed). Zero means no deadline. The server
	// sheds the request with CodeOverloaded instead of running it when its
	// queue wait alone would exceed the budget — work that cannot finish in
	// time is refused early rather than executed late.
	TimeoutNs int64
}

// RequestStats is the per-request cost split the server reports with every
// response: where the time went and whether the analysis cache served the
// structure.
type RequestStats struct {
	// QueueNs is the time the request waited for a worker.
	QueueNs int64
	// AnalyzeNs is the analyze-phase time (≈0 on a cache hit, which only
	// pays an exact pattern comparison).
	AnalyzeNs int64
	// FactorNs is the numeric factorization time.
	FactorNs int64
	// SolveNs is the triangular-solve time.
	SolveNs int64
	// CacheHit reports whether OpFactorize found the structure's analysis
	// in the cache.
	CacheHit bool
	// Workers is the server's request-level worker pool size, reported so
	// clients can attribute the cost split: QueueNs grows with
	// Workers too small, FactorNs shrinks with FactorWorkers.
	Workers int
	// FactorWorkers is the goroutine count the numeric factor phase of
	// this request ran with (the server's core-split knob; meaningful for
	// factorize and refactorize).
	FactorWorkers int
}

// ServerStats is a snapshot of the server's counters.
type ServerStats struct {
	Requests     int64 // requests processed (all ops)
	Errors       int64 // requests answered with an error
	Factorizes   int64
	Refactorizes int64
	Solves       int64
	CacheHits    int64 // analysis cache hits (OpFactorize only)
	CacheMisses  int64
	CacheEntries int // live cached analyses
	Handles      int // live factorization handles
	Workers      int
	// FactorWorkers is the per-request factor-phase goroutine count — the
	// other half of the Workers × FactorWorkers core split.
	FactorWorkers int
	QueueDepth    int // requests waiting for a worker at snapshot time
	// Sheds counts requests refused by admission control: their queue wait
	// exceeded (or would exceed) the deadline they carried, or the server
	// was shutting down. A shed request was never executed.
	Sheds int64
	// Evictions counts handles removed by the registry's memory budget
	// (LRU) or idle TTL rather than by an explicit Free.
	Evictions int64
	// HandleBytes estimates the memory held by live handles (factor
	// storage plus retained pattern), the quantity the MemBudget bounds.
	HandleBytes int64
}

// HitRate returns the analysis-cache hit rate in [0,1], 0 when no factorize
// request has been seen.
func (s ServerStats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Code classifies a failed Response so clients can branch on the failure
// class (retry, re-factorize, give up) without parsing the message string.
// CodeNone marks both successes and legacy/uncategorized errors.
type Code uint8

// Failure classes of the service protocol.
const (
	CodeNone       Code = 0 // success, or an error with no class (message only)
	CodeSingular   Code = 1 // the submitted values are numerically singular
	CodeBadHandle  Code = 2 // unknown handle: never created, freed, or a pre-restart handle
	CodeOverloaded Code = 3 // shed before execution (deadline would expire in queue, or shutdown)
	CodeEvicted    Code = 4 // handle evicted by the memory budget or TTL; factors are gone
	CodeInternal   Code = 5 // recovered panic inside the server
)

// Sentinel returns the root-package sentinel error of the code, nil for
// CodeNone or an unknown code.
func (c Code) Sentinel() error {
	switch c {
	case CodeSingular:
		return sstar.ErrSingular
	case CodeBadHandle:
		return sstar.ErrBadHandle
	case CodeOverloaded:
		return sstar.ErrOverloaded
	case CodeEvicted:
		return sstar.ErrHandleEvicted
	case CodeInternal:
		return sstar.ErrInternal
	}
	return nil
}

// String names the code for logs.
func (c Code) String() string {
	switch c {
	case CodeNone:
		return "none"
	case CodeSingular:
		return "singular"
	case CodeBadHandle:
		return "bad-handle"
	case CodeOverloaded:
		return "overloaded"
	case CodeEvicted:
		return "evicted"
	case CodeInternal:
		return "internal"
	}
	return "unknown"
}

// CodeOf classifies an error by unwrapping to the root-package sentinels —
// the inverse of Code.Sentinel, applied by the server when it builds an error
// response.
func CodeOf(err error) Code {
	switch {
	case err == nil:
		return CodeNone
	case errors.Is(err, sstar.ErrSingular):
		return CodeSingular
	case errors.Is(err, sstar.ErrBadHandle):
		return CodeBadHandle
	case errors.Is(err, sstar.ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, sstar.ErrHandleEvicted):
		return CodeEvicted
	case errors.Is(err, sstar.ErrInternal):
		return CodeInternal
	}
	return CodeNone
}

// RemoteError is a failed Response rehydrated on the client side: the
// server's message verbatim plus its failure class. errors.Is matches it
// against the root-package sentinel of its code, so a remote singular matrix
// satisfies errors.Is(err, sstar.ErrSingular) exactly like a local one.
type RemoteError struct {
	Code Code
	Msg  string
}

// Error returns the server's message.
func (e *RemoteError) Error() string { return e.Msg }

// Is reports whether target is the sentinel of the error's code.
func (e *RemoteError) Is(target error) bool {
	s := e.Code.Sentinel()
	return s != nil && target == s
}

// Response is the server-to-client message. A non-empty Err means the
// request failed; every other field is op-dependent.
type Response struct {
	Err    string
	Code   Code         // failure class of Err (CodeNone for legacy/uncategorized errors)
	Handle uint64       // OpFactorize: the new handle
	N      int          // OpFactorize: matrix order (client-side convenience)
	Nnz    int          // OpFactorize: pattern nonzeros (= required Values length for the fast path)
	X      []float64    // OpSolve: the solution
	Stats  RequestStats // cost split of this request
	Server ServerStats  // OpStats
}

// Error returns the response's failure as a *RemoteError, nil on success.
func (r *Response) Error() error {
	if r.Err == "" {
		return nil
	}
	return &RemoteError{Code: r.Code, Msg: r.Err}
}
