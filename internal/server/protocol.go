// Package server implements the sparse-solve service: a long-running server
// that factorizes and solves client-submitted systems over a length-prefixed
// binary protocol (internal/wire frames carrying gob messages) on TCP or
// Unix sockets.
//
// The serving model follows the paper's central property: the George–Ng
// static symbolic analysis is valid for *any* pivot sequence, hence for any
// values sharing a nonzero pattern. The server therefore keeps an LRU cache
// of analyses keyed by structure hash — the canonical workload (many solves,
// few patterns: time stepping, Newton iterations, parameter sweeps) pays for
// ordering + symbolic factorization + partitioning once per pattern, and a
// values-only Refactorize fast path skips even the pattern transfer.
//
// Protocol: after connecting, the client sends a Hello frame and the server
// answers with its own. From then on the client sends Request frames and
// reads one Response frame per request, in order. All payloads are gob.
package server

import (
	"errors"

	"sstar"
)

// Protocol identification, exchanged in the Hello frame of each side.
const (
	ProtoMagic   = "sstar-rpc"
	ProtoVersion = 1
)

// Frame type bytes of the service protocol.
const (
	FrameHello    byte = 0x01
	FrameRequest  byte = 0x02
	FrameResponse byte = 0x03
)

// Hello opens a connection in both directions.
type Hello struct {
	Magic   string
	Version int
}

// Op selects the operation of a Request.
type Op uint8

// Operations of the service protocol.
const (
	OpPing        Op = 1 // liveness check, empty response
	OpFactorize   Op = 2 // Matrix+Opts -> Handle (analysis served from cache when the structure is known)
	OpRefactorize Op = 3 // Handle+Values (fast path) or Handle+Matrix -> new factors under the same handle
	OpSolve       Op = 4 // Handle+B -> X
	OpFree        Op = 5 // Handle -> release the factorization
	OpStats       Op = 6 // -> ServerStats snapshot

	// OpSolveMany solves Handle against NRHS right-hand sides stored
	// column-major in B (len(B) = N*NRHS) through the blocked BLAS-3 panel
	// path; X comes back in the same layout. The cluster router splits
	// these across the shards holding replicas of the factors
	// (scatter/gather) when the panel is wide enough.
	OpSolveMany Op = 7

	// OpReplicate is the shard-to-shard replication message: install (or
	// refresh) Blob — a factorization in the sstar Save format — under
	// Handle with structure Key and the pattern carried in Matrix, marking
	// it a replica. Idempotent: re-installing the same handle replaces the
	// factors. Single-node servers accept it too, which is what makes a
	// replica promotable without a mode switch.
	OpReplicate Op = 8

	// OpReplicateAnalysis replicates one analysis-cache entry: Blob is an
	// Analysis in the sstar Save format, inserted into the receiver's
	// structure-keyed cache so a failover factorize on the successor shard
	// is a cache hit, not a cold analyze.
	OpReplicateAnalysis Op = 9

	// OpMembership is the cluster heartbeat and view exchange: the sender's
	// membership epoch and member list ride in Epoch/Members (with Addr
	// naming the sender), the receiver merges them into its own view and
	// answers with the merged epoch and member list. Join/Leave mark the
	// request as an explicit intent: add (or remove) Addr and bump the
	// epoch, whatever the sender's epoch says — this is what lets a
	// fresh low-epoch joiner enter a long-running ring. Additive: a
	// standalone server (no cluster hooks) answers it with a typed error.
	OpMembership Op = 10

	// OpManifest asks for the receiver's handle manifest — one entry per
	// live factorization (handle id, structure key, values-epoch, replica
	// flag). The anti-entropy repair sweep diffs manifests against ring
	// placement to find missing, stale, or stray copies.
	OpManifest Op = 11
)

// Idempotent reports whether repeating the operation after an ambiguous
// transport failure is safe: executing it twice yields the same server state
// and the same answer. Factorize is excluded (each execution allocates a new
// handle) and so is Free (a repeat answers "unknown handle"). The client's
// retry policy and its stale-connection redial consult this — a shed
// (CodeOverloaded) is retry-safe for every op because the server guarantees a
// shed request never executed.
func (o Op) Idempotent() bool {
	switch o {
	case OpPing, OpStats, OpSolve, OpSolveMany, OpRefactorize, OpReplicate, OpReplicateAnalysis,
		OpMembership, OpManifest:
		return true
	}
	return false
}

// String names the operation for logs and reports.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpFactorize:
		return "factorize"
	case OpRefactorize:
		return "refactorize"
	case OpSolve:
		return "solve"
	case OpFree:
		return "free"
	case OpStats:
		return "stats"
	case OpSolveMany:
		return "solve-many"
	case OpReplicate:
		return "replicate"
	case OpReplicateAnalysis:
		return "replicate-analysis"
	case OpMembership:
		return "membership"
	case OpManifest:
		return "manifest"
	}
	return "unknown"
}

// Request is the client-to-server message. Which fields are meaningful
// depends on Op; unused fields stay zero and cost nothing on the wire.
type Request struct {
	Op Op

	// OpFactorize: the matrix and analysis options. Also accepted by
	// OpRefactorize as the full-matrix form.
	Matrix *sstar.Matrix
	Opts   sstar.Options

	// OpRefactorize, OpSolve, OpFree: the target factorization.
	Handle uint64

	// OpRefactorize values-only fast path: new values for the handle's
	// pattern, in the same CSR entry order as the originally submitted
	// matrix. Ignored when Matrix is set.
	Values []float64

	// OpSolve: the right-hand side.
	B []float64

	// TimeoutNs is the request's deadline header: the client's remaining
	// time budget, in nanoseconds, measured at send time (relative, so no
	// clock synchronization is assumed). Zero means no deadline. The server
	// sheds the request with CodeOverloaded instead of running it when its
	// queue wait alone would exceed the budget — work that cannot finish in
	// time is refused early rather than executed late.
	TimeoutNs int64

	// Key is the structure key of the handle's matrix, stamped on handle
	// operations (solve, refactorize, free) by topology-aware clients. A
	// cluster shard that holds neither the handle nor a replica uses it to
	// answer CodeNotOwner with the owning shard's address instead of the
	// less actionable CodeBadHandle. Zero means no hint.
	Key uint64

	// NRHS is the column count of OpSolveMany's B (len(B) = N*NRHS,
	// column-major).
	NRHS int

	// Blob carries the replication payload of OpReplicate (a factorization
	// in the sstar Save format) or OpReplicateAnalysis (an analysis in the
	// sstar analysis Save format). For OpReplicate, Matrix carries the
	// retained CSR pattern (values unused) and Handle/Key the identity the
	// replica installs under.
	Blob []byte

	// Tenant names the requester for the server's weighted fair scheduler
	// and per-tenant accounting. An additive gob field: requests from
	// clients that predate it decode with Tenant empty and are admitted
	// under DefaultTenant. Purely a QoS identity — it never changes what a
	// request computes.
	Tenant string

	// Epoch and Members carry the sender's membership view on
	// OpMembership. Additive gob fields: peers that predate them decode
	// zero values, which merge as "no information".
	Epoch   uint64
	Members []string

	// Addr is the sender's advertised address on OpMembership — the
	// identity heartbeats ack under and the member a Join/Leave intent
	// adds or removes.
	Addr string

	// Join and Leave mark an OpMembership request as an explicit
	// membership intent for Addr rather than a plain view exchange.
	Join  bool
	Leave bool

	// ValEpoch is the values-epoch of an OpReplicate push: a per-handle
	// counter starting at 1 on factorize and incremented on every
	// refactorize. A receiver holding a strictly newer values-epoch for
	// the handle ignores the push (answering success), so a delayed
	// replication message can never roll factors back. Zero (an old peer)
	// is treated as 1.
	ValEpoch uint64
}

// ManifestEntry describes one live factorization in a shard's manifest: the
// identity the repair sweep needs to decide whether a copy is missing, stale,
// or stray — never the factors themselves.
type ManifestEntry struct {
	Handle   uint64
	Key      uint64 // structure key (ring placement input)
	ValEpoch uint64 // values-epoch of the installed factors
	Replica  bool   // installed by replication rather than factorized locally
}

// DefaultTenant is the tenant requests without a Tenant field (old peers,
// unconfigured clients) are admitted and accounted under.
const DefaultTenant = "default"

// RequestStats is the per-request cost split the server reports with every
// response: where the time went and whether the analysis cache served the
// structure.
type RequestStats struct {
	// QueueNs is the time the request waited for a worker.
	QueueNs int64
	// AnalyzeNs is the analyze-phase time (≈0 on a cache hit, which only
	// pays an exact pattern comparison).
	AnalyzeNs int64
	// FactorNs is the numeric factorization time.
	FactorNs int64
	// SolveNs is the triangular-solve time.
	SolveNs int64
	// CacheHit reports whether OpFactorize found the structure's analysis
	// in the cache.
	CacheHit bool
	// Patched reports that the analysis was derived incrementally from a
	// cached near-miss structure (Analysis.Patch) instead of computed from
	// scratch — a cold key that did not pay a full analyze.
	Patched bool
	// Workers is the server's request-level worker pool size, reported so
	// clients can attribute the cost split: QueueNs grows with
	// Workers too small, FactorNs shrinks with FactorWorkers.
	Workers int
	// FactorWorkers is the goroutine count the numeric factor phase of
	// this request ran with (the server's core-split knob; meaningful for
	// factorize and refactorize).
	FactorWorkers int
	// BatchWidth is the number of solve requests the server coalesced into
	// the one batched triangular solve this request rode in (1 = solved
	// alone, 0 on non-solve ops and servers predating coalescing). The
	// answer is bitwise identical at any width; the width only explains
	// where the throughput came from.
	BatchWidth int
}

// TenantStats is one tenant's slice of the server counters.
type TenantStats struct {
	// Requests counts this tenant's submissions (including sheds).
	Requests int64
	// Sheds counts this tenant's requests refused by admission control.
	Sheds int64
	// Queued is the tenant's backlog at snapshot time.
	Queued int
	// Weight is the tenant's fair-share weight in the scheduler.
	Weight int
}

// ServerStats is a snapshot of the server's counters.
type ServerStats struct {
	Requests     int64 // requests processed (all ops)
	Errors       int64 // requests answered with an error
	Factorizes   int64
	Refactorizes int64
	Solves       int64
	CacheHits    int64 // analysis cache hits (OpFactorize only)
	CacheMisses  int64
	CacheEntries int // live cached analyses
	Handles      int // live factorization handles
	Workers      int
	// FactorWorkers is the per-request factor-phase goroutine count — the
	// other half of the Workers × FactorWorkers core split.
	FactorWorkers int
	QueueDepth    int // requests waiting for a worker at snapshot time
	// Sheds counts requests refused by admission control: their queue wait
	// exceeded (or would exceed) the deadline they carried, or the server
	// was shutting down. A shed request was never executed.
	Sheds int64
	// Evictions counts handles removed by the registry's memory budget
	// (LRU) or idle TTL rather than by an explicit Free.
	Evictions int64
	// HandleBytes estimates the memory held by live handles (factor
	// storage plus retained pattern), the quantity the MemBudget bounds.
	HandleBytes int64
	// Coalesced counts factorize requests whose cold analysis was merged
	// into a concurrent identical computation by the singleflight: a
	// thundering herd on a new structure computes the symbolic analysis
	// once, and every other herd member counts here.
	Coalesced int64
	// Patches counts cache misses served by incrementally patching a
	// near-miss cached analysis instead of a full analyze; PatchFallbacks
	// counts near-miss candidates where the incremental path refused (diff
	// over budget, lost diagonal) and a full analyze ran after all.
	Patches        int64
	PatchFallbacks int64

	// CoalescedSolves counts solve requests that rode in a batched solve
	// with at least one companion; SolveBatches counts the batched calls
	// (width >= 2) they were merged into. Both zero when coalescing is
	// disabled.
	CoalescedSolves int64
	SolveBatches    int64
	// Tenants is the per-tenant counter breakdown, keyed by tenant name
	// (DefaultTenant for requests that carried none). Additive gob field:
	// old clients decode snapshots without it unchanged.
	Tenants map[string]TenantStats

	// Cluster fields — zero on a standalone server. On a shard they
	// describe that shard; on a stats response aggregated by the router
	// they are fleet-wide sums plus the router's own counters.
	//
	// Shards is the cluster size as seen by the reporting process.
	Shards int
	// Redirects counts requests answered with CodeRedirect/CodeNotOwner:
	// work refused because placement says it belongs elsewhere.
	Redirects int64
	// Replications counts replica pushes acknowledged by the successor
	// shard (factor blobs and analysis entries alike).
	Replications int64
	// ReplicationPending is the replication queue depth: writes whose
	// replica the successor has not yet acknowledged (the lag a failover
	// at this instant would expose).
	ReplicationPending int
	// ReplicaHandles is how many of Handles are replicas installed by a
	// peer shard rather than factorized locally.
	ReplicaHandles int
	// Failovers counts handle operations the router completed on a replica
	// after the owner failed — each one is a solve that survived a shard
	// death without refactorizing.
	Failovers int64
	// Scatters counts SolveMany requests the router split across the
	// shards holding replicas (scatter/gather).
	Scatters int64

	// Self-healing membership fields — zero on a standalone server and on
	// fleets predating dynamic membership.
	//
	// Epoch is the membership epoch of the reporting shard's ring view
	// (routers report the highest epoch they have seen).
	Epoch uint64
	// Promotions counts replica handles this shard flipped to owned after
	// a membership change moved their key onto it (owner death or leave).
	Promotions int64
	// Demotions counts owned handles flipped back to replica after their
	// key moved away (typically the previous owner rejoining).
	Demotions int64
	// RepairPushes counts factor copies the anti-entropy sweep pushed to
	// restore placement (missing or stale copies on the responsible
	// shards, strays returned to their owner).
	RepairPushes int64
	// RepairDrops counts stray handles the sweep released after their
	// copies were confirmed on the responsible shards twice in a row.
	RepairDrops int64
	// StaleReplicas counts replication pushes refused because the
	// receiver already held a strictly newer values-epoch for the handle.
	StaleReplicas int64
}

// HitRate returns the analysis-cache hit rate in [0,1], 0 when no factorize
// request has been seen.
func (s ServerStats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Code classifies a failed Response so clients can branch on the failure
// class (retry, re-factorize, give up) without parsing the message string.
// CodeNone marks both successes and legacy/uncategorized errors.
type Code uint8

// Failure classes of the service protocol.
const (
	CodeNone       Code = 0 // success, or an error with no class (message only)
	CodeSingular   Code = 1 // the submitted values are numerically singular
	CodeBadHandle  Code = 2 // unknown handle: never created, freed, or a pre-restart handle
	CodeOverloaded Code = 3 // shed before execution (deadline would expire in queue, or shutdown)
	CodeEvicted    Code = 4 // handle evicted by the memory budget or TTL; factors are gone
	CodeInternal   Code = 5 // recovered panic inside the server

	// CodeRedirect: a factorize reached a shard that does not own the
	// structure. Never executed; Response.Addr names the owner. Clients
	// re-send there (retry-with-new-target, not a failure).
	CodeRedirect Code = 6
	// CodeNotOwner: a handle operation reached a shard holding neither the
	// handle nor a replica. Never executed; Response.Addr names the owner
	// when the request carried a structure key.
	CodeNotOwner Code = 7
	// CodeAmbiguous: a non-idempotent request was delivered to a shard but
	// the connection died before the answer — the operation may or may not
	// have executed. Stamped only by the router (a server always knows its
	// own outcome); never safe to retry blindly.
	CodeAmbiguous Code = 8
)

// Sentinel returns the root-package sentinel error of the code, nil for
// CodeNone or an unknown code.
func (c Code) Sentinel() error {
	switch c {
	case CodeSingular:
		return sstar.ErrSingular
	case CodeBadHandle:
		return sstar.ErrBadHandle
	case CodeOverloaded:
		return sstar.ErrOverloaded
	case CodeEvicted:
		return sstar.ErrHandleEvicted
	case CodeInternal:
		return sstar.ErrInternal
	case CodeRedirect:
		return sstar.ErrRedirect
	case CodeNotOwner:
		return sstar.ErrNotOwner
	case CodeAmbiguous:
		return sstar.ErrAmbiguous
	}
	return nil
}

// String names the code for logs.
func (c Code) String() string {
	switch c {
	case CodeNone:
		return "none"
	case CodeSingular:
		return "singular"
	case CodeBadHandle:
		return "bad-handle"
	case CodeOverloaded:
		return "overloaded"
	case CodeEvicted:
		return "evicted"
	case CodeInternal:
		return "internal"
	case CodeRedirect:
		return "redirect"
	case CodeNotOwner:
		return "not-owner"
	case CodeAmbiguous:
		return "ambiguous"
	}
	return "unknown"
}

// CodeOf classifies an error by unwrapping to the root-package sentinels —
// the inverse of Code.Sentinel, applied by the server when it builds an error
// response.
func CodeOf(err error) Code {
	switch {
	case err == nil:
		return CodeNone
	case errors.Is(err, sstar.ErrSingular):
		return CodeSingular
	case errors.Is(err, sstar.ErrBadHandle):
		return CodeBadHandle
	case errors.Is(err, sstar.ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, sstar.ErrHandleEvicted):
		return CodeEvicted
	case errors.Is(err, sstar.ErrInternal):
		return CodeInternal
	case errors.Is(err, sstar.ErrRedirect):
		return CodeRedirect
	case errors.Is(err, sstar.ErrNotOwner):
		return CodeNotOwner
	case errors.Is(err, sstar.ErrAmbiguous):
		return CodeAmbiguous
	}
	return CodeNone
}

// RemoteError is a failed Response rehydrated on the client side: the
// server's message verbatim plus its failure class. errors.Is matches it
// against the root-package sentinel of its code, so a remote singular matrix
// satisfies errors.Is(err, sstar.ErrSingular) exactly like a local one.
type RemoteError struct {
	Code Code
	Msg  string
}

// Error returns the server's message.
func (e *RemoteError) Error() string { return e.Msg }

// Is reports whether target is the sentinel of the error's code.
func (e *RemoteError) Is(target error) bool {
	s := e.Code.Sentinel()
	return s != nil && target == s
}

// Response is the server-to-client message. A non-empty Err means the
// request failed; every other field is op-dependent. The cluster fields
// (Addr, Replica, Key) are additive gob fields, so v2-frame clients that
// predate them decode responses unchanged — backward compatibility is what
// lets a mixed fleet upgrade shard by shard.
type Response struct {
	Err    string
	Code   Code         // failure class of Err (CodeNone for legacy/uncategorized errors)
	Handle uint64       // OpFactorize: the new handle
	N      int          // OpFactorize: matrix order (client-side convenience)
	Nnz    int          // OpFactorize: pattern nonzeros (= required Values length for the fast path)
	X      []float64    // OpSolve/OpSolveMany: the solution(s)
	Stats  RequestStats // cost split of this request
	Server ServerStats  // OpStats

	// Addr is cluster placement: on a CodeRedirect/CodeNotOwner failure,
	// the shard that owns the structure/handle; on a successful factorize
	// from a cluster shard, the advertised address of the shard that now
	// holds the factors — clients go shard-direct from then on.
	Addr string
	// Replica is the shard holding (or about to hold — replication is
	// asynchronous) the factor replica of a successful factorize.
	Replica string
	// Key is the structure key of a successful factorize, stamped so
	// clients can hint later handle operations (Request.Key) and routers
	// can place without re-hashing.
	Key uint64

	// Epoch is the responder's membership epoch, stamped on OpMembership
	// answers and on redirect refusals (CodeRedirect/CodeNotOwner) so
	// routers and clients can tell a placement disagreement caused by a
	// membership change from a genuine misroute — and refresh their ring
	// instead of failing over blindly. Additive gob field.
	Epoch uint64
	// Members is the responder's member list on OpMembership.
	Members []string
	// Manifest is the responder's handle manifest on OpManifest.
	Manifest []ManifestEntry
}

// Error returns the response's failure as a *RemoteError, nil on success.
func (r *Response) Error() error {
	if r.Err == "" {
		return nil
	}
	return &RemoteError{Code: r.Code, Msg: r.Err}
}
