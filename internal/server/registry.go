package server

import (
	"container/list"
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"sstar"
)

// handle is a live factorization owned by the registry. The RWMutex
// serializes refactorizations (which swap the numeric factors) against
// concurrent solves on the same handle.
type handle struct {
	mu     sync.RWMutex
	f      *sstar.Factorization
	n      int
	rowPtr []int // pattern of the originally submitted matrix, kept for
	colInd []int // the values-only refactorize fast path
	// key is the structure key of the handle's matrix, retained so cluster
	// shards can re-replicate after a refactorize without re-hashing.
	key uint64
	// replica marks a handle installed by a peer shard's replication push
	// rather than factorized locally. Replicas serve solves identically;
	// the flag feeds the per-shard ownership gauges and the free-forwarding
	// rule, and the repair sweep flips it on promotion/demotion.
	replica bool
	// valEpoch is the values-epoch of the installed factors: 1 at
	// factorize, incremented under mu on every refactorize, carried by
	// replication pushes so a stale (delayed) push can never roll newer
	// factors back.
	valEpoch uint64
}

// bytes estimates the memory the handle pins: the block factor storage
// (values plus roughly one index word per entry) and the retained CSR
// pattern. An estimate is enough — the budget is a shedding threshold, not an
// allocator.
func (h *handle) bytes() int64 {
	return h.f.FillIn()*12 + int64(len(h.rowPtr)+len(h.colInd))*8
}

// maxTombstones bounds the evicted-id memory. Ids are monotone and never
// reused, so a tombstone only exists to answer "evicted" instead of "unknown"
// — beyond the bound the oldest evictions degrade to ErrBadHandle, which is
// still a correct (if less precise) refusal.
const maxTombstones = 4096

// registry owns the live factorization handles and enforces the server's
// retention policy:
//
//   - a memory budget (bytes, estimated per handle): inserting a handle that
//     pushes the total over budget evicts least-recently-used handles first;
//   - an idle TTL: handles untouched for the TTL are evicted by the server's
//     sweeper.
//
// Eviction only unlinks the handle from the registry — an in-flight solve
// holding the handle's lock finishes on its own reference and the garbage
// collector reclaims the factors afterwards, so eviction never blocks behind
// a running request. Evicted ids are remembered as tombstones (bounded) so
// later operations on them fail with ErrHandleEvicted rather than the less
// actionable ErrBadHandle.
type registry struct {
	mu     sync.Mutex
	budget int64         // max estimated bytes; 0 = unlimited
	ttl    time.Duration // idle eviction age; 0 = no TTL

	next  uint64
	live  map[uint64]*list.Element
	ll    *list.List // front = most recently used
	bytes int64

	evictions int64
	tombs     map[uint64]struct{}
	tombQ     []uint64 // FIFO of tombstone ids for bounding

	clock func() time.Time // injectable for tests
}

// regEntry is one live handle on the LRU list.
type regEntry struct {
	id       uint64
	h        *handle
	bytes    int64
	lastUsed time.Time
}

func newRegistry(budget int64, ttl time.Duration) *registry {
	r := &registry{
		budget: budget,
		ttl:    ttl,
		live:   make(map[uint64]*list.Element),
		ll:     list.New(),
		tombs:  make(map[uint64]struct{}),
		clock:  time.Now,
	}
	// Ids start at a random per-instance base (monotone from there). If they
	// started at 1, a server restart would hand out the same ids again and a
	// client still holding handles from the previous instance could silently
	// solve against the wrong factors; with a random base a stale handle
	// fails typed (ErrBadHandle) instead.
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err == nil {
		r.next = binary.BigEndian.Uint64(b[:]) >> 2 // headroom: ids stay monotone
	}
	return r
}

// add registers h and returns its new id, evicting LRU handles if the budget
// is now exceeded. The inserted handle itself is never evicted by its own
// insertion — a single system larger than the whole budget still factorizes;
// it just evicts everything idle around it.
func (r *registry) add(h *handle) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	id := r.next
	el := r.ll.PushFront(&regEntry{id: id, h: h, bytes: h.bytes(), lastUsed: r.clock()})
	r.live[id] = el
	r.bytes += el.Value.(*regEntry).bytes
	if r.budget > 0 {
		for r.bytes > r.budget && r.ll.Len() > 1 {
			r.evict(r.ll.Back())
		}
	}
	return id
}

// put installs h under a caller-chosen id — the replication path: a replica
// carries the id its owner shard allocated, so a failover solve addresses the
// same handle on the successor. Re-installing an existing id replaces the
// factors in place (re-replication after a refactorize) and untombstones it:
// a fresh replication push supersedes an earlier eviction. Eviction policy
// applies exactly as in add.
func (r *registry) put(id uint64, h *handle) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.live[id]; ok {
		e := el.Value.(*regEntry)
		// Values-epoch guard inside the registry lock: the caller's
		// staleness check races with concurrent installs, so the
		// authoritative comparison happens here — an older push never
		// replaces newer factors.
		e.h.mu.RLock()
		newer := e.h.valEpoch > h.valEpoch
		e.h.mu.RUnlock()
		if newer {
			return
		}
		r.bytes -= e.bytes
		e.h, e.bytes, e.lastUsed = h, h.bytes(), r.clock()
		r.bytes += e.bytes
		r.ll.MoveToFront(el)
		return
	}
	delete(r.tombs, id)
	el := r.ll.PushFront(&regEntry{id: id, h: h, bytes: h.bytes(), lastUsed: r.clock()})
	r.live[id] = el
	r.bytes += el.Value.(*regEntry).bytes
	if r.budget > 0 {
		for r.bytes > r.budget && r.ll.Len() > 1 {
			r.evict(r.ll.Back())
		}
	}
}

// contains reports whether id is live, without touching the LRU order.
func (r *registry) contains(id uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.live[id]
	return ok
}

// manifest snapshots every live handle's placement identity (id, structure
// key, values-epoch, replica flag) without touching the LRU order — the
// repair sweep must not keep strays artificially warm.
func (r *registry) manifest() []ManifestEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ManifestEntry, 0, len(r.live))
	for id, el := range r.live {
		h := el.Value.(*regEntry).h
		h.mu.RLock()
		out = append(out, ManifestEntry{Handle: id, Key: h.key, ValEpoch: h.valEpoch, Replica: h.replica})
		h.mu.RUnlock()
	}
	return out
}

// valEpochOf returns the live handle's values-epoch (0, false when id is not
// live). Used to refuse stale replication pushes.
func (r *registry) valEpochOf(id uint64) (uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.live[id]
	if !ok {
		return 0, false
	}
	h := el.Value.(*regEntry).h
	h.mu.RLock()
	e := h.valEpoch
	h.mu.RUnlock()
	return e, true
}

// setRole flips a live handle's replica flag (false = owned). Returns whether
// the id was live and the flag actually changed — the promotion/demotion
// counters only count real transitions.
func (r *registry) setRole(id uint64, replica bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.live[id]
	if !ok {
		return false
	}
	h := el.Value.(*regEntry).h
	h.mu.Lock()
	changed := h.replica != replica
	h.replica = replica
	h.mu.Unlock()
	return changed
}

// drop removes a live handle without a tombstone and without an error — the
// repair sweep releasing a stray whose copies are confirmed elsewhere. A
// later operation on the id redirects by placement (the shard layer) or fails
// ErrBadHandle, both truthful.
func (r *registry) drop(id uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.live[id]
	if !ok {
		return false
	}
	e := el.Value.(*regEntry)
	r.ll.Remove(el)
	delete(r.live, id)
	r.bytes -= e.bytes
	return true
}

// replicaCount returns how many live handles are replication installs.
func (r *registry) replicaCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, el := range r.live {
		if el.Value.(*regEntry).h.replica {
			n++
		}
	}
	return n
}

// get returns the handle for id, marking it most recently used. A missing id
// is classified: evicted ids (while tombstoned) fail with ErrHandleEvicted,
// everything else with ErrBadHandle.
func (r *registry) get(id uint64) (*handle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.live[id]; ok {
		e := el.Value.(*regEntry)
		e.lastUsed = r.clock()
		r.ll.MoveToFront(el)
		return e.h, nil
	}
	if _, ok := r.tombs[id]; ok {
		return nil, fmt.Errorf("%w (handle %d)", sstar.ErrHandleEvicted, id)
	}
	return nil, fmt.Errorf("%w %d", sstar.ErrBadHandle, id)
}

// free removes id on the owner's request. No tombstone is left — a freed
// handle is gone by design, and later use is a caller bug (ErrBadHandle).
func (r *registry) free(id uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.live[id]
	if !ok {
		if _, t := r.tombs[id]; t {
			return fmt.Errorf("%w (handle %d)", sstar.ErrHandleEvicted, id)
		}
		return fmt.Errorf("%w %d", sstar.ErrBadHandle, id)
	}
	e := el.Value.(*regEntry)
	r.ll.Remove(el)
	delete(r.live, id)
	r.bytes -= e.bytes
	return nil
}

// sweep evicts every handle idle past the TTL. Called periodically by the
// server's sweeper goroutine; a no-op when no TTL is configured.
func (r *registry) sweep() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ttl <= 0 {
		return 0
	}
	cutoff := r.clock().Add(-r.ttl)
	n := 0
	for el := r.ll.Back(); el != nil; {
		e := el.Value.(*regEntry)
		if e.lastUsed.After(cutoff) {
			break // list is LRU-ordered: everything further front is younger
		}
		prev := el.Prev()
		r.evict(el)
		n++
		el = prev
	}
	return n
}

// evict unlinks el and tombstones its id. Caller holds r.mu.
func (r *registry) evict(el *list.Element) {
	e := el.Value.(*regEntry)
	r.ll.Remove(el)
	delete(r.live, e.id)
	r.bytes -= e.bytes
	r.evictions++
	r.tombs[e.id] = struct{}{}
	r.tombQ = append(r.tombQ, e.id)
	for len(r.tombQ) > maxTombstones {
		delete(r.tombs, r.tombQ[0])
		r.tombQ = r.tombQ[1:]
	}
}

// stats returns (live handles, estimated bytes, evictions so far).
func (r *registry) stats() (n int, bytes, evictions int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ll.Len(), r.bytes, r.evictions
}
