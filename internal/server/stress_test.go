package server_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"sstar"
	"sstar/client"
	"sstar/internal/server"
)

// TestConcurrentSolvesDuringRefactorize hammers one handle from several
// solving clients while another client keeps refactorizing it with new
// values, on a server whose factor phase itself runs multi-worker
// (FactorWorkers > 1). Run under -race this is the executor/server
// integration check: request-level and factor-level parallelism compose
// without data races, and every solve sees some complete set of factors —
// either the old values or the new ones, never a torn mix (verified by
// accepting a solve iff its residual is small against one of the value sets
// the refactorizer has published).
func TestConcurrentSolvesDuringRefactorize(t *testing.T) {
	addr := startServer(t, server.Config{Workers: 3, FactorWorkers: 2, CacheEntries: 4})

	a := sstar.GenGrid2D(12, 12, false, sstar.GenOptions{Seed: 500, Convection: 0.3})
	owner, err := client.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	h, st, err := owner.Factorize(context.Background(), a, sstar.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.FactorWorkers != 2 {
		t.Fatalf("factorize stats report %d factor workers, want 2", st.FactorWorkers)
	}
	if st.Workers != 3 {
		t.Fatalf("factorize stats report %d request workers, want 3", st.Workers)
	}

	// versions holds every value set the refactorizer has published; a solve
	// is correct if it matches any one of them (the server may serve either
	// side of an in-flight refactorize).
	var mu sync.Mutex
	versions := [][]float64{append([]float64(nil), a.Val...)}
	snapshot := func() [][]float64 {
		mu.Lock()
		defer mu.Unlock()
		return append([][]float64(nil), versions...)
	}

	const rounds = 20
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	// Refactorizer: publish the new values *before* sending the request so a
	// concurrent solve that observes them mid-flight still finds its match.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for r := 0; r < rounds; r++ {
			vals := append([]float64(nil), a.Val...)
			scale := 1 + 0.05*float64(r+1)
			for i := range vals {
				vals[i] *= scale
			}
			mu.Lock()
			versions = append(versions, vals)
			mu.Unlock()
			if _, err := h.Refactorize(context.Background(), vals); err != nil {
				errs <- err
				return
			}
		}
	}()

	// Solvers: the client's connection pool makes the shared handle safe to
	// hammer from several goroutines at once.
	for ci := 0; ci < 3; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			b := make([]float64, a.N)
			for i := range b {
				b[i] = float64((i+ci)%7) - 3
			}
			m := a.Clone()
			for !stop.Load() {
				x, _, err := h.Solve(context.Background(), b)
				if err != nil {
					errs <- err
					return
				}
				ok := false
				for _, vals := range snapshot() {
					copy(m.Val, vals)
					if sstar.Residual(m, x, b) < 1e-8 {
						ok = true
						break
					}
				}
				if !ok {
					errs <- fmt.Errorf("solver %d: solution matches no published value set (torn factors?)", ci)
					return
				}
			}
		}(ci)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	sstats, err := owner.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sstats.FactorWorkers != 2 {
		t.Fatalf("server stats report %d factor workers, want 2", sstats.FactorWorkers)
	}
	if err := h.Free(context.Background()); err != nil {
		t.Fatal(err)
	}
}
