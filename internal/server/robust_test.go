package server

import (
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sstar"
)

// slowMatrix is big enough that its factorization visibly occupies a worker.
func slowMatrix(seed int64) *sstar.Matrix {
	return sstar.GenGrid2D(64, 64, false, sstar.GenOptions{Seed: seed, Convection: 0.1})
}

func smallMatrix(seed int64) *sstar.Matrix {
	return sstar.GenGrid2D(8, 8, false, sstar.GenOptions{Seed: seed, Convection: 0.1})
}

// waitFactorizing blocks until at least n factorize requests have been picked
// up by workers (the factorizes counter increments on entry to doFactorize,
// so it is a "worker is busy now" signal, not a completion count).
func waitFactorizing(t *testing.T, s *Server, n int64) {
	t.Helper()
	for i := 0; s.factorizes.Load() < n; i++ {
		if i > 5000 {
			t.Fatalf("worker never started factorize %d", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionShedsExpiredDeadline: with a single busy worker, a queued
// request whose deadline passes while it waits is shed with CodeOverloaded —
// never executed — and the shed counter records it.
func TestAdmissionShedsExpiredDeadline(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	// Occupy the only worker with a factorize that takes real time.
	busy := make(chan *Response, 1)
	go func() {
		busy <- s.submit(&Request{Op: OpFactorize, Matrix: slowMatrix(1), Opts: sstar.DefaultOptions()})
	}()
	waitFactorizing(t, s, 1)

	// A deadline far smaller than the busy factorize: whether it expires in
	// the enqueue select or while queued, the request must never execute.
	resp := s.submit(&Request{Op: OpPing, TimeoutNs: int64(time.Millisecond)})
	if resp.Code != CodeOverloaded {
		t.Fatalf("expired-deadline request answered code %s (%q), want overloaded", resp.Code, resp.Err)
	}
	if err := resp.Error(); !errors.Is(err, sstar.ErrOverloaded) {
		t.Fatalf("errors.Is(ErrOverloaded) false for %v", err)
	}
	if b := <-busy; b.Err != "" {
		t.Fatalf("busy factorize failed: %s", b.Err)
	}
	if st := s.Stats(); st.Sheds == 0 {
		t.Fatalf("sheds counter %d, want > 0", st.Sheds)
	}

	// A request with no deadline still waits out the queue and succeeds.
	if resp := s.submit(&Request{Op: OpPing}); resp.Err != "" {
		t.Fatalf("deadline-free ping failed: %s", resp.Err)
	}
}

// TestAdmissionShedsOnFullQueue: when the queue itself cannot accept the
// request before its deadline, the request is refused at the door.
func TestAdmissionShedsOnFullQueue(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	var wg sync.WaitGroup
	// One job on the worker plus one in the queue fills the service.
	for i := int64(0); i < 2; i++ {
		wg.Add(1)
		go func(i int64) {
			defer wg.Done()
			s.submit(&Request{Op: OpFactorize, Matrix: slowMatrix(10 + i), Opts: sstar.DefaultOptions()})
		}(i)
	}
	waitFactorizing(t, s, 1)
	for i := 0; s.sched.depth() == 0; i++ {
		if i > 5000 {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	resp := s.submit(&Request{Op: OpPing, TimeoutNs: int64(2 * time.Millisecond)})
	if resp.Code != CodeOverloaded {
		t.Fatalf("full-queue request answered code %s (%q), want overloaded", resp.Code, resp.Err)
	}
	wg.Wait()
}

// TestHandleEvictionByMemBudget: a small budget keeps only the most recently
// used handles; evicted ones fail typed as evicted, and solves on survivors
// keep working.
func TestHandleEvictionByMemBudget(t *testing.T) {
	// One 8x8-grid handle is roughly 10-20 KiB of factors; a 64 KiB budget
	// holds a few of them, not ten.
	s := newTestServer(t, Config{Workers: 1, MemBudget: 64 << 10})
	var handles []uint64
	for i := int64(0); i < 10; i++ {
		m := sstar.GenGrid2D(8, 8+int(i), false, sstar.GenOptions{Seed: i})
		resp := s.submit(&Request{Op: OpFactorize, Matrix: m, Opts: sstar.DefaultOptions()})
		if resp.Err != "" {
			t.Fatal(resp.Err)
		}
		handles = append(handles, resp.Handle)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions with budget %d and %d handles (bytes %d)", s.cfg.MemBudget, len(handles), st.HandleBytes)
	}
	if st.HandleBytes > s.cfg.MemBudget {
		t.Fatalf("handle bytes %d exceed budget %d", st.HandleBytes, s.cfg.MemBudget)
	}
	// The oldest handle is evicted and says so.
	resp := s.submit(&Request{Op: OpSolve, Handle: handles[0], B: make([]float64, 64)})
	if resp.Code != CodeEvicted {
		t.Fatalf("evicted handle answered code %s (%q), want evicted", resp.Code, resp.Err)
	}
	if !errors.Is(resp.Error(), sstar.ErrHandleEvicted) {
		t.Fatalf("errors.Is(ErrHandleEvicted) false for %v", resp.Error())
	}
	// The newest survives and solves.
	resp = s.submit(&Request{Op: OpSolve, Handle: handles[9], B: make([]float64, 8*17)})
	if resp.Err != "" {
		t.Fatalf("most-recent handle evicted too: %s", resp.Err)
	}
	// A never-issued handle is distinguishable from an evicted one.
	resp = s.submit(&Request{Op: OpSolve, Handle: 99999, B: make([]float64, 64)})
	if resp.Code != CodeBadHandle {
		t.Fatalf("unknown handle answered code %s, want bad-handle", resp.Code)
	}
	if !errors.Is(resp.Error(), sstar.ErrBadHandle) {
		t.Fatalf("errors.Is(ErrBadHandle) false for %v", resp.Error())
	}
}

// TestHandleEvictionByTTL: an idle handle is swept after its TTL while a
// periodically touched one survives.
func TestHandleEvictionByTTL(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, HandleTTL: 80 * time.Millisecond})
	m := smallMatrix(1)
	idle := s.submit(&Request{Op: OpFactorize, Matrix: m, Opts: sstar.DefaultOptions()})
	kept := s.submit(&Request{Op: OpFactorize, Matrix: smallMatrix(2), Opts: sstar.DefaultOptions()})
	if idle.Err != "" || kept.Err != "" {
		t.Fatal(idle.Err, kept.Err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Handles > 1 {
		// Touching one handle every sweep period keeps it alive; the other is
		// never referenced again, so only the sweeper can remove it. (Probing
		// the idle handle would itself reset its idle clock.)
		if r := s.submit(&Request{Op: OpSolve, Handle: kept.Handle, B: make([]float64, m.N)}); r.Err != "" {
			t.Fatalf("touched handle evicted: %s", r.Err)
		}
		if time.Now().After(deadline) {
			t.Fatal("idle handle never evicted by TTL")
		}
		time.Sleep(20 * time.Millisecond)
	}
	r := s.submit(&Request{Op: OpSolve, Handle: idle.Handle, B: make([]float64, m.N)})
	if r.Code != CodeEvicted {
		t.Fatalf("idle handle answered code %s (%q), want evicted", r.Code, r.Err)
	}
	if r = s.submit(&Request{Op: OpSolve, Handle: kept.Handle, B: make([]float64, m.N)}); r.Err != "" {
		t.Fatalf("touched handle evicted: %s", r.Err)
	}
}

// TestGracefulCloseDrains: requests admitted before Close get their real
// responses; requests arriving after Close has begun are refused in-band
// with CodeOverloaded.
func TestGracefulCloseDrains(t *testing.T) {
	s := New(Config{Workers: 1})
	inflight := make(chan *Response, 1)
	go func() {
		inflight <- s.submit(&Request{Op: OpFactorize, Matrix: slowMatrix(5), Opts: sstar.DefaultOptions()})
	}()
	waitFactorizing(t, s, 1)
	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	resp := <-inflight
	if resp.Err != "" {
		t.Fatalf("in-flight factorize not drained: %s (%s)", resp.Err, resp.Code)
	}
	if resp.Handle == 0 {
		t.Fatal("drained factorize returned no handle")
	}
	<-closed
	// Post-close submissions are refused, typed, and do not hang.
	post := s.submit(&Request{Op: OpPing})
	if post.Code != CodeOverloaded {
		t.Fatalf("post-close request answered code %s (%q), want overloaded", post.Code, post.Err)
	}
	// Close is idempotent.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSingularTypedThroughProcess: a numerically singular matrix fails the
// factorize with CodeSingular, leaks no handle, and the panic counter stays
// untouched (singularity is an error path, not a recovered crash).
func TestSingularTypedThroughProcess(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	sing := &sstar.Matrix{
		N: 2, M: 2,
		RowPtr: []int{0, 2, 4},
		ColInd: []int{0, 1, 0, 1},
		Val:    []float64{1, 1, 1, 1}, // rank 1: the second pivot is exactly zero
	}
	resp := s.submit(&Request{Op: OpFactorize, Matrix: sing, Opts: sstar.DefaultOptions()})
	if resp.Err == "" {
		t.Fatal("singular matrix factorized")
	}
	if resp.Code != CodeSingular {
		t.Fatalf("singular factorize answered code %s (%q), want singular", resp.Code, resp.Err)
	}
	if !errors.Is(resp.Error(), sstar.ErrSingular) {
		t.Fatalf("errors.Is(ErrSingular) false for %v", resp.Error())
	}
	st := s.Stats()
	if st.Handles != 0 {
		t.Fatalf("%d handles leaked by failed factorize", st.Handles)
	}
	if st.Errors != 1 {
		t.Fatalf("error counter %d, want 1", st.Errors)
	}
	if s.met.panics.Value() != 0 {
		t.Fatal("singularity counted as a panic")
	}
}

// TestShedAndEvictionCountersExposed: the new resilience counters are part
// of the /metrics contract.
func TestShedAndEvictionCountersExposed(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	rec := httptest.NewRecorder()
	s.AdminHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, name := range []string{
		"sstar_server_sheds_total",
		"sstar_server_handle_evictions_total",
		"sstar_server_handle_bytes",
	} {
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Fatalf("/metrics missing %s:\n%s", name, body)
		}
	}
}
