package cluster

import (
	"fmt"
	"time"

	"sstar"
	"sstar/internal/server"
)

// Default cadences of the self-healing loops. Heartbeats are cheap (one
// small gob exchange per peer); the repair sweep costs one manifest exchange
// per peer plus a local diff, so it runs an order of magnitude slower.
const (
	defaultHeartbeatInterval = 250 * time.Millisecond
	defaultRepairInterval    = 2 * time.Second
)

// kickRebalance wakes the repair goroutine for an immediate push-only sweep
// — the membership just changed, and the moved keys should re-replicate now
// rather than at the next periodic tick. Non-blocking: a kick during a
// running sweep coalesces into one more round.
func (sh *Shard) kickRebalance() {
	select {
	case sh.rebalance <- struct{}{}:
	default:
	}
}

// repairLoop alternates between kicked rebalances (membership changes:
// promote + push the moved keys, never drop — the view may still be
// converging) and periodic full sweeps (push and, with two-sweep
// confirmation, drop strays).
func (sh *Shard) repairLoop() {
	defer close(sh.repairDone)
	var tick <-chan time.Time
	if sh.cfg.RepairInterval > 0 {
		t := time.NewTicker(sh.cfg.RepairInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-sh.stop:
			return
		case <-sh.rebalance:
			sh.sweep(false)
		case <-tick:
			sh.sweep(true)
		}
	}
}

// sweep is one anti-entropy round: diff this shard's manifest against ring
// placement and the responsible peers' manifests, then
//
//   - promote replica entries whose key this shard now owns (and push any
//     successor that is missing or stale — restoring R copies after a
//     promotion is what closes the "promoted replica is singly-homed" gap);
//   - demote owned entries whose key moved away, once the new owner is
//     confirmed to hold factors at least as new (the rejoin-reversal path:
//     push first, demote after);
//   - push strays (entries on no responsible position) to every responsible
//     shard that lacks them, and — only with allowDrop, and only after the
//     copies were confirmed on two consecutive sweeps — release them.
//
// The sweep never drops anything it cannot prove is held elsewhere, and the
// push direction is always toward ring placement, so repeated sweeps
// monotonically converge the fleet to "every key on exactly its R
// responsible shards" (see DESIGN.md, "Self-healing membership").
func (sh *Shard) sweep(allowDrop bool) {
	s := sh.srv.Load()
	if s == nil {
		return
	}
	manifest := s.Manifest()
	_, members := sh.ring.View()

	// One manifest exchange per peer per sweep, not per key. A nil map
	// means the peer was unreachable: nothing can be confirmed against it
	// this round (pushes to it would fail anyway, drops must wait).
	peerMan := make(map[string]map[uint64]server.ManifestEntry, len(members))
	for _, m := range members {
		if m == sh.cfg.Self {
			continue
		}
		resp, _, err := sh.peers.call(m, &server.Request{Op: server.OpManifest})
		if err != nil || resp.Err != "" {
			peerMan[m] = nil
			continue
		}
		mm := make(map[uint64]server.ManifestEntry, len(resp.Manifest))
		for _, e := range resp.Manifest {
			mm[e.Handle] = e
		}
		peerMan[m] = mm
	}

	confirmed := make(map[uint64]struct{})
	for _, e := range manifest {
		reps := sh.ring.Replicas(e.Key, sh.cfg.Replicas)
		pos := -1
		for i, m := range reps {
			if m == sh.cfg.Self {
				pos = i
				break
			}
		}
		switch {
		case pos == 0: // this shard owns the key
			if e.Replica && s.SetHandleRole(e.Handle, false) {
				sh.promotions.Add(1)
				sh.logf("cluster: %s: promoted handle %d (key %#x) to owner", sh.cfg.Self, e.Handle, e.Key)
			}
			for _, m := range reps[1:] {
				pm := peerMan[m]
				if pm == nil {
					continue
				}
				if pe, ok := pm[e.Handle]; !ok || pe.ValEpoch < e.ValEpoch {
					sh.pushCopy(s, e.Handle, m)
				}
			}
		case pos > 0: // this shard is a replica position
			owner := reps[0]
			pm := peerMan[owner]
			if pm == nil {
				break // owner unreachable: hold everything as-is
			}
			if oe, ok := pm[e.Handle]; ok && oe.ValEpoch >= e.ValEpoch {
				// The owner holds current factors — this copy is the
				// replica it should be. (The previous owner rejoining and
				// receiving its range back lands here: demotion closes the
				// handover its pushes started.)
				if !e.Replica && s.SetHandleRole(e.Handle, true) {
					sh.demotions.Add(1)
					sh.logf("cluster: %s: demoted handle %d (key %#x) to replica of %s", sh.cfg.Self, e.Handle, e.Key, owner)
				}
			} else {
				// Owner missing or stale: restore it. Deliberately the
				// resurrection-safe direction — a replica never decides a
				// missing owner copy means "freed", because the other
				// explanation (the owner restarted empty) would turn a drop
				// into permanent data loss.
				sh.pushCopy(s, e.Handle, owner)
			}
		default: // stray: this shard holds a key it is not responsible for
			held := true
			for _, m := range reps {
				pm := peerMan[m]
				if pm == nil {
					held = false
					continue
				}
				if pe, ok := pm[e.Handle]; !ok || pe.ValEpoch < e.ValEpoch {
					sh.pushCopy(s, e.Handle, m)
					held = false
				}
			}
			if held && len(reps) > 0 {
				confirmed[e.Handle] = struct{}{}
			}
		}
	}

	// Two-sweep drop rule: a stray is released only when every responsible
	// shard held a current copy on this sweep AND the previous one — one
	// confirmation could race a concurrent eviction or a view still
	// converging; two consecutive confirmations spaced a repair interval
	// apart make the copies durable observations, not luck.
	sh.strayMu.Lock()
	if allowDrop {
		for id := range confirmed {
			if _, seen := sh.strayCand[id]; seen {
				if s.DropHandle(id) {
					sh.repairDrops.Add(1)
					sh.logf("cluster: %s: dropped stray handle %d (copies confirmed twice)", sh.cfg.Self, id)
				}
				delete(confirmed, id)
			}
		}
	}
	sh.strayCand = confirmed
	sh.strayMu.Unlock()
}

// pushCopy enqueues a repair push of a live handle's factors to addr,
// re-serializing them bit-exactly (Save/Load round-trips the pivot
// sequence, so the receiver's solves stay bit-identical).
func (sh *Shard) pushCopy(s *server.Server, id uint64, addr string) {
	ev, ok := s.ExportHandle(id)
	if !ok {
		return
	}
	sh.repairPushes.Add(1)
	sh.enqueue(replJob{addr: addr, req: &server.Request{
		Op:       server.OpReplicate,
		Handle:   ev.Handle,
		Key:      ev.Key,
		Matrix:   &sstar.Matrix{N: ev.N, M: ev.N, RowPtr: ev.RowPtr, ColInd: ev.ColInd},
		Blob:     ev.Blob,
		ValEpoch: ev.ValEpoch,
	}})
}

// PlacementViolations diffs a fleet's manifests against the ring placement
// of the first shard and returns one human-readable line per violation: a
// key with the wrong copy count, a copy on a shard outside its replica set,
// an owner position marked replica, or a copy older than the newest values-
// epoch. Empty means converged: every key has exactly min(R, fleet) copies,
// each on its responsible shard, owner marked owned. Exported for the churn
// property test, the chaos e2e, and sstar-load's availability bench — the
// "is the cluster healed" predicate they all share.
func PlacementViolations(shards []*Shard) []string {
	if len(shards) == 0 {
		return nil
	}
	ring := shards[0].ring
	replicas := shards[0].cfg.Replicas
	type copyAt struct {
		addr string
		e    server.ManifestEntry
	}
	byKey := make(map[uint64][]copyAt)
	for _, sh := range shards {
		s := sh.srv.Load()
		if s == nil {
			continue
		}
		for _, e := range s.Manifest() {
			byKey[e.Key] = append(byKey[e.Key], copyAt{addr: sh.cfg.Self, e: e})
		}
	}
	var out []string
	for key, copies := range byKey {
		reps := ring.Replicas(key, replicas)
		want := make(map[string]int, len(reps)) // addr -> position
		for i, m := range reps {
			want[m] = i
		}
		var newest uint64
		for _, c := range copies {
			if c.e.ValEpoch > newest {
				newest = c.e.ValEpoch
			}
		}
		seen := make(map[string]bool, len(copies))
		for _, c := range copies {
			pos, ok := want[c.addr]
			switch {
			case !ok:
				out = append(out, fmt.Sprintf("key %#x: stray copy on %s", key, c.addr))
				continue
			case pos == 0 && c.e.Replica:
				out = append(out, fmt.Sprintf("key %#x: owner position %s marked replica", key, c.addr))
			case pos > 0 && !c.e.Replica:
				out = append(out, fmt.Sprintf("key %#x: replica position %s marked owner", key, c.addr))
			}
			if c.e.ValEpoch < newest {
				out = append(out, fmt.Sprintf("key %#x: stale copy on %s (values-epoch %d < %d)", key, c.addr, c.e.ValEpoch, newest))
			}
			seen[c.addr] = true
		}
		for _, m := range reps {
			if !seen[m] {
				out = append(out, fmt.Sprintf("key %#x: missing copy on %s", key, m))
			}
		}
	}
	return out
}
