package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"sstar/internal/server"
	"sstar/internal/wire"
)

// peers is a per-address pool of handshaked connections to other cluster
// processes (shards from the router, the successor from a shard's
// replicator). One call = one request/response exchange under a deadline; a
// connection that fails any exchange is closed, never pooled.
type peers struct {
	network     string
	dialTimeout time.Duration
	callTimeout time.Duration
	maxFrame    int

	mu     sync.Mutex
	idle   map[string][]net.Conn
	closed bool
}

func newPeers(network string, maxFrame int) *peers {
	if network == "" {
		network = "tcp"
	}
	if maxFrame <= 0 {
		maxFrame = wire.DefaultMaxPayload
	}
	return &peers{
		network:     network,
		dialTimeout: 5 * time.Second,
		callTimeout: 60 * time.Second,
		maxFrame:    maxFrame,
		idle:        make(map[string][]net.Conn),
	}
}

// dial opens and handshakes a fresh connection to addr. A dead or
// incompatible peer fails here — before anything was sent — which is what
// lets callers treat dial errors as "definitely not executed".
func (p *peers) dial(addr string) (net.Conn, error) {
	conn, err := net.DialTimeout(p.network, addr, p.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	conn.SetDeadline(time.Now().Add(p.dialTimeout))
	if err := wire.WriteGob(conn, server.FrameHello, server.Hello{Magic: server.ProtoMagic, Version: server.ProtoVersion}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: hello %s: %w", addr, err)
	}
	var hello server.Hello
	if err := wire.ReadGob(conn, server.FrameHello, 1<<16, &hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: handshake %s: %w", addr, err)
	}
	if hello.Magic != server.ProtoMagic || hello.Version != server.ProtoVersion {
		conn.Close()
		return nil, fmt.Errorf("cluster: %s speaks %q v%d", addr, hello.Magic, hello.Version)
	}
	conn.SetDeadline(time.Time{})
	return conn, nil
}

// get pops a pooled connection to addr or dials a new one.
func (p *peers) get(addr string) (conn net.Conn, reused bool, err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, fmt.Errorf("cluster: peer pool closed")
	}
	if conns := p.idle[addr]; len(conns) > 0 {
		conn = conns[len(conns)-1]
		p.idle[addr] = conns[:len(conns)-1]
		p.mu.Unlock()
		return conn, true, nil
	}
	p.mu.Unlock()
	conn, err = p.dial(addr)
	return conn, false, err
}

// put returns a healthy connection to addr's pool (bounded at 4 per peer).
func (p *peers) put(addr string, conn net.Conn) {
	p.mu.Lock()
	if !p.closed && len(p.idle[addr]) < 4 {
		p.idle[addr] = append(p.idle[addr], conn)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	conn.Close()
}

// call performs one exchange with addr. delivered reports whether the
// request may have reached the peer: false only when the failure happened
// before any request byte could have been delivered (dial or handshake
// failure) — callers use it to decide whether retrying a non-idempotent op
// elsewhere is safe. A transport failure on a pooled connection — the stale
// connection left by a peer restart — is healed by one fresh dial for
// idempotent ops, so a restart costs one redial, not an error.
func (p *peers) call(addr string, req *server.Request) (resp *server.Response, delivered bool, err error) {
	var pooled bool
	resp, delivered, pooled, err = p.exchange(addr, req, true)
	if err != nil && (!delivered || (pooled && req.Op.Idempotent())) {
		resp, delivered, _, err = p.exchange(addr, req, false)
	}
	return resp, delivered, err
}

// exchange is one wire attempt. pooled reports the connection came from the
// idle pool (a failure on it is eligible for call's one fresh retry).
func (p *peers) exchange(addr string, req *server.Request, usePool bool) (_ *server.Response, delivered, pooled bool, err error) {
	var conn net.Conn
	if usePool {
		conn, pooled, err = p.get(addr)
	} else {
		conn, err = p.dial(addr)
	}
	if err != nil {
		return nil, false, pooled, err
	}
	conn.SetDeadline(time.Now().Add(p.callTimeout))
	if err := wire.WriteGob(conn, server.FrameRequest, req); err != nil {
		conn.Close()
		// Kernel buffering makes a partial write's delivery unknowable.
		return nil, true, pooled, fmt.Errorf("cluster: send %s: %w", addr, err)
	}
	resp := new(server.Response)
	if err := wire.ReadGob(conn, server.FrameResponse, p.maxFrame, resp); err != nil {
		conn.Close()
		// The request was written; whether it executed is unknowable.
		return nil, true, pooled, fmt.Errorf("cluster: receive %s: %w", addr, err)
	}
	conn.SetDeadline(time.Time{})
	p.put(addr, conn)
	return resp, true, pooled, nil
}

// close releases every pooled connection.
func (p *peers) close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = make(map[string][]net.Conn)
	p.closed = true
	p.mu.Unlock()
	for _, conns := range idle {
		for _, c := range conns {
			c.Close()
		}
	}
}
