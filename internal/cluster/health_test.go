package cluster

// Unit tests of the self-healing primitives: the phi failure detector under
// a fake clock (deterministic — no sleeps, no flakes), and the membership
// merge rules that make every shard's view converge (higher epoch wins,
// equal epochs union, locally-dead members stay dead until they ack).

import (
	"testing"
	"time"

	"sstar/internal/chaos"
)

func TestDetectorPhases(t *testing.T) {
	clk := chaos.NewFakeClock()
	d := newDetector(clk, 100*time.Millisecond, 4, 8)
	d.track("a")

	// Regular acks: alive, phi near zero.
	for i := 0; i < 10; i++ {
		clk.Advance(100 * time.Millisecond)
		d.ack("a")
	}
	if st := d.state("a"); st != stateAlive {
		t.Fatalf("state after regular acks = %v, want alive", st)
	}
	if phi := d.phi("a"); phi > 0.1 {
		t.Fatalf("phi right after an ack = %.2f, want ~0", phi)
	}

	// Silence: phi grows through suspect into dead. The EWMA has converged
	// to ~100ms, so 450ms of silence is phi ~4.5 and 850ms is ~8.5.
	clk.Advance(450 * time.Millisecond)
	if st := d.state("a"); st != stateSuspect {
		t.Fatalf("state after 450ms silence = %v (phi %.2f), want suspect", st, d.phi("a"))
	}
	clk.Advance(400 * time.Millisecond)
	if st := d.state("a"); st != stateDead {
		t.Fatalf("state after 850ms silence = %v (phi %.2f), want dead", st, d.phi("a"))
	}

	// One ack resurrects it instantly.
	d.ack("a")
	if st := d.state("a"); st != stateAlive {
		t.Fatalf("state after resurrection ack = %v, want alive", st)
	}
}

func TestDetectorAdaptsToSlowPeers(t *testing.T) {
	clk := chaos.NewFakeClock()
	d := newDetector(clk, 100*time.Millisecond, 4, 8)
	d.track("slow")
	// A peer that acks every 300ms (slow network, busy host): the EWMA
	// adapts, so 600ms of silence — fatal for a 100ms peer — stays alive.
	for i := 0; i < 30; i++ {
		clk.Advance(300 * time.Millisecond)
		d.ack("slow")
	}
	clk.Advance(600 * time.Millisecond)
	if st := d.state("slow"); st != stateAlive {
		t.Fatalf("state = %v (phi %.2f), want alive: the EWMA should have adapted to the 300ms cadence", st, d.phi("slow"))
	}
}

func TestDetectorUnknownPeerHasNoOpinion(t *testing.T) {
	d := newDetector(chaos.NewFakeClock(), 100*time.Millisecond, 4, 8)
	if phi := d.phi("never-seen"); phi != 0 {
		t.Fatalf("phi of untracked peer = %.2f, want 0", phi)
	}
	if st := d.state("never-seen"); st != stateAlive {
		t.Fatalf("state of untracked peer = %v, want alive", st)
	}
}

func TestDetectorFreshTrackGrace(t *testing.T) {
	clk := chaos.NewFakeClock()
	d := newDetector(clk, 100*time.Millisecond, 4, 8)
	d.track("new")
	// A just-learned peer must not be instantly suspect: its grace window is
	// a couple of intervals.
	clk.Advance(150 * time.Millisecond)
	if st := d.state("new"); st != stateAlive {
		t.Fatalf("state of fresh peer after 150ms = %v, want alive (grace)", st)
	}
}

func newTestMembership(self string, members []string, epoch uint64) *membership {
	ring := NewRing(16)
	for _, m := range members {
		ring.Add(m)
	}
	ring.SetEpoch(epoch)
	return newMembership(self, ring)
}

func TestMembershipJoinLeave(t *testing.T) {
	m := newTestMembership("a", []string{"a", "b"}, 1)
	if !m.applyJoin("c") {
		t.Fatal("join of a new member did not change the view")
	}
	if e := m.ring.Epoch(); e != 2 {
		t.Fatalf("epoch after join = %d, want 2", e)
	}
	if m.applyJoin("c") {
		t.Fatal("re-join of an existing member changed the view")
	}
	if !m.applyLeave("b") {
		t.Fatal("leave of a member did not change the view")
	}
	if m.ring.Contains("b") {
		t.Fatal("ring still contains the departed member")
	}
	if e := m.ring.Epoch(); e != 3 {
		t.Fatalf("epoch after leave = %d, want 3", e)
	}
	if m.applyLeave("b") {
		t.Fatal("leave of an absent member changed the view")
	}
}

func TestMembershipHigherEpochWins(t *testing.T) {
	m := newTestMembership("a", []string{"a", "b"}, 3)
	if !m.mergeView(7, []string{"a", "b", "c"}) {
		t.Fatal("higher-epoch view was not adopted")
	}
	if e := m.ring.Epoch(); e != 7 {
		t.Fatalf("epoch = %d, want 7 (adopted verbatim)", e)
	}
	if !m.ring.Contains("c") {
		t.Fatal("adopted view lost member c")
	}
	// A lower epoch carries no information.
	if m.mergeView(2, []string{"x"}) {
		t.Fatal("lower-epoch view changed the local view")
	}
	if m.ring.Contains("x") {
		t.Fatal("lower-epoch member leaked into the ring")
	}
}

func TestMembershipHigherEpochMayDropSelf(t *testing.T) {
	// Peers declared us dead while we were partitioned: their higher-epoch
	// view lacks self and must win anyway (the heartbeat loop escalates to a
	// Join afterwards — adopting the truth is the first step of rejoining).
	m := newTestMembership("a", []string{"a", "b", "c"}, 2)
	if !m.mergeView(5, []string{"b", "c"}) {
		t.Fatal("higher-epoch view lacking self was not adopted")
	}
	if m.ring.Contains("a") {
		t.Fatal("self survived a merge that excluded it")
	}
}

func TestMembershipEqualEpochUnions(t *testing.T) {
	// Two concurrent changes raced to epoch 4: {a,b,c} here, {a,b,d} there.
	// The merge unions with a bump, so both sides converge on {a,b,c,d}.
	m := newTestMembership("a", []string{"a", "b", "c"}, 4)
	if !m.mergeView(4, []string{"a", "b", "d"}) {
		t.Fatal("equal-epoch different-set merge did not change the view")
	}
	if e := m.ring.Epoch(); e != 5 {
		t.Fatalf("epoch after union merge = %d, want 5 (bumped past the race)", e)
	}
	for _, want := range []string{"a", "b", "c", "d"} {
		if !m.ring.Contains(want) {
			t.Fatalf("union lost member %s", want)
		}
	}
	// Same epoch, same set: nothing to do.
	if m.mergeView(5, m.ring.Members()) {
		t.Fatal("identical view changed the local view")
	}
}

func TestMembershipDeadNotResurrectedByUnion(t *testing.T) {
	m := newTestMembership("a", []string{"a", "b", "c"}, 4)
	if !m.declareDead("c") {
		t.Fatal("declareDead did not change the view")
	}
	epoch := m.ring.Epoch()
	// A peer that has not noticed offers an equal-epoch view still naming c:
	// the union must subtract the locally-dead member.
	if !m.mergeView(epoch, []string{"a", "b", "c"}) {
		t.Fatal("merge did not bump past the stale view")
	}
	if m.ring.Contains("c") {
		t.Fatal("dead member resurrected by an equal-epoch union")
	}
	// c acks again (revive): the next merge may bring it back.
	m.revive("c")
	if !m.mergeView(m.ring.Epoch()+10, []string{"a", "b", "c"}) {
		t.Fatal("post-revive merge rejected")
	}
	if !m.ring.Contains("c") {
		t.Fatal("revived member did not return with a newer view")
	}
}

func TestMembershipDeadStaysKnown(t *testing.T) {
	m := newTestMembership("a", []string{"a", "b"}, 1)
	m.noteKnown("b")
	m.declareDead("b")
	found := false
	for _, p := range m.probeTargets() {
		if p == "b" {
			found = true
		}
	}
	if !found {
		t.Fatal("dead member dropped from the probe set — its restart would never be noticed")
	}
}
