package cluster

// In-process fleet tests: real shards behind real TCP listeners, a real
// router, real clients — everything short of separate processes. The bar
// throughout is the cluster's core promise: placement is deterministic,
// redirects are transparent to clients, and a failover solve is
// bit-identical to the owner's because the replica holds the same factors
// (never a refactorization).

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"sstar"
	"sstar/client"
	"sstar/internal/server"
)

// testFleet is n shards plus a router, all on loopback listeners.
type testFleet struct {
	peers   []string
	servers []*server.Server
	shards  []*Shard
	router  *Router
	raddr   string
}

func startFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	f := &testFleet{}
	ls := make([]net.Listener, n)
	for i := range ls {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ls[i] = l
		f.peers = append(f.peers, l.Addr().String())
	}
	for i := range ls {
		sh, err := NewShard(ShardConfig{Self: f.peers[i], Peers: f.peers})
		if err != nil {
			t.Fatal(err)
		}
		s := server.New(server.Config{Workers: 2, FactorWorkers: 2, Cluster: sh})
		sh.Bind(s)
		go s.Serve(ls[i])
		f.shards = append(f.shards, sh)
		f.servers = append(f.servers, s)
	}
	r, err := NewRouter(RouterConfig{Shards: f.peers})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve(rl)
	f.router, f.raddr = r, rl.Addr().String()
	t.Cleanup(func() {
		r.Close()
		for _, s := range f.servers {
			s.Close() // idempotent: tests may have killed one already
		}
		for _, sh := range f.shards {
			sh.Close()
		}
	})
	return f
}

// totals sums factorize/refactorize counters across the servers still
// answering — the "was anything refactorized?" probe.
func (f *testFleet) totals() (factorizes, refactorizes int64) {
	for _, s := range f.servers {
		st := s.Stats()
		factorizes += st.Factorizes
		refactorizes += st.Refactorizes
	}
	return
}

// replicaHolder returns the index of the server holding handle id as a
// replica (installed by a peer's push), -1 if none does yet.
func (f *testFleet) replicaHolder(id uint64, skip int) int {
	for i, s := range f.servers {
		if i == skip {
			continue
		}
		if s.HasHandle(id) && s.Stats().ReplicaHandles > 0 {
			return i
		}
	}
	return -1
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// testSystem builds one grid system with its locally computed, bit-exact
// ground truth.
type testSystem struct {
	a    *sstar.Matrix
	b    []float64
	xref []float64
	f    *sstar.Factorization
}

func buildSystem(t *testing.T, seed int) *testSystem {
	t.Helper()
	a := sstar.GenGrid2D(9+seed%3, 10+seed%4, seed%2 == 1, sstar.GenOptions{Seed: int64(40 + seed), Convection: 0.3})
	f, err := sstar.Factorize(a, sstar.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	for k := range b {
		b[k] = math.Sin(float64(2*k+seed) + 1)
	}
	xref, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	return &testSystem{a: a, b: b, xref: xref, f: f}
}

func bitIdentical(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// ownerIndex returns the fleet index of the shard owning key.
func (f *testFleet) ownerIndex(key uint64) int {
	owner := f.shards[0].ring.Owner(key)
	for i, p := range f.peers {
		if p == owner {
			return i
		}
	}
	return -1
}

// TestClientFollowsRedirect: a client pointed at a shard that does NOT hold
// a structure gets a typed redirect and follows it transparently — the
// factorize lands on the owner, solves work, and Metrics records the hop.
func TestClientFollowsRedirect(t *testing.T) {
	fleet := startFleet(t, 3)
	sys := buildSystem(t, 1)
	key := sstar.StructureKey(sys.a, sstar.DefaultOptions())

	// With 3 shards and 2 replicas exactly one shard refuses this key.
	reps := fleet.shards[0].ring.Replicas(key, 2)
	inReps := func(addr string) bool { return addr == reps[0] || addr == reps[1] }
	wrong := -1
	for i, p := range fleet.peers {
		if !inReps(p) {
			wrong = i
		}
	}
	if wrong < 0 {
		t.Fatal("no non-replica shard found")
	}

	c, err := client.Dial("tcp", fleet.peers[wrong])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h, _, err := c.Factorize(context.Background(), sys.a, sstar.DefaultOptions())
	if err != nil {
		t.Fatalf("factorize via non-owner shard: %v", err)
	}
	if got := c.Metrics().Redirects; got < 1 {
		t.Errorf("Metrics().Redirects = %d, want >= 1", got)
	}
	if h.Key() != key {
		t.Errorf("handle key %#x, want %#x", h.Key(), key)
	}
	// The wrong shard must not have executed it; the owner must hold it.
	if fleet.servers[wrong].HasHandle(h.ID()) {
		t.Error("non-owner shard executed a redirected factorize")
	}
	x, _, err := h.Solve(context.Background(), sys.b)
	if err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(x, sys.xref) {
		t.Error("redirected solve differs from local reference")
	}
	if err := h.Free(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestFailoverNoRefactorize: factorize through the router, wait for the
// factors to replicate, kill the owner — the next solve must come back
// bit-identical from the replica with zero new factorizations anywhere.
func TestFailoverNoRefactorize(t *testing.T) {
	fleet := startFleet(t, 3)
	sys := buildSystem(t, 2)

	c, err := client.Dial("tcp", fleet.raddr, client.WithRetry(client.DefaultRetryPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h, _, err := c.Factorize(context.Background(), sys.a, sstar.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	owner := fleet.ownerIndex(h.Key())
	waitFor(t, "factor replication", func() bool { return fleet.replicaHolder(h.ID(), owner) >= 0 })

	// Warm solve while the owner is alive, then the baseline counters.
	x, _, err := h.Solve(context.Background(), sys.b)
	if err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(x, sys.xref) {
		t.Fatal("pre-failover solve differs from local reference")
	}
	facBefore, refacBefore := fleet.totals()

	fleet.servers[owner].Close()

	x, _, err = h.Solve(context.Background(), sys.b)
	if err != nil {
		t.Fatalf("solve after owner death: %v", err)
	}
	if !bitIdentical(x, sys.xref) {
		t.Error("failover solve differs from local reference — replica factors are not the owner's")
	}
	facAfter, refacAfter := fleet.totals()
	if facAfter != facBefore || refacAfter != refacBefore {
		t.Errorf("failover triggered new factorizations: factorizes %d->%d, refactorizes %d->%d",
			facBefore, facAfter, refacBefore, refacAfter)
	}
	if st := fleet.router.Stats(); st.Failovers < 1 {
		t.Errorf("router failovers = %d, want >= 1", st.Failovers)
	}
}

// TestScatterSolveMany: a wide multi-RHS panel through the router is split
// across the two replica holders and gathered — and the gathered panel is
// bitwise equal to a single-node SolveMany of the whole panel.
func TestScatterSolveMany(t *testing.T) {
	fleet := startFleet(t, 3)
	sys := buildSystem(t, 3)
	const nrhs = 8
	b := make([]float64, sys.a.N*nrhs)
	for k := range b {
		b[k] = math.Cos(float64(k)*0.7 + 2)
	}
	want, err := sys.f.SolveMany(b, nrhs)
	if err != nil {
		t.Fatal(err)
	}

	c, err := client.Dial("tcp", fleet.raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h, _, err := c.Factorize(context.Background(), sys.a, sstar.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	owner := fleet.ownerIndex(h.Key())
	waitFor(t, "factor replication", func() bool { return fleet.replicaHolder(h.ID(), owner) >= 0 })

	x, _, err := h.SolveMany(context.Background(), b, nrhs)
	if err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(x, want) {
		t.Error("scattered SolveMany differs bitwise from single-node SolveMany")
	}
	if st := fleet.router.Stats(); st.Scatters < 1 {
		t.Errorf("router scatters = %d, want >= 1 (panel was not scattered)", st.Scatters)
	}

	// A narrow panel must not scatter but still answer identically.
	narrow, err := sys.f.SolveMany(b[:sys.a.N*2], 2)
	if err != nil {
		t.Fatal(err)
	}
	x2, _, err := h.SolveMany(context.Background(), b[:sys.a.N*2], 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(x2, narrow) {
		t.Error("narrow SolveMany differs from single-node result")
	}
}

// TestAnalysisReplicationWarmsCache: after a factorize on the owner, the
// successor has the symbolic analysis in cache — a failover factorize there
// is a cache hit, not a cold analyze.
func TestAnalysisReplicationWarmsCache(t *testing.T) {
	fleet := startFleet(t, 2) // 2 shards, 2 replicas: both hold every key
	sys := buildSystem(t, 4)
	key := sstar.StructureKey(sys.a, sstar.DefaultOptions())
	owner := fleet.ownerIndex(key)
	succ := 1 - owner

	c, err := client.Dial("tcp", fleet.peers[owner])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Factorize(context.Background(), sys.a, sstar.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "analysis replication", func() bool {
		return fleet.servers[succ].Stats().CacheEntries >= 1
	})

	hitsBefore := fleet.servers[succ].Stats().CacheHits
	c2, err := client.Dial("tcp", fleet.peers[succ])
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	h2, _, err := c2.Factorize(context.Background(), sys.a, sstar.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if hits := fleet.servers[succ].Stats().CacheHits; hits != hitsBefore+1 {
		t.Errorf("successor cache hits %d -> %d, want a hit from the replicated analysis", hitsBefore, hits)
	}
	x, _, err := h2.Solve(context.Background(), sys.b)
	if err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(x, sys.xref) {
		t.Error("solve from replicated-analysis factorize differs from local reference")
	}
}

// TestRouterAggregateStats: OpStats through the router sums the fleet and
// reports how many shards answered.
func TestRouterAggregateStats(t *testing.T) {
	fleet := startFleet(t, 3)
	sys := buildSystem(t, 5)
	c, err := client.Dial("tcp", fleet.raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h, _, err := c.Factorize(context.Background(), sys.a, sstar.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.Solve(context.Background(), sys.b); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 3 {
		t.Errorf("aggregate Shards = %d, want 3", st.Shards)
	}
	if st.Factorizes < 1 || st.Solves < 1 {
		t.Errorf("aggregate counters missing work: factorizes=%d solves=%d", st.Factorizes, st.Solves)
	}
	fleet.servers[2].Close()
	st, err = c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 {
		t.Errorf("aggregate Shards after one death = %d, want 2", st.Shards)
	}
}
