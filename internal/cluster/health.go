package cluster

import (
	"sync"
	"time"

	"sstar/internal/chaos"
	"sstar/internal/server"
)

// Peer liveness states reported by the failure detector.
type peerState int

const (
	stateAlive peerState = iota
	stateSuspect
	stateDead
)

func (s peerState) String() string {
	switch s {
	case stateAlive:
		return "alive"
	case stateSuspect:
		return "suspect"
	case stateDead:
		return "dead"
	}
	return "unknown"
}

// Detector thresholds: phi is the time since the last ack divided by the
// smoothed inter-ack interval — a dimensionless "how many expected heartbeat
// periods of silence" (a simplified phi-accrual detector: the EWMA plays the
// role of the inter-arrival distribution's mean). A peer above
// suspectThreshold is suspect (still routed to, noted in logs); above
// deadThreshold it is declared dead and removed from the ring. The defaults
// are deliberately generous — a false positive costs a full re-replication
// round-trip cycle, a true positive only delays promotion by seconds.
const (
	defaultSuspectThreshold = 4.0
	defaultDeadThreshold    = 8.0
)

// detector is the per-shard failure detector: it smooths the inter-ack
// interval of every probed peer and converts silence into a phi score.
// Deterministic under test: all timing flows through an injectable
// chaos.Clock, and acks are fed explicitly.
type detector struct {
	clock   chaos.Clock
	suspect float64
	dead    float64
	minEwma time.Duration // floor on the smoothed interval, so phi cannot explode on back-to-back acks
	maxIdle time.Duration // cap on the smoothed interval, so one long outage does not blind the detector afterwards
	mu      sync.Mutex
	tracked map[string]*peerHealth
}

// peerHealth is one probed peer's timing state.
type peerHealth struct {
	lastAck time.Time
	ewmaNs  float64 // smoothed inter-ack interval
}

func newDetector(clock chaos.Clock, interval time.Duration, suspect, dead float64) *detector {
	if clock == nil {
		clock = chaos.RealClock{}
	}
	if suspect <= 0 {
		suspect = defaultSuspectThreshold
	}
	if dead <= suspect {
		dead = max(defaultDeadThreshold, 2*suspect)
	}
	if interval <= 0 {
		interval = defaultHeartbeatInterval
	}
	return &detector{
		clock:   clock,
		suspect: suspect,
		dead:    dead,
		minEwma: interval / 2,
		maxIdle: 10 * interval,
		tracked: make(map[string]*peerHealth),
	}
}

// track registers addr (idempotent), granting it a fresh ack so a
// just-learned peer is not instantly suspect.
func (d *detector) track(addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.tracked[addr]; !ok {
		d.tracked[addr] = &peerHealth{lastAck: d.clock.Now(), ewmaNs: float64(d.minEwma * 2)}
	}
}

// ack records a successful exchange with addr.
func (d *detector) ack(addr string) {
	now := d.clock.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.tracked[addr]
	if !ok {
		d.tracked[addr] = &peerHealth{lastAck: now, ewmaNs: float64(d.minEwma * 2)}
		return
	}
	dt := float64(now.Sub(p.lastAck))
	if dt > 0 {
		if ceil := float64(d.maxIdle); dt > ceil {
			dt = ceil
		}
		const alpha = 0.2
		p.ewmaNs = (1-alpha)*p.ewmaNs + alpha*dt
		if p.ewmaNs < float64(d.minEwma) {
			p.ewmaNs = float64(d.minEwma)
		}
	}
	p.lastAck = now
}

// phi returns the accrual score of addr: time since the last ack in units of
// the smoothed inter-ack interval. Unknown peers score 0 (never probed, no
// opinion).
func (d *detector) phi(addr string) float64 {
	now := d.clock.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.tracked[addr]
	if !ok {
		return 0
	}
	ewma := p.ewmaNs
	if ewma < float64(d.minEwma) {
		ewma = float64(d.minEwma)
	}
	return float64(now.Sub(p.lastAck)) / ewma
}

// state classifies addr against the thresholds.
func (d *detector) state(addr string) peerState {
	phi := d.phi(addr)
	switch {
	case phi >= d.dead:
		return stateDead
	case phi >= d.suspect:
		return stateSuspect
	}
	return stateAlive
}

// membership owns the shard's view of who is in the cluster: the ring (the
// authoritative member set + epoch), the set of every address ever seen
// (dead members keep being probed — that is how a restart is noticed), and
// the set of members this shard itself declared dead (subtracted from
// equal-epoch union merges so a dead peer cannot be resurrected by a peer
// that has not noticed yet).
//
// Epoch semantics: every membership change bumps the epoch. A view with a
// higher epoch wins a merge outright; equal epochs with different member
// sets merge as union-minus-locally-dead with a bump (two concurrent changes
// racing to the same epoch converge in one extra round); lower epochs lose.
// Join/Leave are explicit intents rather than view merges — a fresh joiner's
// epoch-0 view must not need to win a comparison to enter the ring.
type membership struct {
	self string
	ring *Ring

	mu    sync.Mutex
	known map[string]struct{}
	dead  map[string]struct{}
}

func newMembership(self string, ring *Ring) *membership {
	return &membership{
		self:  self,
		ring:  ring,
		known: make(map[string]struct{}),
		dead:  make(map[string]struct{}),
	}
}

// noteKnown records addresses worth probing (idempotent; self is ignored).
func (m *membership) noteKnown(addrs ...string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, a := range addrs {
		if a != "" && a != m.self {
			m.known[a] = struct{}{}
		}
	}
}

// probeTargets returns every known peer address (members and ex-members
// alike), sorted via the map-free path the caller needs not care about.
func (m *membership) probeTargets() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.known))
	for a := range m.known {
		out = append(out, a)
	}
	return out
}

// isDead reports whether this shard currently considers addr dead.
func (m *membership) isDead(addr string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.dead[addr]
	return ok
}

// revive clears addr's locally-dead marker — called on every ack, so a
// restarted or healed peer is immediately eligible for union merges again.
func (m *membership) revive(addr string) {
	m.mu.Lock()
	delete(m.dead, addr)
	m.mu.Unlock()
}

// applyJoin adds addr to the ring with an epoch bump. Returns whether the
// view changed.
func (m *membership) applyJoin(addr string) bool {
	if addr == "" {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr != m.self {
		m.known[addr] = struct{}{}
	}
	delete(m.dead, addr)
	epoch, members := m.ring.View()
	for _, x := range members {
		if x == addr {
			return false
		}
	}
	m.ring.Replace(append(members, addr), epoch+1)
	return true
}

// applyLeave removes addr from the ring with an epoch bump. Returns whether
// the view changed.
func (m *membership) applyLeave(addr string) bool {
	if addr == "" {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	epoch, members := m.ring.View()
	kept := members[:0]
	for _, x := range members {
		if x != addr {
			kept = append(kept, x)
		}
	}
	if len(kept) == len(members) {
		return false
	}
	m.ring.Replace(kept, epoch+1)
	return true
}

// declareDead removes addr from the ring (epoch bump) and marks it locally
// dead, so equal-epoch merges cannot resurrect it until it acks again. The
// address stays known — probing continues, which is how its restart is
// noticed. Returns whether the view changed.
func (m *membership) declareDead(addr string) bool {
	if addr == "" || addr == m.self {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	epoch, members := m.ring.View()
	kept := members[:0]
	for _, x := range members {
		if x != addr {
			kept = append(kept, x)
		}
	}
	if len(kept) == len(members) {
		return false
	}
	m.dead[addr] = struct{}{}
	m.ring.Replace(kept, epoch+1)
	return true
}

// mergeView merges a peer's (epoch, members) into the local view:
//
//   - higher epoch wins verbatim (even if it lacks self — the health loop
//     notices and escalates to a Join);
//   - equal epoch with a different set merges as union minus locally-dead,
//     with a bump, so two concurrent changes racing to one epoch converge;
//   - lower epochs carry no information.
//
// Returns whether the local view changed.
func (m *membership) mergeView(epoch uint64, members []string) bool {
	if len(members) == 0 && epoch == 0 {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, a := range members {
		if a != "" && a != m.self {
			m.known[a] = struct{}{}
		}
	}
	local, have := m.ring.View()
	switch {
	case epoch > local:
		m.ring.Replace(members, epoch)
		return !sameMembers(have, members)
	case epoch == local:
		if sameMembers(have, members) {
			return false
		}
		union := make(map[string]struct{}, len(have)+len(members))
		for _, a := range have {
			union[a] = struct{}{}
		}
		for _, a := range members {
			union[a] = struct{}{}
		}
		for a := range m.dead {
			delete(union, a)
		}
		merged := make([]string, 0, len(union))
		for a := range union {
			merged = append(merged, a)
		}
		m.ring.Replace(merged, local+1)
		return true
	}
	return false
}

// sameMembers reports set equality of two member lists (nearly always
// sorted and identical, so the fast path is the linear compare).
func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	eq := true
	for i := range a {
		if a[i] != b[i] {
			eq = false
			break
		}
	}
	if eq {
		return true
	}
	set := make(map[string]struct{}, len(a))
	for _, x := range a {
		set[x] = struct{}{}
	}
	for _, x := range b {
		if _, ok := set[x]; !ok {
			return false
		}
	}
	return true
}

// handleMembership answers one OpMembership exchange on the receiving shard:
// apply the intent (Join/Leave) or merge the view, ack the sender, and
// answer with the merged view. Route calls this inline — all work is cheap
// map/ring surgery; re-replication of moved keys happens on the rebalance
// goroutine the kick wakes.
func (sh *Shard) handleMembership(req *server.Request) *server.Response {
	changed := false
	switch {
	case req.Join:
		changed = sh.mem.applyJoin(req.Addr)
	case req.Leave:
		changed = sh.mem.applyLeave(req.Addr)
	default:
		changed = sh.mem.mergeView(req.Epoch, req.Members)
	}
	if req.Addr != "" && req.Addr != sh.cfg.Self {
		sh.mem.noteKnown(req.Addr)
		sh.det.track(req.Addr)
		sh.det.ack(req.Addr)
		sh.mem.revive(req.Addr)
	}
	if changed {
		sh.membershipChanges.Add(1)
		sh.logf("cluster: %s: membership now epoch %d %v (from %s join=%v leave=%v)",
			sh.cfg.Self, sh.ring.Epoch(), sh.ring.Members(), req.Addr, req.Join, req.Leave)
		sh.kickRebalance()
	}
	epoch, members := sh.ring.View()
	return &server.Response{Epoch: epoch, Members: members}
}

// healthLoop is the shard's heartbeat driver: probe every known peer each
// interval, merge the views that come back, escalate to a Join when the
// cluster's view lacks this shard (fresh join, restart, healed partition),
// and declare peers dead past the phi threshold.
func (sh *Shard) healthLoop() {
	defer close(sh.healthDone)
	t := time.NewTicker(sh.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-sh.stop:
			return
		case <-t.C:
			sh.heartbeat()
		}
	}
}

// heartbeat runs one probe round. Exported to tests via heartbeat() calls on
// a shard with the loop disabled, which makes churn sequences deterministic.
func (sh *Shard) heartbeat() {
	epoch, members := sh.ring.View()
	targets := sh.mem.probeTargets()
	if len(targets) == 0 && sh.cfg.Join != "" {
		targets = []string{sh.cfg.Join}
		sh.mem.noteKnown(sh.cfg.Join)
	}
	// Join is needed when the authoritative view excludes us: a fresh
	// joiner still alone in its own ring, or a shard whose peers declared
	// it dead (restart, partition) — the merge that adopted their view
	// dropped self, and this is the escalation that gets it back in.
	joinNeeded := !sh.ring.Contains(sh.cfg.Self) ||
		(sh.cfg.Join != "" && sh.ring.Size() <= 1)
	for _, addr := range targets {
		sh.det.track(addr)
		req := &server.Request{Op: server.OpMembership, Epoch: epoch, Members: members, Addr: sh.cfg.Self}
		if joinNeeded {
			req.Join = true
		}
		resp, _, err := sh.peers.call(addr, req)
		if err != nil || resp.Err != "" {
			continue // no ack: phi keeps growing
		}
		sh.det.ack(addr)
		sh.mem.revive(addr)
		if sh.mem.mergeView(resp.Epoch, resp.Members) {
			sh.membershipChanges.Add(1)
			sh.logf("cluster: %s: adopted membership epoch %d %v from %s",
				sh.cfg.Self, resp.Epoch, resp.Members, addr)
			sh.kickRebalance()
		}
		if joinNeeded && sh.ring.Contains(sh.cfg.Self) {
			joinNeeded = false
			epoch, members = sh.ring.View()
		}
	}
	// Death detection after the probe round, so a slow-but-alive peer's ack
	// from this very round counts.
	for _, addr := range targets {
		if sh.mem.isDead(addr) || !sh.ring.Contains(addr) {
			continue
		}
		switch sh.det.state(addr) {
		case stateDead:
			if sh.mem.declareDead(addr) {
				sh.membershipChanges.Add(1)
				sh.deaths.Add(1)
				sh.logf("cluster: %s: declared %s dead (phi %.1f >= %.1f), membership now epoch %d %v",
					sh.cfg.Self, addr, sh.det.phi(addr), sh.det.dead, sh.ring.Epoch(), sh.ring.Members())
				sh.kickRebalance()
			}
		case stateSuspect:
			sh.logf("cluster: %s: suspects %s (phi %.1f)", sh.cfg.Self, addr, sh.det.phi(addr))
		}
	}
}
