// Package cluster turns N single-node sstar-serve shards into one solve
// service: structures are placed on shards by consistent hashing of their
// 64-bit structure key, factors and analysis-cache entries are replicated
// asynchronously to each owner's successor on the ring, and a thin router
// (cmd/sstar-router) speaks the ordinary client protocol in front of the
// fleet — scattering wide multi-RHS solves across replica holders and
// failing solves over to the replica when the owner dies, without ever
// refactorizing.
//
// The design leans on two properties of the underlying solver. First,
// Factorization.Save/Load round-trips factors bit-exactly (the pivot
// sequence travels with the values), so a replica's solve is bit-identical
// to the owner's — failover changes which machine answers, never the answer.
// Second, the structure key already excludes every option the server
// normalizes per-process (HostWorkers, Observer), so router, shards, and
// clients all hash a request to the same key without coordination.
package cluster

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultVNodes is the virtual-node count per member: enough points that the
// max/min ownership ratio across members stays under ~1.3 even for small
// rings (see ring_test.go), cheap enough that a membership change rebuilds
// the point list in microseconds.
const DefaultVNodes = 128

// pointsPerVNode spreads every virtual node over several ring positions.
// A member's keyspace share is a sum of independent arc lengths with
// relative spread ~1/sqrt(points), so 128 vnodes alone (~9%) would leave a
// 16-member fleet with a max/min ownership ratio around 1.5; at 8 positions
// per vnode (~3%) the ratio stays comfortably under 1.3 while the vnode
// count remains the user-facing granularity knob.
const pointsPerVNode = 8

// Ring is a consistent-hash ring over shard addresses. Each member
// contributes VNodes virtual nodes (each hashed to several ring positions);
// a key is owned by the member whose point follows the key's hash
// clockwise. Membership changes move only the keys between the affected
// points — about 1/len(members) of the keyspace per join or leave — which
// is the property that makes adding a shard cheap: only the moved keys need
// re-replication, everything else stays put.
//
// A Ring is safe for concurrent use.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	epoch   uint64 // membership epoch: bumped on every membership change
	members map[string]struct{}
	points  []point // sorted by hash
}

// point is one virtual node: a position on the ring owned by a member.
type point struct {
	hash   uint64
	member string
}

// NewRing returns an empty ring with the given virtual-node count per member
// (DefaultVNodes when vnodes < 1).
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

// mix64 is the splitmix64 finalizer: full-avalanche mixing applied on top
// of FNV, whose raw output over near-identical strings ("addr#1", "addr#2",
// ...) clusters enough to skew vnode placement several-fold.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pointHash positions virtual node i of member on the ring.
func pointHash(member string, i int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(member))
	h.Write([]byte("#"))
	h.Write([]byte(strconv.Itoa(i)))
	return mix64(h.Sum64())
}

// keyHash maps a structure key onto the ring. The key is re-hashed rather
// than used directly so ring placement stays uniform even if a caller feeds
// keys with structure (sequential ids, low-entropy hashes).
func keyHash(key uint64) uint64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], key)
	h := fnv.New64a()
	h.Write(b[:])
	return mix64(h.Sum64())
}

// Add inserts a member (idempotent) and rebuilds the point list.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; ok {
		return
	}
	r.members[member] = struct{}{}
	for i := 0; i < r.vnodes*pointsPerVNode; i++ {
		r.points = append(r.points, point{hash: pointHash(member, i), member: member})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member (idempotent) and rebuilds the point list.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Epoch returns the membership epoch: a counter bumped on every membership
// change, the version number routers and shards compare to detect a stale
// ring view. Static fleets (Add at boot, no dynamic membership) keep the
// epoch the constructor left.
func (r *Ring) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// SetEpoch sets the epoch without changing membership — boot-time
// initialization (a static fleet starts at 1, a joiner at 0 so any
// established view wins the merge).
func (r *Ring) SetEpoch(e uint64) {
	r.mu.Lock()
	r.epoch = e
	r.mu.Unlock()
}

// View atomically snapshots the epoch and the sorted member list — the pair
// one OpMembership exchange carries.
func (r *Ring) View() (epoch uint64, members []string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	members = make([]string, 0, len(r.members))
	for m := range r.members {
		members = append(members, m)
	}
	sort.Strings(members)
	return r.epoch, members
}

// Replace installs a whole membership view (members, epoch) atomically,
// rebuilding the point list. Used when a merge adopts a newer view; Add and
// Remove stay the boot-time primitives.
func (r *Ring) Replace(members []string, epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epoch = epoch
	r.members = make(map[string]struct{}, len(members))
	r.points = r.points[:0]
	for _, m := range members {
		if _, ok := r.members[m]; ok {
			continue
		}
		r.members[m] = struct{}{}
		for i := 0; i < r.vnodes*pointsPerVNode; i++ {
			r.points = append(r.points, point{hash: pointHash(m, i), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Contains reports whether member is on the ring.
func (r *Ring) Contains(member string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.members[member]
	return ok
}

// Members returns the current membership, sorted for determinism.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Owner returns the member owning key, "" on an empty ring.
func (r *Ring) Owner(key uint64) string {
	reps := r.Replicas(key, 1)
	if len(reps) == 0 {
		return ""
	}
	return reps[0]
}

// Replicas returns up to n distinct members responsible for key, owner
// first, then ring successors in clockwise order. Fewer than n members on
// the ring returns them all. The successor order is what the replication
// protocol uses: the owner pushes factors to Replicas(key, 2)[1].
func (r *Ring) Replicas(key uint64, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := keyHash(key)
	// First point at or after h, wrapping past the top of the ring.
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, ok := seen[p.member]; ok {
			continue
		}
		seen[p.member] = struct{}{}
		out = append(out, p.member)
	}
	return out
}
