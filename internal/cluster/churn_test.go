package cluster

// Churn property test: after ANY sequence of joins, leaves, and kills, the
// fleet must converge back to a state where the per-shard manifests exactly
// match ring placement — every structure on its min(R, live) responsible
// shards, owner position marked owner, no strays, no stale copies — and
// every solve still answers bit-identically to the local reference. The
// convergence predicate is PlacementViolations, the same one the chaos e2e
// and the availability bench use.

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"sstar"
	"sstar/client"
	"sstar/internal/server"
)

// Fast self-healing cadences for tests: death after ~8 missed 30ms
// heartbeats, repair sweeps several times a second.
const (
	testHeartbeat = 30 * time.Millisecond
	testRepair    = 120 * time.Millisecond
)

// churnNode is one dynamically managed fleet member.
type churnNode struct {
	addr string
	srv  *server.Server
	sh   *Shard
}

// churnFleet is a fleet whose membership the test mutates.
type churnFleet struct {
	t     *testing.T
	nodes map[string]*churnNode // live members by advertised address
	seed  string                // a boot member used as join contact
}

func (cf *churnFleet) bootNode(addr string, peers []string, join string) *churnNode {
	cf.t.Helper()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		cf.t.Fatal(err)
	}
	self := l.Addr().String()
	sh, err := NewShard(ShardConfig{
		Self:              self,
		Peers:             peers,
		Join:              join,
		HeartbeatInterval: testHeartbeat,
		RepairInterval:    testRepair,
	})
	if err != nil {
		cf.t.Fatal(err)
	}
	s := server.New(server.Config{Workers: 2, FactorWorkers: 2, Cluster: sh})
	sh.Bind(s)
	go s.Serve(l)
	n := &churnNode{addr: self, srv: s, sh: sh}
	cf.nodes[self] = n
	return n
}

// startChurnFleet boots n static members with fast self-healing cadences.
func startChurnFleet(t *testing.T, n int) *churnFleet {
	t.Helper()
	cf := &churnFleet{t: t, nodes: make(map[string]*churnNode)}
	ls := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range ls {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ls[i] = l
		peers[i] = l.Addr().String()
	}
	for i := range ls {
		sh, err := NewShard(ShardConfig{
			Self:              peers[i],
			Peers:             peers,
			HeartbeatInterval: testHeartbeat,
			RepairInterval:    testRepair,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := server.New(server.Config{Workers: 2, FactorWorkers: 2, Cluster: sh})
		sh.Bind(s)
		go s.Serve(ls[i])
		cf.nodes[peers[i]] = &churnNode{addr: peers[i], srv: s, sh: sh}
	}
	cf.seed = peers[0]
	t.Cleanup(func() {
		for _, n := range cf.nodes {
			n.srv.Close()
			n.sh.Close()
		}
	})
	return cf
}

// join boots a brand-new member that discovers the fleet through one live
// contact address, and returns its advertised address.
func (cf *churnFleet) join() string {
	cf.t.Helper()
	contact := cf.anyLive()
	n := cf.bootNode("127.0.0.1:0", nil, contact)
	return n.addr
}

// kill is a crash: the member's server and shard stop answering with no
// goodbye. The survivors' failure detectors must notice.
func (cf *churnFleet) kill(addr string) {
	cf.t.Helper()
	n := cf.nodes[addr]
	if n == nil {
		cf.t.Fatalf("kill(%s): not a live member", addr)
	}
	delete(cf.nodes, addr)
	n.srv.Close()
	n.sh.Close()
}

// leave is a graceful departure: the member announces it, then stops.
func (cf *churnFleet) leave(addr string) {
	cf.t.Helper()
	n := cf.nodes[addr]
	if n == nil {
		cf.t.Fatalf("leave(%s): not a live member", addr)
	}
	delete(cf.nodes, addr)
	n.sh.Leave()
	n.srv.Close()
	n.sh.Close()
}

// rejoin boots a fresh member on a previously killed member's address — the
// restart scenario. The new process remembers nothing.
func (cf *churnFleet) rejoin(addr string) {
	cf.t.Helper()
	cf.bootNode(addr, nil, cf.anyLive())
}

func (cf *churnFleet) anyLive() string {
	cf.t.Helper()
	if n, ok := cf.nodes[cf.seed]; ok {
		return n.addr
	}
	for _, n := range cf.nodes {
		return n.addr
	}
	cf.t.Fatal("no live members")
	return ""
}

func (cf *churnFleet) liveShards() []*Shard {
	out := make([]*Shard, 0, len(cf.nodes))
	for _, n := range cf.nodes {
		out = append(out, n.sh)
	}
	return out
}

func (cf *churnFleet) liveAddrs() []string {
	out := make([]string, 0, len(cf.nodes))
	for a := range cf.nodes {
		out = append(out, a)
	}
	return out
}

// waitConverged waits until every live member agrees on the live member set
// and the manifests match ring placement exactly.
func (cf *churnFleet) waitConverged(what string) {
	cf.t.Helper()
	want := cf.liveAddrs()
	waitFor(cf.t, what+": membership agreement", func() bool {
		var epoch uint64
		for i, sh := range cf.liveShards() {
			e, members := sh.ring.View()
			if !sameMembers(members, want) {
				return false
			}
			if i == 0 {
				epoch = e
			} else if e != epoch {
				return false
			}
		}
		return true
	})
	var lastViol []string
	waitForOr(cf.t, what+": placement repair", func() bool {
		lastViol = PlacementViolations(cf.liveShards())
		return len(lastViol) == 0
	}, func() {
		for _, v := range lastViol {
			cf.t.Logf("violation: %s", v)
		}
	})
}

// waitForOr is waitFor with a diagnostic callback on timeout.
func waitForOr(t *testing.T, what string, cond func() bool, diag func()) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	if diag != nil {
		diag()
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestChurnConvergence is the property test: boot a fleet, spread a handful
// of factorizations over it, apply a churn sequence, and require exact
// convergence (empty manifest diff, every key at min(R, live) copies) plus
// bit-identical solves afterwards.
func TestChurnConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("churn property test takes seconds")
	}
	cases := []struct {
		name string
		boot int
		ops  []string // join | leave | kill | rejoin (of the last killed)
	}{
		{"join-one", 2, []string{"join"}},
		{"kill-one", 3, []string{"kill"}},
		{"graceful-leave", 3, []string{"leave"}},
		{"kill-then-rejoin", 3, []string{"kill", "rejoin"}},
		{"join-then-kill", 3, []string{"join", "kill"}},
		{"grow-two-shrink-one", 2, []string{"join", "join", "leave"}},
		{"double-churn", 5, []string{"kill", "join"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cf := startChurnFleet(t, tc.boot)
			cf.waitConverged("boot")

			// Spread structures over the fleet through one member (redirects
			// land them on their owners). Retries let handle ops fall back to
			// this primary when the shard a handle prefers has been killed.
			c, err := client.Dial("tcp", cf.seed, client.WithRetry(client.DefaultRetryPolicy()))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			systems := make([]*testSystem, 4)
			handles := make([]*client.Handle, len(systems))
			for i := range systems {
				systems[i] = buildSystem(t, 20+i)
				h, _, err := c.Factorize(context.Background(), systems[i].a, sstar.DefaultOptions())
				if err != nil {
					t.Fatalf("factorize %d: %v", i, err)
				}
				handles[i] = h
			}
			cf.waitConverged("after factorize")

			// The churn sequence. A kill victim is always a current owner of
			// system 0's key — the interesting member to lose.
			var lastKilled string
			for _, op := range tc.ops {
				switch op {
				case "join":
					cf.join()
				case "kill":
					// Kill a current holder of system 0's key — the owner,
					// or its replica when the owner is the client's primary
					// (the test needs its one configured door to stay open).
					victim := cf.ownerOf(handles[0].Key())
					if victim == cf.seed {
						reps := cf.liveShards()[0].ring.Replicas(handles[0].Key(), 2)
						if len(reps) < 2 {
							t.Fatal("no replica to kill instead of the seed")
						}
						victim = reps[1]
					}
					lastKilled = victim
					cf.kill(victim)
				case "leave":
					// Leave a non-seed member so the client keeps its door.
					for _, a := range cf.liveAddrs() {
						if a != cf.seed {
							cf.leave(a)
							break
						}
					}
				case "rejoin":
					cf.rejoin(lastKilled)
				default:
					t.Fatalf("unknown op %q", op)
				}
				cf.waitConverged("after " + op)
			}

			// Exactly min(R, live) copies of every key, verified by the same
			// predicate that just converged; now the answers must still be
			// the owner's bits.
			for i, sys := range systems {
				got, err := solveRetrying(handles[i], sys.b)
				if err != nil {
					t.Fatalf("post-churn solve %d: %v", i, err)
				}
				if !bitIdentical(got, sys.xref) {
					t.Errorf("post-churn solve %d differs bitwise from the reference", i)
				}
			}
		})
	}
}

// ownerOf maps a structure key to the live member owning it.
func (cf *churnFleet) ownerOf(key uint64) string {
	cf.t.Helper()
	owner := cf.liveShards()[0].ring.Owner(key)
	if _, ok := cf.nodes[owner]; !ok {
		cf.t.Fatalf("owner %s of key %#x is not live", owner, key)
	}
	return owner
}

// solveRetrying solves through the handle's own client, retrying across the
// transient refusals churn leaves behind (the handle may live on a different
// member now; the key hint lets any member name the current owner).
func solveRetrying(h *client.Handle, b []float64) ([]float64, error) {
	var lastErr error
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		got, _, err := h.Solve(context.Background(), b)
		if err == nil {
			return got, nil
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	return nil, fmt.Errorf("never succeeded: %w", lastErr)
}
