package cluster

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"time"

	"sstar"
	"sstar/internal/server"
)

// ShardConfig configures one cluster shard.
type ShardConfig struct {
	// Self is this shard's advertised address — the string peers and clients
	// dial, and the string that must appear in Peers. In a chaos-proxied
	// deployment this is the proxy's address, so inter-shard traffic crosses
	// the proxy too.
	Self string
	// Peers lists every shard's advertised address, Self included. The set
	// is the ring membership; every shard must be configured with the same
	// set (placement is a pure function of it).
	Peers []string
	// VNodes is the virtual-node count per shard (DefaultVNodes when < 1).
	VNodes int
	// Replicas is the copy count per structure including the owner (default
	// 2: owner + one successor). Clamped to the fleet size.
	Replicas int
	// Network is the dial network for peer links ("tcp" default).
	Network string
	// MaxFrame caps peer response frames (wire.DefaultMaxPayload default).
	MaxFrame int
	// QueueDepth bounds the asynchronous replication queue (default 256).
	// When the queue is full the oldest semantics are preserved by dropping
	// the *new* push and counting it — a lagging successor degrades
	// replication freshness, never the request path.
	QueueDepth int
	// Logf, when set, receives replication and routing diagnostics.
	Logf func(format string, args ...any)
}

func (c ShardConfig) withDefaults() ShardConfig {
	if c.VNodes < 1 {
		c.VNodes = DefaultVNodes
	}
	if c.Replicas < 2 {
		c.Replicas = 2
	}
	if c.Replicas > len(c.Peers) {
		c.Replicas = len(c.Peers)
	}
	if c.Network == "" {
		c.Network = "tcp"
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 256
	}
	return c
}

// replJob is one queued replication push: a prebuilt request bound for the
// successor shard.
type replJob struct {
	addr string
	req  *server.Request
}

// Shard implements server.ClusterHooks: it owns the ring view, refuses work
// placed elsewhere with typed redirects, and replicates writes to the
// successor asynchronously. Create with NewShard, pass as
// server.Config.Cluster, then Bind the resulting server.
type Shard struct {
	cfg   ShardConfig
	ring  *Ring
	peers *peers
	srv   atomic.Pointer[server.Server]

	jobs chan replJob
	stop chan struct{}
	done chan struct{}

	redirects    atomic.Int64
	replications atomic.Int64
	replErrors   atomic.Int64
	replDropped  atomic.Int64
	pending      atomic.Int64 // queued + in-flight replication pushes
}

// NewShard builds the shard's cluster side. The returned Shard goes into
// server.Config.Cluster; after server.New, call Bind to attach the server
// (routing needs its handle registry, the gauges need its metrics registry)
// — requests cannot arrive before Bind because the listener isn't up yet.
func NewShard(cfg ShardConfig) (*Shard, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: shard needs a Self address")
	}
	ring := NewRing(cfg.VNodes)
	self := false
	for _, p := range cfg.Peers {
		ring.Add(p)
		self = self || p == cfg.Self
	}
	if !self {
		return nil, fmt.Errorf("cluster: Self %q not in Peers %v", cfg.Self, cfg.Peers)
	}
	sh := &Shard{
		cfg:   cfg,
		ring:  ring,
		peers: newPeers(cfg.Network, cfg.MaxFrame),
		jobs:  make(chan replJob, cfg.QueueDepth),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go sh.replicator()
	return sh, nil
}

// Bind attaches the server this shard fronts and registers the cluster
// gauges on its /metrics registry.
func (sh *Shard) Bind(s *server.Server) {
	sh.srv.Store(s)
	reg := s.Registry()
	reg.GaugeFunc("sstar_cluster_shards",
		"Cluster size in this shard's ring view.",
		func() float64 { return float64(sh.ring.Size()) })
	reg.GaugeFunc("sstar_cluster_owned_handles",
		"Live handles this shard factorized itself (total minus replicas).",
		func() float64 {
			st := s.Stats()
			return float64(st.Handles - st.ReplicaHandles)
		})
	reg.GaugeFunc("sstar_cluster_replication_pending",
		"Replication pushes queued or in flight — the lag a failover right now would expose.",
		func() float64 { return float64(sh.pending.Load()) })
	reg.CounterFunc("sstar_cluster_replications_total",
		"Replication pushes acknowledged by the successor.",
		func() float64 { return float64(sh.replications.Load()) })
	reg.CounterFunc("sstar_cluster_replication_errors_total",
		"Replication pushes abandoned after retries (dropped enqueues included).",
		func() float64 { return float64(sh.replErrors.Load() + sh.replDropped.Load()) })
	reg.CounterFunc("sstar_cluster_redirects_total",
		"Requests refused with CodeRedirect/CodeNotOwner because placement assigns them elsewhere.",
		func() float64 { return float64(sh.redirects.Load()) })
}

// Close stops the replicator (best effort: the queue is drained first) and
// releases peer connections.
func (sh *Shard) Close() {
	close(sh.stop)
	<-sh.done
	sh.peers.close()
}

func (sh *Shard) logf(format string, args ...any) {
	if sh.cfg.Logf != nil {
		sh.cfg.Logf(format, args...)
	}
}

// successor returns the first replica holder for key that is not this shard,
// "" when the fleet has no other member.
func (sh *Shard) successor(key uint64) string {
	for _, m := range sh.ring.Replicas(key, sh.cfg.Replicas) {
		if m != sh.cfg.Self {
			return m
		}
	}
	return ""
}

// Route implements server.ClusterHooks: refuse work that placement assigns
// elsewhere, with the owner's address in the response so callers re-aim
// instead of failing.
func (sh *Shard) Route(req *server.Request) *server.Response {
	switch req.Op {
	case server.OpFactorize:
		if req.Matrix == nil {
			return nil // local validation produces the real error
		}
		key := sstar.StructureKey(req.Matrix, req.Opts)
		reps := sh.ring.Replicas(key, sh.cfg.Replicas)
		for _, m := range reps {
			if m == sh.cfg.Self {
				// Any replica holder may factorize — the owner normally,
				// the successor when the router fails a factorize over.
				return nil
			}
		}
		sh.redirects.Add(1)
		return &server.Response{
			Err:  fmt.Sprintf("%v: structure %#x is placed on %s", sstar.ErrRedirect, key, reps[0]),
			Code: server.CodeRedirect,
			Addr: reps[0],
			Key:  key,
		}
	case server.OpSolve, server.OpSolveMany, server.OpRefactorize, server.OpFree:
		s := sh.srv.Load()
		if s == nil || s.HasHandle(req.Handle) {
			return nil
		}
		// The handle is not here. With a structure-key hint we can say who
		// has it; without one, fall through to the registry's BadHandle.
		if req.Key == 0 {
			return nil
		}
		reps := sh.ring.Replicas(req.Key, sh.cfg.Replicas)
		for _, m := range reps {
			if m == sh.cfg.Self {
				// Placement says the handle belongs here but it isn't here
				// (not yet replicated, or evicted): the registry's typed
				// answer is the truthful one.
				return nil
			}
		}
		sh.redirects.Add(1)
		return &server.Response{
			Err:  fmt.Sprintf("%v: handle %d (structure %#x) is placed on %s", sstar.ErrNotOwner, req.Handle, req.Key, reps[0]),
			Code: server.CodeNotOwner,
			Addr: reps[0],
			Key:  req.Key,
		}
	}
	return nil // ping, stats, replication pushes: always local
}

// Placement implements server.ClusterHooks.
func (sh *Shard) Placement(key uint64) (self, replica string) {
	return sh.cfg.Self, sh.successor(key)
}

// Analyzed implements server.ClusterHooks: replicate a freshly computed
// analysis-cache entry to the successor, so a failover factorize there is a
// cache hit instead of a cold analyze.
func (sh *Shard) Analyzed(key uint64, an *sstar.Analysis) {
	succ := sh.successor(key)
	if succ == "" {
		return
	}
	var buf bytes.Buffer
	if err := an.Save(&buf); err != nil {
		sh.logf("cluster: serialize analysis %#x: %v", key, err)
		return
	}
	sh.enqueue(replJob{addr: succ, req: &server.Request{
		Op:   server.OpReplicateAnalysis,
		Key:  key,
		Blob: buf.Bytes(),
	}})
}

// Stored implements server.ClusterHooks: replicate the factors to the
// successor. The pattern rides along so the replica supports the
// values-only refactorize fast path after a promotion.
func (sh *Shard) Stored(ev server.StoredEvent) {
	succ := sh.successor(ev.Key)
	if succ == "" {
		return
	}
	sh.enqueue(replJob{addr: succ, req: &server.Request{
		Op:     server.OpReplicate,
		Handle: ev.Handle,
		Key:    ev.Key,
		Matrix: &sstar.Matrix{N: ev.N, M: ev.N, RowPtr: ev.RowPtr, ColInd: ev.ColInd},
		Blob:   ev.Blob,
	}})
}

// Freed implements server.ClusterHooks: forward the free so the replica is
// released too. (The server only calls this for owned handles, so the
// forward cannot cascade.)
func (sh *Shard) Freed(handle uint64, key uint64) {
	succ := sh.successor(key)
	if succ == "" {
		return
	}
	sh.enqueue(replJob{addr: succ, req: &server.Request{
		Op:     server.OpFree,
		Handle: handle,
		Key:    key,
	}})
}

// AugmentStats implements server.ClusterHooks.
func (sh *Shard) AugmentStats(st *server.ServerStats) {
	st.Shards = sh.ring.Size()
	st.Redirects = sh.redirects.Load()
	st.Replications = sh.replications.Load()
	st.ReplicationPending = int(sh.pending.Load())
}

// enqueue hands a push to the replicator without ever blocking the request
// path: a full queue drops the push (counted, logged) rather than stalling
// a factorize behind a lagging successor.
func (sh *Shard) enqueue(j replJob) {
	sh.pending.Add(1)
	select {
	case sh.jobs <- j:
	default:
		sh.pending.Add(-1)
		sh.replDropped.Add(1)
		sh.logf("cluster: replication queue full, dropped %s to %s", j.req.Op, j.addr)
	}
}

// replicator drains the push queue, retrying each push with backoff — the
// successor may be mid-restart or behind a flaky link. On shutdown the
// queued pushes are flushed with one attempt each.
func (sh *Shard) replicator() {
	defer close(sh.done)
	for {
		select {
		case j := <-sh.jobs:
			sh.push(j, 3)
		case <-sh.stop:
			for {
				select {
				case j := <-sh.jobs:
					sh.push(j, 1)
				default:
					return
				}
			}
		}
	}
}

// push delivers one replication job with up to attempts tries.
func (sh *Shard) push(j replJob, attempts int) {
	defer sh.pending.Add(-1)
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			select {
			case <-time.After(time.Duration(50<<uint(i-1)) * time.Millisecond):
			case <-sh.stop:
			}
		}
		var resp *server.Response
		resp, _, err = sh.peers.call(j.addr, j.req)
		if err == nil && resp.Err != "" {
			// OpFree forwarded for a replica the successor never installed
			// (or already dropped) answers BadHandle — the desired end
			// state, not a failure.
			if j.req.Op == server.OpFree && (resp.Code == server.CodeBadHandle || resp.Code == server.CodeEvicted) {
				err = nil
			} else {
				err = resp.Error()
			}
		}
		if err == nil {
			sh.replications.Add(1)
			return
		}
	}
	sh.replErrors.Add(1)
	sh.logf("cluster: replication %s to %s failed after %d attempts: %v", j.req.Op, j.addr, attempts, err)
}
