package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sstar"
	"sstar/internal/chaos"
	"sstar/internal/server"
)

// ShardConfig configures one cluster shard.
type ShardConfig struct {
	// Self is this shard's advertised address — the string peers and clients
	// dial, and the string that must appear in Peers. In a chaos-proxied
	// deployment this is the proxy's address, so inter-shard traffic crosses
	// the proxy too.
	Self string
	// Peers lists every shard's advertised address, Self included. The set
	// is the ring membership; every shard must be configured with the same
	// set (placement is a pure function of it).
	Peers []string
	// VNodes is the virtual-node count per shard (DefaultVNodes when < 1).
	VNodes int
	// Replicas is the copy count per structure including the owner (default
	// 2: owner + one successor). Clamped to the fleet size.
	Replicas int
	// Network is the dial network for peer links ("tcp" default).
	Network string
	// MaxFrame caps peer response frames (wire.DefaultMaxPayload default).
	MaxFrame int
	// QueueDepth bounds the asynchronous replication queue (default 256).
	// When the queue is full the oldest semantics are preserved by dropping
	// the *new* push and counting it — a lagging successor degrades
	// replication freshness, never the request path.
	QueueDepth int
	// Join, when set, names any live member of an existing cluster: the
	// shard boots with a single-member ring at epoch 0 and the health loop
	// joins through that address (receiving the fleet's epoch and member
	// list, which triggers re-replication of exactly the keys the ring
	// moves onto the newcomer). Peers may then list only Self — or be
	// empty, defaulting to Self.
	Join string
	// HeartbeatInterval is the failure-detector probe cadence (default
	// 250ms). Negative disables the health loop — membership stays static,
	// the pre-self-healing behavior.
	HeartbeatInterval time.Duration
	// RepairInterval is the anti-entropy sweep cadence (default 2s).
	// Negative disables the periodic sweep (membership-change rebalances
	// still run). The sweep diffs per-shard manifests against ring
	// placement and pushes/demotes/drops until the fleet converges.
	RepairInterval time.Duration
	// SuspectThreshold and DeadThreshold are the failure detector's phi
	// levels (time since last ack in units of the smoothed ack interval):
	// suspect logs, dead removes the peer from the ring and triggers
	// promotion. Defaults 4 and 8.
	SuspectThreshold float64
	DeadThreshold    float64
	// Clock injects time into the failure detector (default wall clock).
	// Chaos tests drive a chaos.FakeClock to make suspect/dead transitions
	// deterministic.
	Clock chaos.Clock
	// Logf, when set, receives replication and routing diagnostics.
	Logf func(format string, args ...any)
}

func (c ShardConfig) withDefaults() ShardConfig {
	if c.VNodes < 1 {
		c.VNodes = DefaultVNodes
	}
	if c.Replicas < 2 {
		c.Replicas = 2
	}
	if c.Network == "" {
		c.Network = "tcp"
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 256
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = defaultHeartbeatInterval
	}
	if c.RepairInterval == 0 {
		c.RepairInterval = defaultRepairInterval
	}
	if c.Clock == nil {
		c.Clock = chaos.RealClock{}
	}
	return c
}

// replJob is one queued replication push: a prebuilt request bound for the
// successor shard.
type replJob struct {
	addr string
	req  *server.Request
}

// Shard implements server.ClusterHooks: it owns the ring view, refuses work
// placed elsewhere with typed redirects, and replicates writes to the
// successor asynchronously. Create with NewShard, pass as
// server.Config.Cluster, then Bind the resulting server.
type Shard struct {
	cfg   ShardConfig
	ring  *Ring
	peers *peers
	srv   atomic.Pointer[server.Server]
	mem   *membership
	det   *detector

	jobs       chan replJob
	rebalance  chan struct{} // kicks an immediate push-only sweep after a membership change
	stop       chan struct{}
	done       chan struct{}
	healthDone chan struct{}
	repairDone chan struct{}

	strayMu   sync.Mutex
	strayCand map[uint64]struct{} // strays whose copies were confirmed last sweep (two-sweep drop rule)

	redirects         atomic.Int64
	replications      atomic.Int64
	replErrors        atomic.Int64
	replDropped       atomic.Int64
	pending           atomic.Int64 // queued + in-flight replication pushes
	promotions        atomic.Int64
	demotions         atomic.Int64
	repairPushes      atomic.Int64
	repairDrops       atomic.Int64
	membershipChanges atomic.Int64
	deaths            atomic.Int64
}

// NewShard builds the shard's cluster side. The returned Shard goes into
// server.Config.Cluster; after server.New, call Bind to attach the server
// (routing needs its handle registry, the gauges need its metrics registry)
// — requests cannot arrive before Bind because the listener isn't up yet.
func NewShard(cfg ShardConfig) (*Shard, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: shard needs a Self address")
	}
	if len(cfg.Peers) == 0 {
		cfg.Peers = []string{cfg.Self}
	}
	ring := NewRing(cfg.VNodes)
	self := false
	for _, p := range cfg.Peers {
		ring.Add(p)
		self = self || p == cfg.Self
	}
	if !self {
		return nil, fmt.Errorf("cluster: Self %q not in Peers %v", cfg.Self, cfg.Peers)
	}
	if cfg.Join == "" || len(cfg.Peers) > 1 {
		// A statically configured fleet starts at epoch 1: an established
		// view that beats any fresh joiner's epoch 0 in a merge.
		ring.SetEpoch(1)
	}
	sh := &Shard{
		cfg:        cfg,
		ring:       ring,
		peers:      newPeers(cfg.Network, cfg.MaxFrame),
		jobs:       make(chan replJob, cfg.QueueDepth),
		rebalance:  make(chan struct{}, 1),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		healthDone: make(chan struct{}),
		repairDone: make(chan struct{}),
	}
	sh.mem = newMembership(cfg.Self, ring)
	sh.det = newDetector(cfg.Clock, cfg.HeartbeatInterval, cfg.SuspectThreshold, cfg.DeadThreshold)
	for _, p := range cfg.Peers {
		sh.mem.noteKnown(p)
	}
	if cfg.Join != "" {
		sh.mem.noteKnown(cfg.Join)
	}
	go sh.replicator()
	if cfg.HeartbeatInterval > 0 {
		go sh.healthLoop()
	} else {
		close(sh.healthDone)
	}
	go sh.repairLoop()
	return sh, nil
}

// Bind attaches the server this shard fronts and registers the cluster
// gauges on its /metrics registry.
func (sh *Shard) Bind(s *server.Server) {
	sh.srv.Store(s)
	reg := s.Registry()
	reg.GaugeFunc("sstar_cluster_shards",
		"Cluster size in this shard's ring view.",
		func() float64 { return float64(sh.ring.Size()) })
	reg.GaugeFunc("sstar_cluster_owned_handles",
		"Live handles this shard factorized itself (total minus replicas).",
		func() float64 {
			st := s.Stats()
			return float64(st.Handles - st.ReplicaHandles)
		})
	reg.GaugeFunc("sstar_cluster_replication_pending",
		"Replication pushes queued or in flight — the lag a failover right now would expose.",
		func() float64 { return float64(sh.pending.Load()) })
	reg.CounterFunc("sstar_cluster_replications_total",
		"Replication pushes acknowledged by the successor.",
		func() float64 { return float64(sh.replications.Load()) })
	reg.CounterFunc("sstar_cluster_replication_errors_total",
		"Replication pushes abandoned after retries (dropped enqueues included).",
		func() float64 { return float64(sh.replErrors.Load() + sh.replDropped.Load()) })
	reg.CounterFunc("sstar_cluster_redirects_total",
		"Requests refused with CodeRedirect/CodeNotOwner because placement assigns them elsewhere.",
		func() float64 { return float64(sh.redirects.Load()) })
	reg.GaugeFunc("sstar_cluster_membership_epoch",
		"Membership epoch of this shard's ring view (bumps on every join, leave, or death).",
		func() float64 { return float64(sh.ring.Epoch()) })
	reg.CounterFunc("sstar_cluster_membership_changes_total",
		"Membership view changes this shard applied (joins, leaves, deaths, merges).",
		func() float64 { return float64(sh.membershipChanges.Load()) })
	reg.CounterFunc("sstar_cluster_peer_deaths_total",
		"Peers this shard's failure detector declared dead.",
		func() float64 { return float64(sh.deaths.Load()) })
	reg.CounterFunc("sstar_cluster_promotions_total",
		"Replica handles promoted to owner after a membership change moved their key here.",
		func() float64 { return float64(sh.promotions.Load()) })
	reg.CounterFunc("sstar_cluster_demotions_total",
		"Owned handles demoted to replica after their key moved away (rejoin handover).",
		func() float64 { return float64(sh.demotions.Load()) })
	reg.CounterFunc("sstar_cluster_repair_pushes_total",
		"Factor copies the anti-entropy sweep pushed to restore ring placement.",
		func() float64 { return float64(sh.repairPushes.Load()) })
	reg.CounterFunc("sstar_cluster_repair_drops_total",
		"Stray handles released after their copies were confirmed on two consecutive sweeps.",
		func() float64 { return float64(sh.repairDrops.Load()) })
}

// Close stops the health, repair, and replicator goroutines (best effort:
// the replication queue is drained first) and releases peer connections.
func (sh *Shard) Close() {
	close(sh.stop)
	<-sh.healthDone
	<-sh.repairDone
	<-sh.done
	sh.peers.close()
}

// Leave announces a coordinated departure: every reachable member receives a
// Leave intent for this shard's address, bumps its epoch, and rebalances the
// moved keys from the replicas it already holds. Called before shutdown
// (sstar-serve does); best-effort — an unreachable peer learns the same
// thing from its failure detector, just slower.
func (sh *Shard) Leave() {
	_, members := sh.ring.View()
	for _, m := range members {
		if m == sh.cfg.Self {
			continue
		}
		req := &server.Request{Op: server.OpMembership, Addr: sh.cfg.Self, Leave: true}
		if resp, _, err := sh.peers.call(m, req); err != nil {
			sh.logf("cluster: %s: leave notice to %s failed: %v", sh.cfg.Self, m, err)
		} else if resp.Err != "" {
			sh.logf("cluster: %s: leave notice to %s refused: %s", sh.cfg.Self, m, resp.Err)
		}
	}
	sh.mem.applyLeave(sh.cfg.Self)
}

func (sh *Shard) logf(format string, args ...any) {
	if sh.cfg.Logf != nil {
		sh.cfg.Logf(format, args...)
	}
}

// successor returns the first replica holder for key that is not this shard,
// "" when the fleet has no other member.
func (sh *Shard) successor(key uint64) string {
	for _, m := range sh.ring.Replicas(key, sh.cfg.Replicas) {
		if m != sh.cfg.Self {
			return m
		}
	}
	return ""
}

// Route implements server.ClusterHooks: refuse work that placement assigns
// elsewhere, with the owner's address in the response so callers re-aim
// instead of failing.
func (sh *Shard) Route(req *server.Request) *server.Response {
	switch req.Op {
	case server.OpMembership:
		return sh.handleMembership(req)
	case server.OpManifest:
		s := sh.srv.Load()
		if s == nil {
			return &server.Response{Manifest: []server.ManifestEntry{}, Epoch: sh.ring.Epoch()}
		}
		return &server.Response{Manifest: s.Manifest(), Epoch: sh.ring.Epoch()}
	case server.OpFactorize:
		if req.Matrix == nil {
			return nil // local validation produces the real error
		}
		key := sstar.StructureKey(req.Matrix, req.Opts)
		reps := sh.ring.Replicas(key, sh.cfg.Replicas)
		for _, m := range reps {
			if m == sh.cfg.Self {
				// Any replica holder may factorize — the owner normally,
				// the successor when the router fails a factorize over.
				return nil
			}
		}
		sh.redirects.Add(1)
		return &server.Response{
			Err:   fmt.Sprintf("%v: structure %#x is placed on %s", sstar.ErrRedirect, key, reps[0]),
			Code:  server.CodeRedirect,
			Addr:  reps[0],
			Key:   key,
			Epoch: sh.ring.Epoch(),
		}
	case server.OpSolve, server.OpSolveMany, server.OpRefactorize, server.OpFree:
		s := sh.srv.Load()
		if s == nil || s.HasHandle(req.Handle) {
			return nil
		}
		// The handle is not here. With a structure-key hint we can say who
		// has it; without one, fall through to the registry's BadHandle.
		if req.Key == 0 {
			return nil
		}
		reps := sh.ring.Replicas(req.Key, sh.cfg.Replicas)
		for _, m := range reps {
			if m == sh.cfg.Self {
				// Placement says the handle belongs here but it isn't here
				// (not yet replicated, or evicted): the registry's typed
				// answer is the truthful one.
				return nil
			}
		}
		sh.redirects.Add(1)
		return &server.Response{
			Err:   fmt.Sprintf("%v: handle %d (structure %#x) is placed on %s", sstar.ErrNotOwner, req.Handle, req.Key, reps[0]),
			Code:  server.CodeNotOwner,
			Addr:  reps[0],
			Key:   req.Key,
			Epoch: sh.ring.Epoch(),
		}
	}
	return nil // ping, stats, replication pushes: always local
}

// Placement implements server.ClusterHooks.
func (sh *Shard) Placement(key uint64) (self, replica string) {
	return sh.cfg.Self, sh.successor(key)
}

// Analyzed implements server.ClusterHooks: replicate a freshly computed
// analysis-cache entry to the successor, so a failover factorize there is a
// cache hit instead of a cold analyze.
func (sh *Shard) Analyzed(key uint64, an *sstar.Analysis) {
	succ := sh.successor(key)
	if succ == "" {
		return
	}
	var buf bytes.Buffer
	if err := an.Save(&buf); err != nil {
		sh.logf("cluster: serialize analysis %#x: %v", key, err)
		return
	}
	sh.enqueue(replJob{addr: succ, req: &server.Request{
		Op:   server.OpReplicateAnalysis,
		Key:  key,
		Blob: buf.Bytes(),
	}})
}

// Stored implements server.ClusterHooks: replicate the factors to the
// successor. The pattern rides along so the replica supports the
// values-only refactorize fast path after a promotion.
func (sh *Shard) Stored(ev server.StoredEvent) {
	succ := sh.successor(ev.Key)
	if succ == "" {
		return
	}
	sh.enqueue(replJob{addr: succ, req: &server.Request{
		Op:     server.OpReplicate,
		Handle: ev.Handle,
		Key:    ev.Key,
		Matrix: &sstar.Matrix{N: ev.N, M: ev.N, RowPtr: ev.RowPtr, ColInd: ev.ColInd},
		Blob:   ev.Blob,
	}})
}

// Freed implements server.ClusterHooks: forward the free so the replica is
// released too. (The server only calls this for owned handles, so the
// forward cannot cascade.)
func (sh *Shard) Freed(handle uint64, key uint64) {
	succ := sh.successor(key)
	if succ == "" {
		return
	}
	sh.enqueue(replJob{addr: succ, req: &server.Request{
		Op:     server.OpFree,
		Handle: handle,
		Key:    key,
	}})
}

// AugmentStats implements server.ClusterHooks.
func (sh *Shard) AugmentStats(st *server.ServerStats) {
	st.Shards = sh.ring.Size()
	st.Redirects = sh.redirects.Load()
	st.Replications = sh.replications.Load()
	st.ReplicationPending = int(sh.pending.Load())
	st.Epoch = sh.ring.Epoch()
	st.Promotions = sh.promotions.Load()
	st.Demotions = sh.demotions.Load()
	st.RepairPushes = sh.repairPushes.Load()
	st.RepairDrops = sh.repairDrops.Load()
}

// Epoch returns the shard's current membership epoch.
func (sh *Shard) Epoch() uint64 { return sh.ring.Epoch() }

// Owner maps a structure key to the advertised address of its owner under
// this shard's current view.
func (sh *Shard) Owner(key uint64) string { return sh.ring.Owner(key) }

// Members returns the shard's current member list, sorted.
func (sh *Shard) Members() []string { return sh.ring.Members() }

// enqueue hands a push to the replicator without ever blocking the request
// path: a full queue drops the push (counted, logged) rather than stalling
// a factorize behind a lagging successor.
func (sh *Shard) enqueue(j replJob) {
	sh.pending.Add(1)
	select {
	case sh.jobs <- j:
	default:
		sh.pending.Add(-1)
		sh.replDropped.Add(1)
		sh.logf("cluster: replication queue full, dropped %s to %s", j.req.Op, j.addr)
	}
}

// replicator drains the push queue, retrying each push with backoff — the
// successor may be mid-restart or behind a flaky link. On shutdown the
// queued pushes are flushed with one attempt each.
func (sh *Shard) replicator() {
	defer close(sh.done)
	for {
		select {
		case j := <-sh.jobs:
			sh.push(j, 3)
		case <-sh.stop:
			for {
				select {
				case j := <-sh.jobs:
					sh.push(j, 1)
				default:
					return
				}
			}
		}
	}
}

// push delivers one replication job with up to attempts tries.
func (sh *Shard) push(j replJob, attempts int) {
	defer sh.pending.Add(-1)
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			select {
			case <-time.After(time.Duration(50<<uint(i-1)) * time.Millisecond):
			case <-sh.stop:
			}
		}
		var resp *server.Response
		resp, _, err = sh.peers.call(j.addr, j.req)
		if err == nil && resp.Err != "" {
			// OpFree forwarded for a replica the successor never installed
			// (or already dropped) answers BadHandle — the desired end
			// state, not a failure.
			if j.req.Op == server.OpFree && (resp.Code == server.CodeBadHandle || resp.Code == server.CodeEvicted) {
				err = nil
			} else {
				err = resp.Error()
			}
		}
		if err == nil {
			sh.replications.Add(1)
			return
		}
	}
	sh.replErrors.Add(1)
	sh.logf("cluster: replication %s to %s failed after %d attempts: %v", j.req.Op, j.addr, attempts, err)
}
