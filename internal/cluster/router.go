package cluster

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"sstar"
	"sstar/internal/obs"
	"sstar/internal/server"
	"sstar/internal/wire"
)

// RouterConfig configures a Router.
type RouterConfig struct {
	// Shards lists every shard's advertised address — the same set every
	// shard was configured with.
	Shards []string
	// VNodes and Replicas must match the shards' configuration (placement
	// is a pure function of them; defaults match ShardConfig's).
	VNodes   int
	Replicas int
	// Network is the dial network for shard links ("tcp" default).
	Network string
	// MaxFrame caps request and response frames.
	MaxFrame int
	// Logf, when set, receives routing diagnostics.
	Logf func(format string, args ...any)
}

// Router speaks the ordinary client protocol in front of a shard fleet: it
// hashes each request to its owning shard, follows redirects, fails handle
// operations over to the replica when the owner is unreachable (counting
// each as a failover — the solve that survived without refactorizing), and
// scatters wide SolveMany panels across the shards holding replicas.
//
// Clients connect to the router exactly as they would to a single server —
// same Hello, same frames, same response codes — so the fleet is a drop-in
// replacement for one sstar-serve.
type Router struct {
	cfg   RouterConfig
	ring  *Ring
	peers *peers

	placeMu sync.Mutex
	place   map[uint64]uint64 // handle -> structure key, learned from factorize responses

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	stop      chan struct{}
	connWg    sync.WaitGroup

	requests  atomic.Int64
	errors    atomic.Int64
	failovers atomic.Int64
	scatters  atomic.Int64
	redirects atomic.Int64
	ambiguous atomic.Int64
	refreshes atomic.Int64

	// refreshMu serializes ring refreshes so a burst of stale-epoch answers
	// costs one membership exchange, not one per request.
	refreshMu sync.Mutex
}

// NewRouter builds a router over the given fleet.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one shard")
	}
	if cfg.VNodes < 1 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.Replicas < 2 {
		cfg.Replicas = 2
	}
	// Replicas is deliberately NOT clamped to len(Shards): the configured
	// shards are only the seed view, and a fleet reached through one seed
	// address can grow past it (ring.Replicas clamps per call).
	ring := NewRing(cfg.VNodes)
	for _, s := range cfg.Shards {
		ring.Add(s)
	}
	// Matches the shards' boot epoch, so a static fleet never looks newer
	// than the router's seed view.
	ring.SetEpoch(1)
	return &Router{
		cfg:       cfg,
		ring:      ring,
		peers:     newPeers(cfg.Network, cfg.MaxFrame),
		place:     make(map[uint64]uint64),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		stop:      make(chan struct{}),
	}, nil
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// Serve accepts client connections on l until the listener fails or the
// router is closed. Blocks; run one goroutine per listener.
func (r *Router) Serve(l net.Listener) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		l.Close()
		return fmt.Errorf("cluster: router closed")
	}
	r.listeners[l] = struct{}{}
	r.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-r.stop:
				return nil
			default:
				return err
			}
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			return nil
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.connWg.Add(1)
		go r.handleConn(conn)
	}
}

// Close stops accepting, closes every connection, and releases shard links.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	close(r.stop)
	for l := range r.listeners {
		l.Close()
	}
	for c := range r.conns {
		c.Close()
	}
	r.mu.Unlock()
	r.connWg.Wait()
	r.peers.close()
	return nil
}

// handleConn speaks the client protocol on one downstream connection.
func (r *Router) handleConn(conn net.Conn) {
	defer r.connWg.Done()
	defer func() {
		conn.Close()
		r.mu.Lock()
		delete(r.conns, conn)
		r.mu.Unlock()
	}()
	var hello server.Hello
	if err := wire.ReadGob(conn, server.FrameHello, 1<<16, &hello); err != nil {
		return
	}
	if hello.Magic != server.ProtoMagic || hello.Version != server.ProtoVersion {
		wire.WriteGob(conn, server.FrameResponse, &server.Response{Err: fmt.Sprintf("cluster: unsupported protocol %q v%d", hello.Magic, hello.Version)})
		return
	}
	if err := wire.WriteGob(conn, server.FrameHello, server.Hello{Magic: server.ProtoMagic, Version: server.ProtoVersion}); err != nil {
		return
	}
	maxFrame := r.peers.maxFrame
	for {
		req := new(server.Request)
		if err := wire.ReadGob(conn, server.FrameRequest, maxFrame, req); err != nil {
			return
		}
		resp := r.handle(req)
		if resp == nil {
			// Defensive: handle never returns nil anymore (ambiguous
			// failures are answered in-band with CodeAmbiguous), but a nil
			// response must still not be gobbed onto the wire.
			return
		}
		if err := wire.WriteGob(conn, server.FrameResponse, resp); err != nil {
			return
		}
	}
}

// keyOf returns the structure key recorded for handle (0 if unknown — e.g.
// the handle was created through a different router).
func (r *Router) keyOf(handle uint64) uint64 {
	r.placeMu.Lock()
	defer r.placeMu.Unlock()
	return r.place[handle]
}

// handle routes one request.
func (r *Router) handle(req *server.Request) *server.Response {
	r.requests.Add(1)
	var resp *server.Response
	switch req.Op {
	case server.OpPing:
		return &server.Response{}
	case server.OpStats:
		return &server.Response{Server: r.aggregateStats()}
	case server.OpFactorize:
		if req.Matrix == nil {
			return &server.Response{Err: "cluster: factorize needs a matrix"}
		}
		key := sstar.StructureKey(req.Matrix, req.Opts)
		resp = r.forward(req, key)
		if resp != nil && resp.Err == "" {
			r.placeMu.Lock()
			r.place[resp.Handle] = resp.Key
			r.placeMu.Unlock()
			// Strip the shard's advertised address: a client that learned it
			// would aim handle ops at the shard directly, bypassing the one
			// component that can fail them over and scatter them. Replica
			// stays — it is informational.
			resp.Addr = ""
		}
	case server.OpSolve, server.OpSolveMany, server.OpRefactorize, server.OpFree:
		key := req.Key
		if key == 0 {
			key = r.keyOf(req.Handle)
		}
		req.Key = key
		candidates := r.candidatesFor(key)
		if req.Op == server.OpSolveMany && key != 0 && req.NRHS >= 4 && len(candidates) >= 2 {
			resp = r.scatterSolveMany(req, candidates)
		} else {
			resp = r.forward(req, key)
		}
		if req.Op == server.OpFree && resp != nil && resp.Err == "" {
			r.placeMu.Lock()
			delete(r.place, req.Handle)
			r.placeMu.Unlock()
		}
	default:
		// Replication pushes and unknown ops are shard-to-shard traffic; a
		// router is the wrong audience.
		return &server.Response{Err: fmt.Sprintf("cluster: router does not accept %s", req.Op)}
	}
	if resp != nil && resp.Err != "" {
		r.errors.Add(1)
	}
	return resp
}

// maxRedirectHops bounds redirect following per candidate so a
// misconfigured fleet (two shards pointing at each other) degrades to a
// typed error instead of a loop.
const maxRedirectHops = 4

// handleOp reports whether op addresses an existing handle — the ops whose
// completion on a non-first candidate counts as a failover.
func handleOp(op server.Op) bool {
	switch op {
	case server.OpSolve, server.OpSolveMany, server.OpRefactorize, server.OpFree:
		return true
	}
	return false
}

// candidatesFor resolves the shards to try for a structure key: the key's
// replica set in placement order, or — key unknown (a handle that predates
// this router) — every member in deterministic order (the holder answers,
// the rest refuse).
func (r *Router) candidatesFor(key uint64) []string {
	if key != 0 {
		return r.ring.Replicas(key, r.cfg.Replicas)
	}
	return r.ring.Members()
}

// forward routes req through its candidate shards. When every candidate is
// unreachable the ring view may simply be stale — the fleet healed around a
// membership change the router has not seen — so the router refreshes its
// view from any answering member and, if the epoch advanced, re-resolves the
// candidates once and tries again.
func (r *Router) forward(req *server.Request, key uint64) *server.Response {
	resp, lastErr := r.forwardOnce(req, r.candidatesFor(key))
	if resp == nil && r.refreshRing("") {
		resp, lastErr = r.forwardOnce(req, r.candidatesFor(key))
	}
	if resp == nil {
		return &server.Response{
			Err:  fmt.Sprintf("cluster: no shard reachable for %s (last: %v)", req.Op, lastErr),
			Code: server.CodeOverloaded,
		}
	}
	return resp
}

// forwardOnce tries candidates in placement order (owner first), following
// redirects, until one executes the request. Transport failures move to the
// next candidate when retrying is safe; in-band BadHandle/Evicted answers
// also move on (the owner may have restarted and lost the handle the
// replica still holds). An ambiguous failure of a non-idempotent op — the
// request was delivered but the connection died before the answer — returns
// a typed CodeAmbiguous response: the router refuses to guess whether the
// operation executed, and blind retry could double-execute. A nil response
// means every candidate was transport-unreachable (the caller may refresh
// the ring and retry).
func (r *Router) forwardOnce(req *server.Request, candidates []string) (*server.Response, error) {
	var last *server.Response
	var lastErr error
	for i, addr := range candidates {
		for hop := 0; hop < maxRedirectHops; hop++ {
			resp, delivered, err := r.peers.call(addr, req)
			if err != nil {
				if delivered && !req.Op.Idempotent() {
					r.ambiguous.Add(1)
					r.logf("cluster: %s to %s ambiguous: delivered but unanswered: %v", req.Op, addr, err)
					return &server.Response{
						Err:  fmt.Sprintf("%v: %s to %s was delivered but the connection died before the answer: %v", sstar.ErrAmbiguous, req.Op, addr, err),
						Code: server.CodeAmbiguous,
					}, nil
				}
				lastErr = err
				break // next candidate
			}
			if resp.Epoch > r.ring.Epoch() {
				// The shard's membership view is newer than ours: adopt it
				// before acting on a placement answer computed from it.
				r.refreshRing(addr)
			}
			switch resp.Code {
			case server.CodeRedirect, server.CodeNotOwner:
				if resp.Addr != "" && resp.Addr != addr {
					r.redirects.Add(1)
					addr = resp.Addr
					continue
				}
				last = resp
			case server.CodeBadHandle, server.CodeEvicted:
				// The replica may still hold what this shard lost.
				last = resp
			default:
				if i > 0 && handleOp(req.Op) && resp.Err == "" {
					r.failovers.Add(1)
				}
				return resp, nil
			}
			break // refused in-band: next candidate
		}
	}
	return last, lastErr
}

// refreshRing pulls a membership view from hint (when given) or any
// answering ring member and adopts it if its epoch is newer than the
// router's. Reports whether the view changed. Serialized so a burst of
// stale answers costs one exchange.
func (r *Router) refreshRing(hint string) bool {
	r.refreshMu.Lock()
	defer r.refreshMu.Unlock()
	targets := r.ring.Members()
	if hint != "" {
		targets = append([]string{hint}, targets...)
	}
	for _, m := range targets {
		resp, _, err := r.peers.call(m, &server.Request{Op: server.OpMembership})
		if err != nil || resp.Err != "" || len(resp.Members) == 0 {
			continue // unreachable, or a standalone server: try the next
		}
		if resp.Epoch <= r.ring.Epoch() {
			return false // an answer, but nothing newer than our view
		}
		r.ring.Replace(resp.Members, resp.Epoch)
		r.refreshes.Add(1)
		r.logf("cluster: router adopted membership epoch %d (%d members) from %s", resp.Epoch, len(resp.Members), m)
		return true
	}
	return false
}

// scatterSolveMany splits a wide multi-RHS panel across the first two
// replica holders and gathers the halves. Each half keeps at least 2
// columns so the blocked panel solve takes the same code path as the
// unsplit call — which is what makes the gathered result bit-identical to a
// single-shard SolveMany. Any failure of either half falls back to
// forwarding the whole panel (SolveMany is idempotent, so the re-send is
// safe).
func (r *Router) scatterSolveMany(req *server.Request, candidates []string) *server.Response {
	n := len(req.B) / req.NRHS
	half := req.NRHS / 2
	sub := [2]*server.Request{
		{Op: server.OpSolveMany, Handle: req.Handle, Key: req.Key, B: req.B[:n*half], NRHS: half, TimeoutNs: req.TimeoutNs},
		{Op: server.OpSolveMany, Handle: req.Handle, Key: req.Key, B: req.B[n*half:], NRHS: req.NRHS - half, TimeoutNs: req.TimeoutNs},
	}
	var resps [2]*server.Response
	var errs [2]error
	var wg sync.WaitGroup
	for i := range sub {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _, err := r.peers.call(candidates[i], sub[i])
			resps[i], errs[i] = resp, err
		}(i)
	}
	wg.Wait()
	for i := range sub {
		if errs[i] != nil || resps[i].Err != "" {
			// One half failed — replica lagging, shard down, whatever: the
			// whole panel goes through the ordinary failover path.
			return r.forward(req, req.Key)
		}
	}
	r.scatters.Add(1)
	x := make([]float64, 0, len(req.B))
	x = append(x, resps[0].X...)
	x = append(x, resps[1].X...)
	out := *resps[0]
	out.X = x
	out.Stats.SolveNs = max(resps[0].Stats.SolveNs, resps[1].Stats.SolveNs)
	return &out
}

// aggregateStats fans OpStats out to every shard and merges: counters sum,
// the router's own counters ride on top. Unreachable shards are skipped —
// the Shards field reports how many answered.
func (r *Router) aggregateStats() server.ServerStats {
	var agg server.ServerStats
	reachable := 0
	for _, addr := range r.ring.Members() {
		resp, _, err := r.peers.call(addr, &server.Request{Op: server.OpStats})
		if err != nil || resp.Err != "" {
			continue
		}
		reachable++
		st := resp.Server
		agg.Requests += st.Requests
		agg.Errors += st.Errors
		agg.Factorizes += st.Factorizes
		agg.Refactorizes += st.Refactorizes
		agg.Solves += st.Solves
		agg.CacheHits += st.CacheHits
		agg.CacheMisses += st.CacheMisses
		agg.CacheEntries += st.CacheEntries
		agg.Coalesced += st.Coalesced
		agg.Handles += st.Handles
		agg.ReplicaHandles += st.ReplicaHandles
		agg.Workers += st.Workers
		if agg.FactorWorkers == 0 {
			agg.FactorWorkers = st.FactorWorkers
		}
		agg.QueueDepth += st.QueueDepth
		agg.Sheds += st.Sheds
		agg.Evictions += st.Evictions
		agg.HandleBytes += st.HandleBytes
		agg.Redirects += st.Redirects
		agg.Replications += st.Replications
		agg.ReplicationPending += st.ReplicationPending
		agg.Promotions += st.Promotions
		agg.Demotions += st.Demotions
		agg.RepairPushes += st.RepairPushes
		agg.RepairDrops += st.RepairDrops
		agg.StaleReplicas += st.StaleReplicas
		if st.Epoch > agg.Epoch {
			agg.Epoch = st.Epoch
		}
	}
	agg.Shards = reachable
	agg.Redirects += r.redirects.Load()
	agg.Failovers = r.failovers.Load()
	agg.Scatters = r.scatters.Load()
	return agg
}

// RouterStats is a snapshot of the router's own counters — what the router
// did, without contacting the shards.
type RouterStats struct {
	Requests      int64  // client requests routed
	Errors        int64  // requests that ended in an error response
	Failovers     int64  // handle ops completed by a non-first candidate (replica answered)
	Scatters      int64  // SolveMany panels split across replica holders
	Redirects     int64  // redirect answers followed to a new shard
	Ambiguous     int64  // non-idempotent ops answered CodeAmbiguous (delivered, unanswered)
	RingRefreshes int64  // membership views adopted from the fleet
	Epoch         uint64 // current membership epoch of the router's ring view
}

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		Requests:      r.requests.Load(),
		Errors:        r.errors.Load(),
		Failovers:     r.failovers.Load(),
		Scatters:      r.scatters.Load(),
		Redirects:     r.redirects.Load(),
		Ambiguous:     r.ambiguous.Load(),
		RingRefreshes: r.refreshes.Load(),
		Epoch:         r.ring.Epoch(),
	}
}

// Bind registers the router's counters on reg (served by sstar-router's
// -admin listener).
func (r *Router) Bind(reg *obs.Registry) {
	reg.CounterFunc("sstar_router_requests_total",
		"Client requests routed by this router.",
		func() float64 { return float64(r.requests.Load()) })
	reg.CounterFunc("sstar_router_errors_total",
		"Routed requests that ended in an error response.",
		func() float64 { return float64(r.errors.Load()) })
	reg.CounterFunc("sstar_router_failovers_total",
		"Handle operations completed by a replica after the owner was unreachable.",
		func() float64 { return float64(r.failovers.Load()) })
	reg.CounterFunc("sstar_router_scatters_total",
		"SolveMany panels split across replica holders and gathered.",
		func() float64 { return float64(r.scatters.Load()) })
	reg.CounterFunc("sstar_router_redirects_total",
		"Redirect answers followed to the shard they named.",
		func() float64 { return float64(r.redirects.Load()) })
	reg.CounterFunc("sstar_router_ambiguous_failures_total",
		"Non-idempotent operations answered CodeAmbiguous: delivered to a shard, connection died before the answer.",
		func() float64 { return float64(r.ambiguous.Load()) })
	reg.CounterFunc("sstar_router_ring_refreshes_total",
		"Membership views adopted from the fleet after an epoch mismatch or total unreachability.",
		func() float64 { return float64(r.refreshes.Load()) })
	reg.GaugeFunc("sstar_router_membership_epoch",
		"Membership epoch of the router's ring view.",
		func() float64 { return float64(r.ring.Epoch()) })
}
