package cluster

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"sstar"
	"sstar/internal/server"
	"sstar/internal/wire"
)

// RouterConfig configures a Router.
type RouterConfig struct {
	// Shards lists every shard's advertised address — the same set every
	// shard was configured with.
	Shards []string
	// VNodes and Replicas must match the shards' configuration (placement
	// is a pure function of them; defaults match ShardConfig's).
	VNodes   int
	Replicas int
	// Network is the dial network for shard links ("tcp" default).
	Network string
	// MaxFrame caps request and response frames.
	MaxFrame int
	// Logf, when set, receives routing diagnostics.
	Logf func(format string, args ...any)
}

// Router speaks the ordinary client protocol in front of a shard fleet: it
// hashes each request to its owning shard, follows redirects, fails handle
// operations over to the replica when the owner is unreachable (counting
// each as a failover — the solve that survived without refactorizing), and
// scatters wide SolveMany panels across the shards holding replicas.
//
// Clients connect to the router exactly as they would to a single server —
// same Hello, same frames, same response codes — so the fleet is a drop-in
// replacement for one sstar-serve.
type Router struct {
	cfg   RouterConfig
	ring  *Ring
	peers *peers

	placeMu sync.Mutex
	place   map[uint64]uint64 // handle -> structure key, learned from factorize responses

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	stop      chan struct{}
	connWg    sync.WaitGroup

	requests  atomic.Int64
	errors    atomic.Int64
	failovers atomic.Int64
	scatters  atomic.Int64
	redirects atomic.Int64
}

// NewRouter builds a router over the given fleet.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one shard")
	}
	if cfg.VNodes < 1 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.Replicas < 2 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(cfg.Shards) {
		cfg.Replicas = len(cfg.Shards)
	}
	ring := NewRing(cfg.VNodes)
	for _, s := range cfg.Shards {
		ring.Add(s)
	}
	return &Router{
		cfg:       cfg,
		ring:      ring,
		peers:     newPeers(cfg.Network, cfg.MaxFrame),
		place:     make(map[uint64]uint64),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		stop:      make(chan struct{}),
	}, nil
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// Serve accepts client connections on l until the listener fails or the
// router is closed. Blocks; run one goroutine per listener.
func (r *Router) Serve(l net.Listener) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		l.Close()
		return fmt.Errorf("cluster: router closed")
	}
	r.listeners[l] = struct{}{}
	r.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-r.stop:
				return nil
			default:
				return err
			}
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			return nil
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.connWg.Add(1)
		go r.handleConn(conn)
	}
}

// Close stops accepting, closes every connection, and releases shard links.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	close(r.stop)
	for l := range r.listeners {
		l.Close()
	}
	for c := range r.conns {
		c.Close()
	}
	r.mu.Unlock()
	r.connWg.Wait()
	r.peers.close()
	return nil
}

// handleConn speaks the client protocol on one downstream connection.
func (r *Router) handleConn(conn net.Conn) {
	defer r.connWg.Done()
	defer func() {
		conn.Close()
		r.mu.Lock()
		delete(r.conns, conn)
		r.mu.Unlock()
	}()
	var hello server.Hello
	if err := wire.ReadGob(conn, server.FrameHello, 1<<16, &hello); err != nil {
		return
	}
	if hello.Magic != server.ProtoMagic || hello.Version != server.ProtoVersion {
		wire.WriteGob(conn, server.FrameResponse, &server.Response{Err: fmt.Sprintf("cluster: unsupported protocol %q v%d", hello.Magic, hello.Version)})
		return
	}
	if err := wire.WriteGob(conn, server.FrameHello, server.Hello{Magic: server.ProtoMagic, Version: server.ProtoVersion}); err != nil {
		return
	}
	maxFrame := r.peers.maxFrame
	for {
		req := new(server.Request)
		if err := wire.ReadGob(conn, server.FrameRequest, maxFrame, req); err != nil {
			return
		}
		resp := r.handle(req)
		if resp == nil {
			// Ambiguous failure of a non-idempotent op: the router cannot
			// truthfully answer "executed" or "not executed", so it does
			// what a dying server would — drop the connection and let the
			// client's own idempotency rules decide what to retry.
			return
		}
		if err := wire.WriteGob(conn, server.FrameResponse, resp); err != nil {
			return
		}
	}
}

// keyOf returns the structure key recorded for handle (0 if unknown — e.g.
// the handle was created through a different router).
func (r *Router) keyOf(handle uint64) uint64 {
	r.placeMu.Lock()
	defer r.placeMu.Unlock()
	return r.place[handle]
}

// handle routes one request. A nil response means an ambiguous non-idempotent
// failure; the caller drops the client connection.
func (r *Router) handle(req *server.Request) *server.Response {
	r.requests.Add(1)
	var resp *server.Response
	switch req.Op {
	case server.OpPing:
		return &server.Response{}
	case server.OpStats:
		return &server.Response{Server: r.aggregateStats()}
	case server.OpFactorize:
		if req.Matrix == nil {
			return &server.Response{Err: "cluster: factorize needs a matrix"}
		}
		key := sstar.StructureKey(req.Matrix, req.Opts)
		resp = r.forward(req, r.ring.Replicas(key, r.cfg.Replicas))
		if resp != nil && resp.Err == "" {
			r.placeMu.Lock()
			r.place[resp.Handle] = resp.Key
			r.placeMu.Unlock()
			// Strip the shard's advertised address: a client that learned it
			// would aim handle ops at the shard directly, bypassing the one
			// component that can fail them over and scatter them. Replica
			// stays — it is informational.
			resp.Addr = ""
		}
	case server.OpSolve, server.OpSolveMany, server.OpRefactorize, server.OpFree:
		key := req.Key
		if key == 0 {
			key = r.keyOf(req.Handle)
		}
		req.Key = key
		var candidates []string
		if key != 0 {
			candidates = r.ring.Replicas(key, r.cfg.Replicas)
		} else {
			// Unknown placement (handle predates this router): ask everyone
			// in deterministic order; the holder answers, the rest refuse.
			candidates = r.ring.Members()
		}
		if req.Op == server.OpSolveMany && key != 0 && req.NRHS >= 4 && len(candidates) >= 2 {
			resp = r.scatterSolveMany(req, candidates)
		} else {
			resp = r.forward(req, candidates)
		}
		if req.Op == server.OpFree && resp != nil && resp.Err == "" {
			r.placeMu.Lock()
			delete(r.place, req.Handle)
			r.placeMu.Unlock()
		}
	default:
		// Replication pushes and unknown ops are shard-to-shard traffic; a
		// router is the wrong audience.
		return &server.Response{Err: fmt.Sprintf("cluster: router does not accept %s", req.Op)}
	}
	if resp != nil && resp.Err != "" {
		r.errors.Add(1)
	}
	return resp
}

// maxRedirectHops bounds redirect following per candidate so a
// misconfigured fleet (two shards pointing at each other) degrades to a
// typed error instead of a loop.
const maxRedirectHops = 4

// handleOp reports whether op addresses an existing handle — the ops whose
// completion on a non-first candidate counts as a failover.
func handleOp(op server.Op) bool {
	switch op {
	case server.OpSolve, server.OpSolveMany, server.OpRefactorize, server.OpFree:
		return true
	}
	return false
}

// forward tries candidates in placement order (owner first), following
// redirects, until one executes the request. Transport failures move to the
// next candidate when retrying is safe; in-band BadHandle/Evicted answers
// also move on (the owner may have restarted and lost the handle the
// replica still holds). Returns nil only for an ambiguous failure of a
// non-idempotent op.
func (r *Router) forward(req *server.Request, candidates []string) *server.Response {
	var last *server.Response
	var lastErr error
	tried := 0
	for i, addr := range candidates {
		for hop := 0; hop < maxRedirectHops; hop++ {
			resp, delivered, err := r.peers.call(addr, req)
			tried++
			if err != nil {
				if delivered && !req.Op.Idempotent() {
					r.logf("cluster: %s to %s failed after delivery: %v", req.Op, addr, err)
					return nil
				}
				lastErr = err
				break // next candidate
			}
			switch resp.Code {
			case server.CodeRedirect, server.CodeNotOwner:
				if resp.Addr != "" && resp.Addr != addr {
					r.redirects.Add(1)
					addr = resp.Addr
					continue
				}
				last = resp
			case server.CodeBadHandle, server.CodeEvicted:
				// The replica may still hold what this shard lost.
				last = resp
			default:
				if i > 0 && handleOp(req.Op) && resp.Err == "" {
					r.failovers.Add(1)
				}
				return resp
			}
			break // refused in-band: next candidate
		}
	}
	if last != nil {
		return last
	}
	return &server.Response{
		Err:  fmt.Sprintf("cluster: no shard reachable for %s (%d attempts, last: %v)", req.Op, tried, lastErr),
		Code: server.CodeOverloaded,
	}
}

// scatterSolveMany splits a wide multi-RHS panel across the first two
// replica holders and gathers the halves. Each half keeps at least 2
// columns so the blocked panel solve takes the same code path as the
// unsplit call — which is what makes the gathered result bit-identical to a
// single-shard SolveMany. Any failure of either half falls back to
// forwarding the whole panel (SolveMany is idempotent, so the re-send is
// safe).
func (r *Router) scatterSolveMany(req *server.Request, candidates []string) *server.Response {
	n := len(req.B) / req.NRHS
	half := req.NRHS / 2
	sub := [2]*server.Request{
		{Op: server.OpSolveMany, Handle: req.Handle, Key: req.Key, B: req.B[:n*half], NRHS: half, TimeoutNs: req.TimeoutNs},
		{Op: server.OpSolveMany, Handle: req.Handle, Key: req.Key, B: req.B[n*half:], NRHS: req.NRHS - half, TimeoutNs: req.TimeoutNs},
	}
	var resps [2]*server.Response
	var errs [2]error
	var wg sync.WaitGroup
	for i := range sub {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _, err := r.peers.call(candidates[i], sub[i])
			resps[i], errs[i] = resp, err
		}(i)
	}
	wg.Wait()
	for i := range sub {
		if errs[i] != nil || resps[i].Err != "" {
			// One half failed — replica lagging, shard down, whatever: the
			// whole panel goes through the ordinary failover path.
			return r.forward(req, candidates)
		}
	}
	r.scatters.Add(1)
	x := make([]float64, 0, len(req.B))
	x = append(x, resps[0].X...)
	x = append(x, resps[1].X...)
	out := *resps[0]
	out.X = x
	out.Stats.SolveNs = max(resps[0].Stats.SolveNs, resps[1].Stats.SolveNs)
	return &out
}

// aggregateStats fans OpStats out to every shard and merges: counters sum,
// the router's own counters ride on top. Unreachable shards are skipped —
// the Shards field reports how many answered.
func (r *Router) aggregateStats() server.ServerStats {
	var agg server.ServerStats
	reachable := 0
	for _, addr := range r.ring.Members() {
		resp, _, err := r.peers.call(addr, &server.Request{Op: server.OpStats})
		if err != nil || resp.Err != "" {
			continue
		}
		reachable++
		st := resp.Server
		agg.Requests += st.Requests
		agg.Errors += st.Errors
		agg.Factorizes += st.Factorizes
		agg.Refactorizes += st.Refactorizes
		agg.Solves += st.Solves
		agg.CacheHits += st.CacheHits
		agg.CacheMisses += st.CacheMisses
		agg.CacheEntries += st.CacheEntries
		agg.Coalesced += st.Coalesced
		agg.Handles += st.Handles
		agg.ReplicaHandles += st.ReplicaHandles
		agg.Workers += st.Workers
		if agg.FactorWorkers == 0 {
			agg.FactorWorkers = st.FactorWorkers
		}
		agg.QueueDepth += st.QueueDepth
		agg.Sheds += st.Sheds
		agg.Evictions += st.Evictions
		agg.HandleBytes += st.HandleBytes
		agg.Redirects += st.Redirects
		agg.Replications += st.Replications
		agg.ReplicationPending += st.ReplicationPending
	}
	agg.Shards = reachable
	agg.Redirects += r.redirects.Load()
	agg.Failovers = r.failovers.Load()
	agg.Scatters = r.scatters.Load()
	return agg
}

// Stats returns the router's own counters (requests seen, failovers,
// scatters, redirect follows) without contacting the shards.
func (r *Router) Stats() (requests, errors, failovers, scatters, redirects int64) {
	return r.requests.Load(), r.errors.Load(), r.failovers.Load(), r.scatters.Load(), r.redirects.Load()
}
