package cluster

// The cluster chaos end-to-end: three shards whose advertised addresses ARE
// fault-injecting proxies — every router→shard and shard→shard byte crosses
// injected latency, fragmented writes, bit flips, and mid-frame resets —
// with one shard killed in the middle of a concurrent solve workload. The
// bar is the cluster's promise under faults:
//
//   - zero failed solves: every solve eventually succeeds through retries
//     and failover;
//   - every answer is bit-identical to a local sequential factorization of
//     the same system (the replica serves the owner's factors, never its
//     own refactorization — corruption may fail a request, never skew an
//     answer);
//   - no handle is refactorized by the failover, asserted via the surviving
//     shards' factorize/refactorize counters.

import (
	"context"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sstar"
	"sstar/client"
	"sstar/internal/chaos"
	"sstar/internal/server"
)

func TestClusterChaosFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos e2e takes seconds")
	}
	const shards = 3
	systems := make([]*testSystem, 4)
	for i := range systems {
		systems[i] = buildSystem(t, 10+i)
	}

	// Upstream servers listen on hidden addresses; each shard's advertised
	// address is its proxy, so the ring itself routes through the faults.
	upstream := make([]net.Listener, shards)
	proxies := make([]*chaos.Proxy, shards)
	peers := make([]string, shards)
	for i := range upstream {
		ul, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		upstream[i] = ul
		pl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		real := ul.Addr().String()
		proxies[i] = chaos.NewProxy(pl, func() (net.Conn, error) {
			return net.DialTimeout("tcp", real, 2*time.Second)
		}, chaos.Config{
			Seed:         int64(9000 + i),
			Latency:      200 * time.Microsecond,
			PartialWrite: 0.15,
			Corrupt:      0.01,
			Reset:        0.005,
		})
		go proxies[i].Serve()
		peers[i] = pl.Addr().String()
	}
	servers := make([]*server.Server, shards)
	shardHooks := make([]*Shard, shards)
	for i := range servers {
		sh, err := NewShard(ShardConfig{Self: peers[i], Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
		s := server.New(server.Config{Workers: 2, FactorWorkers: 2, Cluster: sh})
		sh.Bind(s)
		go s.Serve(upstream[i])
		servers[i], shardHooks[i] = s, sh
	}
	router, err := NewRouter(RouterConfig{Shards: peers})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go router.Serve(rl)
	t.Cleanup(func() {
		router.Close()
		for _, s := range servers {
			s.Close()
		}
		for _, sh := range shardHooks {
			sh.Close()
		}
		for _, p := range proxies {
			p.Close()
		}
	})

	c, err := client.Dial("tcp", rl.Addr().String(), client.WithRetry(client.DefaultRetryPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Factorize every system through the router, retrying through injected
	// faults (a factorize whose response is lost is ambiguous by design; the
	// retry just creates a second handle and the first idles harmlessly).
	handles := make([]*client.Handle, len(systems))
	for i, sys := range systems {
		deadline := time.Now().Add(20 * time.Second)
		for {
			h, _, err := c.Factorize(context.Background(), sys.a, sstar.DefaultOptions())
			if err == nil {
				handles[i] = h
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("factorize system %d never succeeded: %v", i, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Wait until every handle has a replica somewhere other than its owner —
	// the state a failover needs.
	ownerOf := func(key uint64) int {
		owner := shardHooks[0].ring.Owner(key)
		for i, p := range peers {
			if p == owner {
				return i
			}
		}
		return -1
	}
	for i, h := range handles {
		owner := ownerOf(h.Key())
		waitFor(t, fmt.Sprintf("replication of system %d", i), func() bool {
			for j, s := range servers {
				if j != owner && s.HasHandle(h.ID()) {
					return true
				}
			}
			return false
		})
	}

	// Baseline: with replication done and no more factorizes issued, the
	// survivors' factorize/refactorize counters must not move again.
	victim := ownerOf(handles[0].Key())
	var facBefore, refacBefore int64
	for i, s := range servers {
		if i == victim {
			continue
		}
		st := s.Stats()
		facBefore += st.Factorizes
		refacBefore += st.Refactorizes
	}

	// The workload: one goroutine per system, a mix of single solves and
	// NRHS=4 panels, every answer checked bit-exactly against the local
	// reference. The victim dies once every worker is warmed up.
	const solvesPerSystem = 20
	var completed, failed atomic.Int64
	var wg sync.WaitGroup
	for i, sys := range systems {
		wg.Add(1)
		go func(i int, sys *testSystem, h *client.Handle) {
			defer wg.Done()
			wide := make([]float64, sys.a.N*4)
			for k := range wide {
				wide[k] = math.Cos(float64(k)*0.31 + float64(i))
			}
			wideRef, err := sys.f.SolveMany(wide, 4)
			if err != nil {
				t.Errorf("system %d: local SolveMany: %v", i, err)
				return
			}
			for s := 0; s < solvesPerSystem; s++ {
				deadline := time.Now().Add(20 * time.Second)
				for {
					var got, want []float64
					var err error
					if s%4 == 3 {
						got, _, err = h.SolveMany(context.Background(), wide, 4)
						want = wideRef
					} else {
						got, _, err = h.Solve(context.Background(), sys.b)
						want = sys.xref
					}
					if err == nil {
						if !bitIdentical(got, want) {
							t.Errorf("system %d solve %d: answer differs from local reference", i, s)
							failed.Add(1)
						}
						completed.Add(1)
						break
					}
					if time.Now().After(deadline) {
						t.Errorf("system %d solve %d: never succeeded: %v", i, s, err)
						failed.Add(1)
						break
					}
					time.Sleep(10 * time.Millisecond)
				}
			}
		}(i, sys, handles[i])
	}

	// Kill the owner of system 0 once every worker has completed a few
	// solves — mid-workload, not between phases.
	waitFor(t, "warm-up solves", func() bool {
		return completed.Load() >= int64(2*len(systems))
	})
	servers[victim].Close()
	t.Logf("killed shard %d (%s) after %d solves", victim, peers[victim], completed.Load())
	wg.Wait()

	if n := failed.Load(); n != 0 {
		t.Fatalf("%d solves failed or mismatched (of %d)", n, int64(len(systems))*solvesPerSystem)
	}
	var facAfter, refacAfter int64
	for i, s := range servers {
		if i == victim {
			continue
		}
		st := s.Stats()
		facAfter += st.Factorizes
		refacAfter += st.Refactorizes
	}
	if facAfter != facBefore || refacAfter != refacBefore {
		t.Errorf("failover refactorized: survivors' factorizes %d->%d, refactorizes %d->%d",
			facBefore, facAfter, refacBefore, refacAfter)
	}
	if st := router.Stats(); st.Failovers < 1 {
		t.Errorf("router failovers = %d, want >= 1 after killing an owner", st.Failovers)
	}
}
