package cluster

// The self-healing chaos end-to-end: three shards whose advertised addresses
// are fault-injecting proxies, a concurrent solve workload, and the full
// kill → detect → promote → repair → rejoin → re-converge cycle under
// injected latency, fragmented writes, bit flips, and resets. The acceptance
// bar, from the cluster's self-healing promise:
//
//   - zero failed solves across the whole cycle (failover + retries absorb
//     the owner's death);
//   - every answer bit-identical to a local reference factorization
//     (promotion flips a role flag; it never refactorizes);
//   - after the kill, the survivors converge to every key at min(R, live)
//     copies; after the rejoin, back to R=2 across all three — both asserted
//     with the manifest-diff predicate (PlacementViolations empty);
//   - the epoch advanced and promotions were recorded.

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sstar"
	"sstar/client"
	"sstar/internal/chaos"
	"sstar/internal/server"
)

// healNode bundles one shard's listener plumbing so the test can kill it and
// boot a replacement on the same addresses.
type healNode struct {
	// upstreamAddr holds the hidden real listener address as a string. It is
	// rewritten when a killed node reboots and read concurrently by the
	// proxy's dial closure, hence the atomic.
	upstreamAddr atomic.Value
	proxyAddr    string // advertised address (through the fault proxy)
	proxy        *chaos.Proxy
	srv          *server.Server
	sh           *Shard
}

func (n *healNode) upstream() string {
	s, _ := n.upstreamAddr.Load().(string)
	return s
}

func bootHealNode(t *testing.T, n *healNode, peers []string, join string) {
	t.Helper()
	ul, err := net.Listen("tcp", n.upstream())
	if err != nil {
		t.Fatal(err)
	}
	n.upstreamAddr.Store(ul.Addr().String())
	sh, err := NewShard(ShardConfig{
		Self:              n.proxyAddr,
		Peers:             peers,
		Join:              join,
		HeartbeatInterval: testHeartbeat,
		RepairInterval:    testRepair,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{Workers: 2, FactorWorkers: 2, Cluster: sh})
	sh.Bind(s)
	go s.Serve(ul)
	n.srv, n.sh = s, sh
}

func TestSelfHealKillRejoinE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("self-heal chaos e2e takes seconds")
	}
	const shards = 3
	systems := make([]*testSystem, 4)
	for i := range systems {
		systems[i] = buildSystem(t, 30+i)
	}

	nodes := make([]*healNode, shards)
	peers := make([]string, shards)
	for i := range nodes {
		ul, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		pl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		n := &healNode{proxyAddr: pl.Addr().String()}
		n.upstreamAddr.Store(ul.Addr().String())
		ul.Close() // bootHealNode re-listens; reserve only the port choice
		n.proxy = chaos.NewProxy(pl, func() (net.Conn, error) {
			return net.DialTimeout("tcp", n.upstream(), 2*time.Second)
		}, chaos.Config{
			Seed:         int64(7000 + i),
			Latency:      150 * time.Microsecond,
			PartialWrite: 0.1,
			Corrupt:      0.005,
			Reset:        0.002,
		})
		go n.proxy.Serve()
		nodes[i] = n
		peers[i] = n.proxyAddr
	}
	for _, n := range nodes {
		bootHealNode(t, n, peers, "")
	}
	router, err := NewRouter(RouterConfig{Shards: peers})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go router.Serve(rl)
	t.Cleanup(func() {
		router.Close()
		for _, n := range nodes {
			if n.srv != nil {
				n.srv.Close()
			}
			if n.sh != nil {
				n.sh.Close()
			}
			n.proxy.Close()
		}
	})

	liveShards := func(skip int) []*Shard {
		var out []*Shard
		for i, n := range nodes {
			if i != skip {
				out = append(out, n.sh)
			}
		}
		return out
	}

	c, err := client.Dial("tcp", rl.Addr().String(), client.WithRetry(client.DefaultRetryPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Factorize through the router, retrying through the injected faults.
	handles := make([]*client.Handle, len(systems))
	for i, sys := range systems {
		deadline := time.Now().Add(20 * time.Second)
		for {
			h, _, err := c.Factorize(context.Background(), sys.a, sstar.DefaultOptions())
			if err == nil {
				handles[i] = h
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("factorize system %d never succeeded: %v", i, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitForOr(t, "initial replication (R=2 everywhere)", func() bool {
		return len(PlacementViolations(liveShards(-1))) == 0
	}, nil)

	ownerOf := func(key uint64) int {
		owner := nodes[0].sh.ring.Owner(key)
		for i, p := range peers {
			if p == owner {
				return i
			}
		}
		return -1
	}
	victim := ownerOf(handles[0].Key())
	epochBefore := nodes[(victim+1)%shards].sh.Epoch()

	// The workload: concurrent solves against every system, each answer
	// checked bit-exactly, running through kill AND rejoin.
	const solvesPerSystem = 24
	var completed, failed atomic.Int64
	var wg sync.WaitGroup
	for i, sys := range systems {
		wg.Add(1)
		go func(i int, sys *testSystem, h *client.Handle) {
			defer wg.Done()
			for s := 0; s < solvesPerSystem; s++ {
				deadline := time.Now().Add(25 * time.Second)
				for {
					got, _, err := h.Solve(context.Background(), sys.b)
					if err == nil {
						if !bitIdentical(got, sys.xref) {
							t.Errorf("system %d solve %d: answer differs from local reference", i, s)
							failed.Add(1)
						}
						completed.Add(1)
						break
					}
					if time.Now().After(deadline) {
						t.Errorf("system %d solve %d: never succeeded: %v", i, s, err)
						failed.Add(1)
						break
					}
					time.Sleep(10 * time.Millisecond)
				}
			}
		}(i, sys, handles[i])
	}

	// Kill the owner mid-workload: a crash, no goodbye.
	waitFor(t, "warm-up solves", func() bool {
		return completed.Load() >= int64(2*len(systems))
	})
	nodes[victim].srv.Close()
	nodes[victim].sh.Close()
	t.Logf("killed shard %d (%s) after %d solves", victim, peers[victim], completed.Load())

	// The survivors must notice the death (epoch bump past the old view),
	// promote the replicas, and re-replicate until every key is back at
	// min(R, live) = 2 copies among the two survivors.
	waitForOr(t, "death detection and epoch bump", func() bool {
		for i, n := range nodes {
			if i == victim {
				continue
			}
			if n.sh.ring.Contains(peers[victim]) || n.sh.Epoch() <= epochBefore {
				return false
			}
		}
		return true
	}, nil)
	var viol []string
	waitForOr(t, "post-kill repair (R=2 among survivors)", func() bool {
		viol = PlacementViolations(liveShards(victim))
		return len(viol) == 0
	}, func() {
		for _, v := range viol {
			t.Logf("violation: %s", v)
		}
	})

	var promotions int64
	for i, n := range nodes {
		if i == victim {
			continue
		}
		promotions += n.sh.promotions.Load()
	}
	if promotions < 1 {
		t.Errorf("promotions = %d, want >= 1 after the owner died", promotions)
	}

	// Rejoin: a fresh, empty process on the same addresses, entering through
	// a survivor. The repair sweep must hand it back its owned range and
	// restore R=2 across all three — without a single refactorize.
	var facBefore int64
	for i, n := range nodes {
		if i != victim {
			facBefore += n.srv.Stats().Factorizes + n.srv.Stats().Refactorizes
		}
	}
	bootHealNode(t, nodes[victim], nil, peers[(victim+1)%shards])
	waitForOr(t, "rejoin convergence (R=2 across all three)", func() bool {
		viol = PlacementViolations(liveShards(-1))
		return len(viol) == 0
	}, func() {
		for _, v := range viol {
			t.Logf("violation: %s", v)
		}
	})
	wg.Wait()

	if n := failed.Load(); n != 0 {
		t.Fatalf("%d solves failed or mismatched (of %d)", n, int64(len(systems))*solvesPerSystem)
	}
	var facAfter int64
	for i, n := range nodes {
		if i != victim {
			facAfter += n.srv.Stats().Factorizes + n.srv.Stats().Refactorizes
		}
	}
	if facAfter != facBefore {
		t.Errorf("healing factorized: survivors' factorize+refactorize counters moved %d -> %d", facBefore, facAfter)
	}
	if got := nodes[victim].srv.Stats().Factorizes; got != 0 {
		t.Errorf("rejoined shard factorized %d times; repair must hand factors over, not recompute them", got)
	}
}

// TestClusterPartitionHeal: one shard becomes unreachable behind its proxy
// (SetPartitioned — connections die on accept, established relays are
// severed) while a workload runs. Solves keep succeeding bit-identically
// through router failover; after the partition heals, the fleet converges
// back to zero placement violations with no refactorization.
func TestClusterPartitionHeal(t *testing.T) {
	if testing.Short() {
		t.Skip("partition e2e takes seconds")
	}
	const shards = 3
	systems := make([]*testSystem, 3)
	for i := range systems {
		systems[i] = buildSystem(t, 50+i)
	}

	nodes := make([]*healNode, shards)
	peers := make([]string, shards)
	for i := range nodes {
		ul, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		pl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		n := &healNode{proxyAddr: pl.Addr().String()}
		n.upstreamAddr.Store(ul.Addr().String())
		ul.Close()
		n.proxy = chaos.NewProxy(pl, func() (net.Conn, error) {
			return net.DialTimeout("tcp", n.upstream(), 2*time.Second)
		}, chaos.Config{Seed: int64(7700 + i)})
		go n.proxy.Serve()
		nodes[i] = n
		peers[i] = n.proxyAddr
	}
	for _, n := range nodes {
		bootHealNode(t, n, peers, "")
	}
	router, err := NewRouter(RouterConfig{Shards: peers})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go router.Serve(rl)
	t.Cleanup(func() {
		router.Close()
		for _, n := range nodes {
			n.srv.Close()
			n.sh.Close()
			n.proxy.Close()
		}
	})

	c, err := client.Dial("tcp", rl.Addr().String(), client.WithRetry(client.DefaultRetryPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	handles := make([]*client.Handle, len(systems))
	for i, sys := range systems {
		h, _, err := c.Factorize(context.Background(), sys.a, sstar.DefaultOptions())
		if err != nil {
			t.Fatalf("factorize %d: %v", i, err)
		}
		handles[i] = h
	}
	all := func() []*Shard {
		out := make([]*Shard, len(nodes))
		for i, n := range nodes {
			out[i] = n.sh
		}
		return out
	}
	waitForOr(t, "initial replication", func() bool {
		return len(PlacementViolations(all())) == 0
	}, nil)

	// Partition the owner of system 0's structures.
	victim := -1
	owner := nodes[0].sh.ring.Owner(handles[0].Key())
	for i, p := range peers {
		if p == owner {
			victim = i
		}
	}
	nodes[victim].proxy.SetPartitioned(true)
	t.Logf("partitioned shard %d (%s)", victim, owner)

	// Solves during the partition: the owner is unreachable inbound, so the
	// router fails them over to the replica — bit-identically.
	for round := 0; round < 5; round++ {
		for i, sys := range systems {
			got, err := solveRetrying(handles[i], sys.b)
			if err != nil {
				t.Fatalf("partition solve %d/%d: %v", round, i, err)
			}
			if !bitIdentical(got, sys.xref) {
				t.Errorf("partition solve %d/%d differs bitwise from the reference", round, i)
			}
		}
	}
	if st := router.Stats(); st.Failovers < 1 {
		t.Errorf("router failovers = %d, want >= 1 while the owner was partitioned", st.Failovers)
	}

	// Heal. Whatever the fleet decided about the victim in the meantime —
	// suspect, dead-and-removed, or still in — it must converge back to all
	// three members with zero violations and no refactorization.
	var fac int64
	for _, n := range nodes {
		fac += n.srv.Stats().Refactorizes
	}
	nodes[victim].proxy.SetPartitioned(false)
	waitFor(t, "post-heal membership (all three back)", func() bool {
		for _, n := range nodes {
			if n.sh.ring.Size() != shards {
				return false
			}
		}
		return true
	})
	var viol []string
	waitForOr(t, "post-heal repair", func() bool {
		viol = PlacementViolations(all())
		return len(viol) == 0
	}, func() {
		for _, v := range viol {
			t.Logf("violation: %s", v)
		}
	})
	var facAfter int64
	for _, n := range nodes {
		facAfter += n.srv.Stats().Refactorizes
	}
	if facAfter != fac {
		t.Errorf("healing refactorized: %d -> %d", fac, facAfter)
	}
	// The healed fleet serves every system again, still bit-identically.
	for i, sys := range systems {
		got, err := solveRetrying(handles[i], sys.b)
		if err != nil {
			t.Fatalf("post-heal solve %d: %v", i, err)
		}
		if !bitIdentical(got, sys.xref) {
			t.Errorf("post-heal solve %d differs bitwise from the reference", i)
		}
	}
}
