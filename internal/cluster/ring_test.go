package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// ringKeys is a deterministic key sample large enough for stable balance
// statistics.
func ringKeys(n int) []uint64 {
	rng := rand.New(rand.NewSource(42))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	return keys
}

func shardAddrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:7071", i+1)
	}
	return out
}

// TestRingBalance: with 128 vnodes the keyspace spreads evenly — the
// max/min ownership ratio across members stays under 1.3 for every fleet
// size from 3 to 16.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(200_000)
	for shards := 3; shards <= 16; shards++ {
		r := NewRing(128)
		addrs := shardAddrs(shards)
		for _, a := range addrs {
			r.Add(a)
		}
		counts := make(map[string]int, shards)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		if len(counts) != shards {
			t.Fatalf("%d shards: only %d own any keys", shards, len(counts))
		}
		minC, maxC := len(keys), 0
		for _, c := range counts {
			minC = min(minC, c)
			maxC = max(maxC, c)
		}
		ratio := float64(maxC) / float64(minC)
		if ratio >= 1.3 {
			t.Errorf("%d shards: ownership ratio %.3f (max %d / min %d), want < 1.3", shards, ratio, maxC, minC)
		}
	}
}

// TestRingDeterministicPlacement: placement is a pure function of the
// membership set — insertion order must not matter, and two independent
// rings over the same set must agree on every key. This is the property
// that lets router, shards, and clients place without coordination.
func TestRingDeterministicPlacement(t *testing.T) {
	addrs := shardAddrs(7)
	a := NewRing(128)
	for _, s := range addrs {
		a.Add(s)
	}
	b := NewRing(128)
	for i := len(addrs) - 1; i >= 0; i-- {
		b.Add(addrs[i])
	}
	for _, k := range ringKeys(10_000) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("key %#x: owner %q vs %q across insertion orders", k, ao, bo)
		}
		ar, br := a.Replicas(k, 3), b.Replicas(k, 3)
		if len(ar) != 3 || len(br) != 3 {
			t.Fatalf("key %#x: replica counts %d/%d, want 3", k, len(ar), len(br))
		}
		for i := range ar {
			if ar[i] != br[i] {
				t.Fatalf("key %#x: replica[%d] %q vs %q", k, i, ar[i], br[i])
			}
		}
	}
}

// TestRingMinimalMovement: a join moves about 1/(n+1) of the keys (only
// the keys landing on the new member's points), and a leave moves exactly
// the departed member's keys. Nothing else may move — that is the point of
// consistent hashing.
func TestRingMinimalMovement(t *testing.T) {
	keys := ringKeys(100_000)
	addrs := shardAddrs(6)
	r := NewRing(128)
	for _, a := range addrs[:5] {
		r.Add(a)
	}
	before := make([]string, len(keys))
	for i, k := range keys {
		before[i] = r.Owner(k)
	}

	// Join: every moved key must have moved TO the joiner.
	r.Add(addrs[5])
	moved := 0
	for i, k := range keys {
		now := r.Owner(k)
		if now != before[i] {
			moved++
			if now != addrs[5] {
				t.Fatalf("key %#x moved %q -> %q, not to the joiner", k, before[i], now)
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	want := 1.0 / 6
	if frac < want/2 || frac > want*2 {
		t.Errorf("join moved %.3f of keys, want ~%.3f", frac, want)
	}

	// Leave: only the departed member's keys move.
	after := make([]string, len(keys))
	for i, k := range keys {
		after[i] = r.Owner(k)
	}
	r.Remove(addrs[5])
	for i, k := range keys {
		now := r.Owner(k)
		if after[i] == addrs[5] {
			if now == addrs[5] {
				t.Fatalf("key %#x still owned by removed member", k)
			}
		} else if now != after[i] {
			t.Fatalf("key %#x moved %q -> %q though its owner stayed", k, after[i], now)
		}
	}
}

// TestRingReplicasDistinct: the replica list never repeats a member and
// starts with the owner.
func TestRingReplicasDistinct(t *testing.T) {
	r := NewRing(64)
	addrs := shardAddrs(5)
	for _, a := range addrs {
		r.Add(a)
	}
	for _, k := range ringKeys(5_000) {
		reps := r.Replicas(k, 3)
		if len(reps) != 3 {
			t.Fatalf("key %#x: %d replicas, want 3", k, len(reps))
		}
		if reps[0] != r.Owner(k) {
			t.Fatalf("key %#x: replicas[0]=%q, owner=%q", k, reps[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range reps {
			if seen[m] {
				t.Fatalf("key %#x: duplicate replica %q", k, m)
			}
			seen[m] = true
		}
	}
	// Asking for more copies than members returns every member once.
	if got := len(r.Replicas(7, 99)); got != len(addrs) {
		t.Fatalf("oversized replica request returned %d members, want %d", got, len(addrs))
	}
	// Empty ring: no owner, no replicas.
	empty := NewRing(8)
	if empty.Owner(1) != "" || empty.Replicas(1, 2) != nil {
		t.Fatal("empty ring must place nothing")
	}
}

// TestRingEpochView: epochs ride on the ring; View snapshots (epoch, sorted
// members) atomically and Replace installs a whole view at once.
func TestRingEpochView(t *testing.T) {
	r := NewRing(16)
	if e := r.Epoch(); e != 0 {
		t.Fatalf("fresh ring epoch = %d, want 0", e)
	}
	for _, a := range shardAddrs(3) {
		r.Add(a)
	}
	r.SetEpoch(7)
	e, members := r.View()
	if e != 7 {
		t.Fatalf("View epoch = %d, want 7", e)
	}
	if len(members) != 3 {
		t.Fatalf("View members = %v, want 3 addresses", members)
	}
	for i := 1; i < len(members); i++ {
		if members[i-1] >= members[i] {
			t.Fatalf("View members not sorted: %v", members)
		}
	}
	if !r.Contains(members[0]) {
		t.Fatalf("Contains(%s) = false for a listed member", members[0])
	}
	if r.Contains("10.9.9.9:1") {
		t.Fatal("Contains reported a member never added")
	}
}

// TestRingReplaceInstallsView: Replace swaps members and epoch together,
// rebuilds placement points (same placement as incremental Adds would give),
// and dedups repeated members.
func TestRingReplaceInstallsView(t *testing.T) {
	incremental := NewRing(32)
	for _, a := range shardAddrs(4) {
		incremental.Add(a)
	}
	replaced := NewRing(32)
	replaced.Add("10.99.0.1:7071") // pre-existing member Replace must evict
	dup := append(shardAddrs(4), shardAddrs(4)[0])
	replaced.Replace(dup, 9)
	if e := replaced.Epoch(); e != 9 {
		t.Fatalf("epoch after Replace = %d, want 9", e)
	}
	if replaced.Contains("10.99.0.1:7071") {
		t.Fatal("Replace kept a member not in the installed view")
	}
	if got := replaced.Size(); got != 4 {
		t.Fatalf("Size after Replace with a duplicate = %d, want 4 (deduped)", got)
	}
	for _, k := range ringKeys(512) {
		if a, b := incremental.Owner(k), replaced.Owner(k); a != b {
			t.Fatalf("Replace placement diverges from incremental Adds for key %#x: %s vs %s", k, a, b)
		}
	}
}
