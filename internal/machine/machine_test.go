package machine

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestComputeChargesClock(t *testing.T) {
	m := New(2, Model{Name: "m", Blas1Rate: 10, Blas2Rate: 20, Blas3Rate: 40, SwapRate: 5, Latency: 0.5, Bandwidth: 100})
	pt := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.ChargeFlops(10, 20, 40, 5) // 1 + 1 + 1 + 1 = 4 seconds
		}
	})
	if pt != 4 {
		t.Fatalf("parallel time %v, want 4", pt)
	}
}

func TestSendRecvTiming(t *testing.T) {
	m := New(2, Model{Name: "m", Blas1Rate: 1, Blas2Rate: 1, Blas3Rate: 1, SwapRate: 1, Latency: 1, Bandwidth: 8})
	tag := Tag{Kind: 1, K: 0}
	pt := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Compute(2)
			p.Send(1, tag, 16, "hello") // arrival = 2 + 1 + 16/8 = 5
		} else {
			got := p.Recv(Tag{Src: 0, Kind: 1, K: 0})
			if got.(string) != "hello" {
				t.Errorf("payload = %v", got)
			}
			if p.Clock() != 5 {
				t.Errorf("receiver clock %v, want 5", p.Clock())
			}
		}
	})
	// Sender: 2 compute + 1 latency = 3; receiver 5.
	if pt != 5 {
		t.Fatalf("parallel time %v, want 5", pt)
	}
}

func TestRecvDoesNotRewindClock(t *testing.T) {
	m := New(2, Model{Name: "m", Blas1Rate: 1, Blas2Rate: 1, Blas3Rate: 1, SwapRate: 1, Latency: 1, Bandwidth: math.Inf(1)})
	pt := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, Tag{Kind: 2}, 8, nil) // arrival at 1
		} else {
			p.Compute(10)
			p.Recv(Tag{Src: 0, Kind: 2})
			if p.Clock() != 10 {
				t.Errorf("clock %v, want 10 (late receiver keeps its time)", p.Clock())
			}
		}
	})
	if pt != 10 {
		t.Fatalf("parallel time %v", pt)
	}
}

func TestRecvOutOfOrderTags(t *testing.T) {
	m := New(2, Unit())
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, Tag{Kind: 1}, 0, "first")
			p.Send(1, Tag{Kind: 2}, 0, "second")
		} else {
			// Receive in reverse order; matching is by tag.
			if got := p.Recv(Tag{Src: 0, Kind: 2}); got.(string) != "second" {
				t.Errorf("tag 2 payload %v", got)
			}
			if got := p.Recv(Tag{Src: 0, Kind: 1}); got.(string) != "first" {
				t.Errorf("tag 1 payload %v", got)
			}
		}
	})
}

func TestMulticastTreeDepth(t *testing.T) {
	m := New(8, Model{Name: "m", Blas1Rate: 1, Blas2Rate: 1, Blas3Rate: 1, SwapRate: 1, Latency: 1, Bandwidth: math.Inf(1)})
	var maxArrival atomic.Uint64
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			dsts := []int{1, 2, 3, 4, 5, 6, 7}
			p.Multicast(dsts, Tag{Kind: 3}, 0, nil)
		} else {
			p.Recv(Tag{Src: 0, Kind: 3})
			// Arrival depths: dst1 at 1 hop, dst2-3 at 2, dst4-7 at 3.
			v := uint64(p.Clock())
			for {
				old := maxArrival.Load()
				if v <= old || maxArrival.CompareAndSwap(old, v) {
					break
				}
			}
		}
	})
	if maxArrival.Load() != 3 {
		t.Fatalf("max multicast arrival %d hops, want 3", maxArrival.Load())
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	m := New(4, Model{Name: "m", Blas1Rate: 1, Blas2Rate: 1, Blas3Rate: 1, SwapRate: 1, Latency: 0.25, Bandwidth: math.Inf(1)})
	b := m.NewBarrier()
	m.Run(func(p *Proc) {
		p.Compute(float64(p.ID())) // clocks 0,1,2,3
		b.Wait(p)
		// Release = 3 + 2*log2(4)*0.25 = 3 + 1 = 4.
		if p.Clock() != 4 {
			t.Errorf("proc %d clock %v, want 4", p.ID(), p.Clock())
		}
	})
}

func TestBarrierReusable(t *testing.T) {
	m := New(3, Unit())
	b := m.NewBarrier()
	pt := m.Run(func(p *Proc) {
		for round := 0; round < 5; round++ {
			p.Compute(1)
			b.Wait(p)
		}
	})
	if pt != 5 {
		t.Fatalf("parallel time %v, want 5", pt)
	}
}

func TestBufferHighWater(t *testing.T) {
	m := New(2, Unit())
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, Tag{Kind: 1}, 100, nil)
			p.Send(1, Tag{Kind: 2}, 50, nil)
		} else {
			// Let both messages queue up before draining. Real-time sleep
			// is not needed: Recv of the later tag forces buffering of
			// whatever arrived first.
			p.Recv(Tag{Src: 0, Kind: 2})
			p.Recv(Tag{Src: 0, Kind: 1})
		}
	})
	if hw := m.BufferHighWater(); hw < 100 {
		t.Fatalf("buffer high water %d, want >= 100", hw)
	}
}

func TestDeterministicVirtualTime(t *testing.T) {
	run := func() float64 {
		m := New(4, T3E())
		return m.Run(func(p *Proc) {
			// A little all-pairs exchange with compute jitter by id.
			for d := 0; d < 4; d++ {
				if d != p.ID() {
					p.Send(d, Tag{Kind: 9, K: p.ID()}, 1024, nil)
				}
			}
			p.Compute(float64(p.ID()) * 1e-6)
			for s := 0; s < 4; s++ {
				if s != p.ID() {
					p.Recv(Tag{Src: s, Kind: 9, K: s})
				}
			}
		})
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); got != first {
			t.Fatalf("virtual time not deterministic: %v vs %v", got, first)
		}
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	m := New(2, Unit())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			panic("boom")
		}
		// The other processor blocks forever; poisoning must unblock it.
		p.Recv(Tag{Src: 0, Kind: 42})
	})
}

func TestModelRatesSane(t *testing.T) {
	for _, model := range []Model{T3D(), T3E()} {
		if model.Blas3Rate <= model.Blas2Rate {
			t.Fatalf("%s: DGEMM must outrate DGEMV", model.Name)
		}
		if model.TransferSeconds(0) != model.Latency {
			t.Fatalf("%s: zero-byte transfer should cost latency", model.Name)
		}
	}
	// The paper's T3E DGEMM is ~3.7x the T3D's.
	ratio := T3E().Blas3Rate / T3D().Blas3Rate
	if ratio < 3.5 || ratio > 4.0 {
		t.Fatalf("T3E/T3D DGEMM ratio %v, want ~3.77", ratio)
	}
}

func TestWithBlockSize(t *testing.T) {
	m := T3E()
	small := m.WithBlockSize(4)
	ref := m.WithBlockSize(25)
	big := m.WithBlockSize(200)
	if !(small.Blas3Rate < ref.Blas3Rate && ref.Blas3Rate <= big.Blas3Rate) {
		t.Fatalf("DGEMM rate not monotone in block size: %v %v %v",
			small.Blas3Rate, ref.Blas3Rate, big.Blas3Rate)
	}
	// Calibration point: width 25 reproduces the paper's measured rates.
	if d := ref.Blas3Rate/m.Blas3Rate - 1; d > 1e-12 || d < -1e-12 {
		t.Fatalf("width-25 model must equal the measured rate, off by %v", d)
	}
	// The uplift saturates.
	if big.Blas3Rate > 1.2*m.Blas3Rate {
		t.Fatalf("asymptotic uplift too large: %v", big.Blas3Rate/m.Blas3Rate)
	}
	if m.WithBlockSize(0).Blas3Rate != m.Blas3Rate {
		t.Fatal("zero width must be a no-op")
	}
}

func TestMulticastSkipsSelf(t *testing.T) {
	m := New(3, Unit())
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Multicast([]int{0, 1, 2}, Tag{Kind: 5}, 8, "x")
			if p.SentMessages != 2 {
				t.Errorf("self included in multicast: %d messages", p.SentMessages)
			}
		} else {
			p.Recv(Tag{Src: 0, Kind: 5})
		}
	})
}

func TestBusySecondsExcludesWaits(t *testing.T) {
	m := New(2, Unit())
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Compute(5)
			p.Send(1, Tag{Kind: 6}, 0, nil)
		} else {
			p.Recv(Tag{Src: 0, Kind: 6}) // waits 5 virtual seconds
			p.Compute(1)
		}
	})
	if b := m.Proc(1).BusySeconds(); b != 1 {
		t.Fatalf("busy = %v, want 1 (wait excluded)", b)
	}
	if m.Proc(1).Clock() < 5 {
		t.Fatalf("receiver clock %v should include the wait", m.Proc(1).Clock())
	}
}

func TestTorusDims(t *testing.T) {
	cases := map[int][3]int{
		1:   {1, 1, 1},
		8:   {2, 2, 2},
		64:  {4, 4, 4},
		128: {8, 4, 4},
		12:  {3, 2, 2},
		7:   {7, 1, 1},
	}
	for p, want := range cases {
		got := torusDims(p)
		if got != want {
			t.Errorf("torusDims(%d) = %v, want %v", p, got, want)
		}
		if got[0]*got[1]*got[2] != p {
			t.Errorf("torusDims(%d) does not multiply out", p)
		}
	}
}

func TestHopsRingDistance(t *testing.T) {
	m := New(8, T3E()) // 2x2x2 torus
	if h := m.Hops(0, 0); h != 0 {
		t.Fatalf("self distance %d", h)
	}
	// Opposite corner of a 2x2x2 cube: 3 hops.
	if h := m.Hops(0, 7); h != 3 {
		t.Fatalf("corner distance %d, want 3", h)
	}
	// Symmetry.
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			if m.Hops(a, b) != m.Hops(b, a) {
				t.Fatalf("asymmetric hops (%d,%d)", a, b)
			}
		}
	}
	// Ring wraparound: on an 8x1x1 ring, 0 -> 7 is 1 hop.
	ring := New(8, Model{})
	ring.dims = [3]int{8, 1, 1}
	if h := ring.Hops(0, 7); h != 1 {
		t.Fatalf("ring wraparound distance %d, want 1", h)
	}
}

func TestHopLatencyCharged(t *testing.T) {
	model := Unit()
	model.HopLatency = 1
	m := New(8, model) // 2x2x2
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(7, Tag{Kind: 7}, 0, nil) // 3 hops
		} else if p.ID() == 7 {
			p.Recv(Tag{Src: 0, Kind: 7})
			if p.Clock() != 3 {
				t.Errorf("clock %v, want 3 (hop latency)", p.Clock())
			}
		}
	})
}

func TestMulticastEmptyAndSingle(t *testing.T) {
	m := New(4, Unit())
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Multicast(nil, Tag{Kind: 11}, 8, nil) // no-op
			if p.SentMessages != 0 {
				t.Errorf("empty multicast sent %d messages", p.SentMessages)
			}
			p.Multicast([]int{2}, Tag{Kind: 12}, 8, "one")
		} else if p.ID() == 2 {
			if got := p.Recv(Tag{Src: 0, Kind: 12}); got.(string) != "one" {
				t.Errorf("single-dest multicast payload %v", got)
			}
		}
	})
}

func TestTagDisambiguatesBySource(t *testing.T) {
	m := New(3, Unit())
	m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(2, Tag{Kind: 13, K: 5}, 0, "from0")
		case 1:
			p.Send(2, Tag{Kind: 13, K: 5}, 0, "from1")
		case 2:
			// Same Kind/K from two senders: Src must disambiguate.
			if got := p.Recv(Tag{Src: 1, Kind: 13, K: 5}); got.(string) != "from1" {
				t.Errorf("src-1 payload %v", got)
			}
			if got := p.Recv(Tag{Src: 0, Kind: 13, K: 5}); got.(string) != "from0" {
				t.Errorf("src-0 payload %v", got)
			}
		}
	})
}

func TestTraceDisabledByDefault(t *testing.T) {
	m := New(1, Unit())
	m.Run(func(p *Proc) {
		p.Compute(1)
		p.TraceSpan("x", 0)
	})
	if tr := m.Traces(); len(tr[0]) != 0 {
		t.Fatalf("tracing recorded %d spans while disabled", len(tr[0]))
	}
	m2 := New(1, Unit())
	m2.EnableTracing()
	m2.Run(func(p *Proc) {
		start := p.Clock()
		p.Compute(2)
		p.TraceSpan("work", start)
	})
	tr := m2.Traces()
	if len(tr[0]) != 1 || tr[0][0].End-tr[0][0].Start != 2 {
		t.Fatalf("trace span wrong: %+v", tr[0])
	}
}
